package campaign

import (
	"bytes"
	"reflect"
	"testing"
)

// TestDisciplineAxisExpansion pins the grid-order contract for the
// Disciplines dimension: discipline sits between liars and seed, so
// seed sweeps of one estimator stay contiguous.
func TestDisciplineAxisExpansion(t *testing.T) {
	g := Grid{
		Seeds:       []uint64{1, 2},
		Disciplines: []string{"ma", "lad"},
	}
	pts := g.Expand()
	want := []struct {
		disc string
		seed uint64
	}{{"ma", 1}, {"ma", 2}, {"lad", 1}, {"lad", 2}}
	if len(pts) != len(want) {
		t.Fatalf("expanded %d points, want %d", len(pts), len(want))
	}
	for i, w := range want {
		if pts[i].Discipline != w.disc || pts[i].Seed != w.seed {
			t.Fatalf("point %d = discipline=%q seed=%d, want %q/%d",
				i, pts[i].Discipline, pts[i].Seed, w.disc, w.seed)
		}
	}
}

func TestDisciplineAxisValidate(t *testing.T) {
	ok := Grid{Disciplines: []string{"", "ma", "pll:kp=0.7", "theilsen", "lad:dropk=2"}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid discipline specs rejected: %v", err)
	}
	bad := Grid{Disciplines: []string{"kalman"}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown discipline kind accepted")
	}
}

// TestDisciplineAxisDeterminism extends the campaign's core contract to
// the new dimension: a grid sweeping all four estimators renders
// byte-identically at -jobs 1 and -jobs 4, and every probed run
// actually recorded daemon samples.
func TestDisciplineAxisDeterminism(t *testing.T) {
	g := Grid{
		Name:        "disc-det",
		Topos:       []string{"pair"},
		Seeds:       []uint64{1, 2},
		Durations:   []Duration{msec(25)},
		Disciplines: []string{"ma", "pll", "theilsen", "lad"},
	}
	serial, err := Run(g, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(g, Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderDeterministic(t, serial), renderDeterministic(t, parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("discipline axis diverged between -jobs 1 and -jobs 4:\n--- jobs=1\n%s\n--- jobs=4\n%s", a, b)
	}
	for i := range serial.Results {
		sr, pr := serial.Results[i], parallel.Results[i]
		sr.Wall, pr.Wall = 0, 0
		if !reflect.DeepEqual(sr, pr) {
			t.Fatalf("run %d diverged:\n jobs=1: %+v\n jobs=4: %+v", i, sr, pr)
		}
	}
	for _, r := range serial.Results {
		if r.Err != "" {
			t.Fatalf("run %d (%s): %s", r.Point.Index, r.Point, r.Err)
		}
		// The probe is read at the sampling cadence (100 µs default):
		// a 25 ms run must have recorded plenty of samples.
		if r.DaemonSamples < 2 {
			t.Fatalf("run %d (%s): only %d daemon samples", r.Point.Index, r.Point, r.DaemonSamples)
		}
	}
}
