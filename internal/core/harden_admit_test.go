package core

import (
	"testing"

	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
	"github.com/dtplab/dtp/internal/topo"
)

// instrumentedHardenedPair is instrumentedPair with Hardened enabled.
func instrumentedHardenedPair(t *testing.T, seed uint64) (*sim.Scheduler, *Network, *telemetry.Registry, *telemetry.Tracer) {
	t.Helper()
	sch := sim.NewScheduler()
	cfg := DefaultConfig()
	cfg.Hardened = true
	n, err := NewNetwork(sch, seed, topo.Pair(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	tr := telemetry.NewTracer(1 << 14)
	n.Instrument(reg, tr)
	return sch, n, reg, tr
}

// TestAdmitBudgetRule pins the pull-budget inequality, including the
// boundaries where an off-by-one would either leak an attack or reject
// an honest peer.
func TestAdmitBudgetRule(t *testing.T) {
	const slack = 16
	cases := []struct {
		name            string
		pulled, elapsed int64
		ok              bool
	}{
		{"zero pull", 0, 0, true},
		{"at slack, no time elapsed", slack, 0, true},
		{"one past slack, no time elapsed", slack + 1, 0, false},
		{"ppm budget accrues", slack + (1 << 20 >> 12), 1 << 20, true},
		{"one past accrued budget", slack + (1 << 20 >> 12) + 1, 1 << 20, false},
		{"negative elapsed clamps to slack", slack, -50, true},
		{"negative elapsed still rejects", slack + 1, -50, false},
		// 2^53 is where float64 loses integer precision; the rule is
		// all-integer so the boundary must stay exact.
		{"exact at 2^53 elapsed", slack + (1 << 53 >> 12), 1 << 53, true},
		{"one past at 2^53 elapsed", slack + (1 << 53 >> 12) + 1, 1 << 53, false},
	}
	for _, c := range cases {
		if ok, _ := admitBudget(c.pulled, c.elapsed, slack); ok != c.ok {
			t.Errorf("%s: admitBudget(%d, %d, %d) = %v, want %v",
				c.name, c.pulled, c.elapsed, slack, ok, c.ok)
		}
	}
}

// TestAdmitTargetCounterWraparound: admission leads are mod-2^64
// differences, so an honest session whose counters cross 2^64 (or the
// float64-precision boundary 2^53) must not be rejected, while a lying
// jump right at the wrap must still be caught.
func TestAdmitTargetCounterWraparound(t *testing.T) {
	sch, n, _, _ := instrumentedHardenedPair(t, 11)
	n.Start()
	sch.Run(2 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("pair did not sync")
	}
	p, _ := n.LinkPorts(0)
	rejections := func() uint64 { rej, _ := n.ByzantineStats(); return rej }

	for _, boundary := range []uint64{1<<64 - 500, 1<<53 - 500} {
		// A live session observing an honest peer whose implied counter
		// tracks the local one tick for tick straight across the
		// boundary: every value must be admitted and none may count as
		// a pull (lead stays zero through the wrap).
		p.admitValid = true
		p.pullWindow = p.dev.clock.Counter()
		p.pulledUnits = 0
		before := rejections()
		for step := uint64(0); step <= 2000; step += 100 {
			target := boundary + step
			if !p.admitTarget(target, target, false) {
				t.Fatalf("boundary %#x: honest value at +%d rejected", boundary, step)
			}
			p.noteTarget(target, target)
		}
		if got := rejections(); got != before {
			t.Fatalf("boundary %#x: honest crossing recorded %d rejections", boundary, got-before)
		}
		if p.pulledUnits != 0 {
			t.Fatalf("boundary %#x: zero-lead stream charged %d pull units", boundary, p.pulledUnits)
		}

		// A small forward lead across the wrap is honest noise and must
		// pass the per-message cap exactly like far from the boundary.
		if !p.admitTarget(boundary+2003, boundary+2000, false) {
			t.Fatalf("boundary %#x: +3 lead across the wrap rejected", boundary)
		}
		if p.pulledUnits != 3 {
			t.Fatalf("boundary %#x: +3 lead charged %d pull units", boundary, p.pulledUnits)
		}

		// A lying jump exactly at the wrap must still be rejected: the
		// remote claims 1e6 units the local clock never saw.
		if p.admitTarget(boundary+2000+1_000_000, boundary+2000, true) {
			t.Fatalf("boundary %#x: inflated jump admitted across the wrap", boundary)
		}
		// Reset the rejection window so the loop's rejections never
		// accumulate into a quarantine and change port state.
		p.rejectCount = 0
	}
}

// TestAdmitTargetCatchesCompliantRatchet: an attacker whose every
// message stays under the per-message slack — counting on the local
// counter adopting each lie so the next one measures small again — must
// still exhaust the windowed pull budget, because the budget is
// measured on the free-running oscillator, not the poisoned counter.
func TestAdmitTargetCatchesCompliantRatchet(t *testing.T) {
	sch, n, _, _ := instrumentedHardenedPair(t, 13)
	n.Start()
	sch.Run(2 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("pair did not sync")
	}
	p, _ := n.LinkPorts(0)
	slack := p.admitSlack()

	p.admitValid = true
	p.pullWindow = p.dev.clock.Counter()
	p.pulledUnits = 0
	local := p.dev.GlobalCounter()
	admitted := 0
	for i := 0; i < 64; i++ {
		// Each lie leads by exactly the slack and is "adopted": the next
		// one measures against the freshly poisoned counter.
		if !p.admitTarget(local+uint64(slack), local, false) {
			break
		}
		admitted++
		local += uint64(slack)
	}
	if admitted >= 64 {
		t.Fatal("compliant ratchet never rejected: pull budget is not engaging")
	}
	if pulled := int64(admitted) * slack; pulled > slack+1 {
		// With no simulated time passing, the whole window budget is
		// just the slack: the ratchet must die on its second step.
		t.Fatalf("ratchet pulled %d units before rejection, budget is ~%d", pulled, slack)
	}
}

// TestQuarantineLifecycle drives the full defensive arc on a live pair:
// a lying peer's BEACON-JOINs are rejected, the fourth rejection
// quarantines the port (dropping it from the synced set), and after the
// cooldown the re-INIT escape hatch readmits the now-honest peer.
func TestQuarantineLifecycle(t *testing.T) {
	sch, n, _, tr := instrumentedHardenedPair(t, 12)
	n.Start()
	sch.Run(2 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("pair did not sync")
	}
	if _, quarStartup := n.ByzantineStats(); quarStartup != 0 {
		t.Fatalf("%d quarantines during honest startup", quarStartup)
	}
	liar, err := n.DeviceByName("h0")
	if err != nil {
		t.Fatal(err)
	}

	liar.SetLieUnits(50_000)
	limit := n.cfg.QuarantineRejectLimit
	for i := 0; i < limit; i++ {
		liar.BroadcastJoin()
		sch.RunFor(10 * sim.Microsecond)
	}
	rejected, quarantined := n.ByzantineStats()
	if rejected < uint64(limit) {
		t.Fatalf("%d rejections after %d lying JOINs, want >= %d", rejected, limit, limit)
	}
	if quarantined != 1 {
		t.Fatalf("%d quarantines, want exactly 1", quarantined)
	}
	if n.LinkSynced(0) {
		t.Fatal("link still reports synced with one side quarantined")
	}
	if !n.LinkQuarantined(0) {
		t.Fatal("LinkQuarantined(0) = false after quarantine")
	}
	if got := tr.CountKind(telemetry.KindPortQuarantined); got != 1 {
		t.Fatalf("%d KindPortQuarantined events, want 1", got)
	}

	// The peer turns honest; the cooldown expires, the port demotes to
	// INIT, re-measures, and the pair is whole again.
	liar.SetLieUnits(0)
	sch.RunFor(5 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("pair did not resynchronize after quarantine cooldown")
	}
	if n.LinkQuarantined(0) {
		t.Fatal("link still quarantined after cooldown release")
	}
	if _, quarAfter := n.ByzantineStats(); quarAfter != 1 {
		t.Fatalf("quarantine count changed to %d after honest rejoin", quarAfter)
	}
}
