package timesvc

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestStoreEmptyReadsNotOK(t *testing.T) {
	var s Store
	if _, ok := s.Read(); ok {
		t.Fatal("Read ok before any Publish")
	}
	if e := s.Epoch(); e != 0 {
		t.Fatalf("Epoch = %d before any Publish", e)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	var s Store
	want := Snapshot{
		Epoch:     3,
		AnchorRaw: 123_456_789,
		AnchorUTC: 9.75e14,
		Ratio:     1.000042,
		BoundPs:   31_250,
		DriftPPM:  3,
		MaxAgePs:  80_000_000,
	}
	s.Publish(want)
	got, ok := s.Read()
	if !ok {
		t.Fatal("Read not ok after Publish")
	}
	if got != want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if e := s.Epoch(); e != 3 {
		t.Fatalf("Epoch = %d, want 3", e)
	}
}

// TestStoreNoTornReads hammers Read from many goroutines while a writer
// republishes continuously. Every published snapshot derives all fields
// from its epoch, so any torn read — a mix of two snapshots — breaks
// the relation. Under -race this also proves the seqlock data-race-free.
func TestStoreNoTornReads(t *testing.T) {
	var s Store
	var stop atomic.Bool
	var torn atomic.Value // string

	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for e := uint64(1); !stop.Load(); e++ {
			s.Publish(Snapshot{
				Epoch:     e,
				AnchorRaw: int64(e * 2),
				AnchorUTC: float64(e * 3),
				Ratio:     float64(e * 5),
				BoundPs:   float64(e * 7),
				DriftPPM:  float64(e * 11),
				MaxAgePs:  int64(e * 13),
			})
		}
	}()

	// The full soak is minutes under -race on small machines; -short
	// (the CI-wide race job) keeps a real-but-quick hammer, and the
	// dedicated serve-bench job runs the long one.
	iters := 200_000
	if testing.Short() {
		iters = 20_000
	}
	const readers = 8
	var readersWG sync.WaitGroup
	for i := 0; i < readers; i++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			last := uint64(0)
			for n := 0; n < iters; n++ {
				sn, ok := s.Read()
				if !ok {
					continue
				}
				e := sn.Epoch
				if sn.AnchorRaw != int64(e*2) || sn.AnchorUTC != float64(e*3) ||
					sn.Ratio != float64(e*5) || sn.BoundPs != float64(e*7) ||
					sn.DriftPPM != float64(e*11) || sn.MaxAgePs != int64(e*13) {
					torn.Store("torn read: fields from different epochs")
					return
				}
				if e < last {
					torn.Store("epoch went backwards")
					return
				}
				last = e
			}
		}()
	}

	readersWG.Wait()
	stop.Store(true)
	writers.Wait()
	if msg, ok := torn.Load().(string); ok {
		t.Fatal(msg)
	}
}

// TestStoreReadZeroAlloc pins the fast path's allocation-free claim.
func TestStoreReadZeroAlloc(t *testing.T) {
	var s Store
	s.Publish(Snapshot{Epoch: 1, Ratio: 1})
	if n := testing.AllocsPerRun(1000, func() {
		if _, ok := s.Read(); !ok {
			t.Error("read failed")
		}
	}); n != 0 {
		t.Fatalf("Store.Read allocates %.1f times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		_ = s.Epoch()
	}); n != 0 {
		t.Fatalf("Store.Epoch allocates %.1f times per call, want 0", n)
	}
}
