package discipline

import (
	"math"
	"testing"
)

// TestLADFrequencyStepMassDrop reproduces the regime-change behavior:
// after a 500 ppm frequency step the incumbent L1 fit first drags the
// estimate away from truth (the old-regime majority out-votes the new
// samples, and the early new-regime arrivals get dropped as "outliers"),
// then — once the window slides far enough for the new regime to win —
// the fit flips and the old-regime survivors are dropped in a burst.
// Fully deterministic: no RNG anywhere.
func TestLADFrequencyStepMassDrop(t *testing.T) {
	const stepAt = 30
	r1 := testNominal
	r2 := testNominal * (1 + 500e-6)
	jit := func(i int) float64 { return triWave(i, 0.5) }

	// Piecewise-linear truth, continuous at the step.
	const tsc0, dtp0 = 5e12, 7e11
	tscAt := func(i int) float64 { return tsc0 + float64(i)*testDT }
	truthAt := func(i int) float64 {
		if i <= stepAt {
			return dtp0 + r1*(tscAt(i)-tsc0)
		}
		return dtp0 + r1*(tscAt(stepAt)-tsc0) + r2*(tscAt(i)-tscAt(stepAt))
	}

	d := mustNew(t, Config{Kind: "lad", Window: 16})
	var maxTransientOff, maxTailOff float64
	for i := 0; i < 80; i++ {
		m := d.Feed(Sample{DTP: truthAt(i) + jit(i), TSC: tscAt(i), LatchErrPs: testLatchPs})
		off := math.Abs(m.EstimateAt(tscAt(i)) - truthAt(i))
		switch {
		case i > stepAt && i <= stepAt+20:
			maxTransientOff = math.Max(maxTransientOff, off)
		case i >= 70:
			maxTailOff = math.Max(maxTailOff, off)
		}
	}
	if d.Dropped() < 4 {
		t.Fatalf("regime change dropped only %d samples, want a burst >= 4", d.Dropped())
	}
	if maxTransientOff < 3 {
		t.Fatalf("transient offset %.2f units — expected the old-regime fit to drag the estimate", maxTransientOff)
	}
	if maxTailOff > 2 {
		t.Fatalf("tail offset %.2f units — fit failed to reconverge on the new regime", maxTailOff)
	}
	t.Logf("dropped=%d transient=%.2f tail=%.2f", d.Dropped(), maxTransientOff, maxTailOff)
}

// tri64 is a ±1 triangle wave with period 64 — a deterministic
// stand-in for slow oscillator wander.
func tri64(i int) float64 {
	p := i % 64
	if p < 16 {
		return float64(p) / 16
	}
	if p < 48 {
		return 1 - float64(p-16)/16
	}
	return -1 + float64(p-48)/16
}

// TestLADAggressiveDroppingOscillates reproduces the phenomenon the
// scion-time LAD notes describe, deterministically: under slow
// oscillator wander an aggressive drop threshold keeps discarding the
// leading-edge samples — the ones carrying the news that the frequency
// is moving — so the fit lags the wander, the lag manufactures fresh
// "outliers", and the estimate oscillates with sustained sample
// dropping that never settles. The default threshold on the identical
// stream drops (almost) nothing and tracks the wander closely.
func TestLADAggressiveDroppingOscillates(t *testing.T) {
	const n = 200
	// Truth: frequency wanders ±0.6 ppm with period 64 samples; the
	// counter integrates it. Noise: a small ±0.4-unit triangle wave.
	const tsc0, dtp0 = 5e12, 7e11
	wanderPPM := 0.4
	truth := make([]float64, n)
	acc := dtp0
	for i := 0; i < n; i++ {
		truth[i] = acc
		acc += testNominal * (1 + wanderPPM*1e-6*tri64(i)) * testDT
	}
	run := func(dropK float64) (lateDrops uint64, maxOff float64, signChanges int) {
		d := mustNew(t, Config{Kind: "lad", Window: 12, DropK: dropK})
		var dropsAtTwoThirds uint64
		prevSign := 0
		for i := 0; i < n; i++ {
			tsc := tsc0 + float64(i)*testDT
			m := d.Feed(Sample{DTP: truth[i] + triWave(i, 0.4), TSC: tsc, LatchErrPs: testLatchPs})
			if i == 2*n/3 {
				dropsAtTwoThirds = d.Dropped()
			}
			if i < 60 {
				continue
			}
			off := m.EstimateAt(tsc) - truth[i]
			maxOff = math.Max(maxOff, math.Abs(off))
			sign := 0
			if off > 0.2 {
				sign = 1
			} else if off < -0.2 {
				sign = -1
			}
			if sign != 0 && prevSign != 0 && sign != prevSign {
				signChanges++
			}
			if sign != 0 {
				prevSign = sign
			}
		}
		return d.Dropped() - dropsAtTwoThirds, maxOff, signChanges
	}

	aggDrops, aggOff, aggSwings := run(1)
	defDrops, defOff, defSwings := run(0) // 0 -> default DropK
	t.Logf("aggressive: lateDrops=%d maxOff=%.2f swings=%d", aggDrops, aggOff, aggSwings)
	t.Logf("default:    lateDrops=%d maxOff=%.2f swings=%d", defDrops, defOff, defSwings)

	// Aggressive dropping never settles: legitimate samples are still
	// being discarded in the final third of the run.
	if aggDrops < 8 {
		t.Fatalf("aggressive DropK dropped only %d samples in the last third — expected sustained dropping", aggDrops)
	}
	if defDrops > 2 {
		t.Fatalf("default DropK dropped %d samples in the last third of a benign stream", defDrops)
	}
	// And the estimate oscillates with the wander instead of tracking
	// it: the error swings through zero repeatedly with an amplitude
	// well beyond the default's.
	if aggSwings < 3 {
		t.Fatalf("aggressive estimate error changed sign only %d times — expected oscillation", aggSwings)
	}
	if aggOff < 2*defOff {
		t.Fatalf("aggressive maxOff %.2f vs default %.2f — expected dropping to at least double the tracking error", aggOff, defOff)
	}
}

// TestLADDropsContentionSpikes: the motivating case — occasional large
// PCIe contention spikes are rejected outright, so the steady-state fit
// is tighter than the EWMA's on the identical stream.
func TestLADDropsContentionSpikes(t *testing.T) {
	ratio := testNominal * (1 + 25e-6)
	samples := noisyStream(200, ratio)
	lad := mustNew(t, Config{Kind: "lad"})
	ma := mustNew(t, Config{Kind: "ma"})
	var worstLAD, worstMA float64
	for i, s := range samples {
		ml := lad.Feed(s)
		mm := ma.Feed(s)
		if i < 100 {
			continue
		}
		truth := s.DTP - noisy(i)
		worstLAD = math.Max(worstLAD, math.Abs(ml.EstimateAt(s.TSC)-truth))
		worstMA = math.Max(worstMA, math.Abs(mm.EstimateAt(s.TSC)-truth))
	}
	if lad.Dropped() == 0 {
		t.Fatal("no spikes dropped")
	}
	if worstLAD >= worstMA/2 {
		t.Fatalf("lad worst %.2f, ma worst %.2f — expected spike rejection to at least halve the worst case", worstLAD, worstMA)
	}
	t.Logf("dropped=%d worstLAD=%.2f worstMA=%.2f", lad.Dropped(), worstLAD, worstMA)
}
