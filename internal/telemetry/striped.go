package telemetry

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// StripedHistogram is a lock-free histogram built for writer rates where
// even an uncontended atomic add per observation is too expensive — the
// 17M reads/sec seqlock fast path in internal/timesvc. Three ideas keep
// the record path near-free:
//
//   - Power-of-two exponential buckets: the bucket index is one
//     bits.Len64, not a linear scan over bounds.
//   - Shard-per-writer: each writer claims its own stripe of counters,
//     so concurrent writers never contend on a cache line.
//   - Batched flush: a StripeWriter accumulates into plain (non-atomic)
//     local counters and folds them into its stripe with a handful of
//     atomic adds every flushEvery records, so the steady-state Observe
//     is an array increment and a float add — zero allocations, zero
//     atomics.
//
// Scrapers merge all stripes on read (Snapshot). A scrape that races a
// flush may see count and sum from different instants — each word is
// individually consistent (no torn float64s), the cross-word skew is at
// most one unflushed batch per writer, and calling Flush on every
// writer first makes the snapshot exact (what the deterministic export
// paths do).
//
// Bucket i (0-based) has upper bound unit·2^i; values above the last
// finite bound land in an implicit overflow bucket. A nil
// StripedHistogram is a valid no-op, like every other metric handle.
type StripedHistogram struct {
	unit     float64 // upper bound of bucket 0
	unitExp  int     // biased float64 exponent of unit
	unitMant uint64  // mantissa bits of unit
	nb       int     // finite buckets; index nb is the overflow bucket
	stripes  []hstripe
	claimed  atomic.Uint32

	mu      sync.Mutex
	writers []*StripeWriter // every writer ever issued, for FlushAll
}

// maxStripedBuckets bounds the finite bucket count so stripes can embed
// their counters inline (keeping each stripe on its own cache lines
// instead of sharing a backing array).
const maxStripedBuckets = 48

// hstripe is one writer shard. The leading and trailing pads keep
// adjacent stripes off each other's cache lines.
type hstripe struct {
	_       [8]uint64
	buckets [maxStripedBuckets + 1]atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
	_       [6]uint64
}

// NewStripedHistogram builds a histogram with `buckets` finite
// power-of-two buckets starting at upper bound `unit` (unit, 2·unit,
// 4·unit, …) and `stripes` writer shards. Out-of-range arguments are
// clamped to sane values rather than rejected, matching the
// never-panic-in-instrumentation policy of the rest of the package.
func NewStripedHistogram(unit float64, buckets, stripes int) *StripedHistogram {
	if unit <= 0 {
		unit = 1
	}
	if buckets < 1 {
		buckets = 1
	}
	if buckets > maxStripedBuckets {
		buckets = maxStripedBuckets
	}
	if stripes < 1 {
		stripes = 1
	}
	ub := math.Float64bits(unit)
	return &StripedHistogram{
		unit:     unit,
		unitExp:  int(ub >> 52 & 0x7ff),
		unitMant: ub & stripedMantMask,
		nb:       buckets,
		stripes:  make([]hstripe, stripes),
	}
}

// stripedMantMask extracts a float64's 52 mantissa bits.
const stripedMantMask = 1<<52 - 1

// StripedHistogram registers (or finds) a striped histogram in the
// registry. Like Histogram, re-registration reuses the first shape;
// nil-safe.
func (r *Registry) StripedHistogram(name, help string, unit float64, buckets, stripes int, labels ...string) *StripedHistogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, "histogram", labels, func() metric {
		return NewStripedHistogram(unit, buckets, stripes)
	}).(*StripedHistogram)
}

// index maps a value to its bucket: the smallest i with v <= unit·2^i,
// clamped to the overflow bucket. NaN and non-positive values land in
// bucket 0. Classification is pure bit arithmetic against the unit's
// precomputed exponent and mantissa — no divide, no Ceil — because
// Observe sits on 10M+/sec read paths: with v = 2^ev·(1+fv) and
// unit = 2^eu·(1+fu), v/unit is exactly 2^(ev-eu) when fv = fu, in
// (2^(ev-eu), 2^(ev-eu+1)) when fv > fu, and in (2^(ev-eu-1), 2^(ev-eu))
// when fv < fu — so the bucket is ev-eu, bumped by one when fv > fu.
// Unlike dividing first, this never rounds across a bucket boundary.
func (h *StripedHistogram) index(v float64) int {
	if !(v > h.unit) {
		return 0
	}
	bv := math.Float64bits(v)
	i := int(bv>>52&0x7ff) - h.unitExp
	if bv&stripedMantMask > h.unitMant {
		i++
	}
	if i > h.nb {
		i = h.nb
	}
	return i
}

// UpperBounds returns the finite bucket upper bounds.
func (h *StripedHistogram) UpperBounds() []float64 {
	if h == nil {
		return nil
	}
	out := make([]float64, h.nb)
	v := h.unit
	for i := range out {
		out[i] = v
		v *= 2
	}
	return out
}

// Writer claims a stripe and returns a new single-goroutine writer
// handle. Writers beyond the stripe count share stripes round-robin
// (still correct — stripe counters are atomic — just with some cache
// contention). Nil-safe: a nil histogram yields a nil writer whose
// methods are no-ops.
func (h *StripedHistogram) Writer() *StripeWriter {
	if h == nil {
		return nil
	}
	idx := int(h.claimed.Add(1)-1) % len(h.stripes)
	w := &StripeWriter{
		h: h, s: &h.stripes[idx],
		unit: h.unit, unitExp: int32(h.unitExp), unitMant: h.unitMant,
		nb:         int32(h.nb),
		flushEvery: defaultFlushEvery,
	}
	h.mu.Lock()
	h.writers = append(h.writers, w)
	h.mu.Unlock()
	return w
}

// FlushAll folds every writer's pending local counts into the shared
// stripes. Only safe when the writers' owning goroutines are quiescent
// (e.g. after a hammer phase has joined, or on the simulation goroutine
// that owns all writers); the deterministic export paths call it before
// scraping.
func (h *StripedHistogram) FlushAll() {
	if h == nil {
		return
	}
	h.mu.Lock()
	ws := append([]*StripeWriter(nil), h.writers...)
	h.mu.Unlock()
	for _, w := range ws {
		w.Flush()
	}
}

// defaultFlushEvery is how many records a StripeWriter accumulates
// before folding them into its stripe. 256 keeps the amortized atomic
// cost below one op per ~50 records while bounding scrape lag.
const defaultFlushEvery = 256

// StripeWriter is one goroutine's recording handle. Observe and Flush
// must only be called by the owning goroutine; the shared histogram may
// be scraped concurrently.
type StripeWriter struct {
	h *StripedHistogram
	s *hstripe

	// Classification fields copied from the histogram at Writer() time:
	// Observe runs tens of millions of times a second, and reading them
	// here instead of through w.h drops a dependent load from the hot
	// path.
	unit     float64
	unitExp  int32
	unitMant uint64
	nb       int32

	flushEvery uint32
	pending    uint32 // records since last flush
	sum        float64
	// One slot past maxStripedBuckets would do; 64 lets Observe mask the
	// index (i & 63) so the compiler drops the bounds check.
	local [64]uint32
}

// Observe records one sample: an array increment, a float add, and an
// amortized flush. Zero allocations (pinned by TestStripeWriterAllocs).
// The bucket math is index() inlined against the writer-local copies of
// the histogram's classification fields.
func (w *StripeWriter) Observe(v float64) {
	if w == nil {
		return
	}
	i := 0
	if v > w.unit {
		bv := math.Float64bits(v)
		i = int(bv>>52&0x7ff) - int(w.unitExp)
		if bv&stripedMantMask > w.unitMant {
			i++
		}
		if i > int(w.nb) {
			i = int(w.nb)
		}
	}
	w.local[i&63]++
	w.sum += v
	w.pending++
	if w.pending >= w.flushEvery {
		w.Flush()
	}
}

// Flush folds the pending local counts into the shared stripe.
func (w *StripeWriter) Flush() {
	if w == nil || w.pending == 0 {
		return
	}
	for i := 0; i <= w.h.nb; i++ {
		if d := w.local[i]; d != 0 {
			w.s.buckets[i].Add(uint64(d))
			w.local[i] = 0
		}
	}
	w.s.count.Add(uint64(w.pending))
	atomicAddFloat(&w.s.sumBits, w.sum)
	w.pending = 0
	w.sum = 0
}

// HistogramSnapshot is a merged, plain-value view of a StripedHistogram
// at one scrape.
type HistogramSnapshot struct {
	Upper   []float64 // finite upper bounds, ascending
	Buckets []uint64  // len(Upper)+1; the last is the overflow bucket
	Count   uint64
	Sum     float64
}

// Snapshot merges every stripe into one consistent-enough view (see the
// type comment for the racing-flush caveat).
func (h *StripedHistogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Upper:   h.UpperBounds(),
		Buckets: make([]uint64, h.nb+1),
	}
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := 0; b <= h.nb; b++ {
			s.Buckets[b] += st.buckets[b].Load()
		}
		s.Count += st.count.Load()
		s.Sum += math.Float64frombits(st.sumBits.Load())
	}
	return s
}

// Count returns the merged observation count.
func (h *StripedHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.stripes {
		n += h.stripes[i].count.Load()
	}
	return n
}

// Mean returns the mean observation (NaN when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the crossing bucket. The overflow bucket reports its lower
// bound (a deliberate under-estimate: the histogram has no upper
// evidence there). NaN when empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Buckets {
		cum += float64(n)
		if cum < rank {
			continue
		}
		if i >= len(s.Upper) { // overflow bucket
			return s.Upper[len(s.Upper)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Upper[i-1]
		}
		hi := s.Upper[i]
		if n == 0 {
			return lo
		}
		frac := (rank - (cum - float64(n))) / float64(n)
		return lo + frac*(hi-lo)
	}
	return s.Upper[len(s.Upper)-1]
}

// writeExposition renders the merged view in the same shape as a plain
// Histogram (cumulative le buckets, _sum, _count).
func (h *StripedHistogram) writeExposition(b *strings.Builder, name, labels string) {
	s := h.Snapshot()
	var cum uint64
	for i, up := range s.Upper {
		cum += s.Buckets[i]
		writeSample(b, name+"_bucket", joinLabels(labels, `le="`+formatFloat(up)+`"`), float64(cum))
	}
	cum += s.Buckets[len(s.Upper)]
	writeSample(b, name+"_bucket", joinLabels(labels, `le="+Inf"`), float64(cum))
	writeSample(b, name+"_sum", labels, s.Sum)
	writeSample(b, name+"_count", labels, float64(s.Count))
}
