package telemetry

import (
	"net/http"
)

// Handler returns an http.Handler serving the registry at /metrics
// (Prometheus text exposition) and the tracer at /trace (JSONL). Either
// argument may be nil, in which case its endpoint serves an empty body.
func Handler(r *Registry, t *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = WriteJSONL(w, t)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("dtp telemetry: GET /metrics (Prometheus) or /trace (JSONL)\n"))
	})
	return mux
}
