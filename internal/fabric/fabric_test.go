package fabric

import (
	"testing"

	"github.com/dtplab/dtp/internal/eth"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/topo"
)

func newStar(t *testing.T, cfg Config) (*sim.Scheduler, *Network) {
	t.Helper()
	sch := sim.NewScheduler()
	n, err := New(sch, 1, topo.Star(4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sch, n
}

func TestFrameDeliveredToHandler(t *testing.T) {
	sch, n := newStar(t, DefaultConfig())
	var got *eth.Frame
	var rxAt sim.Time
	n.Handle(2, eth.ProtoApp, func(f *eth.Frame, rx sim.Time) { got, rxAt = f, rx })
	f := &eth.Frame{Src: 1, Dst: 2, Size: eth.MTUFrame, Proto: eth.ProtoApp}
	sch.After(sim.Microsecond, func() {
		if !n.Send(f) {
			t.Error("send failed")
		}
	})
	sch.Run(sim.Millisecond)
	if got == nil {
		t.Fatal("frame not delivered")
	}
	if got.Hops != 1 {
		t.Fatalf("hops = %d, want 1 (one switch)", got.Hops)
	}
	if f.TxStart != sim.Microsecond {
		t.Fatalf("TX hardware timestamp %v, want 1us", f.TxStart)
	}
	// Latency sanity for cut-through: two 10m cables (100ns), header
	// (51.2ns) + proc (500ns) at the switch, and one full MTU
	// serialization (~1218ns) observed at the receiving NIC (the source
	// serialization overlaps with forwarding).
	lat := rxAt - f.TxStart
	if lat < 1800*sim.Nanosecond || lat > 2*sim.Microsecond {
		t.Fatalf("path latency %v, want ~1.87us", lat)
	}
}

func TestStoreAndForwardSlower(t *testing.T) {
	cfgCT := DefaultConfig()
	cfgSF := DefaultConfig()
	cfgSF.CutThrough = false
	lat := func(cfg Config) sim.Time {
		sch, n := newStar(t, cfg)
		var rxAt sim.Time
		n.Handle(2, eth.ProtoApp, func(f *eth.Frame, rx sim.Time) { rxAt = rx })
		n.Send(&eth.Frame{Src: 1, Dst: 2, Size: eth.MTUFrame, Proto: eth.ProtoApp})
		sch.Run(sim.Millisecond)
		return rxAt
	}
	ct, sf := lat(cfgCT), lat(cfgSF)
	if sf <= ct {
		t.Fatalf("store-and-forward (%v) not slower than cut-through (%v)", sf, ct)
	}
	// The difference should be about one MTU serialization minus header.
	diff := sf - ct
	if diff < sim.Microsecond || diff > 1400*sim.Nanosecond {
		t.Fatalf("SF-CT latency difference %v, want ~1.17us", diff)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	sch, n := newStar(t, DefaultConfig())
	var order []int
	n.Handle(2, eth.ProtoApp, func(f *eth.Frame, rx sim.Time) {
		order = append(order, f.Payload.(int))
	})
	for i := 0; i < 50; i++ {
		n.Send(&eth.Frame{Src: 1, Dst: 2, Size: eth.MinFrame, Proto: eth.ProtoApp, Payload: i})
	}
	sch.Run(sim.Millisecond)
	if len(order) != 50 {
		t.Fatalf("delivered %d/50", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("reordered: position %d has %d", i, v)
		}
	}
}

func TestQueueTailDrop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueCapBytes = 10 * eth.MTUFrame
	sch, n := newStar(t, cfg)
	delivered := 0
	n.Handle(2, eth.ProtoApp, func(f *eth.Frame, rx sim.Time) { delivered++ })
	// Source queue capacity is the binding constraint: blast 100 frames
	// instantaneously.
	sent := 0
	for i := 0; i < 100; i++ {
		if n.Send(&eth.Frame{Src: 1, Dst: 2, Size: eth.MTUFrame, Proto: eth.ProtoApp}) {
			sent++
		}
	}
	sch.Run(10 * sim.Millisecond)
	if sent >= 100 {
		t.Fatal("no sends rejected despite tiny queue")
	}
	if n.Drops() == 0 {
		t.Fatal("drop counter not incremented")
	}
	if delivered != sent {
		t.Fatalf("delivered %d != accepted %d", delivered, sent)
	}
}

func TestQueueingDelayGrowsWithContention(t *testing.T) {
	// Two hosts blast the same destination: the switch egress toward it
	// must queue about half the offered load.
	sch, n := newStar(t, DefaultConfig())
	var worst sim.Time
	probeSent := sim.Time(0)
	n.Handle(2, eth.ProtoApp, func(f *eth.Frame, rx sim.Time) {
		if d := rx - probeSent; d > worst {
			worst = d
		}
	})
	g1 := NewTrafficGen(n, 3, 2, eth.MTUFrame, 9, 16, 11)
	g2 := NewTrafficGen(n, 4, 2, eth.MTUFrame, 9, 16, 12)
	g1.Start()
	g2.Start()
	// Periodic probes measure path latency under congestion.
	var probe func()
	probe = func() {
		probeSent = sch.Now()
		n.Send(&eth.Frame{Src: 1, Dst: 2, Size: eth.MinFrame, Proto: eth.ProtoApp})
		sch.After(sim.Millisecond, probe)
	}
	sch.After(0, probe)
	sch.Run(20 * sim.Millisecond)
	if worst < 10*sim.Microsecond {
		t.Fatalf("worst probe latency %v; expected >=10us of queueing under 2x9Gbps into 10Gbps", worst)
	}
}

func TestTransparentClockRealisticMissesQueueWait(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TC = TCRealistic
	cfg.TCQuantNs = 0
	sch, n := newStar(t, cfg)
	var corr int64
	var rxAt sim.Time
	var f *eth.Frame
	n.Handle(2, eth.ProtoPTPEvent, func(fr *eth.Frame, rx sim.Time) { f, corr, rxAt = fr, fr.CorrectionPs, rx })
	// Contend the switch egress toward host 2 so the PTP frame suffers
	// real queue wait the realistic TC will fail to measure.
	for i := 0; i < 60; i++ {
		n.Send(&eth.Frame{Src: 3, Dst: 2, Size: eth.MTUFrame, Proto: eth.ProtoBulk})
		n.Send(&eth.Frame{Src: 4, Dst: 2, Size: eth.MTUFrame, Proto: eth.ProtoBulk})
	}
	sch.After(30*sim.Microsecond, func() {
		n.Send(&eth.Frame{Src: 1, Dst: 2, Size: eth.PTPEventFrame, Proto: eth.ProtoPTPEvent})
	})
	sch.Run(10 * sim.Millisecond)
	if f == nil {
		t.Fatal("PTP frame lost")
	}
	_ = rxAt
	// Realistic TC correction covers only pipeline latency (~551ns =
	// header 51ns + proc 500ns), far less than the ~60us queue wait.
	if corr > int64(2*sim.Microsecond) {
		t.Fatalf("realistic TC correction %dps covers queue wait; should not", corr)
	}
}

func TestTransparentClockPerfectCoversQueueWait(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TC = TCPerfect
	cfg.TCQuantNs = 0
	sch, n := newStar(t, cfg)
	var corr int64
	n.Handle(2, eth.ProtoPTPEvent, func(fr *eth.Frame, rx sim.Time) { corr = fr.CorrectionPs })
	// Two hosts blast the shared switch egress toward host 2, building
	// a real queue there; the PTP frame arrives mid-burst and waits.
	for i := 0; i < 60; i++ {
		n.Send(&eth.Frame{Src: 3, Dst: 2, Size: eth.MTUFrame, Proto: eth.ProtoBulk})
		n.Send(&eth.Frame{Src: 4, Dst: 2, Size: eth.MTUFrame, Proto: eth.ProtoBulk})
	}
	sch.After(30*sim.Microsecond, func() {
		n.Send(&eth.Frame{Src: 1, Dst: 2, Size: eth.PTPEventFrame, Proto: eth.ProtoPTPEvent})
	})
	sch.Run(10 * sim.Millisecond)
	// The switch egress held tens of microseconds of backlog; a perfect
	// TC must have measured the wait.
	if corr < int64(10*sim.Microsecond) {
		t.Fatalf("perfect TC correction %dps did not cover queue wait", corr)
	}
}

func TestTCOffNoCorrection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TC = TCOff
	sch, n := newStar(t, cfg)
	var corr int64 = -1
	n.Handle(2, eth.ProtoPTPEvent, func(fr *eth.Frame, rx sim.Time) { corr = fr.CorrectionPs })
	n.Send(&eth.Frame{Src: 1, Dst: 2, Size: eth.PTPEventFrame, Proto: eth.ProtoPTPEvent})
	sch.Run(sim.Millisecond)
	if corr != 0 {
		t.Fatalf("correction %d with TC off", corr)
	}
}

func TestPTPPriorityQueueJumpsBulk(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PTPPriority = true
	sch, n := newStar(t, cfg)
	var ptpAt, firstBulkAt sim.Time
	bulkDelivered := 0
	n.Handle(2, eth.ProtoPTPEvent, func(f *eth.Frame, rx sim.Time) { ptpAt = rx })
	n.Handle(2, eth.ProtoBulk, func(f *eth.Frame, rx sim.Time) {
		bulkDelivered++
		if firstBulkAt == 0 {
			firstBulkAt = rx
		}
	})
	// Two hosts contend for host 2's link with bulk frames, then a PTP
	// event frame arrives: with strict priority it must overtake the
	// whole backlog.
	for i := 0; i < 40; i++ {
		n.Send(&eth.Frame{Src: 3, Dst: 2, Size: eth.MTUFrame, Proto: eth.ProtoBulk})
		n.Send(&eth.Frame{Src: 4, Dst: 2, Size: eth.MTUFrame, Proto: eth.ProtoBulk})
	}
	// At 40 us the switch egress toward host 2 holds ~40 us of backlog
	// (2x line rate in, 1x out). A priority frame sent then must jump
	// it, arriving within a few serializations.
	sch.After(40*sim.Microsecond, func() {
		n.Send(&eth.Frame{Src: 1, Dst: 2, Size: eth.PTPEventFrame, Proto: eth.ProtoPTPEvent})
	})
	sch.Run(sim.Millisecond)
	if bulkDelivered != 80 {
		t.Fatalf("bulk delivered %d/80", bulkDelivered)
	}
	if ptpAt == 0 {
		t.Fatal("PTP frame lost")
	}
	if ptpAt > 50*sim.Microsecond {
		t.Fatalf("priority PTP frame arrived at %v — waited behind bulk", ptpAt)
	}
}

func TestPTPPriorityOffWaitsInFIFO(t *testing.T) {
	sch, n := newStar(t, DefaultConfig()) // priority disabled
	var ptpAt sim.Time
	n.Handle(2, eth.ProtoPTPEvent, func(f *eth.Frame, rx sim.Time) { ptpAt = rx })
	for i := 0; i < 40; i++ {
		n.Send(&eth.Frame{Src: 3, Dst: 2, Size: eth.MTUFrame, Proto: eth.ProtoBulk})
		n.Send(&eth.Frame{Src: 4, Dst: 2, Size: eth.MTUFrame, Proto: eth.ProtoBulk})
	}
	sch.After(40*sim.Microsecond, func() {
		n.Send(&eth.Frame{Src: 1, Dst: 2, Size: eth.PTPEventFrame, Proto: eth.ProtoPTPEvent})
	})
	sch.Run(sim.Millisecond)
	// It lands behind ~40 us of switch backlog plus its own path.
	if ptpAt < 70*sim.Microsecond {
		t.Fatalf("FIFO PTP frame at %v did not wait behind the backlog", ptpAt)
	}
}

func TestBulkTrafficRate(t *testing.T) {
	sch, n := newStar(t, DefaultConfig())
	received := 0
	n.Handle(2, eth.ProtoBulk, func(f *eth.Frame, rx sim.Time) { received++ })
	g := NewTrafficGen(n, 1, 2, eth.MTUFrame, 4.0, 8, 21)
	g.Start()
	sch.Run(50 * sim.Millisecond)
	g.Stop()
	// 4 Gbps of 1522B frames for 50ms = ~16.4k frames.
	gotGbps := float64(received*eth.MTUFrame*8) / 1e9 / 0.050
	if gotGbps < 3.5 || gotGbps > 4.5 {
		t.Fatalf("delivered %.2f Gbps, want ~4", gotGbps)
	}
	if g.Sent() == 0 {
		t.Fatal("generator sent nothing")
	}
}

func TestSprayGenHitsAllDestinations(t *testing.T) {
	sch, n := newStar(t, DefaultConfig())
	got := map[int]int{}
	for _, node := range []int{2, 3, 4, 5} {
		node := node
		n.Handle(node, eth.ProtoBulk, func(f *eth.Frame, rx sim.Time) { got[node]++ })
	}
	g := NewSprayGen(n, 2, []int{2, 3, 4, 5}, 4.0, 8, 77)
	g.Start()
	sch.Run(20 * sim.Millisecond)
	g.Stop()
	sch.RunFor(5 * sim.Millisecond)
	if g.Sent() == 0 {
		t.Fatal("sprayer sent nothing")
	}
	if got[2] != 0 {
		t.Fatal("sprayer sent to itself")
	}
	for _, node := range []int{3, 4, 5} {
		if got[node] == 0 {
			t.Fatalf("destination %d never hit", node)
		}
	}
	after := g.Sent()
	sch.RunFor(20 * sim.Millisecond)
	if g.Sent() != after {
		t.Fatal("stopped sprayer kept sending")
	}
}

func TestSprayGenNeedsDestinations(t *testing.T) {
	_, n := newStar(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("empty destination set accepted")
		}
	}()
	NewSprayGen(n, 2, nil, 1, 1, 1)
}

func TestMultiHopDelivery(t *testing.T) {
	sch := sim.NewScheduler()
	n, err := New(sch, 3, topo.PaperTree(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s4, _ := n.Graph.ByName("s4")
	s11, _ := n.Graph.ByName("s11")
	var hops int
	n.Handle(s11.ID, eth.ProtoApp, func(f *eth.Frame, rx sim.Time) { hops = f.Hops })
	n.Send(&eth.Frame{Src: s4.ID, Dst: s11.ID, Size: eth.MTUFrame, Proto: eth.ProtoApp})
	sch.Run(sim.Millisecond)
	if hops != 3 {
		t.Fatalf("hops = %d, want 3 switches (s1, s0, s3)", hops)
	}
}

func TestQueueDepthObservable(t *testing.T) {
	sch, n := newStar(t, DefaultConfig())
	for i := 0; i < 20; i++ {
		n.Send(&eth.Frame{Src: 1, Dst: 2, Size: eth.MTUFrame, Proto: eth.ProtoBulk})
	}
	if n.QueueDepthBytes(1, 2) == 0 {
		t.Fatal("source egress queue empty right after 20 sends")
	}
	sch.Run(10 * sim.Millisecond)
	if n.QueueDepthBytes(1, 2) != 0 {
		t.Fatal("queue did not drain")
	}
	if n.Delivered() == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestSendRejectsZeroSize(t *testing.T) {
	_, n := newStar(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size frame accepted")
		}
	}()
	n.Send(&eth.Frame{Src: 1, Dst: 2, Proto: eth.ProtoApp})
}

func TestBadConfigRejected(t *testing.T) {
	sch := sim.NewScheduler()
	if _, err := New(sch, 1, topo.Star(2), Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := DefaultConfig()
	cfg.QueueCapBytes = 0
	if _, err := New(sch, 1, topo.Star(2), cfg); err == nil {
		t.Fatal("zero queue accepted")
	}
}
