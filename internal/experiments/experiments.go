// Package experiments contains one entry point per table and figure of
// the paper's evaluation (§6), shared by cmd/dtpexp and the benchmark
// harness. Each experiment builds the corresponding deployment,
// runs it for a (time-compressed) measurement window, and returns
// structured results; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"

	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/discipline"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/stats"
	"github.com/dtplab/dtp/internal/topo"
)

// Options control an experiment run.
type Options struct {
	// Seed makes the run reproducible.
	Seed uint64
	// Duration is the measurement window in simulated time (after
	// settling). Zero selects a per-experiment default.
	Duration sim.Time
	// SamplePeriod is the offset sampling cadence. Zero = default.
	SamplePeriod sim.Time
	// Jobs is the worker-pool width for sweeps whose points are
	// independent simulations (<= 0 selects GOMAXPROCS). Results are
	// merged in point order, so the output is identical for any value.
	Jobs int
	// Discipline selects the daemon's software-clock estimator for the
	// experiments that attach daemons (Figure 7). The zero value is the
	// paper's moving average.
	Discipline discipline.Config
}

func (o Options) withDefaults(dur, sample sim.Time) Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Duration == 0 {
		o.Duration = dur
	}
	if o.SamplePeriod == 0 {
		o.SamplePeriod = sample
	}
	return o
}

// DTPFigResult is the output of the DTP precision experiments
// (Figures 6a–c).
type DTPFigResult struct {
	// PairSummaries holds the protocol's own offset samples
	// (t2 - t1 - OWD, in ticks) keyed by "receiver-sender".
	PairSummaries map[string]*stats.Summary
	// PairSeries holds offset-vs-time traces for the figure's pairs.
	PairSeries map[string]*stats.Series
	// Hist is the pooled offset distribution (Figure 6c's PDF).
	Hist map[string]*stats.IntHist
	// MaxAbsTicks is the worst protocol-observed |offset| in ticks.
	MaxAbsTicks float64
	// MaxTrueTicks is the worst ground-truth adjacent |offset|.
	MaxTrueTicks int64
	// BoundTicks is the 4TD bound for directly connected devices (4).
	BoundTicks int64
}

// figPairs are the link directions plotted in Figure 6.
var figPairs = []string{
	"s1-s4", "s1-s5", "s1-s0",
	"s2-s7", "s2-s8", "s2-s0",
	"s3-s10", "s3-s11", "s3-s0", "s3-s9",
}

// runDTPFig is the shared engine of Figures 6a–c: the paper tree under
// saturating load, beacons confined to interpacket gaps.
func runDTPFig(o Options, frameOctets int, beaconInterval uint64) (*DTPFigResult, error) {
	o = o.withDefaults(2*sim.Second, 250*sim.Microsecond)
	sch := sim.NewScheduler()
	cfg := core.DefaultConfig()
	cfg.BeaconIntervalTicks = beaconInterval
	// Slow oscillator wander makes the traces move as in the figures;
	// compressed in time like everything else.
	cfg.WanderInterval = 10 * sim.Millisecond
	cfg.WanderStepPPB = 100
	n, err := core.NewNetwork(sch, o.Seed, topo.PaperTree(), cfg)
	if err != nil {
		return nil, err
	}
	res := &DTPFigResult{
		PairSummaries: map[string]*stats.Summary{},
		PairSeries:    map[string]*stats.Series{},
		Hist:          map[string]*stats.IntHist{},
		BoundTicks:    4,
	}
	wanted := map[string]bool{}
	for _, p := range figPairs {
		wanted[p] = true
	}
	n.OnOffset = func(rx *core.Port, off int64) {
		name := rx.PairName()
		if !wanted[name] {
			return
		}
		s := res.PairSummaries[name]
		if s == nil {
			s = stats.NewSummary(0)
			res.PairSummaries[name] = s
			res.PairSeries[name] = stats.NewSeries(20_000)
			res.Hist[name] = stats.NewIntHist()
		}
		s.Add(float64(off))
		res.PairSeries[name].Add(sch.Now().Seconds(), float64(off))
		res.Hist[name].Add(off)
	}
	// Links come up idle, the network synchronizes, then load starts.
	n.Start()
	sch.Run(10 * sim.Millisecond)
	if !n.AllSynced() {
		return nil, fmt.Errorf("experiments: network failed to synchronize")
	}
	n.SetGateAll(func(p *core.Port) core.TxGate {
		return core.NewSaturatedGate(frameOctets, 0)
	})
	end := sch.Now() + o.Duration
	for sch.Now() < end {
		sch.RunFor(o.SamplePeriod)
		if t := n.MaxAdjacentOffset(); t > res.MaxTrueTicks {
			res.MaxTrueTicks = t
		}
	}
	for _, s := range res.PairSummaries {
		if s.MaxAbs() > res.MaxAbsTicks {
			res.MaxAbsTicks = s.MaxAbs()
		}
	}
	return res, nil
}

// Fig6a reproduces Figure 6a: beacon interval 200 ticks, network
// heavily loaded with MTU-sized frames. Paper: offsets never exceed
// ±4 ticks (25.6 ns).
func Fig6a(o Options) (*DTPFigResult, error) {
	return runDTPFig(o, 1522, 200)
}

// Fig6b reproduces Figure 6b: beacon interval 1200, jumbo frames.
func Fig6b(o Options) (*DTPFigResult, error) {
	return runDTPFig(o, 9022, 1200)
}

// Fig6c reproduces Figure 6c: the offset distribution observed at S3
// (pairs s3-s9, s3-s10, s3-s11, s3-s0) over a long heavily loaded run
// with beacon interval 1200.
func Fig6c(o Options) (*DTPFigResult, error) {
	o = o.withDefaults(4*sim.Second, 250*sim.Microsecond)
	return runDTPFig(o, 9022, 1200)
}
