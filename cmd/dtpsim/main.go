// Command dtpsim runs an ad-hoc DTP simulation on a chosen topology and
// reports synchronization quality over time — a quick way to explore
// the protocol outside the canned paper experiments.
//
// Usage:
//
//	dtpsim -topo tree -duration 500ms -watch 50ms
//	dtpsim -topo fattree:4 -load mtu -seed 9
//	dtpsim -topo chain:6 -beacon 1200
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/dtplab/dtp"
	"github.com/dtplab/dtp/internal/telemetry"
)

var (
	topoFlag   = flag.String("topo", "pair", "topology: pair | tree | star:N | chain:N | fattree:K")
	durFlag    = flag.Duration("duration", 500*time.Millisecond, "simulated run length")
	watchFlag  = flag.Duration("watch", 100*time.Millisecond, "offset report interval")
	seedFlag   = flag.Uint64("seed", 1, "deterministic seed")
	beaconFlag = flag.Uint64("beacon", 200, "beacon interval in ticks")
	loadFlag   = flag.String("load", "none", "link load: none | mtu | jumbo")
	wanderFlag = flag.Bool("wander", true, "enable oscillator wander")
	berFlag    = flag.Float64("ber", 0, "wire bit error rate")
	auditFlag  = flag.Bool("audit", false, "run the online 4TD-bound auditor; exit 1 on any violation")
	chaosFlag  = flag.String("chaos", "", "fault-injection scenario JSON (see internal/chaos); implies -audit, exits 1 unless the campaign verifies")
	auditEvery = flag.Duration("audit-every", 100*time.Microsecond, "auditor check cadence (simulated time)")
	metricsOut = flag.String("metrics-out", "", "write final metrics (Prometheus text format) to this file")
	traceOut   = flag.String("trace-out", "", "write the protocol event trace (JSONL) to this file")
	traceCap   = flag.Int("trace-cap", 1<<20, "trace ring capacity; firehose kinds evict one-time INIT events from small rings")
)

func main() {
	flag.Parse()
	g, err := dtp.ParseTopology(*topoFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtpsim:", err)
		os.Exit(2)
	}
	opts := []dtp.Option{
		dtp.WithSeed(*seedFlag),
		dtp.WithBeaconInterval(*beaconFlag),
	}
	var scenario *dtp.ChaosScenario
	if *chaosFlag != "" {
		var err error
		if scenario, err = dtp.LoadChaosScenario(*chaosFlag); err != nil {
			fmt.Fprintln(os.Stderr, "dtpsim:", err)
			os.Exit(2)
		}
		*auditFlag = true // the campaign's zero-unexpected-violations claim needs the auditor
	}
	var reg *dtp.MetricsRegistry
	var tracer *dtp.Tracer
	if *metricsOut != "" || *traceOut != "" || *auditFlag {
		reg = dtp.NewMetricsRegistry()
		tracer = dtp.NewTracer(*traceCap)
		if *traceOut != "" {
			tracer.SetKinds() // dump requested: include per-beacon firehose kinds
		}
		opts = append(opts, dtp.WithTelemetry(reg, tracer))
	}
	if *wanderFlag {
		opts = append(opts, dtp.WithWander(10*time.Millisecond, 100))
	}
	if *berFlag > 0 {
		opts = append(opts, dtp.WithBER(*berFlag), dtp.WithParity())
	}
	sys, err := dtp.New(g, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtpsim:", err)
		os.Exit(1)
	}
	fmt.Printf("topology %s: %d devices, %d links, diameter %d, bound 4TD = %.1f ns\n",
		*topoFlag, len(g.Nodes), len(g.Links), g.Diameter(), sys.BoundNanos())

	if reg != nil {
		sys.EnableSchedulerMetrics(false) // wall-clock rate stays off: -metrics-out must be deterministic
	}
	var aud *dtp.Auditor
	if *auditFlag {
		aud = sys.EnableAudit(*auditEvery)
		fmt.Printf("auditor: checking every simulated %v against per-pair 4TD (+8T software margin)\n", *auditEvery)
	}
	var eng *dtp.ChaosEngine
	if scenario != nil {
		var err error
		if eng, err = sys.AttachChaos(scenario, aud); err != nil {
			fmt.Fprintln(os.Stderr, "dtpsim:", err)
			os.Exit(2)
		}
		fmt.Printf("chaos: scenario %q armed: %d faults, verification deadline %v\n",
			scenario.Name, len(scenario.Faults), eng.Deadline().Std())
	}

	sys.Start()
	if err := sys.RunUntilSynced(time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "dtpsim:", err)
		os.Exit(1)
	}
	fmt.Printf("all %d links measured their one-way delays at t=%v\n", len(g.Links), sys.Now())

	// Snapshot the trace now, while the one-shot INIT/synced events are
	// still in the ring: on long runs the beacon firehose evicts them
	// before the final dump, and offline analysis (dtptrace -assert-owd)
	// needs them. The snapshot is merged into the dump by sequence number.
	var earlyTrace []telemetry.Event
	if *traceOut != "" {
		earlyTrace = tracer.Events()
	}

	switch *loadFlag {
	case "mtu":
		sys.SetUniformLoad(1522)
		fmt.Println("links saturated with MTU frames (beacons confined to interpacket gaps)")
	case "jumbo":
		sys.SetUniformLoad(9022)
		fmt.Println("links saturated with jumbo frames")
	}

	fmt.Printf("%12s %14s %14s %10s\n", "t", "max offset", "bound", "ok")
	var worst int64
	for elapsed := time.Duration(0); elapsed < *durFlag; elapsed += *watchFlag {
		sys.Run(*watchFlag)
		off := sys.MaxOffsetTicks()
		if off > worst {
			worst = off
		}
		fmt.Printf("%12v %8d ticks %8d ticks %10v\n",
			sys.Now(), off, sys.BoundTicks(), off <= sys.BoundTicks())
	}
	fmt.Printf("worst offset over run: %d ticks = %.1f ns (bound %.1f ns)\n",
		worst, float64(worst)*sys.TickNanos(), sys.BoundNanos())
	chaosOK := true
	if eng != nil {
		// The watch loop may end before the last fault clears; the
		// campaign verdict is only valid past the scenario deadline.
		sys.RunUntil(eng.Deadline())
		if err := eng.Verify(); err != nil {
			fmt.Fprintln(os.Stderr, "dtpsim:", err)
			chaosOK = false
		}
		fmt.Println(eng.Summary())
	}
	if aud != nil {
		fmt.Println(aud.Summary())
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, func(f *os.File) error { return dtp.WriteMetrics(f, reg) }); err != nil {
			fmt.Fprintln(os.Stderr, "dtpsim:", err)
			os.Exit(1)
		}
		fmt.Printf("metrics written to %s\n", *metricsOut)
	}
	if *traceOut != "" {
		final := tracer.Events()
		var events []telemetry.Event
		for _, e := range earlyTrace {
			if len(final) == 0 || e.Seq < final[0].Seq {
				events = append(events, e)
			}
		}
		events = append(events, final...)
		if err := writeFile(*traceOut, func(f *os.File) error { return telemetry.WriteEvents(f, events) }); err != nil {
			fmt.Fprintln(os.Stderr, "dtpsim:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (%d events)\n", *traceOut, len(events))
	}
	if !chaosOK {
		os.Exit(1)
	}
	// Under chaos the instantaneous worst legitimately exceeds the bound
	// while faults are active; the engine's windowed verification above
	// is the authoritative check then.
	if eng == nil && worst > sys.BoundTicks() {
		os.Exit(1)
	}
	if aud != nil && aud.Violations() > 0 {
		os.Exit(1)
	}
}

// writeFile creates path, runs fill, and closes it, returning the first
// error encountered.
func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
