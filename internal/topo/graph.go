// Package topo describes network topologies as undirected graphs of hosts
// and switches plus cable lengths. Both the DTP network (internal/core)
// and the packet fabric used by the PTP/NTP baselines (internal/fabric)
// are instantiated from these descriptions.
package topo

import (
	"fmt"
)

// Kind distinguishes end hosts (NICs) from switches.
type Kind int

const (
	Host Kind = iota
	Switch
)

func (k Kind) String() string {
	if k == Host {
		return "host"
	}
	return "switch"
}

// Node is a device in the topology.
type Node struct {
	ID   int
	Name string
	Kind Kind
}

// Link is an undirected cable between two nodes.
type Link struct {
	A, B    int // node IDs
	LengthM float64
}

// Graph is a topology description.
type Graph struct {
	Nodes []Node
	Links []Link
}

// Validate checks node IDs are dense [0,n), names unique, links refer to
// existing distinct nodes, and the graph is connected.
func (g *Graph) Validate() error {
	names := make(map[string]bool, len(g.Nodes))
	for i, n := range g.Nodes {
		if n.ID != i {
			return fmt.Errorf("topo: node %q has ID %d at index %d", n.Name, n.ID, i)
		}
		if names[n.Name] {
			return fmt.Errorf("topo: duplicate node name %q", n.Name)
		}
		names[n.Name] = true
	}
	for _, l := range g.Links {
		if l.A < 0 || l.A >= len(g.Nodes) || l.B < 0 || l.B >= len(g.Nodes) {
			return fmt.Errorf("topo: link %d-%d out of range", l.A, l.B)
		}
		if l.A == l.B {
			return fmt.Errorf("topo: self-link on node %d", l.A)
		}
		if l.LengthM <= 0 {
			return fmt.Errorf("topo: link %d-%d has non-positive length", l.A, l.B)
		}
	}
	if len(g.Nodes) > 0 && len(g.ComponentOf(0)) != len(g.Nodes) {
		return fmt.Errorf("topo: graph is not connected")
	}
	return nil
}

// Adjacency returns, per node, the indices into Links of incident links.
func (g *Graph) Adjacency() [][]int {
	adj := make([][]int, len(g.Nodes))
	for i, l := range g.Links {
		adj[l.A] = append(adj[l.A], i)
		adj[l.B] = append(adj[l.B], i)
	}
	return adj
}

// ComponentOf returns the set of node IDs reachable from start.
func (g *Graph) ComponentOf(start int) []int {
	adj := g.Adjacency()
	seen := make([]bool, len(g.Nodes))
	var out []int
	queue := []int{start}
	seen[start] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		for _, li := range adj[v] {
			l := g.Links[li]
			next := l.A
			if next == v {
				next = l.B
			}
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return out
}

// Hops returns the hop-count distance matrix (BFS over links). Hops[i][j]
// is the number of links on a shortest path; -1 if unreachable.
func (g *Graph) Hops() [][]int {
	hops, _ := g.HopsWith(nil, nil)
	return hops
}

// HopsWith returns hop-count distances like Hops, but traverses only
// links for which active[i] is true (active == nil means every link),
// and additionally accumulates per-link weights along the BFS shortest
// path when weights is non-nil. Unreachable pairs have hops -1.
//
// The online auditor (internal/audit) uses it to derive each device
// pair's live 4TD bound: hops over the currently synchronized links,
// weighted by each link's per-hop error contribution, so the bound
// tightens and relaxes as links flap and mixed-speed hops are charged
// their own 4-cycle share.
func (g *Graph) HopsWith(active []bool, weights []int64) (hops [][]int, wsum [][]int64) {
	n := len(g.Nodes)
	adj := g.Adjacency()
	hops = make([][]int, n)
	if weights != nil {
		wsum = make([][]int64, n)
	}
	for s := 0; s < n; s++ {
		d := make([]int, n)
		for i := range d {
			d[i] = -1
		}
		var wrow []int64
		if weights != nil {
			wrow = make([]int64, n)
		}
		d[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, li := range adj[v] {
				if active != nil && !active[li] {
					continue
				}
				l := g.Links[li]
				next := l.A
				if next == v {
					next = l.B
				}
				if d[next] < 0 {
					d[next] = d[v] + 1
					if wrow != nil {
						wrow[next] = wrow[v] + weights[li]
					}
					queue = append(queue, next)
				}
			}
		}
		hops[s] = d
		if wsum != nil {
			wsum[s] = wrow
		}
	}
	return hops, wsum
}

// Diameter returns the longest shortest-path hop count between any two
// nodes — the D in the paper's 4TD precision bound.
func (g *Graph) Diameter() int {
	max := 0
	for _, row := range g.Hops() {
		for _, d := range row {
			if d > max {
				max = d
			}
		}
	}
	return max
}

// HostDiameter returns the longest shortest-path hop count between any
// two *hosts* — the distance that matters for end-to-end precision.
func (g *Graph) HostDiameter() int {
	hops := g.Hops()
	max := 0
	for i, ni := range g.Nodes {
		if ni.Kind != Host {
			continue
		}
		for j, nj := range g.Nodes {
			if nj.Kind != Host || i == j {
				continue
			}
			if d := hops[i][j]; d > max {
				max = d
			}
		}
	}
	return max
}

// NextHop computes static shortest-path routing: NextHop[src][dst] is the
// link index to take from src toward dst (-1 for src == dst). Ties are
// broken deterministically by link index.
func (g *Graph) NextHop() [][]int {
	n := len(g.Nodes)
	adj := g.Adjacency()
	table := make([][]int, n)
	for dst := 0; dst < n; dst++ {
		// BFS backwards from dst; first-discovered parent link wins.
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		via := make([]int, n)
		for i := range via {
			via[i] = -1
		}
		dist[dst] = 0
		queue := []int{dst}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, li := range adj[v] {
				l := g.Links[li]
				next := l.A
				if next == v {
					next = l.B
				}
				if dist[next] < 0 {
					dist[next] = dist[v] + 1
					via[next] = li
					queue = append(queue, next)
				}
			}
		}
		for src := 0; src < n; src++ {
			if table[src] == nil {
				table[src] = make([]int, n)
			}
			table[src][dst] = via[src]
		}
	}
	return table
}

// HostIDs returns the IDs of all host nodes.
func (g *Graph) HostIDs() []int {
	var out []int
	for _, n := range g.Nodes {
		if n.Kind == Host {
			out = append(out, n.ID)
		}
	}
	return out
}

// SwitchIDs returns the IDs of all switch nodes.
func (g *Graph) SwitchIDs() []int {
	var out []int
	for _, n := range g.Nodes {
		if n.Kind == Switch {
			out = append(out, n.ID)
		}
	}
	return out
}

// ByName returns the node with the given name.
func (g *Graph) ByName(name string) (Node, bool) {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return Node{}, false
}
