// Package ntp implements the Network Time Protocol baseline (§2.4.1):
// a UDP request/response exchange with *software* timestamps — every
// timestamp passes through a modelled kernel/userspace network stack
// with long-tailed latency — an eight-sample clock filter selecting the
// minimum-delay sample, and slew-based clock adjustment. The paper's
// Table 1 characterizes NTP at microsecond precision in a LAN; the
// dominant error here is exactly the stack jitter DTP eliminates by
// running in the PHY.
package ntp

import (
	"fmt"
	"math"

	"github.com/dtplab/dtp/internal/eth"
	"github.com/dtplab/dtp/internal/fabric"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/swclock"
)

// Config holds NTP deployment parameters.
type Config struct {
	// PollInterval is the client's request cadence (LAN deployments
	// poll every 16–64 s; compress for simulation).
	PollInterval sim.Time
	// StackMedianUs / StackSigma parameterize the lognormal software
	// timestamping latency at each of the four timestamp points:
	// syscall, kernel buffering, DMA and interrupt scheduling (§2.3.2).
	StackMedianUs float64
	StackSigma    float64
	// FilterWindow is the clock-filter depth (RFC 5905 uses 8).
	FilterWindow int
	// StepThresholdUs: offsets beyond this step the clock.
	StepThresholdUs float64
	// ServoGain is the fraction of the filtered offset slewed out per
	// poll.
	ServoGain float64
	// PPMRange bounds the client system-clock oscillator error.
	PPMRange float64
}

// DefaultConfig matches a tuned LAN ntpd.
func DefaultConfig() Config {
	return Config{
		PollInterval:    16 * sim.Second,
		StackMedianUs:   15,
		StackSigma:      0.7,
		FilterWindow:    8,
		StepThresholdUs: 128_000, // 128 ms, ntpd's step threshold
		ServoGain:       0.5,
		PPMRange:        50,
	}
}

// Compressed scales the poll interval by 1/k for compressed-time runs.
func (c Config) Compressed(k int64) Config {
	if k > 1 {
		c.PollInterval /= sim.Time(k)
	}
	return c
}

type request struct {
	Seq    uint64
	Client int
	T1     float64 // client transmit timestamp (client clock, ps)
}

type response struct {
	Seq uint64
	T1  float64 // echoed
	T2  float64 // server receive (server clock, ps)
	T3  float64 // server transmit (server clock, ps)
}

// Server is a stratum-1 NTP server: its clock is true time, read through
// the software stack.
type Server struct {
	net  *fabric.Network
	cfg  Config
	rng  *sim.RNG
	node int
}

// NewServer installs an NTP server at a host node.
func NewServer(n *fabric.Network, node int, cfg Config, seed uint64) *Server {
	s := &Server{net: n, cfg: cfg, node: node, rng: sim.NewRNG(seed, fmt.Sprintf("ntp/server/%d", node))}
	n.Handle(node, eth.ProtoNTP, s.onRequest)
	return s
}

// stackDelay models one software timestamping point.
func stackDelay(rng *sim.RNG, cfg Config) sim.Time {
	us := rng.LogNormal(math.Log(cfg.StackMedianUs), cfg.StackSigma)
	return sim.Time(us * float64(sim.Microsecond))
}

func (s *Server) onRequest(f *eth.Frame, rx sim.Time) {
	req, ok := f.Payload.(request)
	if !ok {
		return
	}
	// Receive path: the datagram is timestamped after traversing the
	// stack; transmit path adds another traversal before the wire.
	recvStack := stackDelay(s.rng, s.cfg)
	s.net.Sch.After(recvStack, func() {
		t2 := float64(s.net.Sch.Now())
		sendStack := stackDelay(s.rng, s.cfg)
		s.net.Sch.After(sendStack, func() {
			t3 := float64(s.net.Sch.Now())
			s.net.Send(&eth.Frame{
				Src: s.node, Dst: req.Client, Size: eth.UDPNTPFrame,
				Proto: eth.ProtoNTP, Payload: response{Seq: req.Seq, T1: req.T1, T2: t2, T3: t3},
			})
		})
	})
}

// Client is an NTP client disciplining its system clock to a server.
type Client struct {
	net  *fabric.Network
	cfg  Config
	rng  *sim.RNG
	node int
	srv  int

	Clock *swclock.Clock

	seq     uint64
	stopped bool
	synced  bool

	// filter holds (offset, delay) samples.
	filter []sample

	polls, replies, steps uint64

	// OnSample receives each filtered offset (ps).
	OnSample func(offsetPs float64)
}

type sample struct{ offset, delay float64 }

// NewClient installs an NTP client at a host node.
func NewClient(n *fabric.Network, node, server int, cfg Config, seed uint64) *Client {
	rng := sim.NewRNG(seed, fmt.Sprintf("ntp/client/%d", node))
	c := &Client{
		net: n, cfg: cfg, node: node, srv: server, rng: rng,
		Clock: swclock.New(n.Sch, rng.Uniform(-cfg.PPMRange, cfg.PPMRange)),
	}
	c.Clock.Step(rng.Uniform(-1e10, 1e10)) // ±10 ms initial error
	n.Handle(node, eth.ProtoNTP, c.onResponse)
	return c
}

// Start begins polling.
func (c *Client) Start() {
	c.stopped = false
	c.net.Sch.After(c.rng.UniformTime(0, c.cfg.PollInterval), c.poll)
}

// Stop halts polling.
func (c *Client) Stop() { c.stopped = true }

// OffsetToServerPs is ground truth: client clock minus true time.
func (c *Client) OffsetToServerPs() float64 {
	now := c.net.Sch.Now()
	return c.Clock.At(now) - float64(now)
}

// Stats returns protocol counters.
func (c *Client) Stats() (polls, replies, steps uint64) {
	return c.polls, c.replies, c.steps
}

func (c *Client) poll() {
	if c.stopped {
		return
	}
	c.polls++
	c.seq++
	seq := c.seq
	// Transmit path stack delay happens before the wire sees the frame;
	// t1 is stamped at the syscall, before that delay.
	t1 := c.Clock.Now()
	c.net.Sch.After(stackDelay(c.rng, c.cfg), func() {
		c.net.Send(&eth.Frame{
			Src: c.node, Dst: c.srv, Size: eth.UDPNTPFrame,
			Proto: eth.ProtoNTP, Payload: request{Seq: seq, Client: c.node, T1: t1},
		})
	})
	c.net.Sch.After(c.cfg.PollInterval, c.poll)
}

func (c *Client) onResponse(f *eth.Frame, rx sim.Time) {
	resp, ok := f.Payload.(response)
	if !ok || c.stopped {
		return
	}
	// Receive-path stack delay before the daemon can stamp t4.
	c.net.Sch.After(stackDelay(c.rng, c.cfg), func() {
		t4 := c.Clock.Now()
		c.replies++
		// RFC 5905: offset and delay from the four timestamps.
		offset := ((resp.T2 - resp.T1) + (resp.T3 - t4)) / 2
		delay := (t4 - resp.T1) - (resp.T3 - resp.T2)
		c.apply(offset, delay)
	})
}

// apply runs the clock filter and adjusts the clock.
func (c *Client) apply(offset, delay float64) {
	c.filter = append(c.filter, sample{offset, delay})
	if len(c.filter) > c.cfg.FilterWindow {
		c.filter = c.filter[1:]
	}
	// Clock filter: the sample with minimum delay has the least
	// queueing/stack asymmetry.
	best := c.filter[0]
	for _, s := range c.filter[1:] {
		if s.delay < best.delay {
			best = s
		}
	}
	if c.OnSample != nil {
		c.OnSample(best.offset)
	}
	if !c.synced || math.Abs(best.offset) > c.cfg.StepThresholdUs*1e6 {
		c.Clock.Step(best.offset)
		c.synced = true
		c.steps++
		c.filter = c.filter[:0]
		return
	}
	// Discipline in two parts, as ntpd's loop does: remove a fraction
	// of the phase error directly (ntpd slews it out within the poll
	// interval; at our timescales the end state is the same), and
	// integrate a persistent frequency estimate. The direct phase term
	// damps the otherwise oscillatory double-integrator.
	corr := c.cfg.ServoGain * best.offset
	c.Clock.Step(corr)
	// Samples still in the filter were measured against the
	// pre-correction clock; re-reference them so the min-delay pick is
	// not applied twice.
	for i := range c.filter {
		c.filter[i].offset -= corr
	}
	sec := c.cfg.PollInterval.Seconds()
	ppb := c.Clock.AdjPPB() + 0.25*c.cfg.ServoGain*best.offset/1000/sec
	c.Clock.AdjFreq(clampF(ppb, -500_000, 500_000))
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
