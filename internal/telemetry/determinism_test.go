package telemetry_test

import (
	"strings"
	"testing"

	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
	"github.com/dtplab/dtp/internal/topo"
)

// exportRun simulates the paper tree for 20 ms with full telemetry and
// returns the Prometheus export and JSONL trace dump as strings.
func exportRun(t *testing.T, seed uint64) (metrics, trace string) {
	t.Helper()
	sch := sim.NewScheduler()
	n, err := core.NewNetwork(sch, seed, topo.PaperTree(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	tr := telemetry.NewTracer(4096)
	n.Instrument(reg, tr)
	n.Start()
	sch.Run(20 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("network failed to synchronize")
	}
	var m, j strings.Builder
	if err := telemetry.WritePrometheus(&m, reg); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteJSONL(&j, tr); err != nil {
		t.Fatal(err)
	}
	return m.String(), j.String()
}

// TestSeededRunsExportIdenticalBytes guards the sim scheduler's
// reproducibility contract now that instrumentation sits in hot paths:
// the same seed must produce byte-identical metric exports and trace
// dumps, and a different seed must not.
func TestSeededRunsExportIdenticalBytes(t *testing.T) {
	m1, j1 := exportRun(t, 42)
	m2, j2 := exportRun(t, 42)
	if m1 != m2 {
		t.Fatalf("metric exports differ between identical seeded runs:\nrun1 %d bytes, run2 %d bytes", len(m1), len(m2))
	}
	if j1 != j2 {
		t.Fatalf("trace dumps differ between identical seeded runs:\nrun1 %d bytes, run2 %d bytes", len(j1), len(j2))
	}
	if !strings.Contains(m1, "dtp_beacons_sent_total") || len(j1) == 0 {
		t.Fatal("exports are empty; the determinism check proved nothing")
	}

	m3, j3 := exportRun(t, 43)
	if m3 == m1 && j3 == j1 {
		t.Fatal("different seeds produced identical exports; telemetry is not observing the run")
	}
}
