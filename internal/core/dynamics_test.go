package core

import (
	"testing"

	"github.com/dtplab/dtp/internal/phy"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/topo"
)

// TestLateJoinerAdoptsMaxCounter: a device brought up long after the
// network has been running has a far smaller counter; BEACON-JOIN must
// pull it up to the network maximum quickly (§3.2 "Network dynamics").
func TestLateJoinerAdoptsMaxCounter(t *testing.T) {
	sch := sim.NewScheduler()
	g := topo.Chain(2) // h0 - sw1 - h1
	n, err := NewNetwork(sch, 51, g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Bring up only link 0 (h0-sw1); h1 stays disconnected.
	n.SetLinkUp(0)
	sch.Run(100 * sim.Millisecond)
	core0 := n.Devices[0].GlobalCounter()
	if core0 == 0 {
		t.Fatal("running subnet counter did not advance")
	}
	// h1 joins: its counter is fresh (near the tick count, no jumps).
	n.SetLinkUp(1)
	sch.RunFor(5 * sim.Millisecond)
	o := n.TrueOffsetUnits(1, 2)
	if o < 0 {
		o = -o
	}
	if o > 4 {
		t.Fatalf("late joiner still %d ticks away after JOIN", o)
	}
}

// TestJoinNeverMovesCountersBackwards: when two subnets with different
// counters merge, the smaller adopts the larger — never the reverse.
func TestJoinNeverMovesCountersBackwards(t *testing.T) {
	sch := sim.NewScheduler()
	g := topo.Chain(2)
	n, err := NewNetwork(sch, 53, g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.SetLinkUp(0)
	sch.Run(50 * sim.Millisecond)
	before := n.Devices[0].GlobalCounter()
	n.SetLinkUp(1)
	sch.RunFor(10 * sim.Millisecond)
	after := n.Devices[0].GlobalCounter()
	elapsedPs := float64(10 * sim.Millisecond)
	minGain := uint64(elapsedPs / 6400.64) // slowest admissible clock
	if after < before+minGain {
		t.Fatalf("established subnet slowed down after merge: %d -> %d", before, after)
	}
}

// TestPartitionHealViaJoin: partition the paper tree, let the halves
// drift for a while, then reconnect; BEACON-JOIN must re-merge the
// subnets onto the maximum counter within a few milliseconds.
func TestPartitionHealViaJoin(t *testing.T) {
	sch := sim.NewScheduler()
	g := topo.PaperTree()
	n, err := NewNetwork(sch, 57, g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	sch.Run(10 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("tree did not sync")
	}
	// Partition: cut s0-s3 (link 2), isolating {s3, s9, s10, s11}.
	n.SetLinkDown(2)
	sch.RunFor(200 * sim.Millisecond)
	s0, _ := n.DeviceByName("s0")
	s3, _ := n.DeviceByName("s3")
	drift := int64(s0.GlobalCounter()) - int64(s3.GlobalCounter())
	if drift < 0 {
		drift = -drift
	}
	if drift <= 4 {
		t.Fatalf("partitioned subnets only %d ticks apart; expected drift", drift)
	}
	// Heal.
	n.SetLinkUp(2)
	sch.RunFor(10 * sim.Millisecond)
	var worst int64
	for i := 0; i < 100; i++ {
		sch.RunFor(100 * sim.Microsecond)
		if o := n.MaxPairwiseOffset(); o > worst {
			worst = o
		}
	}
	if bound := n.BoundUnits(); worst > bound {
		t.Fatalf("after heal, offset %d > bound %d", worst, bound)
	}
}

// TestBitErrorsAreRejectedByGuard: at an absurdly high BER, corrupted
// beacons must be ignored (guard / parity / invalid type), leaving
// precision intact.
func TestBitErrorsAreRejectedByGuard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BER = 1e-5 // ~1 corrupted block per 1500; astronomically worse than the 1e-12 objective
	cfg.Parity = true
	cfg.FaultyJumpLimit = 0 // disable: corruption here is line noise, not a faulty peer
	sch := sim.NewScheduler()
	n, err := NewNetwork(sch, 61, topo.Pair(), cfg,
		WithPPM(map[string]float64{"h0": 100, "h1": -100}))
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	sch.Run(5 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("pair did not sync despite retries")
	}
	var worst int64
	for i := 0; i < 1000; i++ {
		sch.RunFor(100 * sim.Microsecond)
		o := n.TrueOffsetUnits(0, 1)
		if o < 0 {
			o = -o
		}
		if o > worst {
			worst = o
		}
	}
	if worst > 4 {
		t.Fatalf("offset reached %d ticks under heavy bit errors", worst)
	}
	pa, _ := n.LinkPorts(0)
	if _, _, ignored, _ := pa.Stats(); ignored == 0 {
		t.Fatal("no beacons were rejected — BER not exercised")
	}
}

// TestParityCatchesLSBErrors: with parity enabled, single-bit errors in
// the three LSBs are dropped at decode rather than shifting the clock.
func TestParityCatchesLSBErrors(t *testing.T) {
	codec := phy.Codec{Parity: true}
	m := phy.Message{Type: phy.MsgBeacon, Payload: 0x1000}
	b := codec.EmbedMessage(m)
	// Flip payload LSB (control bit 3 = payload bit 56-...): wire
	// payload bit index 8 (block type) + 3.
	b.Payload ^= 1 << 11
	if _, _, ok := codec.ExtractMessage(b); ok {
		t.Fatal("corrupted LSB beacon passed parity")
	}
}

// TestFaultyPeerDetection: a peer whose counter is wildly inconsistent
// (simulated via a byzantine counter injection) must be cut off after
// FaultyJumpLimit guard violations.
func TestFaultyPeerDetection(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FaultyJumpLimit = 8
	cfg.FaultyWindowTicks = 10_000_000
	sch := sim.NewScheduler()
	n, err := NewNetwork(sch, 67, topo.Pair(), cfg,
		WithPPM(map[string]float64{"h0": 0, "h1": 0}))
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	sch.Run(5 * sim.Millisecond)
	pa, pb := n.LinkPorts(0)
	if pa.Faulty() || pb.Faulty() {
		t.Fatal("healthy peers marked faulty")
	}
	// h1 goes byzantine: keeps sending beacons claiming a counter far in
	// the future (but within the reconstructible range).
	for i := 0; i < 50; i++ {
		bogus := pb.dev.GlobalCounter() + 1_000_000
		pb.insert(phy.MsgBeacon, bogus)
		sch.RunFor(10 * sim.Microsecond)
	}
	if !pa.Faulty() {
		t.Fatal("byzantine peer not detected")
	}
	// Once faulty, even honest-looking beacons are ignored.
	_, recvBefore, ignoredBefore, _ := pa.Stats()
	sch.RunFor(time10ms)
	_, recvAfter, ignoredAfter, _ := pa.Stats()
	if recvAfter > recvBefore && ignoredAfter-ignoredBefore != recvAfter-recvBefore {
		t.Fatal("faulty peer's beacons still being applied")
	}
}

const time10ms = 10 * sim.Millisecond

// TestCounterWrapAt53Bits: beacons carry only 53 LSBs; crossing the 2^53
// boundary must not disturb synchronization (BEACON-MSB + reconstruction).
func TestCounterWrapAt53Bits(t *testing.T) {
	cfg := DefaultConfig()
	sch := sim.NewScheduler()
	n, err := NewNetwork(sch, 71, topo.Pair(), cfg,
		WithPPM(map[string]float64{"h0": 100, "h1": -100}))
	if err != nil {
		t.Fatal(err)
	}
	// Pre-advance both counters to just below the wrap boundary.
	start := uint64(1<<53) - 200_000
	for _, d := range n.Devices {
		d.gc.setAt(start, sch.Now())
	}
	n.Start()
	sch.Run(5 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("pair did not sync")
	}
	crossed := false
	var worst int64
	for i := 0; i < 2000; i++ {
		sch.RunFor(10 * sim.Microsecond)
		if n.Devices[0].GlobalCounter() > 1<<53 {
			crossed = true
		}
		o := n.TrueOffsetUnits(0, 1)
		if o < 0 {
			o = -o
		}
		if o > worst {
			worst = o
		}
	}
	if !crossed {
		t.Fatal("counter never crossed the 2^53 boundary — test ineffective")
	}
	if worst > 4 {
		t.Fatalf("offset reached %d ticks across the 53-bit wrap", worst)
	}
}

// TestOtherSpeedsBounded: Table 2 — DTP at 40 and 100 GbE with counters
// in 0.32 ns base units. The tick is shorter, so the bound in *units*
// is 4*Delta per hop; in nanoseconds it is the same 4 periods.
func TestOtherSpeedsBounded(t *testing.T) {
	for _, speed := range []phy.Speed{phy.Speed40G, phy.Speed100G} {
		p := phy.ProfileFor(speed)
		cfg := DefaultConfig()
		cfg.Profile = p
		cfg.UnitsPerTick = uint64(p.Delta)
		cfg.AlphaUnits = 3 * p.Delta
		cfg.GuardUnits = 8 * p.Delta
		sch := sim.NewScheduler()
		n, err := NewNetwork(sch, 73, topo.Pair(), cfg,
			WithPPM(map[string]float64{"h0": 100, "h1": -100}))
		if err != nil {
			t.Fatal(err)
		}
		n.Start()
		sch.Run(5 * sim.Millisecond)
		if !n.AllSynced() {
			t.Fatalf("%v pair did not sync", speed)
		}
		var worst int64
		for i := 0; i < 1000; i++ {
			sch.RunFor(20 * sim.Microsecond)
			o := n.TrueOffsetUnits(0, 1)
			if o < 0 {
				o = -o
			}
			if o > worst {
				worst = o
			}
		}
		if bound := 4 * int64(p.Delta); worst > bound {
			t.Fatalf("%v: offset %d units > bound %d units", speed, worst, bound)
		}
	}
}

// Test1GFragmentedMessages: the §7 adaptation — messages split across
// four ordered-set fragments — must synchronize a 1 GbE pair within
// the 4T bound (4 × 8 ns; 100 units of 0.32 ns).
func Test1GFragmentedMessages(t *testing.T) {
	p := phy.ProfileFor(phy.Speed1G)
	cfg := DefaultConfig()
	cfg.Profile = p
	cfg.UnitsPerTick = uint64(p.Delta)
	cfg.AlphaUnits = 3 * p.Delta
	cfg.GuardUnits = 8 * p.Delta
	cfg.FragmentedMessages = true
	sch := sim.NewScheduler()
	n, err := NewNetwork(sch, 111, topo.Pair(), cfg,
		WithPPM(map[string]float64{"h0": 100, "h1": -100}))
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	sch.Run(10 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("1G pair did not sync")
	}
	var worst int64
	for i := 0; i < 1000; i++ {
		sch.RunFor(50 * sim.Microsecond)
		o := n.TrueOffsetUnits(0, 1)
		if o < 0 {
			o = -o
		}
		if o > worst {
			worst = o
		}
	}
	if bound := 4 * int64(p.Delta); worst > bound {
		t.Fatalf("1G offset %d units > bound %d units", worst, bound)
	}
}

// Test1GFragmentsSurviveBitErrors: a corrupted fragment must drop the
// whole message (assembler reset), never corrupt the clock.
func Test1GFragmentsSurviveBitErrors(t *testing.T) {
	p := phy.ProfileFor(phy.Speed1G)
	cfg := DefaultConfig()
	cfg.Profile = p
	cfg.UnitsPerTick = uint64(p.Delta)
	cfg.AlphaUnits = 3 * p.Delta
	cfg.GuardUnits = 8 * p.Delta
	cfg.FragmentedMessages = true
	cfg.Parity = true
	cfg.BER = 1e-5
	cfg.FaultyJumpLimit = 0
	sch := sim.NewScheduler()
	n, err := NewNetwork(sch, 113, topo.Pair(), cfg,
		WithPPM(map[string]float64{"h0": 100, "h1": -100}))
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	sch.Run(10 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("1G pair did not sync under BER")
	}
	var worst int64
	for i := 0; i < 500; i++ {
		sch.RunFor(100 * sim.Microsecond)
		o := n.TrueOffsetUnits(0, 1)
		if o < 0 {
			o = -o
		}
		if o > worst {
			worst = o
		}
	}
	if bound := 4 * int64(p.Delta); worst > bound {
		t.Fatalf("1G offset %d units under bit errors > bound %d", worst, bound)
	}
}

// TestWanderingOscillatorsStayBounded: slow temperature-style frequency
// wander (the realistic condition) must not break the bound.
func TestWanderingOscillatorsStayBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WanderInterval = sim.Millisecond
	cfg.WanderStepPPB = 200
	sch := sim.NewScheduler()
	n, err := NewNetwork(sch, 79, topo.PaperTree(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	sch.Run(10 * sim.Millisecond)
	var worst int64
	for i := 0; i < 300; i++ {
		sch.RunFor(333 * sim.Microsecond)
		if o := n.MaxAdjacentOffset(); o > worst {
			worst = o
		}
	}
	if worst > 4 {
		t.Fatalf("adjacent offset reached %d ticks under wander", worst)
	}
}

// TestMaxTreeLatency: the global-counter max circuit latency (§4.3)
// shifts when adjustments land but must not break the bound for small
// depths.
func TestMaxTreeLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxTreeLatencyTicks = 2
	sch := sim.NewScheduler()
	n, err := NewNetwork(sch, 83, topo.Chain(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	sch.Run(10 * sim.Millisecond)
	var worst int64
	for i := 0; i < 500; i++ {
		sch.RunFor(100 * sim.Microsecond)
		if o := n.MaxAdjacentOffset(); o > worst {
			worst = o
		}
	}
	// Two extra ticks of staleness are possible on top of 4T.
	if worst > 6 {
		t.Fatalf("offset reached %d ticks with max-tree latency 2", worst)
	}
}

// TestDownPortStopsBeacons: tearing a link down stops its beacon flow.
func TestDownPortStopsBeacons(t *testing.T) {
	sch, n := startPair(t, 89, DefaultConfig(), 50, -50)
	pa, _ := n.LinkPorts(0)
	sentBefore, _, _, _ := pa.Stats()
	n.SetLinkDown(0)
	sch.RunFor(10 * sim.Millisecond)
	sentAfter, _, _, _ := pa.Stats()
	if sentAfter != sentBefore {
		t.Fatalf("down port sent %d beacons", sentAfter-sentBefore)
	}
}

// TestReUpAfterDownResyncs: plugging the cable back in re-runs INIT and
// restores the bound.
func TestReUpAfterDownResyncs(t *testing.T) {
	sch, n := startPair(t, 97, DefaultConfig(), 100, -100)
	n.SetLinkDown(0)
	sch.RunFor(100 * sim.Millisecond) // drift apart
	n.SetLinkUp(0)
	sch.RunFor(10 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("pair did not resync after re-up")
	}
	var worst int64
	for i := 0; i < 200; i++ {
		sch.RunFor(100 * sim.Microsecond)
		o := n.TrueOffsetUnits(0, 1)
		if o < 0 {
			o = -o
		}
		if o > worst {
			worst = o
		}
	}
	if worst > 4 {
		t.Fatalf("offset %d ticks after re-up", worst)
	}
}

// TestDeterminism: identical seeds produce identical trajectories.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64, int64) {
		sch := sim.NewScheduler()
		n, err := NewNetwork(sch, 4242, topo.PaperTree(), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		n.Start()
		sch.Run(20 * sim.Millisecond)
		return n.Devices[0].GlobalCounter(), n.Devices[5].GlobalCounter(), n.MaxPairwiseOffset()
	}
	a0, a5, am := run()
	b0, b5, bm := run()
	if a0 != b0 || a5 != b5 || am != bm {
		t.Fatalf("same seed diverged: (%d,%d,%d) vs (%d,%d,%d)", a0, a5, am, b0, b5, bm)
	}
}

// TestPortAccessors exercises small API surface for coverage.
func TestPortAccessors(t *testing.T) {
	_, n := startPair(t, 101, DefaultConfig(), 10, -10)
	pa, pb := n.LinkPorts(0)
	if pa.Peer() != pb || pb.Peer() != pa {
		t.Fatal("peer wiring broken")
	}
	if pa.PairName() != "h0-h1" || pb.PairName() != "h1-h0" {
		t.Fatalf("pair names %s/%s", pa.PairName(), pb.PairName())
	}
	if pa.Device().Name() != "h0" {
		t.Fatal("device accessor broken")
	}
	d, err := n.DeviceByName("h0")
	if err != nil || d.Kind().String() != "host" {
		t.Fatal("DeviceByName failed")
	}
	if _, err := n.DeviceByName("nope"); err == nil {
		t.Fatal("phantom device found")
	}
	if _, err := d.PortTo("h1"); err != nil {
		t.Fatal("PortTo failed")
	}
	if _, err := d.PortTo("zz"); err == nil {
		t.Fatal("PortTo phantom succeeded")
	}
	if d.PPM() != 10 {
		t.Fatalf("PPM = %v", d.PPM())
	}
}
