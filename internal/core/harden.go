package core

import (
	"github.com/dtplab/dtp/internal/phy"
	"github.com/dtplab/dtp/internal/telemetry"
)

// Byzantine-hardened mode (ROADMAP Open item 4). Plain DTP adopts
// max(local, remote) unconditionally — maximally trusting, so a single
// device reporting an inflated counter poisons the entire fabric and
// silently invalidates the 4TD bound. Hardened mode layers three
// defenses over Algorithms 1/2 without touching the fault-free fast
// path:
//
//  1. Bounded-jump admission: per link session, a remote counter may
//     pull the local counter forward only a bounded amount — at most
//     the admission slack per message, and at most slack plus a
//     ~244 ppm budget accumulated across a sliding window of the
//     device's free-running tick clock. Honest peers tick at ±100 ppm;
//     anything pulling faster is lying. The yardstick is the raw
//     oscillator, never the (jumpable) global counter, so a compliant
//     ratchet that drags the counter cannot drag the budget with it.
//  2. Quarantine + re-INIT escape hatch: a peer that keeps failing
//     admission is quarantined — nothing it says is trusted, its link
//     leaves the audited active set — and after a cooldown the port
//     re-enters through INIT, so an honestly restarted peer rejoins.
//  3. Quorum combiner: a fresh session's first message may legitimately
//     carry a huge advance (BEACON-JOIN pulling a restarted device up
//     to the fabric maximum), so it cannot be rate-limited. Instead,
//     large session-initial adoptions need agreement from a quorum of
//     the device's other synced ports. In a tree a Byzantine peer is
//     the sole source for its own subtree and can never marshal a
//     second witness; a restarted device has no synced witnesses and
//     is admitted unchecked — it knows its own counter is stale.

// admitBudget is the pull-budget inequality: the units a peer has
// pulled this port's counter forward within the current window
// (candidate lead included) are admissible while they do not exceed the
// constant slack plus a ~244 ppm oscillator budget over the window's
// locally elapsed units (elapsed >> 12; the 802.3 bound allows ±100 ppm
// per end). All arithmetic is int64 on mod-2^64 differences, so the
// rule stays exact across counter wraparound and far beyond the 2^53
// float64-precision boundary.
func admitBudget(pulled, elapsed, slack int64) (ok bool, allowance int64) {
	if elapsed < 0 {
		elapsed = 0
	}
	allowance = slack + elapsed>>12
	return pulled <= allowance, allowance
}

// admitSlack is the constant admission slack scaled to this port's
// cycle, like the bit-error guard.
func (p *Port) admitSlack() int64 {
	return p.cfg().AdmitSlackUnits * int64(p.pd)
}

// admitTarget gates a remote-implied counter value (target, at local
// counter value local) through bounded-jump admission. Algorithm 2
// adopts only forward values, so admission budgets exactly the
// adoptable quantity: the message's lead over the local counter. A
// value at or behind the local counter cannot move it and always
// passes; a session's first forward value beyond the slack is the
// BEACON-JOIN equalization and is vetted by the quorum combiner; every
// later message may pull at most the slack at once and at most the
// windowed pull budget in aggregate. Returns false — after recording
// the rejection — when the value must not be adopted.
//
// The window is measured on the device's free-running tick clock, so a
// "compliant" ratchet — lies of at most the slack, each adopted, each
// re-measured against the freshly poisoned counter — still exhausts
// the budget and is caught: adopted jumps never advance the yardstick.
// The flip side is that a mid-session JOIN carrying a far-ahead counter
// (a long-diverged partition healing) is refused — hardened mode fails
// secure there and heals through quarantine, re-INIT and the quorum
// combiner instead.
func (p *Port) admitTarget(target, local uint64, join bool) bool {
	lead := int64(target - local)
	slack := p.admitSlack()
	if !p.admitValid {
		if lead > slack && !p.dev.quorumAgrees(p, target, local) {
			p.rejectTarget(lead, slack, join)
			return false
		}
		p.admitValid = true
		p.pullWindow = p.dev.clock.Counter()
		p.pulledUnits = 0
		return true
	}
	if lead <= 0 {
		return true
	}
	if lead > slack {
		p.rejectTarget(lead, slack, join)
		return false
	}
	cfg := p.cfg()
	tick := p.dev.clock.Counter()
	if tick-p.pullWindow > cfg.FaultyWindowTicks {
		p.pullWindow = tick
		p.pulledUnits = 0
	}
	elapsed := int64(tick-p.pullWindow) * int64(cfg.UnitsPerTick)
	ok, allowance := admitBudget(p.pulledUnits+lead, elapsed, slack)
	if !ok {
		p.rejectTarget(p.pulledUnits+lead, allowance, join)
		return false
	}
	p.pulledUnits += lead
	return true
}

// noteTarget records an admitted remote counter observation; it is this
// port's vote in the quorum combiner.
func (p *Port) noteTarget(target, local uint64) {
	p.lastTarget, p.lastTargetLocal, p.haveTarget = target, local, true
}

// quorumAgrees is the Marzullo-style multi-port combiner: before the
// device adopts a session-initial advance beyond the admission slack
// proposed on port from, at least QuorumPorts synced ports (the
// proposer included) must place the fabric counter near the proposed
// target. Each witness port's latest admitted target, extrapolated at
// the local rate, is its estimate; it agrees when the estimate reaches
// target minus the slack band. With fewer witnesses than the quorum
// (restarted devices, single-port hosts) the advance is admitted
// unchecked — the device has no better information than its peer.
func (d *Device) quorumAgrees(from *Port, target, local uint64) bool {
	need := d.net.cfg.QuorumPorts
	if need <= 1 {
		return true
	}
	band := from.admitSlack()
	agree, voters := 1, 1 // the proposer votes for its own value
	for _, p := range d.ports {
		if p == from || p.state != portSynced || !p.haveTarget {
			continue
		}
		voters++
		est := p.lastTarget + (local - p.lastTargetLocal)
		if int64(est-target) >= -band {
			agree++
		}
	}
	if voters < need {
		return true
	}
	return agree >= need
}

// rejectTarget records a bounded-jump admission failure and, past
// QuarantineRejectLimit rejections within the FaultyWindowTicks sliding
// window, quarantines the port.
func (p *Port) rejectTarget(advance, allowance int64, join bool) {
	tel := &p.dev.net.tel
	tel.rejections.Inc()
	p.dev.net.rejectedTotal++
	detail := "beacon"
	if join {
		detail = "join"
	}
	tel.tr.Record(p.sch().Now(), telemetry.KindCounterRejected, p.tname,
		advance, allowance, detail)
	cfg := p.cfg()
	tick := p.dev.clock.Counter()
	if tick-p.rejectWindow > cfg.FaultyWindowTicks {
		p.rejectWindow = tick
		p.rejectCount = 0
	}
	p.rejectCount++
	if p.rejectCount >= cfg.QuarantineRejectLimit {
		p.quarantine()
	}
}

// quarantine pulls a synced port out of the fabric: its peer keeps
// failing admission, so nothing it says is trusted until the cooldown
// expires and the port re-enters through INIT. A quarantined port stops
// beaconing, ignores every arriving message (even INITs — answering
// would let the suspect peer re-arm a session early), and reports its
// link unsynced, which drops it from the auditor's active set so
// quarantined paths never contribute to BFS bounds.
func (p *Port) quarantine() {
	if p.state != portSynced {
		return
	}
	tel := &p.dev.net.tel
	tel.quarantines.Inc()
	p.dev.net.quarantineTotal++
	tel.tr.Record(p.sch().Now(), telemetry.KindPortQuarantined, p.tname,
		int64(p.rejectCount), p.owdUnits, "")
	p.setState(portQuarantined)
	p.owdUnits = -1
	p.havePeerMsb = false
	p.pendingJoin = nil
	p.asm = nil
	p.resetAdmission()
	p.rejectCount = 0
	p.beaconEvent.Cancel()
	p.watchEvent.Cancel()
	p.initEvent.Cancel()
	cool := p.dev.tickDur(int(p.cfg().QuarantineCooldownTicks))
	p.quarEvent = p.sch().After(cool, p.releaseQuarantine)
}

// releaseQuarantine is the escape hatch: after the cooldown the port
// demotes itself to INIT and re-measures the delay. An honestly
// restarted peer passes the fresh session's admission and rejoins; a
// still-lying peer earns the next quarantine within a handful of
// rejected messages.
func (p *Port) releaseQuarantine() {
	if p.state != portQuarantined {
		return
	}
	tel := &p.dev.net.tel
	tel.demotions.Inc()
	tel.tr.Record(p.sch().Now(), telemetry.KindPortDemoted, p.tname,
		demoteQuarantine, -1, "quarantine_cooldown")
	p.setState(portInit)
	p.initBackoff = 0
	p.sendInit()
}

// resetAdmission clears the per-session pull budget and witness state
// whenever a link session ends or begins. The rejection count is
// deliberately kept: it decays with its sliding window, so a peer that
// alternates lies with re-INITs still accumulates toward quarantine.
func (p *Port) resetAdmission() {
	p.admitValid = false
	p.pulledUnits = 0
	p.haveTarget = false
}

// --- Adversarial hooks (chaos use only) --------------------------------

// SetLieUnits installs (or clears, with 0) an adversarial inflation of
// every counter value this device transmits in BEACON, BEACON-MSB and
// BEACON-JOIN messages. The device's real counter stays honest — the
// lie exists only on the wire, which is exactly the Byzantine failure
// mode hardened mode defends against. INIT traffic is untouched: echo
// pairing must keep working or the fault degenerates into a dead link.
func (d *Device) SetLieUnits(u uint64) { d.lieUnits = u }

// LieUnits returns the device's current outgoing counter inflation.
func (d *Device) LieUnits() uint64 { return d.lieUnits }

// BroadcastJoin announces the device's (possibly inflated) counter with
// a BEACON-MSB + BEACON-JOIN pair on every synced port — what a
// Byzantine device does to push a lie through the otherwise unguarded
// JOIN path, and what hardened admission must stop.
func (d *Device) BroadcastJoin() {
	for _, p := range d.ports {
		if p.state == portSynced {
			p.sendJoinPair()
		}
	}
}

// InjectSpoofedBeacon models an on-path attacker forging a BEACON with
// an arbitrary counter value toward this port: the message enters the
// receive path exactly as a wire arrival would, RX pipeline and CDC
// crossing included.
func (p *Port) InjectSpoofedBeacon(value uint64) {
	codec := p.codec()
	m := phy.Message{Type: phy.MsgBeacon, Payload: value & codec.CounterMask()}
	if p.fragmented {
		for _, f := range phy.FragmentMessage(codec, m) {
			p.onWireArrival(phy.EmbedFragment(f))
		}
		return
	}
	p.onWireArrival(codec.EmbedMessage(m))
}
