package telemetry

import (
	"sync"
	"sync/atomic"

	"github.com/dtplab/dtp/internal/sim"
)

// Kind identifies a typed protocol event.
type Kind uint8

const (
	// KindLinkUp / KindLinkDown: a port was brought up or torn down.
	KindLinkUp Kind = iota
	KindLinkDown
	// KindStateChange: a port's Algorithm 1 state machine moved;
	// V1/V2 are the old/new state codes, Detail the new state name.
	KindStateChange
	// KindInitRound: a port started one INIT delay-measurement round.
	KindInitRound
	// KindSynced: a port finished INIT; V1 is the measured OWD in
	// counter units.
	KindSynced
	// KindBeaconTx: a BEACON left a port; V1 is the embedded counter.
	KindBeaconTx
	// KindBeaconRx: a BEACON was processed; V1 is the hardware offset
	// sample (t2 - t1 - OWD) in counter units.
	KindBeaconRx
	// KindBeaconIgnored: a beacon failed the guard (or the port is
	// faulty); V1 is the rejected offset.
	KindBeaconIgnored
	// KindCounterJump: the device counter jumped forward; V1 is the
	// jump distance in units, V2 is 1 for JOIN-driven jumps.
	KindCounterJump
	// KindCounterStall: a §5.4 follower stalled; V1 is the excess.
	KindCounterStall
	// KindFaultyPeer: a port declared its peer faulty.
	KindFaultyPeer
	// KindDaemonCal: a daemon calibration completed; V1 is the software
	// offset in milli-units (offset × 1000), V2 the calibration count.
	KindDaemonCal
	// KindServoUpdate: a PTP servo consumed an offset sample; V1 is the
	// offset in ps, V2 the commanded frequency adjustment in ppb.
	KindServoUpdate
	// KindClockStep: a PTP client stepped its PHC; V1 is the step in ps.
	KindClockStep
	// KindMasterSwitch: BMCA failed over; V1/V2 are old/new master IDs.
	KindMasterSwitch
	// KindFrameDrop: the fabric tail-dropped a frame; V1 is the frame
	// size in bytes, V2 the topology link index.
	KindFrameDrop
	// KindBoundViolation: the online auditor (internal/audit) caught a
	// device pair outside its 4TD precision bound; Who is "a~b", V1 the
	// observed offset in units, V2 the violated bound, and Detail carries
	// the hop distance plus the last trace events touching either device
	// (the causal context).
	KindBoundViolation
	// KindPortDemoted: a SYNCED port demoted itself back to INIT; V1 is
	// the demotion reason code (0 = beacon-loss timeout, 1 = faulty-peer
	// cooldown expired), Detail the reason name.
	KindPortDemoted
	// KindChaosInject / KindChaosClear: the fault-injection engine
	// (internal/chaos) started or cleared a fault; Who is the target
	// (link "a-b" or device name), V1 the fault index in the scenario,
	// and Detail the fault kind plus its parameters.
	KindChaosInject
	KindChaosClear
	// KindDeviceCrash / KindDeviceRestart: a device lost power (ports on
	// both link ends go down, counter content lost) or powered back on
	// (counter restarts from zero, links re-enter through INIT).
	KindDeviceCrash
	KindDeviceRestart
	// KindTimesvcPublish: the time service (internal/timesvc) published
	// a fresh clock snapshot; Who is the host, V1 the interval
	// half-width in ps, V2 the snapshot epoch.
	KindTimesvcPublish
	// KindTimesvcDegraded: the time service skipped a publish because no
	// honest error bound was available (audit bound unknown, no UTC
	// broadcast yet, or daemon uncalibrated); V1 is a reason code,
	// Detail the reason name. Readers age out at the snapshot MaxAge and
	// then fail closed (stale) instead of serving unbounded time.
	KindTimesvcDegraded
	// KindCounterRejected: hardened mode's bounded-jump admission
	// refused a remote counter advance on a synced session; Who is the
	// receiving port, V1 the proposed advance in units, V2 the allowance
	// it exceeded, and Detail "beacon" or "join".
	KindCounterRejected
	// KindPortQuarantined: repeated admission rejections pushed a port
	// into quarantine — it stops synchronizing to its peer and its link
	// leaves the audited active set until the cooldown re-INIT; V1 is
	// the rejection count that tripped it, V2 the session OWD in units.
	KindPortQuarantined

	numKinds
)

var kindNames = [numKinds]string{
	"link_up", "link_down", "state_change", "init_round", "synced",
	"beacon_tx", "beacon_rx", "beacon_ignored", "counter_jump",
	"counter_stall", "faulty_peer", "daemon_cal", "servo_update",
	"clock_step", "master_switch", "frame_drop", "bound_violation",
	"port_demoted", "chaos_inject", "chaos_clear",
	"device_crash", "device_restart",
	"timesvc_publish", "timesvc_degraded",
	"counter_rejected", "port_quarantined",
}

// String returns the stable snake_case name used in JSONL dumps.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString maps a stable snake_case name (as emitted in JSONL
// dumps) back to its Kind.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// Event is one recorded protocol event. Who is the emitting port or
// device ("s1[2]", "s4"); V1/V2 are kind-specific numeric fields (see
// the Kind constants); Detail is an optional short string.
type Event struct {
	Seq    uint64
	At     sim.Time
	Kind   Kind
	Who    string
	V1, V2 int64
	Detail string
}

// Tracer records events into a bounded ring buffer. A nil Tracer is a
// valid no-op. Record first checks an atomic kind mask, so disabled
// kinds cost one load; enabled kinds take a short mutex (the simulation
// is single-goroutine, but HTTP exporters snapshot concurrently).
type Tracer struct {
	mask atomic.Uint32 // bit i set => Kind(i) recorded

	// obs, when set, is invoked with each recorded event after the ring
	// mutex is released — so an observer may call Events()/Dropped()
	// without deadlocking. The flight recorder arms this to turn
	// specific kinds into dump triggers.
	obs atomic.Pointer[func(Event)]

	mu    sync.Mutex
	buf   []Event
	next  int
	count int    // valid entries in buf
	total uint64 // events ever recorded (drops = total - count)
}

// firehoseKinds are the kinds that fire at beacon frequency — millions
// per simulated second (in steady state roughly every other beacon
// causes a small forward counter jump, so jumps are firehose too). They
// are masked by default so an instrumented run keeps the Registry's <5%
// overhead budget; enable them explicitly with SetKinds() (no
// arguments) when the full frame-level trace is worth the cost.
const firehoseKinds = 1<<KindBeaconTx | 1<<KindBeaconRx | 1<<KindBeaconIgnored | 1<<KindCounterJump

// NewTracer returns a tracer keeping the last capacity events
// (default 8192 when capacity <= 0). Every kind starts enabled except
// the per-beacon firehose kinds (beacon_tx, beacon_rx, beacon_ignored);
// call SetKinds() with no arguments to record those too.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 8192
	}
	t := &Tracer{buf: make([]Event, capacity)}
	t.mask.Store((1<<numKinds - 1) &^ firehoseKinds)
	return t
}

// SetKinds restricts recording to the listed kinds; with no arguments
// every kind is enabled, including the firehose kinds that NewTracer
// masks by default.
func (t *Tracer) SetKinds(kinds ...Kind) {
	if t == nil {
		return
	}
	if len(kinds) == 0 {
		t.mask.Store(1<<numKinds - 1)
		return
	}
	var m uint32
	for _, k := range kinds {
		m |= 1 << k
	}
	t.mask.Store(m)
}

// Enabled reports whether events of kind k are being recorded. False on
// a nil Tracer — instrumentation can skip building Detail strings.
func (t *Tracer) Enabled(k Kind) bool {
	return t != nil && t.mask.Load()&(1<<k) != 0
}

// Record appends an event (no-op when nil or the kind is masked).
func (t *Tracer) Record(at sim.Time, k Kind, who string, v1, v2 int64, detail string) {
	if !t.Enabled(k) {
		return
	}
	t.mu.Lock()
	t.total++
	e := Event{Seq: t.total, At: at, Kind: k, Who: who, V1: v1, V2: v2, Detail: detail}
	t.buf[t.next] = e
	t.next = (t.next + 1) % len(t.buf)
	if t.count < len(t.buf) {
		t.count++
	}
	t.mu.Unlock()
	if fn := t.obs.Load(); fn != nil {
		(*fn)(e)
	}
}

// OnRecord installs an observer called with every recorded event, after
// the ring mutex is released (so it may read the tracer back). One
// observer at a time; nil uninstalls. Install before recording starts
// or from the recording goroutine — the pointer swap is atomic, but an
// observer installed mid-run only sees subsequent events.
func (t *Tracer) OnRecord(fn func(Event)) {
	if t == nil {
		return
	}
	if fn == nil {
		t.obs.Store(nil)
		return
	}
	t.obs.Store(&fn)
}

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.count)
	start := t.next - t.count
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.count; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Total returns how many events were ever recorded (including those the
// ring has since overwritten).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many recorded events the ring has evicted — the
// gap a reader of Events() must not mistake for a complete history.
// Exported as dtp_trace_dropped_total and stamped into every JSONL
// export header.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(t.count)
}

// CountKind returns how many retained events have the given kind.
func (t *Tracer) CountKind(k Kind) int {
	n := 0
	for _, e := range t.Events() {
		if e.Kind == k {
			n++
		}
	}
	return n
}
