package phy

import (
	"bytes"
	"testing"
)

// TestPipelineFramesAndMessagesInterleaved is the §4.4 story end to
// end: a stream of Ethernet frames with DTP messages in every
// interpacket gap goes through 64b/66b encoding and the scrambler; the
// receive side descrambles, extracts and scrubs the DTP messages, and
// reassembles the frames — which must be untouched, while every message
// arrives intact.
func TestPipelineFramesAndMessagesInterleaved(t *testing.T) {
	codec := Codec{Parity: true}
	scr := NewScrambler()
	desc := NewDescrambler()
	// Link bring-up: the descrambler self-synchronizes within 58 bits;
	// real links exchange idles during block alignment before any data.
	for i := 0; i < 2; i++ {
		desc.Descramble(scr.Scramble(IdleBlock().Payload))
	}

	// Build the transmit stream: [IPG with message][frame][IPG with
	// message][frame]...
	var stream []Block
	var sentMsgs []Message
	var sentFrames [][]byte
	counter := uint64(0x1234_5678)
	for i := 0; i < 20; i++ {
		// Interpacket gap: one /E/ carrying a beacon + one plain /E/.
		m := Message{Type: MsgBeacon, Payload: counter & codec.CounterMask()}
		counter += 200
		sentMsgs = append(sentMsgs, m)
		stream = append(stream, codec.EmbedMessage(m), IdleBlock())

		frame := mkFrame(64 + i*100)
		sentFrames = append(sentFrames, frame)
		blocks, err := Encode(frame)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, blocks...)
	}

	// Scramble the payloads (sync headers travel clear), then
	// descramble on the "receive side".
	var rx []Block
	for _, b := range stream {
		wire := Block{Sync: b.Sync, Payload: scr.Scramble(b.Payload)}
		rx = append(rx, Block{Sync: wire.Sync, Payload: desc.Descramble(wire.Payload)})
	}

	// RX DTP sublayer: pull messages out of idle blocks and scrub them;
	// then the PCS decodes frames from what remains.
	var gotMsgs []Message
	var scrubbed []Block
	for _, b := range rx {
		clean, m, ok := codec.ExtractMessage(b)
		if ok {
			gotMsgs = append(gotMsgs, m)
		}
		scrubbed = append(scrubbed, clean)
	}
	// Scrubbed stream must contain zero DTP residue.
	for _, b := range scrubbed {
		if b.IsIdle() && b.ControlBits() != 0 {
			t.Fatalf("unscrubbed idle block: %v", b)
		}
	}
	// Frames reassemble from the scrubbed stream.
	var gotFrames [][]byte
	for i := 0; i < len(scrubbed); {
		b := scrubbed[i]
		if b.Sync == SyncControl && b.BlockType() == BTStart {
			j := i + 1
			for ; j < len(scrubbed); j++ {
				if scrubbed[j].Sync == SyncControl && scrubbed[j].BlockType() != BTStart {
					break
				}
			}
			frame, err := Decode(scrubbed[i : j+1])
			if err != nil {
				t.Fatalf("frame decode after scrub: %v", err)
			}
			gotFrames = append(gotFrames, frame)
			i = j + 1
			continue
		}
		i++
	}

	if len(gotMsgs) != len(sentMsgs) {
		t.Fatalf("messages: sent %d, received %d", len(sentMsgs), len(gotMsgs))
	}
	for i := range sentMsgs {
		if gotMsgs[i] != sentMsgs[i] {
			t.Fatalf("message %d corrupted: %v != %v", i, gotMsgs[i], sentMsgs[i])
		}
	}
	if len(gotFrames) != len(sentFrames) {
		t.Fatalf("frames: sent %d, received %d", len(sentFrames), len(gotFrames))
	}
	for i := range sentFrames {
		if !bytes.Equal(gotFrames[i], sentFrames[i]) {
			t.Fatalf("frame %d corrupted by DTP sublayer", i)
		}
	}
}

// TestPipelineBandwidthUnaffected checks the zero-overhead claim: the
// block count of a stream with DTP messages equals the block count
// without them (messages occupy blocks that would otherwise be idles).
func TestPipelineBandwidthUnaffected(t *testing.T) {
	codec := Codec{}
	frame := mkFrame(1522)
	blocks, err := Encode(frame)
	if err != nil {
		t.Fatal(err)
	}
	withMsg := append([]Block{codec.EmbedMessage(Message{Type: MsgBeacon, Payload: 7}), IdleBlock()}, blocks...)
	without := append([]Block{IdleBlock(), IdleBlock()}, blocks...)
	if len(withMsg) != len(without) {
		t.Fatalf("DTP message changed the block count: %d vs %d", len(withMsg), len(without))
	}
}
