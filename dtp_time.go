package dtp

import (
	"fmt"
	"net/http"
	"sort"
	"time"

	"github.com/dtplab/dtp/internal/daemon"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/timesvc"
)

// TimeService is one host's serving-plane instance (internal/timesvc):
// a calibration loop publishing seqlock snapshots that lock-free
// readers interpolate TrueTime-style [earliest, latest] intervals from.
type TimeService = timesvc.Service

// TimeClock is the lock-free, allocation-free reader of a TimeService.
type TimeClock = timesvc.Clock

// TimeInterval is a TrueTime-style uncertainty interval in UTC ps.
type TimeInterval = timesvc.Interval

// TimeStore is the seqlock snapshot store a TimeService publishes
// through; readers on other timebases (cmd/dtpload's wall clock) build
// their own TimeClock over it.
type TimeStore = timesvc.Store

// Read-path sentinel errors, re-exported for errors.Is checks.
var (
	ErrTimeNoSnapshot = timesvc.ErrNoSnapshot
	ErrTimeStale      = timesvc.ErrStale
)

// TimePlaneOptions configures the serving plane attached by TimePlane.
// The zero value serves every host from the topology's first host.
type TimePlaneOptions struct {
	// Broadcaster names the host whose daemon broadcasts (counter, UTC)
	// pairs (§5.2); it stands in for the GPS/PTP-disciplined timeserver.
	// Default: the topology's first host.
	Broadcaster string

	// Hosts lists the served hosts. Default: every host except the
	// broadcaster.
	Hosts []string

	// CalInterval is the daemons' PCIe calibration cadence (0 = the
	// daemon default; compressed simulations want ~10ms).
	CalInterval time.Duration

	// Discipline selects the software-clock estimator every plane
	// daemon runs (broadcaster and served hosts alike). The zero value
	// inherits the System's WithDiscipline setting.
	Discipline DisciplineConfig

	// BroadcastInterval is the UTC pair cadence (default 10 ms).
	BroadcastInterval time.Duration

	// PublishInterval is the per-host snapshot cadence (default 10 ms).
	PublishInterval time.Duration

	// Auditor supplies the live cross-host 4TD bound folded into every
	// published interval. Nil attaches a fresh default auditor.
	Auditor *Auditor

	// LoadQPS, when positive, drives Poisson read traffic at that mean
	// rate against every served host from inside the simulation,
	// recording width/coverage telemetry (dtp_timesvc_* metrics).
	LoadQPS float64
}

// TimePlane is a running serving plane: one UTC broadcaster plus a
// TimeService per served host. Build with System.TimePlane; stopped by
// System.Close.
type TimePlane struct {
	broadcaster string
	hosts       []string // served hosts, sorted
	b           *daemon.UTCBroadcaster
	services    map[string]*timesvc.Service
	followers   map[string]*daemon.UTCFollower
	loads       map[string]*timesvc.Load
}

// TimePlane attaches the serving plane: a daemon on every involved
// host, the §5.2 UTC broadcast from the broadcaster, and a TimeService
// per served host whose published interval half-width composes the live
// audit bound, both daemons' self-reported estimate errors, and the
// measured broadcast residual. The plane (daemons, broadcaster,
// services, loads) is stopped by Close.
func (s *System) TimePlane(o TimePlaneOptions) (*TimePlane, error) {
	var hostNames []string
	for _, id := range s.net.Graph.HostIDs() {
		hostNames = append(hostNames, s.net.Graph.Nodes[id].Name)
	}
	if len(hostNames) < 2 {
		return nil, fmt.Errorf("dtp: TimePlane needs at least 2 hosts (broadcaster + served), topology has %d", len(hostNames))
	}
	isHost := map[string]bool{}
	for _, h := range hostNames {
		isHost[h] = true
	}

	bc := o.Broadcaster
	if bc == "" {
		bc = hostNames[0]
	}
	if !isHost[bc] {
		return nil, fmt.Errorf("dtp: TimePlane broadcaster %q is not a host", bc)
	}
	served := o.Hosts
	if len(served) == 0 {
		for _, h := range hostNames {
			if h != bc {
				served = append(served, h)
			}
		}
	}
	for _, h := range served {
		if !isHost[h] {
			return nil, fmt.Errorf("dtp: TimePlane host %q is not a host", h)
		}
		if h == bc {
			return nil, fmt.Errorf("dtp: TimePlane host %q is the broadcaster", h)
		}
	}
	sort.Strings(served)

	aud := o.Auditor
	if aud == nil {
		aud = s.Audit(AuditOptions{})
	}

	newDaemon := func(host string) (*daemon.Daemon, error) {
		w, err := s.Daemon(DaemonOptions{
			Host: host, CalInterval: o.CalInterval, Discipline: o.Discipline,
		})
		if err != nil {
			return nil, err
		}
		return w.d, nil
	}

	bd, err := newDaemon(bc)
	if err != nil {
		return nil, err
	}
	bcast := sim.Time(10 * sim.Millisecond)
	if o.BroadcastInterval > 0 {
		bcast = sim.FromStd(o.BroadcastInterval)
	}
	b := daemon.NewUTCBroadcaster(bd, daemon.TrueUTC{Sch: s.sch}, bcast)

	scfg := timesvc.ServiceConfig{}
	if o.PublishInterval > 0 {
		scfg.PublishInterval = sim.FromStd(o.PublishInterval)
	}

	tp := &TimePlane{
		broadcaster: bc,
		hosts:       served,
		b:           b,
		services:    map[string]*timesvc.Service{},
		followers:   map[string]*daemon.UTCFollower{},
		loads:       map[string]*timesvc.Load{},
	}
	for _, h := range served {
		d, err := newDaemon(h)
		if err != nil {
			return nil, err
		}
		f := daemon.NewUTCFollower(d)
		if s.cfg.reg != nil {
			f.Instrument(s.cfg.reg)
		}
		b.Subscribe(f)
		svc := timesvc.NewService(d, f, aud, scfg)
		svc.Instrument(s.cfg.reg, s.cfg.tracer)
		svc.Start()
		tp.services[h] = svc
		tp.followers[h] = f
		if o.LoadQPS > 0 {
			ld := timesvc.NewLoad(svc, sim.NewRNG(s.cfg.seed, "timesvc-load/"+h),
				timesvc.LoadConfig{QPS: o.LoadQPS})
			ld.Instrument(s.cfg.reg)
			ld.Start()
			tp.loads[h] = ld
		}
	}
	b.Start()
	s.timeplanes = append(s.timeplanes, tp)
	return tp, nil
}

// Broadcaster returns the UTC-broadcasting host's name.
func (tp *TimePlane) Broadcaster() string { return tp.broadcaster }

// Hosts returns the served hosts, sorted.
func (tp *TimePlane) Hosts() []string { return append([]string(nil), tp.hosts...) }

// Service returns the named host's TimeService, or an error for hosts
// the plane does not serve.
func (tp *TimePlane) Service(host string) (*TimeService, error) {
	svc, ok := tp.services[host]
	if !ok {
		return nil, fmt.Errorf("dtp: no time service on %q", host)
	}
	return svc, nil
}

// Clock returns the named host's in-sim TimeClock (TSC timebase; only
// usable while the simulation goroutine is idle or from scheduler
// callbacks).
func (tp *TimePlane) Clock(host string) (*TimeClock, error) {
	svc, err := tp.Service(host)
	if err != nil {
		return nil, err
	}
	return svc.Clock(), nil
}

// ReadCheck samples the named host's clock at the current simulated
// instant and verifies the interval against ground truth: the interval
// width and whether true time fell inside. Campaign runs and tests use
// it as the serving-plane invariant probe.
func (tp *TimePlane) ReadCheck(host string) (widthPs float64, covered bool, err error) {
	svc, err := tp.Service(host)
	if err != nil {
		return 0, false, err
	}
	return svc.ReadCheck()
}

// Load returns the named host's in-sim request-load model (nil when the
// plane was built without LoadQPS).
func (tp *TimePlane) Load(host string) *timesvc.Load { return tp.loads[host] }

// TimeHandler serves the named host's clock over HTTP (GET now /
// interval as JSON) — mountable on the same mux as TelemetryHandler.
func (tp *TimePlane) TimeHandler(host string) (http.Handler, error) {
	c, err := tp.Clock(host)
	if err != nil {
		return nil, err
	}
	return timesvc.Handler(host, c), nil
}

// HealthHandler serves the plane's /healthz summary: per served host,
// publish/degraded counters, the live bound, and the ε-budget
// attribution identifying which error source dominates the served
// interval width.
func (tp *TimePlane) HealthHandler() http.Handler {
	return timesvc.HealthHandler(tp.services)
}

// Attribution returns the named host's ε-budget split.
func (tp *TimePlane) Attribution(host string) (timesvc.Attribution, error) {
	svc, err := tp.Service(host)
	if err != nil {
		return timesvc.Attribution{}, err
	}
	return svc.Attribution(), nil
}

// stop halts the plane's broadcaster, services, and loads (daemons are
// tracked and stopped by the System itself).
func (tp *TimePlane) stop() {
	tp.b.Stop()
	for _, svc := range tp.services {
		svc.Stop()
	}
	for _, ld := range tp.loads {
		ld.Stop()
	}
}
