// TrueTime: the paper's §1 motivation quantified. Spanner-style
// systems expose time as an uncertainty interval [earliest, latest]
// with half-width ε, and external consistency forces a commit to wait
// out 2ε before acknowledging. Tighter clock synchronization therefore
// buys transaction throughput directly.
//
// This example measures ε for the three synchronization stacks built in
// this repository — NTP (software timestamps), PTP (hardware
// timestamps, idle network), and DTP (PHY-level, bounded) — and shows
// what each means for dependent-transaction rates and for timestamp
// ordering of causally related events.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"github.com/dtplab/dtp"
	"github.com/dtplab/dtp/internal/fabric"
	"github.com/dtplab/dtp/internal/ntp"
	"github.com/dtplab/dtp/internal/ptp"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/topo"
)

// epsDTP measures the DTP software-clock uncertainty between two
// servers in the paper tree: the worst daemon-vs-daemon disagreement,
// plus the 4TD+8T analytic bound as the interval the API would expose.
func epsDTP() (measuredNs, boundNs float64) {
	sys, err := dtp.New(dtp.PaperTree(), dtp.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()
	if err := sys.RunUntilSynced(time.Second); err != nil {
		log.Fatal(err)
	}
	a, _ := sys.AttachDaemon("s4", 10*time.Millisecond)
	b, _ := sys.AttachDaemon("s11", 10*time.Millisecond)
	sys.Run(500 * time.Millisecond)
	worst := 0.0
	for i := 0; i < 300; i++ {
		sys.Run(time.Millisecond)
		d := math.Abs(a.OffsetTicks()-b.OffsetTicks()) * sys.TickNanos()
		if d > worst {
			worst = d
		}
	}
	return worst, sys.BoundNanos() + 8*sys.TickNanos()
}

// epsPTP measures worst client offset on an idle PTP star.
func epsPTP() float64 {
	sch := sim.NewScheduler()
	g := topo.Star(4)
	net, err := fabric.New(sch, 7, g, fabric.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfg := ptp.DefaultConfig().Compressed(50)
	clients := []int{2, 3, 4, 5}
	gm := ptp.NewGrandmaster(net, 1, clients, cfg, 8)
	var cs []*ptp.Client
	for i, c := range clients {
		cl := ptp.NewClient(net, c, 1, cfg, uint64(9+i))
		cl.Start()
		cs = append(cs, cl)
	}
	gm.Start()
	sch.Run(2 * sim.Second)
	worst := 0.0
	for i := 0; i < 300; i++ {
		sch.RunFor(10 * sim.Millisecond)
		for _, c := range cs {
			if o := math.Abs(c.OffsetToMasterPs()) / 1000; o > worst {
				worst = o
			}
		}
	}
	return worst
}

// epsNTP measures worst client offset on an NTP star.
func epsNTP() float64 {
	sch := sim.NewScheduler()
	net, err := fabric.New(sch, 11, topo.Star(4), fabric.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	cfg := ntp.DefaultConfig().Compressed(100)
	ntp.NewServer(net, 1, cfg, 12)
	var cs []*ntp.Client
	for i, n := range []int{2, 3, 4, 5} {
		c := ntp.NewClient(net, n, 1, cfg, uint64(13+i))
		c.Start()
		cs = append(cs, c)
	}
	sch.Run(20 * sim.Second)
	worst := 0.0
	for i := 0; i < 300; i++ {
		sch.RunFor(10 * sim.Millisecond)
		for _, c := range cs {
			if o := math.Abs(c.OffsetToServerPs()) / 1e3; o > worst {
				worst = o
			}
		}
	}
	return worst
}

func main() {
	fmt.Println("measuring clock uncertainty ε on each stack (simulated)...")
	dtpMeasured, dtpBound := epsDTP()
	ptpEps := epsPTP()
	ntpEps := epsNTP()

	fmt.Printf("\n%-22s %14s %18s %22s\n", "stack", "ε", "commit-wait 2ε", "dependent txns/s")
	row := func(name string, epsNs float64) {
		fmt.Printf("%-22s %11.0f ns %15.0f ns %22.0f\n", name, epsNs, 2*epsNs, 1e9/(2*epsNs))
	}
	row("NTP (software)", ntpEps)
	row("PTP (idle network)", ptpEps)
	row("DTP (measured)", dtpMeasured)
	row("DTP (4TD+8T bound)", dtpBound)

	// Ordering: two causally related events 1 us apart on different
	// servers. A timestamp order inversion is possible whenever the
	// inter-event gap is inside the uncertainty.
	fmt.Println("\ncausally ordered events 1 us apart on different servers:")
	for _, s := range []struct {
		name string
		eps  float64
	}{{"NTP", ntpEps}, {"PTP", ptpEps}, {"DTP", dtpMeasured}} {
		if s.eps*2 > 1000 {
			fmt.Printf("  %-4s ε=%.0fns: timestamp order NOT trustworthy (2ε > gap)\n", s.name, s.eps)
		} else {
			fmt.Printf("  %-4s ε=%.0fns: timestamp order provably correct\n", s.name, s.eps)
		}
	}
	fmt.Println("\nan order of magnitude of synchronization buys an order of magnitude")
	fmt.Println("of dependent-transaction throughput — the paper's §1 argument.")
}
