// Command dtpsim runs an ad-hoc DTP simulation on a chosen topology and
// reports synchronization quality over time — a quick way to explore
// the protocol outside the canned paper experiments.
//
// Usage:
//
//	dtpsim -topo tree -duration 500ms -watch 50ms
//	dtpsim -topo fattree:4 -load mtu -seed 9
//	dtpsim -topo chain:6 -beacon 1200
//
// With -sweep-seeds N (or -campaign grid.json) dtpsim becomes a
// campaign: N independent runs fan out across -jobs workers, per-run
// results stream as JSONL in grid order (byte-identical for any -jobs
// value), and an aggregate summary closes the run:
//
//	dtpsim -topo chain:5 -chaos examples/chaos/storm.json -duration 5ms -sweep-seeds 3 -jobs 4
//	dtpsim -campaign examples/campaign/smoke.json -jobs 8
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"time"

	"github.com/dtplab/dtp"
	"github.com/dtplab/dtp/internal/campaign"
	"github.com/dtplab/dtp/internal/cliutil"
	"github.com/dtplab/dtp/internal/telemetry"
)

var (
	// -topo -seed -duration -jobs -metrics-out -trace-out -chaos
	shared = cliutil.Flags{Topo: "pair", Duration: 500 * time.Millisecond}

	watchFlag  = flag.Duration("watch", 100*time.Millisecond, "offset report interval")
	beaconFlag = flag.Uint64("beacon", 200, "beacon interval in ticks")
	loadFlag   = flag.String("load", "none", "link load: none | mtu | jumbo")
	wanderFlag = flag.Bool("wander", true, "enable oscillator wander")
	berFlag    = flag.Float64("ber", 0, "wire bit error rate")
	auditFlag  = flag.Bool("audit", false, "run the online 4TD-bound auditor; exit 1 on any violation")
	auditEvery = flag.Duration("audit-every", 100*time.Microsecond, "auditor check cadence (simulated time)")
	traceCap   = flag.Int("trace-cap", 1<<20, "trace ring capacity; firehose kinds evict one-time INIT events from small rings")
	sweepSeeds = flag.Int("sweep-seeds", 1, "campaign mode: run N consecutive seeds starting at -seed")
	gridFlag   = flag.String("campaign", "", "campaign mode: run the grid declared in this JSON file")
	timeSvc    = flag.Bool("time-service", false, "attach the serving plane: in campaign mode probe every served interval against ground truth; in single mode serve + drive in-sim read load")

	timelineOut   = flag.String("timeline-out", "", "single mode: write the run's windowed timeline as JSONL")
	timelineEvery = flag.Duration("timeline-every", 100*time.Microsecond, "timeline sampling cadence (simulated time)")
	flightDir     = flag.String("flight-dir", "", "arm the flight recorder: bundles land here (campaign mode: under per-run subdirectories)")
	pprofPrefix   = flag.String("pprof", "", "write <prefix>.cpu and <prefix>.allocs pprof profiles covering the whole run")
)

// stopProfiles flushes the -pprof profiles; exit routes every normal
// termination through it so profiles survive nonzero exits.
var stopProfiles = func() {}

func exit(code int) {
	stopProfiles()
	os.Exit(code)
}

// startProfiles arms CPU and allocation profiling for the whole run
// (EXPERIMENTS.md "Profiling the engine"). The returned stop function
// writes <prefix>.allocs and finishes <prefix>.cpu.
func startProfiles(prefix string) func() {
	cpuF, err := os.Create(prefix + ".cpu")
	if err != nil {
		cliutil.Fatal("dtpsim", 1, err)
	}
	if err := pprof.StartCPUProfile(cpuF); err != nil {
		cliutil.Fatal("dtpsim", 1, err)
	}
	return func() {
		pprof.StopCPUProfile()
		cpuF.Close()
		allocF, err := os.Create(prefix + ".allocs")
		if err != nil {
			cliutil.Fatal("dtpsim", 1, err)
		}
		defer allocF.Close()
		if err := pprof.Lookup("allocs").WriteTo(allocF, 0); err != nil {
			cliutil.Fatal("dtpsim", 1, err)
		}
		fmt.Fprintf(os.Stderr, "dtpsim: profiles written to %s.cpu and %s.allocs\n", prefix, prefix)
	}
}

func main() {
	shared.Register(flag.CommandLine,
		cliutil.FlagTopo|cliutil.FlagSeed|cliutil.FlagDuration|cliutil.FlagJobs|
			cliutil.FlagMetricsOut|cliutil.FlagTraceOut|cliutil.FlagChaos|
			cliutil.FlagHardened|cliutil.FlagDiscipline)
	flag.Parse()
	if err := shared.Validate(); err != nil {
		cliutil.Fatal("dtpsim", 2, err)
	}
	if *pprofPrefix != "" {
		stopProfiles = startProfiles(*pprofPrefix)
	}
	if *sweepSeeds > 1 || *gridFlag != "" {
		runCampaign()
		stopProfiles()
		return
	}
	runSingle()
	stopProfiles()
}

// runCampaign expands the grid (from -campaign JSON, or from the
// regular flags with -sweep-seeds consecutive seeds), fans it out
// across -jobs workers, and streams deterministic JSONL per run
// followed by the aggregate JSON and a human-readable summary.
func runCampaign() {
	var g campaign.Grid
	if *gridFlag != "" {
		loaded, err := campaign.LoadGrid(*gridFlag)
		if err != nil {
			cliutil.Fatal("dtpsim", 2, err)
		}
		g = *loaded
	} else {
		g = campaign.Grid{
			Name:        fmt.Sprintf("sweep-%s", shared.Topo),
			Topos:       []string{shared.Topo},
			Seeds:       campaign.SeedSweep(shared.Seed, *sweepSeeds),
			Loads:       []string{*loadFlag},
			Beacons:     []uint64{*beaconFlag},
			Durations:   []campaign.Duration{campaign.Duration(shared.Duration)},
			Wander:      *wanderFlag,
			BER:         *berFlag,
			TimeService: *timeSvc,
			AuditEvery:  campaign.Duration(*auditEvery),
		}
		if shared.Chaos != "" {
			g.Chaos = []string{shared.Chaos}
		}
		if shared.Hardened {
			g.Hardened = []bool{true}
		}
		if shared.Discipline != "" {
			g.Disciplines = []string{shared.Discipline}
		}
	}
	if *flightDir != "" {
		g.FlightDir = *flightDir
	}
	if err := g.Validate(); err != nil {
		cliutil.Fatal("dtpsim", 2, err)
	}
	points := g.Expand()
	fmt.Fprintf(os.Stderr, "dtpsim: campaign %q: %d runs on %s workers\n",
		g.Name, len(points), jobsLabel(shared.Jobs))
	rep, err := campaign.Run(g, campaign.Options{
		Jobs: shared.Jobs,
		OnResult: func(r *campaign.Result) {
			if err := campaign.WriteResultJSON(os.Stdout, r); err != nil {
				cliutil.Fatal("dtpsim", 1, err)
			}
		},
	})
	if err != nil {
		cliutil.Fatal("dtpsim", 1, err)
	}
	if err := campaign.WriteAggregateJSON(os.Stdout, rep.Aggregate); err != nil {
		cliutil.Fatal("dtpsim", 1, err)
	}
	fmt.Fprintln(os.Stderr, rep.Summary())
	if !rep.OK() {
		exit(1)
	}
}

func jobsLabel(jobs int) string {
	if jobs <= 0 {
		return "GOMAXPROCS"
	}
	return fmt.Sprint(jobs)
}

func runSingle() {
	g, err := shared.Topology()
	if err != nil {
		cliutil.Fatal("dtpsim", 2, err)
	}
	opts := []dtp.Option{
		dtp.WithSeed(shared.Seed),
		dtp.WithBeaconInterval(*beaconFlag),
	}
	scenario, err := shared.LoadChaos()
	if err != nil {
		cliutil.Fatal("dtpsim", 2, err)
	}
	if scenario != nil {
		*auditFlag = true // the campaign's zero-unexpected-violations claim needs the auditor
	}
	var reg *dtp.MetricsRegistry
	var tracer *dtp.Tracer
	if shared.MetricsOut != "" || shared.TraceOut != "" || *auditFlag ||
		*timelineOut != "" || *flightDir != "" {
		reg = dtp.NewMetricsRegistry()
		tracer = dtp.NewTracer(*traceCap)
		if shared.TraceOut != "" {
			tracer.SetKinds() // dump requested: include per-beacon firehose kinds
		}
		opts = append(opts, dtp.WithTelemetry(reg, tracer))
	}
	if *wanderFlag {
		opts = append(opts, dtp.WithWander(10*time.Millisecond, 100))
	}
	if *berFlag > 0 {
		opts = append(opts, dtp.WithBER(*berFlag), dtp.WithParity())
	}
	if shared.Hardened {
		opts = append(opts, dtp.WithHardened())
	}
	if shared.Discipline != "" {
		dc, err := shared.ParseDiscipline()
		if err != nil {
			cliutil.Fatal("dtpsim", 2, err)
		}
		opts = append(opts, dtp.WithDiscipline(dc))
	}
	sys, err := dtp.New(g, opts...)
	if err != nil {
		cliutil.Fatal("dtpsim", 1, err)
	}
	defer sys.Close()
	fmt.Printf("topology %s: %d devices, %d links, diameter %d, bound 4TD = %.1f ns\n",
		shared.Topo, len(g.Nodes), len(g.Links), g.Diameter(), sys.BoundNanos())

	if reg != nil {
		sys.EnableSchedulerMetrics(false) // wall-clock rate stays off: -metrics-out must be deterministic
	}
	var aud *dtp.Auditor
	if *auditFlag {
		aud = sys.Audit(dtp.AuditOptions{Interval: *auditEvery})
		fmt.Printf("auditor: checking every simulated %v against per-pair 4TD (+8T software margin)\n", *auditEvery)
	}
	var eng *dtp.ChaosEngine
	if scenario != nil {
		if eng, err = sys.Chaos(dtp.ChaosOptions{Scenario: scenario, Auditor: aud}); err != nil {
			cliutil.Fatal("dtpsim", 2, err)
		}
		fmt.Printf("chaos: scenario %q armed: %d faults, verification deadline %v\n",
			scenario.Name, len(scenario.Faults), eng.Deadline().Std())
	}

	sys.Start()
	wallStart := time.Now()
	if err := sys.RunUntilSynced(time.Second); err != nil {
		cliutil.Fatal("dtpsim", 1, err)
	}
	fmt.Printf("all %d links measured their one-way delays at t=%v\n", len(g.Links), sys.Now())

	// Snapshot the trace now, while the one-shot INIT/synced events are
	// still in the ring: on long runs the beacon firehose evicts them
	// before the final dump, and offline analysis (dtptrace -assert-owd)
	// needs them. The snapshot is merged into the dump by sequence number.
	var earlyTrace []telemetry.Event
	if shared.TraceOut != "" {
		earlyTrace = tracer.Events()
	}

	switch *loadFlag {
	case "mtu":
		sys.SetUniformLoad(1522)
		fmt.Println("links saturated with MTU frames (beacons confined to interpacket gaps)")
	case "jumbo":
		sys.SetUniformLoad(9022)
		fmt.Println("links saturated with jumbo frames")
	}

	// Serving plane, timeline, and flight recorder attach after
	// Audit/Chaos so every column and state provider binds to what this
	// run actually carries.
	var tp *dtp.TimePlane
	if *timeSvc {
		if tp, err = sys.TimePlane(dtp.TimePlaneOptions{
			CalInterval: 10 * time.Millisecond,
			Auditor:     aud,
			LoadQPS:     5000, // in-sim readers exercising the seqlock fast path
		}); err != nil {
			cliutil.Fatal("dtpsim", 2, err)
		}
		fmt.Printf("time service: %s broadcasting UTC, serving %v\n", tp.Broadcaster(), tp.Hosts())
	}
	var tl *dtp.Timeline
	if *timelineOut != "" || *flightDir != "" {
		tl = sys.Timeline(dtp.TimelineOptions{Interval: *timelineEvery})
	}
	var rec *dtp.FlightRecorder
	if *flightDir != "" {
		if rec, err = sys.FlightRecorder(dtp.FlightOptions{Dir: *flightDir}); err != nil {
			cliutil.Fatal("dtpsim", 2, err)
		}
		// A served read that fails closed on a *stale* snapshot is a
		// black-box trigger: the publish loop stopped while readers
		// still asked for time.
		if tp != nil {
			for _, h := range tp.Hosts() {
				if ld := tp.Load(h); ld != nil {
					host := h
					ld.OnError = func(err error) {
						if errors.Is(err, dtp.ErrTimeStale) {
							rec.Trigger("read_stale", host)
						}
					}
				}
			}
		}
	}

	fmt.Printf("%12s %14s %14s %10s\n", "t", "max offset", "bound", "ok")
	var worst int64
	for elapsed := time.Duration(0); elapsed < shared.Duration; elapsed += *watchFlag {
		sys.Run(*watchFlag)
		off := sys.MaxOffsetTicks()
		if off > worst {
			worst = off
		}
		fmt.Printf("%12v %8d ticks %8d ticks %10v\n",
			sys.Now(), off, sys.BoundTicks(), off <= sys.BoundTicks())
	}
	fmt.Printf("worst offset over run: %d ticks = %.1f ns (bound %.1f ns)\n",
		worst, float64(worst)*sys.TickNanos(), sys.BoundNanos())

	// Engine throughput: the whole run (sync + steady state) against
	// wall time, in the two figures BENCH_8.json tracks.
	wall := time.Since(wallStart).Seconds()
	events := sys.EventsProcessed()
	eventsSec := float64(events) / wall
	devSimPerWall := float64(len(g.Nodes)) * sys.Now().Seconds() / wall
	fmt.Printf("engine: %d events in %.2f s wall = %.0f events/sec (%.1f device-sim-seconds/wall-second)\n",
		events, wall, eventsSec, devSimPerWall)
	if reg != nil {
		rate := reg.Gauge("dtp_sim_events_per_sec",
			"Simulation events dispatched per wall-clock second over the whole run (host-dependent).")
		// Host-dependent values stay out of deterministic artifacts, the
		// EnableSchedulerMetrics(false) policy: when -metrics-out or
		// -flight-dir is armed the gauge is exported at its zero value.
		if shared.MetricsOut == "" && *flightDir == "" {
			rate.Set(eventsSec)
		}
	}
	chaosOK := true
	if eng != nil {
		// The watch loop may end before the last fault clears; the
		// campaign verdict is only valid past the scenario deadline.
		sys.RunUntil(eng.Deadline())
		if err := eng.Verify(); err != nil {
			fmt.Fprintln(os.Stderr, "dtpsim:", err)
			chaosOK = false
			if rec != nil {
				rec.Trigger("chaos_verify_failed", err.Error())
			}
		}
		fmt.Println(eng.Summary())
	}
	if aud != nil {
		fmt.Println(aud.Summary())
	}
	if rej, quar := sys.ByzantineStats(); rej > 0 || quar > 0 {
		fmt.Printf("hardened: %d counter advances rejected, %d port quarantines\n", rej, quar)
	}
	if tp != nil {
		for _, h := range tp.Hosts() {
			if a, err := tp.Attribution(h); err == nil && a.Publishes > 0 {
				fmt.Printf("eps budget %s: %.0f ps served", h, a.TotalLastPs)
				for _, c := range a.Components {
					fmt.Printf("  %s %.0f%%", c.Name, c.Share*100)
				}
				fmt.Printf("  (dominant: %s)\n", a.Dominant)
			}
		}
	}
	if shared.MetricsOut != "" {
		if err := cliutil.WriteFile(shared.MetricsOut, func(w io.Writer) error {
			return dtp.WriteMetrics(w, reg)
		}); err != nil {
			cliutil.Fatal("dtpsim", 1, err)
		}
		fmt.Printf("metrics written to %s\n", shared.MetricsOut)
	}
	if shared.TraceOut != "" {
		final := tracer.Events()
		var events []telemetry.Event
		for _, e := range earlyTrace {
			if len(final) == 0 || e.Seq < final[0].Seq {
				events = append(events, e)
			}
		}
		events = append(events, final...)
		total := tracer.Total()
		if err := cliutil.WriteFile(shared.TraceOut, func(w io.Writer) error {
			// The header's drop count is what the ring evicted beyond
			// the merged early+final window.
			if err := telemetry.WriteTraceHeader(w, len(events), total, total-uint64(len(events))); err != nil {
				return err
			}
			return telemetry.WriteEvents(w, events)
		}); err != nil {
			cliutil.Fatal("dtpsim", 1, err)
		}
		fmt.Printf("trace written to %s (%d events, %d dropped)\n",
			shared.TraceOut, len(events), total-uint64(len(events)))
	}
	if *timelineOut != "" {
		if err := cliutil.WriteFile(*timelineOut, tl.WriteJSONL); err != nil {
			cliutil.Fatal("dtpsim", 1, err)
		}
		fmt.Printf("timeline written to %s (%d samples)\n", *timelineOut, tl.Total())
	}
	if rec != nil {
		if err := rec.Err(); err != nil {
			cliutil.Fatal("dtpsim", 1, err)
		}
		for _, b := range rec.Bundles() {
			fmt.Printf("flight bundle: %s\n", b)
		}
		if len(rec.Bundles()) == 0 {
			fmt.Printf("flight recorder armed, no triggers tripped\n")
		}
	}
	if !chaosOK {
		exit(1)
	}
	// Under chaos the instantaneous worst legitimately exceeds the bound
	// while faults are active; the engine's windowed verification above
	// is the authoritative check then.
	if eng == nil && worst > sys.BoundTicks() {
		exit(1)
	}
	if aud != nil && aud.Violations() > 0 {
		exit(1)
	}
}
