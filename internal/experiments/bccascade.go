package experiments

import (
	"fmt"
	"math"

	"github.com/dtplab/dtp/internal/fabric"
	"github.com/dtplab/dtp/internal/ptp"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/topo"
)

// BCCascadeRow is one point of the boundary-clock cascade measurement.
type BCCascadeRow struct {
	// Levels is the number of boundary clocks between the timeserver
	// and the measured client.
	Levels int
	// WorstNs / P99Ns summarize the client's offset to TRUE time after
	// convergence.
	WorstNs float64
	P99Ns   float64
}

// bcChain builds ts — bc1 — ... — bcN — leaf, all hosts with direct
// cables (each BC is slave on one port, master on the other).
func bcChain(levels int) topo.Graph {
	g := topo.Graph{}
	add := func(name string) int {
		id := len(g.Nodes)
		g.Nodes = append(g.Nodes, topo.Node{ID: id, Name: name, Kind: topo.Host})
		return id
	}
	prev := add("ts")
	for i := 1; i <= levels; i++ {
		bc := add(fmt.Sprintf("bc%d", i))
		g.Links = append(g.Links, topo.Link{A: prev, B: bc, LengthM: topo.DefaultCableM})
		prev = bc
	}
	leaf := add("leaf")
	g.Links = append(g.Links, topo.Link{A: prev, B: leaf, LengthM: topo.DefaultCableM})
	return g
}

// AblationBCCascade measures how PTP precision degrades through chains
// of boundary clocks (§2.4.2: "precision errors from Boundary clocks
// can be cascaded to low-level components of the timing hierarchy").
func AblationBCCascade(o Options, maxLevels int) ([]BCCascadeRow, error) {
	o = o.withDefaults(2*sim.Second, 10*sim.Millisecond)
	var rows []BCCascadeRow
	for levels := 0; levels <= maxLevels; levels++ {
		sch := sim.NewScheduler()
		g := bcChain(levels)
		net, err := fabric.New(sch, o.Seed, g, fabric.DefaultConfig())
		if err != nil {
			return nil, err
		}
		cfg := ptp.DefaultConfig().Compressed(ptpCompression)
		leafID := len(g.Nodes) - 1
		gmClients := []int{1} // the first hop below the timeserver
		if levels == 0 {
			gmClients = []int{leafID}
		}
		gm := ptp.NewGrandmaster(net, 0, gmClients, cfg, o.Seed+1)
		var bcs []*ptp.BoundaryClock
		for i := 1; i <= levels; i++ {
			down := i + 1 // next BC or the leaf
			bc := ptp.NewBoundaryClock(net, i, i-1, []int{down}, cfg, o.Seed+10+uint64(i))
			bcs = append(bcs, bc)
		}
		leaf := ptp.NewClient(net, leafID, leafID-1, cfg, o.Seed+100)
		gm.Start()
		for _, bc := range bcs {
			bc.Start()
		}
		leaf.Start()

		// Convergence must propagate level by level.
		sch.Run(sim.Time(2+levels) * sim.Second)
		worst := 0.0
		sum := statsAbs{}
		end := sch.Now() + o.Duration
		for sch.Now() < end {
			sch.RunFor(o.SamplePeriod)
			off := math.Abs(leaf.OffsetToMasterPs()) / 1000
			if off > worst {
				worst = off
			}
			sum.add(off)
		}
		rows = append(rows, BCCascadeRow{Levels: levels, WorstNs: worst, P99Ns: sum.p99()})
	}
	return rows, nil
}

// statsAbs is a tiny quantile helper for this experiment.
type statsAbs struct{ v []float64 }

func (s *statsAbs) add(x float64) { s.v = append(s.v, x) }

func (s *statsAbs) p99() float64 {
	if len(s.v) == 0 {
		return 0
	}
	tmp := make([]float64, len(s.v))
	copy(tmp, s.v)
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	return tmp[int(0.99*float64(len(tmp)-1))]
}
