// Package swclock provides a steerable continuous clock: a counter
// driven by a free-running oscillator whose frequency and phase a servo
// can adjust. It models PTP hardware clocks (PHCs), NTP-disciplined
// system clocks, and TSC-derived software clocks. Values are picoseconds
// of protocol time; the underlying oscillator error is hidden from the
// protocol, which must estimate and cancel it.
//
// Unlike internal/xo (exact integer-femtosecond tick counters for DTP's
// PHY-level arithmetic), this clock is float64-based: the protocols it
// serves operate at nanosecond-to-millisecond error scales where float
// rounding is irrelevant.
package swclock

import (
	"github.com/dtplab/dtp/internal/sim"
)

// Clock is a steerable clock.
type Clock struct {
	sch *sim.Scheduler

	// hwPPM is the oscillator's true frequency error.
	hwPPM float64
	// adjPPB is the servo's current frequency correction.
	adjPPB float64

	baseReal sim.Time
	baseVal  float64 // ps
}

// New creates a clock reading zero at the current simulated time,
// drifting at hwPPM.
func New(sch *sim.Scheduler, hwPPM float64) *Clock {
	return &Clock{sch: sch, hwPPM: hwPPM, baseReal: sch.Now()}
}

// rate returns the clock's advance rate in clock-ps per real-ps.
func (c *Clock) rate() float64 {
	return 1 + c.hwPPM*1e-6 + c.adjPPB*1e-9
}

// At returns the clock reading (ps) at real time t. Note that t must not
// precede the last rate change: readings are extrapolated from the
// current segment only, exactly like real hardware (a past timestamp
// must be latched when it happens, not reconstructed).
func (c *Clock) At(t sim.Time) float64 {
	return c.baseVal + float64(t-c.baseReal)*c.rate()
}

// Now returns the clock reading at the current simulated time.
func (c *Clock) Now() float64 { return c.At(c.sch.Now()) }

// rebase anchors the clock at the current instant so rate changes do
// not rewrite history.
func (c *Clock) rebase() {
	now := c.sch.Now()
	c.baseVal = c.At(now)
	c.baseReal = now
}

// Step slews the clock phase instantaneously by deltaPs.
func (c *Clock) Step(deltaPs float64) {
	c.rebase()
	c.baseVal += deltaPs
}

// AdjFreq sets the servo frequency correction in parts per billion.
func (c *Clock) AdjFreq(ppb float64) {
	c.rebase()
	c.adjPPB = ppb
}

// AdjPPB returns the current servo correction.
func (c *Clock) AdjPPB() float64 { return c.adjPPB }

// SetHwPPM changes the underlying oscillator error (wander injection).
func (c *Clock) SetHwPPM(ppm float64) {
	c.rebase()
	c.hwPPM = ppm
}

// HwPPM returns the true oscillator error (ground-truth access for
// tests and experiment reporting).
func (c *Clock) HwPPM() float64 { return c.hwPPM }
