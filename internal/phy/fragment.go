package phy

// 1 Gigabit Ethernet support (§7). The 1G PCS uses 8b/10b line coding:
// its interpacket idles are /I/ ordered sets of two code groups
// (16 payload bits), not 64b/66b control blocks, so a 56-bit DTP message
// cannot ride in a single idle. The paper notes DTP "needs to adapt ...
// to send clock counter values with the different encoding"; this file
// implements that adaptation: a message is split into four fragments,
// each a 2-bit sequence number plus a 14-bit chunk, carried in four
// consecutive idle ordered sets. 4 × 14 = 56 bits carries the same
// 3-bit type + 53-bit payload as one 10G /E/ block.

// FragmentsPerMessage is how many ordered sets one DTP message spans at
// 1 GbE.
const FragmentsPerMessage = 4

// FragmentBits is the chunk width per fragment.
const FragmentBits = 14

// Fragment is one 16-bit ordered-set payload: seq in the top 2 bits,
// chunk in the low 14.
type Fragment uint16

// Seq returns the fragment's position (0..3).
func (f Fragment) Seq() int { return int(f >> FragmentBits) }

// Chunk returns the fragment's 14 data bits.
func (f Fragment) Chunk() uint64 { return uint64(f) & (1<<FragmentBits - 1) }

// FragmentMessage splits an encoded message (56 bits, as produced by
// Codec.Encode) into four ordered-set fragments, chunk 0 carrying the
// least significant bits.
func FragmentMessage(c Codec, m Message) [FragmentsPerMessage]Fragment {
	bits := c.Encode(m)
	var out [FragmentsPerMessage]Fragment
	for i := 0; i < FragmentsPerMessage; i++ {
		chunk := bits >> (i * FragmentBits) & (1<<FragmentBits - 1)
		out[i] = Fragment(uint16(i)<<FragmentBits | uint16(chunk))
	}
	return out
}

// Assembler reassembles fragments arriving in order on one link. A
// fragment with an unexpected sequence number resets the assembler
// (the partial message is lost, like a bit-errored beacon — dropped,
// not misinterpreted).
type Assembler struct {
	codec Codec
	next  int
	acc   uint64
}

// NewAssembler creates an assembler for the codec.
func NewAssembler(codec Codec) *Assembler {
	return &Assembler{codec: codec}
}

// Push consumes one fragment. When the fourth in-order fragment lands,
// it returns the decoded message.
func (a *Assembler) Push(f Fragment) (m Message, ok bool) {
	if f.Seq() != a.next {
		// Out of order: drop any partial state. A seq-0 fragment can
		// still start a fresh message.
		a.next = 0
		a.acc = 0
		if f.Seq() != 0 {
			return Message{}, false
		}
	}
	a.acc |= f.Chunk() << (a.next * FragmentBits)
	a.next++
	if a.next < FragmentsPerMessage {
		return Message{}, false
	}
	bits := a.acc
	a.next = 0
	a.acc = 0
	return a.codec.Decode(bits)
}

// EmbedFragment packs a fragment into an idle block's control bits so
// the existing wire model (propagation + bit errors over Block) carries
// it; this stands in for the 8b/10b ordered set on the line.
func EmbedFragment(f Fragment) Block {
	return IdleBlock().WithControlBits(uint64(f))
}

// ExtractFragment recovers a fragment from an idle block. ok is false
// for a non-idle block or empty idles.
func ExtractFragment(b Block) (Fragment, bool) {
	if !b.IsIdle() {
		return 0, false
	}
	bits := b.ControlBits()
	if bits == 0 || bits>>16 != 0 {
		return 0, false
	}
	return Fragment(bits), true
}
