package campaign

import (
	"bytes"
	"os"
	"reflect"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// renderDeterministic marshals everything a campaign publishes as
// machine-readable output: per-run JSONL plus the aggregate JSON.
func renderDeterministic(t *testing.T, rep *Report) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := WriteJSONL(&b, rep.Results); err != nil {
		t.Fatal(err)
	}
	if err := WriteAggregateJSON(&b, rep.Aggregate); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestDeterminismAcrossWorkerCounts is the campaign's core contract:
// the same grid run with one worker and with eight produces
// byte-identical aggregate JSON and identical per-run Results, because
// results merge in grid order, never completion order. CI runs this
// under -race as well (go test -race ./internal/campaign).
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	g := Grid{
		Name:      "det",
		Topos:     []string{"pair", "chain:3"},
		Seeds:     []uint64{1, 2, 3, 4},
		Durations: []Duration{msec(2)},
		Wander:    true,
	}
	serial, err := Run(g, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(g, Options{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Jobs != 1 || parallel.Jobs != 8 {
		t.Fatalf("worker counts %d/%d, want 1/8", serial.Jobs, parallel.Jobs)
	}
	a, b := renderDeterministic(t, serial), renderDeterministic(t, parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("output diverged between -jobs 1 and -jobs 8:\n--- jobs=1\n%s\n--- jobs=8\n%s", a, b)
	}
	// Field-level check too, so a future json:"-" regression on a new
	// nondeterministic field can't hide behind identical rendering.
	for i := range serial.Results {
		sr, pr := serial.Results[i], parallel.Results[i]
		sr.Wall, pr.Wall = 0, 0
		if !reflect.DeepEqual(sr, pr) {
			t.Fatalf("run %d diverged:\n jobs=1: %+v\n jobs=8: %+v", i, sr, pr)
		}
	}
}

// TestDeterminismRepeatedRuns pins the weaker but also required
// property: re-running the same grid with the same worker count is
// byte-stable.
func TestDeterminismRepeatedRuns(t *testing.T) {
	g := Grid{
		Topos:     []string{"pair"},
		Seeds:     []uint64{1, 2},
		Durations: []Duration{msec(2)},
	}
	r1, err := Run(g, Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(g, Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderDeterministic(t, r1), renderDeterministic(t, r2)) {
		t.Fatal("same grid, same jobs: output not byte-stable across runs")
	}
}
