package telemetry

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Handler returns an http.Handler serving the registry at /metrics
// (Prometheus text exposition) and the tracer at /trace (JSONL with a
// dtp-trace/1 header line carrying drop accounting). Either argument
// may be nil: a nil registry serves an empty body, a nil tracer a
// zeroed header.
//
// /trace supports query filtering:
//
//	?kind=<name>[,<name>...]  keep only the named kinds (snake_case,
//	                          e.g. kind=counter_jump,bound_violation)
//	?limit=N                  keep only the N most recent matching events
//
// An unknown kind name or a non-positive limit is a 400.
func Handler(r *Registry, t *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		events := t.Events()
		q := req.URL.Query()
		if raw := q.Get("kind"); raw != "" {
			var mask uint64
			for _, name := range strings.Split(raw, ",") {
				k, ok := KindFromString(strings.TrimSpace(name))
				if !ok {
					http.Error(w, fmt.Sprintf("unknown trace kind %q", strings.TrimSpace(name)), http.StatusBadRequest)
					return
				}
				mask |= 1 << k
			}
			kept := events[:0]
			for _, e := range events {
				if mask&(1<<e.Kind) != 0 {
					kept = append(kept, e)
				}
			}
			events = kept
		}
		if raw := q.Get("limit"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n <= 0 {
				http.Error(w, fmt.Sprintf("bad limit %q: want a positive integer", raw), http.StatusBadRequest)
				return
			}
			if n < len(events) {
				events = events[len(events)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = WriteTraceHeader(w, len(events), t.Total(), t.Dropped())
		_ = WriteEvents(w, events)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("dtp telemetry: GET /metrics (Prometheus) or /trace (JSONL; ?kind=a,b&limit=N)\n"))
	})
	return mux
}
