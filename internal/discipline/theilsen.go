package discipline

import "math"

// theilSen fits the counter/TSC line with the Theil-Sen estimator over
// a sliding window: the ratio is the median of all pairwise slopes and
// the anchor is the median intercept. The median makes the fit immune
// to any minority of PCIe contention spikes (breakdown point ~29%)
// without explicitly detecting them.
type theilSen struct {
	window  int
	nominal float64

	hist  []Sample
	m     Model
	buf   []float64 // scratch for medians
	drops uint64
}

const (
	// tsColdSlackPPM is reported until the window holds enough pairs
	// for the slope spread to mean anything.
	tsColdSlackPPM = 150
	tsLockSamples  = 6
	// tsMADToSigma converts a median absolute deviation to a robust
	// standard deviation for Gaussian-ish noise.
	tsMADToSigma = 1.4826
	// tsErrMult scales the robust residual deviation into the anchor
	// error bound; tsSlackMult does the same for the slope spread.
	tsErrMult       = 4
	tsSlackMult     = 4
	tsFloorSlackPPM = 5
)

func newTheilSen(c Config, nominalRatio float64) *theilSen {
	d := &theilSen{window: c.Window, nominal: nominalRatio}
	d.Reset()
	return d
}

func (d *theilSen) Name() string { return "theilsen" }

func (d *theilSen) Feed(s Sample) Model {
	d.m.Dropped = false
	if n := len(d.hist); n > 0 && s.TSC <= d.hist[n-1].TSC {
		d.m.Dropped = true
		d.drops++
		return d.m
	}
	d.hist = append(d.hist, s)
	if len(d.hist) > d.window {
		d.hist = d.hist[1:]
	}
	n := len(d.hist)
	if n == 1 {
		d.m = Model{
			Valid: true, DTP: s.DTP, TSC: s.TSC, Ratio: d.nominal,
			ErrUnits: s.LatchErrPs * d.nominal, SlackPPM: tsColdSlackPPM,
		}
		return d.m
	}

	// Median of all pairwise slopes. Coordinates are centered on the
	// newest sample so float64 keeps sub-unit precision.
	d.buf = d.buf[:0]
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dt := d.hist[j].TSC - d.hist[i].TSC
			if dt > 0 {
				d.buf = append(d.buf, (d.hist[j].DTP-d.hist[i].DTP)/dt)
			}
		}
	}
	ratio := median(d.buf)
	slopeMAD := d.madAbout(ratio)

	// Median intercept at the newest sample's TSC.
	d.buf = d.buf[:0]
	for i := 0; i < n; i++ {
		d.buf = append(d.buf, d.hist[i].DTP-ratio*(d.hist[i].TSC-s.TSC))
	}
	anchor := median(d.buf)

	// Robust residual deviation about the fit.
	d.buf = d.buf[:0]
	for i := 0; i < n; i++ {
		pred := anchor + ratio*(d.hist[i].TSC-s.TSC)
		d.buf = append(d.buf, math.Abs(d.hist[i].DTP-pred))
	}
	residMAD := median(d.buf)

	d.m.Valid = true
	d.m.Ratio = ratio
	d.m.DTP = anchor
	d.m.TSC = s.TSC
	d.m.ErrUnits = s.LatchErrPs*ratio + tsErrMult*tsMADToSigma*residMAD
	if n < tsLockSamples {
		d.m.SlackPPM = tsColdSlackPPM
	} else {
		slackPPM := tsSlackMult * tsMADToSigma * slopeMAD / ratio * 1e6
		d.m.SlackPPM = math.Max(tsFloorSlackPPM, math.Min(tsColdSlackPPM, slackPPM))
	}
	return d.m
}

// madAbout returns the median absolute deviation of d.buf about c,
// consuming d.buf as scratch.
func (d *theilSen) madAbout(c float64) float64 {
	for i, v := range d.buf {
		d.buf[i] = math.Abs(v - c)
	}
	return median(d.buf)
}

func (d *theilSen) Model() Model { return d.m }

func (d *theilSen) Reset() {
	d.hist = d.hist[:0]
	d.m = Model{Ratio: d.nominal, SlackPPM: tsColdSlackPPM}
}

func (d *theilSen) Dropped() uint64 { return d.drops }
