package timesvc

import (
	"errors"
	"math"
	"time"

	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/swclock"
)

// Timebase is the raw monotonic clock readers interpolate from —
// the host's TSC in simulation, the wall monotonic clock in the load
// generator. Readings are picoseconds in an arbitrary but fixed origin;
// the Snapshot's AnchorRaw lives in the same domain.
type Timebase interface {
	// Raw returns the current raw reading in picoseconds.
	Raw() int64
}

// TSCTimebase reads a simulated host's TSC software clock. It is only
// usable on the simulation goroutine (the clock extrapolates from the
// scheduler's current instant).
type TSCTimebase struct{ C *swclock.Clock }

// Raw returns the TSC reading in picoseconds.
func (t TSCTimebase) Raw() int64 { return int64(t.C.Now()) }

// WallTimebase reads the host's monotonic clock, offset by Base. It is
// safe for concurrent use from any goroutine: time.Since uses the
// monotonic reading captured in Start and never takes a lock.
type WallTimebase struct {
	// Start anchors the timebase; readings are Base + elapsed since it.
	Start time.Time
	// Base shifts the origin, e.g. to continue a simulation's raw
	// domain at wall rate after the simulated part ends.
	Base int64
}

// NewWallTimebase returns a wall timebase starting at base now.
func NewWallTimebase(base int64) WallTimebase {
	return WallTimebase{Start: time.Now(), Base: base}
}

// Raw returns base + wall picoseconds elapsed since Start.
func (t WallTimebase) Raw() int64 {
	return t.Base + time.Since(t.Start).Nanoseconds()*1000
}

// Interval is a TrueTime-style uncertainty interval: the service
// guarantees true UTC lies within [Earliest, Latest] (both ps) as long
// as the underlying audit bound holds.
type Interval struct {
	EarliestPs float64
	LatestPs   float64
}

// WidthPs returns the full interval width.
func (iv Interval) WidthPs() float64 { return iv.LatestPs - iv.EarliestPs }

// HalfWidthPs returns ε, the uncertainty half-width.
func (iv Interval) HalfWidthPs() float64 { return (iv.LatestPs - iv.EarliestPs) / 2 }

// Contains reports whether the instant t (ps) lies inside the interval.
func (iv Interval) Contains(t float64) bool {
	return iv.EarliestPs <= t && t <= iv.LatestPs
}

// Read-path errors. Both are preallocated: the fast path must not
// allocate even when failing.
var (
	// ErrNoSnapshot means nothing has been published yet (the service
	// has not completed its first calibration).
	ErrNoSnapshot = errors.New("timesvc: no snapshot published yet")
	// ErrStale means the current snapshot is older than its MaxAgePs:
	// the service stopped calibrating (degraded daemon, lost audit
	// bound) and the clock fails closed rather than serve an interval
	// whose error bound nobody stands behind.
	ErrStale = errors.New("timesvc: snapshot is stale")
)

// Clock is the reader half of the time service: a snapshot Store plus
// the raw timebase snapshots are anchored in. All methods are lock-free
// and allocation-free; with a concurrency-safe Timebase (WallTimebase)
// a Clock may be shared by any number of goroutines.
type Clock struct {
	store *Store
	tb    Timebase
}

// NewClock wraps a store and a timebase.
func NewClock(store *Store, tb Timebase) *Clock {
	return &Clock{store: store, tb: tb}
}

// Store returns the underlying snapshot store.
func (c *Clock) Store() *Store { return c.store }

// At evaluates the current snapshot at the raw timebase reading r:
// the UTC estimate and its uncertainty interval. Exposed separately
// from Now/NowInterval so callers who already hold a raw reading (load
// generators checking the invariant against ground truth derived from
// the very same reading) can evaluate both from one instant.
func (c *Clock) At(raw int64) (utcPs float64, iv Interval, err error) {
	sn, ok := c.store.Read()
	if !ok {
		return 0, Interval{}, ErrNoSnapshot
	}
	age := raw - sn.AnchorRaw
	if sn.MaxAgePs > 0 && age > sn.MaxAgePs {
		return 0, Interval{}, ErrStale
	}
	utcPs = sn.AnchorUTC + float64(age)*sn.Ratio
	eps := sn.BoundPs + sn.DriftPPM*1e-6*math.Abs(float64(age))
	return utcPs, Interval{EarliestPs: utcPs - eps, LatestPs: utcPs + eps}, nil
}

// Now returns the current UTC estimate in picoseconds.
func (c *Clock) Now() (float64, error) {
	utc, _, err := c.At(c.tb.Raw())
	return utc, err
}

// NowInterval returns the TrueTime-style uncertainty interval at the
// current instant.
func (c *Clock) NowInterval() (Interval, error) {
	_, iv, err := c.At(c.tb.Raw())
	return iv, err
}

// After reports whether true UTC is certainly after t (ps): even the
// interval's earliest edge has passed it.
func (c *Clock) After(t float64) (bool, error) {
	iv, err := c.NowInterval()
	if err != nil {
		return false, err
	}
	return iv.EarliestPs > t, nil
}

// Before reports whether true UTC is certainly before t (ps): even the
// interval's latest edge has not reached it.
func (c *Clock) Before(t float64) (bool, error) {
	iv, err := c.NowInterval()
	if err != nil {
		return false, err
	}
	return iv.LatestPs < t, nil
}

// WaitUntil returns how long the caller must wait until true UTC is
// certainly past t (ps) — the TrueTime commit-wait primitive: a
// transaction stamped t may acknowledge only after WaitUntil(t)
// elapses. Returns 0 when the interval is already entirely past t.
// The estimate converts the UTC shortfall back to timebase units
// through the snapshot ratio; the half-width growth during the wait
// itself is second-order (DriftPPM × wait) and deliberately ignored —
// callers polling After(t) after the wait get the exact answer.
func (c *Clock) WaitUntil(t float64) (time.Duration, error) {
	sn, ok := c.store.Read()
	if !ok {
		return 0, ErrNoSnapshot
	}
	raw := c.tb.Raw()
	age := raw - sn.AnchorRaw
	if sn.MaxAgePs > 0 && age > sn.MaxAgePs {
		return 0, ErrStale
	}
	utc := sn.AnchorUTC + float64(age)*sn.Ratio
	eps := sn.BoundPs + sn.DriftPPM*1e-6*math.Abs(float64(age))
	earliest := utc - eps
	if earliest > t {
		return 0, nil
	}
	ratio := sn.Ratio
	if ratio <= 0 {
		ratio = 1
	}
	waitNs := (t - earliest) / ratio / 1000
	return time.Duration(waitNs), nil
}

// SimTime converts a simulated instant to the picosecond scale used by
// UTC values in this package (simulated time zero = UTC zero; the
// simulation's TrueUTC source broadcasts exactly this).
func SimTime(t sim.Time) float64 { return float64(t) }
