package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/dtplab/dtp/internal/sim"
)

// TraceSchema is the header line's schema identifier for JSONL trace
// dumps.
const TraceSchema = "dtp-trace/1"

// TraceHeader is the first line of a JSONL trace dump. Dropped is the
// ring-overflow count — without it a reader has no way to tell a quiet
// run from one whose history was mostly evicted.
type TraceHeader struct {
	Schema  string `json:"schema"`
	Events  int    `json:"events"`
	Total   uint64 `json:"total"`
	Dropped uint64 `json:"dropped"`
}

// WriteTraceHeader writes the header line. Field order is fixed for
// byte-determinism.
func WriteTraceHeader(w io.Writer, events int, total, dropped uint64) error {
	var b strings.Builder
	b.WriteString(`{"schema":"`)
	b.WriteString(TraceSchema)
	b.WriteString(`","events":`)
	b.WriteString(strconv.Itoa(events))
	b.WriteString(`,"total":`)
	b.WriteString(strconv.FormatUint(total, 10))
	b.WriteString(`,"dropped":`)
	b.WriteString(strconv.FormatUint(dropped, 10))
	b.WriteString("}\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return fmt.Errorf("telemetry: trace header: %w", err)
	}
	return nil
}

// WriteJSONL dumps the tracer's retained events as JSON Lines: one
// header line (schema, event count, drop accounting), then one event
// per line, oldest first. The event schema is flat and stable:
//
//	{"seq":17,"t_ps":1280640,"kind":"beacon_rx","who":"s1[2]","v1":-1,"v2":0}
//
// "detail" appears only when non-empty. Field order is fixed, so two
// identical traces serialize to identical bytes.
func WriteJSONL(w io.Writer, t *Tracer) error {
	if t == nil {
		return nil
	}
	// Events/Total/Dropped each lock separately, so a concurrent Record
	// could skew them; take the event slice first and derive the header
	// from one Total read (dropped = total - len).
	events := t.Events()
	total := t.Total()
	if err := WriteTraceHeader(w, len(events), total, total-uint64(len(events))); err != nil {
		return err
	}
	return WriteEvents(w, events)
}

// WriteEvents serializes an event slice in the WriteJSONL schema. It is
// the shared backend of the full dump and the filtered /trace endpoint.
func WriteEvents(w io.Writer, events []Event) error {
	var b strings.Builder
	for _, e := range events {
		b.Reset()
		b.WriteString(`{"seq":`)
		b.WriteString(strconv.FormatUint(e.Seq, 10))
		b.WriteString(`,"t_ps":`)
		b.WriteString(strconv.FormatInt(int64(e.At), 10))
		b.WriteString(`,"kind":"`)
		b.WriteString(e.Kind.String())
		b.WriteString(`","who":`)
		b.WriteString(strconv.Quote(e.Who))
		b.WriteString(`,"v1":`)
		b.WriteString(strconv.FormatInt(e.V1, 10))
		b.WriteString(`,"v2":`)
		b.WriteString(strconv.FormatInt(e.V2, 10))
		if e.Detail != "" {
			b.WriteString(`,"detail":`)
			b.WriteString(strconv.Quote(e.Detail))
		}
		b.WriteString("}\n")
		if _, err := io.WriteString(w, b.String()); err != nil {
			return fmt.Errorf("telemetry: trace dump: %w", err)
		}
	}
	return nil
}

// jsonlEvent mirrors the WriteJSONL schema for decoding.
type jsonlEvent struct {
	Seq    uint64 `json:"seq"`
	TPs    int64  `json:"t_ps"`
	Kind   string `json:"kind"`
	Who    string `json:"who"`
	V1     int64  `json:"v1"`
	V2     int64  `json:"v2"`
	Detail string `json:"detail"`
}

// ReadJSONL parses a JSONL trace dump (the output of WriteJSONL or the
// /trace endpoint) back into events. The events are returned along with
// the header when one is present (nil header for headerless dumps from
// older exports). Blank lines are skipped; a line that is not valid
// JSON or names an unknown kind is an error, so a truncated or foreign
// file fails loudly rather than analyzing garbage.
func ReadJSONL(r io.Reader) ([]Event, error) {
	events, _, err := ReadJSONLHeader(r)
	return events, err
}

// ReadJSONLHeader is ReadJSONL plus the parsed header line, when the
// dump has one.
func ReadJSONLHeader(r io.Reader) ([]Event, *TraceHeader, error) {
	var out []Event
	var hdr *TraceHeader
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if line == 1 && strings.Contains(text, `"schema"`) {
			var h TraceHeader
			if err := json.Unmarshal([]byte(text), &h); err != nil {
				return nil, nil, fmt.Errorf("telemetry: trace header: %w", err)
			}
			if h.Schema != TraceSchema {
				return nil, nil, fmt.Errorf("telemetry: trace header: unknown schema %q", h.Schema)
			}
			hdr = &h
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal([]byte(text), &je); err != nil {
			return nil, nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		k, ok := KindFromString(je.Kind)
		if !ok {
			return nil, nil, fmt.Errorf("telemetry: trace line %d: unknown kind %q", line, je.Kind)
		}
		out = append(out, Event{
			Seq: je.Seq, At: sim.Time(je.TPs), Kind: k,
			Who: je.Who, V1: je.V1, V2: je.V2, Detail: je.Detail,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("telemetry: trace read: %w", err)
	}
	return out, hdr, nil
}
