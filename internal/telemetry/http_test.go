package telemetry

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/dtplab/dtp/internal/sim"
)

func get(t *testing.T, r *Registry, tr *Tracer, path string) (int, string, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	Handler(r, tr).ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, rec.Header().Get("Content-Type"), string(body)
}

func tracerWith(events ...Event) *Tracer {
	tr := NewTracer(64)
	tr.SetKinds()
	for _, e := range events {
		tr.Record(e.At, e.Kind, e.Who, e.V1, e.V2, e.Detail)
	}
	return tr
}

func TestHandlerMetricsRoute(t *testing.T) {
	r := New()
	r.Counter("dtp_test_total", "help").Inc()
	code, ct, body := get(t, r, nil, "/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(body, "dtp_test_total 1") {
		t.Fatalf("body missing sample:\n%s", body)
	}
}

func TestHandlerTraceRoute(t *testing.T) {
	tr := tracerWith(
		Event{At: 1, Kind: KindSynced, Who: "a[0]", V1: 44},
		Event{At: 2, Kind: KindCounterJump, Who: "b[0]", V1: 3},
		Event{At: 3, Kind: KindCounterJump, Who: "c[0]", V1: 2},
	)
	code, ct, body := get(t, nil, tr, "/trace")
	if code != 200 || ct != "application/x-ndjson" {
		t.Fatalf("status %d content type %q", code, ct)
	}
	if n := strings.Count(body, "\n"); n != 4 {
		t.Fatalf("%d lines, want header + 3 events:\n%s", n, body)
	}
	if !strings.HasPrefix(body, `{"schema":"dtp-trace/1","events":3,"total":3,"dropped":0}`) {
		t.Fatalf("missing trace header:\n%s", body)
	}
}

func TestHandlerTraceKindFilter(t *testing.T) {
	tr := tracerWith(
		Event{At: 1, Kind: KindSynced, Who: "a[0]", V1: 44},
		Event{At: 2, Kind: KindCounterJump, Who: "b[0]", V1: 3},
		Event{At: 3, Kind: KindBoundViolation, Who: "a~b", V1: 99, V2: 10},
	)
	code, _, body := get(t, nil, tr, "/trace?kind=counter_jump,bound_violation")
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	if strings.Contains(body, `"synced"`) {
		t.Fatalf("filter leaked synced events:\n%s", body)
	}
	if !strings.Contains(body, `"counter_jump"`) || !strings.Contains(body, `"bound_violation"`) {
		t.Fatalf("filtered kinds missing:\n%s", body)
	}

	code, _, body = get(t, nil, tr, "/trace?kind=not_a_kind")
	if code != 400 || !strings.Contains(body, "unknown trace kind") {
		t.Fatalf("bad kind: status %d body %q", code, body)
	}
}

func TestHandlerTraceLimit(t *testing.T) {
	tr := NewTracer(64)
	tr.SetKinds()
	for i := 0; i < 10; i++ {
		tr.Record(sim.Time(i), KindCounterJump, "p[0]", int64(i), 0, "")
	}
	code, _, body := get(t, nil, tr, "/trace?limit=2")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want header + 2 events:\n%s", len(lines), body)
	}
	// Limit keeps the most recent events.
	if !strings.Contains(lines[2], `"v1":9`) {
		t.Fatalf("limit did not keep the tail:\n%s", body)
	}

	for _, bad := range []string{"/trace?limit=0", "/trace?limit=-3", "/trace?limit=x"} {
		if code, _, _ := get(t, nil, tr, bad); code != 400 {
			t.Fatalf("%s: status %d, want 400", bad, code)
		}
	}
}

func TestHandlerNilBackends(t *testing.T) {
	if code, _, body := get(t, nil, nil, "/metrics"); code != 200 || body != "" {
		t.Fatalf("nil registry: status %d body %q", code, body)
	}
	zeroHdr := `{"schema":"dtp-trace/1","events":0,"total":0,"dropped":0}` + "\n"
	if code, _, body := get(t, nil, nil, "/trace"); code != 200 || body != zeroHdr {
		t.Fatalf("nil tracer: status %d body %q", code, body)
	}
	if code, _, body := get(t, nil, nil, "/trace?kind=synced&limit=5"); code != 200 || body != zeroHdr {
		t.Fatalf("nil tracer with filters: status %d body %q", code, body)
	}
}

func TestHandlerRootAndNotFound(t *testing.T) {
	if code, _, body := get(t, nil, nil, "/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("root help: status %d body %q", code, body)
	}
	if code, _, _ := get(t, nil, nil, "/nope"); code != 404 {
		t.Fatalf("unknown path: status %d, want 404", code)
	}
}

func TestKindFromString(t *testing.T) {
	for k := Kind(0); int(k) < len(kindNames); k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Fatalf("round trip failed for %v", k)
		}
	}
	if _, ok := KindFromString("nonsense"); ok {
		t.Fatal("accepted unknown kind")
	}
}
