// Command dtpd demonstrates the software story of §5: DTP daemons on
// every host reading NIC counters over PCIe, plus external (UTC)
// synchronization where one host broadcasts (counter, UTC) pairs and
// every other host serves UTC by interpolation.
//
// All measurement flows through the internal/telemetry Registry; with
// -listen the live metrics and the protocol event trace are served over
// HTTP for the life of the process:
//
//	dtpd -duration 2s -cal 10ms -listen :9090 &
//	curl localhost:9090/metrics   # Prometheus text exposition
//	curl localhost:9090/trace     # JSONL protocol events
//
// Daemons attach to every host node of the -topo graph (default: the
// paper's tree, eight hosts s4–s11); -metrics-out and -trace-out dump
// the registry and the protocol trace to files at exit.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"time"

	"github.com/dtplab/dtp/internal/audit"
	"github.com/dtplab/dtp/internal/cliutil"
	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/daemon"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
	"github.com/dtplab/dtp/internal/timesvc"
)

var (
	// -topo -seed -duration -metrics-out -trace-out
	shared = cliutil.Flags{Topo: "tree", Duration: 2 * time.Second}

	calFlag    = flag.Duration("cal", 10*time.Millisecond, "daemon calibration interval")
	listenFlag = flag.String("listen", "", "serve /metrics and /trace on this address (e.g. :9090) and keep running")
	traceFlag  = flag.Int("trace-cap", 16384, "protocol trace ring capacity (events)")
	pprofFlag  = flag.Bool("pprof", false, "with -listen, also expose /debug/pprof/* and /debug/vars")

	serveTimeFlag = flag.Bool("serve-time", false,
		"attach the internal/timesvc serving plane: TrueTime-style interval clocks on every host, served at /time/<host>/now with -listen")
	loadQPSFlag = flag.Float64("load-qps", 0,
		"with -serve-time, drive Poisson read load at this mean rate per host from inside the simulation")
	timelineEvery = flag.Duration("timeline-every", time.Millisecond,
		"windowed-timeline sampling cadence (simulated time); served at /timeline with -listen")
)

func main() {
	shared.Register(flag.CommandLine,
		cliutil.FlagTopo|cliutil.FlagSeed|cliutil.FlagDuration|
			cliutil.FlagMetricsOut|cliutil.FlagTraceOut|cliutil.FlagHardened|
			cliutil.FlagDiscipline)
	flag.Parse()
	if err := shared.Validate(); err != nil {
		cliutil.Fatal("dtpd", 2, err)
	}
	disc, err := shared.ParseDiscipline()
	if err != nil {
		cliutil.Fatal("dtpd", 2, err)
	}
	g, err := shared.Topology()
	if err != nil {
		cliutil.Fatal("dtpd", 2, err)
	}
	// Daemons attach to host NICs; a topology without hosts (e.g. a pure
	// switch chain) still syncs but has nothing to demonstrate here.
	var hosts []string
	for _, id := range g.HostIDs() {
		hosts = append(hosts, g.Nodes[id].Name)
	}
	if len(hosts) == 0 {
		cliutil.Fatal("dtpd", 2, fmt.Errorf("topology %q has no host nodes to run daemons on", shared.Topo))
	}

	reg := telemetry.New()
	tracer := telemetry.NewTracer(*traceFlag)
	tracer.SetKinds() // demo binary: include per-beacon firehose kinds in /trace

	// Bind the listener before simulating so a bad -listen fails fast.
	// The mux outlives this block: -serve-time registers /time/<host>/
	// handlers after the simulation finishes (ServeMux is safe for
	// concurrent Handle/ServeHTTP).
	var ln net.Listener
	var mux *http.ServeMux
	if *listenFlag != "" {
		ln, err = net.Listen("tcp", *listenFlag)
		if err != nil {
			cliutil.Fatal("dtpd", 1, err)
		}
		mux = http.NewServeMux()
		mux.Handle("/", telemetry.Handler(reg, tracer))
		if *pprofFlag {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			mux.Handle("/debug/vars", expvar.Handler())
		}
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				fmt.Fprintln(os.Stderr, "dtpd: http:", err)
			}
		}()
		fmt.Printf("dtpd: serving telemetry on http://%s/metrics and /trace\n", ln.Addr())
		if *pprofFlag {
			fmt.Printf("dtpd: runtime profiling on http://%s/debug/pprof/ and /debug/vars\n", ln.Addr())
		}
	}

	sch := sim.NewScheduler()
	// A long-lived daemon may report wall-clock throughput: these metrics
	// are intentionally nondeterministic and never appear in dtpsim dumps.
	telemetry.InstrumentScheduler(reg, sch, telemetry.SchedOptions{WallRate: true})
	cfg := core.DefaultConfig()
	cfg.Hardened = shared.Hardened
	n, err := core.NewNetwork(sch, shared.Seed, g, cfg)
	if err != nil {
		cliutil.Fatal("dtpd", 1, err)
	}
	n.Instrument(reg, tracer)
	n.Start()
	sch.Run(10 * sim.Millisecond)
	if !n.AllSynced() {
		cliutil.Fatal("dtpd", 1, fmt.Errorf("network failed to synchronize"))
	}

	dcfg := daemon.DefaultConfig()
	dcfg.CalInterval = sim.FromStd(*calFlag)
	daemons := map[string]*daemon.Daemon{}
	for i, h := range hosts {
		dev, err := n.DeviceByName(h)
		if err != nil {
			cliutil.Fatal("dtpd", 1, err)
		}
		d, err := daemon.Attach(dev, daemon.Options{Config: dcfg, Discipline: disc},
			shared.Seed+uint64(i)+100)
		if err != nil {
			cliutil.Fatal("dtpd", 1, err)
		}
		d.Instrument(reg, tracer)
		d.Start()
		daemons[h] = d
	}

	// External synchronization: the first host's daemon broadcasts UTC
	// (from a perfect source standing in for GPS/PTP at the timeserver).
	b := daemon.NewUTCBroadcaster(daemons[hosts[0]], daemon.TrueUTC{Sch: sch}, 50*sim.Millisecond)
	followers := map[string]*daemon.UTCFollower{}
	for _, h := range hosts[1:] {
		f := daemon.NewUTCFollower(daemons[h])
		b.Subscribe(f)
		followers[h] = f
	}
	b.Start()

	// -serve-time: the serving plane (§5 + TrueTime-style intervals) on
	// every follower host, backed by a live 4TD auditor, optionally with
	// an in-sim Poisson read load per host.
	services := map[string]*timesvc.Service{}
	loads := map[string]*timesvc.Load{}
	// hosts gets sorted for display later; keep the served set stable.
	served := append([]string{}, hosts[1:]...)
	sort.Strings(served)
	if *serveTimeFlag {
		aud := audit.New(n, audit.Config{})
		aud.Instrument(reg, tracer)
		aud.Start()
		for _, h := range served {
			svc := timesvc.NewService(daemons[h], followers[h], aud, timesvc.ServiceConfig{})
			svc.Instrument(reg, tracer)
			svc.Start()
			services[h] = svc
			if *loadQPSFlag > 0 {
				ld := timesvc.NewLoad(svc, sim.NewRNG(shared.Seed, "timesvc-load/"+h),
					timesvc.LoadConfig{QPS: *loadQPSFlag})
				ld.Instrument(reg)
				ld.Start()
				loads[h] = ld
			}
		}
	}

	// Windowed timeline: the black-box view of the run, sampled on the
	// simulation clock — per-host daemon offsets, trace-ring drop
	// accounting, and (with -serve-time) each served interval's
	// interpolated half-width. Served at /timeline as JSONL.
	tl := telemetry.NewTimeline(sim.FromStd(*timelineEvery), 0)
	tl.Gauge("trace_dropped", func() float64 { return float64(tracer.Dropped()) })
	for _, h := range hosts {
		d := daemons[h]
		tl.Gauge("daemon_offset_ticks_"+h, func() float64 { return d.OffsetUnits() })
	}
	for _, h := range served {
		svc, ok := services[h]
		if !ok {
			continue
		}
		c := svc.Clock()
		tl.Gauge("eps_ps_"+h, func() float64 {
			iv, err := c.NowInterval()
			if err != nil {
				return math.NaN()
			}
			return iv.HalfWidthPs()
		})
	}
	tl.Start(sch)
	if mux != nil {
		mux.Handle("/timeline", tl)
		mux.Handle("/healthz", timesvc.HealthHandler(services))
		fmt.Printf("dtpd: timeline on http://%s/timeline, serving-plane health on /healthz\n", ln.Addr())
	}

	sch.RunFor(sim.FromStd(shared.Duration))

	fmt.Printf("== DTP daemon offsets (estimate - hardware counter), ticks — discipline %q\n",
		daemons[hosts[0]].Discipline())
	fmt.Printf("%-5s %8s %8s %8s %8s\n", "host", "samples", "min", "max", "p99|.|")
	sort.Strings(hosts)
	for _, h := range hosts {
		hist := daemons[h].OffsetHistogram()
		fmt.Printf("%-5s %8d %8.1f %8.1f %8.1f\n",
			h, hist.Count(), hist.Min(), hist.Max(), hist.QuantileAbs(0.99))
	}

	if len(followers) > 0 {
		fmt.Println("\n== UTC via external synchronization (§5.2), error vs true time")
		utc := reg.Histogram("dtp_utc_error_ns",
			"UTC-follower error versus true time, in nanoseconds (§5.2).",
			telemetry.LinearBuckets(-200, 20, 21))
		for i := 0; i < 200; i++ {
			sch.RunFor(sim.Millisecond)
			for _, f := range followers {
				utc.Observe(f.UTCErrorPs() / 1000)
			}
		}
		fmt.Printf("followers: %d, |error| max %.0f ns, p99 %.0f ns\n",
			len(followers), math.Max(math.Abs(utc.Min()), math.Abs(utc.Max())),
			utc.QuantileAbs(0.99))
	}

	// Cross-host comparison: the end-to-end software precision claim
	// (4TD + 8T).
	worst := reg.Gauge("dtp_daemon_pairwise_worst_ticks",
		"Worst daemon-vs-daemon estimate difference observed, in ticks.")
	for i := 0; i < 200; i++ {
		sch.RunFor(sim.Millisecond)
		for _, a := range hosts {
			for _, b := range hosts {
				if a >= b {
					continue
				}
				e := daemons[a].OffsetUnits() - daemons[b].OffsetUnits()
				worst.SetMax(math.Abs(e))
			}
		}
	}
	fmt.Printf("\n== End-to-end software precision: worst daemon-vs-daemon error %.1f ticks (= %.1f ns; paper bound 4TD+8T)\n",
		worst.Value(), worst.Value()*6.4)

	if *serveTimeFlag {
		fmt.Println("\n== Time service (internal/timesvc): TrueTime-style intervals per host")
		fmt.Printf("%-5s %9s %8s %12s %10s %8s\n", "host", "publishes", "degraded", "width(ns)", "reads", "errors")
		for _, h := range served {
			svc := services[h]
			w, covered, rerr := svc.ReadCheck()
			width := fmt.Sprintf("%.1f", w/1000)
			if rerr != nil {
				width = "stale"
			} else if !covered {
				width += "!"
			}
			var reads, rerrs uint64
			if ld := loads[h]; ld != nil {
				reads, rerrs = ld.Reads(), ld.Errors()
			}
			fmt.Printf("%-5s %9d %8d %12s %10d %8d\n",
				h, svc.Publishes(), svc.DegradedTicks(), width, reads, rerrs)
		}

		// ε-budget attribution: which error source pays for each served
		// interval's width (same split as /healthz and the
		// dtp_timesvc_eps_* metrics).
		fmt.Println("\n== ε-budget attribution per host (share of cumulative served width)")
		fmt.Printf("%-5s %12s %8s %8s %8s %8s  %s\n",
			"host", "eps(ns)", "audit", "daemon", "bcast", "resid", "dominant")
		for _, h := range served {
			a := services[h].Attribution()
			fmt.Printf("%-5s %12.1f", h, a.TotalLastPs/1000)
			for _, c := range a.Components {
				fmt.Printf(" %7.1f%%", c.Share*100)
			}
			fmt.Printf("  %s\n", a.Dominant)
		}

		// With -listen, keep serving /time/<host>/now past the simulated
		// run: the final snapshot is re-anchored on the host's wall clock
		// (ratio 1, generous drift, no age cutoff) so intervals keep
		// advancing — and honestly widening — with no live calibration
		// behind them.
		if mux != nil {
			for _, h := range served {
				svc := services[h]
				sn, ok := svc.Store().Read()
				if !ok {
					continue
				}
				utc, iv, rerr := svc.Clock().At(int64(daemons[h].TSC().Now()))
				if rerr != nil {
					continue
				}
				wallStore := &timesvc.Store{}
				wallTb := timesvc.NewWallTimebase(0)
				wallStore.Publish(timesvc.Snapshot{
					Epoch:     sn.Epoch + 1,
					AnchorRaw: wallTb.Raw(),
					AnchorUTC: utc,
					Ratio:     1,
					BoundPs:   iv.HalfWidthPs(),
					DriftPPM:  50, // undisciplined wall clock
					MaxAgePs:  0,  // serve indefinitely, ever wider
				})
				mux.Handle("/time/"+h+"/", http.StripPrefix("/time/"+h,
					timesvc.Handler(h, timesvc.NewClock(wallStore, wallTb))))
			}
			fmt.Printf("time service continues on http://%s/time/<host>/now (wall-extrapolated)\n", ln.Addr())
		}
	}

	if shared.MetricsOut != "" {
		if err := cliutil.WriteFile(shared.MetricsOut, func(w io.Writer) error {
			return telemetry.WritePrometheus(w, reg)
		}); err != nil {
			cliutil.Fatal("dtpd", 1, err)
		}
		fmt.Printf("metrics written to %s\n", shared.MetricsOut)
	}
	if shared.TraceOut != "" {
		if err := cliutil.WriteFile(shared.TraceOut, func(w io.Writer) error {
			return telemetry.WriteJSONL(w, tracer)
		}); err != nil {
			cliutil.Fatal("dtpd", 1, err)
		}
		fmt.Printf("trace written to %s\n", shared.TraceOut)
	}

	if ln != nil {
		fmt.Printf("\ndtpd: simulation finished; telemetry stays up on http://%s (Ctrl-C to exit)\n", ln.Addr())
		select {}
	}
}
