# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test test-short test-race bench bench-save bench-engine experiments examples audit chaos campaign byzantine disciplines serve-bench flight attr-bench

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Skips the heaviest PTP packet-level load experiments.
test-short:
	go test -short ./...

# The telemetry registry and tracer are scraped concurrently with the
# simulation; the race detector proves that sound.
test-race:
	go test -race -short ./...

# One iteration of every paper table/figure benchmark with its metrics.
bench:
	go test -bench . -benchtime 1x -benchmem -run '^$$' .

# Engine throughput gate: refresh BENCH_8.json (events/sec on
# fattree:8, calendar vs heap-reference vs recorded seed baseline) and
# fail if throughput regressed more than 15% below the committed
# record, or fell under 5x the seed. Both gates arm only on hosts with
# >= 8 CPUs (the BENCH_5/BENCH_6 policy); smaller hosts still refresh
# the record. The baseline is read before the record is rewritten.
bench-engine:
	BENCH8_OUT=$$(pwd)/BENCH_8.json BENCH8_BASELINE=$$(pwd)/BENCH_8.json \
		go test -bench 'BenchmarkEngineFattree8|BenchmarkCampaignJobsScaling' -benchtime 1x -run '^$$' .

# Snapshot benchmark output to a dated file for benchstat against
# future PRs, refresh BENCH_5.json with the campaign runner's
# parallel-vs-serial numbers, and refresh BENCH_8.json in full (the
# fattree:16 capacity run and the campaign -jobs scaling sweep ride
# along under BENCH8_FULL=1) with the regression gate armed.
bench-save:
	mkdir -p bench
	go test -bench . -benchtime 1x -benchmem -run '^$$' . | tee bench/$$(date +%Y%m%d)-$$(git rev-parse --short HEAD).txt
	CAMPAIGN_BENCH_OUT=$$(pwd)/BENCH_5.json go test -bench BenchmarkCampaign$$ -benchtime 1x -run '^$$' ./internal/campaign
	BENCH8_FULL=1 BENCH8_OUT=$$(pwd)/BENCH_8.json BENCH8_BASELINE=$$(pwd)/BENCH_8.json \
		go test -bench 'BenchmarkEngineFattree8|BenchmarkCampaignJobsScaling' -benchtime 1x -timeout 30m -run '^$$' .

# Run the online 4TD-bound auditor over the quickstart topology under
# MTU load; dtpsim exits nonzero on any bound violation.
audit:
	go run ./cmd/dtpsim -topo pair -duration 500ms -load mtu -audit
	go run ./cmd/dtpsim -topo tree -duration 200ms -audit

# Multi-seed chaos soak: the fault-injection engine's own tests under
# the race detector, then the canned storm campaign (flap storm + BER
# burst + crash/restart on a 6-device chain) on seeds 1-3 through the
# campaign runner. Every run must show zero bound violations outside
# the declared fault windows and reconverge within the scenario
# deadline, or dtpsim exits 1.
chaos:
	go test -race -count=1 ./internal/chaos
	go run ./cmd/dtpsim -topo chain:5 -chaos examples/chaos/storm.json -duration 5ms -seed 1 -sweep-seeds 3 -jobs 4

# Campaign runner: determinism tests under the race detector, then a
# small mixed grid across 4 workers and the example grid file.
campaign:
	go test -race -count=1 ./internal/campaign ./internal/par ./internal/cliutil
	go run ./cmd/dtpsim -topo chain:3 -duration 5ms -sweep-seeds 4 -jobs 4 > /dev/null
	go run ./cmd/dtpsim -campaign examples/campaign/smoke.json -jobs 4 > /dev/null

# Byzantine tolerance: hardened-mode admission/quarantine tests and the
# break-even campaign grid under the race detector, then the paired
# liar demo — plain mode must fail the verdict (exit 1), hardened mode
# must pass it with zero unexcused violations (exit 0).
byzantine:
	go test -race -count=1 -run 'Harden|Admit|Quarantine|Liar|Byzantine' ./internal/core ./internal/chaos ./internal/campaign
	! go run ./cmd/dtpsim -topo tree -chaos examples/chaos/liar.json -duration 160ms > /dev/null
	go run ./cmd/dtpsim -topo tree -chaos examples/chaos/liar.json -duration 160ms -hardened > /dev/null

# Clock-discipline lab: the estimator and daemon tests under the race
# detector (golden convergence, restart-reset regression, campaign
# discipline-axis determinism), then the dtpexp comparison table — all
# four estimators under clean / pcie-jitter / osc-wander noise.
disciplines:
	go test -race -count=1 ./internal/discipline ./internal/daemon
	go test -race -count=1 -run 'Discipline' ./internal/campaign ./internal/cliutil .
	go run ./cmd/dtpexp -sweep disciplines -duration 1500ms

# Time-service fast path: the seqlock/clock tests under the race
# detector, then cmd/dtpload calibrates a serving plane in-sim and
# hammers the lock-free read path from every core, refreshing
# BENCH_6.json. The 1M reads/sec floor is only asserted on hosts with
# >= 8 CPUs (the BENCH_5 policy), so laptops and small CI runners
# still produce records without failing.
serve-bench:
	go test -race -count=1 ./internal/timesvc
	go run ./cmd/dtpload -duration 300ms -hammer 2s -assert -out BENCH_6.json

# Attribution instrumentation cost: A/B hammer (bare vs striped width
# histogram on the hot path) refreshing BENCH_7.json. The <5% overhead
# budget is asserted only on hosts with >= 8 CPUs, like the qps floor.
attr-bench:
	go run ./cmd/dtpload -duration 300ms -hammer 2s -attr-bench -assert -out BENCH_7.json

# Flight-recorder smoke: the telemetry tests under the race detector,
# then a chaos run that silences one peer (grey_loss p=1) so the beacon
# watchdog demotes the port and trips a bundle, which dtptrace -bundle
# must validate and summarize. Fails if no bundle appears.
flight:
	go test -race -count=1 ./internal/telemetry
	rm -rf flight-smoke
	go run ./cmd/dtpsim -topo pair -duration 200ms -time-service \
		-chaos examples/chaos/breaker.json -flight-dir flight-smoke \
		-timeline-out flight-smoke/timeline.jsonl
	test -f flight-smoke/flight-1-00-port_demoted.json
	go run ./cmd/dtptrace -bundle flight-smoke/flight-1-00-port_demoted.json -topo pair
	rm -rf flight-smoke

# Regenerate every table and figure (long; see EXPERIMENTS.md).
experiments:
	go run ./cmd/dtpexp -all

examples:
	go run ./examples/quickstart
	go run ./examples/partition
	go run ./examples/owd
	go run ./examples/mixedspeed
	go run ./examples/fattree
	go run ./examples/truetime
