package phy

import (
	"testing"
	"testing/quick"
)

func TestMessageRoundTripNoParity(t *testing.T) {
	c := Codec{}
	for _, typ := range []MsgType{MsgInit, MsgInitAck, MsgBeacon, MsgBeaconJoin, MsgBeaconMSB} {
		for _, payload := range []uint64{0, 1, 0x1f_ffff_ffff_ffff, 1 << 52} {
			m := Message{Type: typ, Payload: payload}
			got, ok := c.Decode(c.Encode(m))
			if !ok || got != m {
				t.Fatalf("roundtrip %v/%#x: got %v ok=%v", typ, payload, got, ok)
			}
		}
	}
}

func TestMessageRoundTripParity(t *testing.T) {
	c := Codec{Parity: true}
	for _, payload := range []uint64{0, 7, 0xf_ffff_ffff_ffff} {
		m := Message{Type: MsgBeacon, Payload: payload}
		got, ok := c.Decode(c.Encode(m))
		if !ok || got != m {
			t.Fatalf("parity roundtrip %#x: got %v ok=%v", payload, got, ok)
		}
	}
}

func TestMessageNoneEncodesToZero(t *testing.T) {
	c := Codec{}
	if c.Encode(Message{Type: MsgNone}) != 0 {
		t.Fatal("MsgNone must encode to all-zero idle bits")
	}
	if _, ok := c.Decode(0); ok {
		t.Fatal("all-zero bits decoded as a message")
	}
}

func TestMessageUndefinedTypeRejected(t *testing.T) {
	c := Codec{}
	for _, bits := range []uint64{6, 7} { // types 6 and 7 undefined
		if _, ok := c.Decode(bits); ok {
			t.Fatalf("undefined type %d accepted", bits)
		}
	}
}

func TestMessagePayloadOverflowPanics(t *testing.T) {
	c := Codec{}
	defer func() {
		if recover() == nil {
			t.Fatal("54-bit payload did not panic")
		}
	}()
	c.Encode(Message{Type: MsgBeacon, Payload: 1 << 53})
}

func TestParityDetectsLSBErrors(t *testing.T) {
	c := Codec{Parity: true}
	bits := c.Encode(Message{Type: MsgBeacon, Payload: 0x1234})
	// Flip each of the three LSB payload bits (wire bits 3,4,5): parity
	// must catch every single-bit error there.
	for i := 3; i <= 5; i++ {
		if _, ok := c.Decode(bits ^ 1<<i); ok {
			t.Fatalf("flip of wire bit %d not detected", i)
		}
	}
}

func TestParityRoundTripProperty(t *testing.T) {
	c := Codec{Parity: true}
	f := func(payload uint64) bool {
		payload &= c.CounterMask()
		m := Message{Type: MsgBeacon, Payload: payload}
		got, ok := c.Decode(c.Encode(m))
		return ok && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterMask(t *testing.T) {
	if (Codec{}).CounterMask() != 1<<53-1 {
		t.Fatal("plain codec mask")
	}
	if (Codec{Parity: true}).CounterMask() != 1<<52-1 {
		t.Fatal("parity codec mask")
	}
}

func TestEmbedExtractMessage(t *testing.T) {
	c := Codec{}
	m := Message{Type: MsgBeaconJoin, Payload: 0xabcdef}
	b := c.EmbedMessage(m)
	if !b.IsIdle() {
		t.Fatal("embedded message not an idle block")
	}
	clean, got, ok := c.ExtractMessage(b)
	if !ok || got != m {
		t.Fatalf("extract: got %v ok=%v", got, ok)
	}
	// Scrubbing: higher layers must see a pristine idle block (§4.2).
	if clean.ControlBits() != 0 {
		t.Fatalf("scrubbed block still carries bits: %#x", clean.ControlBits())
	}
}

func TestExtractFromNonIdle(t *testing.T) {
	c := Codec{}
	b := DataBlock([8]byte{1, 2, 3})
	clean, _, ok := c.ExtractMessage(b)
	if ok {
		t.Fatal("extracted message from data block")
	}
	if clean != b {
		t.Fatal("data block altered by ExtractMessage")
	}
}

func TestMsgTypeString(t *testing.T) {
	for _, typ := range []MsgType{MsgNone, MsgInit, MsgInitAck, MsgBeacon, MsgBeaconJoin, MsgBeaconMSB, MsgType(9)} {
		if typ.String() == "" {
			t.Fatal("empty MsgType string")
		}
	}
}

func TestMessageSurvivesScrambling(t *testing.T) {
	// End-to-end: embed → scramble → descramble → extract, as on a real
	// link where the payload (including DTP bits) is scrambled.
	c := Codec{Parity: true}
	s := NewScrambler()
	d := NewDescrambler()
	d.Descramble(s.Scramble(0)) // sync
	m := Message{Type: MsgBeacon, Payload: 0x000f_edcb_a987_6543 & c.CounterMask()}
	tx := c.EmbedMessage(m)
	wire := Block{Sync: tx.Sync, Payload: s.Scramble(tx.Payload)}
	rx := Block{Sync: wire.Sync, Payload: d.Descramble(wire.Payload)}
	_, got, ok := c.ExtractMessage(rx)
	if !ok || got != m {
		t.Fatalf("message through scrambler: got %v ok=%v", got, ok)
	}
}
