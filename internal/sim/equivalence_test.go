package sim

import (
	"fmt"
	"testing"
)

// The calendar queue and the heap reference must produce identical
// dispatch orders for any workload: both implement the total order
// (time, seq). The tests below drive both disciplines with mirrored
// randomized workloads — schedules, same-timestamp bursts, cancels,
// re-schedules, nested scheduling from callbacks — across multiple Run
// horizons whose spans force bucket-rotation wraparound, and require
// the (time, id) dispatch logs to match exactly.

type eqRecord struct {
	at Time
	id int
}

// eqWorker drives one scheduler with a deterministic self-similar
// workload: every callback logs itself, then draws from the worker's
// own RNG stream to decide whether to schedule children, burst
// same-time siblings, or cancel a random live handle. Two workers with
// the same seed stay in lockstep exactly as long as their schedulers
// dispatch in the same order — any divergence cascades into the logs.
type eqWorker struct {
	s      *Scheduler
	rng    *RNG
	log    []eqRecord
	live   []Event
	nextID int
	budget int
}

func (w *eqWorker) spawn(at Time, id int) {
	e := w.s.At(at, func() { w.fire(at, id) })
	w.live = append(w.live, e)
}

func (w *eqWorker) fire(at Time, id int) {
	w.log = append(w.log, eqRecord{at: w.s.Now(), id: id})
	if w.budget <= 0 {
		return
	}
	switch w.rng.IntN(5) {
	case 0: // burst: several children at one future instant (FIFO order)
		t := w.s.Now() + w.rng.UniformTime(0, 50*Microsecond)
		n := 2 + w.rng.IntN(3)
		for i := 0; i < n; i++ {
			w.budget--
			w.nextID++
			w.spawn(t, w.nextID)
		}
	case 1: // far child: beyond one bucket rotation (future year)
		w.budget--
		w.nextID++
		w.spawn(w.s.Now()+w.rng.UniformTime(10*Millisecond, 80*Millisecond), w.nextID)
	case 2: // cancel a random live handle, then replace it
		if len(w.live) > 0 {
			i := w.rng.IntN(len(w.live))
			if w.live[i].Cancel() {
				w.budget--
				w.nextID++
				w.spawn(w.s.Now()+w.rng.UniformTime(0, Millisecond), w.nextID)
			}
			w.live = append(w.live[:i], w.live[i+1:]...)
		}
	case 3: // immediate child at the current instant
		w.budget--
		w.nextID++
		w.spawn(w.s.Now(), w.nextID)
	default: // near child
		w.budget--
		w.nextID++
		w.spawn(w.s.Now()+w.rng.UniformTime(0, 200*Microsecond), w.nextID)
	}
}

func runEquivalenceSeed(t *testing.T, seed uint64) {
	t.Helper()
	mk := func(s *Scheduler) *eqWorker {
		w := &eqWorker{s: s, rng: NewRNG(seed, "eq"), budget: 4000}
		for i := 0; i < 200; i++ {
			w.nextID++
			w.spawn(w.rng.UniformTime(0, 2*Millisecond), w.nextID)
		}
		return w
	}
	cal := mk(NewScheduler())
	heap := mk(NewHeapScheduler())
	// Advance both in uneven horizon chunks so events straddle Run
	// boundaries; the chunk sizes exercise both dense scans and the
	// sparse year-skip fallback.
	for _, h := range []Time{Millisecond, 3 * Millisecond, 40 * Millisecond, 200 * Millisecond, Second} {
		cal.s.Run(h)
		heap.s.Run(h)
		if cal.s.Pending() != heap.s.Pending() {
			t.Fatalf("seed %d: pending diverged at horizon %v: calendar %d, heap %d",
				seed, h, cal.s.Pending(), heap.s.Pending())
		}
	}
	cal.s.Drain()
	heap.s.Drain()
	if len(cal.log) != len(heap.log) {
		t.Fatalf("seed %d: dispatched %d events on calendar, %d on heap",
			seed, len(cal.log), len(heap.log))
	}
	for i := range cal.log {
		if cal.log[i] != heap.log[i] {
			t.Fatalf("seed %d: dispatch %d diverged: calendar (%v, id %d), heap (%v, id %d)",
				seed, i, cal.log[i].at, cal.log[i].id, heap.log[i].at, heap.log[i].id)
		}
	}
	if cal.s.Processed() != heap.s.Processed() {
		t.Fatalf("seed %d: processed counts diverged: %d vs %d",
			seed, cal.s.Processed(), heap.s.Processed())
	}
}

func TestCalendarHeapEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runEquivalenceSeed(t, seed)
		})
	}
}

// The periodic regime that dominates real runs: many actors on skewed
// periods, repeatedly crossing bucket-rotation boundaries and width
// recalibrations. Both disciplines must agree on every dispatch.
func TestCalendarHeapEquivalencePeriodic(t *testing.T) {
	type tick struct {
		s      *Scheduler
		log    *[]eqRecord
		id     int
		period Time
		left   int
	}
	var mkAll func(s *Scheduler, log *[]eqRecord)
	var ticks []*tick
	mkAll = func(s *Scheduler, log *[]eqRecord) {
		for i := 0; i < 64; i++ {
			tk := &tick{s: s, log: log, id: i, period: Microsecond + Time(i)*137*Nanosecond, left: 300}
			ticks = append(ticks, tk)
			var fire func()
			fire = func() {
				*tk.log = append(*tk.log, eqRecord{at: tk.s.Now(), id: tk.id})
				if tk.left > 0 {
					tk.left--
					tk.s.After(tk.period, fire)
				}
			}
			s.At(Time(i)*Nanosecond, fire)
		}
	}
	var calLog, heapLog []eqRecord
	cal, heap := NewScheduler(), NewHeapScheduler()
	mkAll(cal, &calLog)
	mkAll(heap, &heapLog)
	cal.Drain()
	heap.Drain()
	if len(calLog) != len(heapLog) {
		t.Fatalf("dispatched %d vs %d events", len(calLog), len(heapLog))
	}
	for i := range calLog {
		if calLog[i] != heapLog[i] {
			t.Fatalf("dispatch %d diverged: calendar (%v, %d), heap (%v, %d)",
				i, calLog[i].at, calLog[i].id, heapLog[i].at, heapLog[i].id)
		}
	}
}
