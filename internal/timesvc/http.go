package timesvc

import (
	"encoding/json"
	"errors"
	"net/http"
	"sort"
)

// TimeResponse is the JSON body served for one time query.
type TimeResponse struct {
	Host       string  `json:"host"`
	UTCPs      float64 `json:"utc_ps"`
	EarliestPs float64 `json:"earliest_ps"`
	LatestPs   float64 `json:"latest_ps"`
	WidthPs    float64 `json:"width_ps"`
	Epoch      uint64  `json:"epoch"`
}

// Handler serves a Clock over HTTP:
//
//	GET <prefix>now       -> {"utc_ps": ..., "earliest_ps": ..., ...}
//	GET <prefix>interval  -> same body (alias; clients wanting only the
//	                         point estimate read utc_ps)
//
// Failed-closed reads (nothing published, or the snapshot aged past
// MaxAge) return 503 so clients distinguish "service degraded" from
// transport errors. The handler is an observability/demo surface on
// dtpd's existing listener, NOT the fast path — in-process readers use
// the Clock directly; cmd/dtpload measures that path.
func Handler(host string, c *Clock) http.Handler {
	mux := http.NewServeMux()
	serve := func(w http.ResponseWriter, r *http.Request) {
		utc, iv, err := c.At(c.tb.Raw())
		if err != nil {
			status := http.StatusServiceUnavailable
			if !errors.Is(err, ErrNoSnapshot) && !errors.Is(err, ErrStale) {
				status = http.StatusInternalServerError
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(TimeResponse{
			Host:       host,
			UTCPs:      utc,
			EarliestPs: iv.EarliestPs,
			LatestPs:   iv.LatestPs,
			WidthPs:    iv.WidthPs(),
			Epoch:      c.store.Epoch(),
		})
	}
	mux.HandleFunc("/now", serve)
	mux.HandleFunc("/interval", serve)
	return mux
}

// HostHealth is one host's entry in the /healthz body.
type HostHealth struct {
	Host      string `json:"host"`
	Publishes uint64 `json:"publishes"`
	Degraded  uint64 `json:"degraded"`
	// Serving is false while nothing has been published (whether a
	// published snapshot has aged out is a per-reader-timebase question
	// the fail-closed read path answers).
	Serving bool `json:"serving"`
	// BoundPs is the current snapshot's half-width (0 when not serving).
	BoundPs float64 `json:"bound_ps"`
	// Epoch is the current snapshot's epoch (0 when none).
	Epoch uint64 `json:"epoch"`
	// Attribution is the ε-budget split (see Service.Attribution).
	Attribution Attribution `json:"attribution"`
}

// HealthHandler serves a per-host serving-plane summary at its root:
// publish/degraded counters, whether reads currently succeed, the live
// bound, and the ε-budget attribution. Hosts are sorted, so the body is
// deterministic for a deterministic run. Reads only atomics and the
// seqlock store — safe to serve while the simulation runs.
func HealthHandler(services map[string]*Service) http.Handler {
	hosts := make([]string, 0, len(services))
	for h := range services {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		out := make([]HostHealth, 0, len(hosts))
		for _, h := range hosts {
			svc := services[h]
			hh := HostHealth{
				Host:        h,
				Publishes:   svc.Publishes(),
				Degraded:    svc.DegradedTicks(),
				Attribution: svc.Attribution(),
			}
			if snap, ok := svc.Store().Read(); ok {
				hh.Serving = true
				hh.BoundPs = snap.BoundPs
				hh.Epoch = snap.Epoch
			}
			out = append(out, hh)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
}
