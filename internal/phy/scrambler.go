package phy

// Scrambler implements the self-synchronizing PCS scrambler, polynomial
// G(x) = 1 + x^39 + x^58 (IEEE 802.3 clause 49.2.6). Only the 64-bit block
// payload is scrambled; the 2-bit sync header is transmitted in the clear.
//
// DTP messages ride inside the payload, so they are scrambled like any
// other bits — this is why embedding counters in /E/ blocks does not
// disturb the DC balance of the line signal (§4.4 of the paper).
type Scrambler struct {
	state uint64 // 58-bit shift register, bit i = S_i
}

// NewScrambler returns a scrambler with a fixed nonzero initial state.
// Any state works: the receiver self-synchronizes after 58 bits.
func NewScrambler() *Scrambler {
	return &Scrambler{state: 0x3ff_ffff_ffff_ffff} // all 58 bits set
}

// ScrambleBit scrambles one bit.
func (s *Scrambler) ScrambleBit(in uint64) uint64 {
	out := (in ^ s.state>>38 ^ s.state>>57) & 1
	s.state = s.state<<1&(1<<58-1) | out
	return out
}

// Scramble scrambles a 64-bit payload, least significant bit first (the
// PCS transmission order).
func (s *Scrambler) Scramble(payload uint64) uint64 {
	var out uint64
	for i := 0; i < 64; i++ {
		out |= s.ScrambleBit(payload>>i&1) << i
	}
	return out
}

// Descrambler is the matching self-synchronizing descrambler.
type Descrambler struct {
	state uint64
}

// NewDescrambler returns a descrambler. Its initial state is deliberately
// different from the scrambler's to exercise self-synchronization.
func NewDescrambler() *Descrambler {
	return &Descrambler{}
}

// DescrambleBit descrambles one bit.
func (d *Descrambler) DescrambleBit(in uint64) uint64 {
	out := (in ^ d.state>>38 ^ d.state>>57) & 1
	d.state = d.state<<1&(1<<58-1) | in&1
	return out
}

// Descramble descrambles a 64-bit payload, least significant bit first.
func (d *Descrambler) Descramble(payload uint64) uint64 {
	var out uint64
	for i := 0; i < 64; i++ {
		out |= d.DescrambleBit(payload>>i&1) << i
	}
	return out
}
