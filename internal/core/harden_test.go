package core

import (
	"testing"

	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
	"github.com/dtplab/dtp/internal/topo"
)

// instrumentedPair builds a two-host network with metrics and tracing.
func instrumentedPair(t *testing.T, seed uint64) (*sim.Scheduler, *Network, *telemetry.Registry, *telemetry.Tracer) {
	t.Helper()
	sch := sim.NewScheduler()
	n, err := NewNetwork(sch, seed, topo.Pair(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	tr := telemetry.NewTracer(1 << 14)
	n.Instrument(reg, tr)
	return sch, n, reg, tr
}

// TestBeaconLossDemotesPort: a grey failure that silences one direction
// (the link still reports "up") must not leave the starved port
// pretending to be synchronized forever. The beacon-loss watchdog
// demotes it back to INIT, and once the direction heals the pair
// resynchronizes.
func TestBeaconLossDemotesPort(t *testing.T) {
	sch, n, _, tr := instrumentedPair(t, 21)
	n.Start()
	sch.Run(2 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("pair did not sync")
	}

	// Silence h0 -> h1: h1 keeps hearing nothing while its own beacons
	// still reach h0.
	ab, _ := n.LinkWires(0)
	ab.SetLossP(1)
	sch.RunFor(2 * sim.Millisecond)
	if got := tr.CountKind(telemetry.KindPortDemoted); got == 0 {
		t.Fatal("no port demoted itself despite total beacon loss")
	}
	a, b := n.LinkPorts(0)
	if a.state == portSynced && b.state == portSynced {
		t.Fatal("both ports still SYNCED while one direction is dead")
	}

	// Heal the direction: the demoted port's INIT retries get through
	// again (backoff caps at 20k<<5 ticks ≈ 4.1 ms between rounds).
	ab.SetLossP(0)
	sch.RunFor(10 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("pair did not resynchronize after the grey failure healed")
	}
}

// TestInitRetryBackoff: with a dead peer, INIT rounds must slow down
// exponentially instead of spinning at the base retry rate.
func TestInitRetryBackoff(t *testing.T) {
	sch, n, _, tr := instrumentedPair(t, 23)
	ab, ba := n.LinkWires(0)
	ab.SetLossP(1)
	ba.SetLossP(1)
	n.Start()
	sch.Run(8 * sim.Millisecond)

	// Base retry is 20k ticks ≈ 128 µs; without backoff 8 ms would fit
	// ~62 rounds per port. With doubling (cap 20k<<5 ≈ 4.1 ms) each
	// port sends its first round plus retries at ~128, 384, 896, 1920,
	// 3970, 8060 µs — about 6 rounds.
	rounds := tr.CountKind(telemetry.KindInitRound)
	if rounds > 16 {
		t.Fatalf("%d INIT rounds in 8ms against a dead peer; backoff not bounding the rate", rounds)
	}
	if rounds < 4 {
		t.Fatalf("%d INIT rounds in 8ms; ports gave up instead of retrying", rounds)
	}

	// The peer comes back: the next (possibly far-future) retry round
	// completes, and a received INIT resets the backoff immediately.
	ab.SetLossP(0)
	ba.SetLossP(0)
	sch.RunFor(10 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("pair did not sync after loss cleared")
	}
}

// TestDroppedDownCounting: blocks that arrive on an administratively
// down port are discarded and counted, not processed.
func TestDroppedDownCounting(t *testing.T) {
	sch, n, reg, _ := instrumentedPair(t, 25)
	n.Start()
	sch.Run(2 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("pair did not sync")
	}

	// Down h1's port only; h0 keeps beaconing into it.
	_, b := n.LinkPorts(0)
	b.Down()
	sch.RunFor(2 * sim.Millisecond) // > telemetry flush interval
	if b.DroppedDown() == 0 {
		t.Fatal("no blocks counted as dropped on the down port")
	}
	m := reg.Counter("dtp_port_dropped_down",
		"Blocks that arrived on a down port and were discarded.")
	if m.Value() == 0 {
		t.Fatal("dtp_port_dropped_down metric not flushed")
	}
	// The shadow counter flushes every millisecond, so the metric may
	// trail the port's own count by the final partial interval.
	if m.Value() > b.DroppedDown() {
		t.Fatalf("metric %d exceeds port count %d", m.Value(), b.DroppedDown())
	}
}

// TestCrashRestartRejoins: a device crash loses all counter and port
// state on the device and drops carrier on every attached cable; after
// restart the device re-enters through INIT and BEACON-JOIN pulls it
// back to the network maximum.
func TestCrashRestartRejoins(t *testing.T) {
	sch := sim.NewScheduler()
	n, err := NewNetwork(sch, 27, topo.Chain(2), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	tr := telemetry.NewTracer(1 << 14)
	n.Instrument(reg, tr)
	n.Start()
	sch.Run(5 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("chain did not sync")
	}
	sw, err := n.DeviceByName("sw1")
	if err != nil {
		t.Fatal(err)
	}
	before := sw.GlobalCounter()

	sw.Crash()
	if n.AllSynced() {
		t.Fatal("links still synced across a crashed device")
	}
	sch.RunFor(500 * sim.Microsecond)
	sw.Restart()
	if c := sw.GlobalCounter(); c >= before {
		t.Fatalf("restart kept counter state: %d (was %d at crash)", c, before)
	}
	sch.RunFor(5 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("crashed device did not rejoin")
	}
	// JOIN must have pulled the restarted device up to the network max,
	// never the network down to it.
	off := n.TrueOffsetUnits(0, 1)
	if off < 0 {
		off = -off
	}
	if off > n.BoundUnits() {
		t.Fatalf("restarted device still %d units off (bound %d)", off, n.BoundUnits())
	}
	if tr.CountKind(telemetry.KindDeviceCrash) != 1 || tr.CountKind(telemetry.KindDeviceRestart) != 1 {
		t.Fatal("crash/restart trace events missing")
	}
	if reg.Counter("dtp_device_crashes_total", "Device power-loss events injected.").Value() != 1 {
		t.Fatal("crash metric not counted")
	}
}
