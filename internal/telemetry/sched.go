package telemetry

import (
	"time"

	"github.com/dtplab/dtp/internal/sim"
)

// SchedOptions configures InstrumentScheduler.
type SchedOptions struct {
	// Interval is the simulated sampling cadence (default 1 ms).
	Interval sim.Time
	// WallRate additionally exports events per wall-clock second. The
	// rate depends on host speed, so leave it off for runs whose metric
	// export must be byte-deterministic per seed (dtpsim -metrics-out);
	// long-lived serving processes (dtpd -listen) turn it on.
	WallRate bool
}

// InstrumentScheduler exports the event loop's own throughput through
// the registry: events processed, current and high-water queue depth, a
// queue-depth histogram sampled every Interval of simulated time, and
// (optionally) wall-clock events/sec. The sampler runs as a scheduler
// event, so all reads happen on the simulation goroutine; concurrent
// HTTP scrapes only touch the atomic metric values.
func InstrumentScheduler(reg *Registry, sch *sim.Scheduler, o SchedOptions) {
	if reg == nil || sch == nil {
		return
	}
	interval := o.Interval
	if interval <= 0 {
		interval = sim.Millisecond
	}
	processed := reg.Gauge("dtp_sched_events_processed_total",
		"Scheduler events dispatched since construction.")
	pending := reg.Gauge("dtp_sched_events_pending",
		"Scheduler events currently queued.")
	highWater := reg.Gauge("dtp_sched_events_pending_high_water",
		"Largest scheduler queue depth ever observed.")
	depth := reg.Histogram("dtp_sched_queue_depth",
		"Scheduler queue depth sampled every instrumentation interval.",
		ExponentialBuckets(1, 2, 16))
	var rate *Gauge
	if o.WallRate {
		rate = reg.Gauge("dtp_sched_events_per_wall_second",
			"Scheduler events dispatched per wall-clock second (host-dependent).")
	}
	var lastProcessed uint64
	lastWall := time.Now()
	var sample func()
	sample = func() {
		p := sch.Processed()
		processed.Set(float64(p))
		pen := sch.Pending()
		pending.Set(float64(pen))
		highWater.Set(float64(sch.HighWaterPending()))
		depth.Observe(float64(pen))
		if rate != nil {
			now := time.Now()
			if el := now.Sub(lastWall).Seconds(); el > 0 {
				rate.Set(float64(p-lastProcessed) / el)
			}
			lastProcessed, lastWall = p, now
		}
		sch.After(interval, sample)
	}
	sch.After(interval, sample)
}
