package daemon

import (
	"math"
	"testing"

	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/stats"
	"github.com/dtplab/dtp/internal/topo"
)

// syncedPair builds a running two-node DTP network.
func syncedPair(t *testing.T, seed uint64) (*sim.Scheduler, *core.Network) {
	t.Helper()
	sch := sim.NewScheduler()
	n, err := core.NewNetwork(sch, seed, topo.Pair(), core.DefaultConfig(),
		core.WithPPM(map[string]float64{"h0": 40, "h1": -40}))
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	sch.Run(5 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("pair did not sync")
	}
	return sch, n
}

func TestDaemonRawOffsetWithinPaperBound(t *testing.T) {
	// Figure 7a: offset_sw usually within ±16 ticks (~102.4 ns) before
	// smoothing.
	sch, n := syncedPair(t, 1)
	cfg := DefaultConfig().Compressed(100) // calibrate every 10 ms
	d := New(n.Devices[0], cfg, 7)
	raw := stats.NewSummary(0)
	d.OnSample = func(off float64) { raw.Add(off) }
	d.Start()
	sch.RunFor(5 * sim.Second) // ~500 calibrations
	if d.Calibrations() < 100 {
		t.Fatalf("only %d calibrations", d.Calibrations())
	}
	// "usually no more than 16 clock ticks": 99th percentile within 16,
	// worst-case spikes allowed somewhat beyond.
	p99 := math.Max(math.Abs(raw.Quantile(0.99)), math.Abs(raw.Quantile(0.01)))
	if p99 > 16 {
		t.Fatalf("daemon raw offset p99 = %.1f ticks, paper says usually <= 16", p99)
	}
	if raw.MaxAbs() < 0.5 {
		t.Fatalf("raw offsets implausibly tight (%.3f); PCIe noise missing", raw.MaxAbs())
	}
}

func TestDaemonSmoothedOffsetWithin4Ticks(t *testing.T) {
	// Figure 7b: moving average with window 10 brings offsets to
	// usually within ±4 ticks (~25.6 ns).
	sch, n := syncedPair(t, 3)
	cfg := DefaultConfig().Compressed(100)
	d := New(n.Devices[0], cfg, 9)
	var rawSeq []float64
	d.OnSample = func(off float64) { rawSeq = append(rawSeq, off) }
	d.Start()
	sch.RunFor(5 * sim.Second)
	sm := stats.MovingAverage(rawSeq, 10)
	s := stats.NewSummary(0)
	for _, v := range sm[10:] {
		s.Add(v)
	}
	p99 := math.Max(math.Abs(s.Quantile(0.99)), math.Abs(s.Quantile(0.01)))
	if p99 > 4 {
		t.Fatalf("smoothed offset p99 = %.2f ticks, paper says usually <= 4", p99)
	}
}

func TestDaemonEstimateTracksCounter(t *testing.T) {
	sch, n := syncedPair(t, 5)
	d := New(n.Devices[1], DefaultConfig().Compressed(100), 11)
	d.Start()
	sch.RunFor(2 * sim.Second)
	est := d.Estimate()
	truth := float64(n.Devices[1].GlobalCounter())
	if math.Abs(est-truth) > 50 {
		t.Fatalf("estimate %f vs counter %f", est, truth)
	}
	if d.Device() != n.Devices[1] {
		t.Fatal("device accessor")
	}
}

func TestDaemonStop(t *testing.T) {
	sch, n := syncedPair(t, 7)
	d := New(n.Devices[0], DefaultConfig().Compressed(100), 13)
	d.Start()
	sch.RunFor(sim.Second)
	c := d.Calibrations()
	d.Stop()
	sch.RunFor(sim.Second)
	if d.Calibrations() != c {
		t.Fatal("stopped daemon kept calibrating")
	}
}

func TestDaemonBeforeFirstCalibration(t *testing.T) {
	_, n := syncedPair(t, 9)
	d := New(n.Devices[0], DefaultConfig(), 15)
	if d.Estimate() != 0 {
		t.Fatal("estimate before calibration should be 0")
	}
}

// End-to-end precision (§1): two daemons on directly connected devices;
// the difference between their estimates must stay within 4TD + 8T =
// 4 + 16 = 20 ticks usually (we allow p99).
func TestEndToEndSoftwarePrecision(t *testing.T) {
	sch, n := syncedPair(t, 11)
	cfg := DefaultConfig().Compressed(100)
	d0 := New(n.Devices[0], cfg, 17)
	d1 := New(n.Devices[1], cfg, 19)
	d0.Start()
	d1.Start()
	sch.RunFor(sim.Second) // calibrations under way
	s := stats.NewSummary(0)
	for i := 0; i < 3000; i++ {
		sch.RunFor(sim.Millisecond)
		s.Add(d0.Estimate() - d1.Estimate())
	}
	p99 := math.Max(math.Abs(s.Quantile(0.99)), math.Abs(s.Quantile(0.01)))
	if p99 > 20 {
		t.Fatalf("end-to-end daemon offset p99 = %.1f ticks, bound 4TD+8T = 20", p99)
	}
}

func TestExternalSyncUTC(t *testing.T) {
	// §5.2: followers learn UTC from broadcast (counter, UTC) pairs;
	// their UTC error is bounded by daemon precision plus broadcast
	// estimation error — microsecond-class at worst, typically ~100ns.
	sch, n := syncedPair(t, 13)
	cfg := DefaultConfig().Compressed(100)
	d0 := New(n.Devices[0], cfg, 21)
	d1 := New(n.Devices[1], cfg, 23)
	d0.Start()
	d1.Start()
	b := NewUTCBroadcaster(d0, TrueUTC{Sch: sch}, 50*sim.Millisecond)
	f := NewUTCFollower(d1)
	b.Subscribe(f)
	b.Start()
	if _, err := f.UTC(); err == nil {
		t.Fatal("UTC available before any broadcast")
	}
	sch.RunFor(2 * sim.Second)
	if f.Received() == 0 {
		t.Fatal("no broadcasts received")
	}
	s := stats.NewSummary(0)
	for i := 0; i < 500; i++ {
		sch.RunFor(sim.Millisecond)
		s.Add(f.UTCErrorPs())
	}
	if s.MaxAbs() > 2e6 { // 2 us
		t.Fatalf("UTC error reached %.0f ps", s.MaxAbs())
	}
	b.Stop()
	got := f.Received()
	sch.RunFor(sim.Second)
	if f.Received() != got {
		t.Fatal("stopped broadcaster kept sending")
	}
}
