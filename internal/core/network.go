package core

import (
	"fmt"

	"github.com/dtplab/dtp/internal/link"
	"github.com/dtplab/dtp/internal/phy"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/topo"
)

// Network is a DTP-enabled network instantiated from a topology graph:
// one Device per node, a pair of Ports (and wires) per link.
type Network struct {
	Sch   *sim.Scheduler
	Graph topo.Graph

	cfg   Config
	rng   *sim.RNG
	codec phy.Codec

	Devices []*Device
	// linkPorts[i] holds the two ports of Graph.Links[i], in (A, B)
	// node order.
	linkPorts [][2]*Port

	// OnOffset, if set, is invoked for every processed beacon with the
	// receiving port and the hardware offset sample
	// offset = t2 - t1 - OWD (§6.2), in counter units.
	OnOffset func(rx *Port, offsetUnits int64)

	// tel holds telemetry handles; the zero value (uninstrumented) is a
	// set of nil handles whose updates are no-ops. See Instrument.
	tel coreMetrics

	// Hardened-mode totals, owned by the scheduler goroutine and read
	// after a run via ByzantineStats (campaign Result fields).
	rejectedTotal   uint64
	quarantineTotal uint64
}

// Option customizes network construction.
type Option func(*networkOptions)

type networkOptions struct {
	ppmByName  map[string]float64
	linkSpeeds map[int]phy.Speed
}

// WithPPM pins specific devices' oscillator offsets (by topology name)
// instead of drawing them from the uniform distribution. Used by tests
// and worst-case bound experiments.
func WithPPM(byName map[string]float64) Option {
	return func(o *networkOptions) { o.ppmByName = byName }
}

// WithLinkSpeeds builds a mixed-speed network (§7): the map assigns an
// Ethernet speed to topology link indices (unassigned links run at the
// map's implicit default, 10 GbE). Requires the base-clock
// configuration (see MixedSpeedConfig): every device counts 0.32 ns
// base units, and each port advances by its speed's Delta per cycle.
func WithLinkSpeeds(byLink map[int]phy.Speed) Option {
	return func(o *networkOptions) { o.linkSpeeds = byLink }
}

// MixedSpeedConfig returns a configuration for mixed-speed networks:
// devices run the 0.32 ns common base clock; α and the guard are
// expressed per port cycle and scaled by each port's Delta.
//
// α is 5 cycles rather than the homogeneous network's 3: at 10 GbE the
// synchronization-FIFO fill asymmetry between the two directions and
// the complementary edge alignments amount to sub-tick quantities the
// integer arithmetic absorbs, but at pd base-ticks per cycle they can
// inflate the measured RTT by up to two whole cycles. Two extra cycles
// of α keep the measured delay at or below the weaker direction's
// minimum transit, which is the no-ratchet condition (§3.3).
func MixedSpeedConfig() Config {
	c := DefaultConfig()
	c.Profile = phy.BaseProfile()
	c.UnitsPerTick = 1
	c.AlphaUnits = 5
	c.GuardUnits = 8
	return c
}

// NewNetwork builds a DTP network over the graph. Oscillator offsets are
// drawn uniformly from ±cfg.PPMRange unless pinned via WithPPM.
func NewNetwork(sch *sim.Scheduler, seed uint64, graph topo.Graph, cfg Config, opts ...Option) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := graph.Validate(); err != nil {
		return nil, err
	}
	var o networkOptions
	for _, opt := range opts {
		opt(&o)
	}
	n := &Network{
		Sch:   sch,
		Graph: graph,
		cfg:   cfg,
		rng:   sim.NewRNG(seed, "core/network"),
		codec: phy.Codec{Parity: cfg.Parity},
	}
	for _, node := range graph.Nodes {
		drng := n.rng.Fork("dev/" + node.Name)
		ppm, pinned := o.ppmByName[node.Name]
		if !pinned {
			ppm = drng.Uniform(-cfg.PPMRange, cfg.PPMRange)
		}
		n.Devices = append(n.Devices, newDevice(n, node, ppm, drng))
	}
	// In master mode, compute each node's parent hop toward the root so
	// ports can be marked as uplinks.
	var parentLink []int
	if cfg.FollowMaster {
		root, ok := graph.ByName(cfg.Master)
		if !ok {
			return nil, fmt.Errorf("core: FollowMaster root %q not in topology", cfg.Master)
		}
		next := graph.NextHop()
		parentLink = make([]int, len(graph.Nodes))
		for i := range graph.Nodes {
			parentLink[i] = next[i][root.ID] // -1 for the root itself
		}
	}
	for li, l := range graph.Links {
		a, b := n.Devices[l.A], n.Devices[l.B]
		delay := link.DelayForLength(l.LengthM)
		wireAB, err := link.New(sch, n.rng.Fork(fmt.Sprintf("wire/%d/ab", li)), link.Config{Delay: delay, BER: cfg.BER})
		if err != nil {
			return nil, fmt.Errorf("core: link %d (%s-%s): %w", li,
				graph.Nodes[l.A].Name, graph.Nodes[l.B].Name, err)
		}
		wireBA, err := link.New(sch, n.rng.Fork(fmt.Sprintf("wire/%d/ba", li)), link.Config{Delay: delay, BER: cfg.BER})
		if err != nil {
			return nil, fmt.Errorf("core: link %d (%s-%s): %w", li,
				graph.Nodes[l.A].Name, graph.Nodes[l.B].Name, err)
		}
		// Port cycle granularity: 1 in homogeneous networks; the link
		// speed's Delta when devices run the 0.32 ns base clock.
		pd := uint64(1)
		fragmented := cfg.FragmentedMessages
		if o.linkSpeeds != nil {
			if cfg.Profile.PeriodFs != phy.BaseTickFs || cfg.UnitsPerTick != 1 {
				return nil, fmt.Errorf("core: WithLinkSpeeds requires the base-clock config (MixedSpeedConfig)")
			}
			speed, ok := o.linkSpeeds[li]
			if !ok {
				speed = phy.Speed10G
			}
			pd = uint64(phy.ProfileFor(speed).Delta)
			fragmented = fragmented || speed == phy.Speed1G
		}
		pa := &Port{
			portHot:  portHot{dev: a, sched: sch, wire: wireAB, rng: n.rng.Fork(fmt.Sprintf("port/%d/a", li)), gate: OpenGate{}, owdUnits: -1, pd: pd, fragmented: fragmented},
			portCold: portCold{idx: len(a.ports)},
		}
		pb := &Port{
			portHot:  portHot{dev: b, sched: sch, wire: wireBA, rng: n.rng.Fork(fmt.Sprintf("port/%d/b", li)), gate: OpenGate{}, owdUnits: -1, pd: pd, fragmented: fragmented},
			portCold: portCold{idx: len(b.ports)},
		}
		pa.peer, pb.peer = pb, pa
		if parentLink != nil {
			pa.uplink = parentLink[l.A] == li
			pb.uplink = parentLink[l.B] == li
		}
		a.ports = append(a.ports, pa)
		b.ports = append(b.ports, pb)
		n.linkPorts = append(n.linkPorts, [2]*Port{pa, pb})
	}
	return n, nil
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Start brings every link up within the first microsecond, lightly
// staggered so INIT handshakes do not run in lockstep.
func (n *Network) Start() {
	for _, lp := range n.linkPorts {
		pa, pb := lp[0], lp[1]
		n.Sch.At(n.rng.UniformTime(0, sim.Microsecond), pa.Up)
		n.Sch.At(n.rng.UniformTime(0, sim.Microsecond), pb.Up)
	}
}

// LinkPorts returns the two ports of topology link i.
func (n *Network) LinkPorts(i int) (*Port, *Port) {
	return n.linkPorts[i][0], n.linkPorts[i][1]
}

// LinkWires returns the two directional wires of topology link i in
// (A→B, B→A) node order, for runtime impairment injection
// (internal/chaos): BER bursts, grey loss, delay asymmetry.
func (n *Network) LinkWires(i int) (ab, ba *link.Wire) {
	return n.linkPorts[i][0].wire, n.linkPorts[i][1].wire
}

// SetLinkUp / SetLinkDown control both directions of topology link i,
// modelling cable plug/pull and network partitions.
func (n *Network) SetLinkUp(i int) {
	n.linkPorts[i][0].Up()
	n.linkPorts[i][1].Up()
}

// SetLinkDown tears down both ports of topology link i.
func (n *Network) SetLinkDown(i int) {
	n.linkPorts[i][0].Down()
	n.linkPorts[i][1].Down()
}

// SetGateAll installs a transmit gate on every port, e.g. a saturated-
// link model for the heavy-load experiments.
func (n *Network) SetGateAll(factory func(p *Port) TxGate) {
	for _, lp := range n.linkPorts {
		lp[0].SetGate(factory(lp[0]))
		lp[1].SetGate(factory(lp[1]))
	}
}

// DeviceByName returns the device for a topology node name.
func (n *Network) DeviceByName(name string) (*Device, error) {
	node, ok := n.Graph.ByName(name)
	if !ok {
		return nil, fmt.Errorf("core: no node named %q", name)
	}
	return n.Devices[node.ID], nil
}

// TrueOffsetUnits returns the ground-truth counter difference
// c_a(t) - c_b(t) between two devices at the current instant — the
// quantity the paper's ε bounds (§2.1, eq. 1). This is the simulator's
// omniscient view; the protocol itself can only estimate it.
func (n *Network) TrueOffsetUnits(a, b int) int64 {
	t := n.Sch.Now()
	return int64(n.Devices[a].gc.at(t)) - int64(n.Devices[b].gc.at(t))
}

// MaxAdjacentOffset returns the largest |true offset| across directly
// connected pairs, in counter units.
func (n *Network) MaxAdjacentOffset() int64 {
	var max int64
	for _, l := range n.Graph.Links {
		o := n.TrueOffsetUnits(l.A, l.B)
		if o < 0 {
			o = -o
		}
		if o > max {
			max = o
		}
	}
	return max
}

// MaxPairwiseOffset returns the largest |true offset| across all device
// pairs — the network-wide ε.
func (n *Network) MaxPairwiseOffset() int64 {
	var max int64
	for i := range n.Devices {
		for j := i + 1; j < len(n.Devices); j++ {
			o := n.TrueOffsetUnits(i, j)
			if o < 0 {
				o = -o
			}
			if o > max {
				max = o
			}
		}
	}
	return max
}

// LinkSynced reports whether both ports of topology link i completed
// their delay measurement — the link is actively carrying beacons. A
// quarantined port (hardened mode) is not synced: the auditor's active
// bitmap is built from this predicate, so quarantined links drop out of
// the BFS bounds automatically.
func (n *Network) LinkSynced(i int) bool {
	lp := n.linkPorts[i]
	return lp[0].state == portSynced && lp[1].state == portSynced
}

// LinkQuarantined reports whether either port of topology link i is in
// hardened-mode quarantine.
func (n *Network) LinkQuarantined(i int) bool {
	lp := n.linkPorts[i]
	return lp[0].state == portQuarantined || lp[1].state == portQuarantined
}

// ByzantineStats returns hardened mode's cumulative bounded-jump
// admission rejections and quarantine entries across all ports.
func (n *Network) ByzantineStats() (rejected, quarantined uint64) {
	return n.rejectedTotal, n.quarantineTotal
}

// LinkBoundUnits returns topology link i's per-hop contribution to the
// 4TD precision bound, in counter units: 4 port cycles at the link's
// speed. In a homogeneous network every link contributes 4 ticks; in a
// mixed-speed network (§7) a link contributes 4×Delta base units.
func (n *Network) LinkBoundUnits(i int) int64 {
	p := n.linkPorts[i][0]
	return 4 * int64(p.pd) * int64(n.cfg.UnitsPerTick)
}

// AllSynced reports whether every port of every link has completed its
// delay measurement.
func (n *Network) AllSynced() bool {
	for _, lp := range n.linkPorts {
		if lp[0].state != portSynced || lp[1].state != portSynced {
			return false
		}
	}
	return true
}

// BoundUnits returns the paper's precision bound 4TD expressed in
// counter units for this network: 4 units of error per hop times the
// host-relevant diameter.
func (n *Network) BoundUnits() int64 {
	return 4 * int64(n.cfg.UnitsPerTick) * int64(n.Graph.Diameter())
}
