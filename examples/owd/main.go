// One-way delay measurement — the paper's opening motivation (§1):
// with clocks synchronized to tens of nanoseconds, one-way delay can be
// measured directly (receive timestamp minus send timestamp), with no
// round-trip halving and no symmetric-path assumption.
//
// Two applications timestamp events with their hosts' DTP daemon clocks
// across the paper-tree datacenter. Messages take an asymmetric,
// variable path delay; the example compares the DTP-measured OWD
// against the true delay, showing errors at the DTP software precision
// (tens of ns) rather than the milliseconds NTP would contribute.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"time"

	"github.com/dtplab/dtp"
)

func main() {
	sys, err := dtp.New(dtp.PaperTree(), dtp.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()
	if err := sys.RunUntilSynced(time.Second); err != nil {
		log.Fatal(err)
	}

	// Application daemons on two hosts four hops apart.
	sender, err := sys.AttachDaemon("s4", 10*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	receiver, err := sys.AttachDaemon("s11", 10*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	sys.Run(500 * time.Millisecond) // daemons calibrate

	rng := rand.New(rand.NewPCG(1, 2))
	tick := sys.TickNanos()

	fmt.Println("measuring one-way delays of 20 application messages s4 -> s11:")
	fmt.Printf("%6s %14s %14s %12s\n", "msg", "true (ns)", "measured (ns)", "error (ns)")
	var worstErr float64
	for i := 0; i < 20; i++ {
		// The application stamps the message with its local DTP time.
		t0 := sender.Counter() * tick // ns

		// The message crosses the datacenter: base path latency plus
		// random queueing — asymmetric and unknowable to the endpoints,
		// which is exactly why RTT/2 estimates fail.
		delayNs := 5000 + rng.Float64()*20000
		sys.Run(time.Duration(delayNs) * time.Nanosecond)

		// The receiver stamps arrival with its own DTP time. No
		// communication with the sender's clock is needed.
		t1 := receiver.Counter() * tick
		measured := t1 - t0
		errNs := measured - delayNs
		if math.Abs(errNs) > worstErr {
			worstErr = math.Abs(errNs)
		}
		fmt.Printf("%6d %14.0f %14.0f %12.1f\n", i, delayNs, measured, errNs)

		sys.Run(5 * time.Millisecond)
	}
	fmt.Printf("\nworst measurement error: %.1f ns", worstErr)
	fmt.Printf(" (paper's end-to-end software precision: 4TD+8T = %.1f ns)\n",
		sys.BoundNanos()+8*tick)
}
