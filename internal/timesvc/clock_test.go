package timesvc

import (
	"errors"
	"math"
	"testing"
	"time"
)

// fakeTimebase is a settable raw clock for table tests.
type fakeTimebase struct{ raw int64 }

func (f *fakeTimebase) Raw() int64 { return f.raw }

func publishedClock(tb Timebase, sn Snapshot) *Clock {
	st := &Store{}
	st.Publish(sn)
	return NewClock(st, tb)
}

func TestClockNoSnapshot(t *testing.T) {
	c := NewClock(&Store{}, &fakeTimebase{})
	if _, err := c.Now(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("Now err = %v, want ErrNoSnapshot", err)
	}
	if _, err := c.NowInterval(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("NowInterval err = %v, want ErrNoSnapshot", err)
	}
	if _, err := c.WaitUntil(0); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("WaitUntil err = %v, want ErrNoSnapshot", err)
	}
}

func TestClockInterpolationAndWidening(t *testing.T) {
	tb := &fakeTimebase{}
	c := publishedClock(tb, Snapshot{
		Epoch:     1,
		AnchorRaw: 1_000_000,
		AnchorUTC: 5_000_000,
		Ratio:     2.0, // easy to spot in expected values
		BoundPs:   100,
		DriftPPM:  50, // 50 ppm: +1 ps of ε per 20000 ps of age
	})

	tb.raw = 1_000_000 // at the anchor
	utc, iv, err := c.At(tb.Raw())
	if err != nil {
		t.Fatal(err)
	}
	if utc != 5_000_000 {
		t.Fatalf("utc at anchor = %v, want 5000000", utc)
	}
	if iv.HalfWidthPs() != 100 {
		t.Fatalf("ε at anchor = %v, want 100", iv.HalfWidthPs())
	}

	tb.raw = 1_020_000 // 20000 ps later
	utc, iv, err = c.At(tb.Raw())
	if err != nil {
		t.Fatal(err)
	}
	if want := 5_000_000 + 20_000*2.0; utc != want {
		t.Fatalf("utc = %v, want %v", utc, want)
	}
	if want := 100 + 1.0; math.Abs(iv.HalfWidthPs()-want) > 1e-9 {
		t.Fatalf("ε after 20000 ps = %v, want %v", iv.HalfWidthPs(), want)
	}
	if !iv.Contains(utc) || iv.Contains(utc+200) || iv.Contains(utc-200) {
		t.Fatalf("interval [%v, %v] shape wrong around %v", iv.EarliestPs, iv.LatestPs, utc)
	}
	if iv.WidthPs() != 2*iv.HalfWidthPs() {
		t.Fatalf("WidthPs %v != 2×HalfWidthPs %v", iv.WidthPs(), iv.HalfWidthPs())
	}
}

func TestClockFailsClosedWhenStale(t *testing.T) {
	tb := &fakeTimebase{}
	c := publishedClock(tb, Snapshot{
		Epoch: 1, AnchorRaw: 0, AnchorUTC: 0, Ratio: 1, BoundPs: 10,
		MaxAgePs: 1000,
	})
	tb.raw = 1000 // exactly MaxAge: still served
	if _, err := c.Now(); err != nil {
		t.Fatalf("read at MaxAge failed: %v", err)
	}
	tb.raw = 1001 // past it: fail closed
	if _, err := c.Now(); !errors.Is(err, ErrStale) {
		t.Fatalf("read past MaxAge err = %v, want ErrStale", err)
	}
	if _, err := c.WaitUntil(0); !errors.Is(err, ErrStale) {
		t.Fatalf("WaitUntil past MaxAge err = %v, want ErrStale", err)
	}
}

func TestClockAfterBefore(t *testing.T) {
	tb := &fakeTimebase{raw: 0}
	c := publishedClock(tb, Snapshot{
		Epoch: 1, AnchorRaw: 0, AnchorUTC: 10_000, Ratio: 1, BoundPs: 100,
	})
	// Interval is [9900, 10100].
	if after, _ := c.After(9_800); !after {
		t.Fatal("After(9800) = false; earliest 9900 has passed it")
	}
	if after, _ := c.After(10_000); after {
		t.Fatal("After(10000) = true; 10000 is inside the interval")
	}
	if before, _ := c.Before(10_200); !before {
		t.Fatal("Before(10200) = false; latest 10100 has not reached it")
	}
	if before, _ := c.Before(10_000); before {
		t.Fatal("Before(10000) = true; 10000 is inside the interval")
	}
}

func TestClockWaitUntil(t *testing.T) {
	tb := &fakeTimebase{raw: 0}
	c := publishedClock(tb, Snapshot{
		Epoch: 1, AnchorRaw: 0, AnchorUTC: 1_000_000, Ratio: 1, BoundPs: 100_000,
	})
	// earliest = 900000 ps. Target already passed: no wait.
	if d, err := c.WaitUntil(800_000); err != nil || d != 0 {
		t.Fatalf("WaitUntil(past) = %v, %v; want 0, nil", d, err)
	}
	// Target 1 µs past earliest: wait ≈ 1 µs of timebase.
	d, err := c.WaitUntil(1_900_000)
	if err != nil {
		t.Fatal(err)
	}
	if want := time.Microsecond; d != want {
		t.Fatalf("WaitUntil = %v, want %v", d, want)
	}
}

func TestClockReadZeroAlloc(t *testing.T) {
	tb := NewWallTimebase(0)
	c := publishedClock(tb, Snapshot{
		Epoch: 1, AnchorRaw: 0, AnchorUTC: 0, Ratio: 1, BoundPs: 100,
	})
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := c.NowInterval(); err != nil {
			t.Error(err)
		}
	}); n != 0 {
		t.Fatalf("Clock.NowInterval allocates %.1f times per call, want 0", n)
	}
}

func TestWallTimebaseAdvances(t *testing.T) {
	tb := NewWallTimebase(42)
	a := tb.Raw()
	if a < 42 {
		t.Fatalf("Raw = %d, want >= base 42", a)
	}
	time.Sleep(time.Millisecond)
	b := tb.Raw()
	if b-a < int64(500*1000*1000) { // at least 0.5 ms in ps
		t.Fatalf("Raw advanced only %d ps over a 1 ms sleep", b-a)
	}
}
