package dtp

// Warehouse-scale engine benchmarks (BENCH_8.json): raw discrete-event
// throughput on fat-tree topologies, reported as events/sec and
// device×sim-seconds per wall-second. Unlike the paper-artifact
// benchmarks in bench_test.go these measure the *simulator*, not the
// protocol: the workload is the steady-state beacon hot path
// (TX insert → wire → RX → CDC → process) over hundreds of devices.
//
// The beacon interval is 60000 ticks (0.384 ms, one of the ablation
// values) rather than the paper's 200: the engine benchmark wants many
// devices × long sim horizons, and the per-beacon event chain is
// identical at any cadence, so a sparser cadence measures the same hot
// path while keeping the workload tractable at fattree:8×10 s.
//
// BenchmarkEngineFattree8 writes BENCH_8.json when BENCH8_OUT is set
// (see `make bench-save`), recording:
//   - events/sec of the current engine (calendar queue, pooled events)
//   - events/sec of the same workload on the heap reference scheduler
//   - the seed-engine baseline measured at commit ba7970f on the dev
//     container, for the speedup-vs-seed trajectory
//   - fattree:16 60-sim-second wall time (BENCH8_FULL=1 only)
//   - campaign -jobs scaling (BENCH8_FULL=1 only)
//
// Regression gate: with BENCH8_BASELINE pointing at a committed
// BENCH_8.json, the benchmark fails when events/sec drops more than 15%
// below the baseline — armed only on hosts with >= 8 CPUs, like the
// BENCH_5/BENCH_6 assertions, so laptops and small CI runners still
// produce records without failing.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// bench8Seed returns the recorded seed baseline, overridable for
// cross-machine comparisons via BENCH8_SEED_EPS.
func bench8Seed() float64 {
	if v := os.Getenv("BENCH8_SEED_EPS"); v != "" {
		var f float64
		fmt.Sscan(v, &f)
		return f
	}
	return seedBaselineEventsPerSec
}

// engineRun builds the topology, syncs it, and runs the measurement
// window, returning events dispatched and wall seconds for the whole
// run (sync + steady state) plus steady-state-only rates.
type engineRun struct {
	Devices   int     `json:"devices"`
	Links     int     `json:"links"`
	Events    uint64  `json:"events"`
	WallSec   float64 `json:"wall_seconds"`
	EventsSec float64 `json:"events_per_sec"`
	// DevSimPerWall is devices × simulated seconds per wall second —
	// the model-size-scaling figure of merit the OMNeT++ PTP
	// simulators report.
	DevSimPerWall float64 `json:"device_sim_seconds_per_wall_second"`
}

func runEngine(b *testing.B, topoSpec string, beacon uint64, simSecs int, opts ...Option) engineRun {
	g, err := ParseTopology(topoSpec)
	if err != nil {
		b.Fatal(err)
	}
	all := append([]Option{WithSeed(1), WithBeaconInterval(beacon)}, opts...)
	sys, err := New(g, all...)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	sys.Start()
	start := time.Now()
	if err := sys.RunUntilSynced(2 * time.Second); err != nil {
		b.Fatal(err)
	}
	sys.Run(time.Duration(simSecs) * time.Second)
	wall := time.Since(start).Seconds()
	ev := sys.EventsProcessed()
	return engineRun{
		Devices:       len(g.Nodes),
		Links:         len(g.Links),
		Events:        ev,
		WallSec:       wall,
		EventsSec:     float64(ev) / wall,
		DevSimPerWall: float64(len(g.Nodes)) * float64(simSecs) / wall,
	}
}

// bench8Record is the BENCH_8.json schema.
type bench8Record struct {
	Benchmark   string    `json:"benchmark"`
	Topo        string    `json:"topo"`
	BeaconTicks uint64    `json:"beacon_ticks"`
	SimSeconds  int       `json:"sim_seconds"`
	GOMAXPROCS  int       `json:"gomaxprocs"`
	Engine      engineRun `json:"engine"`
	// HeapRef is the identical workload dispatched through the heap
	// reference scheduler (container/heap, one allocation per event —
	// the seed data structure) under the current core hot path.
	HeapRef engineRun `json:"heap_reference"`
	// SeedEventsPerSec is the full seed engine (heap scheduler + per
	// -beacon closure allocation) measured at the commit recorded in
	// SeedCommit, on this container.
	SeedEventsPerSec float64 `json:"seed_events_per_sec"`
	SeedCommit       string  `json:"seed_commit"`
	SpeedupVsSeed    float64 `json:"speedup_vs_seed"`
	SpeedupVsHeap    float64 `json:"speedup_vs_heap"`
	// Fattree16WallSec is the 60-sim-second fattree:16 wall time
	// (BENCH8_FULL=1 runs only; 0 otherwise). Target: < 120 s.
	Fattree16WallSec    float64 `json:"fattree16_wall_seconds,omitempty"`
	Fattree16SimSecs    int     `json:"fattree16_sim_seconds,omitempty"`
	Fattree16Beacon     uint64  `json:"fattree16_beacon_ticks,omitempty"`
	Fattree16EventsSec  float64 `json:"fattree16_events_per_sec,omitempty"`
	Fattree16DevSimWall float64 `json:"fattree16_device_sim_seconds_per_wall_second,omitempty"`
	// JobsScaling maps campaign -jobs width to campaign wall seconds
	// for a seed sweep (BENCH8_FULL=1 and >= 2 CPUs only).
	JobsScaling map[string]float64 `json:"jobs_scaling,omitempty"`
	// AssertedMinSpeedup / AssertedMaxRegression record which gates
	// were armed when this record was written (0 = recorded only).
	AssertedMinSpeedup    float64 `json:"asserted_min_speedup"`
	AssertedMaxRegression float64 `json:"asserted_max_regression"`
	Note                  string  `json:"note"`
}

func BenchmarkEngineFattree8(b *testing.B) {
	const (
		topoSpec = "fattree:8"
		beacon   = 60000
		simSecs  = 10
	)
	var rec bench8Record
	for i := 0; i < b.N; i++ {
		rec = bench8Record{
			Benchmark:   "BenchmarkEngineFattree8",
			Topo:        topoSpec,
			BeaconTicks: beacon,
			SimSeconds:  simSecs,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Engine:      runEngine(b, topoSpec, beacon, simSecs),
			HeapRef:     runEngine(b, topoSpec, beacon, simSecs, WithHeapScheduler()),
		}
	}
	rec.SeedEventsPerSec = bench8Seed()
	rec.SeedCommit = seedBaselineCommit
	if rec.SeedEventsPerSec > 0 {
		rec.SpeedupVsSeed = rec.Engine.EventsSec / rec.SeedEventsPerSec
	}
	if rec.HeapRef.EventsSec > 0 {
		rec.SpeedupVsHeap = rec.Engine.EventsSec / rec.HeapRef.EventsSec
	}
	b.ReportMetric(rec.Engine.EventsSec, "events/sec")
	b.ReportMetric(rec.Engine.DevSimPerWall, "dev_sim_s/wall_s")
	b.ReportMetric(rec.SpeedupVsSeed, "speedup_vs_seed")
	b.ReportMetric(rec.SpeedupVsHeap, "speedup_vs_heap")

	full := os.Getenv("BENCH8_FULL") != ""
	if full {
		ft16 := runEngine(b, "fattree:16", bench16Beacon, bench16SimSecs)
		rec.Fattree16WallSec = ft16.WallSec
		rec.Fattree16SimSecs = bench16SimSecs
		rec.Fattree16Beacon = bench16Beacon
		rec.Fattree16EventsSec = ft16.EventsSec
		rec.Fattree16DevSimWall = ft16.DevSimPerWall
	}

	// Gates, armed only on >= 8 CPUs (the BENCH_5/BENCH_6 policy).
	armed := runtime.NumCPU() >= 8
	if armed {
		rec.AssertedMinSpeedup = 5
		if rec.SpeedupVsSeed < rec.AssertedMinSpeedup {
			b.Errorf("engine %.0f events/sec is only %.2fx the seed baseline %.0f (want >= %.0fx)",
				rec.Engine.EventsSec, rec.SpeedupVsSeed, rec.SeedEventsPerSec, rec.AssertedMinSpeedup)
		}
		if full && rec.Fattree16WallSec > 120 {
			b.Errorf("fattree:16 %d-sim-second run took %.1f s wall (want < 120 s)",
				bench16SimSecs, rec.Fattree16WallSec)
		}
	}
	if base := os.Getenv("BENCH8_BASELINE"); base != "" {
		if prev, err := loadBench8(base); err == nil && prev.Engine.EventsSec > 0 {
			rec.AssertedMaxRegression = 0.15
			floor := prev.Engine.EventsSec * (1 - rec.AssertedMaxRegression)
			if armed && rec.Engine.EventsSec < floor {
				b.Errorf("regression gate: %.0f events/sec is more than 15%% below the committed baseline %.0f",
					rec.Engine.EventsSec, prev.Engine.EventsSec)
			}
			if !armed {
				rec.Note = fmt.Sprintf("regression gate disarmed: host has %d CPU(s), gates arm at >= 8", runtime.NumCPU())
			}
		}
	} else if !armed {
		rec.Note = fmt.Sprintf("gates disarmed: host has %d CPU(s), gates arm at >= 8", runtime.NumCPU())
	}

	if out := os.Getenv("BENCH8_OUT"); out != "" {
		buf, err := json.MarshalIndent(&rec, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// bench16Beacon / bench16SimSecs parameterize the fattree:16 capacity
// run: 1344 devices, 3072 links, 60 simulated seconds. The sparse
// 500000-tick (3.2 ms) cadence keeps the event count near 4×10^8 so the
// run finishes inside the 2-minute budget on the dev container while
// still exercising every layer of the hot path at warehouse scale.
const (
	bench16Beacon  = 500000
	bench16SimSecs = 60
)

func loadBench8(path string) (*bench8Record, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec bench8Record
	if err := json.Unmarshal(buf, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}
