package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	s := NewSummary(0)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Min() != 1 || s.Max() != 5 || s.Mean() != 3 {
		t.Fatalf("summary: %s", s)
	}
	if math.Abs(s.Stddev()-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("stddev %v", s.Stddev())
	}
	if s.MaxAbs() != 5 {
		t.Fatalf("maxabs %v", s.MaxAbs())
	}
	if s.Quantile(0.5) != 3 {
		t.Fatalf("median %v", s.Quantile(0.5))
	}
}

// TestSummaryQuantileNearestRank is the regression test for the index
// truncation bug: int(q*(len-1)) floors, so p99 of a small reservoir
// could never reach the top sample.
func TestSummaryQuantileNearestRank(t *testing.T) {
	s := NewSummary(0)
	for v := 1; v <= 10; v++ {
		s.Add(float64(v))
	}
	if got := s.Quantile(0.99); got != 10 {
		t.Fatalf("p99 of 1..10 = %v, want 10 (nearest rank)", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Fatalf("p100 = %v, want 10", got)
	}
	// round(0.33*9) = 3 -> 4th value.
	if got := s.Quantile(0.33); got != 4 {
		t.Fatalf("p33 = %v, want 4", got)
	}
}

func TestSummaryMaxAbsNegative(t *testing.T) {
	s := NewSummary(0)
	s.Add(-10)
	s.Add(3)
	if s.MaxAbs() != 10 {
		t.Fatalf("maxabs %v", s.MaxAbs())
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := NewSummary(0)
	if s.MaxAbs() != 0 || s.N() != 0 {
		t.Fatal("empty summary not neutral")
	}
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("quantile of empty should be NaN")
	}
	if s.String() != "n=0" {
		t.Fatal("empty string repr")
	}
}

func TestSummaryReservoirBounded(t *testing.T) {
	s := NewSummary(64)
	for i := 0; i < 10000; i++ {
		s.Add(float64(i))
	}
	if len(s.reservoir) != 64 {
		t.Fatalf("reservoir grew to %d", len(s.reservoir))
	}
	if s.N() != 10000 {
		t.Fatal("count wrong")
	}
}

// Property: mean and min/max match a direct computation.
func TestSummaryMomentsProperty(t *testing.T) {
	f := func(vs []float64) bool {
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true
			}
		}
		if len(vs) == 0 {
			return true
		}
		s := NewSummary(0)
		min, max, sum := math.Inf(1), math.Inf(-1), 0.0
		for _, v := range vs {
			s.Add(v)
			sum += v
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		mean := sum / float64(len(vs))
		return s.Min() == min && s.Max() == max && math.Abs(s.Mean()-mean) < 1e-6*(1+math.Abs(mean))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntHistPDF(t *testing.T) {
	h := NewIntHist()
	for i := 0; i < 3; i++ {
		h.Add(0)
	}
	h.Add(2)
	values, probs := h.PDF()
	if len(values) != 3 || values[0] != 0 || values[2] != 2 {
		t.Fatalf("values %v", values)
	}
	if probs[0] != 0.75 || probs[1] != 0 || probs[2] != 0.25 {
		t.Fatalf("probs %v", probs)
	}
	if h.Total() != 4 || h.Count(0) != 3 {
		t.Fatal("counts")
	}
	lo, hi := h.Range()
	if lo != 0 || hi != 2 {
		t.Fatal("range")
	}
	if !strings.Contains(h.String(), "0:0.7500") {
		t.Fatalf("string: %s", h.String())
	}
}

func TestIntHistEmpty(t *testing.T) {
	h := NewIntHist()
	v, p := h.PDF()
	if v != nil || p != nil {
		t.Fatal("empty PDF should be nil")
	}
}

func TestSeriesDecimation(t *testing.T) {
	s := NewSeries(100)
	for i := 0; i < 10000; i++ {
		s.Add(float64(i), float64(i)*2)
	}
	if s.Len() > 100 {
		t.Fatalf("series grew to %d", s.Len())
	}
	// Shape preserved: times strictly increasing, values consistent.
	for i := 1; i < s.Len(); i++ {
		if s.T[i] <= s.T[i-1] {
			t.Fatal("times not increasing after decimation")
		}
		if s.V[i] != s.T[i]*2 {
			t.Fatal("values decoupled from times")
		}
	}
	var b strings.Builder
	s.WriteTSV(&b)
	if len(strings.Split(strings.TrimSpace(b.String()), "\n")) != s.Len() {
		t.Fatal("TSV line count mismatch")
	}
}

func TestMovingAverage(t *testing.T) {
	v := []float64{0, 10, 0, 10, 0, 10}
	sm := MovingAverage(v, 2)
	want := []float64{0, 5, 5, 5, 5, 5}
	for i := range want {
		if sm[i] != want[i] {
			t.Fatalf("ma[%d] = %v, want %v", i, sm[i], want[i])
		}
	}
	id := MovingAverage(v, 1)
	for i := range v {
		if id[i] != v[i] {
			t.Fatal("window 1 should be identity")
		}
	}
}

func TestMovingAverageWindow10ShrinksSpikes(t *testing.T) {
	// The Figure 7b property: a ±16 spike train smooths to within ±4
	// with window 10 when spikes are sparse.
	v := make([]float64, 100)
	for i := range v {
		if i%25 == 0 {
			v[i] = 16
		}
	}
	sm := MovingAverage(v, 10)
	for i := 10; i < len(sm); i++ {
		if math.Abs(sm[i]) > 4 {
			t.Fatalf("smoothed spike %v at %d", sm[i], i)
		}
	}
}
