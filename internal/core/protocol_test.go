package core

import (
	"testing"

	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/topo"
)

// startPair builds and starts a two-node network with pinned oscillator
// offsets and runs until the handshake settles.
func startPair(t *testing.T, seed uint64, cfg Config, ppmA, ppmB float64) (*sim.Scheduler, *Network) {
	t.Helper()
	sch := sim.NewScheduler()
	n, err := NewNetwork(sch, seed, topo.Pair(), cfg,
		WithPPM(map[string]float64{"h0": ppmA, "h1": ppmB}))
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	sch.Run(5 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("pair did not complete INIT")
	}
	return sch, n
}

func TestPairCompletesInit(t *testing.T) {
	_, n := startPair(t, 1, DefaultConfig(), 100, -100)
	pa, pb := n.LinkPorts(0)
	if pa.State() != "synced" || pb.State() != "synced" {
		t.Fatalf("states %s/%s", pa.State(), pb.State())
	}
}

func TestMeasuredOWDInPaperRange(t *testing.T) {
	// §6.1: "The measured one-way delay between any two DTP devices was
	// 43 to 45 cycles" on 10 m cables. With α=3 the protocol's measured
	// value is d-2..d, so accept 41..45.
	for seed := uint64(1); seed <= 10; seed++ {
		_, n := startPair(t, seed, DefaultConfig(), 100, -100)
		pa, pb := n.LinkPorts(0)
		for _, p := range []*Port{pa, pb} {
			d := p.OWDUnits()
			if d < 41 || d > 45 {
				t.Fatalf("seed %d: %s measured OWD %d ticks, want 41..45", seed, p.Name(), d)
			}
		}
	}
}

func TestPairOffsetBoundedBy4T(t *testing.T) {
	// The headline result for directly connected nodes: |offset| <= 4
	// ticks (25.6 ns) even with worst-case ±100 ppm skew.
	sch, n := startPair(t, 7, DefaultConfig(), 100, -100)
	var worst int64
	for i := 0; i < 4000; i++ {
		sch.RunFor(50 * sim.Microsecond) // 200ms total
		o := n.TrueOffsetUnits(0, 1)
		if o < 0 {
			o = -o
		}
		if o > worst {
			worst = o
		}
	}
	if worst > 4 {
		t.Fatalf("pair offset reached %d ticks, bound is 4", worst)
	}
	if worst == 0 {
		t.Fatal("offset never moved — skew not being simulated?")
	}
}

func TestPairOffsetSamplesBounded(t *testing.T) {
	// The protocol's own estimator offset = t2 - t1 - OWD must also stay
	// within ±4 ticks (what Figure 6a/b plot).
	cfg := DefaultConfig()
	sch := sim.NewScheduler()
	n, err := NewNetwork(sch, 11, topo.Pair(), cfg,
		WithPPM(map[string]float64{"h0": 100, "h1": -100}))
	if err != nil {
		t.Fatal(err)
	}
	var min, max int64
	n.OnOffset = func(rx *Port, off int64) {
		if off < min {
			min = off
		}
		if off > max {
			max = off
		}
	}
	n.Start()
	sch.Run(200 * sim.Millisecond)
	if min < -4 || max > 4 {
		t.Fatalf("offset samples spanned [%d, %d] ticks, bound is ±4", min, max)
	}
	if min == 0 && max == 0 {
		t.Fatal("no offset samples collected")
	}
}

func TestGlobalCounterNeverRatchets(t *testing.T) {
	// With α=3 the measured OWD never exceeds the true delay, so mutual
	// adjustment must not drive the global counter faster than the
	// fastest oscillator (§3.3 "Two tick errors due to OWD").
	sch, n := startPair(t, 13, DefaultConfig(), 100, -100)
	start := n.Devices[0].GlobalCounter()
	t0 := sch.Now()
	sch.RunFor(2 * sim.Second)
	elapsed := (sch.Now() - t0).Seconds()
	gained := float64(n.Devices[0].GlobalCounter() - start)
	maxRate := 156.25e6 * (1 + 100e-6)
	if gained > maxRate*elapsed+8 {
		t.Fatalf("global counter gained %.0f ticks in %.2fs; max oscillator supplies %.0f",
			gained, elapsed, maxRate*elapsed)
	}
}

func TestCounterMonotoneUnderProtocol(t *testing.T) {
	sch, n := startPair(t, 17, DefaultConfig(), 100, -100)
	var prev [2]uint64
	for i := 0; i < 2000; i++ {
		sch.RunFor(10 * sim.Microsecond)
		for d := 0; d < 2; d++ {
			got := n.Devices[d].GlobalCounter()
			if got < prev[d] {
				t.Fatalf("device %d counter regressed %d -> %d", d, prev[d], got)
			}
			prev[d] = got
		}
	}
}

func TestPaperTreeBoundedBy4TD(t *testing.T) {
	// Figure 6a's setting structurally: the 12-node tree, every pair of
	// directly connected devices within 4T, network-wide within 4TD.
	sch := sim.NewScheduler()
	cfg := DefaultConfig()
	n, err := NewNetwork(sch, 23, topo.PaperTree(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	sch.Run(10 * sim.Millisecond) // settle: INIT + JOIN agreement
	var worstAdj, worstAll int64
	for i := 0; i < 400; i++ {
		sch.RunFor(250 * sim.Microsecond) // 100ms total
		if a := n.MaxAdjacentOffset(); a > worstAdj {
			worstAdj = a
		}
		if a := n.MaxPairwiseOffset(); a > worstAll {
			worstAll = a
		}
	}
	if worstAdj > 4 {
		t.Fatalf("adjacent offset reached %d ticks, bound 4", worstAdj)
	}
	if bound := n.BoundUnits(); worstAll > bound {
		t.Fatalf("network offset reached %d ticks, bound 4TD = %d", worstAll, bound)
	}
}

func TestBeaconInterval1200StillBounded(t *testing.T) {
	// Figure 6b: jumbo frames, beacon interval 1200 ticks. The analysis
	// allows intervals up to ~5000 ticks for the 2-tick beacon error.
	cfg := DefaultConfig()
	cfg.BeaconIntervalTicks = 1200
	sch, n := startPair(t, 29, cfg, 100, -100)
	var worst int64
	for i := 0; i < 2000; i++ {
		sch.RunFor(100 * sim.Microsecond)
		o := n.TrueOffsetUnits(0, 1)
		if o < 0 {
			o = -o
		}
		if o > worst {
			worst = o
		}
	}
	if worst > 4 {
		t.Fatalf("offset reached %d ticks at interval 1200", worst)
	}
}

func TestHugeBeaconIntervalViolatesBound(t *testing.T) {
	// Negative control (§3.3): beyond ~5000 ticks (32 us) the interval
	// contributes more than 2 ticks of error — at 60000 ticks and 200
	// ppm relative skew the offset must exceed 4 ticks between beacons.
	cfg := DefaultConfig()
	cfg.BeaconIntervalTicks = 60_000
	cfg.GuardUnits = 1 << 20 // disable the guard so drift is visible
	sch, n := startPair(t, 31, cfg, 100, -100)
	var worst int64
	for i := 0; i < 5000; i++ {
		sch.RunFor(20 * sim.Microsecond)
		o := n.TrueOffsetUnits(0, 1)
		if o < 0 {
			o = -o
		}
		if o > worst {
			worst = o
		}
	}
	if worst <= 4 {
		t.Fatalf("offset stayed at %d ticks despite a 60000-tick interval; model too forgiving", worst)
	}
}

func TestSaturatedLinkStillBounded(t *testing.T) {
	// Heavy MTU load: beacons restricted to interpacket gaps (~one per
	// 193 blocks). Figure 6a: precision unaffected by load.
	cfg := DefaultConfig()
	sch := sim.NewScheduler()
	n, err := NewNetwork(sch, 37, topo.Pair(), cfg,
		WithPPM(map[string]float64{"h0": 100, "h1": -100}))
	if err != nil {
		t.Fatal(err)
	}
	// Links come up idle (INIT measures the true delay), then the
	// saturating workload starts — the paper's sequence: the network
	// synchronizes at bring-up, load arrives afterwards.
	n.Start()
	sch.Run(5 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("pair did not sync")
	}
	n.SetGateAll(func(p *Port) TxGate { return NewSaturatedGate(1522, 0) })
	var worst int64
	for i := 0; i < 2000; i++ {
		sch.RunFor(100 * sim.Microsecond)
		o := n.TrueOffsetUnits(0, 1)
		if o < 0 {
			o = -o
		}
		if o > worst {
			worst = o
		}
	}
	if worst > 4 {
		t.Fatalf("offset reached %d ticks under saturation", worst)
	}
}

func TestChainOffsetScalesWithHops(t *testing.T) {
	// 4TD: a chain of D hops stays within 4*D ticks end to end.
	for _, hops := range []int{2, 4, 6} {
		sch := sim.NewScheduler()
		n, err := NewNetwork(sch, uint64(40+hops), topo.Chain(hops), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		n.Start()
		sch.Run(10 * sim.Millisecond)
		last := len(n.Devices) - 1
		var worst int64
		for i := 0; i < 200; i++ {
			sch.RunFor(250 * sim.Microsecond)
			o := n.TrueOffsetUnits(0, last)
			if o < 0 {
				o = -o
			}
			if o > worst {
				worst = o
			}
		}
		if bound := int64(4 * hops); worst > bound {
			t.Fatalf("chain(%d): end-to-end offset %d > bound %d", hops, worst, bound)
		}
	}
}
