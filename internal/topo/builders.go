package topo

import "fmt"

// DefaultCableM is the cable length used by builders: the paper's testbed
// used 10-meter Cisco copper twinax cables.
const DefaultCableM = 10.0

// PaperTree reproduces the evaluation topology of Figure 5: a tree of
// height two with root switch S0, intermediate switches S1–S3, and leaf
// hosts S4–S11 (S1: S4–S6, S2: S7–S8, S3: S9–S11, matching the pairs
// plotted in Figure 6). The maximum distance between any two leaves is
// four hops.
func PaperTree() Graph {
	g := Graph{}
	add := func(name string, k Kind) int {
		id := len(g.Nodes)
		g.Nodes = append(g.Nodes, Node{ID: id, Name: name, Kind: k})
		return id
	}
	s0 := add("s0", Switch)
	s1 := add("s1", Switch)
	s2 := add("s2", Switch)
	s3 := add("s3", Switch)
	leaves := make([]int, 0, 8)
	for i := 4; i <= 11; i++ {
		leaves = append(leaves, add(fmt.Sprintf("s%d", i), Host))
	}
	connect := func(a, b int) { g.Links = append(g.Links, Link{A: a, B: b, LengthM: DefaultCableM}) }
	connect(s0, s1)
	connect(s0, s2)
	connect(s0, s3)
	connect(s1, leaves[0]) // s4
	connect(s1, leaves[1]) // s5
	connect(s1, leaves[2]) // s6
	connect(s2, leaves[3]) // s7
	connect(s2, leaves[4]) // s8
	connect(s3, leaves[5]) // s9
	connect(s3, leaves[6]) // s10
	connect(s3, leaves[7]) // s11
	return g
}

// Star builds a timeserver-plus-clients topology through one switch: the
// PTP evaluation network of §6.1 (VelaSync grandmaster + IBM G8264 +
// servers; every path is two hops). Node 0 is the switch, node 1 the
// timeserver, nodes 2..n+1 the clients.
func Star(clients int) Graph {
	g := Graph{}
	sw := 0
	g.Nodes = append(g.Nodes, Node{ID: 0, Name: "sw", Kind: Switch})
	g.Nodes = append(g.Nodes, Node{ID: 1, Name: "timeserver", Kind: Host})
	g.Links = append(g.Links, Link{A: sw, B: 1, LengthM: DefaultCableM})
	for i := 0; i < clients; i++ {
		id := len(g.Nodes)
		g.Nodes = append(g.Nodes, Node{ID: id, Name: fmt.Sprintf("s%d", i+4), Kind: Host})
		g.Links = append(g.Links, Link{A: sw, B: id, LengthM: DefaultCableM})
	}
	return g
}

// Chain builds a linear chain host-switch-...-switch-host with the given
// number of hops (links). Used for the 4TD-vs-hops sweep: a chain of D
// hops has host diameter exactly D.
func Chain(hops int) Graph {
	if hops < 1 {
		panic("topo: chain needs at least one hop")
	}
	g := Graph{}
	g.Nodes = append(g.Nodes, Node{ID: 0, Name: "h0", Kind: Host})
	for i := 1; i < hops; i++ {
		g.Nodes = append(g.Nodes, Node{ID: i, Name: fmt.Sprintf("sw%d", i), Kind: Switch})
	}
	g.Nodes = append(g.Nodes, Node{ID: hops, Name: "h1", Kind: Host})
	for i := 0; i < hops; i++ {
		g.Links = append(g.Links, Link{A: i, B: i + 1, LengthM: DefaultCableM})
	}
	return g
}

// Pair builds two directly connected hosts.
func Pair() Graph {
	return Graph{
		Nodes: []Node{{ID: 0, Name: "h0", Kind: Host}, {ID: 1, Name: "h1", Kind: Host}},
		Links: []Link{{A: 0, B: 1, LengthM: DefaultCableM}},
	}
}

// FatTree builds a k-ary fat-tree (Al-Fares et al., the topology the
// paper cites for its six-hop diameter claim): k pods, each with k/2 edge
// and k/2 aggregation switches, (k/2)^2 core switches, and k^3/4 hosts.
// The longest host-to-host path is six hops.
func FatTree(k int) Graph {
	if k < 2 || k%2 != 0 {
		panic("topo: fat-tree arity must be even and >= 2")
	}
	g := Graph{}
	add := func(name string, kind Kind) int {
		id := len(g.Nodes)
		g.Nodes = append(g.Nodes, Node{ID: id, Name: name, Kind: kind})
		return id
	}
	half := k / 2
	core := make([]int, half*half)
	for i := range core {
		core[i] = add(fmt.Sprintf("core%d", i), Switch)
	}
	for p := 0; p < k; p++ {
		agg := make([]int, half)
		edge := make([]int, half)
		for i := 0; i < half; i++ {
			agg[i] = add(fmt.Sprintf("p%d-agg%d", p, i), Switch)
			edge[i] = add(fmt.Sprintf("p%d-edge%d", p, i), Switch)
		}
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				// Aggregation i connects to core group i.
				g.Links = append(g.Links, Link{A: agg[i], B: core[i*half+j], LengthM: DefaultCableM})
				g.Links = append(g.Links, Link{A: agg[i], B: edge[j], LengthM: DefaultCableM})
			}
		}
		for i := 0; i < half; i++ {
			for h := 0; h < half; h++ {
				host := add(fmt.Sprintf("p%d-h%d-%d", p, i, h), Host)
				g.Links = append(g.Links, Link{A: edge[i], B: host, LengthM: DefaultCableM})
			}
		}
	}
	return g
}
