package audit

import (
	"strings"
	"testing"

	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
	"github.com/dtplab/dtp/internal/topo"
)

// run builds an instrumented network + auditor and returns both plus the
// scheduler, without running any simulated time yet.
func newAudited(t *testing.T, g topo.Graph, seed uint64, cfg Config, ccfg core.Config, opts ...core.Option) (*core.Network, *Auditor, *telemetry.Registry, *telemetry.Tracer) {
	t.Helper()
	sch := sim.NewScheduler()
	n, err := core.NewNetwork(sch, seed, g, ccfg, opts...)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	tr := telemetry.NewTracer(4096)
	n.Instrument(reg, tr)
	a := New(n, cfg)
	a.Instrument(reg, tr)
	a.Start()
	n.Start()
	return n, a, reg, tr
}

func TestAuditorPairStaysInBound(t *testing.T) {
	n, a, reg, _ := newAudited(t, topo.Pair(), 1, DefaultConfig(), core.DefaultConfig())
	n.Sch.Run(200 * sim.Millisecond)

	if v := a.Violations(); v != 0 {
		t.Fatalf("pair: %d violations, want 0 (%s)", v, a.Summary())
	}
	if a.Checks() == 0 || a.PairChecks() == 0 {
		t.Fatalf("auditor idle: %s", a.Summary())
	}
	if !a.Converged() || a.TimeToSync() < 0 {
		t.Fatalf("pair never converged: %s", a.Summary())
	}
	if a.MinSlackUnits() <= 0 {
		t.Fatalf("min slack %d, want positive headroom", a.MinSlackUnits())
	}
	if w := a.WorstPairOffsetUnits(1, 0); w != a.WorstOffsetUnits() {
		t.Fatalf("pair worst %d != global worst %d", w, a.WorstOffsetUnits())
	}
	var b strings.Builder
	if err := telemetry.WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dtp_audit_checks_total",
		"dtp_audit_violations_total 0",
		`dtp_audit_pair_worst_offset_units{pair="h0-h1"}`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, b.String())
		}
	}
}

func TestAuditorFatTreeStaysInBound(t *testing.T) {
	n, a, _, _ := newAudited(t, topo.FatTree(4), 7, DefaultConfig(), core.DefaultConfig())
	n.Sch.Run(100 * sim.Millisecond)
	if v := a.Violations(); v != 0 {
		t.Fatalf("fattree: %d violations, want 0 (%s)", v, a.Summary())
	}
	if !a.Converged() {
		t.Fatalf("fattree never converged: %s", a.Summary())
	}
}

func TestAuditorHostsOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HostsOnly = true
	n, a, _, _ := newAudited(t, topo.PaperTree(), 3, cfg, core.DefaultConfig())
	n.Sch.Run(50 * sim.Millisecond)
	if v := a.Violations(); v != 0 {
		t.Fatalf("hosts-only: %d violations (%s)", v, a.Summary())
	}
	// 8 hosts -> 28 pairs per clean check; a switch-inclusive audit
	// would do 66. Infer the restriction from the per-check ratio.
	if a.Checks() == 0 || a.PairChecks()%28 != 0 {
		t.Fatalf("pair checks %d not a multiple of C(8,2)=28 (%s)", a.PairChecks(), a.Summary())
	}
}

// TestAuditorPartitionReconverge is the seed "partition-reconverge"
// scenario: cut the s0-s1 uplink of the paper tree, watch the auditor
// split the network into two audited components without false
// violations, then restore the link and require a recorded
// reconvergence.
func TestAuditorPartitionReconverge(t *testing.T) {
	n, a, _, _ := newAudited(t, topo.PaperTree(), 5, DefaultConfig(), core.DefaultConfig())
	n.Sch.Run(50 * sim.Millisecond)
	if !a.Converged() {
		t.Fatalf("tree never converged before partition: %s", a.Summary())
	}

	n.SetLinkDown(0) // s0-s1: splits {s1,s4,s5,s6} from the rest
	n.Sch.RunFor(20 * sim.Millisecond)
	if a.Converged() {
		t.Fatal("auditor still claims convergence across a partition")
	}

	n.SetLinkUp(0)
	n.Sch.RunFor(100 * sim.Millisecond)
	if v := a.Violations(); v != 0 {
		t.Fatalf("partition/heal produced %d violations, want 0 (%s)", v, a.Summary())
	}
	if !a.Converged() {
		t.Fatalf("network never reconverged after heal: %s", a.Summary())
	}
	if len(a.Reconvergences()) == 0 {
		t.Fatalf("no reconvergence recorded: %s", a.Summary())
	}
	if d := a.Reconvergences()[0]; d <= 0 {
		t.Fatalf("nonpositive reconvergence duration %v", d)
	}
}

// LiveBoundUnits is the serving plane's error-bound source: worst 4TD
// bound from one host to any audited peer, tracking the live link set.
func TestAuditorLiveBoundUnits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SoftwareMarginUnits = 8
	n, a, _, _ := newAudited(t, topo.PaperTree(), 9, cfg, core.DefaultConfig())

	if b := a.LiveBoundUnits("s4"); b != -1 {
		t.Fatalf("bound %d before any check, want -1", b)
	}
	n.Sch.Run(50 * sim.Millisecond)
	if !a.Converged() {
		t.Fatalf("tree never converged: %s", a.Summary())
	}

	// A leaf host's worst peer is a leaf under another aggregation
	// switch: 4 hops, 4 units each, plus the 8-unit software margin.
	leaf := a.LiveBoundUnits("s4")
	if leaf != 4*4+8 {
		t.Fatalf("s4 live bound %d units, want %d", leaf, 4*4+8)
	}
	// The root sits 2 hops from every host: strictly tighter.
	if root := a.LiveBoundUnits("s0"); root >= leaf {
		t.Fatalf("root bound %d not tighter than leaf bound %d", root, leaf)
	}
	if b := a.LiveBoundUnits("nosuch"); b != -1 {
		t.Fatalf("bound %d for unknown device, want -1", b)
	}

	// Partition: s4's subtree loses the rest of the tree, so it has no
	// honest all-pairs bound to serve until the link heals.
	n.SetLinkDown(0)
	n.Sch.RunFor(20 * sim.Millisecond)
	if b := a.LiveBoundUnits("s4"); b != -1 {
		t.Fatalf("partitioned s4 still reports bound %d, want -1", b)
	}
	n.SetLinkUp(0)
	n.Sch.RunFor(100 * sim.Millisecond)
	if b := a.LiveBoundUnits("s4"); b != leaf {
		t.Fatalf("healed s4 bound %d, want %d again", b, leaf)
	}
}

// HostsOnly auditors have no bound for switches — they are not audited.
func TestAuditorLiveBoundHostsOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HostsOnly = true
	n, a, _, _ := newAudited(t, topo.PaperTree(), 11, cfg, core.DefaultConfig())
	n.Sch.Run(50 * sim.Millisecond)
	if b := a.LiveBoundUnits("s0"); b != -1 {
		t.Fatalf("unaudited switch reports bound %d, want -1", b)
	}
	if b := a.LiveBoundUnits("s4"); b <= 0 {
		t.Fatalf("host bound %d, want positive", b)
	}
}

// brokenConfig deliberately breaks the resynchronization frequency
// invariant of §3.2: with worst-case ±100 ppm skew and a beacon interval
// stretched to 100000 ticks, counters drift ~20 units between beacons —
// past the 8-unit guard band — so every beacon is rejected as faulty and
// the counters decouple. The auditor must catch the resulting breach.
func brokenConfig() core.Config {
	ccfg := core.DefaultConfig()
	ccfg.BeaconIntervalTicks = 100000
	return ccfg
}

func TestAuditorDetectsBrokenBound(t *testing.T) {
	cfg := DefaultConfig()
	n, a, _, tr := newAudited(t, topo.Pair(), 2, cfg, brokenConfig(),
		core.WithPPM(map[string]float64{"h0": 100, "h1": -100}))
	tr.SetKinds() // firehose on: causal context needs beacon-level events
	n.Sch.Run(20 * sim.Millisecond)

	if a.Violations() == 0 {
		t.Fatalf("no violations despite broken beacon cadence: %s", a.Summary())
	}
	v := a.LastViolation()
	if v == nil {
		t.Fatal("violations counted but none emitted")
	}
	if v.A != "h0" || v.B != "h1" || v.Hops != 1 {
		t.Fatalf("violation identity wrong: %+v", v)
	}
	if abs(v.OffsetUnits) <= v.BoundUnits {
		t.Fatalf("emitted violation not out of bound: %+v", v)
	}
	if len(v.Context) == 0 {
		t.Fatal("violation has empty causal context")
	}
	for _, e := range v.Context {
		if e.Kind == telemetry.KindBoundViolation {
			t.Fatal("causal context polluted with violation events")
		}
		if !touches(e.Who, "h0") && !touches(e.Who, "h1") {
			t.Fatalf("context event %v does not touch either device", e)
		}
	}

	var found *telemetry.Event
	for _, e := range tr.Events() {
		if e.Kind == telemetry.KindBoundViolation {
			found = &e
			break
		}
	}
	if found == nil {
		t.Fatal("no bound_violation event in trace")
	}
	if found.Who != "h0~h1" || !strings.Contains(found.Detail, "hops=1") ||
		!strings.Contains(found.Detail, "ctx=[") {
		t.Fatalf("violation event malformed: %+v", found)
	}
}

// TestAuditorViolationEventCap checks that a persistently broken network
// emits at most MaxViolationEvents trace events per check while the
// counter keeps counting every breach.
func TestAuditorViolationEventCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxViolationEvents = 1
	n, a, _, tr := newAudited(t, topo.Star(4), 2, cfg, brokenConfig(),
		core.WithPPM(map[string]float64{"sw": 100, "timeserver": -100,
			"s4": -100, "s5": -100, "s6": -100, "s7": -100}))
	n.Sch.Run(20 * sim.Millisecond)

	if a.Violations() == 0 {
		t.Skip("star did not desynchronize under this seed; covered by pair test")
	}
	emitted := 0
	for _, e := range tr.Events() {
		if e.Kind == telemetry.KindBoundViolation {
			emitted++
		}
	}
	if emitted == 0 {
		t.Fatal("no violation events emitted")
	}
	if uint64(emitted) >= a.Violations() && a.Violations() > uint64(a.cfgChecks()) {
		t.Fatalf("event cap not applied: %d events for %d violations", emitted, a.Violations())
	}
}

// cfgChecks exposes the check count as an int for the cap test.
func (a *Auditor) cfgChecks() int { return int(a.checks) }

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestExpectDegradationExcusesWindows: breaches inside a declared
// expected-degradation window count as excused, breaches outside it
// still count as violations, and both surface in metrics and Summary.
func TestExpectDegradationExcusesWindows(t *testing.T) {
	n, a, reg, _ := newAudited(t, topo.Pair(), 2, DefaultConfig(), brokenConfig(),
		core.WithPPM(map[string]float64{"h0": 100, "h1": -100}))
	// The broken cadence desynchronizes the pair permanently; excuse
	// only the first stretch of the run.
	a.ExpectDegradation(0, 10*sim.Millisecond, "test fault")
	n.Sch.Run(25 * sim.Millisecond)

	if a.ExcusedViolations() == 0 {
		t.Fatalf("no excused breaches inside the window: %s", a.Summary())
	}
	if a.Violations() == 0 {
		t.Fatalf("no violations after the window expired: %s", a.Summary())
	}
	if !strings.Contains(a.Summary(), "excused") {
		t.Fatalf("Summary hides excused breaches: %s", a.Summary())
	}
	var b strings.Builder
	if err := telemetry.WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dtp_audit_violations_excused_total") {
		t.Fatal("excused metric not exported")
	}
}

// TestExpectDegradationFullCover: a window covering the whole run means
// zero unexcused violations — the invariant chaos campaigns assert.
func TestExpectDegradationFullCover(t *testing.T) {
	n, a, _, _ := newAudited(t, topo.Pair(), 2, DefaultConfig(), brokenConfig(),
		core.WithPPM(map[string]float64{"h0": 100, "h1": -100}))
	a.ExpectDegradation(0, sim.Time(1)*sim.Second, "covers everything")
	n.Sch.Run(20 * sim.Millisecond)

	if a.ExcusedViolations() == 0 {
		t.Fatalf("broken network produced no breaches at all: %s", a.Summary())
	}
	if v := a.Violations(); v != 0 {
		t.Fatalf("%d unexcused violations inside a full-cover window: %s", v, a.Summary())
	}
}
