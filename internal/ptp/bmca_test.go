package ptp

import (
	"math"
	"testing"

	"github.com/dtplab/dtp/internal/fabric"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/topo"
)

// failoverRig: star with a primary GM (node 1, priority 10), a backup
// GM (node 2, priority 20) whose clock carries a constant +300 ns bias
// (a poorer reference), and clients on nodes 3..5.
func failoverRig(t *testing.T, seed uint64) (*sim.Scheduler, *Grandmaster, *Grandmaster, []*Client) {
	t.Helper()
	sch := sim.NewScheduler()
	net, err := fabric.New(sch, seed, topo.Star(4), fabric.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig().Compressed(50)
	clients := []int{3, 4, 5}
	primary := NewGrandmaster(net, 1, clients, cfg, seed+1)
	primary.Priority = 10
	backup := NewGrandmaster(net, 2, clients, cfg, seed+2)
	backup.Priority = 20
	backup.source = func(ts sim.Time) float64 { return float64(ts) + 300_000 } // +300 ns bias
	var cs []*Client
	for i, cn := range clients {
		c := NewClient(net, cn, 1, cfg, seed+10+uint64(i))
		c.Start()
		cs = append(cs, c)
	}
	primary.Start()
	backup.Start()
	return sch, primary, backup, cs
}

func TestBMCAPrefersLowerPriority(t *testing.T) {
	sch, _, _, cs := failoverRig(t, 1)
	sch.Run(3 * sim.Second)
	for _, c := range cs {
		if c.Master() != 1 {
			t.Fatalf("client selected node %d, want primary 1", c.Master())
		}
		if c.MasterSwitches() != 0 {
			t.Fatalf("client switched %d times with a healthy primary", c.MasterSwitches())
		}
		if off := math.Abs(c.OffsetToMasterPs()) / 1000; off > 1000 {
			t.Fatalf("client offset %.0f ns under primary", off)
		}
	}
}

func TestBMCAFailsOverAndBack(t *testing.T) {
	sch, primary, _, cs := failoverRig(t, 3)
	sch.Run(3 * sim.Second)

	// Primary dies: clients must adopt the backup within a few announce
	// timeouts and converge to its (biased) clock.
	primary.Stop()
	sch.RunFor(3 * sim.Second)
	for _, c := range cs {
		if c.Master() != 2 {
			t.Fatalf("client still on node %d after primary death", c.Master())
		}
		if c.MasterSwitches() == 0 {
			t.Fatal("no failover recorded")
		}
		// The backup runs +300 ns fast; converged clients inherit that.
		off := c.OffsetToMasterPs() / 1000
		if off < 100 || off > 500 {
			t.Fatalf("client offset %.0f ns; want ~+300 (tracking the biased backup)", off)
		}
	}

	// Primary returns: BMCA must move everyone back.
	primary.Start()
	sch.RunFor(3 * sim.Second)
	for _, c := range cs {
		if c.Master() != 1 {
			t.Fatalf("client did not return to the primary (on %d)", c.Master())
		}
		if off := math.Abs(c.OffsetToMasterPs()) / 1000; off > 150 {
			t.Fatalf("client offset %.0f ns after returning to primary", off)
		}
	}
}

func TestBMCAIgnoresForeignSyncs(t *testing.T) {
	// Both masters send Syncs; clients must only consume the selected
	// one's. If foreign Syncs leaked into the servo, the +300 ns backup
	// bias would contaminate offsets under the healthy primary.
	sch, _, _, cs := failoverRig(t, 5)
	sch.Run(4 * sim.Second)
	for _, c := range cs {
		off := c.OffsetToMasterPs() / 1000
		if off > 150 {
			t.Fatalf("offset %.0f ns suggests backup Syncs leaked into the servo", off)
		}
	}
}
