package telemetry

import (
	"math"
	"strings"
	"testing"

	"github.com/dtplab/dtp/internal/sim"
)

func TestTimelineSampling(t *testing.T) {
	sch := sim.NewScheduler()
	tl := NewTimeline(sim.Millisecond, 8)
	var g float64
	var cum float64
	tl.Gauge("g", func() float64 { return g })
	tl.Rate("r", func() float64 { return cum })
	tl.Start(sch)
	for i := 0; i < 5; i++ {
		g = float64(i + 1)
		cum += 1000 // +1000/ms = 1e6/s
		sch.RunFor(sim.Millisecond)
	}
	rows := tl.Rows()
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	if got := tl.Columns(); len(got) != 2 || got[0] != "g" || got[1] != "r" {
		t.Fatalf("columns = %v", got)
	}
	for i, r := range rows {
		if want := sim.Millisecond * sim.Time(i+1); r.At != want {
			t.Errorf("row %d at %v, want %v", i, r.At, want)
		}
		if r.V[0] != float64(i+1) {
			t.Errorf("row %d gauge = %g, want %d", i, r.V[0], i+1)
		}
		if math.Abs(r.V[1]-1e6) > 1 {
			t.Errorf("row %d rate = %g, want 1e6", i, r.V[1])
		}
	}
}

func TestTimelineRingEviction(t *testing.T) {
	sch := sim.NewScheduler()
	tl := NewTimeline(sim.Millisecond, 4)
	n := 0.0
	tl.Gauge("n", func() float64 { n++; return n })
	tl.Start(sch)
	sch.RunFor(10 * sim.Millisecond)
	rows := tl.Rows()
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (ring cap)", len(rows))
	}
	if tl.Total() != 10 {
		t.Fatalf("total = %d, want 10", tl.Total())
	}
	// The retained window is the most recent 4 samples, in order.
	if rows[0].V[0] != 7 || rows[3].V[0] != 10 {
		t.Fatalf("window = [%g..%g], want [7..10]", rows[0].V[0], rows[3].V[0])
	}
}

func TestTimelineJSONLDeterminism(t *testing.T) {
	run := func() string {
		sch := sim.NewScheduler()
		tl := NewTimeline(100*sim.Microsecond, 16)
		i := 0.0
		tl.Gauge("v", func() float64 { i++; return i * 1.5 })
		tl.Gauge("nan", func() float64 { return math.NaN() })
		tl.Start(sch)
		sch.RunFor(sim.Millisecond)
		var b strings.Builder
		if err := tl.WriteJSONL(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs serialized differently:\n%s\n---\n%s", a, b)
	}
	if !strings.HasPrefix(a, `{"schema":"dtp-timeline/1","interval_ps":100000000,"columns":["v","nan"],"rows":10,"total":10,"dropped":0}`) {
		t.Fatalf("unexpected header: %s", a[:strings.IndexByte(a, '\n')])
	}
	if !strings.Contains(a, `,null]`) {
		t.Fatalf("NaN column should render null:\n%s", a)
	}
}

func TestTimelineColumnQuantile(t *testing.T) {
	sch := sim.NewScheduler()
	tl := NewTimeline(sim.Millisecond, 128)
	i := 0.0
	tl.Gauge("v", func() float64 { i++; return i })
	tl.Start(sch)
	sch.RunFor(100 * sim.Millisecond)
	if q := tl.ColumnQuantile("v", 0.5); q < 49 || q > 52 {
		t.Fatalf("p50 = %g, want ~50", q)
	}
	if q := tl.ColumnQuantile("absent", 0.5); !math.IsNaN(q) {
		t.Fatalf("unknown column quantile = %g, want NaN", q)
	}
}

func TestTimelineNilSafety(t *testing.T) {
	var tl *Timeline
	tl.Gauge("x", func() float64 { return 0 })
	tl.Start(sim.NewScheduler())
	if tl.Rows() != nil || tl.Columns() != nil || tl.Total() != 0 {
		t.Fatal("nil timeline should be empty")
	}
	if err := tl.WriteJSONL(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceJSONLHeaderRoundTrip(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 7; i++ {
		tr.Record(sim.Time(i), KindLinkUp, "s1[0]", int64(i), 0, "")
	}
	var b strings.Builder
	if err := WriteJSONL(&b, tr); err != nil {
		t.Fatal(err)
	}
	first := b.String()[:strings.IndexByte(b.String(), '\n')]
	if want := `{"schema":"dtp-trace/1","events":4,"total":7,"dropped":3}`; first != want {
		t.Fatalf("header = %s, want %s", first, want)
	}
	events, hdr, err := ReadJSONLHeader(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr == nil || hdr.Dropped != 3 || hdr.Total != 7 || hdr.Events != 4 {
		t.Fatalf("header round-trip = %+v", hdr)
	}
	if len(events) != 4 || events[0].Seq != 4 {
		t.Fatalf("events = %d (first seq %d), want 4 starting at seq 4", len(events), events[0].Seq)
	}
	// Headerless dumps (WriteEvents output) still parse.
	var raw strings.Builder
	if err := WriteEvents(&raw, tr.Events()); err != nil {
		t.Fatal(err)
	}
	events, hdr, err = ReadJSONLHeader(strings.NewReader(raw.String()))
	if err != nil || hdr != nil || len(events) != 4 {
		t.Fatalf("headerless parse: events=%d hdr=%v err=%v", len(events), hdr, err)
	}
}

func TestTracerDroppedAndObserver(t *testing.T) {
	tr := NewTracer(2)
	var seen []Event
	tr.OnRecord(func(e Event) {
		// Reading the tracer back from the observer must not deadlock.
		_ = tr.Dropped()
		seen = append(seen, e)
	})
	for i := 0; i < 5; i++ {
		tr.Record(sim.Time(i), KindLinkDown, "s1[0]", 0, 0, "")
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
	if len(seen) != 5 {
		t.Fatalf("observer saw %d events, want 5", len(seen))
	}
	tr.OnRecord(nil)
	tr.Record(5, KindLinkDown, "s1[0]", 0, 0, "")
	if len(seen) != 5 {
		t.Fatal("uninstalled observer still firing")
	}
	// Masked kinds never reach the observer.
	tr.OnRecord(func(e Event) { seen = append(seen, e) })
	tr.SetKinds(KindLinkUp)
	tr.Record(6, KindLinkDown, "s1[0]", 0, 0, "")
	if len(seen) != 5 {
		t.Fatal("masked kind reached observer")
	}
}
