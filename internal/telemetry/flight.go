package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"github.com/dtplab/dtp/internal/sim"
)

// FlightSchema is the bundle file's schema identifier.
const FlightSchema = "dtp-flight/1"

// FlightConfig configures a Recorder.
type FlightConfig struct {
	// Dir is where bundles are written (created if absent). Required.
	Dir string
	// Seed stamps every bundle and its filename, tying a bundle back to
	// the deterministic run that produced it.
	Seed int64
	// MaxBundles caps how many bundles one run may write (default 4);
	// further triggers are counted as suppressed instead of flooding the
	// disk when a run melts down completely.
	MaxBundles int
	// Cooldown is the minimum simulated time between two bundles for the
	// same reason (default 1 ms). A bound violation that fires on every
	// audit tick produces one bundle per cooldown window, not hundreds.
	Cooldown sim.Time
	// TraceDepth is how many trailing trace events a bundle embeds
	// (default 256).
	TraceDepth int
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.MaxBundles <= 0 {
		c.MaxBundles = 4
	}
	if c.Cooldown <= 0 {
		c.Cooldown = sim.Millisecond
	}
	if c.TraceDepth <= 0 {
		c.TraceDepth = 256
	}
	return c
}

// Recorder is the flight recorder: an always-on black box that, when a
// trigger fires (an armed trace kind, or an explicit Trigger call from
// e.g. a stale read or a failed chaos postcondition), dumps a causally
// ordered debug bundle — trailing trace events, a metrics scrape, the
// timeline window, and every registered state provider's view — to a
// seed-deterministic JSON file. The cost of the always-on part is
// whatever the tracer and timeline already cost; the recorder itself
// does nothing until a trigger fires.
//
// Trigger and the armed observer run on whichever goroutine records the
// event (the simulation goroutine in every current caller); a mutex
// serializes dumps so concurrent triggers cannot interleave files.
type Recorder struct {
	cfg FlightConfig
	reg *Registry
	tr  *Tracer
	tl  *Timeline
	now func() sim.Time

	mu         sync.Mutex
	states     []stateProvider
	lastByWhy  map[string]sim.Time
	firedByWhy map[string]bool
	bundles    []string
	suppressed uint64
	err        error
}

type stateProvider struct {
	name string
	fn   func() any
}

// NewRecorder builds a flight recorder writing into cfg.Dir. Any of
// reg, tr, tl may be nil — the corresponding bundle section is simply
// absent. now supplies the simulated clock for cooldown bookkeeping and
// bundle timestamps (nil means a frozen clock: the first trigger per
// reason dumps, repeats are cooldown-suppressed).
func NewRecorder(cfg FlightConfig, reg *Registry, tr *Tracer, tl *Timeline, now func() sim.Time) (*Recorder, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("telemetry: flight recorder needs a directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: flight dir: %w", err)
	}
	if now == nil {
		now = func() sim.Time { return 0 }
	}
	return &Recorder{
		cfg: cfg.withDefaults(), reg: reg, tr: tr, tl: tl, now: now,
		lastByWhy:  make(map[string]sim.Time),
		firedByWhy: make(map[string]bool),
	}, nil
}

// AddState registers a named state provider, invoked at dump time on
// the triggering goroutine. Providers return any JSON-marshalable value
// (maps serialize with sorted keys, keeping bundles byte-deterministic).
func (r *Recorder) AddState(name string, fn func() any) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.states = append(r.states, stateProvider{name: name, fn: fn})
}

// Arm installs a tracer observer that triggers a dump whenever one of
// the listed kinds is recorded (typically KindBoundViolation and
// KindPortDemoted). The event's kind name becomes the bundle reason and
// its Who the detail. No-op without a tracer.
func (r *Recorder) Arm(kinds ...Kind) {
	if r == nil || r.tr == nil || len(kinds) == 0 {
		return
	}
	var mask uint64
	for _, k := range kinds {
		mask |= 1 << k
	}
	r.tr.OnRecord(func(e Event) {
		if mask&(1<<e.Kind) != 0 {
			r.Trigger(e.Kind.String(), e.Who)
		}
	})
}

// Trigger requests a bundle dump for the given reason. Dumps are
// suppressed (and counted) when the per-reason cooldown has not elapsed
// or the run's bundle budget is spent, so callers may invoke it
// unconditionally on every suspicious event.
func (r *Recorder) Trigger(reason, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	at := r.now()
	if len(r.bundles) >= r.cfg.MaxBundles {
		r.suppressed++
		return
	}
	if r.firedByWhy[reason] && at-r.lastByWhy[reason] < r.cfg.Cooldown {
		r.suppressed++
		return
	}
	r.firedByWhy[reason] = true
	r.lastByWhy[reason] = at
	if err := r.dump(at, reason, detail); err != nil && r.err == nil {
		r.err = err
	}
}

// dump assembles and writes one bundle. Caller holds r.mu.
func (r *Recorder) dump(at sim.Time, reason, detail string) error {
	b := Bundle{
		Schema: FlightSchema,
		Seed:   r.cfg.Seed,
		Seq:    len(r.bundles),
		Reason: reason,
		Detail: detail,
		TPs:    int64(at),
	}
	if r.tr != nil {
		events := r.tr.Events()
		total := r.tr.Total()
		if len(events) > r.cfg.TraceDepth {
			events = events[len(events)-r.cfg.TraceDepth:]
		}
		bt := &BundleTrace{Total: total, Dropped: total - uint64(len(events))}
		bt.Events = make([]BundleEvent, len(events))
		for i, e := range events {
			bt.Events[i] = BundleEvent{
				Seq: e.Seq, TPs: int64(e.At), Kind: e.Kind.String(),
				Who: e.Who, V1: e.V1, V2: e.V2, Detail: e.Detail,
			}
		}
		b.Trace = bt
	}
	if r.reg != nil {
		var sb strings.Builder
		if err := WritePrometheus(&sb, r.reg); err == nil {
			b.Metrics = sb.String()
		}
	}
	if r.tl != nil {
		bt := &BundleTimeline{
			IntervalPs: int64(r.tl.Interval()),
			Columns:    r.tl.Columns(),
		}
		for _, row := range r.tl.Rows() {
			br := BundleRow{TPs: int64(row.At), V: make([]jsonNum, len(row.V))}
			for i, v := range row.V {
				br.V[i] = jsonNum(v)
			}
			bt.Rows = append(bt.Rows, br)
		}
		b.Timeline = bt
	}
	if len(r.states) > 0 {
		b.State = make(map[string]json.RawMessage, len(r.states))
		for _, sp := range r.states {
			raw, err := json.Marshal(sp.fn())
			if err != nil {
				raw = json.RawMessage(strconv.Quote("marshal error: " + err.Error()))
			}
			b.State[sp.name] = raw
		}
	}
	name := fmt.Sprintf("flight-%d-%02d-%s.json", r.cfg.Seed, b.Seq, reason)
	path := filepath.Join(r.cfg.Dir, name)
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: flight bundle: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("telemetry: flight bundle: %w", err)
	}
	r.bundles = append(r.bundles, path)
	return nil
}

// Bundles returns the paths of the bundles written so far.
func (r *Recorder) Bundles() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.bundles...)
}

// Suppressed returns how many triggers were swallowed by the cooldown
// or the bundle budget.
func (r *Recorder) Suppressed() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.suppressed
}

// Err returns the first dump error, if any (a trigger never fails the
// run it is documenting).
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Bundle is the on-disk flight bundle. Field order (and json's sorted
// map keys) make the file byte-deterministic for a deterministic run.
type Bundle struct {
	Schema   string                     `json:"schema"`
	Seed     int64                      `json:"seed"`
	Seq      int                        `json:"seq"`
	Reason   string                     `json:"reason"`
	Detail   string                     `json:"detail,omitempty"`
	TPs      int64                      `json:"t_ps"`
	Trace    *BundleTrace               `json:"trace,omitempty"`
	Metrics  string                     `json:"metrics,omitempty"`
	Timeline *BundleTimeline            `json:"timeline,omitempty"`
	State    map[string]json.RawMessage `json:"state,omitempty"`
}

// BundleTrace is the bundle's embedded trace window.
type BundleTrace struct {
	Total   uint64        `json:"total"`
	Dropped uint64        `json:"dropped"`
	Events  []BundleEvent `json:"events"`
}

// BundleEvent mirrors the JSONL trace schema inside a bundle.
type BundleEvent struct {
	Seq    uint64 `json:"seq"`
	TPs    int64  `json:"t_ps"`
	Kind   string `json:"kind"`
	Who    string `json:"who"`
	V1     int64  `json:"v1"`
	V2     int64  `json:"v2"`
	Detail string `json:"detail,omitempty"`
}

// BundleTimeline is the bundle's embedded timeline window.
type BundleTimeline struct {
	IntervalPs int64       `json:"interval_ps"`
	Columns    []string    `json:"columns"`
	Rows       []BundleRow `json:"rows"`
}

// BundleRow is one timeline row inside a bundle.
type BundleRow struct {
	TPs int64     `json:"t_ps"`
	V   []jsonNum `json:"v"`
}

// jsonNum is a float64 that marshals NaN/±Inf as null (encoding/json
// rejects them) and otherwise uses formatFloat's deterministic spelling.
type jsonNum float64

func (n jsonNum) MarshalJSON() ([]byte, error) {
	f := float64(n)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return []byte("null"), nil
	}
	return []byte(formatFloat(f)), nil
}

func (n *jsonNum) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*n = jsonNum(math.NaN())
		return nil
	}
	f, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return err
	}
	*n = jsonNum(f)
	return nil
}

// LoadBundle reads and validates a flight bundle: schema identifier,
// trace kinds, and timeline row/column consistency. Analysis tooling
// (dtptrace -bundle) uses it to reject truncated or foreign files
// before walking garbage.
func LoadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: load bundle: %w", err)
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("telemetry: bundle %s: %w", filepath.Base(path), err)
	}
	if b.Schema != FlightSchema {
		return nil, fmt.Errorf("telemetry: bundle %s: unknown schema %q", filepath.Base(path), b.Schema)
	}
	if b.Trace != nil {
		for i, e := range b.Trace.Events {
			if _, ok := KindFromString(e.Kind); !ok {
				return nil, fmt.Errorf("telemetry: bundle %s: event %d: unknown kind %q", filepath.Base(path), i, e.Kind)
			}
		}
	}
	if b.Timeline != nil {
		for i, row := range b.Timeline.Rows {
			if len(row.V) != len(b.Timeline.Columns) {
				return nil, fmt.Errorf("telemetry: bundle %s: timeline row %d has %d values for %d columns",
					filepath.Base(path), i, len(row.V), len(b.Timeline.Columns))
			}
		}
	}
	return &b, nil
}
