// Package sim provides the discrete-event simulation kernel used by every
// other package in this repository: a picosecond-resolution virtual clock,
// a cancellable event scheduler, and deterministic per-component random
// number streams.
//
// Design note: clock oscillators in this codebase tick every ~6.4 ns with
// parts-per-million skew, so event timestamps need sub-nanosecond
// resolution over minutes of simulated time. int64 picoseconds covers
// ±106 days, which is far more than any experiment runs.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, measured in integer picoseconds since
// the start of the simulation.
type Time int64

// Duration units expressed in simulated picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Femto converts a femtosecond count to Time, rounding toward zero.
func Femto(fs int64) Time { return Time(fs / 1000) }

// Fs returns t in femtoseconds. It panics if the result would overflow,
// which happens only past ~9223 simulated seconds; experiments re-base
// long before that.
func (t Time) Fs() int64 {
	const maxFs = int64(9_223_372_036_854_775) // max int64 / 1000, in ps
	if int64(t) > maxFs || int64(t) < -maxFs {
		panic(fmt.Sprintf("sim: %d ps overflows femtosecond representation", int64(t)))
	}
	return int64(t) * 1000
}

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds returns t as floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Std converts t to a time.Duration (nanosecond resolution, truncated).
func (t Time) Std() time.Duration { return time.Duration(int64(t) / 1000) }

// FromStd converts a time.Duration to simulated Time.
func FromStd(d time.Duration) Time { return Time(d.Nanoseconds()) * Nanosecond }

// String renders the time with an adaptive unit, e.g. "1.2805us".
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", int64(t/Second))
	case t > Second || t < -Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t > Millisecond || t < -Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t > Microsecond || t < -Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	case t > Nanosecond || t < -Nanosecond:
		return fmt.Sprintf("%.6gns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}
