package discipline

import (
	"math"
	"testing"
)

// Synthetic stream parameters mirroring the daemon's environment: one
// counter tick is 6.4 ns, so the nominal ratio is 1.5625e-4 units per
// TSC picosecond; calibrations arrive every 10 ms; the latch window
// half-range of a ~450 ns PCIe read is 45 000 ps (~7 units).
const (
	testNominal = 1.5625e-4
	testDT      = 1e10 // ps between calibrations
	testLatchPs = 45000
)

// triWave is a deterministic stand-in for latch noise: a ±1 triangle
// wave with period 8, scaled by amp.
func triWave(i int, amp float64) float64 {
	phase := i % 8
	table := [8]float64{0, 0.5, 1, 0.5, 0, -0.5, -1, -0.5}
	return amp * table[phase]
}

// stream produces n samples along a line of the given true ratio with
// jit(i) counter units of measurement noise.
func stream(n int, ratio float64, jit func(i int) float64) []Sample {
	out := make([]Sample, n)
	const tsc0, dtp0 = 5e12, 7e11
	for i := 0; i < n; i++ {
		tsc := tsc0 + float64(i)*testDT
		out[i] = Sample{
			DTP:        dtp0 + ratio*(tsc-tsc0) + jit(i),
			TSC:        tsc,
			LatchErrPs: testLatchPs,
		}
	}
	return out
}

// noisy adds a ±20-unit contention spike every 13th sample on top of a
// ±3-unit triangle wave — the Figure 7a shape, made deterministic.
func noisy(i int) float64 {
	j := triWave(i, 3)
	if i%13 == 12 {
		if (i/13)%2 == 0 {
			j += 20
		} else {
			j -= 20
		}
	}
	return j
}

// noisyStream pairs noisy with the latch-window bound the daemon would
// report: a contention spike lengthens the measured read, so the
// per-sample worst-case latch error widens with it (that widening is
// what keeps the ma self-report honest on spike calibrations).
func noisyStream(n int, ratio float64) []Sample {
	out := stream(n, ratio, noisy)
	for i := range out {
		if i%13 == 12 {
			out[i].LatchErrPs = 200000 // ~31 units: covers the 20-unit spike
		}
	}
	return out
}

func mustNew(t *testing.T, cfg Config) Discipline {
	t.Helper()
	d, err := cfg.New(testNominal)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return d
}

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want Config
	}{
		{"", Config{}},
		{"ma", Config{Kind: "ma"}},
		{"ma:gain=0.3", Config{Kind: "ma", Gain: 0.3}},
		{"pll:kp=0.5,ki=0.2", Config{Kind: "pll", KP: 0.5, KI: 0.2}},
		{"theilsen:window=32", Config{Kind: "theilsen", Window: 32}},
		{"lad:window=24,dropk=3", Config{Kind: "lad", Window: 24, DropK: 3}},
	}
	for _, c := range cases {
		got, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Fatalf("Parse(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		if c.spec != "" {
			round, err := Parse(got.String())
			if err != nil || round != got {
				t.Fatalf("String round trip of %q: got %+v (%v)", c.spec, round, err)
			}
		}
	}
	for _, bad := range []string{"kalman", "ma:gain", "ma:gain=x", "lad:window=1", "pll:kp=7", "ma:foo=1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): want error, got nil", bad)
		}
	}
}

func TestKindsConstructible(t *testing.T) {
	for _, kind := range Kinds() {
		d := mustNew(t, Config{Kind: kind})
		if d.Name() != kind {
			t.Errorf("Config{Kind:%q}.New().Name() = %q", kind, d.Name())
		}
		if d.Model().Valid {
			t.Errorf("%s: model valid before any sample", kind)
		}
		if got := d.Model().Ratio; got != testNominal {
			t.Errorf("%s: initial ratio %g, want nominal %g", kind, got, testNominal)
		}
		if !math.IsInf(d.Model().ErrorAt(1e12), 1) {
			t.Errorf("%s: ErrorAt before first sample should be +Inf", kind)
		}
	}
	if _, err := (Config{Kind: "nope"}).New(testNominal); err == nil {
		t.Error("unknown kind: want error")
	}
}

// TestConvergence feeds every discipline the same deterministic noisy
// ramp (true frequency 60 ppm off nominal) and checks the steady-state
// estimate and ratio against per-discipline golden bounds. The robust
// regressions must beat the paper's EWMA on the spike samples.
func TestConvergence(t *testing.T) {
	const truthPPM = 60
	ratio := testNominal * (1 + truthPPM*1e-6)
	samples := noisyStream(260, ratio)
	cases := []struct {
		cfg         Config
		maxAbsOff   float64 // steady-state |estimate-truth| at sample times, units
		maxRatioPPM float64
	}{
		{Config{Kind: "ma"}, 25, 10},
		{Config{Kind: "pll"}, 18, 5},
		{Config{Kind: "theilsen"}, 6, 5},
		{Config{Kind: "lad"}, 6, 5},
	}
	for _, c := range cases {
		t.Run(c.cfg.Kind, func(t *testing.T) {
			d := mustNew(t, c.cfg)
			var worst float64
			for i, s := range samples {
				m := d.Feed(s)
				if i < 100 {
					continue
				}
				truth := s.DTP - noisy(i)
				if off := math.Abs(m.EstimateAt(s.TSC) - truth); off > worst {
					worst = off
				}
				if ppm := math.Abs(m.Ratio/ratio-1) * 1e6; ppm > c.maxRatioPPM {
					t.Fatalf("sample %d: ratio error %.2f ppm > %.2f", i, ppm, c.maxRatioPPM)
				}
			}
			if worst > c.maxAbsOff {
				t.Fatalf("steady-state worst offset %.2f units > %.2f", worst, c.maxAbsOff)
			}
			t.Logf("%s: worst steady-state offset %.2f units", c.cfg.Kind, worst)
		})
	}
}

// TestSelfReportedErrorCovers checks the ε-budget contract: the model's
// self-reported error bound must cover the actual estimate error at
// nearly every post-warmup sample. This is what timesvc relies on when
// it folds EstimateErrorUnits into published interval half-widths.
func TestSelfReportedErrorCovers(t *testing.T) {
	ratio := testNominal * (1 - 40e-6)
	samples := noisyStream(260, ratio)
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			d := mustNew(t, Config{Kind: kind})
			covered, total := 0, 0
			for i, s := range samples {
				m := d.Feed(s)
				if i < 30 {
					continue
				}
				truth := s.DTP - noisy(i)
				// Check halfway into the next calibration interval,
				// where frequency slack matters too.
				tsc := s.TSC + testDT/2
				actual := math.Abs(m.EstimateAt(tsc) - (truth + ratio*(testDT/2)))
				total++
				if actual <= m.ErrorAt(tsc) {
					covered++
				}
			}
			if frac := float64(covered) / float64(total); frac < 0.95 {
				t.Fatalf("self-reported error covers only %.1f%% of samples", frac*100)
			}
		})
	}
}

func TestResetStartsFreshAcquisition(t *testing.T) {
	ratio := testNominal * (1 + 30e-6)
	samples := stream(120, ratio, func(i int) float64 { return triWave(i, 2) })
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			d := mustNew(t, Config{Kind: kind})
			for _, s := range samples[:60] {
				d.Feed(s)
			}
			d.Reset()
			if d.Model().Valid {
				t.Fatal("model still valid after Reset")
			}
			if got := d.Model().Ratio; got != testNominal {
				t.Fatalf("ratio after Reset = %g, want nominal %g", got, testNominal)
			}
			var m Model
			for _, s := range samples[60:] {
				m = d.Feed(s)
			}
			truth := samples[119].DTP - triWave(119, 2)
			if off := math.Abs(m.EstimateAt(samples[119].TSC) - truth); off > 12 {
				t.Fatalf("post-reset reacquisition offset %.2f units", off)
			}
		})
	}
}

func TestNonAdvancingTSCSampleRejected(t *testing.T) {
	base := stream(10, testNominal, func(int) float64 { return 0 })
	for _, kind := range []string{"pll", "theilsen", "lad"} {
		t.Run(kind, func(t *testing.T) {
			d := mustNew(t, Config{Kind: kind})
			for _, s := range base {
				d.Feed(s)
			}
			before := d.Model()
			dup := base[9]
			dup.DTP += 1e6 // wildly wrong, must be ignored
			m := d.Feed(dup)
			if !m.Dropped {
				t.Fatal("duplicate-TSC sample not marked dropped")
			}
			if d.Dropped() == 0 {
				t.Fatal("Dropped() not incremented")
			}
			if m.Ratio != before.Ratio || m.DTP != before.DTP {
				t.Fatal("model moved on a non-advancing sample")
			}
		})
	}
	// The moving average has no monotonicity guard by design (bit-compat
	// with the daemon's historical path) but must stay finite.
	d := mustNew(t, Config{Kind: "ma"})
	for _, s := range base {
		d.Feed(s)
	}
	m := d.Feed(base[9])
	if math.IsNaN(m.Ratio) || math.IsInf(m.Ratio, 0) {
		t.Fatal("ma ratio not finite after duplicate sample")
	}
}
