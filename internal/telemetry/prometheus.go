package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Families and series are sorted so
// the same registry state always produces identical bytes — the
// determinism tests diff exports between seeded runs.
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			f.series[k].writeExposition(&b, f.name, k)
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits one "name{labels} value" line.
func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// formatFloat renders a sample value the way Prometheus expects:
// integers without an exponent, specials as +Inf/-Inf/NaN.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}
