package phy

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/dtplab/dtp/internal/sim"
)

func mkFrame(n int) []byte {
	f := make([]byte, n)
	f[0] = 0x55 // preamble octet replaced by /S/ on the wire
	for i := 1; i < n; i++ {
		f[i] = byte(i * 7)
	}
	return f
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, n := range []int{8, 9, 15, 16, 17, 64, 72, 1530, 9022} {
		f := mkFrame(n)
		blocks, err := Encode(f)
		if err != nil {
			t.Fatalf("Encode(%d): %v", n, err)
		}
		got, err := Decode(blocks)
		if err != nil {
			t.Fatalf("Decode(%d): %v", n, err)
		}
		if !bytes.Equal(got, f) {
			t.Fatalf("roundtrip mismatch at %d octets", n)
		}
	}
}

func TestEncodeRejectsShortFrame(t *testing.T) {
	if _, err := Encode(make([]byte, 7)); err == nil {
		t.Fatal("7-octet frame accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]Block{
		nil,
		{IdleBlock()},
		{IdleBlock(), IdleBlock()},
		{{Sync: SyncControl, Payload: BTStart}}, // start but no terminate
		{{Sync: SyncControl, Payload: BTStart}, {Sync: 3}},
	}
	for i, blocks := range cases {
		if _, err := Decode(blocks); err == nil {
			t.Fatalf("case %d: garbage decoded", i)
		}
	}
}

func TestEncodeBlockStructure(t *testing.T) {
	f := mkFrame(72) // 72 = 8 + 64: start block + 8 data blocks + T0
	blocks, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	if blocks[0].BlockType() != BTStart {
		t.Fatal("first block not /S/")
	}
	last := blocks[len(blocks)-1]
	if last.Sync != SyncControl || last.BlockType() != BTTerm0 {
		t.Fatalf("last block %v, want T0", last)
	}
	for _, b := range blocks[1 : len(blocks)-1] {
		if b.Sync != SyncData {
			t.Fatalf("interior block %v not data", b)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(body []byte) bool {
		if len(body) < 8 {
			return true
		}
		blocks, err := Encode(body)
		if err != nil {
			return false
		}
		got, err := Decode(blocks)
		if err != nil {
			return false
		}
		// Octet 0 is consumed by /S/ and restored as 0x55.
		return bytes.Equal(got[1:], body[1:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksPerFrameMatchesPaper(t *testing.T) {
	// §4.4: "The PHY requires about 191 66-bit blocks and 1,129 66-bit
	// blocks to transmit a MTU-sized or jumbo-sized frame" and DTP can
	// send a beacon every ~200 (MTU) / ~1200 (jumbo) cycles.
	mtu := BlocksPerFrame(1522)
	if mtu < 185 || mtu > 200 {
		t.Fatalf("BlocksPerFrame(MTU) = %d, want ~191", mtu)
	}
	jumbo := BlocksPerFrame(9022)
	if jumbo < 1120 || jumbo > 1200 {
		t.Fatalf("BlocksPerFrame(jumbo) = %d, want ~1129", jumbo)
	}
}

func TestBlocksPerFrameMatchesEncoder(t *testing.T) {
	for _, n := range []int{64, 512, 1522, 9022} {
		blocks, err := Encode(mkFrame(n))
		if err != nil {
			t.Fatal(err)
		}
		// BlocksPerFrame = encoded blocks + IPG blocks.
		want := len(blocks) + 2
		if got := BlocksPerFrame(n); got < want-1 || got > want+1 {
			t.Fatalf("BlocksPerFrame(%d) = %d, encoder produced %d (+2 IPG)", n, got, len(blocks))
		}
	}
}

func TestProfilesReproduceTable2(t *testing.T) {
	want := map[Speed]struct {
		period int64
		delta  int64
	}{
		Speed1G:   {8_000_000, 25},
		Speed10G:  {6_400_000, 20},
		Speed40G:  {1_600_000, 5},
		Speed100G: {640_000, 2},
	}
	for s, w := range want {
		p := ProfileFor(s)
		if p.PeriodFs != w.period || p.Delta != w.delta {
			t.Fatalf("%v: period=%d delta=%d, want %d/%d", s, p.PeriodFs, p.Delta, w.period, w.delta)
		}
		// The invariant that makes mixed-speed counters coherent.
		if p.Delta*BaseTickFs != p.PeriodFs {
			t.Fatalf("%v: Delta*BaseTick = %d != period %d", s, p.Delta*BaseTickFs, p.PeriodFs)
		}
	}
}

func TestProfileTickPeriod(t *testing.T) {
	if ProfileFor(Speed10G).TickPeriod() != 6400*sim.Picosecond {
		t.Fatal("10G tick period wrong")
	}
	if ProfileFor(Speed100G).TickPeriod() != 640*sim.Picosecond {
		t.Fatal("100G tick period wrong")
	}
}

func TestProfileByteTime(t *testing.T) {
	// 1522 octets at 10 Gbps = 1217.6 ns.
	got := ProfileFor(Speed10G).ByteTime(1522)
	if got < 1217*sim.Nanosecond || got > 1218*sim.Nanosecond {
		t.Fatalf("ByteTime(1522) = %v", got)
	}
}

func TestProfileForUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown speed did not panic")
		}
	}()
	ProfileFor(Speed(42))
}
