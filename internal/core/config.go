// Package core implements the Datacenter Time Protocol — the paper's
// primary contribution. Every network port runs Algorithm 1 (INIT /
// INIT-ACK one-way-delay measurement, then periodic BEACON
// resynchronization); every multi-port device runs Algorithm 2 (the
// global counter is the max of the local counters); BEACON-JOIN handles
// devices and partitions joining a running network; BEACON-MSB carries
// the upper half of the 106-bit counter.
//
// The protocol operates on counters driven by free-running oscillators
// (internal/xo) and exchanges messages embedded in idle /E/ blocks
// (internal/phy) across wires with propagation delay and bit errors
// (internal/link). There are no Ethernet packets anywhere in this
// package: DTP's network overhead is exactly zero, as in the paper.
package core

import (
	"fmt"

	"github.com/dtplab/dtp/internal/phy"
	"github.com/dtplab/dtp/internal/sim"
)

// simTime is a local alias to keep signatures in this package short.
type simTime = sim.Time

// Config holds protocol and PHY-model parameters. The zero value is not
// usable; call DefaultConfig.
type Config struct {
	// Profile selects the Ethernet speed (Table 2). Default 10 GbE.
	Profile phy.Profile

	// UnitsPerTick is the counter increment per PCS clock tick. 1 for a
	// homogeneous 10 GbE network (the paper's deployment); set it to
	// Profile.Delta to count in 0.32 ns base units for mixed-speed
	// networks (§7).
	UnitsPerTick uint64

	// BeaconIntervalTicks is the resynchronization period in ticks of
	// the sender's clock. The paper uses 200 (every MTU-frame gap) and
	// 1200 (jumbo); the analysis requires < 5000 for the two-tick bound.
	BeaconIntervalTicks uint64

	// AlphaUnits is the α subtracted from the measured RTT before
	// halving (T2 of Algorithm 1), compensating for the nondeterministic
	// clock-domain-crossing delays so the measured one-way delay never
	// exceeds the true delay. The paper derives α = 3.
	AlphaUnits int64

	// GuardUnits is the bit-error guard: BEACON messages moving the
	// counter forward by more than this many units are ignored
	// (§3.2 "Handling failures" — "off by more than eight").
	GuardUnits int64

	// Parity enables the even-parity bit over the three least
	// significant payload bits, trading one payload bit for error
	// detection.
	Parity bool

	// FragmentedMessages selects the 1 GbE adaptation (§7): a message
	// is split across four consecutive idle ordered sets (8b/10b has no
	// 56-bit idle block). The standard's 12-byte interpacket gap fits a
	// whole message, so fragments always travel back to back.
	FragmentedMessages bool

	// TxPipelineTicks and RxPipelineTicks are the deterministic PCS
	// pipeline depths (encoder/scrambler/gearbox and their inverses).
	TxPipelineTicks int
	RxPipelineTicks int

	// AckTurnaroundTicks is the deterministic delay between processing
	// an INIT and inserting the INIT-ACK. It is part of the measured
	// RTT, so together with α it sets where the measured OWD lands
	// relative to the true transit.
	AckTurnaroundTicks int

	// CDCMaxExtraTicks bounds the synchronization-FIFO delay when a
	// message crosses from the recovered (RX) clock domain into the
	// local domain: 0..CDCMaxExtraTicks whole local ticks are added on
	// top of edge alignment. The standard two-flop synchronizer gives 1.
	CDCMaxExtraTicks int

	// CDCSetupFraction models *when* the synchronizer adds its extra
	// cycle: if the data lands within this fraction of a period before
	// the capturing edge, the setup time is violated and the FIFO takes
	// one more cycle. Because the two clock domains beat slowly against
	// each other, the extra cycle is a quasi-static function of phase —
	// not an independent coin flip per message — which is what keeps
	// worst cases from compounding across INIT measurement and beacons.
	CDCSetupFraction float64

	// CDCJitterFs is the width of the metastability band around the
	// setup threshold within which the outcome is genuinely random.
	CDCJitterFs int64

	// MsbEveryBeacons is how many BEACONs pass between BEACON-MSB
	// transmissions of the counter's upper bits.
	MsbEveryBeacons int

	// FaultyJumpLimit and FaultyWindowTicks implement faulty-peer
	// detection: if more than FaultyJumpLimit guard-violating beacons
	// arrive within FaultyWindowTicks, the port stops synchronizing to
	// its peer.
	FaultyJumpLimit   int
	FaultyWindowTicks uint64

	// BeaconTimeoutIntervals is the beacon-loss watchdog: a SYNCED port
	// that hears nothing from its peer for this many beacon intervals
	// demotes itself back to INIT and re-measures the delay, instead of
	// free-running forever against a silently dead peer (a grey failure
	// an explicit link-down never reports). 0 disables the watchdog.
	BeaconTimeoutIntervals int

	// FaultyCooldownTicks, when nonzero, lets a port that declared its
	// peer faulty retry after this many local ticks: the port demotes to
	// INIT, clearing the faulty mark, and re-runs the delay measurement.
	// The paper leaves faulty ports down for human repair (the default,
	// 0); chaos campaigns enable the cooldown so a transient BER storm
	// does not permanently amputate a link. Requires the beacon-loss
	// watchdog (BeaconTimeoutIntervals > 0) to be active.
	FaultyCooldownTicks uint64

	// MaxTreeLatencyTicks models the depth of the max-computation tree
	// inside a multi-port device (§4.3): a port's received counter takes
	// this many ticks to reach the global counter. 0 = instantaneous.
	MaxTreeLatencyTicks int

	// PPMRange is the half-width of the uniform distribution oscillator
	// offsets are drawn from, in ppm. Must be <= 100 (the 802.3 bound).
	PPMRange float64

	// WanderInterval and WanderStepPPB configure slow oscillator drift.
	// Zero disables wander.
	WanderInterval sim.Time
	WanderStepPPB  float64

	// BER is the per-bit error rate on every wire.
	BER float64

	// JoinDelayTicks is how long after INIT-ACK a port waits before
	// sending BEACON-JOIN, leaving time for the peer to finish its own
	// delay measurement.
	JoinDelayTicks uint64

	// Hardened enables the Byzantine-hardened protocol mode. Plain DTP
	// adopts max(local, remote) unconditionally, so one device reporting
	// an inflated counter poisons the whole fabric. Hardened mode adds
	// per-link-session bounded-jump admission (remote advances must stay
	// within elapsed + slack + an oscillator-budget term since the
	// session baseline), a quarantine state with a re-INIT escape hatch
	// for ports whose peers keep failing admission, and a quorum
	// combiner that refuses large session-initial adoptions unless the
	// device's other synced ports corroborate them. On a fault-free
	// network the admission never fires, so hardened and plain runs are
	// tick-identical; the price is that two long-diverged live
	// partitions no longer auto-merge (see DESIGN.md "Threat model").
	Hardened bool

	// AdmitSlackUnits is the constant slack of the admission pull
	// budget: it absorbs the measurement noise (CDC dither, guard-band
	// offsets) riding on honest forward adoptions. Each message may
	// pull the local counter at most AdmitSlackUnits forward, and the
	// total pull a peer is granted within a FaultyWindowTicks window is
	// AdmitSlackUnits + elapsed>>12, where elapsed is measured on the
	// device's free-running tick clock (the shift is a ~244 ppm budget
	// covering the 802.3 ±100 ppm oscillators on both ends plus
	// wander). Budgeting the pull against the unjumpable oscillator —
	// never the global counter — is what catches ratchets whose every
	// step stays under naive per-message thresholds. Like the bit-error
	// guard, the slack scales with the port's cycle.
	AdmitSlackUnits int64

	// QuarantineRejectLimit is how many admission rejections within
	// FaultyWindowTicks a synced port tolerates before quarantining its
	// peer. QuarantineCooldownTicks is how long the quarantine lasts
	// before the port demotes itself to INIT and retries — the escape
	// hatch through which an honestly restarted peer rejoins. Size the
	// cooldown so a peer that was honest all along rejoins cleanly: the
	// quarantined peer free-runs, so its counter diverges from the
	// fabric at up to 2*PPMRange; keep
	// QuarantineCooldownTicks * 2*PPMRange*1e-6 <= AdmitSlackUnits
	// and the post-cooldown session's first message is always within the
	// admission slack, whichever side drifted ahead.
	QuarantineRejectLimit   int
	QuarantineCooldownTicks uint64

	// QuorumPorts is the number of synced ports (proposer included) that
	// must agree before a device adopts a session-initial advance larger
	// than AdmitSlackUnits. Devices with fewer synced witness ports than
	// the quorum — freshly restarted devices, single-port hosts — admit
	// unchecked: they have no better information than their peer. <= 1
	// disables the combiner.
	QuorumPorts int

	// FollowMaster enables the §5.4 extension ("following the fastest
	// clock"): instead of max-coupling, devices form a spanning tree
	// rooted at Master and each follows the remote counter of its
	// parent — jumping forward when behind, stalling when ahead. The
	// network then tracks the master's oscillator rather than the
	// fastest oscillator, at the cost of a single point of reference.
	FollowMaster bool
	// Master names the root device (required when FollowMaster).
	Master string
}

// DefaultConfig returns the configuration matching the paper's testbed:
// 10 GbE, beacon every 200 ticks, α = 3, eight-tick guard.
func DefaultConfig() Config {
	return Config{
		Profile:                phy.ProfileFor(phy.Speed10G),
		UnitsPerTick:           1,
		BeaconIntervalTicks:    200,
		AlphaUnits:             3,
		GuardUnits:             8,
		Parity:                 false,
		TxPipelineTicks:        phy.DefaultTxPipelineTicks,
		RxPipelineTicks:        phy.DefaultRxPipelineTicks,
		AckTurnaroundTicks:     3,
		CDCMaxExtraTicks:       1,
		CDCSetupFraction:       0.15,
		CDCJitterFs:            200_000, // 200 ps metastability band
		MsbEveryBeacons:        100_000,
		FaultyJumpLimit:        16,
		FaultyWindowTicks:      1_000_000,
		BeaconTimeoutIntervals: 50,
		PPMRange:               100,
		JoinDelayTicks:         2_000,
		// Hardened-mode parameters are always populated so enabling the
		// mode is a single knob. Slack 16 units ≈ 103 ns at 10 GbE: twice
		// the bit-error guard of headroom over the per-beacon noise
		// floor, while keeping any single admitted step under the 4TD
		// bound of tree-scale topologies. Rejections quarantine fast (the
		// fabric is exposed while a liar keeps probing), and the cooldown
		// is sized so an honest peer's free-run drift across one
		// quarantine (60k ticks * 200 ppm = 12 units) stays inside the
		// admission slack — a wrongly quarantined peer always rejoins on
		// the first retry.
		AdmitSlackUnits:         16,
		QuarantineRejectLimit:   4,
		QuarantineCooldownTicks: 60_000,
		QuorumPorts:             2,
	}
}

func (c *Config) validate() error {
	if c.Profile.PeriodFs <= 0 {
		return fmt.Errorf("core: config has no PHY profile")
	}
	if c.UnitsPerTick == 0 {
		return fmt.Errorf("core: UnitsPerTick must be >= 1")
	}
	if c.BeaconIntervalTicks == 0 {
		return fmt.Errorf("core: beacon interval must be >= 1 tick")
	}
	if c.PPMRange < 0 || c.PPMRange > 100 {
		return fmt.Errorf("core: PPMRange %v outside [0, 100]", c.PPMRange)
	}
	if c.CDCMaxExtraTicks < 0 {
		return fmt.Errorf("core: negative CDC bound")
	}
	if c.BeaconTimeoutIntervals < 0 {
		return fmt.Errorf("core: negative beacon timeout")
	}
	if c.BER < 0 || c.BER >= 1 {
		return fmt.Errorf("core: BER %v outside [0, 1)", c.BER)
	}
	if c.FollowMaster && c.Master == "" {
		return fmt.Errorf("core: FollowMaster requires a Master name")
	}
	if c.Hardened {
		if c.AdmitSlackUnits <= 0 {
			return fmt.Errorf("core: Hardened requires AdmitSlackUnits >= 1")
		}
		if c.QuarantineRejectLimit <= 0 {
			return fmt.Errorf("core: Hardened requires QuarantineRejectLimit >= 1")
		}
		if c.QuarantineCooldownTicks == 0 {
			return fmt.Errorf("core: Hardened requires a quarantine cooldown (the re-INIT escape hatch)")
		}
	}
	return nil
}

// UnitFs returns the duration of one counter unit in femtoseconds.
func (c *Config) UnitFs() int64 {
	return c.Profile.PeriodFs / int64(c.UnitsPerTick)
}

// UnitsToNs converts counter units to nanoseconds for reporting.
func (c *Config) UnitsToNs(units int64) float64 {
	return float64(units) * float64(c.UnitFs()) / 1e6
}
