package timesvc

import (
	"math"
	"sync/atomic"
)

// ε-budget attribution: every published half-width is the sum of four
// components, recorded so an operator can see *which* error source is
// paying for a wide interval rather than just that it is wide.
const (
	// attrAudit: the audited cross-host 4TD hardware bound plus the
	// fixed software-access margin, converted to UTC ps.
	attrAudit = iota
	// attrDaemon: the daemon's self-reported TSC↔counter estimate
	// error (PCIe calibration noise), converted to UTC ps.
	attrDaemon
	// attrBcast: the UTC broadcaster's self-reported anchor error
	// (root-dispersion style), converted to UTC ps.
	attrBcast
	// attrResid: the follower's realized prediction residual with tail
	// factor and cold-start floor, already in UTC ps.
	attrResid

	numAttrComponents
)

// AttrComponentNames are the stable component label values, in
// recording order.
var AttrComponentNames = [numAttrComponents]string{
	"audit", "daemon", "broadcast", "residual",
}

// attrState holds the per-component accounting. The simulation
// goroutine is the only writer (publish ticks are scheduler events);
// the atomic words exist so the /healthz handler and the dtpd
// attribution table can read consistently from other goroutines.
// All words hold math.Float64bits.
type attrState struct {
	last [numAttrComponents]atomic.Uint64
	sum  [numAttrComponents]atomic.Uint64
}

// record stores one publish's component split. Single-writer: plain
// read-modify-write on the sums is safe, the atomic stores only
// protect readers from torn words.
func (a *attrState) record(comps *[numAttrComponents]float64) {
	for i, v := range comps {
		a.last[i].Store(math.Float64bits(v))
		a.sum[i].Store(math.Float64bits(math.Float64frombits(a.sum[i].Load()) + v))
	}
}

// ComponentStat is one component's view in an Attribution.
type ComponentStat struct {
	// Name is the stable component label ("audit", "daemon",
	// "broadcast", "residual").
	Name string `json:"name"`
	// LastPs is the component's contribution to the most recent
	// published half-width, in ps.
	LastPs float64 `json:"last_ps"`
	// MeanPs is the mean contribution across all publishes, in ps
	// (0 before the first publish).
	MeanPs float64 `json:"mean_ps"`
	// Share is the component's fraction of the cumulative ε budget
	// (0..1; 0 before the first publish). Values stay finite so an
	// Attribution always JSON-encodes.
	Share float64 `json:"share"`
}

// Attribution is a snapshot of the ε-budget split. Safe to call from
// any goroutine.
type Attribution struct {
	// Host is the served host.
	Host string `json:"host"`
	// Publishes is how many snapshots the split covers.
	Publishes uint64 `json:"publishes"`
	// TotalLastPs is the most recent published half-width, in ps.
	TotalLastPs float64 `json:"total_last_ps"`
	// Components lists the four components in stable order.
	Components []ComponentStat `json:"components"`
	// Dominant names the component with the largest cumulative share —
	// the error source that is paying for the interval width.
	Dominant string `json:"dominant"`
}

// Attribution returns the current ε-budget split.
func (s *Service) Attribution() Attribution {
	a := Attribution{
		Host:       s.host,
		Publishes:  s.publishes.Load(),
		Components: make([]ComponentStat, numAttrComponents),
	}
	var totalSum float64
	var sums [numAttrComponents]float64
	for i := range sums {
		sums[i] = math.Float64frombits(s.attr.sum[i].Load())
		totalSum += sums[i]
	}
	n := float64(a.Publishes)
	domIdx := 0
	for i := range a.Components {
		last := math.Float64frombits(s.attr.last[i].Load())
		a.TotalLastPs += last
		c := ComponentStat{Name: AttrComponentNames[i], LastPs: last}
		if n > 0 {
			c.MeanPs = sums[i] / n
		}
		if totalSum > 0 {
			c.Share = sums[i] / totalSum
		}
		a.Components[i] = c
		if sums[i] > sums[domIdx] {
			domIdx = i
		}
	}
	if totalSum > 0 {
		a.Dominant = AttrComponentNames[domIdx]
	}
	return a
}
