package topo

import (
	"testing"
	"testing/quick"
)

func TestPaperTreeShape(t *testing.T) {
	g := PaperTree()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 12 {
		t.Fatalf("nodes = %d, want 12", len(g.Nodes))
	}
	if len(g.Links) != 11 {
		t.Fatalf("links = %d, want 11 (tree)", len(g.Links))
	}
	if got := len(g.HostIDs()); got != 8 {
		t.Fatalf("hosts = %d, want 8 (S4-S11)", got)
	}
	if got := len(g.SwitchIDs()); got != 4 {
		t.Fatalf("switches = %d, want 4 (S0-S3)", got)
	}
	// "the maximum number of hops between any two leaf servers was four"
	if d := g.HostDiameter(); d != 4 {
		t.Fatalf("host diameter = %d, want 4", d)
	}
}

func TestPaperTreePlotPairsAdjacent(t *testing.T) {
	// Figure 6 plots offsets of s1-s4, s1-s5, s2-s7, s2-s8, s3-s9,
	// s3-s10, s3-s11 and sX-s0: all must be directly connected.
	g := PaperTree()
	hops := g.Hops()
	pairs := [][2]string{
		{"s1", "s4"}, {"s1", "s5"}, {"s2", "s7"}, {"s2", "s8"},
		{"s3", "s9"}, {"s3", "s10"}, {"s3", "s11"},
		{"s1", "s0"}, {"s2", "s0"}, {"s3", "s0"},
	}
	for _, p := range pairs {
		a, ok1 := g.ByName(p[0])
		b, ok2 := g.ByName(p[1])
		if !ok1 || !ok2 {
			t.Fatalf("missing node in pair %v", p)
		}
		if hops[a.ID][b.ID] != 1 {
			t.Fatalf("%s-%s distance %d, want 1", p[0], p[1], hops[a.ID][b.ID])
		}
	}
}

func TestStarShape(t *testing.T) {
	g := Star(8)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := g.HostDiameter(); d != 2 {
		t.Fatalf("star host diameter = %d, want 2 (every PTP path is 2 hops)", d)
	}
	if len(g.HostIDs()) != 9 { // timeserver + 8
		t.Fatalf("hosts = %d, want 9", len(g.HostIDs()))
	}
}

func TestChainDiameter(t *testing.T) {
	for hops := 1; hops <= 8; hops++ {
		g := Chain(hops)
		if err := g.Validate(); err != nil {
			t.Fatalf("chain(%d): %v", hops, err)
		}
		if d := g.HostDiameter(); d != hops {
			t.Fatalf("chain(%d) diameter = %d", hops, d)
		}
	}
}

func TestPairShape(t *testing.T) {
	g := Pair()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.HostDiameter() != 1 {
		t.Fatal("pair diameter != 1")
	}
}

func TestFatTreeShape(t *testing.T) {
	for _, k := range []int{2, 4} {
		g := FatTree(k)
		if err := g.Validate(); err != nil {
			t.Fatalf("fat-tree(%d): %v", k, err)
		}
		wantHosts := k * k * k / 4
		if got := len(g.HostIDs()); got != wantHosts {
			t.Fatalf("fat-tree(%d) hosts = %d, want %d", k, got, wantHosts)
		}
		wantSwitches := k*k + k*k/4 // k pods * k switches + (k/2)^2 core
		if got := len(g.SwitchIDs()); got != wantSwitches {
			t.Fatalf("fat-tree(%d) switches = %d, want %d", k, got, wantSwitches)
		}
	}
}

func TestFatTreeSixHopDiameter(t *testing.T) {
	// The paper: six hops "is the longest distance in a Fat-tree".
	g := FatTree(4)
	if d := g.HostDiameter(); d != 6 {
		t.Fatalf("fat-tree(4) host diameter = %d, want 6", d)
	}
}

func TestFatTreeRejectsOddArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd arity accepted")
		}
	}()
	FatTree(3)
}

func TestValidateCatchesBadGraphs(t *testing.T) {
	cases := []Graph{
		{Nodes: []Node{{ID: 1, Name: "a"}}}, // non-dense ID
		{Nodes: []Node{{ID: 0, Name: "a"}, {ID: 1, Name: "a"}}, Links: []Link{{A: 0, B: 1, LengthM: 1}}},                     // dup name
		{Nodes: []Node{{ID: 0, Name: "a"}, {ID: 1, Name: "b"}}, Links: []Link{{A: 0, B: 5, LengthM: 1}}},                     // bad link
		{Nodes: []Node{{ID: 0, Name: "a"}, {ID: 1, Name: "b"}}, Links: []Link{{A: 0, B: 0, LengthM: 1}}},                     // self link
		{Nodes: []Node{{ID: 0, Name: "a"}, {ID: 1, Name: "b"}}, Links: []Link{{A: 0, B: 1, LengthM: 0}}},                     // zero length
		{Nodes: []Node{{ID: 0, Name: "a"}, {ID: 1, Name: "b"}, {ID: 2, Name: "c"}}, Links: []Link{{A: 0, B: 1, LengthM: 1}}}, // disconnected
	}
	for i, g := range cases {
		if err := g.Validate(); err == nil {
			t.Fatalf("case %d: invalid graph accepted", i)
		}
	}
}

func TestNextHopRoutesConverge(t *testing.T) {
	for _, g := range []Graph{PaperTree(), Star(5), Chain(6), FatTree(4)} {
		table := g.NextHop()
		hosts := g.HostIDs()
		for _, src := range hosts {
			for _, dst := range hosts {
				if src == dst {
					continue
				}
				// Walk the route; must reach dst within Diameter hops.
				cur := src
				for steps := 0; cur != dst; steps++ {
					if steps > g.Diameter() {
						t.Fatalf("route %d->%d did not converge", src, dst)
					}
					li := table[cur][dst]
					if li < 0 {
						t.Fatalf("no next hop from %d toward %d", cur, dst)
					}
					l := g.Links[li]
					if l.A == cur {
						cur = l.B
					} else if l.B == cur {
						cur = l.A
					} else {
						t.Fatalf("next-hop link %d not incident to %d", li, cur)
					}
				}
			}
		}
	}
}

func TestNextHopIsShortest(t *testing.T) {
	g := FatTree(4)
	table := g.NextHop()
	hops := g.Hops()
	hosts := g.HostIDs()
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			cur, steps := src, 0
			for cur != dst {
				l := g.Links[table[cur][dst]]
				if l.A == cur {
					cur = l.B
				} else {
					cur = l.A
				}
				steps++
			}
			if steps != hops[src][dst] {
				t.Fatalf("route %d->%d took %d hops, shortest is %d", src, dst, steps, hops[src][dst])
			}
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	g := PaperTree()
	hops := g.Hops()
	for i := range g.Nodes {
		for j := range g.Nodes {
			if hops[i][j] != hops[j][i] {
				t.Fatalf("hops not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

// Property: chains of any length validate and have the expected diameter.
func TestChainProperty(t *testing.T) {
	f := func(h uint8) bool {
		hops := int(h%16) + 1
		g := Chain(hops)
		return g.Validate() == nil && g.HostDiameter() == hops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentOf(t *testing.T) {
	g := PaperTree()
	if got := len(g.ComponentOf(0)); got != 12 {
		t.Fatalf("component size %d, want 12", got)
	}
}

func TestByName(t *testing.T) {
	g := PaperTree()
	if n, ok := g.ByName("s7"); !ok || n.Kind != Host {
		t.Fatal("s7 lookup failed")
	}
	if _, ok := g.ByName("nope"); ok {
		t.Fatal("phantom node found")
	}
}
