package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "nil registry yields nil handles")
	g := r.Gauge("x", "")
	h := r.Histogram("x_hist", "", LinearBuckets(0, 1, 4))
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil handles")
	}
	// All updates and reads on nil handles must be safe no-ops.
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.Add(1)
	g.SetMax(9)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("nil histogram quantile must be NaN")
	}
	var tr *Tracer
	tr.Record(0, KindLinkUp, "x", 0, 0, "")
	if tr.Events() != nil || tr.Total() != 0 || tr.Enabled(KindLinkUp) {
		t.Fatal("nil tracer must be inert")
	}
	if err := WritePrometheus(&strings.Builder{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&strings.Builder{}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := New()
	a := r.Counter("dtp_beacons_sent_total", "h")
	b := r.Counter("dtp_beacons_sent_total", "h")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	l1 := r.Counter("dtp_x_total", "h", "host", "s4")
	l2 := r.Counter("dtp_x_total", "h", "host", "s5")
	if l1 == l2 {
		t.Fatal("different labels must be distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("dtp_beacons_sent_total", "h")
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram(LinearBuckets(-10, 1, 21)) // -10..10 step 1
	for i := -5; i <= 5; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 11 {
		t.Fatalf("count = %d, want 11", h.Count())
	}
	if h.Min() != -5 || h.Max() != 5 {
		t.Fatalf("min/max = %v/%v, want -5/5", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q < -1.5 || q > 1.5 {
		t.Fatalf("median %v too far from 0", q)
	}
	if q := h.Quantile(1); q != 5 {
		t.Fatalf("Q(1) = %v, want 5 (exact max)", q)
	}
	if q := h.QuantileAbs(0.99); q < 4 || q > 5 {
		t.Fatalf("QuantileAbs(0.99) = %v, want ~5", q)
	}
	if s := h.Sum(); s != 0 {
		t.Fatalf("sum = %v, want 0", s)
	}
}

func TestHistogramOutOfRange(t *testing.T) {
	h := newHistogram(LinearBuckets(0, 1, 3)) // 0,1,2 then +Inf
	h.Observe(-100)
	h.Observe(100)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.buckets[0].Load() != 1 || h.buckets[3].Load() != 1 {
		t.Fatal("extremes must land in first and +Inf buckets")
	}
}

func TestHistogramBatchMatchesDirectObserve(t *testing.T) {
	buckets := LinearBuckets(-8, 1, 17)
	direct := newHistogram(buckets)
	batched := newHistogram(buckets)
	b := batched.Batch()
	samples := []float64{-9.5, -3, 0, 0.25, 4, 4, 7.9, 123}
	for _, v := range samples {
		direct.Observe(v)
		b.Observe(v)
	}
	if batched.Count() != 0 {
		t.Fatal("staged observations must not be visible before Flush")
	}
	b.Flush()
	b.Flush() // empty flush is a no-op
	if batched.Count() != direct.Count() || batched.Sum() != direct.Sum() ||
		batched.Min() != direct.Min() || batched.Max() != direct.Max() {
		t.Fatalf("batched count/sum/min/max = %d/%v/%v/%v, direct = %d/%v/%v/%v",
			batched.Count(), batched.Sum(), batched.Min(), batched.Max(),
			direct.Count(), direct.Sum(), direct.Min(), direct.Max())
	}
	for i := range direct.buckets {
		if got, want := batched.buckets[i].Load(), direct.buckets[i].Load(); got != want {
			t.Fatalf("bucket %d: batched %d, direct %d", i, got, want)
		}
	}
	// Second round through the same batch keeps accumulating correctly.
	b.Observe(2)
	b.Flush()
	if batched.Count() != direct.Count()+1 {
		t.Fatalf("count after second flush = %d, want %d", batched.Count(), direct.Count()+1)
	}

	var nilBatch *HistogramBatch
	nilBatch.Observe(1) // no-op, must not panic
	nilBatch.Flush()
	if (*Histogram)(nil).Batch() != nil {
		t.Fatal("nil Histogram must yield a nil Batch")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := New()
	r.Counter("dtp_beacons_sent_total", "Beacons transmitted.").Add(42)
	r.Gauge("dtp_links_up", "Links currently up.").Set(3)
	h := r.Histogram("dtp_offset_ticks", "Offset samples.", LinearBuckets(-2, 1, 5))
	h.Observe(-1)
	h.Observe(0)
	h.Observe(0)
	r.Counter("dtp_daemon_cals_total", "Cals.", "host", "s4").Add(7)

	var b strings.Builder
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dtp_beacons_sent_total counter",
		"dtp_beacons_sent_total 42",
		"# TYPE dtp_links_up gauge",
		"dtp_links_up 3",
		"# TYPE dtp_offset_ticks histogram",
		`dtp_offset_ticks_bucket{le="-1"} 1`,
		`dtp_offset_ticks_bucket{le="0"} 3`,
		`dtp_offset_ticks_bucket{le="+Inf"} 3`,
		"dtp_offset_ticks_sum -1",
		"dtp_offset_ticks_count 3",
		`dtp_daemon_cals_total{host="s4"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must appear in sorted order.
	if strings.Index(out, "dtp_beacons_sent_total") > strings.Index(out, "dtp_links_up") {
		t.Fatal("families not sorted")
	}
}

// TestConcurrentUpdates exercises every metric type from many
// goroutines; run under -race this proves the registry race-clean.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", LinearBuckets(0, 10, 10))
	tr := NewTracer(128)
	tr.SetKinds() // include firehose kinds
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				g.SetMax(float64(i))
				h.Observe(float64(i % 100))
				tr.Record(0, KindBeaconRx, "p", int64(i), 0, "")
				if i%100 == 0 {
					var b strings.Builder
					_ = WritePrometheus(&b, r)
					_ = tr.Events()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %v, want 8000 (SetMax(999) < 8000 adds)", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if tr.Total() != 8000 {
		t.Fatalf("tracer total = %d, want 8000", tr.Total())
	}
}
