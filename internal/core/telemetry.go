package core

import (
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
)

// telemetryFlushInterval is how often the beacon-rate shadow counters
// below are folded into the atomic Registry metrics. Readers (HTTP
// scrapes, exports) lag live by at most this much simulated time.
const telemetryFlushInterval = sim.Millisecond

// coreMetrics holds the network's telemetry handles. The zero value
// (all nil) is fully functional: every handle method is a no-op on nil,
// so instrumented hot paths cost one predicted nil check when telemetry
// is disabled. Counters aggregate across ports — per-port granularity
// comes from the Tracer, whose events carry port names.
//
// Events at beacon frequency (tx, rx, jumps, offset samples) do not
// touch atomics at all: the whole simulation runs on one scheduler
// goroutine, so they increment the plain shadow fields below and a
// periodic flush event folds the deltas into the shared metrics. Rare
// events (state transitions, INIT rounds, faults) update their atomic
// counters directly.
type coreMetrics struct {
	tr *telemetry.Tracer

	beaconsSent    *telemetry.Counter
	beaconsRx      *telemetry.Counter
	beaconsIgnored *telemetry.Counter
	initRounds     *telemetry.Counter
	transitions    *telemetry.Counter
	jumps          *telemetry.Counter
	stalls         *telemetry.Counter
	violations     *telemetry.Counter
	faultyPorts    *telemetry.Counter
	demotions      *telemetry.Counter
	droppedDown    *telemetry.Counter
	crashes        *telemetry.Counter
	rejections     *telemetry.Counter
	quarantines    *telemetry.Counter
	portsUp        *telemetry.Gauge
	quarantinedG   *telemetry.Gauge
	offsets        *telemetry.Histogram
	owd            *telemetry.Histogram

	// Beacon-rate shadows, owned by the scheduler goroutine.
	sentN, rxN, ignoredN, jumpsN uint64
	droppedDownN                 uint64
	offBatch                     *telemetry.HistogramBatch
}

// Instrument attaches a metrics registry and/or event tracer to the
// network. Either argument may be nil. Call it before Start (calling
// later works but misses earlier events). Metric handles are registered
// once here; beacon-rate paths then increment plain shadow counters
// that a periodic event flushes into the registry, which the overhead
// benchmark in internal/telemetry holds to < 5%.
func (n *Network) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	n.tel = coreMetrics{
		tr: tr,
		beaconsSent: reg.Counter("dtp_beacons_sent_total",
			"BEACON messages transmitted, including MSB carriers."),
		beaconsRx: reg.Counter("dtp_beacons_received_total",
			"BEACON messages processed by synced ports."),
		beaconsIgnored: reg.Counter("dtp_beacons_ignored_total",
			"Beacons rejected by the bit-error guard or a faulty-marked port."),
		initRounds: reg.Counter("dtp_init_rounds_total",
			"INIT delay-measurement rounds started (Algorithm 1 T0/retry)."),
		transitions: reg.Counter("dtp_port_state_transitions_total",
			"Algorithm 1 port state transitions (down/init/synced)."),
		jumps: reg.Counter("dtp_counter_jumps_total",
			"Forward global-counter adjustments (T4 max rule and JOINs)."),
		stalls: reg.Counter("dtp_counter_stalls_total",
			"Follower-mode stalls absorbing surplus oscillator ticks (§5.4)."),
		violations: reg.Counter("dtp_guard_violations_total",
			"Guard violations counted toward faulty-peer detection (§3.2)."),
		faultyPorts: reg.Counter("dtp_faulty_ports_total",
			"Ports that declared their peer faulty and stopped synchronizing."),
		demotions: reg.Counter("dtp_port_demotions_total",
			"SYNCED ports demoted back to INIT by the beacon-loss watchdog or faulty cooldown."),
		droppedDown: reg.Counter("dtp_port_dropped_down",
			"Blocks that arrived on a down port and were discarded."),
		crashes: reg.Counter("dtp_device_crashes_total",
			"Devices crashed (power loss: all ports down, counter content lost)."),
		rejections: reg.Counter("dtp_core_counter_rejected_total",
			"Remote counter advances refused by hardened bounded-jump admission."),
		quarantines: reg.Counter("dtp_core_port_quarantines_total",
			"Ports that quarantined their peer after repeated admission rejections."),
		portsUp: reg.Gauge("dtp_ports_up",
			"Ports currently up (in INIT or SYNC state)."),
		quarantinedG: reg.Gauge("dtp_core_ports_quarantined",
			"Ports currently in hardened-mode quarantine (excluded from the audited active set)."),
		offsets: reg.Histogram("dtp_beacon_offset_ticks",
			"Per-beacon hardware offset samples t2-t1-OWD in counter units (§6.2).",
			telemetry.LinearBuckets(-8, 1, 17)),
		owd: reg.Histogram("dtp_owd_units",
			"One-way delays measured during INIT, in counter units.",
			telemetry.ExponentialBuckets(1, 2, 16)),
	}
	n.tel.offBatch = n.tel.offsets.Batch()
	if reg != nil && tr != nil {
		reg.CounterFunc("dtp_trace_dropped_total",
			"Trace events the ring buffer has evicted; a reader of the retained trace must not mistake it for a complete history.",
			tr.Dropped)
	}
	for _, lp := range n.linkPorts {
		lp[0].tname = lp[0].Name()
		lp[1].tname = lp[1].Name()
	}
	if reg != nil {
		n.Sch.AfterActor(telemetryFlushInterval, n, 0, 0, 0)
	}
}

// OnEvent makes Network a sim.Actor so the periodic telemetry flush
// reschedules itself without a per-flush method-value allocation. The
// flush is the network's only actor event; the opcode is unused.
func (n *Network) OnEvent(uint8, uint64, uint64) { n.telemetryFlush() }

// telemetryFlush folds the beacon-rate shadow counts into the atomic
// Registry metrics and reschedules itself. It runs on the scheduler
// goroutine, the sole writer of the shadow fields.
func (n *Network) telemetryFlush() {
	t := &n.tel
	if t.sentN != 0 {
		t.beaconsSent.Add(t.sentN)
		t.sentN = 0
	}
	if t.rxN != 0 {
		t.beaconsRx.Add(t.rxN)
		t.rxN = 0
	}
	if t.ignoredN != 0 {
		t.beaconsIgnored.Add(t.ignoredN)
		t.ignoredN = 0
	}
	if t.jumpsN != 0 {
		t.jumps.Add(t.jumpsN)
		t.jumpsN = 0
	}
	if t.droppedDownN != 0 {
		t.droppedDown.Add(t.droppedDownN)
		t.droppedDownN = 0
	}
	t.offBatch.Flush()
	n.Sch.AfterActor(telemetryFlushInterval, n, 0, 0, 0)
}

// Tracer returns the attached tracer (nil when uninstrumented).
func (n *Network) Tracer() *telemetry.Tracer { return n.tel.tr }

// setState moves the port's Algorithm 1 state machine, counting and
// tracing the transition.
func (p *Port) setState(s portState) {
	if s == p.state {
		return
	}
	old := p.state
	p.state = s
	tel := &p.dev.net.tel
	tel.transitions.Inc()
	if old == portQuarantined {
		tel.quarantinedG.Add(-1)
	} else if s == portQuarantined {
		tel.quarantinedG.Add(1)
	}
	if tel.tr.Enabled(telemetry.KindStateChange) {
		tel.tr.Record(p.sch().Now(), telemetry.KindStateChange, p.tname,
			int64(old), int64(s), s.String())
	}
}
