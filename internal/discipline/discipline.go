// Package discipline provides pluggable software-clock estimators for
// the DTP daemon (§5.1). A Discipline consumes raw PCIe-sampled
// (tsc, dtp) calibration pairs and maintains a linear model of the NIC
// counter in the TSC domain — an anchor point, a frequency ratio, and a
// self-reported error bound that the serving plane (internal/timesvc)
// folds into published interval half-widths.
//
// Four disciplines ship:
//
//   - ma: the paper's moving-average/EWMA path (Figure 7), extracted
//     from the daemon bit-for-bit. The default.
//   - pll: an Ntimed-style proportional-integral phase-locked loop.
//   - theilsen: Theil-Sen median-of-pairwise-slopes regression.
//   - lad: chrony-style least-absolute-deviations regression with
//     outlier sample dropping.
//
// All disciplines are deterministic pure state machines: the model
// after N Feed calls depends only on the N samples (and the Config),
// never on wall time or external randomness.
package discipline

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one raw PCIe calibration read, as measured by the daemon.
type Sample struct {
	// DTP is the latched NIC counter value, in counter units.
	DTP float64
	// TSC is the TSC software-clock reading at the assumed latch point
	// (the midpoint of the measured MMIO read), in TSC picoseconds.
	TSC float64
	// LatchErrPs is the worst-case deviation of the true latch point
	// from the assumed midpoint, in TSC picoseconds (the latch-window
	// half-range over the measured read duration). Disciplines scale it
	// by the ratio to bound the anchor error in counter units.
	LatchErrPs float64
}

// Model is a discipline's current linear estimate of the NIC counter.
type Model struct {
	// Valid is false until the discipline has enough samples to serve
	// estimates (at least one).
	Valid bool
	// DTP and TSC anchor the model: the predicted counter value DTP at
	// TSC-clock reading TSC.
	DTP float64
	TSC float64
	// Ratio is the estimated counter units per TSC picosecond.
	Ratio float64
	// ErrUnits bounds the anchor error at the anchor point, in counter
	// units (self-reported; feeds the timesvc ε-budget).
	ErrUnits float64
	// SlackPPM bounds the residual frequency-ratio error in parts per
	// million; error grows by SlackPPM·1e-6 of the TSC time elapsed
	// since the anchor.
	SlackPPM float64
	// Dropped reports whether the discipline rejected the most recently
	// fed sample as an outlier (the model may still have moved if the
	// refit discarded older samples).
	Dropped bool
}

// EstimateAt extrapolates the counter estimate to TSC reading tscPs.
func (m Model) EstimateAt(tscPs float64) float64 {
	if !m.Valid {
		return 0
	}
	return m.DTP + (tscPs-m.TSC)*m.Ratio
}

// ErrorAt bounds the estimate's error at TSC reading tscPs, in counter
// units: the anchor error plus frequency slack accumulated since the
// anchor. +Inf while the model is invalid.
func (m Model) ErrorAt(tscPs float64) float64 {
	if !m.Valid {
		return math.Inf(1)
	}
	elapsed := tscPs - m.TSC
	if elapsed < 0 {
		elapsed = 0
	}
	return m.ErrUnits + m.SlackPPM*1e-6*elapsed*m.Ratio
}

// Discipline is a software-clock estimator. Implementations are not
// safe for concurrent use; the daemon serializes Feed under the
// simulation scheduler.
type Discipline interface {
	// Name returns the discipline kind ("ma", "pll", ...).
	Name() string
	// Feed consumes one calibration sample and returns the updated
	// model (also available via Model).
	Feed(s Sample) Model
	// Model returns the current model without feeding.
	Model() Model
	// Reset discards all state, as after a device crash/restart: the
	// next Feed starts a fresh acquisition.
	Reset()
	// Dropped returns how many samples outlier rejection has discarded
	// over the discipline's lifetime (never reset by Reset).
	Dropped() uint64
}

// Kinds lists the available discipline kinds in canonical order.
func Kinds() []string { return []string{"ma", "pll", "theilsen", "lad"} }

// Config selects and parameterizes a discipline. The zero value means
// the default moving-average discipline with paper parameters.
type Config struct {
	// Kind is "ma", "pll", "theilsen" or "lad" ("" = "ma").
	Kind string `json:"kind,omitempty"`
	// Gain is the ma EWMA ratio gain (0 = 0.2, the paper value).
	Gain float64 `json:"gain,omitempty"`
	// Window is the sample window: ma ratio baseline (0 = 10),
	// theilsen regression window (0 = 16), lad regression window
	// (0 = 24).
	Window int `json:"window,omitempty"`
	// KP and KI are the pll proportional (phase) and integral
	// (frequency) gains (0 = 0.7 and 0.3).
	KP float64 `json:"kp,omitempty"`
	KI float64 `json:"ki,omitempty"`
	// DropK is the lad outlier cutoff in robust standard deviations
	// (scaled MADs) of the fit residuals; samples further out are
	// dropped from the window (0 = 5; lower is more aggressive).
	DropK float64 `json:"dropk,omitempty"`
}

// Defaults per kind.
const (
	defaultGain      = 0.2 // ma EWMA gain (paper)
	defaultMAWindow  = 10  // ma ratio baseline (paper)
	defaultKP        = 0.7
	defaultKI        = 0.3
	defaultTSWindow  = 16
	defaultLADWindow = 24
	defaultDropK     = 5.0
)

// WithDefaults fills zero fields with the kind's defaults.
func (c Config) WithDefaults() Config {
	if c.Kind == "" {
		c.Kind = "ma"
	}
	switch c.Kind {
	case "ma":
		if c.Gain == 0 {
			c.Gain = defaultGain
		}
		if c.Window == 0 {
			c.Window = defaultMAWindow
		}
	case "pll":
		if c.KP == 0 {
			c.KP = defaultKP
		}
		if c.KI == 0 {
			c.KI = defaultKI
		}
	case "theilsen":
		if c.Window == 0 {
			c.Window = defaultTSWindow
		}
	case "lad":
		if c.Window == 0 {
			c.Window = defaultLADWindow
		}
		if c.DropK == 0 {
			c.DropK = defaultDropK
		}
	}
	return c
}

// Validate checks the configuration without filling defaults.
func (c Config) Validate() error {
	switch c.Kind {
	case "", "ma", "pll", "theilsen", "lad":
	default:
		return fmt.Errorf("discipline: unknown kind %q (want one of %s)",
			c.Kind, strings.Join(Kinds(), "|"))
	}
	if c.Gain < 0 || c.Gain > 1 {
		return fmt.Errorf("discipline: gain %g out of (0,1]", c.Gain)
	}
	if c.Window < 0 {
		return fmt.Errorf("discipline: window %d negative", c.Window)
	}
	if c.Window > 0 && c.Window < 2 && (c.Kind == "theilsen" || c.Kind == "lad") {
		return fmt.Errorf("discipline: %s window %d too small (need >= 2)", c.Kind, c.Window)
	}
	if c.KP < 0 || c.KP > 2 {
		return fmt.Errorf("discipline: kp %g out of (0,2]", c.KP)
	}
	if c.KI < 0 || c.KI > 2 {
		return fmt.Errorf("discipline: ki %g out of (0,2]", c.KI)
	}
	if c.DropK < 0 {
		return fmt.Errorf("discipline: dropk %g negative", c.DropK)
	}
	return nil
}

// New builds the configured discipline. nominalRatio seeds the
// frequency estimate (counter units per TSC picosecond at nominal
// oscillator rate); the model reports it until enough samples arrive.
func (c Config) New(nominalRatio float64) (Discipline, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c = c.WithDefaults()
	switch c.Kind {
	case "ma":
		return newMovingAverage(c, nominalRatio), nil
	case "pll":
		return newPLL(c, nominalRatio), nil
	case "theilsen":
		return newTheilSen(c, nominalRatio), nil
	case "lad":
		return newLAD(c, nominalRatio), nil
	}
	panic("unreachable")
}

// String renders the canonical spec ("lad:window=24,dropk=3"); the
// result round-trips through Parse. Default-valued options are elided.
func (c Config) String() string {
	kind := c.Kind
	if kind == "" {
		kind = "ma"
	}
	var opts []string
	add := func(k string, v float64) {
		opts = append(opts, k+"="+strconv.FormatFloat(v, 'g', -1, 64))
	}
	if c.Gain != 0 {
		add("gain", c.Gain)
	}
	if c.Window != 0 {
		opts = append(opts, "window="+strconv.Itoa(c.Window))
	}
	if c.KP != 0 {
		add("kp", c.KP)
	}
	if c.KI != 0 {
		add("ki", c.KI)
	}
	if c.DropK != 0 {
		add("dropk", c.DropK)
	}
	if len(opts) == 0 {
		return kind
	}
	return kind + ":" + strings.Join(opts, ",")
}

// Parse reads a discipline spec of the form
//
//	kind[:opt=val[,opt=val...]]
//
// e.g. "ma", "ma:gain=0.3", "pll:kp=0.5,ki=0.2", "theilsen:window=32",
// "lad:window=24,dropk=3". An empty spec yields the default (ma).
func Parse(spec string) (Config, error) {
	var c Config
	if spec == "" {
		return c, nil
	}
	kind, rest, hasOpts := strings.Cut(spec, ":")
	c.Kind = strings.TrimSpace(kind)
	if hasOpts {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return Config{}, fmt.Errorf("discipline: bad option %q in %q (want opt=val)", kv, spec)
			}
			k = strings.TrimSpace(k)
			v = strings.TrimSpace(v)
			switch k {
			case "window":
				n, err := strconv.Atoi(v)
				if err != nil {
					return Config{}, fmt.Errorf("discipline: bad window %q: %v", v, err)
				}
				c.Window = n
			case "gain", "kp", "ki", "dropk":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return Config{}, fmt.Errorf("discipline: bad %s %q: %v", k, v, err)
				}
				switch k {
				case "gain":
					c.Gain = f
				case "kp":
					c.KP = f
				case "ki":
					c.KI = f
				case "dropk":
					c.DropK = f
				}
			default:
				return Config{}, fmt.Errorf("discipline: unknown option %q in %q", k, spec)
			}
		}
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// median returns the median of xs, sorting it in place. Even lengths
// average the two central elements; empty input returns 0.
func median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sort.Float64s(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
