// Package ptp implements the IEEE 1588 Precise Time Protocol baseline
// the paper evaluates against (§2.4.2, §6): a grandmaster disciplined to
// true time, clients with free-running PTP hardware clocks (PHCs),
// hardware timestamping with quantization jitter, two-step Sync /
// Follow_Up, Delay_Req / Delay_Resp, sample filtering and a PI servo.
// It runs over the packet fabric (internal/fabric), so every precision
// artifact under load is caused by real queueing.
package ptp

import (
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/swclock"
)

// PHC is a PTP hardware clock: a steerable clock on the NIC.
type PHC = swclock.Clock

// NewPHC creates a hardware clock with the given true oscillator error.
func NewPHC(sch *sim.Scheduler, hwPPM float64) *PHC {
	return swclock.New(sch, hwPPM)
}
