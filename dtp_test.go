package dtp

import (
	"strings"
	"testing"
	"time"

	"github.com/dtplab/dtp/internal/phy"
)

func newSynced(t *testing.T, topo Topology, opts ...Option) *System {
	t.Helper()
	sys, err := New(topo, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	if err := sys.RunUntilSynced(time.Second); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestQuickstartFlow(t *testing.T) {
	sys := newSynced(t, Pair(), WithSeed(7),
		WithPPM(map[string]float64{"h0": 100, "h1": -100}))
	sys.Run(100 * time.Millisecond)
	if got := sys.MaxOffsetNanos(); got > 25.6 {
		t.Fatalf("pair offset %.1f ns, bound 25.6", got)
	}
	if sys.BoundNanos() != 25.6 {
		t.Fatalf("bound %.1f ns", sys.BoundNanos())
	}
	if sys.TickNanos() != 6.4 {
		t.Fatalf("tick %.2f ns", sys.TickNanos())
	}
	if sys.Now() < 100*time.Millisecond {
		t.Fatal("Now() did not advance")
	}
}

func TestPaperTreeWithinBound(t *testing.T) {
	sys := newSynced(t, PaperTree(), WithSeed(3))
	var worst int64
	for i := 0; i < 200; i++ {
		sys.Run(time.Millisecond)
		if o := sys.MaxOffsetTicks(); o > worst {
			worst = o
		}
	}
	if worst > sys.BoundTicks() {
		t.Fatalf("offset %d ticks > bound %d", worst, sys.BoundTicks())
	}
}

func TestOffsetBetweenAndCounter(t *testing.T) {
	sys := newSynced(t, Pair(), WithSeed(5))
	sys.Run(10 * time.Millisecond)
	c, err := sys.Counter("h0")
	if err != nil || c == 0 {
		t.Fatalf("counter: %d, %v", c, err)
	}
	off, err := sys.OffsetTicks("h0", "h1")
	if err != nil {
		t.Fatal(err)
	}
	if off > 4 || off < -4 {
		t.Fatalf("offset %d", off)
	}
	if _, err := sys.OffsetTicks("h0", "zz"); err == nil {
		t.Fatal("phantom device accepted")
	}
	if _, err := sys.Counter("zz"); err == nil {
		t.Fatal("phantom counter accepted")
	}
}

func TestLoadDoesNotBreakBound(t *testing.T) {
	sys := newSynced(t, Pair(), WithSeed(9),
		WithPPM(map[string]float64{"h0": 100, "h1": -100}))
	sys.SetUniformLoad(1522)
	var worst int64
	for i := 0; i < 100; i++ {
		sys.Run(time.Millisecond)
		if o := sys.MaxOffsetTicks(); o > worst {
			worst = o
		}
	}
	if worst > 4 {
		t.Fatalf("offset under load %d ticks", worst)
	}
	sys.ClearLoad()
	sys.Run(10 * time.Millisecond)
}

func TestPartitionAndHeal(t *testing.T) {
	sys := newSynced(t, PaperTree(), WithSeed(11))
	if err := sys.CutLink("s0", "s3"); err != nil {
		t.Fatal(err)
	}
	sys.Run(300 * time.Millisecond)
	off, _ := sys.OffsetTicks("s0", "s3")
	if off < 0 {
		off = -off
	}
	if off <= 4 {
		t.Fatalf("no drift during partition (%d ticks)", off)
	}
	if err := sys.RestoreLink("s0", "s3"); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunUntilSynced(time.Second); err != nil {
		t.Fatal(err)
	}
	sys.Run(20 * time.Millisecond)
	if o := sys.MaxOffsetTicks(); o > sys.BoundTicks() {
		t.Fatalf("offset %d after heal, bound %d", o, sys.BoundTicks())
	}
	if err := sys.CutLink("s0", "zz"); err == nil {
		t.Fatal("phantom link cut accepted")
	}
	if err := sys.CutLink("s4", "s7"); err == nil {
		t.Fatal("non-adjacent link cut accepted")
	}
	if err := sys.RestoreLink("s4", "s7"); err == nil {
		t.Fatal("non-adjacent restore accepted")
	}
}

func TestOffsetSamples(t *testing.T) {
	sys := newSynced(t, Pair(), WithSeed(13))
	n := 0
	var worst int64
	sys.OnOffsetSample(func(pair string, off int64) {
		n++
		if off < 0 {
			off = -off
		}
		if off > worst {
			worst = off
		}
		if pair != "h0-h1" && pair != "h1-h0" {
			t.Errorf("unexpected pair %q", pair)
		}
	})
	sys.Run(10 * time.Millisecond)
	if n == 0 {
		t.Fatal("no samples")
	}
	if worst > 4 {
		t.Fatalf("sample %d ticks", worst)
	}
}

func TestMeasuredOWD(t *testing.T) {
	sys := newSynced(t, Pair(), WithSeed(15))
	d, err := sys.MeasuredOWDTicks("h0", "h1")
	if err != nil {
		t.Fatal(err)
	}
	if d < 41 || d > 45 {
		t.Fatalf("measured OWD %d ticks, paper range 43-45 (minus alpha bias)", d)
	}
}

func TestDaemonOnFacade(t *testing.T) {
	sys := newSynced(t, Pair(), WithSeed(17))
	d, err := sys.AttachDaemon("h0", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(500 * time.Millisecond)
	if d.Counter() == 0 {
		t.Fatal("daemon never calibrated")
	}
	off := d.OffsetTicks()
	if off < -20 || off > 20 {
		t.Fatalf("daemon offset %.1f ticks", off)
	}
	if _, err := sys.AttachDaemon("zz", 0); err == nil {
		t.Fatal("phantom daemon host accepted")
	}
}

func TestSpeedOption(t *testing.T) {
	sys := newSynced(t, Pair(), WithSeed(19), WithSpeed(phy.Speed100G),
		WithPPM(map[string]float64{"h0": 100, "h1": -100}))
	if sys.TickNanos() != 0.32 {
		t.Fatalf("100G tick %.3f ns, want 0.32 (base units)", sys.TickNanos())
	}
	sys.Run(50 * time.Millisecond)
	// Bound: 4 periods of 0.64 ns = 2.56 ns = 8 base units per hop.
	if got := sys.MaxOffsetNanos(); got > 2.56 {
		t.Fatalf("100G pair offset %.2f ns, bound 2.56", got)
	}
}

func TestWanderAndParityAndBEROptions(t *testing.T) {
	sys := newSynced(t, Pair(), WithSeed(21),
		WithWander(10*time.Millisecond, 100),
		WithParity(),
		WithBER(1e-6))
	var worst int64
	for i := 0; i < 100; i++ {
		sys.Run(time.Millisecond)
		if o := sys.MaxOffsetTicks(); o > worst {
			worst = o
		}
	}
	if worst > 4 {
		t.Fatalf("offset %d ticks with wander+parity+BER", worst)
	}
}

func TestMasterOption(t *testing.T) {
	// With a slow master, the whole network must run at the master's
	// rate instead of the fastest oscillator's.
	sys := newSynced(t, Chain(2), WithSeed(27), WithMaster("h0"),
		WithPPM(map[string]float64{"h0": -100, "sw1": 100, "h1": 100}))
	c0, _ := sys.Counter("h1")
	sys.Run(time.Second)
	c1, _ := sys.Counter("h1")
	rate := float64(c1 - c0)
	masterRate := 156.25e6 * (1 - 100e-6)
	if rate > masterRate*1.00001 || rate < masterRate*0.99999 {
		t.Fatalf("network rate %.0f, want master's %.0f", rate, masterRate)
	}
	if _, err := New(Pair(), WithMaster("nope")); err == nil {
		t.Fatal("phantom master accepted")
	}
}

func TestMixedSpeedsOption(t *testing.T) {
	sys, err := New(Chain(3),
		WithSeed(23),
		WithMixedSpeeds(LinkSpeed{A: "sw1", B: "sw2", Speed: Speed40G}))
	if err != nil {
		t.Fatal(err)
	}
	if sys.TickNanos() != 0.32 {
		t.Fatalf("mixed tick %.3f ns, want 0.32 (base units)", sys.TickNanos())
	}
	sys.Start()
	if err := sys.RunUntilSynced(time.Second); err != nil {
		t.Fatal(err)
	}
	var worst int64
	for i := 0; i < 100; i++ {
		sys.Run(time.Millisecond)
		off, _ := sys.OffsetTicks("h0", "h1")
		if off < 0 {
			off = -off
		}
		if off > worst {
			worst = off
		}
	}
	// Per-hop bound: 4 cycles of 10G (80) + 4 of 40G (20) + 80 units.
	if worst > 180 {
		t.Fatalf("mixed-speed offset %d base units", worst)
	}
}

func TestMixedSpeedsRejectsUnknownLink(t *testing.T) {
	if _, err := New(Chain(2), WithMixedSpeeds(LinkSpeed{A: "h0", B: "nope", Speed: Speed40G})); err == nil {
		t.Fatal("unknown device accepted")
	}
	if _, err := New(Chain(2), WithMixedSpeeds(LinkSpeed{A: "h0", B: "h1", Speed: Speed40G})); err == nil {
		t.Fatal("non-adjacent pair accepted")
	}
}

func TestGraphAndDevices(t *testing.T) {
	sys, err := New(FatTree(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Devices()) != len(sys.Graph().Nodes) {
		t.Fatal("device list mismatch")
	}
	g := sys.Graph()
	if got := g.HostDiameter(); got != 6 {
		t.Fatalf("fat-tree diameter %d", got)
	}
	sysC, err := New(Chain(3))
	if err != nil || len(sysC.Devices()) != 4 {
		t.Fatal("chain build")
	}
	sysS, err := New(Star(4))
	if err != nil || len(sysS.Devices()) != 6 {
		t.Fatal("star build")
	}
}

func TestRunUntilSyncedTimesOut(t *testing.T) {
	sys, err := New(Pair())
	if err != nil {
		t.Fatal(err)
	}
	// Never started: cannot sync.
	if err := sys.RunUntilSynced(10 * time.Millisecond); err == nil {
		t.Fatal("expected timeout")
	}
}

func TestWithCoreConfigValidation(t *testing.T) {
	bad := Option(func(c *config) { c.cfg.BeaconIntervalTicks = 0 })
	if _, err := New(Pair(), bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestParseTopologyValidation: CLI topology specs with bad sizes come
// back as errors, never as builder panics.
func TestParseTopologyValidation(t *testing.T) {
	good := []string{"pair", "tree", "star", "star:3", "chain", "chain:6", "fattree", "fattree:6"}
	for _, spec := range good {
		if _, err := ParseTopology(spec); err != nil {
			t.Errorf("%s: %v", spec, err)
		}
	}
	bad := []string{"chain:0", "chain:-1", "star:0", "star:-2", "fattree:3",
		"fattree:0", "fattree:-4", "ring", "chain:x"}
	for _, spec := range bad {
		if _, err := ParseTopology(spec); err == nil {
			t.Errorf("%s: accepted, want error", spec)
		}
	}
}

// TestRunUntilSyncedClamp: the sync wait never steps past its deadline
// — the final RunFor is clamped to the remaining budget — and a timeout
// reports the actual simulated time spent, not the requested maximum
// rounded up to a whole step.
func TestRunUntilSyncedClamp(t *testing.T) {
	sys, err := New(Pair())
	if err != nil {
		t.Fatal(err)
	}
	// Never started: cannot sync, so the full budget elapses. The odd
	// fraction of a millisecond would have been overshot by the old
	// fixed 1 ms stepping.
	max := 10*time.Millisecond + 300*time.Microsecond
	err = sys.RunUntilSynced(max)
	if err == nil {
		t.Fatal("expected timeout")
	}
	if got := sys.Now(); got != max {
		t.Fatalf("scheduler ran %v, budget %v (overshoot)", got, max)
	}
	if !strings.Contains(err.Error(), max.String()) {
		t.Fatalf("error %q does not report the elapsed %v", err, max)
	}
}

// TestOptionStructLifecycle: the option-struct constructors (Audit,
// Daemon, Chaos) mirror the deprecated wrappers, and Close stops what
// they started — idempotently.
func TestOptionStructLifecycle(t *testing.T) {
	sys, err := New(Pair(), WithSeed(29))
	if err != nil {
		t.Fatal(err)
	}
	aud := sys.Audit(AuditOptions{Interval: 50 * time.Microsecond})
	d, err := sys.Daemon(DaemonOptions{Host: "h0", CalInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	if err := sys.RunUntilSynced(time.Second); err != nil {
		t.Fatal(err)
	}
	sys.Run(100 * time.Millisecond)
	if aud.Checks() == 0 {
		t.Fatal("auditor never checked")
	}
	if aud.Violations() != 0 {
		t.Fatalf("%d violations on a healthy pair", aud.Violations())
	}
	if d.Counter() == 0 {
		t.Fatal("daemon never calibrated")
	}
	if _, err := sys.Daemon(DaemonOptions{Host: "zz"}); err == nil {
		t.Fatal("phantom daemon host accepted")
	}
	if _, err := sys.Chaos(ChaosOptions{}); err == nil {
		t.Fatal("ChaosOptions without a Scenario accepted")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// A closed System stops auditing: advancing time adds no checks.
	n := aud.Checks()
	sys.Run(10 * time.Millisecond)
	if got := aud.Checks(); got != n {
		t.Fatalf("auditor still running after Close (%d -> %d checks)", n, got)
	}
}

// TestChaosOnFacade: the storm campaign runs through the public API —
// scenario from JSON, AttachChaos with an auditor, Verify past the
// deadline — and the chaos metrics appear in the registry export.
func TestChaosOnFacade(t *testing.T) {
	sc, err := LoadChaosScenario("examples/chaos/storm.json")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetricsRegistry()
	tr := NewTracer(1 << 16)
	topo, err := ParseTopology("chain:5")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(topo, WithSeed(5), WithTelemetry(reg, tr))
	if err != nil {
		t.Fatal(err)
	}
	aud := sys.EnableAudit(0)
	eng, err := sys.AttachChaos(sc, aud)
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	sys.RunUntil(eng.Deadline())
	if err := eng.Verify(); err != nil {
		t.Fatalf("%v\n  %s\n  %s", err, eng.Summary(), aud.Summary())
	}
	var b strings.Builder
	if err := WriteMetrics(&b, reg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`dtp_chaos_faults_injected_total{kind="crash"} 1`,
		`dtp_chaos_faults_cleared_total{kind="flap"} 1`,
		"dtp_chaos_active_faults 0",
		"dtp_device_crashes_total 1",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("metrics export missing %q", want)
		}
	}

	// A scenario naming a device outside this topology fails AttachChaos.
	badSc := &ChaosScenario{Name: "bad", Faults: []ChaosFault{
		{Kind: "crash", Device: "nosuch", Duration: ChaosD(time.Millisecond)},
	}}
	if _, err := sys.AttachChaos(badSc, nil); err == nil {
		t.Fatal("AttachChaos accepted an unknown device")
	}
}
