package discipline

import "math"

// lad fits the counter/TSC line by least absolute deviations over a
// sliding window (iteratively reweighted least squares with 1/|r|
// weights, the standard IRLS reduction of the L1 fit), then applies
// chrony-style sample dropping: samples whose residual exceeds DropK
// robust standard deviations of the fit are removed from the window
// and the survivors refit. The newest two samples are always retained
// so a genuine regime change (frequency step) can accumulate evidence
// instead of being vetoed forever by the incumbent fit.
//
// Dropping is a double-edged sword — exactly the phenomenon the
// scion-time LAD notes describe: with an aggressive DropK, heavy-tailed
// PCIe noise keeps the window short, the short-baseline ratio estimate
// wobbles, the wobble manufactures fresh "outliers", and the loop
// oscillates without ever settling. TestLADAggressiveDroppingOscillates
// reproduces it deterministically.
type lad struct {
	window  int
	dropK   float64
	nominal float64

	hist  []Sample
	m     Model
	w     []float64 // IRLS weights
	res   []float64 // residuals of the last fit
	buf   []float64 // scratch for medians
	drops uint64
}

const (
	// ladIters is the fixed IRLS iteration count: enough to converge
	// the L1 fit on a ≤48-sample window, and deterministic.
	ladIters = 10
	// ladEps floors |residual| in the IRLS weight 1/|r| so exact-fit
	// points don't produce infinite weights (counter units).
	ladEps = 1e-3
	// ladScaleFloor keeps the outlier cutoff meaningful when the window
	// fits perfectly (counter units).
	ladScaleFloor = 1e-3
	// ladProtect newest samples are exempt from dropping; ladMinKeep is
	// the smallest window dropping may leave behind.
	ladProtect = 2
	ladMinKeep = 4
	// ladMADToSigma converts a median absolute deviation to a robust
	// standard deviation.
	ladMADToSigma = 1.4826
	// Error-bound shaping, as in the other disciplines.
	ladColdSlackPPM  = 150
	ladLockSamples   = 6
	ladErrMult       = 4
	ladSlackMult     = 4
	ladFloorSlackPPM = 5
)

func newLAD(c Config, nominalRatio float64) *lad {
	d := &lad{window: c.Window, dropK: c.DropK, nominal: nominalRatio}
	d.Reset()
	return d
}

func (d *lad) Name() string { return "lad" }

func (d *lad) Feed(s Sample) Model {
	d.m.Dropped = false
	if n := len(d.hist); n > 0 && s.TSC <= d.hist[n-1].TSC {
		d.m.Dropped = true
		d.drops++
		return d.m
	}
	d.hist = append(d.hist, s)
	if len(d.hist) > d.window {
		d.hist = d.hist[1:]
	}
	if len(d.hist) == 1 {
		d.m = Model{
			Valid: true, DTP: s.DTP, TSC: s.TSC, Ratio: d.nominal,
			ErrUnits: s.LatchErrPs * d.nominal, SlackPPM: ladColdSlackPPM,
		}
		return d.m
	}

	ratio, anchor := d.fit(s)
	scale := d.residScale()

	// Chrony-style dropping: remove samples whose residual exceeds the
	// cutoff, refit the survivors. The newest ladProtect samples are
	// immune, and dropping never shrinks the window below ladMinKeep.
	if n := len(d.hist); n > ladMinKeep {
		cutoff := d.dropK * math.Max(scale, ladScaleFloor)
		kept := d.hist[:0]
		dropped := 0
		for i, smp := range d.hist {
			outlier := math.Abs(d.res[i]) > cutoff
			if outlier && i < n-ladProtect && n-dropped > ladMinKeep {
				dropped++
				continue
			}
			kept = append(kept, smp)
		}
		if dropped > 0 {
			d.hist = kept
			d.drops += uint64(dropped)
			d.m.Dropped = true
			ratio, anchor = d.fit(s)
			scale = d.residScale()
		}
	}

	n := len(d.hist)
	d.m.Valid = true
	d.m.Ratio = ratio
	d.m.DTP = anchor
	d.m.TSC = s.TSC
	d.m.ErrUnits = s.LatchErrPs*ratio + ladErrMult*scale
	if n < ladLockSamples {
		d.m.SlackPPM = ladColdSlackPPM
	} else {
		// Slope standard error of the (unweighted) window baseline.
		var sxx, xb float64
		for _, smp := range d.hist {
			xb += smp.TSC - s.TSC
		}
		xb /= float64(n)
		for _, smp := range d.hist {
			dx := smp.TSC - s.TSC - xb
			sxx += dx * dx
		}
		slackPPM := float64(ladColdSlackPPM)
		if sxx > 0 {
			slackPPM = ladSlackMult * math.Max(scale, ladScaleFloor) / math.Sqrt(sxx) / ratio * 1e6
		}
		d.m.SlackPPM = math.Max(ladFloorSlackPPM, math.Min(ladColdSlackPPM, slackPPM))
	}
	return d.m
}

// fit runs the IRLS L1 regression over d.hist in coordinates reduced
// about the reference sample (x = TSC-ref.TSC, y = DTP-ref.DTP minus
// the nominal-rate line, keeping float64 well conditioned), leaving
// per-sample residuals in d.res. It returns the fitted ratio and the
// fitted counter value at ref.TSC.
func (d *lad) fit(ref Sample) (ratio, anchor float64) {
	n := len(d.hist)
	if cap(d.w) < n {
		d.w = make([]float64, n)
		d.res = make([]float64, n)
	}
	d.w, d.res = d.w[:n], d.res[:n]
	for i := range d.w {
		d.w[i] = 1
	}
	x := func(i int) float64 { return d.hist[i].TSC - ref.TSC }
	y := func(i int) float64 { return d.hist[i].DTP - ref.DTP - d.nominal*x(i) }
	var slope, icept float64
	for it := 0; it < ladIters; it++ {
		var W, Sx, Sy float64
		for i := 0; i < n; i++ {
			W += d.w[i]
			Sx += d.w[i] * x(i)
			Sy += d.w[i] * y(i)
		}
		xb, yb := Sx/W, Sy/W
		var Sxx, Sxy float64
		for i := 0; i < n; i++ {
			dx := x(i) - xb
			Sxx += d.w[i] * dx * dx
			Sxy += d.w[i] * dx * (y(i) - yb)
		}
		if Sxx > 0 {
			slope = Sxy / Sxx
		} else {
			slope = 0
		}
		icept = yb - slope*xb
		for i := 0; i < n; i++ {
			d.res[i] = y(i) - (slope*x(i) + icept)
			d.w[i] = 1 / math.Max(math.Abs(d.res[i]), ladEps)
		}
	}
	return d.nominal + slope, ref.DTP + icept
}

// residScale returns the robust standard deviation of the last fit's
// residuals (scaled MAD about the fit line).
func (d *lad) residScale() float64 {
	d.buf = d.buf[:0]
	for _, r := range d.res {
		d.buf = append(d.buf, math.Abs(r))
	}
	return ladMADToSigma * median(d.buf)
}

func (d *lad) Model() Model { return d.m }

func (d *lad) Reset() {
	d.hist = d.hist[:0]
	d.m = Model{Ratio: d.nominal, SlackPPM: ladColdSlackPPM}
}

func (d *lad) Dropped() uint64 { return d.drops }
