// Package par is a tiny deterministic fan-out primitive: run n
// independent jobs across a bounded worker pool and return their
// results in job order, so callers observe identical output whether the
// pool has one worker or sixteen.
//
// It deliberately has no dependencies: both the experiment sweeps and
// the campaign runner build on it without creating import cycles with
// the public dtp package.
package par

import (
	"fmt"
	"runtime"
	"sync"
)

// Jobs normalizes a worker-count request: values <= 0 select
// runtime.GOMAXPROCS(0), everything else is returned unchanged.
func Jobs(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(0..n-1) across up to jobs concurrent workers and returns
// the results indexed by job, regardless of completion order. The first
// error (by job index, not by wall time) is returned after all workers
// drain; the result slice is still fully populated for jobs that
// succeeded. jobs <= 0 selects GOMAXPROCS; jobs == 1 runs inline with
// no goroutines, which keeps single-worker traces trivially debuggable.
func Map[T any](jobs, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	jobs = Jobs(jobs)
	if jobs > n {
		jobs = n
	}
	if jobs == 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i)
		}
		return out, firstError(errs)
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							errs[i] = fmt.Errorf("par: job %d panicked: %v", i, r)
						}
					}()
					out[i], errs[i] = fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out, firstError(errs)
}

// ForEach is Map without results: run fn over 0..n-1 on up to jobs
// workers and return the first error by job index.
func ForEach(jobs, n int, fn func(i int) error) error {
	_, err := Map(jobs, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
