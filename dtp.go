// Package dtp is a simulation-backed implementation of the Datacenter
// Time Protocol (Lee, Wang, Shrivastav, Weatherspoon — SIGCOMM 2016):
// decentralized clock synchronization running inside the Ethernet
// physical layer, achieving a bounded precision of 4TD (T = 6.4 ns at
// 10 GbE, D = network diameter in hops) with zero packet overhead.
//
// The package wraps the full-fidelity model in internal/ (64b/66b PCS,
// oscillators with ppm skew and wander, clock-domain crossings, wire
// propagation, the DTP state machines, and software daemons) behind a
// small API:
//
//	sys, _ := dtp.New(dtp.PaperTree(), dtp.WithSeed(7))
//	sys.Start()
//	if err := sys.RunUntilSynced(time.Second); err != nil { ... }
//	sys.Run(100 * time.Millisecond)
//	fmt.Printf("max offset: %.1f ns (bound %.1f ns)\n",
//	        sys.MaxOffsetNanos(), sys.BoundNanos())
//
// Everything is deterministic given the seed. Simulated time is decoupled
// from wall time: Run(d) advances the virtual clock by d.
package dtp

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/dtplab/dtp/internal/audit"
	"github.com/dtplab/dtp/internal/chaos"
	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/daemon"
	"github.com/dtplab/dtp/internal/discipline"
	"github.com/dtplab/dtp/internal/phy"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
	"github.com/dtplab/dtp/internal/topo"
)

// Topology describes the devices and cables of a DTP network.
type Topology = topo.Graph

// Speed identifies an Ethernet line rate (re-exported so callers never
// need the internal packages).
type Speed = phy.Speed

// Supported line rates (Table 2 of the paper).
const (
	Speed1G   = phy.Speed1G
	Speed10G  = phy.Speed10G
	Speed40G  = phy.Speed40G
	Speed100G = phy.Speed100G
)

// Pair returns two directly connected hosts (10 m cable).
func Pair() Topology { return topo.Pair() }

// PaperTree returns the SIGCOMM'16 evaluation topology (Figure 5): root
// switch s0, switches s1–s3, hosts s4–s11.
func PaperTree() Topology { return topo.PaperTree() }

// Chain returns a linear host–switch–…–host chain with the given number
// of hops.
func Chain(hops int) Topology { return topo.Chain(hops) }

// FatTree returns a k-ary fat-tree (k even): k^3/4 hosts, 6-hop
// diameter for k >= 4.
func FatTree(k int) Topology { return topo.FatTree(k) }

// Star returns a single switch with n hosts plus a timeserver.
func Star(n int) Topology { return topo.Star(n) }

// ParseTopology parses the CLI topology syntax shared by cmd/dtpsim and
// cmd/dtptrace: "pair | tree | star:N | chain:N | fattree:K".
func ParseTopology(spec string) (Topology, error) {
	name, arg, _ := strings.Cut(spec, ":")
	n := 0
	if arg != "" {
		var err error
		if n, err = strconv.Atoi(arg); err != nil {
			return Topology{}, fmt.Errorf("dtp: bad topology arg %q", arg)
		}
	}
	// Size checks happen here, not in the builders, so a bad CLI spec
	// becomes an error message instead of a panic stack.
	switch name {
	case "pair":
		return Pair(), nil
	case "tree":
		return PaperTree(), nil
	case "star":
		if arg == "" {
			n = 8
		}
		if n < 1 {
			return Topology{}, fmt.Errorf("dtp: star needs at least 1 client, got %d", n)
		}
		return Star(n), nil
	case "chain":
		if arg == "" {
			n = 4
		}
		if n < 1 {
			return Topology{}, fmt.Errorf("dtp: chain needs at least 1 hop, got %d", n)
		}
		return Chain(n), nil
	case "fattree":
		if arg == "" {
			n = 4
		}
		if n < 2 || n%2 != 0 {
			return Topology{}, fmt.Errorf("dtp: fat-tree arity must be even and >= 2, got %d", n)
		}
		return FatTree(n), nil
	default:
		return Topology{}, fmt.Errorf("dtp: unknown topology %q", name)
	}
}

// Option configures a System.
type Option func(*config)

type config struct {
	seed       uint64
	cfg        core.Config
	ppm        map[string]float64
	daemon     daemon.Config
	discipline discipline.Config
	mixed      []LinkSpeed
	reg        *telemetry.Registry
	tracer     *telemetry.Tracer
	heapSched  bool
}

// WithSeed sets the deterministic run seed (default 1).
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithHeapScheduler selects the binary-heap reference discipline (the
// seed engine's data structure: O(log n) index sifts per operation)
// instead of the calendar queue. The dispatch order is identical — the
// reference exists for the equivalence property tests and the BENCH_8
// speedup trajectory, not for production runs.
func WithHeapScheduler() Option {
	return func(c *config) { c.heapSched = true }
}

// WithBeaconInterval sets the resynchronization period in ticks
// (default 200; the 4T bound analysis requires < 5000).
func WithBeaconInterval(ticks uint64) Option {
	return func(c *config) { c.cfg.BeaconIntervalTicks = ticks }
}

// LinkSpeed assigns an Ethernet speed to the cable between two named
// adjacent devices.
type LinkSpeed struct {
	A, B  string
	Speed Speed
}

// WithMixedSpeeds builds a mixed-rate network (§7 of the paper): the
// listed cables run at their assigned speeds, every other cable at
// 10 GbE, and all counters advance in 0.32 ns base units. One tick then
// means one base unit; the per-link bound is 4 port cycles (4 × the
// speed's Delta units).
func WithMixedSpeeds(links ...LinkSpeed) Option {
	return func(c *config) {
		base := core.MixedSpeedConfig()
		// Preserve protocol knobs the caller may have set via other
		// options; replace only the clocking parameters.
		base.BeaconIntervalTicks = c.cfg.BeaconIntervalTicks
		base.BER = c.cfg.BER
		base.Parity = c.cfg.Parity
		base.WanderInterval = c.cfg.WanderInterval
		base.WanderStepPPB = c.cfg.WanderStepPPB
		c.cfg = base
		c.mixed = append([]LinkSpeed{}, links...)
	}
}

// WithSpeed selects the Ethernet speed; counters switch to 0.32 ns base
// units so mixed reporting stays consistent (Table 2 of the paper).
func WithSpeed(s Speed) Option {
	return func(c *config) {
		p := phy.ProfileFor(s)
		c.cfg.Profile = p
		c.cfg.UnitsPerTick = uint64(p.Delta)
		c.cfg.AlphaUnits = 3 * p.Delta
		c.cfg.GuardUnits = 8 * p.Delta
	}
}

// WithWander enables oscillator temperature wander: a random-walk step
// of the given ppb standard deviation every interval.
func WithWander(interval time.Duration, stepPPB float64) Option {
	return func(c *config) {
		c.cfg.WanderInterval = sim.FromStd(interval)
		c.cfg.WanderStepPPB = stepPPB
	}
}

// WithBER sets the wire bit error rate (802.3 objective: 1e-12).
func WithBER(ber float64) Option {
	return func(c *config) { c.cfg.BER = ber }
}

// WithParity enables the parity bit over beacon LSBs.
func WithParity() Option {
	return func(c *config) { c.cfg.Parity = true }
}

// WithPPM pins named devices' oscillator offsets in ppm (|ppm| <= 100);
// unpinned devices draw uniformly from ±100 ppm.
func WithPPM(byName map[string]float64) Option {
	return func(c *config) { c.ppm = byName }
}

// WithHardened enables the Byzantine-hardened protocol mode: per-link
// bounded-jump admission of remote counters, quarantine with a re-INIT
// escape hatch for peers that keep failing it, and a quorum combiner
// gating large session-initial adoptions. On a fault-free network the
// defenses never fire and runs are tick-identical to plain mode; the
// trade-off is that long-diverged live partitions no longer auto-merge
// (see DESIGN.md "Threat model & hardened mode").
func WithHardened() Option {
	return func(c *config) { c.cfg.Hardened = true }
}

// WithMaster enables the §5.4 extension: instead of max-coupling,
// devices form a spanning tree rooted at the named device and follow
// its clock — jumping forward when behind, stalling when ahead. Use it
// when one device has a reliable oscillator (or external time source)
// that should set the network's rate.
func WithMaster(root string) Option {
	return func(c *config) {
		c.cfg.FollowMaster = true
		c.cfg.Master = root
	}
}

// MetricsRegistry holds live metrics (atomic counters, gauges, fixed-
// bucket histograms) exportable in Prometheus text format.
type MetricsRegistry = telemetry.Registry

// Tracer records typed protocol events (state transitions, beacons,
// counter jumps, link up/down, ...) into a bounded ring buffer,
// exportable as JSONL.
type Tracer = telemetry.Tracer

// NewMetricsRegistry returns an empty registry for WithTelemetry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.New() }

// NewTracer returns a tracer keeping the last capacity events
// (default 8192 when capacity <= 0) for WithTelemetry.
func NewTracer(capacity int) *Tracer { return telemetry.NewTracer(capacity) }

// WithTelemetry instruments the network (and any daemons attached
// later) with a metrics registry and/or event tracer. Either argument
// may be nil. Overhead is a few atomic operations per protocol event —
// cheap enough to leave enabled permanently.
func WithTelemetry(reg *MetricsRegistry, tr *Tracer) Option {
	return func(c *config) { c.reg, c.tracer = reg, tr }
}

// WriteMetrics renders the registry in Prometheus text exposition
// format. Output is byte-stable for a given registry state.
func WriteMetrics(w io.Writer, reg *MetricsRegistry) error {
	return telemetry.WritePrometheus(w, reg)
}

// WriteTrace dumps the tracer's retained events as JSON Lines.
func WriteTrace(w io.Writer, tr *Tracer) error {
	return telemetry.WriteJSONL(w, tr)
}

// TelemetryHandler serves /metrics (Prometheus) and /trace (JSONL).
func TelemetryHandler(reg *MetricsRegistry, tr *Tracer) http.Handler {
	return telemetry.Handler(reg, tr)
}

// System is a running DTP network simulation.
type System struct {
	sch *sim.Scheduler
	net *core.Network
	cfg config

	// Attached lifecycle objects, stopped by Close.
	auditors   []*Auditor
	daemons    []*Daemon
	timeplanes []*TimePlane
	closed     bool

	// timeline is the last System.Timeline, the default bundled into
	// FlightRecorder dumps.
	timeline *Timeline
}

// New builds a System over the topology.
func New(t Topology, opts ...Option) (*System, error) {
	c := config{seed: 1, cfg: core.DefaultConfig(), daemon: daemon.DefaultConfig()}
	for _, o := range opts {
		o(&c)
	}
	sch := sim.NewScheduler()
	if c.heapSched {
		sch = sim.NewHeapScheduler()
	}
	var coreOpts []core.Option
	if c.ppm != nil {
		coreOpts = append(coreOpts, core.WithPPM(c.ppm))
	}
	if c.mixed != nil {
		byLink := map[int]phy.Speed{}
		for _, ls := range c.mixed {
			idx, err := findLink(t, ls.A, ls.B)
			if err != nil {
				return nil, err
			}
			byLink[idx] = ls.Speed
		}
		coreOpts = append(coreOpts, core.WithLinkSpeeds(byLink))
	}
	net, err := core.NewNetwork(sch, c.seed, t, c.cfg, coreOpts...)
	if err != nil {
		return nil, err
	}
	if c.reg != nil || c.tracer != nil {
		net.Instrument(c.reg, c.tracer)
	}
	return &System{sch: sch, net: net, cfg: c}, nil
}

// findLink locates the topology link between two named devices.
func findLink(t Topology, a, b string) (int, error) {
	na, ok1 := t.ByName(a)
	nb, ok2 := t.ByName(b)
	if !ok1 || !ok2 {
		return 0, fmt.Errorf("dtp: unknown device in (%s, %s)", a, b)
	}
	for i, l := range t.Links {
		if (l.A == na.ID && l.B == nb.ID) || (l.A == nb.ID && l.B == na.ID) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("dtp: no cable between %s and %s", a, b)
}

// Start brings all links up; the INIT handshakes begin.
func (s *System) Start() { s.net.Start() }

// Run advances simulated time by d.
func (s *System) Run(d time.Duration) { s.sch.RunFor(sim.FromStd(d)) }

// Now returns the current simulated time since start.
func (s *System) Now() time.Duration { return s.sch.Now().Std() }

// RunUntilSynced advances time until every link has measured its delay
// and entered the BEACON phase, or fails once max simulated time has
// elapsed. The final step is clamped to the deadline, so the scheduler
// never overshoots max (stepping a full millisecond past it, as earlier
// versions did) and the error reports the exact simulated time spent.
func (s *System) RunUntilSynced(max time.Duration) error {
	start := s.sch.Now()
	deadline := start + sim.FromStd(max)
	for !s.net.AllSynced() {
		now := s.sch.Now()
		if now >= deadline {
			return fmt.Errorf("dtp: network not synchronized after %v (simulated)", (now - start).Std())
		}
		step := sim.Millisecond
		if remaining := deadline - now; remaining < step {
			step = remaining
		}
		s.sch.RunFor(step)
	}
	return nil
}

// Synced reports whether every link completed INIT.
func (s *System) Synced() bool { return s.net.AllSynced() }

// TickNanos returns the duration of one counter unit in nanoseconds.
func (s *System) TickNanos() float64 {
	cfg := s.net.Config()
	return float64(cfg.UnitFs()) / 1e6
}

// Counter returns the named device's DTP global counter.
func (s *System) Counter(device string) (uint64, error) {
	d, err := s.net.DeviceByName(device)
	if err != nil {
		return 0, err
	}
	return d.GlobalCounter(), nil
}

// OffsetTicks returns the ground-truth counter difference a-b at the
// current instant, in counter units.
func (s *System) OffsetTicks(a, b string) (int64, error) {
	da, err := s.net.DeviceByName(a)
	if err != nil {
		return 0, err
	}
	db, err := s.net.DeviceByName(b)
	if err != nil {
		return 0, err
	}
	return s.net.TrueOffsetUnits(da.ID(), db.ID()), nil
}

// MaxOffsetTicks returns the worst ground-truth offset across all
// device pairs, in counter units.
func (s *System) MaxOffsetTicks() int64 { return s.net.MaxPairwiseOffset() }

// MaxOffsetNanos returns the worst pairwise offset in nanoseconds.
func (s *System) MaxOffsetNanos() float64 {
	return float64(s.MaxOffsetTicks()) * s.TickNanos()
}

// BoundTicks returns the paper's 4TD precision bound in counter units.
func (s *System) BoundTicks() int64 { return s.net.BoundUnits() }

// BoundNanos returns 4TD in nanoseconds.
func (s *System) BoundNanos() float64 {
	return float64(s.BoundTicks()) * s.TickNanos()
}

// ByzantineStats reports the hardened-mode defense activity so far:
// EventsProcessed returns the number of scheduler events dispatched
// since construction — the numerator of the engine's events/sec figure
// (see ThroughputSummary and BENCH_8.json).
func (s *System) EventsProcessed() uint64 { return s.sch.Processed() }

// remote counter advances refused by bounded-jump admission, and ports
// quarantined after repeated rejections. Both are zero on honest runs
// and always zero when the System was not built WithHardened.
func (s *System) ByzantineStats() (rejected, quarantined uint64) {
	return s.net.ByzantineStats()
}

// OnOffsetSample registers a callback receiving every protocol offset
// measurement (t2 - t1 - OWD, in units) with the observing link
// direction named "receiver-sender".
func (s *System) OnOffsetSample(fn func(pair string, offsetTicks int64)) {
	s.net.OnOffset = func(rx *core.Port, off int64) { fn(rx.PairName(), off) }
}

// SetUniformLoad saturates every link with back-to-back frames of the
// given size, confining DTP messages to interpacket gaps.
func (s *System) SetUniformLoad(frameOctets int) {
	s.net.SetGateAll(func(p *core.Port) core.TxGate {
		return core.NewSaturatedGate(frameOctets, 0)
	})
}

// ClearLoad returns every link to idle.
func (s *System) ClearLoad() {
	s.net.SetGateAll(func(p *core.Port) core.TxGate { return core.OpenGate{} })
}

// linkIndex finds the topology link between two named devices.
func (s *System) linkIndex(a, b string) (int, error) {
	return findLink(s.net.Graph, a, b)
}

// CutLink tears down the cable between two adjacent devices (both
// directions), e.g. to create a partition.
func (s *System) CutLink(a, b string) error {
	i, err := s.linkIndex(a, b)
	if err != nil {
		return err
	}
	s.net.SetLinkDown(i)
	return nil
}

// RestoreLink re-plugs a cut cable; the ports re-run INIT and the
// subnets re-merge via BEACON-JOIN.
func (s *System) RestoreLink(a, b string) error {
	i, err := s.linkIndex(a, b)
	if err != nil {
		return err
	}
	s.net.SetLinkUp(i)
	return nil
}

// MeasuredOWDTicks returns the one-way delay the a->b port measured
// during INIT, in counter units (-1 before INIT completes).
func (s *System) MeasuredOWDTicks(a, b string) (int64, error) {
	da, err := s.net.DeviceByName(a)
	if err != nil {
		return 0, err
	}
	p, err := da.PortTo(b)
	if err != nil {
		return 0, err
	}
	return p.OWDUnits(), nil
}

// Auditor is the online 4TD-bound auditor from internal/audit: it
// snapshots every device's counter at a fixed simulated cadence and
// verifies each pair against its live hop-distance bound, emitting
// bound_violation trace events with causal context on breach.
type Auditor = audit.Auditor

// AuditOptions configures the online auditor attached by Audit. The
// zero value selects every default.
type AuditOptions struct {
	// Interval is the simulated check cadence (0 = the 100 µs default).
	Interval time.Duration
}

// Audit attaches and starts an online precision auditor checking every
// device pair at the configured cadence. When the System was built
// WithTelemetry, audit counters, worst-offset/min-slack gauges,
// time-to-sync, and reconvergence metrics land in the registry, and
// violations emit tracer events. The auditor is stopped by Close.
func (s *System) Audit(o AuditOptions) *Auditor {
	cfg := audit.DefaultConfig()
	if o.Interval > 0 {
		cfg.Interval = sim.FromStd(o.Interval)
	}
	a := audit.New(s.net, cfg)
	a.Instrument(s.cfg.reg, s.cfg.tracer)
	a.Start()
	s.auditors = append(s.auditors, a)
	return a
}

// EnableAudit attaches an online auditor checking every `every` of
// simulated time (0 selects the 100 µs default).
//
// Deprecated: use Audit(AuditOptions{Interval: every}); this wrapper
// remains so existing callers compile unchanged.
func (s *System) EnableAudit(every time.Duration) *Auditor {
	return s.Audit(AuditOptions{Interval: every})
}

// EnableSchedulerMetrics exports the event loop's own throughput
// (events processed, queue depth and high water, a depth histogram)
// through the WithTelemetry registry. wallRate additionally exports
// events per wall-clock second — useful live, but host-dependent, so
// leave it off when the metric export must be byte-deterministic.
func (s *System) EnableSchedulerMetrics(wallRate bool) {
	telemetry.InstrumentScheduler(s.cfg.reg, s.sch, telemetry.SchedOptions{WallRate: wallRate})
}

// Daemon is a software clock served by the DTP daemon on one host
// (§5.1): a TSC-interpolated estimate of the NIC's DTP counter.
type Daemon struct {
	d *daemon.Daemon
}

// DaemonOptions configures the software daemon attached by Daemon.
type DaemonOptions struct {
	// Host names the device the daemon reads over (simulated) PCIe.
	Host string
	// CalInterval is the PCIe calibration cadence (the paper uses
	// ~1 s; shorter values suit compressed simulations; 0 = default).
	CalInterval time.Duration
	// Discipline selects the software-clock estimator for this daemon.
	// The zero value inherits the System's WithDiscipline setting
	// (itself defaulting to the paper's moving average).
	Discipline DisciplineConfig
}

// Daemon starts a DTP software daemon (§5.1) on the named host: a
// TSC-interpolated estimate of the NIC's DTP counter. The daemon is
// stopped by Close.
func (s *System) Daemon(o DaemonOptions) (*Daemon, error) {
	dev, err := s.net.DeviceByName(o.Host)
	if err != nil {
		return nil, err
	}
	cfg := s.cfg.daemon
	if o.CalInterval > 0 {
		cfg.CalInterval = sim.FromStd(o.CalInterval)
	}
	dc := o.Discipline
	if dc == (DisciplineConfig{}) {
		dc = s.cfg.discipline
	}
	d, err := daemon.Attach(dev, daemon.Options{Config: cfg, Discipline: dc},
		s.cfg.seed+uint64(dev.ID())+1000)
	if err != nil {
		return nil, err
	}
	if s.cfg.reg != nil || s.cfg.tracer != nil {
		d.Instrument(s.cfg.reg, s.cfg.tracer)
	}
	d.Start()
	wrapped := &Daemon{d: d}
	s.daemons = append(s.daemons, wrapped)
	return wrapped, nil
}

// AttachDaemon starts a DTP daemon on the named host with the given
// calibration cadence.
//
// Deprecated: use Daemon(DaemonOptions{Host: host, CalInterval:
// calEvery}); this wrapper remains so existing callers compile
// unchanged.
func (s *System) AttachDaemon(host string, calEvery time.Duration) (*Daemon, error) {
	return s.Daemon(DaemonOptions{Host: host, CalInterval: calEvery})
}

// Counter returns the daemon's current get_DTP_counter() estimate in
// counter units (fractional).
func (d *Daemon) Counter() float64 { return d.d.Estimate() }

// OffsetTicks returns the daemon's current error versus the hardware
// counter, in units.
func (d *Daemon) OffsetTicks() float64 { return d.d.OffsetUnits() }

// Discipline returns the active estimator's kind ("ma", "pll",
// "theilsen" or "lad").
func (d *Daemon) Discipline() string { return d.d.Discipline() }

// DroppedSamples returns how many calibration samples the discipline's
// outlier logic has rejected.
func (d *Daemon) DroppedSamples() uint64 { return d.d.DroppedSamples() }

// DisciplineResets returns how many times a device restart forced the
// discipline to discard its state and reacquire.
func (d *Daemon) DisciplineResets() uint64 { return d.d.DisciplineResets() }

// ErrorBoundTicks returns the discipline's self-reported bound on the
// current estimate's error, in ticks (+Inf before the first
// calibration). The serving plane folds it into interval widths.
func (d *Daemon) ErrorBoundTicks() float64 { return d.d.EstimateErrorUnits() }

// RatioPPM returns the estimated counter-per-TSC frequency ratio as a
// ppm deviation from nominal.
func (d *Daemon) RatioPPM() float64 {
	dev := d.d.Device()
	nominal := 1e3 / float64(dev.Clock().NominalPeriodFs())
	return (d.d.Ratio()/nominal - 1) * 1e6
}

// Graph exposes the topology for inspection.
func (s *System) Graph() Topology { return s.net.Graph }

// Devices returns the device names in topology order.
func (s *System) Devices() []string {
	out := make([]string, len(s.net.Graph.Nodes))
	for i, n := range s.net.Graph.Nodes {
		out[i] = n.Name
	}
	return out
}

// ChaosScenario is a declarative fault-injection campaign (see
// internal/chaos): link flaps, BER bursts and degradation, grey
// failures, oscillator steps and ramps, device crash/restart.
type ChaosScenario = chaos.Scenario

// ChaosFault is one fault inside a ChaosScenario.
type ChaosFault = chaos.Fault

// ChaosDuration is a fault timestamp/duration; it marshals to and from
// Go duration strings in scenario JSON.
type ChaosDuration = chaos.Duration

// ChaosD converts a wall-style duration into a scenario field value.
func ChaosD(d time.Duration) ChaosDuration { return chaos.D(sim.FromStd(d)) }

// ChaosEngine compiles a ChaosScenario into scheduler events and
// verifies the campaign's postconditions.
type ChaosEngine = chaos.Engine

// LoadChaosScenario reads and validates a scenario JSON file
// (the format behind dtpsim -chaos).
func LoadChaosScenario(path string) (*ChaosScenario, error) { return chaos.Load(path) }

// ChaosOptions configures the fault-injection engine attached by Chaos.
type ChaosOptions struct {
	// Scenario is the declarative fault campaign to arm (required).
	Scenario *ChaosScenario
	// Auditor, when set, receives each fault's expected-degradation
	// window so Verify can require zero violations outside declared
	// windows.
	Auditor *Auditor
}

// Chaos binds a fault-injection scenario to the system: every fault is
// resolved against the topology and scheduled, chaos metrics and trace
// events flow into the System's telemetry (when built WithTelemetry).
// Call before or after Start; run the system past engine.Deadline()
// and then engine.Verify().
func (s *System) Chaos(o ChaosOptions) (*ChaosEngine, error) {
	if o.Scenario == nil {
		return nil, fmt.Errorf("dtp: ChaosOptions.Scenario is required")
	}
	eng, err := chaos.NewEngine(s.net, o.Scenario, s.cfg.seed)
	if err != nil {
		return nil, err
	}
	eng.Instrument(s.cfg.reg, s.cfg.tracer)
	if o.Auditor != nil {
		eng.BindAuditor(o.Auditor)
	}
	if err := eng.Schedule(); err != nil {
		return nil, err
	}
	return eng, nil
}

// AttachChaos binds a fault-injection scenario to the system.
//
// Deprecated: use Chaos(ChaosOptions{Scenario: sc, Auditor: aud}); this
// wrapper remains so existing callers compile unchanged.
func (s *System) AttachChaos(sc *ChaosScenario, aud *Auditor) (*ChaosEngine, error) {
	return s.Chaos(ChaosOptions{Scenario: sc, Auditor: aud})
}

// Close stops everything the System started on top of the simulation —
// attached auditors and daemons — leaving the network and scheduler
// intact for inspection. It is idempotent; a closed System can still
// be read (counters, offsets, graphs) but should not be advanced.
func (s *System) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	for _, tp := range s.timeplanes {
		tp.stop()
	}
	for _, a := range s.auditors {
		a.Stop()
	}
	for _, d := range s.daemons {
		d.d.Stop()
	}
	return nil
}

// RunUntil advances simulated time to the given absolute simulated
// instant (no-op if already past), e.g. a ChaosEngine deadline.
func (s *System) RunUntil(t sim.Time) {
	if t > s.sch.Now() {
		s.sch.Run(t)
	}
}
