// Package xo models quartz crystal oscillators and the tick counters they
// drive. The IEEE 802.3 standard requires the PHY clock frequency to be
// within ±100 ppm of nominal (156.25 MHz for 10 GbE); real oscillators also
// wander slowly with temperature. Both effects are modelled here.
//
// Clocks are evaluated lazily: a clock is a piecewise-linear function of
// simulated time described by (baseCount, baseTickFs, periodFs). There is
// no per-tick event — at 156.25 MHz that would be ~10^10 events per
// simulated minute. Counter jumps (DTP's lc = max(lc, c+d)) and frequency
// wander re-base the linear segment; all arithmetic is exact in integer
// femtoseconds.
package xo

import (
	"fmt"

	"github.com/dtplab/dtp/internal/sim"
)

// Standard 10 GbE PHY clock parameters (IEEE 802.3ae).
const (
	// NominalPeriod10GFs is the 156.25 MHz tick period in femtoseconds
	// (6.4 ns).
	NominalPeriod10GFs = 6_400_000
	// MaxPPM is the oscillator frequency tolerance required by the
	// standard: ±100 parts per million.
	MaxPPM = 100.0
)

// Params configures an oscillator.
type Params struct {
	// NominalPeriodFs is the nominal tick period in femtoseconds.
	NominalPeriodFs int64
	// OffsetPPM is the oscillator's constant frequency offset from
	// nominal, in parts per million. Positive means the oscillator runs
	// fast (shorter period).
	OffsetPPM float64
	// MaxPPM bounds |OffsetPPM| including wander. Zero means use the
	// 802.3 limit of ±100 ppm.
	MaxPPM float64
	// WanderInterval is how often the frequency takes a random-walk step
	// (temperature drift). Zero disables wander.
	WanderInterval sim.Time
	// WanderStepPPB is the standard deviation of each random-walk step in
	// parts per billion.
	WanderStepPPB float64
}

// Default10G returns oscillator parameters for a 10 GbE PHY with the given
// constant ppm offset and no wander.
func Default10G(offsetPPM float64) Params {
	return Params{NominalPeriodFs: NominalPeriod10GFs, OffsetPPM: offsetPPM}
}

// Clock is a free-running oscillator driving a monotonically increasing
// tick counter. It is the physical substrate under both DTP counters and
// PTP hardware clocks.
type Clock struct {
	sch *sim.Scheduler
	rng *sim.RNG

	nominalFs int64
	maxPPM    float64
	ppm       float64
	periodFs  int64 // current true period, fs

	baseCount  uint64 // counter value established at baseTickFs
	baseTickFs int64  // absolute fs timestamp of the tick that set baseCount

	wanderStepPPB float64
	wanderEvery   sim.Time
}

// NewClock creates a clock. The counter starts at zero with its first tick
// at the current simulated time.
func NewClock(sch *sim.Scheduler, rng *sim.RNG, p Params) *Clock {
	if p.NominalPeriodFs <= 0 {
		panic("xo: nominal period must be positive")
	}
	maxPPM := p.MaxPPM
	if maxPPM == 0 {
		maxPPM = MaxPPM
	}
	if p.OffsetPPM > maxPPM || p.OffsetPPM < -maxPPM {
		panic(fmt.Sprintf("xo: offset %.3f ppm outside ±%.1f ppm", p.OffsetPPM, maxPPM))
	}
	c := &Clock{
		sch:           sch,
		rng:           rng,
		nominalFs:     p.NominalPeriodFs,
		maxPPM:        maxPPM,
		wanderStepPPB: p.WanderStepPPB,
		wanderEvery:   p.WanderInterval,
		baseTickFs:    sch.Now().Fs(),
	}
	c.setPPM(p.OffsetPPM)
	if c.wanderEvery > 0 && c.wanderStepPPB > 0 {
		sch.After(c.wanderEvery, c.wanderStep)
	}
	return c
}

// setPPM updates the true period from a ppm offset. Positive ppm = faster
// clock = shorter period.
func (c *Clock) setPPM(ppm float64) {
	c.ppm = ppm
	// period = nominal / (1 + ppm*1e-6), computed in integer fs with
	// rounding. For |ppm| <= 100 the linear approximation
	// nominal*(1 - ppm*1e-6) is off by < 0.01 ppb^2 — negligible against
	// the fs quantization — but use the exact form anyway.
	num := float64(c.nominalFs)
	c.periodFs = int64(num/(1+ppm*1e-6) + 0.5)
	if c.periodFs <= 0 {
		panic("xo: period underflow")
	}
}

func (c *Clock) wanderStep() {
	// Re-base first so the frequency change does not retroactively alter
	// history.
	now := c.sch.Now()
	c.rebase(now)
	ppm := c.ppm + c.rng.Normal(0, c.wanderStepPPB/1000)
	if ppm > c.maxPPM {
		ppm = c.maxPPM
	}
	if ppm < -c.maxPPM {
		ppm = -c.maxPPM
	}
	c.setPPM(ppm)
	c.sch.After(c.wanderEvery, c.wanderStep)
}

// rebase re-anchors the linear segment at the most recent tick at or
// before t, preserving the counter function exactly.
func (c *Clock) rebase(t sim.Time) {
	n := c.CounterAt(t)
	c.baseTickFs = c.tickFs(n)
	c.baseCount = n
}

// tickFs returns the absolute fs instant of tick n (n >= baseCount).
func (c *Clock) tickFs(n uint64) int64 {
	return c.baseTickFs + int64(n-c.baseCount)*c.periodFs
}

// CounterAt returns the counter value at simulated time t: the number of
// ticks whose instants are <= t.
func (c *Clock) CounterAt(t sim.Time) uint64 {
	elapsed := t.Fs() - c.baseTickFs
	if elapsed < 0 {
		panic(fmt.Sprintf("xo: CounterAt(%v) precedes base tick", t))
	}
	return c.baseCount + uint64(elapsed/c.periodFs)
}

// TimeOfCount returns the earliest simulated time (ps resolution, rounded
// up) at which CounterAt reports at least n. Used to schedule "in k ticks"
// events without per-tick events.
func (c *Clock) TimeOfCount(n uint64) sim.Time {
	if n < c.baseCount {
		panic("xo: TimeOfCount before base count")
	}
	fs := c.tickFs(n)
	return sim.Time((fs + 999) / 1000)
}

// SetCounterAt jumps the counter so that CounterAt(t) == n. Tick phase and
// frequency are unchanged: only the labels move, exactly as a DTP local
// counter adjustment works in hardware. n must not move the counter
// backwards.
func (c *Clock) SetCounterAt(n uint64, t sim.Time) {
	cur := c.CounterAt(t)
	if n < cur {
		panic(fmt.Sprintf("xo: counter jump backwards (%d -> %d)", cur, n))
	}
	c.baseTickFs = c.tickFs(cur)
	c.baseCount = n
}

// AdjustPPM changes the oscillator's frequency offset at the current
// simulated time (used by disciplined clocks, e.g. a PTP servo steering a
// PHC). The counter function up to now is preserved. The adjustment is
// clamped to ±maxPPM only if hardware-realistic clamping is enabled via
// params; servo models clamp themselves.
func (c *Clock) AdjustPPM(ppm float64) {
	c.rebase(c.sch.Now())
	c.setPPM(ppm)
}

// PPM returns the current frequency offset in parts per million.
func (c *Clock) PPM() float64 { return c.ppm }

// MaxPPM returns the bound on |PPM| this clock was built with (the
// 802.3 ±100 ppm limit unless overridden). Fault injectors clamp their
// frequency steps to this so a "chaotic" oscillator stays a standards-
// compliant one.
func (c *Clock) MaxPPM() float64 { return c.maxPPM }

// PeriodFs returns the current true tick period in femtoseconds.
func (c *Clock) PeriodFs() int64 { return c.periodFs }

// NominalPeriodFs returns the nominal tick period in femtoseconds.
func (c *Clock) NominalPeriodFs() int64 { return c.nominalFs }

// Counter returns the counter value at the scheduler's current time.
func (c *Clock) Counter() uint64 { return c.CounterAt(c.sch.Now()) }

// Scheduler returns the scheduler driving this clock.
func (c *Clock) Scheduler() *sim.Scheduler { return c.sch }
