package telemetry

import (
	"strings"
	"testing"

	"github.com/dtplab/dtp/internal/sim"
)

func TestInstrumentScheduler(t *testing.T) {
	sch := sim.NewScheduler()
	reg := New()
	InstrumentScheduler(reg, sch, SchedOptions{Interval: sim.Millisecond})

	// A self-rescheduling workload plus a burst of queued events, so both
	// processed and queue-depth metrics have something to show.
	var ticks int
	var work func()
	work = func() {
		ticks++
		if ticks < 100 {
			sch.After(100*sim.Microsecond, work)
		}
	}
	sch.After(0, work)
	for i := 0; i < 32; i++ {
		sch.At(5*sim.Millisecond+sim.Time(i), func() {})
	}
	sch.Run(20 * sim.Millisecond)

	if g := reg.Gauge("dtp_sched_events_processed_total", ""); uint64(g.Value()) != sch.Processed() {
		t.Fatalf("processed gauge %v != scheduler %d", g.Value(), sch.Processed())
	}
	if g := reg.Gauge("dtp_sched_events_pending_high_water", ""); g.Value() < 32 {
		t.Fatalf("high water %v, want >= 32 (burst was queued)", g.Value())
	}
	if h := reg.Histogram("dtp_sched_queue_depth", "", nil); h.Count() == 0 {
		t.Fatal("queue depth histogram never sampled")
	}

	var b strings.Builder
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dtp_sched_events_processed_total",
		"dtp_sched_events_pending",
		"dtp_sched_events_pending_high_water",
		"dtp_sched_queue_depth",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, b.String())
		}
	}
	// Wall-clock rate is opt-in: it must NOT leak into deterministic dumps.
	if strings.Contains(b.String(), "dtp_sched_events_per_wall_second") {
		t.Fatal("wall rate exported without WallRate")
	}
}

func TestInstrumentSchedulerWallRate(t *testing.T) {
	sch := sim.NewScheduler()
	reg := New()
	InstrumentScheduler(reg, sch, SchedOptions{Interval: sim.Millisecond, WallRate: true})
	sch.Run(5 * sim.Millisecond)
	var b strings.Builder
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dtp_sched_events_per_wall_second") {
		t.Fatal("WallRate requested but gauge missing")
	}
}

func TestInstrumentSchedulerNilSafe(t *testing.T) {
	InstrumentScheduler(nil, sim.NewScheduler(), SchedOptions{})
	InstrumentScheduler(New(), nil, SchedOptions{})
}

func TestGaugeSetMin(t *testing.T) {
	reg := New()
	g := reg.Gauge("dtp_test_min", "help")
	g.Set(10)
	g.SetMin(3)
	if g.Value() != 3 {
		t.Fatalf("SetMin(3) left %v", g.Value())
	}
	g.SetMin(7) // larger: no-op
	if g.Value() != 3 {
		t.Fatalf("SetMin(7) overwrote smaller value: %v", g.Value())
	}
	var nilGauge *Gauge
	nilGauge.SetMin(1) // must not panic
}
