package campaign

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dtplab/dtp"
)

// flightGrid is the canned black-box campaign: the breaker scenario's
// total grey loss silences h0 toward h1, so h1's beacon-loss watchdog
// demotes its port and every run must trip the flight recorder. (The
// chaos engine's deadline extends each run past the fault regardless of
// the short measurement window.)
func flightGrid(dir string) Grid {
	return Grid{
		Name:      "flight",
		Topos:     []string{"pair"},
		Seeds:     []uint64{1, 2},
		Durations: []Duration{msec(5)},
		Chaos:     []string{"../../examples/chaos/breaker.json"},
		FlightDir: dir,
	}
}

// readTree maps every file under root (by /-separated relative path) to
// its bytes.
func readTree(t *testing.T, root string) map[string][]byte {
	t.Helper()
	tree := map[string][]byte{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		tree[filepath.ToSlash(rel)] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestFlightCampaignProducesValidBundles(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign point is slow")
	}
	dir := t.TempDir()
	rep, err := Run(flightGrid(dir), Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Results {
		r := &rep.Results[i]
		if r.Err != "" {
			t.Fatalf("run %d errored: %s", i, r.Err)
		}
		if len(r.FlightBundles) == 0 {
			t.Fatalf("run %d: storm demoted ports but tripped no flight bundle", i)
		}
		for _, path := range r.FlightBundles {
			b, err := dtp.LoadFlightBundle(path)
			if err != nil {
				t.Fatalf("run %d bundle %s invalid: %v", i, path, err)
			}
			if b.Seed != int64(r.Seed) {
				t.Fatalf("bundle seed %d, run seed %d", b.Seed, r.Seed)
			}
			if b.Reason != "port_demoted" && b.Reason != "bound_violation" {
				t.Fatalf("unexpected trigger reason %q", b.Reason)
			}
			if b.Trace == nil || len(b.Trace.Events) == 0 {
				t.Fatalf("bundle %s carries no trace window", path)
			}
			if b.Timeline == nil || len(b.Timeline.Rows) == 0 {
				t.Fatalf("bundle %s carries no timeline window", path)
			}
			if _, ok := b.State["devices"]; !ok {
				t.Fatalf("bundle %s missing device state", path)
			}
			if _, ok := b.State["audit"]; !ok {
				t.Fatalf("bundle %s missing audit state", path)
			}
		}
		tl, err := os.ReadFile(r.TimelinePath)
		if err != nil {
			t.Fatalf("run %d timeline: %v", i, err)
		}
		if !strings.HasPrefix(string(tl), `{"schema":"dtp-timeline/1"`) {
			t.Fatalf("run %d timeline header wrong: %.80s", i, tl)
		}
	}
}

// TestFlightCampaignByteDeterminism extends the campaign's core
// contract to the observability artifacts: bundle and timeline files
// must be byte-identical across worker counts, and Results must agree
// modulo the directory prefix.
func TestFlightCampaignByteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign point is slow")
	}
	d1, d2 := t.TempDir(), t.TempDir()
	rep1, err := Run(flightGrid(d1), Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(flightGrid(d2), Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep1.Results {
		r1, r2 := &rep1.Results[i], &rep2.Results[i]
		if r1.Err != "" || r2.Err != "" {
			t.Fatalf("run %d errored: %q / %q", i, r1.Err, r2.Err)
		}
		if len(r1.FlightBundles) != len(r2.FlightBundles) {
			t.Fatalf("run %d: %d bundles with jobs=1, %d with jobs=4",
				i, len(r1.FlightBundles), len(r2.FlightBundles))
		}
		for j := range r1.FlightBundles {
			a, _ := filepath.Rel(d1, r1.FlightBundles[j])
			b, _ := filepath.Rel(d2, r2.FlightBundles[j])
			if a != b {
				t.Fatalf("run %d bundle %d: relative path %q vs %q", i, j, a, b)
			}
		}
	}
	t1, t2 := readTree(t, d1), readTree(t, d2)
	if len(t1) == 0 {
		t.Fatal("flight dir empty")
	}
	if len(t1) != len(t2) {
		t.Fatalf("file sets differ: %d vs %d files", len(t1), len(t2))
	}
	for rel, b1 := range t1 {
		b2, ok := t2[rel]
		if !ok {
			t.Fatalf("file %s missing from jobs=4 tree", rel)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("file %s differs between jobs=1 and jobs=4", rel)
		}
	}
}
