package phy

import "fmt"

// DTP message types (§4.4 of the paper). Three bits encode the type; the
// zero value marks a plain idle block carrying no message, so reverting a
// consumed message to idles is simply writing zeros.
type MsgType uint8

const (
	MsgNone       MsgType = iota // plain /E/ block, no DTP message
	MsgInit                      // INIT: begin one-way-delay measurement
	MsgInitAck                   // INIT-ACK: reply carrying the INIT counter
	MsgBeacon                    // BEACON: periodic resynchronization
	MsgBeaconJoin                // BEACON-JOIN: large adjustment on (re)join
	MsgBeaconMSB                 // BEACON-MSB: top 53 bits of the 106-bit counter
)

func (t MsgType) String() string {
	switch t {
	case MsgNone:
		return "NONE"
	case MsgInit:
		return "INIT"
	case MsgInitAck:
		return "INIT-ACK"
	case MsgBeacon:
		return "BEACON"
	case MsgBeaconJoin:
		return "BEACON-JOIN"
	case MsgBeaconMSB:
		return "BEACON-MSB"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// PayloadBits is the width of a DTP message payload: the 56 control bits
// of an /E/ block minus the 3-bit type field. Each message carries the 53
// least significant bits of the sender's counter.
const PayloadBits = 53

// PayloadMask masks a counter to the transmitted 53 bits.
const PayloadMask = 1<<PayloadBits - 1

// Message is a decoded DTP protocol message.
type Message struct {
	Type    MsgType
	Payload uint64 // 53 bits
}

// Codec encodes DTP messages into the 56 control-character bits of /E/
// blocks. With Parity enabled, the most significant payload bit is
// replaced by even parity over the three least significant payload bits —
// the guard the paper proposes against bit errors in the beacon LSBs
// (§3.2 "Handling failures"). Payloads then carry 52 significant bits,
// which still takes >300 days to wrap at 6.4 ns per tick.
type Codec struct {
	Parity bool
}

// parityBit returns even parity over the three least significant bits.
func parityBit(payload uint64) uint64 {
	return (payload ^ payload>>1 ^ payload>>2) & 1
}

// Encode packs a message into 56 control bits. It panics on a payload
// wider than the codec allows; callers mask counters with PayloadMask.
func (c Codec) Encode(m Message) uint64 {
	if m.Type == MsgNone {
		return 0
	}
	if m.Type > MsgBeaconMSB {
		panic(fmt.Sprintf("phy: invalid message type %d", m.Type))
	}
	payload := m.Payload
	if c.Parity {
		if payload>>(PayloadBits-1) != 0 {
			panic(fmt.Sprintf("phy: payload %#x overflows %d bits (parity mode)", payload, PayloadBits-1))
		}
		payload |= parityBit(payload) << (PayloadBits - 1)
	} else if payload>>PayloadBits != 0 {
		panic(fmt.Sprintf("phy: payload %#x overflows %d bits", payload, PayloadBits))
	}
	return uint64(m.Type) | payload<<3
}

// Decode unpacks 56 control bits. ok is false for a plain idle block
// (type 0), an undefined type, or — in parity mode — a parity mismatch,
// which the caller must treat as a dropped message per the paper's
// failure-handling rule.
func (c Codec) Decode(bits uint64) (m Message, ok bool) {
	t := MsgType(bits & 0b111)
	if t == MsgNone || t > MsgBeaconMSB {
		return Message{}, false
	}
	payload := bits >> 3 & PayloadMask
	if c.Parity {
		got := payload >> (PayloadBits - 1)
		payload &= 1<<(PayloadBits-1) - 1
		if got != parityBit(payload) {
			return Message{}, false
		}
	}
	return Message{Type: t, Payload: payload}, true
}

// CounterMask returns the mask for payload counter bits under this codec:
// 53 bits, or 52 with parity enabled.
func (c Codec) CounterMask() uint64 {
	if c.Parity {
		return 1<<(PayloadBits-1) - 1
	}
	return PayloadMask
}

// EmbedMessage returns an idle block carrying m.
func (c Codec) EmbedMessage(m Message) Block {
	return IdleBlock().WithControlBits(c.Encode(m))
}

// ExtractMessage pulls a DTP message out of an idle block, returning the
// scrubbed block (control bits restored to idles, as required so higher
// layers never see DTP) and the message if one was present.
func (c Codec) ExtractMessage(b Block) (clean Block, m Message, ok bool) {
	if !b.IsIdle() {
		return b, Message{}, false
	}
	m, ok = c.Decode(b.ControlBits())
	return b.WithControlBits(0), m, ok
}
