package core

import (
	"fmt"

	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
	"github.com/dtplab/dtp/internal/topo"
	"github.com/dtplab/dtp/internal/xo"
)

// Device is a DTP-enabled network device: a NIC or a switch. One
// oscillator drives every port of the device (commodity switches feed all
// ports from a single clock source, §2.5), and the device maintains the
// global counter of Algorithm 2: it advances every tick and is the max of
// all port-local counters.
//
// Because a counter adjustment is always max(...), and every port of the
// device shares the oscillator, the per-port local counters and the
// global counter collapse into a single monotone counter that any port
// may push forward; an optional max-tree latency models the cycles a
// hardware max circuit takes to propagate a port's value to the global
// counter.
type Device struct {
	net   *Network
	node  topo.Node
	clock *xo.Clock
	gc    *unitCounter
	ports []*Port

	// lieUnits is the adversarial outgoing-counter inflation installed
	// by chaos liar/overclaim faults (see harden.go SetLieUnits): every
	// beacon and JOIN this device transmits carries gc + lieUnits while
	// the real counter stays honest.
	lieUnits uint64

	// restarts counts Restart calls so observers polling the device
	// (notably the daemon) can detect a counter reset and discard state
	// anchored to the pre-crash counter domain.
	restarts uint64
}

func newDevice(n *Network, node topo.Node, offsetPPM float64, rng *sim.RNG) *Device {
	params := xo.Params{
		NominalPeriodFs: n.cfg.Profile.PeriodFs,
		OffsetPPM:       offsetPPM,
		WanderInterval:  n.cfg.WanderInterval,
		WanderStepPPB:   n.cfg.WanderStepPPB,
	}
	clk := xo.NewClock(n.Sch, rng.Fork("xo"), params)
	return &Device{
		net:   n,
		node:  node,
		clock: clk,
		gc:    newUnitCounter(clk, n.cfg.UnitsPerTick),
	}
}

// Name returns the device's topology name (e.g. "s3").
func (d *Device) Name() string { return d.node.Name }

// ID returns the device's topology node ID.
func (d *Device) ID() int { return d.node.ID }

// Kind returns whether the device is a host NIC or a switch.
func (d *Device) Kind() topo.Kind { return d.node.Kind }

// Ports returns the device's DTP ports.
func (d *Device) Ports() []*Port { return d.ports }

// Clock exposes the device oscillator (read-only use intended).
func (d *Device) Clock() *xo.Clock { return d.clock }

// GlobalCounter returns the DTP global counter at the current time.
func (d *Device) GlobalCounter() uint64 { return d.gc.at(d.net.Sch.Now()) }

// GlobalCounterAt returns the DTP global counter at time t.
func (d *Device) GlobalCounterAt(t simTime) uint64 { return d.gc.at(t) }

// PPM returns the device oscillator's current frequency offset.
func (d *Device) PPM() float64 { return d.clock.PPM() }

// jump requests a forward adjustment of the global counter to target
// (Algorithm 1 T4 / Algorithm 2 T5). If join is set, the adjustment came
// from a BEACON-JOIN and is propagated to every other active port so the
// whole subnet converges to the new maximum (§3.2 "Network dynamics").
func (d *Device) jump(target uint64, from *Port, join bool) {
	if lat := d.net.cfg.MaxTreeLatencyTicks; lat > 0 {
		d.net.Sch.After(d.tickDur(lat), func() { d.applyJump(target, from, join) })
	} else {
		d.applyJump(target, from, join)
	}
}

// applyJump performs the counter adjustment. It is a named method (not
// a closure inside jump) so the common MaxTreeLatencyTicks == 0 path —
// every beacon that moves the counter — runs without allocating.
func (d *Device) applyJump(target uint64, from *Port, join bool) {
	now := d.net.Sch.Now()
	cur := d.gc.at(now)
	if target <= cur {
		return
	}
	d.gc.setAt(target, now)
	tel := &d.net.tel
	tel.jumpsN++
	if tel.tr.Enabled(telemetry.KindCounterJump) {
		joinFlag := int64(0)
		if join {
			joinFlag = 1
		}
		tel.tr.Record(now, telemetry.KindCounterJump, from.tname,
			int64(target-cur), joinFlag, "")
	}
	if join {
		for _, p := range d.ports {
			if p != from && p.state == portSynced {
				p.sendJoinPair()
			}
		}
	}
}

// stall holds the global counter at its current value until `excess`
// units have been absorbed (§5.4): the device's oscillator outran its
// master, so it loses exactly the surplus ticks and then resumes.
func (d *Device) stall(excess uint64, at simTime) {
	d.gc.stallBy(excess, at)
	tel := &d.net.tel
	tel.stalls.Inc()
	if tel.tr.Enabled(telemetry.KindCounterStall) {
		tel.tr.Record(at, telemetry.KindCounterStall, d.node.Name, int64(excess), 0, "")
	}
}

// Crash models an abrupt device power loss: every port goes down — on
// both ends, because the peer's PHY loses signal the instant the lasers
// die — and all protocol state (measured delays, MSB caches, beacon
// schedules) is discarded. The counter content is lost too, but the
// register is only visibly reset by Restart; a crashed device has no
// observable counter.
func (d *Device) Crash() {
	tel := &d.net.tel
	tel.crashes.Inc()
	tel.tr.Record(d.net.Sch.Now(), telemetry.KindDeviceCrash, d.node.Name, 0, 0, "")
	for _, p := range d.ports {
		p.peer.Down()
		p.Down()
	}
}

// Restart powers a crashed device back on: the counter restarts from
// zero and every link comes back up, re-entering through INIT exactly
// like a cold boot. The JOIN machinery then pulls the device (and its
// now-lagging counter) up to the network maximum (§3.2 "Network
// dynamics").
func (d *Device) Restart() {
	now := d.net.Sch.Now()
	d.restarts++
	d.gc.resetAt(now)
	tel := &d.net.tel
	tel.tr.Record(now, telemetry.KindDeviceRestart, d.node.Name, 0, 0, "")
	for _, p := range d.ports {
		p.Up()
		p.peer.Up()
	}
}

// Restarts returns how many times this device has been power-cycled
// via Restart. Each restart resets the counter domain, so consumers
// holding state anchored to the old counter (the daemon's calibration
// history) compare this against a remembered value to know when to
// start over.
func (d *Device) Restarts() uint64 { return d.restarts }

// tickDur converts n of this device's clock ticks to simulated time at
// the oscillator's current rate.
func (d *Device) tickDur(n int) simTime {
	return sim.Femto(int64(n) * d.clock.PeriodFs())
}

// PortTo returns the port connected to the named peer device.
func (d *Device) PortTo(peer string) (*Port, error) {
	for _, p := range d.ports {
		if p.peer != nil && p.peer.dev.Name() == peer {
			return p, nil
		}
	}
	return nil, fmt.Errorf("core: %s has no port to %s", d.Name(), peer)
}
