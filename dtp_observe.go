package dtp

import (
	"fmt"
	"math"
	"time"

	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
)

// Timeline is the windowed time-series store from internal/telemetry: a
// fixed ring of periodic snapshot rows giving rates and
// quantiles-over-time, exportable as deterministic JSONL and mountable
// as an HTTP handler (dtpd's /timeline).
type Timeline = telemetry.Timeline

// TimelineOptions configures the timeline attached by System.Timeline.
// The zero value samples every 1 ms of simulated time, keeping the last
// 1024 rows.
type TimelineOptions struct {
	// Interval is the simulated sampling cadence (0 = 1 ms).
	Interval time.Duration
	// Capacity is the ring size in rows (0 = 1024).
	Capacity int
}

// Timeline attaches and starts a windowed time-series store sampling
// the system's health signals: the live 4TD bound and worst pairwise
// offset, trace-ring drop accounting, the most recent auditor's
// worst-offset/min-slack and violation rate, and — per TimePlane host —
// the served interval half-width in ps (NaN while that host is not
// serving). Call it AFTER Audit and TimePlane so their columns
// register; a timeline wants exactly the signals whose trend explains a
// later breach.
//
// The returned Timeline is also remembered as the default for
// FlightRecorder bundles.
func (s *System) Timeline(o TimelineOptions) *Timeline {
	interval := sim.Time(0)
	if o.Interval > 0 {
		interval = sim.FromStd(o.Interval)
	}
	tl := telemetry.NewTimeline(interval, o.Capacity)
	tl.Gauge("bound_ticks", func() float64 { return float64(s.net.BoundUnits()) })
	tl.Gauge("max_offset_ticks", func() float64 { return float64(s.net.MaxPairwiseOffset()) })
	if tr := s.cfg.tracer; tr != nil {
		tl.Gauge("trace_dropped", func() float64 { return float64(tr.Dropped()) })
	}
	if len(s.auditors) > 0 {
		a := s.auditors[len(s.auditors)-1]
		tl.Gauge("audit_worst_offset_ticks", func() float64 { return float64(a.WorstOffsetUnits()) })
		tl.Gauge("audit_min_slack_ticks", func() float64 {
			sl := a.MinSlackUnits()
			if sl == math.MaxInt64 {
				return math.NaN()
			}
			return float64(sl)
		})
		tl.Rate("audit_violations_per_s", func() float64 { return float64(a.Violations()) })
	}
	for _, w := range s.daemons {
		// Per-daemon discipline health: the live estimate error against
		// the hardware counter and the discipline's own error bound. A
		// breach shows as the offset trend escaping the (self-reported)
		// bound — the exact signal the discipline comparison sweeps on.
		d := w.d
		host := d.Device().Name()
		tl.Gauge("daemon_offset_ticks_"+host, func() float64 { return d.OffsetUnits() })
		tl.Gauge("daemon_err_ticks_"+host, func() float64 {
			e := d.EstimateErrorUnits()
			if math.IsInf(e, 0) {
				return math.NaN()
			}
			return e
		})
	}
	for _, tp := range s.timeplanes {
		for _, h := range tp.Hosts() {
			// The interpolated read half-width, not the frozen published
			// one: between publishes it grows with snapshot age, so the
			// timeline shows the served interval *widening* toward a
			// breach (then null once reads fail closed).
			c := tp.services[h].Clock()
			tl.Gauge("eps_ps_"+h, func() float64 {
				iv, err := c.NowInterval()
				if err != nil {
					return math.NaN()
				}
				return iv.HalfWidthPs()
			})
		}
	}
	tl.Start(s.sch)
	s.timeline = tl
	return tl
}

// FlightRecorder is the always-on black box from internal/telemetry: on
// a trigger it dumps a causally ordered debug bundle (trailing trace
// events, metrics, the timeline window, protocol/daemon/serving-plane
// state) to a seed-deterministic JSON file.
type FlightRecorder = telemetry.Recorder

// FlightOptions configures the recorder attached by
// System.FlightRecorder.
type FlightOptions struct {
	// Dir is where bundles land (created if absent). Required.
	Dir string
	// Timeline overrides the bundled timeline (default: the one built
	// by System.Timeline, when any).
	Timeline *Timeline
	// MaxBundles caps bundles per run (0 = 4).
	MaxBundles int
	// Cooldown is the minimum simulated time between bundles for the
	// same trigger reason (0 = 1 ms).
	Cooldown time.Duration
	// TraceDepth is how many trailing trace events a bundle embeds
	// (0 = 256).
	TraceDepth int
}

// FlightRecorder attaches a flight recorder armed on the trace kinds
// that mean "the protocol's promise broke": unexcused audit bound
// violations and SYNCED→INIT watchdog demotions. Serving-plane
// triggers (a read failing closed, a chaos postcondition failing) are
// wired by the caller via Trigger — see TimePlane loads' OnError and
// the campaign runner. Requires WithTelemetry with a tracer: the
// trigger model rides trace events.
//
// Call it AFTER Audit/TimePlane/Timeline so the state providers and the
// bundled timeline cover everything attached.
func (s *System) FlightRecorder(o FlightOptions) (*FlightRecorder, error) {
	if s.cfg.tracer == nil {
		return nil, fmt.Errorf("dtp: FlightRecorder needs WithTelemetry with a tracer (triggers ride trace events)")
	}
	tl := o.Timeline
	if tl == nil {
		tl = s.timeline
	}
	cooldown := sim.Time(0)
	if o.Cooldown > 0 {
		cooldown = sim.FromStd(o.Cooldown)
	}
	rec, err := telemetry.NewRecorder(telemetry.FlightConfig{
		Dir:        o.Dir,
		Seed:       int64(s.cfg.seed),
		MaxBundles: o.MaxBundles,
		Cooldown:   cooldown,
		TraceDepth: o.TraceDepth,
	}, s.cfg.reg, s.cfg.tracer, tl, s.sch.Now)
	if err != nil {
		return nil, err
	}

	rec.AddState("devices", func() any {
		out := map[string]any{}
		for _, name := range s.Devices() {
			d, err := s.net.DeviceByName(name)
			if err != nil {
				continue
			}
			ports := map[string]string{}
			for _, p := range d.Ports() {
				ports[p.PairName()] = p.State()
			}
			out[name] = map[string]any{
				"counter": d.GlobalCounter(),
				"ports":   ports,
			}
		}
		if rej, quar := s.net.ByzantineStats(); rej > 0 || quar > 0 {
			out["byzantine"] = map[string]any{
				"counter_rejections": rej,
				"port_quarantines":   quar,
			}
		}
		return out
	})
	if len(s.auditors) > 0 {
		a := s.auditors[len(s.auditors)-1]
		rec.AddState("audit", func() any {
			st := map[string]any{
				"checks":             a.Checks(),
				"pair_checks":        a.PairChecks(),
				"violations":         a.Violations(),
				"excused_violations": a.ExcusedViolations(),
				"worst_offset_units": a.WorstOffsetUnits(),
				"converged":          a.Converged(),
			}
			if sl := a.MinSlackUnits(); sl != math.MaxInt64 {
				st["min_slack_units"] = sl
			}
			if v := a.LastViolation(); v != nil {
				st["last_violation"] = fmt.Sprintf("%s~%s offset=%d bound=%d at=%d",
					v.A, v.B, v.OffsetUnits, v.BoundUnits, int64(v.At))
			}
			return st
		})
	}
	if len(s.daemons) > 0 {
		daemons := s.daemons
		rec.AddState("daemons", func() any {
			out := map[string]any{}
			for _, w := range daemons {
				st := map[string]any{
					"estimate_units": w.d.Estimate(),
					"offset_units":   w.d.OffsetUnits(),
					"discipline":     w.d.Discipline(),
					"ratio_ppm":      w.RatioPPM(),
					"dropped":        w.d.DroppedSamples(),
					"resets":         w.d.DisciplineResets(),
				}
				// +Inf (no calibration yet) is not JSON-encodable.
				if e := w.d.EstimateErrorUnits(); !math.IsInf(e, 0) {
					st["err_units"] = e
				}
				out[w.d.Device().Name()] = st
			}
			return out
		})
	}
	if len(s.timeplanes) > 0 {
		tps := s.timeplanes
		rec.AddState("timesvc", func() any {
			out := map[string]any{}
			for _, tp := range tps {
				for _, h := range tp.Hosts() {
					svc := tp.services[h]
					out[h] = map[string]any{
						"publishes":   svc.Publishes(),
						"degraded":    svc.DegradedTicks(),
						"attribution": svc.Attribution(),
					}
				}
			}
			return out
		})
	}

	rec.Arm(telemetry.KindBoundViolation, telemetry.KindPortDemoted,
		telemetry.KindPortQuarantined)
	return rec, nil
}

// LoadFlightBundle reads and validates a flight bundle file (schema,
// trace kinds, timeline consistency).
func LoadFlightBundle(path string) (*telemetry.Bundle, error) {
	return telemetry.LoadBundle(path)
}
