package campaign

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// byzantineScenario is the tolerance-study fault: host s8 ratchets a
// 5000-unit lie onto every counter it transmits, every ~2 µs, for 1 ms.
// Timings are compressed from examples/chaos/liar.json so the study
// stays cheap enough to run under -race in CI.
const byzantineScenario = `{
  "name": "liar-ci",
  "description": "one Byzantine host ratcheting its transmitted counter",
  "settle_grace": "100us",
  "reconverge_deadline": "3ms",
  "faults": [
    {"kind": "liar", "device": "s8", "at": "400us", "duration": "1ms",
     "jump_units": 5000, "cadence": "2us"}
  ]
}`

func byzantineGrid(scenario string) Grid {
	return Grid{
		Name:      "byzantine",
		Topos:     []string{"tree"},
		Seeds:     []uint64{1, 2, 3},
		Durations: []Duration{msec(2)},
		Chaos:     []string{"", scenario},
		Hardened:  []bool{false, true},
		// The liar's JOIN cascades are microsecond transients; the
		// default 100 µs auditor cadence could sample between them.
		AuditEvery: Duration(20 * time.Microsecond),
	}
}

// TestByzantineTolerance is the PR's acceptance demonstration, run as a
// campaign so the comparison is apples-to-apples across seeds:
//
//   - hardening off + one liar: the fabric adopts the inflated counter
//     and the auditor reports unexcused bound violations (adversarial
//     faults declare no excuse windows);
//   - hardening on + the same liar: every lying JOIN is rejected, the
//     attacking port is quarantined, and the run ends with zero
//     unexcused violations and a reconverged fabric;
//   - hardening on, no fault: the defense is free — the clean-run
//     offset envelope must not regress more than 10% versus plain mode.
func TestByzantineTolerance(t *testing.T) {
	scenario := filepath.Join(t.TempDir(), "liar.json")
	if err := writeFile(scenario, byzantineScenario); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(byzantineGrid(scenario), Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Index clean-run offsets per seed for the precision-cost check.
	cleanOff := map[uint64]map[bool]int64{}
	for _, r := range rep.Results {
		if r.Err != "" {
			t.Fatalf("run %d (%s) errored: %s", r.Index, rep.Grid.Label(r.Point), r.Err)
		}
		switch {
		case r.Chaos == "":
			if r.AuditViolations != 0 || !r.ChaosOK || !r.WithinBound {
				t.Errorf("clean run %s: violations=%d withinBound=%v — hardening must not disturb a fault-free fabric",
					rep.Grid.Label(r.Point), r.AuditViolations, r.WithinBound)
			}
			if cleanOff[r.Seed] == nil {
				cleanOff[r.Seed] = map[bool]int64{}
			}
			cleanOff[r.Seed][r.Hardened] = r.MaxOffsetTicks
		case !r.Hardened:
			// The vulnerability: one liar poisons the whole fabric.
			if r.AuditViolations == 0 {
				t.Errorf("liar run %s: zero unexcused violations — plain DTP should have adopted the lie",
					rep.Grid.Label(r.Point))
			}
			if r.ChaosOK {
				t.Errorf("liar run %s: chaos verification passed unhardened", rep.Grid.Label(r.Point))
			}
		default:
			// The defense: rejections, quarantine, zero violations,
			// full reconvergence by the scenario deadline.
			if r.AuditViolations != 0 {
				t.Errorf("hardened liar run %s: %d unexcused violations", rep.Grid.Label(r.Point), r.AuditViolations)
			}
			if !r.ChaosOK {
				t.Errorf("hardened liar run %s: chaos verification failed: %s", rep.Grid.Label(r.Point), r.ChaosErr)
			}
			if r.CounterRejections < uint64(4) {
				t.Errorf("hardened liar run %s: only %d rejections — admission never engaged",
					rep.Grid.Label(r.Point), r.CounterRejections)
			}
			if r.PortQuarantines < 1 {
				t.Errorf("hardened liar run %s: no quarantine despite a persistent liar", rep.Grid.Label(r.Point))
			}
		}
	}

	// Clean-run precision cost: hardened admission only observes honest
	// traffic, so the envelope must stay within 10% (plus one unit of
	// integer headroom) of plain mode, per seed.
	for seed, offs := range cleanOff {
		plain, hardened := offs[false], offs[true]
		if float64(hardened) > float64(plain)*1.1+1 {
			t.Errorf("seed %d: clean-run max offset %d hardened vs %d plain — defense costs >10%% precision",
				seed, hardened, plain)
		}
		t.Logf("seed %d clean-run max offset: plain=%d hardened=%d units", seed, plain, hardened)
	}
	t.Logf("break-even: 1 Byzantine device defeats plain DTP on every seed; hardened mode tolerates it\n%s",
		summaryLine(rep))
}

func summaryLine(rep *Report) string {
	var rej, quar uint64
	for _, r := range rep.Results {
		rej += r.CounterRejections
		quar += r.PortQuarantines
	}
	return fmt.Sprintf("campaign: %d runs, %d counter rejections, %d quarantines",
		len(rep.Results), rej, quar)
}

// TestByzantineDeterminismAcrossWorkerCounts pins the tolerance study
// to the campaign's core contract: the adversarial grid renders
// byte-identically with one worker and with four.
func TestByzantineDeterminismAcrossWorkerCounts(t *testing.T) {
	scenario := filepath.Join(t.TempDir(), "liar.json")
	if err := writeFile(scenario, byzantineScenario); err != nil {
		t.Fatal(err)
	}
	g := byzantineGrid(scenario)
	g.Seeds = []uint64{1, 2} // half the grid: this test re-runs it twice
	serial, err := Run(g, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(g, Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderDeterministic(t, serial), renderDeterministic(t, parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("byzantine campaign diverged between -jobs 1 and -jobs 4:\n--- jobs=1\n%s\n--- jobs=4\n%s", a, b)
	}
}
