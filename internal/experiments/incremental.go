package experiments

import (
	"fmt"
	"math"

	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/fabric"
	"github.com/dtplab/dtp/internal/ptp"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/topo"
)

// IncrementalResult quantifies §5.3: DTP deployed rack by rack. With
// only the racks DTP-enabled, servers inside a rack are nanosecond-
// synchronized while racks relate to each other through per-rack PTP
// masters (so cross-rack precision is PTP-class). DTP-enabling the
// aggregation switch collapses the whole network to nanoseconds.
type IncrementalResult struct {
	// IntraRackWorstNs: worst pairwise offset between servers in the
	// same DTP-enabled rack.
	IntraRackWorstNs float64
	// InterRackWorstNs: worst pairwise wall-clock difference between
	// servers in different racks, related through their PTP masters.
	InterRackWorstNs float64
	// MergedWorstNs: worst pairwise offset after the aggregation switch
	// is DTP-enabled and the racks join one DTP network.
	MergedWorstNs float64
}

// rackGraph builds one DTP-enabled rack: a ToR switch and `hosts`
// servers; host index 0 acts as the rack's PTP master.
func rackGraph(hosts int) topo.Graph {
	g := topo.Graph{}
	g.Nodes = append(g.Nodes, topo.Node{ID: 0, Name: "tor", Kind: topo.Switch})
	for i := 0; i < hosts; i++ {
		id := len(g.Nodes)
		g.Nodes = append(g.Nodes, topo.Node{ID: id, Name: fmt.Sprintf("h%d", i), Kind: topo.Host})
		g.Links = append(g.Links, topo.Link{A: 0, B: id, LengthM: topo.DefaultCableM})
	}
	return g
}

// mergedGraph is both racks plus a DTP-enabled aggregation switch.
func mergedGraph(hostsPerRack int) topo.Graph {
	g := topo.Graph{}
	add := func(name string, k topo.Kind) int {
		id := len(g.Nodes)
		g.Nodes = append(g.Nodes, topo.Node{ID: id, Name: name, Kind: k})
		return id
	}
	agg := add("agg", topo.Switch)
	for r := 0; r < 2; r++ {
		tor := add(fmt.Sprintf("r%d-tor", r), topo.Switch)
		g.Links = append(g.Links, topo.Link{A: agg, B: tor, LengthM: topo.DefaultCableM})
		for i := 0; i < hostsPerRack; i++ {
			h := add(fmt.Sprintf("r%d-h%d", r, i), topo.Host)
			g.Links = append(g.Links, topo.Link{A: tor, B: h, LengthM: topo.DefaultCableM})
		}
	}
	return g
}

// IncrementalDeployment runs the partial deployment (two independent
// DTP racks + PTP between rack masters) and the full deployment (one
// DTP network), reporting the three precision regimes.
func IncrementalDeployment(o Options) (*IncrementalResult, error) {
	o = o.withDefaults(2*sim.Second, 10*sim.Millisecond)
	const hostsPerRack = 4
	res := &IncrementalResult{}

	// ---- Phase 1: per-rack DTP, PTP across racks. -------------------
	sch := sim.NewScheduler()
	var racks [2]*core.Network
	for r := 0; r < 2; r++ {
		n, err := core.NewNetwork(sch, o.Seed+uint64(r), rackGraph(hostsPerRack), core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		n.Start()
		racks[r] = n
	}
	// PTP fabric: timeserver + the two rack masters behind one switch.
	fnet, err := fabric.New(sch, o.Seed+10, topo.Star(2), fabric.DefaultConfig())
	if err != nil {
		return nil, err
	}
	pcfg := ptp.DefaultConfig().Compressed(ptpCompression)
	gm := ptp.NewGrandmaster(fnet, 1, []int{2, 3}, pcfg, o.Seed+11)
	masters := [2]*ptp.Client{
		ptp.NewClient(fnet, 2, 1, pcfg, o.Seed+12),
		ptp.NewClient(fnet, 3, 1, pcfg, o.Seed+13),
	}
	gm.Start()
	masters[0].Start()
	masters[1].Start()

	sch.Run(2 * sim.Second) // DTP syncs in ms; PTP needs the rounds
	for r := 0; r < 2; r++ {
		if !racks[r].AllSynced() {
			return nil, fmt.Errorf("experiments: rack %d failed to sync", r)
		}
	}

	// hostWallNs returns server i of rack r's wall-clock estimate: the
	// rack master's PTP clock, extended to the host over DTP counters
	// (the host's offset from the master in DTP ticks is known to
	// nanoseconds).
	tickNs := 6.4
	hostWallErrNs := func(r, host int) float64 {
		n := racks[r]
		// Node 1 is h0, the master; node 1+host is the queried server.
		deltaTicks := n.TrueOffsetUnits(1+host, 1)
		masterErrNs := masters[r].OffsetToMasterPs() / 1000
		return masterErrNs + float64(deltaTicks)*tickNs
	}
	end := sch.Now() + o.Duration
	for sch.Now() < end {
		sch.RunFor(o.SamplePeriod)
		for r := 0; r < 2; r++ {
			for i := 0; i < hostsPerRack; i++ {
				for j := i + 1; j < hostsPerRack; j++ {
					d := math.Abs(float64(racks[r].TrueOffsetUnits(1+i, 1+j))) * tickNs
					if d > res.IntraRackWorstNs {
						res.IntraRackWorstNs = d
					}
				}
			}
		}
		for i := 0; i < hostsPerRack; i++ {
			for j := 0; j < hostsPerRack; j++ {
				d := math.Abs(hostWallErrNs(0, i) - hostWallErrNs(1, j))
				if d > res.InterRackWorstNs {
					res.InterRackWorstNs = d
				}
			}
		}
	}

	// ---- Phase 2: DTP-enable the aggregation layer. ------------------
	sch2 := sim.NewScheduler()
	merged, err := core.NewNetwork(sch2, o.Seed+20, mergedGraph(hostsPerRack), core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	merged.Start()
	sch2.Run(10 * sim.Millisecond)
	if !merged.AllSynced() {
		return nil, fmt.Errorf("experiments: merged network failed to sync")
	}
	end2 := sch2.Now() + o.Duration
	for sch2.Now() < end2 {
		sch2.RunFor(o.SamplePeriod)
		if d := float64(merged.MaxPairwiseOffset()) * tickNs; d > res.MergedWorstNs {
			res.MergedWorstNs = d
		}
	}
	return res, nil
}
