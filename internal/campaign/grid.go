// Package campaign is the multi-run fan-out layer: it expands a
// declarative grid (seeds × topologies × loads × beacon intervals ×
// durations × optional chaos scenarios) into independent runs, executes
// them across a bounded worker pool, and merges per-run Results in grid
// order — so the aggregate output is byte-identical whether the
// campaign ran on one worker or sixteen. Every run owns its scheduler
// and per-label RNG streams (a property the core simulator guarantees),
// which makes the fan-out embarrassingly parallel without sacrificing
// determinism.
package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/dtplab/dtp"
)

// Duration is a time.Duration that marshals to and from Go duration
// strings ("5ms") in grid JSON.
type Duration time.Duration

// MarshalJSON renders the duration as a Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string or nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("campaign: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("campaign: bad duration %s", b)
	}
	*d = Duration(n)
	return nil
}

// Std converts to a standard time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Grid declares a campaign: the cross product of every dimension below
// is one run. Empty dimensions default to a single neutral value, so a
// grid that only lists seeds sweeps seeds on the default topology.
type Grid struct {
	// Name labels the campaign in summaries and JSONL records.
	Name string `json:"name,omitempty"`

	// Topos are topology specs in the shared CLI syntax
	// ("pair | tree | star:N | chain:N | fattree:K"). Default: ["pair"].
	Topos []string `json:"topos,omitempty"`
	// Seeds are the deterministic run seeds. Default: [1].
	Seeds []uint64 `json:"seeds,omitempty"`
	// Loads are link-load presets: "none", "mtu" or "jumbo".
	// Default: ["none"].
	Loads []string `json:"loads,omitempty"`
	// Beacons are BEACON intervals in ticks. Default: [200].
	Beacons []uint64 `json:"beacons,omitempty"`
	// Durations are simulated measurement windows. Default: ["500ms"].
	Durations []Duration `json:"durations,omitempty"`
	// Chaos lists fault-injection scenario JSON paths; "" means no
	// faults. Default: [""].
	Chaos []string `json:"chaos,omitempty"`
	// Hardened sweeps the Byzantine-hardened protocol mode (bounded-jump
	// admission, quarantine, quorum combiner). Default: [false]. List
	// both values to measure an attack's blast radius with the defenses
	// off against the fabric's tolerance with them on.
	Hardened []bool `json:"hardened,omitempty"`
	// Liars sweeps the number of simultaneous Byzantine liar devices:
	// each run synthesizes that many KindLiar faults on devices chosen
	// by a deterministic stride across the topology's node list, so the
	// axis traces a tolerance curve (how many concurrent liars a mode
	// withstands) per topology. 0 means no synthesized liars; combine
	// with Hardened to compare the curve with defenses on and off.
	// Synthesized faults append to any Chaos scenario on the same
	// point. Default: [0].
	Liars []int `json:"liars,omitempty"`
	// Disciplines sweeps the daemon's software-clock estimator: each
	// non-empty spec ("ma", "pll:kp=0.7", "theilsen", "lad:dropk=2", …)
	// attaches a probe daemon to the run's first host and records its
	// precision/convergence into the Result's Daemon* fields. "" means
	// no daemon probe. Default: [""].
	Disciplines []string `json:"disciplines,omitempty"`

	// Wander enables oscillator temperature wander (10 ms interval,
	// 100 ppb steps — the dtpsim default) on every run.
	Wander bool `json:"wander,omitempty"`
	// TimeService attaches the serving plane (internal/timesvc) to every
	// run — a UTC broadcaster on the first host, a TimeService on each
	// other host — and probes every served clock at the sampling cadence,
	// recording interval widths and the earliest <= truth <= latest
	// verdict into the Result's Time* fields.
	TimeService bool `json:"time_service,omitempty"`
	// BER is the wire bit error rate applied to every run (with the
	// parity bit enabled when nonzero).
	BER float64 `json:"ber,omitempty"`
	// SamplePeriod is the offset sampling cadence inside each run
	// (default 100 µs simulated).
	SamplePeriod Duration `json:"sample_period,omitempty"`
	// AuditEvery is the online auditor cadence (default 100 µs).
	AuditEvery Duration `json:"audit_every,omitempty"`
	// SyncTimeout bounds how long each run may take to complete INIT
	// (default 1 s simulated).
	SyncTimeout Duration `json:"sync_timeout,omitempty"`

	// FlightDir, when set, arms observability on every run: a metrics
	// registry + tracer, a Timeline at the sampling cadence, and a
	// flight recorder whose bundles for run N land under
	// <FlightDir>/run-NNN/ next to that run's timeline.jsonl. Paths and
	// file bytes are pure functions of the grid point, so output is
	// identical across -jobs counts.
	FlightDir string `json:"flight_dir,omitempty"`
}

// Point is one fully resolved run of a campaign grid.
type Point struct {
	// Index is the run's position in grid order; results are always
	// merged by Index, never by completion order.
	Index int    `json:"index"`
	Topo  string `json:"topo"`
	Seed  uint64 `json:"seed"`
	Load  string `json:"load"`
	// Beacon is the BEACON interval in ticks.
	Beacon   uint64   `json:"beacon"`
	Duration Duration `json:"duration"`
	// Chaos is the scenario path ("" = no fault injection).
	Chaos string `json:"chaos,omitempty"`
	// Hardened selects the Byzantine-hardened protocol mode.
	Hardened bool `json:"hardened,omitempty"`
	// Liars is how many synthesized simultaneous Byzantine liar devices
	// this run carries (see Grid.Liars).
	Liars int `json:"liars,omitempty"`
	// Discipline is the daemon-probe estimator spec ("" = no probe).
	Discipline string `json:"discipline,omitempty"`
}

func (p Point) String() string {
	s := fmt.Sprintf("topo=%s seed=%d load=%s beacon=%d dur=%v",
		p.Topo, p.Seed, p.Load, p.Beacon, p.Duration.Std())
	if p.Chaos != "" {
		s += " chaos=" + p.Chaos
	}
	if p.Hardened {
		s += " hardened"
	}
	if p.Liars > 0 {
		s += fmt.Sprintf(" liars=%d", p.Liars)
	}
	if p.Discipline != "" {
		s += " discipline=" + p.Discipline
	}
	return s
}

// withDefaults fills empty dimensions and scalar knobs.
func (g Grid) withDefaults() Grid {
	if len(g.Topos) == 0 {
		g.Topos = []string{"pair"}
	}
	if len(g.Seeds) == 0 {
		g.Seeds = []uint64{1}
	}
	if len(g.Loads) == 0 {
		g.Loads = []string{"none"}
	}
	if len(g.Beacons) == 0 {
		g.Beacons = []uint64{200}
	}
	if len(g.Durations) == 0 {
		g.Durations = []Duration{Duration(500 * time.Millisecond)}
	}
	if len(g.Chaos) == 0 {
		g.Chaos = []string{""}
	}
	if len(g.Hardened) == 0 {
		g.Hardened = []bool{false}
	}
	if len(g.Liars) == 0 {
		g.Liars = []int{0}
	}
	if len(g.Disciplines) == 0 {
		g.Disciplines = []string{""}
	}
	if g.SamplePeriod <= 0 {
		g.SamplePeriod = Duration(100 * time.Microsecond)
	}
	if g.AuditEvery <= 0 {
		g.AuditEvery = Duration(100 * time.Microsecond)
	}
	if g.SyncTimeout <= 0 {
		g.SyncTimeout = Duration(time.Second)
	}
	return g
}

// Validate rejects malformed dimensions before any run starts.
func (g Grid) Validate() error {
	g = g.withDefaults()
	for _, l := range g.Loads {
		switch l {
		case "none", "mtu", "jumbo":
		default:
			return fmt.Errorf("campaign: unknown load %q (want none|mtu|jumbo)", l)
		}
	}
	for _, b := range g.Beacons {
		if b == 0 {
			return fmt.Errorf("campaign: beacon interval must be positive")
		}
	}
	for _, d := range g.Durations {
		if d <= 0 {
			return fmt.Errorf("campaign: duration must be positive, got %v", d.Std())
		}
	}
	if g.BER < 0 {
		return fmt.Errorf("campaign: BER must be >= 0, got %g", g.BER)
	}
	for _, l := range g.Liars {
		if l < 0 {
			return fmt.Errorf("campaign: liar count must be >= 0, got %d", l)
		}
	}
	for _, spec := range g.Disciplines {
		if spec == "" {
			continue
		}
		if _, err := dtp.ParseDiscipline(spec); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	}
	return nil
}

// Expand resolves the grid into its runs, in grid order: topology
// outermost, then load, beacon, duration, chaos, hardened, liars,
// discipline, and seed innermost — so seed sweeps of one configuration
// are contiguous.
func (g Grid) Expand() []Point {
	g = g.withDefaults()
	var pts []Point
	for _, topo := range g.Topos {
		for _, load := range g.Loads {
			for _, beacon := range g.Beacons {
				for _, dur := range g.Durations {
					for _, chaos := range g.Chaos {
						for _, hardened := range g.Hardened {
							for _, liars := range g.Liars {
								for _, disc := range g.Disciplines {
									for _, seed := range g.Seeds {
										pts = append(pts, Point{
											Index: len(pts), Topo: topo, Seed: seed,
											Load: load, Beacon: beacon,
											Duration: dur, Chaos: chaos,
											Hardened: hardened, Liars: liars,
											Discipline: disc,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return pts
}

// LoadGrid reads and validates a grid from a JSON file.
func LoadGrid(path string) (*Grid, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	var g Grid
	if err := json.Unmarshal(b, &g); err != nil {
		return nil, fmt.Errorf("campaign: parsing %s: %w", path, err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", path, err)
	}
	return &g, nil
}

// SeedSweep builds the grid behind `dtpsim -sweep-seeds N`: n
// consecutive seeds starting at base, one topology/load/beacon/duration
// configuration.
func SeedSweep(base uint64, n int) []uint64 {
	if n < 1 {
		n = 1
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = base + uint64(i)
	}
	return seeds
}
