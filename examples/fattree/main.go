// Fat-tree: synchronize an entire datacenter. The paper's abstract
// claims 153.6 ns bound for a six-hop network; a k=4 fat-tree (16 hosts,
// 20 switches) has exactly that diameter. This example brings the whole
// fabric up, lets every one of its 48 links measure its delay, and
// verifies the global bound — then knocks out a core switch's links to
// show the max-coupled counters surviving re-routing of time through
// the remaining topology.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/dtplab/dtp"
)

func main() {
	g := dtp.FatTree(4)
	sys, err := dtp.New(g, dtp.WithSeed(7), dtp.WithWander(10*time.Millisecond, 100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fat-tree k=4: %d devices, %d cables, host diameter %d hops\n",
		len(g.Nodes), len(g.Links), g.HostDiameter())
	fmt.Printf("paper bound: 4TD = %.1f ns\n\n", sys.BoundNanos())

	sys.Start()
	if err := sys.RunUntilSynced(time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all links synchronized at t=%v\n", sys.Now())

	var worst int64
	for i := 0; i < 10; i++ {
		sys.Run(50 * time.Millisecond)
		if o := sys.MaxOffsetTicks(); o > worst {
			worst = o
		}
	}
	fmt.Printf("worst pairwise offset across the datacenter: %d ticks = %.1f ns (bound %d ticks)\n\n",
		worst, float64(worst)*sys.TickNanos(), sys.BoundTicks())

	// Fail core0 entirely: every aggregation switch loses one uplink.
	// core0 itself is now an island and free-runs, but the rest of the
	// fabric stays connected through the other three cores, and time
	// keeps flowing within the bound.
	fmt.Println("failing all four links of core0...")
	for _, agg := range []string{"p0-agg0", "p1-agg0", "p2-agg0", "p3-agg0"} {
		if err := sys.CutLink(agg, "core0"); err != nil {
			log.Fatal(err)
		}
	}
	names := sys.Devices()
	worstConnected := func() int64 {
		var w int64
		for i, a := range names {
			if a == "core0" {
				continue
			}
			for _, b := range names[i+1:] {
				if b == "core0" {
					continue
				}
				o, err := sys.OffsetTicks(a, b)
				if err != nil {
					log.Fatal(err)
				}
				if o < 0 {
					o = -o
				}
				if o > w {
					w = o
				}
			}
		}
		return w
	}
	worst = 0
	for i := 0; i < 10; i++ {
		sys.Run(50 * time.Millisecond)
		if o := worstConnected(); o > worst {
			worst = o
		}
	}
	island, _ := sys.OffsetTicks("core0", "p0-agg0")
	if island < 0 {
		island = -island
	}
	fmt.Printf("worst offset among connected devices: %d ticks = %.1f ns\n",
		worst, float64(worst)*sys.TickNanos())
	fmt.Printf("(the isolated core0 free-ran %d ticks away, as expected)\n", island)

	fmt.Println("restoring core0...")
	for _, agg := range []string{"p0-agg0", "p1-agg0", "p2-agg0", "p3-agg0"} {
		if err := sys.RestoreLink(agg, "core0"); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.RunUntilSynced(time.Second); err != nil {
		log.Fatal(err)
	}
	sys.Run(100 * time.Millisecond)
	fmt.Printf("after repair: max offset %d ticks (bound %d)\n",
		sys.MaxOffsetTicks(), sys.BoundTicks())
}
