package timesvc

import (
	"sync/atomic"

	"github.com/dtplab/dtp/internal/audit"
	"github.com/dtplab/dtp/internal/daemon"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
)

// ServiceConfig tunes the calibration/publish side. The zero value
// selects every default.
type ServiceConfig struct {
	// PublishInterval is the snapshot cadence in simulated time
	// (default 10 ms). Each tick folds the daemon, follower, and audit
	// state into one immutable snapshot.
	PublishInterval sim.Time

	// SoftwareMarginUnits is the §5.1 daemon software-access margin
	// added to the audit bound, in counter units (default 8: the paper's
	// ±4 smoothed ticks on each of the two daemons involved).
	SoftwareMarginUnits int64

	// ResidualFactor and ResidualFloorPs turn the follower's smoothed
	// |prediction residual| into the broadcast-error component of the
	// bound: max(ResidualFloorPs, ResidualFactor × residual). The factor
	// covers residual tails above the EWMA (default 4); the floor covers
	// the cold start before the EWMA has seen enough broadcasts
	// (default 25 ns).
	ResidualFactor  float64
	ResidualFloorPs float64

	// DriftPPM widens published intervals as they age, covering ratio
	// estimation error between publishes (default 5 ppm: the daemon's
	// ratio slack plus the follower's, see daemon.ratioSlackPPM).
	DriftPPM float64

	// MaxAge is how stale a snapshot may be served before reads fail
	// closed (default 8 × PublishInterval).
	MaxAge sim.Time

	// WarmupPairs is how many ratio measurements the UTC follower must
	// have folded in before the service publishes at all (default 5):
	// before that, the frequency-ratio and residual estimates are too
	// raw to stand behind an error bound.
	WarmupPairs uint64
}

// DefaultServiceConfig returns the default serving-plane configuration.
func DefaultServiceConfig() ServiceConfig {
	return ServiceConfig{
		PublishInterval:     10 * sim.Millisecond,
		SoftwareMarginUnits: 8,
		ResidualFactor:      4,
		ResidualFloorPs:     25_000,
		DriftPPM:            5,
		WarmupPairs:         5,
	}
}

func (c *ServiceConfig) fillDefaults() {
	d := DefaultServiceConfig()
	if c.PublishInterval <= 0 {
		c.PublishInterval = d.PublishInterval
	}
	if c.SoftwareMarginUnits <= 0 {
		c.SoftwareMarginUnits = d.SoftwareMarginUnits
	}
	if c.ResidualFactor <= 0 {
		c.ResidualFactor = d.ResidualFactor
	}
	if c.ResidualFloorPs <= 0 {
		c.ResidualFloorPs = d.ResidualFloorPs
	}
	if c.DriftPPM <= 0 {
		c.DriftPPM = d.DriftPPM
	}
	if c.MaxAge <= 0 {
		c.MaxAge = 8 * c.PublishInterval
	}
	if c.WarmupPairs == 0 {
		c.WarmupPairs = d.WarmupPairs
	}
}

// Degradation reason codes (V1 of timesvc_degraded trace events).
const (
	// DegradedNoCalibration: the daemon has not completed a PCIe
	// calibration yet.
	DegradedNoCalibration = iota
	// DegradedNoBroadcast: no UTC broadcast pair has arrived.
	DegradedNoBroadcast
	// DegradedNoBound: the auditor has no live all-pairs bound for this
	// host (not converged, or the host is partitioned).
	DegradedNoBound
	// DegradedWarmup: the UTC follower has fewer than WarmupPairs ratio
	// measurements; estimates are too raw to bound honestly.
	DegradedWarmup
)

var degradedReasons = [...]string{"no_calibration", "no_broadcast", "no_bound", "warmup"}

// Service is the calibration/publish half of one host's time service.
// On every publish tick (a scheduler event, so strictly on the
// simulation goroutine) it composes
//
//	ε = (liveAuditBound + daemonErr + broadcasterErr + softwareMargin) · psPerUnit
//	  + max(residualFloor, residualFactor · broadcastResidual)
//
// and publishes a snapshot anchored in the host's TSC domain. When any
// input is unavailable — daemon uncalibrated, no broadcast yet, no
// live audit bound — the tick publishes nothing and counts the reason;
// the previous snapshot then ages out at MaxAge and readers fail
// closed, which is the honest behavior for a clock that has lost its
// error bound.
type Service struct {
	d   *daemon.Daemon
	f   *daemon.UTCFollower
	aud *audit.Auditor
	sch *sim.Scheduler
	cfg ServiceConfig

	host  string
	store Store
	clock *Clock // TSC-timebase clock for in-sim reads

	epoch uint64
	// publishes/degraded are atomic because the /healthz handler reads
	// them from HTTP goroutines while the publish tick writes them.
	publishes atomic.Uint64
	degraded  atomic.Uint64

	// attr is the ε-budget split of every published half-width,
	// recorded unconditionally (cheap: eight atomic stores per 10 ms
	// publish tick) so Attribution() works even without a Registry.
	attr attrState

	event   sim.Event
	stopped bool

	tr         *telemetry.Tracer
	mPublishes *telemetry.Counter
	mDegraded  [len(degradedReasons)]*telemetry.Counter
	mBound     *telemetry.Gauge
	mEpsLast   [numAttrComponents]*telemetry.Gauge
	hEps       [numAttrComponents]*telemetry.StripedHistogram
	wEps       [numAttrComponents]*telemetry.StripeWriter
}

// NewService wires a host's daemon, UTC follower, and the network
// auditor into a time service. The auditor supplies the live cross-host
// bound; it must audit this host (HostsOnly auditors audit every host).
func NewService(d *daemon.Daemon, f *daemon.UTCFollower, aud *audit.Auditor, cfg ServiceConfig) *Service {
	cfg.fillDefaults()
	s := &Service{
		d: d, f: f, aud: aud,
		sch:  d.Device().Clock().Scheduler(),
		cfg:  cfg,
		host: d.Device().Name(),
	}
	s.clock = NewClock(&s.store, TSCTimebase{C: d.TSC()})
	return s
}

// Instrument attaches telemetry. Either argument may be nil.
func (s *Service) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	s.tr = tr
	s.mPublishes = reg.Counter("dtp_timesvc_publishes_total",
		"Clock snapshots published by the time service.", "host", s.host)
	for i, reason := range degradedReasons {
		s.mDegraded[i] = reg.Counter("dtp_timesvc_degraded_total",
			"Publish ticks skipped because no honest error bound was available.",
			"host", s.host, "reason", reason)
	}
	s.mBound = reg.Gauge("dtp_timesvc_bound_ps",
		"Uncertainty half-width of the last published snapshot, in picoseconds.",
		"host", s.host)
	for i, comp := range AttrComponentNames {
		s.mEpsLast[i] = reg.Gauge("dtp_timesvc_eps_last_ps",
			"Last published half-width component, in picoseconds.",
			"host", s.host, "component", comp)
		// One stripe per component: the publish tick is the only writer.
		// Unit 1 ns with 30 power-of-two buckets spans 1 ns .. ~0.5 ms.
		s.hEps[i] = reg.StripedHistogram("dtp_timesvc_eps_ps",
			"Published half-width components, in picoseconds.",
			1000, 30, 1, "host", s.host, "component", comp)
		s.wEps[i] = s.hEps[i].Writer()
	}
}

// Start schedules the periodic publish tick.
func (s *Service) Start() {
	s.stopped = false
	s.event = s.sch.After(s.cfg.PublishInterval, s.tick)
}

// Stop cancels publishing; the last snapshot keeps serving until it
// ages out.
func (s *Service) Stop() {
	s.stopped = true
	s.event.Cancel()
}

// Host returns the served host's device name.
func (s *Service) Host() string { return s.host }

// Store returns the snapshot store, e.g. to build a Clock on a
// different timebase (the load generator's wall clock).
func (s *Service) Store() *Store { return &s.store }

// Clock returns the in-sim reader: a Clock on this host's TSC
// timebase. Only usable on the simulation goroutine.
func (s *Service) Clock() *Clock { return s.clock }

// Publishes returns how many snapshots have been published. Safe from
// any goroutine.
func (s *Service) Publishes() uint64 { return s.publishes.Load() }

// DegradedTicks returns how many publish ticks found no honest bound.
// Safe from any goroutine.
func (s *Service) DegradedTicks() uint64 { return s.degraded.Load() }

// Config returns the effective configuration (defaults filled).
func (s *Service) Config() ServiceConfig { return s.cfg }

func (s *Service) tick() {
	if s.stopped {
		return
	}
	s.publish()
	s.event = s.sch.After(s.cfg.PublishInterval, s.tick)
}

// publish composes and publishes one snapshot, or counts why it could
// not.
func (s *Service) publish() {
	if !s.d.Calibrated() {
		s.degrade(DegradedNoCalibration)
		return
	}
	utc, err := s.f.UTC()
	if err != nil {
		s.degrade(DegradedNoBroadcast)
		return
	}
	if s.f.RatioUpdates() < s.cfg.WarmupPairs {
		s.degrade(DegradedWarmup)
		return
	}
	boundUnits := s.aud.LiveBoundUnits(s.host)
	if boundUnits < 0 {
		s.degrade(DegradedNoBound)
		return
	}

	// Counter-domain error, split per source and converted to UTC ps so
	// the budget is attributable: the audited cross-host hardware
	// disagreement (4TD) plus the fixed software margin, this daemon's
	// self-reported estimate error (adaptive — a PCIe contention spike
	// widens it for one calibration interval), the broadcaster's
	// self-reported error shipped inside the anchor pair (NTP
	// root-dispersion style), and the follower's realized one-interval
	// prediction residual with tail factor and cold-start floor.
	ratio := s.f.Ratio()
	var comps [numAttrComponents]float64
	comps[attrAudit] = float64(boundUnits+s.cfg.SoftwareMarginUnits) * ratio
	comps[attrDaemon] = s.d.EstimateErrorUnits() * ratio
	comps[attrBcast] = s.f.AnchorErrUnits() * ratio
	comps[attrResid] = s.cfg.ResidualFloorPs
	if r := s.cfg.ResidualFactor * s.f.ResidualPs(); r > comps[attrResid] {
		comps[attrResid] = r
	}
	eps := comps[attrAudit] + comps[attrDaemon] + comps[attrBcast] + comps[attrResid]
	s.attr.record(&comps)

	s.epoch++
	s.store.Publish(Snapshot{
		Epoch:     s.epoch,
		AnchorRaw: int64(s.d.TSC().Now()),
		AnchorUTC: utc,
		// UTC ps per TSC ps: daemon units-per-TSC-ps × follower
		// UTC-ps-per-unit.
		Ratio:    s.d.Ratio() * s.f.Ratio(),
		BoundPs:  eps,
		DriftPPM: s.cfg.DriftPPM,
		MaxAgePs: int64(s.cfg.MaxAge),
	})
	s.publishes.Add(1)
	s.mPublishes.Inc()
	s.mBound.Set(eps)
	for i, v := range comps {
		s.mEpsLast[i].Set(v)
		// Flush per publish: one atomic fold per 10 ms keeps the
		// registry scrape (and every deterministic export) exact.
		s.wEps[i].Observe(v)
		s.wEps[i].Flush()
	}
	if s.tr.Enabled(telemetry.KindTimesvcPublish) {
		s.tr.Record(s.sch.Now(), telemetry.KindTimesvcPublish, s.host,
			int64(eps), int64(s.epoch), "")
	}
}

func (s *Service) degrade(reason int) {
	s.degraded.Add(1)
	s.mDegraded[reason].Inc()
	if s.tr.Enabled(telemetry.KindTimesvcDegraded) {
		s.tr.Record(s.sch.Now(), telemetry.KindTimesvcDegraded, s.host,
			int64(reason), 0, degradedReasons[reason])
	}
}

// ReadCheck samples the in-sim clock at the current simulated instant
// and verifies the interval against ground truth (simulated time is
// true UTC — the TrueUTC broadcast source serves exactly it). Returns
// the interval width, whether truth fell inside, and any read error.
// Only usable on the simulation goroutine.
func (s *Service) ReadCheck() (widthPs float64, covered bool, err error) {
	_, iv, err := s.clock.At(int64(s.d.TSC().Now()))
	if err != nil {
		return 0, false, err
	}
	return iv.WidthPs(), iv.Contains(float64(s.sch.Now())), nil
}
