package experiments

import (
	"fmt"

	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/fabric"
	"github.com/dtplab/dtp/internal/gps"
	"github.com/dtplab/dtp/internal/ntp"
	"github.com/dtplab/dtp/internal/par"
	"github.com/dtplab/dtp/internal/phy"
	"github.com/dtplab/dtp/internal/ptp"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/stats"
	"github.com/dtplab/dtp/internal/topo"
)

// Table1Row compares one protocol, reproducing Table 1 with a measured
// precision column derived from an actual run of each protocol's
// reference deployment.
type Table1Row struct {
	Protocol        string
	PaperPrecision  string
	MeasuredWorstNs float64
	Scalability     string
	Overhead        string
	ExtraHW         string
}

// Table1 runs all four protocols and reports their measured worst-case
// precision alongside the paper's qualitative entries.
func Table1(o Options) ([]Table1Row, error) {
	o = o.withDefaults(2*sim.Second, 10*sim.Millisecond)

	// --- NTP: star LAN, software timestamps. ---
	ntpWorst, err := runNTPWorst(o)
	if err != nil {
		return nil, err
	}
	// --- PTP: idle star with hardware timestamping. ---
	ptpRes, err := RunPTP(Options{Seed: o.Seed, Duration: o.Duration}, LoadIdle)
	if err != nil {
		return nil, err
	}
	// --- GPS: pairwise receiver offsets. ---
	gpsWorst := runGPSWorst(o)
	// --- DTP: paper tree, adjacent true offsets. ---
	dtpRes, err := Fig6a(Options{Seed: o.Seed, Duration: o.Duration})
	if err != nil {
		return nil, err
	}

	return []Table1Row{
		{"NTP", "us", ntpWorst, "Good", "Moderate", "None"},
		{"PTP", "sub-us", ptpRes.WorstNs, "Good", "Moderate", "PTP-enabled devices"},
		{"GPS", "ns", gpsWorst, "Bad", "None", "Timing signal receivers, cables"},
		{"DTP", "ns", float64(dtpRes.MaxTrueTicks) * 6.4, "Good", "None", "DTP-enabled devices"},
	}, nil
}

func runNTPWorst(o Options) (float64, error) {
	sch := sim.NewScheduler()
	net, err := fabric.New(sch, o.Seed, topo.Star(4), fabric.DefaultConfig())
	if err != nil {
		return 0, err
	}
	cfg := ntp.DefaultConfig().Compressed(100)
	ntp.NewServer(net, 1, cfg, o.Seed+1)
	var clients []*ntp.Client
	for i, node := range []int{2, 3, 4, 5} {
		c := ntp.NewClient(net, node, 1, cfg, o.Seed+10+uint64(i))
		c.Start()
		clients = append(clients, c)
	}
	sch.Run(20 * sim.Second) // converge
	worst := 0.0
	end := sch.Now() + o.Duration
	for sch.Now() < end {
		sch.RunFor(o.SamplePeriod)
		for _, c := range clients {
			o := c.OffsetToServerPs() / 1000
			if o < 0 {
				o = -o
			}
			if o > worst {
				worst = o
			}
		}
	}
	return worst, nil
}

func runGPSWorst(o Options) float64 {
	sch := sim.NewScheduler()
	cfg := gps.DefaultConfig()
	var rx []*gps.Receiver
	for i := 0; i < 8; i++ {
		rx = append(rx, gps.NewReceiver(sch, cfg, o.Seed, fmt.Sprintf("r%d", i)))
	}
	worst := 0.0
	for s := 0; s < 500; s++ {
		sch.RunFor(sim.Millisecond)
		for i := 0; i < len(rx); i++ {
			for j := i + 1; j < len(rx); j++ {
				d := (rx[i].Read() - rx[j].Read()) / 1000
				if d < 0 {
					d = -d
				}
				if d > worst {
					worst = d
				}
			}
		}
	}
	return worst
}

// Table2Row is one speed row of Table 2, plus a measured bound from an
// actual two-node DTP run at that speed.
type Table2Row struct {
	Profile phy.Profile
	// MeasuredBoundNs is the worst observed adjacent offset at that
	// speed, in nanoseconds (bound: 4 tick periods).
	MeasuredBoundNs float64
	// BoundNs is 4T at this speed.
	BoundNs float64
}

// Table2 reproduces Table 2: PHY parameters per speed, with DTP run at
// each speed counting in 0.32 ns base units. 1 GbE uses the fragmented
// message adaptation of §7 (four ordered-set fragments per message).
// The per-speed runs are independent simulations and fan out across
// o.Jobs workers; rows merge in profile order.
func Table2(o Options) ([]Table2Row, error) {
	o = o.withDefaults(500*sim.Millisecond, 20*sim.Microsecond)
	return par.Map(o.Jobs, len(phy.Profiles), func(i int) (Table2Row, error) {
		p := phy.Profiles[i]
		row := Table2Row{Profile: p, BoundNs: 4 * float64(p.PeriodFs) / 1e6}
		worst, err := runSpeedPair(o, p)
		if err != nil {
			return Table2Row{}, err
		}
		row.MeasuredBoundNs = worst
		return row, nil
	})
}

func runSpeedPair(o Options, p phy.Profile) (float64, error) {
	sch := sim.NewScheduler()
	cfg := core.DefaultConfig()
	cfg.Profile = p
	cfg.UnitsPerTick = uint64(p.Delta)
	cfg.AlphaUnits = 3 * p.Delta
	cfg.GuardUnits = 8 * p.Delta
	cfg.FragmentedMessages = p.Speed == phy.Speed1G
	n, err := core.NewNetwork(sch, o.Seed, topo.Pair(), cfg,
		core.WithPPM(map[string]float64{"h0": 100, "h1": -100}))
	if err != nil {
		return 0, err
	}
	n.Start()
	sch.Run(5 * sim.Millisecond)
	if !n.AllSynced() {
		return 0, fmt.Errorf("experiments: %v pair failed to sync", p.Speed)
	}
	var worst int64
	end := sch.Now() + o.Duration
	for sch.Now() < end {
		sch.RunFor(o.SamplePeriod)
		v := n.TrueOffsetUnits(0, 1)
		if v < 0 {
			v = -v
		}
		if v > worst {
			worst = v
		}
	}
	// units -> ns: each unit is BaseTick (0.32 ns).
	return float64(worst) * float64(phy.BaseTickFs) / 1e6, nil
}

// BoundSweepRow is one point of the 4TD scaling validation (§3.3).
type BoundSweepRow struct {
	Hops         int
	MaxTicks     int64
	BoundTicks   int64
	WithinBound  bool
	MaxOffsetNs  float64
	BoundNs      float64
	SettledPairs bool
}

// BoundSweep measures the end-to-end offset across chains of increasing
// length, validating the 4TD scaling claim including the fat-tree
// diameter (6 hops -> 153.6 ns). Each chain length is an independent
// simulation; the sweep fans out across o.Jobs workers and merges rows
// in hop order.
func BoundSweep(o Options, maxHops int) ([]BoundSweepRow, error) {
	o = o.withDefaults(500*sim.Millisecond, 100*sim.Microsecond)
	return par.Map(o.Jobs, maxHops, func(i int) (BoundSweepRow, error) {
		hops := i + 1
		sch := sim.NewScheduler()
		n, err := core.NewNetwork(sch, o.Seed+uint64(hops), topo.Chain(hops), core.DefaultConfig())
		if err != nil {
			return BoundSweepRow{}, err
		}
		n.Start()
		sch.Run(10 * sim.Millisecond)
		last := len(n.Devices) - 1
		var worst int64
		end := sch.Now() + o.Duration
		for sch.Now() < end {
			sch.RunFor(o.SamplePeriod)
			v := n.TrueOffsetUnits(0, last)
			if v < 0 {
				v = -v
			}
			if v > worst {
				worst = v
			}
		}
		bound := int64(4 * hops)
		return BoundSweepRow{
			Hops: hops, MaxTicks: worst, BoundTicks: bound,
			WithinBound: worst <= bound,
			MaxOffsetNs: float64(worst) * 6.4, BoundNs: float64(bound) * 6.4,
			SettledPairs: n.AllSynced(),
		}, nil
	})
}

// PTPAblationResult compares transparent-clock models under heavy load.
type PTPAblationResult struct {
	RealisticWorstNs float64
	PerfectWorstNs   float64
	OffWorstNs       float64
	// PriorityWorstNs is realistic TC plus strict-priority queueing for
	// PTP event frames (the PFC/QoS mitigation the paper's citations
	// examine): far better than FIFO, still far from idle because
	// transmission is non-preemptive.
	PriorityWorstNs float64
}

// AblationTCModes quantifies how much of PTP's heavy-load degradation
// is attributable to imperfect transparent clocks, and how much strict
// priority queueing recovers.
func AblationTCModes(o Options) (*PTPAblationResult, error) {
	o = o.withDefaults(2*sim.Second, 10*sim.Millisecond)
	run := func(mode fabric.TCMode, priority bool) (float64, error) {
		sch := sim.NewScheduler()
		g := topo.Star(8)
		fcfg := fabric.DefaultConfig()
		fcfg.TC = mode
		fcfg.PTPPriority = priority
		net, err := fabric.New(sch, o.Seed, g, fcfg)
		if err != nil {
			return 0, err
		}
		cfg := ptp.DefaultConfig().Compressed(ptpCompression)
		var clientNodes []int
		for _, h := range g.HostIDs() {
			if h != 1 {
				clientNodes = append(clientNodes, h)
			}
		}
		gm := ptp.NewGrandmaster(net, 1, clientNodes, cfg, o.Seed+1)
		var clients []*ptp.Client
		for i, cn := range clientNodes {
			c := ptp.NewClient(net, cn, 1, cfg, o.Seed+10+uint64(i))
			c.Start()
			clients = append(clients, c)
		}
		gm.Start()
		sch.Run(2 * sim.Second)
		nodes := clientNodes[:len(clientNodes)-1]
		for i, src := range nodes {
			fabric.NewSprayGen(net, src, nodes, 9.0, 32, o.Seed+200+uint64(i)).Start()
		}
		worst := stats.NewSummary(0)
		end := sch.Now() + o.Duration
		for sch.Now() < end {
			sch.RunFor(o.SamplePeriod)
			for _, c := range clients {
				worst.Add(c.OffsetToMasterPs() / 1000)
			}
		}
		return worst.MaxAbs(), nil
	}
	// The four TC configurations are independent deployments; fan them
	// out and merge by position.
	modes := []struct {
		tc       fabric.TCMode
		priority bool
	}{
		{fabric.TCRealistic, false},
		{fabric.TCPerfect, false},
		{fabric.TCOff, false},
		{fabric.TCRealistic, true},
	}
	worst, err := par.Map(o.Jobs, len(modes), func(i int) (float64, error) {
		return run(modes[i].tc, modes[i].priority)
	})
	if err != nil {
		return nil, err
	}
	return &PTPAblationResult{
		RealisticWorstNs: worst[0],
		PerfectWorstNs:   worst[1],
		OffWorstNs:       worst[2],
		PriorityWorstNs:  worst[3],
	}, nil
}
