package sim

import "testing"

// The steady-state guarantees the calendar queue exists to provide:
// once the slot arena and bucket array have grown to the workload's
// high-water mark, periodic actor workloads — including cancel-heavy
// ones — schedule, cancel, and dispatch without a single heap
// allocation.

// periodicActor models the dominant simulation pattern: a self-
// rescheduling periodic source (a port's beacon timer).
type periodicActor struct {
	s      *Scheduler
	period Time
	fired  uint64
}

func (a *periodicActor) OnEvent(code uint8, _, _ uint64) {
	a.fired++
	a.s.AfterActor(a.period, a, code, 0, 0)
}

func TestSteadyStateZeroAlloc(t *testing.T) {
	s := NewScheduler()
	actors := make([]*periodicActor, 64)
	for i := range actors {
		actors[i] = &periodicActor{s: s, period: Microsecond + Time(i)*97*Nanosecond}
		s.AtActor(Time(i)*Nanosecond, actors[i], 0, 0, 0)
	}
	// Warm up: grow the arena and buckets to steady state.
	s.RunFor(10 * Millisecond)
	avg := testing.AllocsPerRun(50, func() {
		s.RunFor(Millisecond)
	})
	if avg != 0 {
		t.Fatalf("steady-state periodic loop allocates %.1f per millisecond, want 0", avg)
	}
}

// watchdogActor reproduces the cancel-heavy pattern: every firing
// cancels a previously armed timeout and re-arms it further out (a
// beacon-loss watchdog being pushed by traffic). The cancelled event
// must be recycled immediately — if cancelled slots stayed linked (the
// old Event.Cancel retention bug) the arena would grow without bound
// and AllocsPerRun would observe the growth.
type watchdogActor struct {
	s       *Scheduler
	period  Time
	timeout Event
}

func (a *watchdogActor) OnEvent(code uint8, _, _ uint64) {
	if code == 1 {
		return // timeout fired: nothing to do in this model
	}
	a.timeout.Cancel()
	a.timeout = a.s.AfterActor(50*a.period, a, 1, 0, 0)
	a.s.AfterActor(a.period, a, 0, 0, 0)
}

func TestCancelHeavyZeroAlloc(t *testing.T) {
	s := NewScheduler()
	actors := make([]*watchdogActor, 64)
	for i := range actors {
		actors[i] = &watchdogActor{s: s, period: Microsecond + Time(i)*131*Nanosecond}
		s.AtActor(Time(i)*Nanosecond, actors[i], 0, 0, 0)
	}
	s.RunFor(10 * Millisecond)
	arena := len(s.slots)
	avg := testing.AllocsPerRun(50, func() {
		s.RunFor(Millisecond)
	})
	if avg != 0 {
		t.Fatalf("cancel-heavy loop allocates %.1f per millisecond, want 0", avg)
	}
	if grown := len(s.slots) - arena; grown > 0 {
		t.Fatalf("arena grew by %d slots after warmup: cancelled events are not being recycled", grown)
	}
}

// A cancelled event must retain nothing: its slot is immediately
// recyclable and its callback references are dropped.
func TestCancelRecyclesImmediately(t *testing.T) {
	s := NewScheduler()
	e := s.At(Second, func() { t.Fatal("cancelled event fired") })
	if !e.Cancel() {
		t.Fatal("Cancel returned false for a pending event")
	}
	if e.Pending() {
		t.Fatal("cancelled event still Pending")
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after cancel, want 0", got)
	}
	// The freed slot must be reused by the very next schedule.
	before := len(s.slots)
	e2 := s.At(2*Second, func() {})
	if len(s.slots) != before {
		t.Fatalf("arena grew from %d to %d slots: cancelled slot not recycled", before, len(s.slots))
	}
	// The stale handle must not be able to touch the recycled slot.
	if e.Cancel() {
		t.Fatal("stale handle cancelled a recycled slot (ABA)")
	}
	if !e2.Pending() {
		t.Fatal("recycled event lost by stale-handle interference")
	}
	if e2.At() != 2*Second {
		t.Fatalf("recycled event At() = %v, want 2s", e2.At())
	}
}

func BenchmarkCalendarThroughput(b *testing.B) {
	benchThroughput(b, NewScheduler())
}

func BenchmarkHeapRefThroughput(b *testing.B) {
	benchThroughput(b, NewHeapScheduler())
}

func benchThroughput(b *testing.B, s *Scheduler) {
	actors := make([]*periodicActor, 256)
	for i := range actors {
		actors[i] = &periodicActor{s: s, period: Microsecond + Time(i)*53*Nanosecond}
		s.AtActor(Time(i)*Nanosecond, actors[i], 0, 0, 0)
	}
	s.RunFor(Millisecond)
	b.ResetTimer()
	start := s.Processed()
	for s.Processed()-start < uint64(b.N) {
		s.RunFor(100 * Microsecond)
	}
}
