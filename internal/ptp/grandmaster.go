package ptp

import (
	"fmt"

	"github.com/dtplab/dtp/internal/eth"
	"github.com/dtplab/dtp/internal/fabric"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
)

// Grandmaster is a PTP master: it periodically sends Sync + Follow_Up
// to every client and answers Delay_Reqs, timestamping with its time
// source. The top-level timeserver's source is true time (the paper's
// VelaSync is GPS-disciplined; its residual error is far below the
// effects under study); a boundary clock reuses this machinery with its
// own disciplined PHC as the source, which is how BC errors cascade
// down the timing tree (§2.4.2).
type Grandmaster struct {
	net  *fabric.Network
	cfg  Config
	rng  *sim.RNG
	node int

	clients []int
	seq     uint64

	// source returns this master's PTP time (ps) at a real instant.
	source func(sim.Time) float64

	// Priority is the best-master-clock rank (lower wins; default 128).
	Priority int

	stopped bool

	// Telemetry handles (nil when uninstrumented; see Instrument).
	telSyncs, telAnnounces, telDelayAnswers *telemetry.Counter
}

// NewGrandmaster installs a true-time grandmaster at the given host node.
func NewGrandmaster(n *fabric.Network, node int, clients []int, cfg Config, seed uint64) *Grandmaster {
	gm := &Grandmaster{
		net: n, cfg: cfg, node: node, clients: clients,
		rng:      sim.NewRNG(seed, fmt.Sprintf("ptp/gm/%d", node)),
		source:   func(t sim.Time) float64 { return float64(t) },
		Priority: 128,
	}
	n.Handle(node, eth.ProtoPTPEvent, gm.onEvent)
	return gm
}

// Instrument attaches telemetry counters labeled with the master's node
// ID. The registry may be nil.
func (gm *Grandmaster) Instrument(reg *telemetry.Registry) {
	node := fmt.Sprintf("%d", gm.node)
	gm.telSyncs = reg.Counter("ptp_syncs_sent_total",
		"Two-step Syncs transmitted by this master.", "node", node)
	gm.telAnnounces = reg.Counter("ptp_announces_sent_total",
		"Announce messages transmitted by this master.", "node", node)
	gm.telDelayAnswers = reg.Counter("ptp_delay_reqs_answered_total",
		"Delay_Reqs answered with Delay_Resp.", "node", node)
}

// Time returns this master's PTP time (ps) at real time t.
func (gm *Grandmaster) Time(t sim.Time) float64 { return gm.source(t) }

// hwStamp models reading a hardware timestamp: true time plus uniform
// latching jitter.
func (gm *Grandmaster) hwStamp(t sim.Time) float64 {
	j := gm.cfg.TimestampJitterNs * 1000
	return gm.Time(t) + gm.rng.Uniform(-j, j)
}

// Start begins the Sync cadence.
func (gm *Grandmaster) Start() {
	gm.stopped = false
	gm.net.Sch.After(gm.rng.UniformTime(0, gm.cfg.SyncInterval), gm.syncRound)
}

// Stop halts Sync transmission.
func (gm *Grandmaster) Stop() { gm.stopped = true }

func (gm *Grandmaster) syncRound() {
	if gm.stopped {
		return
	}
	for _, c := range gm.clients {
		// Announce precedes Sync each round (the paper: "each sync
		// message was followed by Follow_Up and Announce messages").
		gm.net.Send(&eth.Frame{
			Src: gm.node, Dst: c, Size: eth.PTPEventFrame,
			Proto: eth.ProtoPTPGeneral, Payload: announce{GM: gm.node, Priority: gm.Priority},
		})
		gm.telAnnounces.Inc()
		gm.sendSync(c)
	}
	gm.net.Sch.After(gm.cfg.SyncInterval, gm.syncRound)
}

// sendSync transmits a two-step Sync to one client: the event frame now,
// and a Follow_Up carrying the Sync's hardware TX timestamp shortly
// after the NIC reports it.
func (gm *Grandmaster) sendSync(client int) {
	gm.seq++
	seq := gm.seq
	var t1 float64
	f := &eth.Frame{
		Src: gm.node, Dst: client, Size: eth.PTPEventFrame,
		Proto: eth.ProtoPTPEvent, Payload: syncMsg{Seq: seq},
		// The NIC latches the precise TX timestamp as the Sync departs.
		OnTxStart: nil,
	}
	f.OnTxStart = func(t sim.Time) { t1 = gm.hwStamp(t) }
	if !gm.net.Send(f) {
		return // dropped at source queue; next round will retry
	}
	gm.telSyncs.Inc()
	// The daemon emits the Follow_Up once the NIC reports the TX
	// timestamp; 100 us models the completion interrupt plus turnaround.
	gm.net.Sch.After(100*sim.Microsecond, func() {
		gm.net.Send(&eth.Frame{
			Src: gm.node, Dst: client, Size: eth.PTPEventFrame,
			Proto: eth.ProtoPTPGeneral, Payload: followUp{Seq: seq, T1: t1},
		})
	})
}

// onEvent answers Delay_Req with Delay_Resp carrying the RX hardware
// timestamp.
func (gm *Grandmaster) onEvent(f *eth.Frame, rx sim.Time) {
	req, ok := f.Payload.(delayReq)
	if !ok {
		return
	}
	t4 := gm.hwStamp(rx) - float64(f.CorrectionPs)
	gm.telDelayAnswers.Inc()
	gm.net.Send(&eth.Frame{
		Src: gm.node, Dst: req.Client, Size: eth.PTPEventFrame,
		Proto: eth.ProtoPTPGeneral, Payload: delayResp{Seq: req.Seq, T4: t4},
	})
}
