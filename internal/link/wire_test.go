package link

import (
	"testing"

	"github.com/dtplab/dtp/internal/phy"
	"github.com/dtplab/dtp/internal/sim"
)

func TestDelayForLength(t *testing.T) {
	if DelayForLength(10) != 50*sim.Nanosecond {
		t.Fatalf("10m = %v, want 50ns", DelayForLength(10))
	}
	if DelayForLength(1000) != 5*sim.Microsecond {
		t.Fatalf("1000m = %v, want 5us (paper's max)", DelayForLength(1000))
	}
}

func TestSendBlockDelay(t *testing.T) {
	sch := sim.NewScheduler()
	w := mustNew(t, sch, sim.NewRNG(1, "wire"), Config{Delay: 50 * sim.Nanosecond})
	var arrived sim.Time
	b := phy.IdleBlock()
	w.SendBlock(b, func(got phy.Block) {
		arrived = sch.Now()
		if got != b {
			t.Error("block corrupted on error-free wire")
		}
	})
	sch.Run(sim.Microsecond)
	if arrived != 50*sim.Nanosecond {
		t.Fatalf("arrival at %v, want 50ns", arrived)
	}
}

func TestSendOpaqueDelay(t *testing.T) {
	sch := sim.NewScheduler()
	w := mustNew(t, sch, sim.NewRNG(1, "wire"), Config{Delay: 5 * sim.Microsecond})
	fired := false
	w.Send(func() { fired = sch.Now() == 5*sim.Microsecond })
	sch.Run(sim.Second)
	if !fired {
		t.Fatal("opaque payload not delivered at the propagation delay")
	}
}

func TestZeroBERNeverCorrupts(t *testing.T) {
	sch := sim.NewScheduler()
	w := mustNew(t, sch, sim.NewRNG(1, "wire"), Config{Delay: 1})
	for i := 0; i < 1000; i++ {
		b := phy.Codec{}.EmbedMessage(phy.Message{Type: phy.MsgBeacon, Payload: uint64(i)})
		w.SendBlock(b, func(got phy.Block) {
			if got != b {
				t.Error("corruption at BER 0")
			}
		})
		sch.RunFor(sim.Nanosecond)
	}
	if _, c := w.Stats(); c != 0 {
		t.Fatalf("corrupted count %d at BER 0", c)
	}
}

func TestHighBERCorruptsAboutExpectedRate(t *testing.T) {
	sch := sim.NewScheduler()
	// BER 1e-3 => per-block error prob ~6.4%.
	w := mustNew(t, sch, sim.NewRNG(42, "wire"), Config{Delay: 1, BER: 1e-3})
	n := 20000
	diffs := 0
	for i := 0; i < n; i++ {
		b := phy.IdleBlock()
		w.SendBlock(b, func(got phy.Block) {
			if got != b {
				diffs++
			}
		})
		sch.RunFor(sim.Nanosecond)
	}
	frac := float64(diffs) / float64(n)
	if frac < 0.05 || frac > 0.08 {
		t.Fatalf("corruption rate %.4f, want ~0.064", frac)
	}
	_, corrupted := w.Stats()
	if int(corrupted) != diffs {
		t.Fatalf("stats corrupted=%d, observed %d", corrupted, diffs)
	}
}

func TestCorruptionFlipsExactlyOneBit(t *testing.T) {
	sch := sim.NewScheduler()
	w := mustNew(t, sch, sim.NewRNG(7, "wire"), Config{Delay: 1, BER: 0.1})
	sawSyncFlip := false
	for i := 0; i < 5000; i++ {
		b := phy.IdleBlock()
		w.SendBlock(b, func(got phy.Block) {
			if got == b {
				return
			}
			syncDiff := popcount8(got.Sync ^ b.Sync)
			payloadDiff := popcount64(got.Payload ^ b.Payload)
			if syncDiff+payloadDiff != 1 {
				t.Errorf("corruption flipped %d bits", syncDiff+payloadDiff)
			}
			if syncDiff == 1 {
				sawSyncFlip = true
			}
		})
		sch.RunFor(sim.Nanosecond)
	}
	if !sawSyncFlip {
		t.Error("sync header bits never targeted by corruption")
	}
}

func popcount8(v byte) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func popcount64(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func mustNew(t *testing.T, sch *sim.Scheduler, rng *sim.RNG, cfg Config) *Wire {
	t.Helper()
	w, err := New(sch, rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNegativeDelayRejected(t *testing.T) {
	if _, err := New(sim.NewScheduler(), sim.NewRNG(1, "w"), Config{Delay: -1}); err == nil {
		t.Fatal("negative delay accepted")
	}
	if _, err := New(sim.NewScheduler(), sim.NewRNG(1, "w"), Config{Delay: 1, BER: 1.5}); err == nil {
		t.Fatal("BER >= 1 accepted")
	}
}

func TestSetBERRuntimeMutation(t *testing.T) {
	sch := sim.NewScheduler()
	w := mustNew(t, sch, sim.NewRNG(5, "wire"), Config{Delay: 1})
	clean, dirty := 0, 0
	send := func(n int, dirtyCount *int) {
		for i := 0; i < n; i++ {
			b := phy.IdleBlock()
			w.SendBlock(b, func(got phy.Block) {
				if got != b {
					*dirtyCount++
				}
			})
			sch.RunFor(sim.Nanosecond)
		}
	}
	send(2000, &clean)
	if clean != 0 {
		t.Fatalf("%d corruptions before SetBER", clean)
	}
	w.SetBER(1e-2) // per-block ~48%
	send(2000, &dirty)
	if dirty < 500 {
		t.Fatalf("only %d/2000 corruptions after SetBER(1e-2)", dirty)
	}
	w.SetBER(0)
	clean = 0
	send(2000, &clean)
	if clean != 0 {
		t.Fatalf("%d corruptions after SetBER(0)", clean)
	}
}

func TestSetDelayRuntimeMutation(t *testing.T) {
	sch := sim.NewScheduler()
	w := mustNew(t, sch, sim.NewRNG(5, "wire"), Config{Delay: 50 * sim.Nanosecond})
	// A block already in flight keeps its launch delay.
	var first, second sim.Time
	start := sch.Now()
	w.SendBlock(phy.IdleBlock(), func(phy.Block) { first = sch.Now() - start })
	if err := w.SetDelay(200 * sim.Nanosecond); err != nil {
		t.Fatal(err)
	}
	w.SendBlock(phy.IdleBlock(), func(phy.Block) { second = sch.Now() - start })
	sch.Run(sim.Microsecond)
	if first != 50*sim.Nanosecond {
		t.Fatalf("in-flight block arrived after %v, want 50ns", first)
	}
	if second != 200*sim.Nanosecond {
		t.Fatalf("post-mutation block arrived after %v, want 200ns", second)
	}
	if err := w.SetDelay(-1); err == nil {
		t.Fatal("negative SetDelay accepted")
	}
}

func TestSetLossDropsBlocks(t *testing.T) {
	sch := sim.NewScheduler()
	w := mustNew(t, sch, sim.NewRNG(9, "wire"), Config{Delay: 1})
	w.SetLossP(1)
	delivered := 0
	for i := 0; i < 100; i++ {
		w.SendBlock(phy.IdleBlock(), func(phy.Block) { delivered++ })
		w.Send(func() { delivered++ })
	}
	sch.Run(sim.Microsecond)
	if delivered != 0 {
		t.Fatalf("%d deliveries at loss 1.0", delivered)
	}
	if w.Dropped() != 200 {
		t.Fatalf("dropped = %d, want 200", w.Dropped())
	}
	w.SetLossP(0)
	w.SendBlock(phy.IdleBlock(), func(phy.Block) { delivered++ })
	sch.Run(2 * sim.Microsecond)
	if delivered != 1 {
		t.Fatal("block lost after loss cleared")
	}
}
