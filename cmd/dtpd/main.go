// Command dtpd demonstrates the software story of §5: DTP daemons on
// every host reading NIC counters over PCIe, plus external (UTC)
// synchronization where one host broadcasts (counter, UTC) pairs and
// every other host serves UTC by interpolation.
//
// Usage:
//
//	dtpd -duration 2s -cal 10ms
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/daemon"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/stats"
	"github.com/dtplab/dtp/internal/topo"
)

var (
	durFlag  = flag.Duration("duration", 2*time.Second, "simulated run length")
	calFlag  = flag.Duration("cal", 10*time.Millisecond, "daemon calibration interval")
	seedFlag = flag.Uint64("seed", 1, "deterministic seed")
)

func main() {
	flag.Parse()
	sch := sim.NewScheduler()
	n, err := core.NewNetwork(sch, *seedFlag, topo.PaperTree(), core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtpd:", err)
		os.Exit(1)
	}
	n.Start()
	sch.Run(10 * sim.Millisecond)
	if !n.AllSynced() {
		fmt.Fprintln(os.Stderr, "dtpd: network failed to synchronize")
		os.Exit(1)
	}

	dcfg := daemon.DefaultConfig()
	dcfg.CalInterval = sim.FromStd(*calFlag)
	hosts := []string{"s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11"}
	daemons := map[string]*daemon.Daemon{}
	sums := map[string]*stats.Summary{}
	for i, h := range hosts {
		dev, err := n.DeviceByName(h)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtpd:", err)
			os.Exit(1)
		}
		d := daemon.New(dev, dcfg, *seedFlag+uint64(i)+100)
		sum := stats.NewSummary(0)
		d.OnSample = func(off float64) { sum.Add(off) }
		d.Start()
		daemons[h] = d
		sums[h] = sum
	}

	// External synchronization: s4's daemon broadcasts UTC (from a
	// perfect source standing in for GPS/PTP at the timeserver).
	b := daemon.NewUTCBroadcaster(daemons["s4"], daemon.TrueUTC{Sch: sch}, 50*sim.Millisecond)
	followers := map[string]*daemon.UTCFollower{}
	for _, h := range hosts[1:] {
		f := daemon.NewUTCFollower(daemons[h])
		b.Subscribe(f)
		followers[h] = f
	}
	b.Start()

	sch.RunFor(sim.FromStd(*durFlag))

	fmt.Println("== DTP daemon offsets (estimate - hardware counter), ticks")
	fmt.Printf("%-5s %8s %8s %8s %8s\n", "host", "samples", "min", "max", "p99|.|")
	sort.Strings(hosts)
	for _, h := range hosts {
		s := sums[h]
		p99 := s.Quantile(0.99)
		if q := -s.Quantile(0.01); q > p99 {
			p99 = q
		}
		fmt.Printf("%-5s %8d %8.1f %8.1f %8.1f\n", h, s.N(), s.Min(), s.Max(), p99)
	}

	fmt.Println("\n== UTC via external synchronization (§5.2), error vs true time")
	utc := stats.NewSummary(0)
	for i := 0; i < 200; i++ {
		sch.RunFor(sim.Millisecond)
		for _, f := range followers {
			utc.Add(f.UTCErrorPs() / 1000)
		}
	}
	fmt.Printf("followers: %d, |error| max %.0f ns, p99 %.0f ns\n",
		len(followers), utc.MaxAbs(), utc.Quantile(0.99))

	// Cross-host comparison: the end-to-end software precision claim
	// (4TD + 8T).
	worst := 0.0
	for i := 0; i < 200; i++ {
		sch.RunFor(sim.Millisecond)
		for _, a := range hosts {
			for _, b := range hosts {
				if a >= b {
					continue
				}
				e := daemons[a].OffsetUnits() - daemons[b].OffsetUnits()
				if e < 0 {
					e = -e
				}
				if e > worst {
					worst = e
				}
			}
		}
	}
	fmt.Printf("\n== End-to-end software precision: worst daemon-vs-daemon error %.1f ticks (= %.1f ns; paper bound 4TD+8T)\n",
		worst, worst*6.4)
}
