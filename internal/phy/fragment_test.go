package phy

import (
	"testing"
	"testing/quick"
)

func TestFragmentRoundTrip(t *testing.T) {
	c := Codec{}
	for _, m := range []Message{
		{Type: MsgBeacon, Payload: 0},
		{Type: MsgBeacon, Payload: 0x1f_ffff_ffff_ffff},
		{Type: MsgInit, Payload: 0xdeadbeef},
		{Type: MsgBeaconMSB, Payload: 1 << 52},
	} {
		a := NewAssembler(c)
		frags := FragmentMessage(c, m)
		for i, f := range frags {
			got, ok := a.Push(f)
			if i < FragmentsPerMessage-1 {
				if ok {
					t.Fatalf("message completed after %d fragments", i+1)
				}
				continue
			}
			if !ok || got != m {
				t.Fatalf("reassembly of %v: got %v ok=%v", m, got, ok)
			}
		}
	}
}

func TestFragmentSeqAndChunk(t *testing.T) {
	c := Codec{}
	frags := FragmentMessage(c, Message{Type: MsgBeacon, Payload: 0x123456789abcd})
	for i, f := range frags {
		if f.Seq() != i {
			t.Fatalf("fragment %d has seq %d", i, f.Seq())
		}
		if f.Chunk()>>FragmentBits != 0 {
			t.Fatalf("chunk overflow in fragment %d", i)
		}
	}
}

func TestAssemblerResetsOnGap(t *testing.T) {
	c := Codec{}
	a := NewAssembler(c)
	m := Message{Type: MsgBeacon, Payload: 42}
	frags := FragmentMessage(c, m)
	// Deliver 0, 1, then lose 2; next message must still assemble.
	a.Push(frags[0])
	a.Push(frags[1])
	a.Push(frags[3]) // out of order: resets
	var got Message
	var ok bool
	for _, f := range FragmentMessage(c, m) {
		got, ok = a.Push(f)
	}
	if !ok || got != m {
		t.Fatalf("assembler did not recover after gap: %v ok=%v", got, ok)
	}
}

func TestAssemblerMidStreamJoin(t *testing.T) {
	// Joining mid-message (link comes up between fragments) must not
	// produce a bogus message.
	c := Codec{}
	a := NewAssembler(c)
	m := Message{Type: MsgBeaconJoin, Payload: 0x1234}
	frags := FragmentMessage(c, m)
	if _, ok := a.Push(frags[2]); ok {
		t.Fatal("mid-stream fragment produced a message")
	}
	var got Message
	var ok bool
	for _, f := range frags {
		got, ok = a.Push(f)
	}
	if !ok || got != m {
		t.Fatal("assembler did not resync at seq 0")
	}
}

func TestFragmentEmbedExtract(t *testing.T) {
	c := Codec{}
	frags := FragmentMessage(c, Message{Type: MsgBeacon, Payload: 777})
	for _, f := range frags {
		b := EmbedFragment(f)
		got, ok := ExtractFragment(b)
		if !ok || got != f {
			t.Fatalf("embed/extract %v: got %v ok=%v", f, got, ok)
		}
	}
	if _, ok := ExtractFragment(IdleBlock()); ok {
		t.Fatal("empty idle produced a fragment")
	}
	if _, ok := ExtractFragment(DataBlock([8]byte{1})); ok {
		t.Fatal("data block produced a fragment")
	}
}

func TestFragmentRoundTripProperty(t *testing.T) {
	c := Codec{Parity: true}
	f := func(payload uint64, typ uint8) bool {
		m := Message{Type: MsgType(typ%5) + 1, Payload: payload & c.CounterMask()}
		a := NewAssembler(c)
		var got Message
		var ok bool
		for _, fr := range FragmentMessage(c, m) {
			got, ok = a.Push(fr)
		}
		return ok && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
