// Package timesvc is the serving plane on top of the DTP daemon: it
// turns a host's daemon + UTC follower into a long-lived time service
// with a TrueTime-style API — Now() and NowInterval() returning
// [earliest, latest] UTC intervals whose half-width is backed by the
// live 4TD audit bound, the daemon's software-access margin, and the
// measured UTC-broadcast estimation error.
//
// The design splits reads from calibration the way production time
// services do (scion-time's timeservice/driver-shm split, Spanner's
// TrueTime): the calibration side periodically publishes an immutable
// Snapshot (epoch, UTC anchor, frequency ratio, error bound) through a
// seqlock Store, and readers interpolate UTC from the snapshot plus a
// raw timebase reading without ever touching the daemon — the read
// path is lock-free and allocation-free, so millions of concurrent
// queries per second never contend with calibration or each other.
package timesvc

import (
	"math"
	"runtime"
	"sync/atomic"
)

// Snapshot is one published clock state. Readers evaluate UTC at a raw
// timebase reading r as
//
//	UTC(r) = AnchorUTC + (r - AnchorRaw) · Ratio
//
// with uncertainty half-width
//
//	ε(r) = BoundPs + DriftPPM·1e-6·|r - AnchorRaw|
//
// so the interval [UTC-ε, UTC+ε] widens as the snapshot ages, exactly
// like TrueTime's ε between master syncs. MaxAgePs bounds how stale a
// snapshot may be served: past it, reads fail closed (ErrStale) rather
// than return an interval whose bound nobody stands behind.
type Snapshot struct {
	// Epoch increments with every publish; readers can detect
	// recalibration between two reads by comparing epochs.
	Epoch uint64
	// AnchorRaw is the raw timebase reading at the anchor instant, ps.
	AnchorRaw int64
	// AnchorUTC is the UTC estimate at the anchor instant, ps.
	AnchorUTC float64
	// Ratio is UTC picoseconds per raw-timebase picosecond.
	Ratio float64
	// BoundPs is the uncertainty half-width at the anchor instant.
	BoundPs float64
	// DriftPPM grows the half-width as the snapshot ages (parts per
	// million of elapsed raw time).
	DriftPPM float64
	// MaxAgePs is the serving limit; 0 means no limit.
	MaxAgePs int64
}

// snapWords is the number of 64-bit words a Snapshot packs into.
const snapWords = 7

// pack flattens the snapshot into atomic-storable words.
func (sn *Snapshot) pack(w *[snapWords]uint64) {
	w[0] = sn.Epoch
	w[1] = uint64(sn.AnchorRaw)
	w[2] = math.Float64bits(sn.AnchorUTC)
	w[3] = math.Float64bits(sn.Ratio)
	w[4] = math.Float64bits(sn.BoundPs)
	w[5] = math.Float64bits(sn.DriftPPM)
	w[6] = uint64(sn.MaxAgePs)
}

// unpack rebuilds the snapshot from words.
func (sn *Snapshot) unpack(w *[snapWords]uint64) {
	sn.Epoch = w[0]
	sn.AnchorRaw = int64(w[1])
	sn.AnchorUTC = math.Float64frombits(w[2])
	sn.Ratio = math.Float64frombits(w[3])
	sn.BoundPs = math.Float64frombits(w[4])
	sn.DriftPPM = math.Float64frombits(w[5])
	sn.MaxAgePs = int64(w[6])
}

// Store publishes Snapshots through a seqlock: a sequence counter that
// is odd while a write is in flight, plus the snapshot fields as
// individual atomic words. Writers bump the sequence to odd, store the
// words, and bump it to even; readers load the sequence, the words, and
// the sequence again, retrying on any mismatch. Every access is a plain
// atomic load or store — no mutex anywhere, so the read path cannot be
// blocked by a stalled writer holding a lock, reads never allocate, and
// the race detector proves the whole dance sound.
//
// Publish is single-writer (the calibration tick); Read is safe from
// any number of goroutines.
type Store struct {
	seq   atomic.Uint64
	words [snapWords]atomic.Uint64
}

// Publish makes sn the current snapshot. Only one goroutine may call
// Publish; concurrent writers would interleave their words.
func (s *Store) Publish(sn Snapshot) {
	var w [snapWords]uint64
	sn.pack(&w)
	s.seq.Add(1) // odd: write in flight
	for i := range w {
		s.words[i].Store(w[i])
	}
	s.seq.Add(1) // even: consistent again
}

// Read returns the current snapshot. ok is false before the first
// Publish. The retry loop completes in one pass unless a publish
// overlaps the read, and publishes are rare (the calibration cadence),
// so the expected cost is seven atomic loads and two of the sequence.
func (s *Store) Read() (sn Snapshot, ok bool) {
	for {
		s1 := s.seq.Load()
		if s1&1 == 0 {
			var w [snapWords]uint64
			for i := range w {
				w[i] = s.words[i].Load()
			}
			if s.seq.Load() == s1 {
				if s1 == 0 {
					return Snapshot{}, false
				}
				sn.unpack(&w)
				return sn, true
			}
		}
		// A writer is mid-publish; yield rather than burn the core.
		runtime.Gosched()
	}
}

// Epoch returns the current snapshot's epoch (0 before any publish)
// without unpacking the rest — one or two atomic loads.
func (s *Store) Epoch() uint64 {
	for {
		s1 := s.seq.Load()
		if s1&1 == 0 {
			e := s.words[0].Load()
			if s.seq.Load() == s1 {
				return e
			}
		}
		runtime.Gosched()
	}
}
