package telemetry_test

import (
	"testing"

	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
	"github.com/dtplab/dtp/internal/topo"
)

// telemetryMode selects how much instrumentation benchSync attaches.
type telemetryMode int

const (
	telemetryOff       telemetryMode = iota // nil handles everywhere
	telemetryOn                             // Registry + default Tracer mask
	telemetryFullTrace                      // plus per-beacon firehose kinds
)

// benchSync runs the paper-tree synchronization (the same workload as
// the repo-root sync benchmarks) once per iteration. Compare:
//
//	go test -bench 'BenchmarkSync' -benchtime 10x ./internal/telemetry
//
// The acceptance target is <5% slowdown for On vs Off; Off vs an
// uninstrumented build is ~0% because nil handles reduce every metric
// update to a nil check. FullTrace additionally records every BEACON
// tx/rx into the ring and is expected to cost well over the budget —
// that's why the firehose kinds are masked by default.
func benchSync(b *testing.B, mode telemetryMode) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sch := sim.NewScheduler()
		n, err := core.NewNetwork(sch, uint64(i)+1, topo.PaperTree(), core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if mode != telemetryOff {
			reg := telemetry.New()
			tr := telemetry.NewTracer(8192)
			if mode == telemetryFullTrace {
				tr.SetKinds()
			}
			n.Instrument(reg, tr)
		}
		n.Start()
		sch.Run(20 * sim.Millisecond)
		if !n.AllSynced() {
			b.Fatal("network failed to synchronize")
		}
	}
}

func BenchmarkSyncTelemetryOff(b *testing.B)       { benchSync(b, telemetryOff) }
func BenchmarkSyncTelemetryOn(b *testing.B)        { benchSync(b, telemetryOn) }
func BenchmarkSyncTelemetryFullTrace(b *testing.B) { benchSync(b, telemetryFullTrace) }

// Micro-benchmarks for the individual primitives, nil and live.

func BenchmarkCounterIncNil(b *testing.B) {
	var c *telemetry.Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := telemetry.New().Counter("bench_total", "")
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := telemetry.New().Histogram("bench_units", "", telemetry.LinearBuckets(-8, 1, 17))
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%16 - 8))
	}
}

func BenchmarkTracerRecordNil(b *testing.B) {
	var tr *telemetry.Tracer
	for i := 0; i < b.N; i++ {
		tr.Record(sim.Time(i), telemetry.KindBeaconRx, "p", 1, 2, "")
	}
}

func BenchmarkTracerRecord(b *testing.B) {
	tr := telemetry.NewTracer(8192)
	tr.SetKinds() // beacon_rx is firehose-masked by default
	for i := 0; i < b.N; i++ {
		tr.Record(sim.Time(i), telemetry.KindBeaconRx, "p", 1, 2, "")
	}
}

func BenchmarkTracerRecordMaskedOff(b *testing.B) {
	tr := telemetry.NewTracer(8192)
	tr.SetKinds(telemetry.KindLinkDown) // beacon_rx masked out
	for i := 0; i < b.N; i++ {
		tr.Record(sim.Time(i), telemetry.KindBeaconRx, "p", 1, 2, "")
	}
}
