package dtp

import (
	"runtime"
	"testing"
	"time"
)

// The tentpole acceptance criterion, measured at the system level: once
// every link is synced and the scheduler's arena has reached its
// high-water mark, the steady-state beacon loop — beacon fire, TX
// insertion, wire transit, RX pipeline, CDC alignment, message
// processing, counter jumps, watchdog churn — runs without a single
// heap allocation. Wander is disabled (its resampling closure is an
// intentional cold-path allocation) and telemetry is unattached, as in
// the BENCH_8 engine configuration.
func TestSteadyStateBeaconLoopZeroAlloc(t *testing.T) {
	g, err := ParseTopology("fattree:4")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(g, WithSeed(1), WithBeaconInterval(60000))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Start()
	if err := sys.RunUntilSynced(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Warm up past INIT residue: arena growth, watchdog arming, the
	// first few beacon rounds.
	sys.Run(100 * time.Millisecond)

	// AllocsPerRun pins to one OS thread and counts mallocs directly;
	// GC percent is irrelevant, but keep the loop comfortably long so
	// hundreds of beacon rounds (and their cancel-heavy watchdog
	// re-arms) are inside the measured window.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	avg := testing.AllocsPerRun(10, func() {
		sys.Run(10 * time.Millisecond)
	})
	if avg != 0 {
		t.Fatalf("steady-state beacon loop allocates %.1f times per 10 ms window, want 0", avg)
	}
}
