// Command dtpd demonstrates the software story of §5: DTP daemons on
// every host reading NIC counters over PCIe, plus external (UTC)
// synchronization where one host broadcasts (counter, UTC) pairs and
// every other host serves UTC by interpolation.
//
// All measurement flows through the internal/telemetry Registry; with
// -listen the live metrics and the protocol event trace are served over
// HTTP for the life of the process:
//
//	dtpd -duration 2s -cal 10ms -listen :9090 &
//	curl localhost:9090/metrics   # Prometheus text exposition
//	curl localhost:9090/trace     # JSONL protocol events
package main

import (
	"expvar"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"time"

	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/daemon"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
	"github.com/dtplab/dtp/internal/topo"
)

var (
	durFlag    = flag.Duration("duration", 2*time.Second, "simulated run length")
	calFlag    = flag.Duration("cal", 10*time.Millisecond, "daemon calibration interval")
	seedFlag   = flag.Uint64("seed", 1, "deterministic seed")
	listenFlag = flag.String("listen", "", "serve /metrics and /trace on this address (e.g. :9090) and keep running")
	traceFlag  = flag.Int("trace-cap", 16384, "protocol trace ring capacity (events)")
	pprofFlag  = flag.Bool("pprof", false, "with -listen, also expose /debug/pprof/* and /debug/vars")
)

func main() {
	flag.Parse()
	reg := telemetry.New()
	tracer := telemetry.NewTracer(*traceFlag)
	tracer.SetKinds() // demo binary: include per-beacon firehose kinds in /trace

	// Bind the listener before simulating so a bad -listen fails fast.
	var ln net.Listener
	if *listenFlag != "" {
		var err error
		ln, err = net.Listen("tcp", *listenFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtpd:", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.Handle("/", telemetry.Handler(reg, tracer))
		if *pprofFlag {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			mux.Handle("/debug/vars", expvar.Handler())
		}
		go func() {
			if err := http.Serve(ln, mux); err != nil {
				fmt.Fprintln(os.Stderr, "dtpd: http:", err)
			}
		}()
		fmt.Printf("dtpd: serving telemetry on http://%s/metrics and /trace\n", ln.Addr())
		if *pprofFlag {
			fmt.Printf("dtpd: runtime profiling on http://%s/debug/pprof/ and /debug/vars\n", ln.Addr())
		}
	}

	sch := sim.NewScheduler()
	// A long-lived daemon may report wall-clock throughput: these metrics
	// are intentionally nondeterministic and never appear in dtpsim dumps.
	telemetry.InstrumentScheduler(reg, sch, telemetry.SchedOptions{WallRate: true})
	n, err := core.NewNetwork(sch, *seedFlag, topo.PaperTree(), core.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtpd:", err)
		os.Exit(1)
	}
	n.Instrument(reg, tracer)
	n.Start()
	sch.Run(10 * sim.Millisecond)
	if !n.AllSynced() {
		fmt.Fprintln(os.Stderr, "dtpd: network failed to synchronize")
		os.Exit(1)
	}

	dcfg := daemon.DefaultConfig()
	dcfg.CalInterval = sim.FromStd(*calFlag)
	hosts := []string{"s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11"}
	daemons := map[string]*daemon.Daemon{}
	for i, h := range hosts {
		dev, err := n.DeviceByName(h)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtpd:", err)
			os.Exit(1)
		}
		d := daemon.New(dev, dcfg, *seedFlag+uint64(i)+100)
		d.Instrument(reg, tracer)
		d.Start()
		daemons[h] = d
	}

	// External synchronization: s4's daemon broadcasts UTC (from a
	// perfect source standing in for GPS/PTP at the timeserver).
	b := daemon.NewUTCBroadcaster(daemons["s4"], daemon.TrueUTC{Sch: sch}, 50*sim.Millisecond)
	followers := map[string]*daemon.UTCFollower{}
	for _, h := range hosts[1:] {
		f := daemon.NewUTCFollower(daemons[h])
		b.Subscribe(f)
		followers[h] = f
	}
	b.Start()

	sch.RunFor(sim.FromStd(*durFlag))

	fmt.Println("== DTP daemon offsets (estimate - hardware counter), ticks")
	fmt.Printf("%-5s %8s %8s %8s %8s\n", "host", "samples", "min", "max", "p99|.|")
	sort.Strings(hosts)
	for _, h := range hosts {
		hist := daemons[h].OffsetHistogram()
		fmt.Printf("%-5s %8d %8.1f %8.1f %8.1f\n",
			h, hist.Count(), hist.Min(), hist.Max(), hist.QuantileAbs(0.99))
	}

	fmt.Println("\n== UTC via external synchronization (§5.2), error vs true time")
	utc := reg.Histogram("dtp_utc_error_ns",
		"UTC-follower error versus true time, in nanoseconds (§5.2).",
		telemetry.LinearBuckets(-200, 20, 21))
	for i := 0; i < 200; i++ {
		sch.RunFor(sim.Millisecond)
		for _, f := range followers {
			utc.Observe(f.UTCErrorPs() / 1000)
		}
	}
	fmt.Printf("followers: %d, |error| max %.0f ns, p99 %.0f ns\n",
		len(followers), math.Max(math.Abs(utc.Min()), math.Abs(utc.Max())),
		utc.QuantileAbs(0.99))

	// Cross-host comparison: the end-to-end software precision claim
	// (4TD + 8T).
	worst := reg.Gauge("dtp_daemon_pairwise_worst_ticks",
		"Worst daemon-vs-daemon estimate difference observed, in ticks.")
	for i := 0; i < 200; i++ {
		sch.RunFor(sim.Millisecond)
		for _, a := range hosts {
			for _, b := range hosts {
				if a >= b {
					continue
				}
				e := daemons[a].OffsetUnits() - daemons[b].OffsetUnits()
				worst.SetMax(math.Abs(e))
			}
		}
	}
	fmt.Printf("\n== End-to-end software precision: worst daemon-vs-daemon error %.1f ticks (= %.1f ns; paper bound 4TD+8T)\n",
		worst.Value(), worst.Value()*6.4)

	if ln != nil {
		fmt.Printf("\ndtpd: simulation finished; telemetry stays up on http://%s (Ctrl-C to exit)\n", ln.Addr())
		select {}
	}
}
