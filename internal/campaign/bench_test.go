package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// benchGrid is the committed 8-run reference grid: eight seeds of the
// default pair topology, 20 ms simulated each — enough per-run work
// that pool scheduling overhead is negligible against it.
func benchGrid() Grid {
	return Grid{
		Name:      "bench",
		Topos:     []string{"pair"},
		Seeds:     []uint64{1, 2, 3, 4, 5, 6, 7, 8},
		Durations: []Duration{Duration(20 * time.Millisecond)},
		Wander:    true,
	}
}

// BenchmarkCampaign measures the campaign runner's parallel speedup on
// the 8-run reference grid: wall clock at -jobs 8 versus -jobs 1, with
// the determinism contract re-checked on the way. The speedup target
// (>= 3x on 8 runs at 8 workers) is asserted loosely — scaled down to
// what the host's core count can physically deliver — and the measured
// numbers are written to the file named by CAMPAIGN_BENCH_OUT (the
// `make bench-save` hook behind BENCH_5.json).
func BenchmarkCampaign(b *testing.B) {
	g := benchGrid()
	var parallel, serial time.Duration
	var parRep, serRep *Report

	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		rep, err := Run(g, Options{Jobs: 8})
		if err != nil {
			b.Fatal(err)
		}
		parallel = time.Since(start)
		parRep = rep
	}
	b.StopTimer()

	start := time.Now()
	var err error
	if serRep, err = Run(g, Options{Jobs: 1}); err != nil {
		b.Fatal(err)
	}
	serial = time.Since(start)

	var pb, sb bytes.Buffer
	if err := WriteJSONL(&pb, parRep.Results); err != nil {
		b.Fatal(err)
	}
	if err := WriteJSONL(&sb, serRep.Results); err != nil {
		b.Fatal(err)
	}
	deterministic := pb.String() == sb.String()
	if !deterministic {
		b.Fatal("jobs=8 and jobs=1 produced different JSONL output")
	}

	speedup := serial.Seconds() / parallel.Seconds()
	cores := runtime.GOMAXPROCS(0)
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(cores), "cores")

	// The >= 3x target needs at least ~4 usable cores; below that the
	// hardware cannot deliver it, so the assertion scales down rather
	// than failing on small CI runners or 1-CPU containers.
	minSpeedup := 0.0
	switch {
	case cores >= 8:
		minSpeedup = 3.0
	case cores >= 4:
		minSpeedup = 1.5
	}
	if minSpeedup > 0 && speedup < minSpeedup {
		b.Errorf("campaign speedup %.2fx at -jobs 8 vs -jobs 1, want >= %.1fx on %d cores",
			speedup, minSpeedup, cores)
	}

	if out := os.Getenv("CAMPAIGN_BENCH_OUT"); out != "" {
		record := map[string]any{
			"benchmark":        "BenchmarkCampaign",
			"grid_runs":        len(parRep.Results),
			"jobs":             8,
			"gomaxprocs":       cores,
			"wall_serial_ms":   serial.Seconds() * 1e3,
			"wall_parallel_ms": parallel.Seconds() * 1e3,
			"speedup":          speedup,
			"deterministic":    deterministic,
			"asserted_min":     minSpeedup,
			"note": fmt.Sprintf("speedup target 3x asserted when GOMAXPROCS >= 8 "+
				"(this record was taken on %d core(s))", cores),
		}
		j, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(out, append(j, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignPoint is the per-run cost floor: one pair-topology
// point, 20 ms simulated.
func BenchmarkCampaignPoint(b *testing.B) {
	g := benchGrid().withDefaults()
	p := g.Expand()[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := RunPoint(g, p)
		if res.Err != "" {
			b.Fatal(res.Err)
		}
	}
}
