package ntp

import (
	"math"
	"testing"

	"github.com/dtplab/dtp/internal/fabric"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/topo"
)

func deploy(t *testing.T, seed uint64, cfg Config) (*sim.Scheduler, *fabric.Network, []*Client) {
	t.Helper()
	sch := sim.NewScheduler()
	net, err := fabric.New(sch, seed, topo.Star(4), fabric.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	NewServer(net, 1, cfg, seed+1)
	var clients []*Client
	for i, node := range []int{2, 3, 4, 5} {
		c := NewClient(net, node, 1, cfg, seed+10+uint64(i))
		c.Start()
		clients = append(clients, c)
	}
	return sch, net, clients
}

func TestNTPConvergesToMicroseconds(t *testing.T) {
	cfg := DefaultConfig().Compressed(100) // poll every 160 ms
	sch, _, clients := deploy(t, 3, cfg)
	sch.Run(20 * sim.Second) // >100 polls
	worst := 0.0
	for i := 0; i < 100; i++ {
		sch.RunFor(100 * sim.Millisecond)
		for _, c := range clients {
			if o := math.Abs(c.OffsetToServerPs()) / 1e6; o > worst {
				worst = o
			}
		}
	}
	// Table 1: NTP achieves microsecond-class precision in a LAN —
	// orders of magnitude worse than PTP's idle hundreds of ns, far
	// better than WAN milliseconds.
	if worst > 500 {
		t.Fatalf("NTP offset reached %.1f us; want microsecond class", worst)
	}
	if worst < 0.5 {
		t.Fatalf("NTP offset %.3f us is implausibly good for software timestamps", worst)
	}
}

func TestNTPWorseThanHardwareTimestamping(t *testing.T) {
	// The structural claim of Table 1: NTP (software stack) is much
	// coarser than sub-microsecond methods. Verified by magnitude above;
	// here check that the stack jitter actually dominates: zeroing it
	// improves precision by at least an order of magnitude.
	run := func(medianUs float64) float64 {
		cfg := DefaultConfig().Compressed(100)
		cfg.StackMedianUs = medianUs
		sch, _, clients := deploy(t, 7, cfg)
		sch.Run(20 * sim.Second)
		worst := 0.0
		for i := 0; i < 100; i++ {
			sch.RunFor(100 * sim.Millisecond)
			for _, c := range clients {
				if o := math.Abs(c.OffsetToServerPs()); o > worst {
					worst = o
				}
			}
		}
		return worst
	}
	noisy := run(15)
	clean := run(0.05)
	if clean*5 > noisy {
		t.Fatalf("stack jitter not dominant: noisy %.0f ps vs clean %.0f ps", noisy, clean)
	}
}

func TestNTPStepsOnStartup(t *testing.T) {
	cfg := DefaultConfig().Compressed(100)
	sch, _, clients := deploy(t, 11, cfg)
	sch.Run(5 * sim.Second)
	for _, c := range clients {
		polls, replies, steps := c.Stats()
		if polls == 0 || replies == 0 {
			t.Fatal("client not exchanging")
		}
		if steps == 0 {
			t.Fatal("client with ±10ms initial error never stepped")
		}
	}
}

func TestNTPClockFilterPrefersMinDelay(t *testing.T) {
	cfg := DefaultConfig()
	sch := sim.NewScheduler()
	net, err := fabric.New(sch, 1, topo.Star(1), fabric.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(net, 2, 1, cfg, 5)
	var got []float64
	c.OnSample = func(off float64) { got = append(got, off) }
	// Inject: a good sample (low delay) then a bad one (high delay).
	// The filter must keep preferring the min-delay sample: after the
	// first apply slews out half of 100, the retained good sample is
	// re-referenced to 50 and must win over the 99999 outlier.
	c.synced = true
	c.apply(100, 1000)
	c.apply(99999, 50000)
	if len(got) != 2 || got[0] != 100 || got[1] != 50 {
		t.Fatalf("filter output %v, want [100 50]", got)
	}
}

func TestNTPDeterminism(t *testing.T) {
	run := func() float64 {
		cfg := DefaultConfig().Compressed(100)
		sch, _, clients := deploy(t, 21, cfg)
		sch.Run(10 * sim.Second)
		return clients[0].OffsetToServerPs()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestNTPStopHalts(t *testing.T) {
	cfg := DefaultConfig().Compressed(100)
	sch, _, clients := deploy(t, 31, cfg)
	sch.Run(5 * sim.Second)
	c := clients[0]
	polls, _, _ := c.Stats()
	c.Stop()
	sch.RunFor(5 * sim.Second)
	polls2, _, _ := c.Stats()
	if polls2 != polls {
		t.Fatalf("stopped client still polled (%d -> %d)", polls, polls2)
	}
}
