package experiments

import (
	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/par"
	"github.com/dtplab/dtp/internal/phy"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/topo"
)

// AlphaRow is one point of the α ablation (T2, Algorithm 1).
type AlphaRow struct {
	Alpha int64
	// RatchetPPM is how much faster the global counter ran than the
	// fastest oscillator, in ppm. Positive means the mutual-adjustment
	// feedback loop is ratcheting — what α = 3 prevents.
	RatchetPPM float64
	// MaxOffsetTicks is the worst adjacent offset.
	MaxOffsetTicks int64
}

// AblationAlpha sweeps α, demonstrating the design point of §3.3: too
// small an α lets the measured one-way delay exceed the true delay,
// which drives the global counter faster than any oscillator. Points
// fan out across o.Jobs workers and merge in input order.
func AblationAlpha(o Options, alphas []int64) ([]AlphaRow, error) {
	o = o.withDefaults(sim.Second, 100*sim.Microsecond)
	return par.Map(o.Jobs, len(alphas), func(i int) (AlphaRow, error) {
		a := alphas[i]
		sch := sim.NewScheduler()
		cfg := core.DefaultConfig()
		cfg.AlphaUnits = a
		n, err := core.NewNetwork(sch, o.Seed, topo.Pair(), cfg,
			core.WithPPM(map[string]float64{"h0": 100, "h1": -100}))
		if err != nil {
			return AlphaRow{}, err
		}
		n.Start()
		sch.Run(10 * sim.Millisecond)
		start := n.Devices[0].GlobalCounter()
		t0 := sch.Now()
		var worst int64
		end := sch.Now() + o.Duration
		for sch.Now() < end {
			sch.RunFor(o.SamplePeriod)
			v := n.TrueOffsetUnits(0, 1)
			if v < 0 {
				v = -v
			}
			if v > worst {
				worst = v
			}
		}
		gained := float64(n.Devices[0].GlobalCounter() - start)
		elapsed := (sch.Now() - t0).Seconds()
		fastest := 156.25e6 * (1 + 100e-6) // +100 ppm oscillator
		ratchet := (gained/elapsed/fastest - 1) * 1e6
		return AlphaRow{Alpha: a, RatchetPPM: ratchet, MaxOffsetTicks: worst}, nil
	})
}

// BeaconIntervalRow is one point of the resynchronization-interval
// ablation (§3.3: intervals below ~5000 ticks keep the interval's
// contribution within 2 ticks).
type BeaconIntervalRow struct {
	IntervalTicks  uint64
	MaxOffsetTicks int64
}

// AblationBeaconInterval sweeps the beacon interval across the paper's
// operating points and beyond the 5000-tick analysis limit. Points fan
// out across o.Jobs workers and merge in input order.
func AblationBeaconInterval(o Options, intervals []uint64) ([]BeaconIntervalRow, error) {
	o = o.withDefaults(sim.Second, 100*sim.Microsecond)
	return par.Map(o.Jobs, len(intervals), func(i int) (BeaconIntervalRow, error) {
		iv := intervals[i]
		sch := sim.NewScheduler()
		cfg := core.DefaultConfig()
		cfg.BeaconIntervalTicks = iv
		cfg.GuardUnits = 1 << 20 // observe pure drift, no guard effects
		n, err := core.NewNetwork(sch, o.Seed, topo.Pair(), cfg,
			core.WithPPM(map[string]float64{"h0": 100, "h1": -100}))
		if err != nil {
			return BeaconIntervalRow{}, err
		}
		n.Start()
		sch.Run(10 * sim.Millisecond)
		var worst int64
		end := sch.Now() + o.Duration
		for sch.Now() < end {
			sch.RunFor(o.SamplePeriod)
			v := n.TrueOffsetUnits(0, 1)
			if v < 0 {
				v = -v
			}
			if v > worst {
				worst = v
			}
		}
		return BeaconIntervalRow{IntervalTicks: iv, MaxOffsetTicks: worst}, nil
	})
}

// SyncEResult compares free-running oscillators against SyncE-style
// syntonization (§8): with every device's frequency locked to a common
// reference, the only remaining offset sources are the static
// measurement residue and the (phase-locked) CDC — offsets freeze.
// The paper expects "combining DTP with frequency synchronization ...
// will also improve the precision of DTP".
type SyncEResult struct {
	// FreeRunSpreadTicks is max-min of the per-pair offset over the
	// window with independent ±100 ppm oscillators.
	FreeRunSpreadTicks int64
	// SyntonizedSpreadTicks is the same with all frequencies locked.
	SyntonizedSpreadTicks int64
	// FreeRunWorstTicks / SyntonizedWorstTicks are the worst |offset|.
	FreeRunWorstTicks    int64
	SyntonizedWorstTicks int64
}

// AblationSyncE measures the §8 prediction on the paper tree.
func AblationSyncE(o Options) (*SyncEResult, error) {
	o = o.withDefaults(sim.Second, 200*sim.Microsecond)
	run := func(syntonized bool) (spread, worst int64, err error) {
		sch := sim.NewScheduler()
		cfg := core.DefaultConfig()
		var opts []core.Option
		if syntonized {
			// All oscillators locked to one reference frequency.
			ppm := map[string]float64{}
			for _, name := range []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11"} {
				ppm[name] = 37.5
			}
			opts = append(opts, core.WithPPM(ppm))
		}
		n, err := core.NewNetwork(sch, o.Seed, topo.PaperTree(), cfg, opts...)
		if err != nil {
			return 0, 0, err
		}
		n.Start()
		sch.Run(10 * sim.Millisecond)
		var min, max int64
		first := true
		end := sch.Now() + o.Duration
		for sch.Now() < end {
			sch.RunFor(o.SamplePeriod)
			v := n.TrueOffsetUnits(4, 11) // two leaves, 4 hops apart
			if first || v < min {
				min = v
			}
			if first || v > max {
				max = v
			}
			first = false
			a := v
			if a < 0 {
				a = -a
			}
			if a > worst {
				worst = a
			}
		}
		return max - min, worst, nil
	}
	var res SyncEResult
	var err error
	if res.FreeRunSpreadTicks, res.FreeRunWorstTicks, err = run(false); err != nil {
		return nil, err
	}
	if res.SyntonizedSpreadTicks, res.SyntonizedWorstTicks, err = run(true); err != nil {
		return nil, err
	}
	return &res, nil
}

// MixedSpeedRow is one point of the §7 mixed-speed validation: a chain
// whose middle hop runs at a different rate than the host links.
type MixedSpeedRow struct {
	Core phy.Speed
	// MaxUnits is the worst end-to-end offset in 0.32 ns base units.
	MaxUnits int64
	// BoundUnits sums 4 port cycles per hop.
	BoundUnits int64
	MaxNs      float64
	BoundNs    float64
}

// MixedSpeedSweep runs 10G-host chains whose core link is 1/10/40/100
// GbE, counters in common base units (§7, Table 2's Delta column).
// Points fan out across o.Jobs workers and merge in speed order.
func MixedSpeedSweep(o Options) ([]MixedSpeedRow, error) {
	o = o.withDefaults(500*sim.Millisecond, 50*sim.Microsecond)
	coreSpeeds := []phy.Speed{phy.Speed1G, phy.Speed10G, phy.Speed40G, phy.Speed100G}
	return par.Map(o.Jobs, len(coreSpeeds), func(i int) (MixedSpeedRow, error) {
		coreSpeed := coreSpeeds[i]
		sch := sim.NewScheduler()
		speeds := map[int]phy.Speed{0: phy.Speed10G, 1: coreSpeed, 2: phy.Speed10G}
		n, err := core.NewNetwork(sch, o.Seed, topo.Chain(3), core.MixedSpeedConfig(),
			core.WithLinkSpeeds(speeds))
		if err != nil {
			return MixedSpeedRow{}, err
		}
		n.Start()
		sch.Run(10 * sim.Millisecond)
		last := len(n.Devices) - 1
		var worst int64
		end := sch.Now() + o.Duration
		for sch.Now() < end {
			sch.RunFor(o.SamplePeriod)
			v := n.TrueOffsetUnits(0, last)
			if v < 0 {
				v = -v
			}
			if v > worst {
				worst = v
			}
		}
		bound := int64(0)
		for j := 0; j < 3; j++ {
			bound += 4 * phy.ProfileFor(speeds[j]).Delta
		}
		return MixedSpeedRow{
			Core: coreSpeed, MaxUnits: worst, BoundUnits: bound,
			MaxNs:   float64(worst) * float64(phy.BaseTickFs) / 1e6,
			BoundNs: float64(bound) * float64(phy.BaseTickFs) / 1e6,
		}, nil
	})
}

// MasterModeResult compares §5.4 follow-the-master mode against the
// default max-coupling on the same chain with the same oscillators.
type MasterModeResult struct {
	// MaxModeOffsetTicks / MasterModeOffsetTicks are the worst adjacent
	// offsets in each mode.
	MaxModeOffsetTicks    int64
	MasterModeOffsetTicks int64
	// MaxModeRatePPM / MasterModeRatePPM are the end device's counter
	// rates relative to nominal, in ppm. Max mode tracks the fastest
	// oscillator in the network; master mode tracks the root's.
	MaxModeRatePPM    float64
	MasterModeRatePPM float64
}

// AblationMasterMode runs a 4-hop chain with a deliberately slow master
// (h0 at -100 ppm) and fast followers, in both coupling modes.
func AblationMasterMode(o Options) (*MasterModeResult, error) {
	o = o.withDefaults(sim.Second, 100*sim.Microsecond)
	ppm := map[string]float64{"h0": -100, "sw1": 60, "sw2": 100, "sw3": -20, "h1": 80}
	run := func(master bool) (int64, float64, error) {
		sch := sim.NewScheduler()
		cfg := DefaultCoreConfig()
		if master {
			cfg.FollowMaster = true
			cfg.Master = "h0"
		}
		n, err := core.NewNetwork(sch, o.Seed, topo.Chain(4), cfg, core.WithPPM(ppm))
		if err != nil {
			return 0, 0, err
		}
		n.Start()
		sch.Run(10 * sim.Millisecond)
		last := len(n.Devices) - 1
		start := n.Devices[last].GlobalCounter()
		t0 := sch.Now()
		var worst int64
		end := sch.Now() + o.Duration
		for sch.Now() < end {
			sch.RunFor(o.SamplePeriod)
			if v := n.MaxAdjacentOffset(); v > worst {
				worst = v
			}
		}
		gained := float64(n.Devices[last].GlobalCounter() - start)
		elapsed := (sch.Now() - t0).Seconds()
		ratePPM := (gained/elapsed/156.25e6 - 1) * 1e6
		return worst, ratePPM, nil
	}
	var res MasterModeResult
	var err error
	if res.MaxModeOffsetTicks, res.MaxModeRatePPM, err = run(false); err != nil {
		return nil, err
	}
	if res.MasterModeOffsetTicks, res.MasterModeRatePPM, err = run(true); err != nil {
		return nil, err
	}
	return &res, nil
}

// DefaultCoreConfig exposes the protocol defaults to experiment callers.
func DefaultCoreConfig() core.Config { return core.DefaultConfig() }

// CDCRow is one point of the clock-domain-crossing ablation.
type CDCRow struct {
	ExtraTicks     int
	MaxOffsetTicks int64
	MeasuredOWDMin int64
	MeasuredOWDMax int64
}

// AblationCDC sweeps the synchronization-FIFO depth: the only random
// element on an idle link (§2.5). Deeper FIFOs widen both the OWD
// measurement and the offset envelope. Points fan out across o.Jobs
// workers and merge in input order.
func AblationCDC(o Options, depths []int) ([]CDCRow, error) {
	o = o.withDefaults(sim.Second, 100*sim.Microsecond)
	return par.Map(o.Jobs, len(depths), func(i int) (CDCRow, error) {
		depth := depths[i]
		sch := sim.NewScheduler()
		cfg := core.DefaultConfig()
		cfg.CDCMaxExtraTicks = depth
		n, err := core.NewNetwork(sch, o.Seed, topo.Pair(), cfg,
			core.WithPPM(map[string]float64{"h0": 100, "h1": -100}))
		if err != nil {
			return CDCRow{}, err
		}
		n.Start()
		sch.Run(10 * sim.Millisecond)
		pa, pb := n.LinkPorts(0)
		owdMin, owdMax := pa.OWDUnits(), pa.OWDUnits()
		if d := pb.OWDUnits(); d < owdMin {
			owdMin = d
		} else if d > owdMax {
			owdMax = d
		}
		var worst int64
		end := sch.Now() + o.Duration
		for sch.Now() < end {
			sch.RunFor(o.SamplePeriod)
			v := n.TrueOffsetUnits(0, 1)
			if v < 0 {
				v = -v
			}
			if v > worst {
				worst = v
			}
		}
		return CDCRow{
			ExtraTicks: depth, MaxOffsetTicks: worst,
			MeasuredOWDMin: owdMin, MeasuredOWDMax: owdMax,
		}, nil
	})
}
