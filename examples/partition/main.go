// Network dynamics (§3.2): partitions and late joiners. DTP has no
// master — every device couples to the maximum counter it can hear —
// so when a partition heals, BEACON-JOIN messages re-merge the two
// timescales onto the larger one, without any counter ever moving
// backwards.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/dtplab/dtp"
)

func main() {
	sys, err := dtp.New(dtp.PaperTree(), dtp.WithSeed(23))
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()
	if err := sys.RunUntilSynced(time.Second); err != nil {
		log.Fatal(err)
	}
	report := func(label string) {
		off, _ := sys.OffsetTicks("s0", "s3")
		c0, _ := sys.Counter("s0")
		c3, _ := sys.Counter("s3")
		fmt.Printf("%-28s s0=%d s3=%d offset=%d ticks\n", label, c0, c3, off)
	}
	report("synchronized:")

	// Cut the s0-s3 uplink: {s3, s9, s10, s11} becomes its own island.
	if err := sys.CutLink("s0", "s3"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- cable s0-s3 pulled; islands drift on their own oscillators --")
	for i := 0; i < 3; i++ {
		sys.Run(100 * time.Millisecond)
		report(fmt.Sprintf("t=%v:", sys.Now()))
	}

	// Heal: the ports re-run INIT, exchange BEACON-JOIN, and the island
	// with the smaller counter adopts the larger one.
	before3, _ := sys.Counter("s3")
	before0, _ := sys.Counter("s0")
	if err := sys.RestoreLink("s0", "s3"); err != nil {
		log.Fatal(err)
	}
	if err := sys.RunUntilSynced(time.Second); err != nil {
		log.Fatal(err)
	}
	sys.Run(10 * time.Millisecond)
	fmt.Println("\n-- cable restored; BEACON-JOIN merges the islands --")
	report("healed:")
	after3, _ := sys.Counter("s3")
	after0, _ := sys.Counter("s0")
	if after3 < before3 || after0 < before0 {
		log.Fatal("BUG: a counter moved backwards")
	}
	fmt.Println("\nno counter moved backwards; the slow island jumped forward to the fast one")

	sys.Run(100 * time.Millisecond)
	fmt.Printf("steady state: max offset %d ticks (bound %d ticks = %.1f ns)\n",
		sys.MaxOffsetTicks(), sys.BoundTicks(), sys.BoundNanos())
}
