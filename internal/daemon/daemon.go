// Package daemon models software access to the DTP counter (§5.1 and
// Figure 7): a per-server daemon reads the NIC's DTP counter over PCIe
// (memory-mapped I/O with long-tailed latency), disciplines a
// TSC-derived software clock to it, and serves get_DTP_counter()
// estimates by interpolation. The paper measures the raw estimate
// within ±16 ticks (~102 ns) of the hardware counter, and within
// ±4 ticks (~25.6 ns) after a 10-sample moving average.
//
// The estimator itself is pluggable: the daemon feeds raw calibration
// pairs to an internal/discipline Discipline (moving average by
// default, or PLL / Theil-Sen / LAD) and serves whatever model it
// maintains. See Options.Discipline.
package daemon

import (
	"fmt"
	"math"

	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/discipline"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/swclock"
	"github.com/dtplab/dtp/internal/telemetry"
)

// Config models the host hardware.
type Config struct {
	// CalInterval is how often the daemon reads the NIC counter over
	// PCIe to recalibrate (paper: about once per second).
	CalInterval sim.Time
	// PCIeMedian / PCIeSigma parameterize the lognormal MMIO read
	// round-trip latency.
	PCIeMedian sim.Time
	PCIeSigma  float64
	// PCIeSpikeP is the probability a read hits bus contention and
	// takes PCIeSpike extra — the spikes visible in Figure 7a.
	PCIeSpikeP float64
	PCIeSpike  sim.Time
	// TSCPPM is the half-range of the CPU TSC frequency error relative
	// to nominal; invariant TSCs are stable but not perfectly accurate.
	TSCPPM float64
	// RatioGain is the EWMA gain for the DTP-per-TSC frequency ratio
	// estimate.
	//
	// Deprecated: RatioGain parameterizes only the moving-average
	// discipline; set Options.Discipline.Gain instead. It is honored
	// when Options.Discipline leaves the gain unset, so existing
	// callers keep their exact behavior.
	RatioGain float64
}

// DefaultConfig matches the paper's setup.
func DefaultConfig() Config {
	return Config{
		CalInterval: sim.Second,
		PCIeMedian:  450 * sim.Nanosecond,
		PCIeSigma:   0.15,
		PCIeSpikeP:  0.005,
		PCIeSpike:   1500 * sim.Nanosecond,
		TSCPPM:      20,
		RatioGain:   0.2,
	}
}

// Compressed scales the calibration interval by 1/k for compressed-time
// experiments.
func (c Config) Compressed(k int64) Config {
	if k > 1 {
		c.CalInterval /= sim.Time(k)
	}
	return c
}

// Options configures Attach, following the option-struct + Close()
// convention of dtp.System. The zero value reproduces the paper setup:
// DefaultConfig hardware and the moving-average discipline.
type Options struct {
	// Config models the host hardware; the zero value means
	// DefaultConfig().
	Config Config
	// Discipline selects and parameterizes the software-clock
	// estimator; the zero value means the paper's moving-average path
	// (discipline kind "ma").
	Discipline discipline.Config
}

// Daemon is the per-server DTP daemon.
type Daemon struct {
	dev *core.Device
	sch *sim.Scheduler
	rng *sim.RNG
	cfg Config

	tsc *swclock.Clock // invariant TSC as a ps-domain clock

	// The discipline owns all calibration state; the daemon holds a
	// copy of its latest model for lock-free-style reads on the serve
	// path (everything runs under the sim scheduler, but the model
	// copy also keeps EstimateAt free of interface calls).
	disc    discipline.Discipline
	model   discipline.Model
	nominal float64 // nominal counter units per TSC ps

	calCount uint64
	// lastRestarts mirrors dev.Restarts(): when the device power-cycles
	// its counter restarts from zero, so calibration history anchored to
	// the old counter domain is poison — the discipline is reset and
	// reacquires from scratch (the crash/rejoin fix).
	lastRestarts uint64
	resets       uint64

	stopped bool

	// OnSample, if set, receives offset_sw = estimate - hardware
	// counter, in units, at each calibration (the §6.2 measurement).
	OnSample func(offsetUnits float64)

	// Telemetry handles (nil when uninstrumented; see Instrument).
	cals     *telemetry.Counter
	offHist  *telemetry.Histogram
	gErr     *telemetry.Gauge
	gRatio   *telemetry.Gauge
	cDropped *telemetry.Counter
	cResets  *telemetry.Counter
	tr       *telemetry.Tracer
}

// Attach connects a daemon to a DTP device. The returned daemon is not
// yet calibrating; call Start. Close (or Stop) detaches it.
func Attach(dev *core.Device, o Options, seed uint64) (*Daemon, error) {
	cfg := o.Config
	if cfg == (Config{}) {
		cfg = DefaultConfig()
	}
	dc := o.Discipline
	if dc.Gain == 0 && (dc.Kind == "" || dc.Kind == "ma") {
		// Deprecated Config.RatioGain still parameterizes the default
		// moving-average discipline.
		dc.Gain = cfg.RatioGain
	}
	nominal := 1e3 / float64(dev.Clock().NominalPeriodFs())
	disc, err := dc.New(nominal)
	if err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	sch := dev.Clock().Scheduler()
	rng := sim.NewRNG(seed, fmt.Sprintf("daemon/%s", dev.Name()))
	d := &Daemon{
		dev: dev, sch: sch, rng: rng, cfg: cfg,
		tsc:          swclock.New(sch, rng.Uniform(-cfg.TSCPPM, cfg.TSCPPM)),
		disc:         disc,
		nominal:      nominal,
		lastRestarts: dev.Restarts(),
	}
	d.model = disc.Model()
	return d, nil
}

// New attaches a daemon with the default moving-average discipline.
//
// Deprecated: use Attach, which takes an Options struct and can select
// a discipline. New panics on an invalid Config (Attach returns the
// error instead).
func New(dev *core.Device, cfg Config, seed uint64) *Daemon {
	d, err := Attach(dev, Options{Config: cfg}, seed)
	if err != nil {
		panic(err)
	}
	return d
}

// Instrument attaches telemetry: a calibration counter, a software-
// offset histogram, per-discipline gauges (anchor error bound, ratio
// deviation from nominal) and counters (outlier drops, restart resets),
// all labeled with the host name, plus daemon_cal trace events
// (V1 = offset in milli-units, V2 = calibration count). Either
// argument may be nil.
func (d *Daemon) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	host := d.dev.Name()
	d.cals = reg.Counter("dtp_daemon_calibrations_total",
		"PCIe calibration reads completed by the DTP daemon.", "host", host)
	d.offHist = reg.Histogram("dtp_daemon_offset_units",
		"Daemon software offset (estimate - hardware counter) in counter units (Fig. 7).",
		telemetry.LinearBuckets(-20, 2, 21), "host", host)
	d.gErr = reg.Gauge("dtp_daemon_discipline_err_units",
		"Active discipline's self-reported anchor error bound, counter units.",
		"host", host, "discipline", d.disc.Name())
	d.gRatio = reg.Gauge("dtp_daemon_discipline_ratio_ppm",
		"Active discipline's frequency-ratio estimate, ppm deviation from nominal.",
		"host", host, "discipline", d.disc.Name())
	d.cDropped = reg.Counter("dtp_daemon_discipline_dropped_total",
		"Calibration samples rejected by the discipline's outlier logic.",
		"host", host, "discipline", d.disc.Name())
	d.cResets = reg.Counter("dtp_daemon_discipline_resets_total",
		"Discipline state resets triggered by device restarts.",
		"host", host, "discipline", d.disc.Name())
	d.tr = tr
}

// OffsetHistogram returns the instrumented software-offset histogram
// (nil until Instrument is called). Callers use it to report quantiles
// without wiring their own OnSample accumulators.
func (d *Daemon) OffsetHistogram() *telemetry.Histogram { return d.offHist }

// Start begins periodic calibration.
func (d *Daemon) Start() {
	d.stopped = false
	d.sch.After(d.rng.UniformTime(0, d.cfg.CalInterval), d.calibrate)
}

// Stop halts calibration (estimates keep extrapolating).
func (d *Daemon) Stop() { d.stopped = true }

// Close stops the daemon, completing the option-struct + Close()
// lifecycle convention. It never fails; the error return matches the
// io.Closer shape used across the facade.
func (d *Daemon) Close() error {
	d.Stop()
	return nil
}

// Calibrations returns how many PCIe reads have completed.
func (d *Daemon) Calibrations() uint64 { return d.calCount }

// readLatency draws one PCIe MMIO round-trip.
func (d *Daemon) readLatency() sim.Time {
	ns := d.rng.LogNormal(math.Log(float64(d.cfg.PCIeMedian)), d.cfg.PCIeSigma)
	lat := sim.Time(ns)
	if d.rng.Bool(d.cfg.PCIeSpikeP) {
		lat += d.rng.UniformTime(0, d.cfg.PCIeSpike)
	}
	return lat
}

// The NIC latches the counter somewhere within the PCIe read; the
// daemon assumes the window midpoint. The latch point stays within
// latchMidFrac ± latchHalfRangeFrac of the measured read duration (the
// kind of bound a NIC datasheet specifies), so the daemon can bound its
// own anchor error from the latency it just measured — the same move
// NTP makes with RTT/2.
const (
	latchMidFrac       = 0.5
	latchHalfRangeFrac = 0.1
)

// calibrate performs one MMIO read of the NIC's DTP counter and feeds
// the (tsc, dtp) pair to the active discipline.
func (d *Daemon) calibrate() {
	if d.stopped {
		return
	}
	issue := d.sch.Now()
	lat := d.readLatency()
	// The NIC latches the counter at some point within the read. The
	// daemon measures the read duration with the TSC and assumes the
	// midpoint; the latch point's deviation from the midpoint becomes
	// estimation error — the Figure 7a noise, largest on the PCIe
	// contention spikes.
	latchFrac := d.rng.Uniform(latchMidFrac-latchHalfRangeFrac, latchMidFrac+latchHalfRangeFrac)
	latchAt := issue + sim.Time(float64(lat)*latchFrac)
	latched := d.dev.GlobalCounterAt(latchAt)
	d.sch.At(issue+lat, func() {
		if r := d.dev.Restarts(); r != d.lastRestarts {
			// The counter restarted from zero while this read was in
			// flight or since the last calibration: every anchor in the
			// discipline belongs to the dead counter domain.
			d.lastRestarts = r
			d.resets++
			d.cResets.Inc()
			d.disc.Reset()
		}
		tscMid := d.tsc.At(issue + lat/2)
		wasDropped := d.disc.Dropped()
		d.model = d.disc.Feed(discipline.Sample{
			DTP:        float64(latched),
			TSC:        tscMid,
			LatchErrPs: latchHalfRangeFrac * float64(lat),
		})
		d.calCount++
		d.cals.Inc()
		if n := d.disc.Dropped() - wasDropped; n > 0 {
			d.cDropped.Add(n)
		}
		d.gErr.Set(d.model.ErrUnits)
		d.gRatio.Set((d.model.Ratio/d.nominal - 1) * 1e6)
		if d.OnSample != nil || d.offHist != nil || d.tr.Enabled(telemetry.KindDaemonCal) {
			est := d.EstimateAt(d.sch.Now())
			truth := float64(d.dev.GlobalCounterAt(d.sch.Now()))
			off := est - truth
			d.offHist.Observe(off)
			if d.tr.Enabled(telemetry.KindDaemonCal) {
				d.tr.Record(d.sch.Now(), telemetry.KindDaemonCal, d.dev.Name(),
					int64(off*1000), int64(d.calCount), "")
			}
			if d.OnSample != nil {
				d.OnSample(off)
			}
		}
		d.sch.After(d.cfg.CalInterval, d.calibrate)
	})
}

// EstimateAt returns the daemon's get_DTP_counter() estimate (in counter
// units, fractional) at time t, interpolated from the TSC.
func (d *Daemon) EstimateAt(t sim.Time) float64 {
	if !d.model.Valid {
		return 0
	}
	return d.model.DTP + (d.tsc.At(t)-d.model.TSC)*d.model.Ratio
}

// Estimate returns the current get_DTP_counter() value.
func (d *Daemon) Estimate() float64 { return d.EstimateAt(d.sch.Now()) }

// OffsetUnits returns ground truth: estimate minus hardware counter, in
// counter units (offset_sw of §6.2).
func (d *Daemon) OffsetUnits() float64 {
	now := d.sch.Now()
	return d.EstimateAt(now) - float64(d.dev.GlobalCounterAt(now))
}

// Device returns the attached DTP device.
func (d *Daemon) Device() *core.Device { return d.dev }

// TSC returns the daemon's raw timebase: the invariant-TSC software
// clock its estimates interpolate from. The serving plane anchors its
// published snapshots in this clock's domain so fast-path readers never
// touch the daemon itself.
func (d *Daemon) TSC() *swclock.Clock { return d.tsc }

// Ratio returns the estimated DTP counter units per TSC picosecond.
func (d *Daemon) Ratio() float64 { return d.model.Ratio }

// Calibrated reports whether at least one PCIe calibration completed
// (before that, estimates are meaningless zeros).
func (d *Daemon) Calibrated() bool { return d.model.Valid }

// Discipline returns the active discipline's kind ("ma", "pll",
// "theilsen" or "lad").
func (d *Daemon) Discipline() string { return d.disc.Name() }

// Model returns a copy of the active discipline's current model.
func (d *Daemon) Model() discipline.Model { return d.model }

// DroppedSamples returns how many calibration samples the discipline's
// outlier logic has rejected.
func (d *Daemon) DroppedSamples() uint64 { return d.disc.Dropped() }

// DisciplineResets returns how many times a device restart forced the
// discipline to discard its state and reacquire.
func (d *Daemon) DisciplineResets() uint64 { return d.resets }

// EstimateErrorUnits returns a conservative bound on the current
// estimate's error versus the hardware counter, in counter units: the
// discipline's self-reported anchor error plus its frequency-ratio
// slack accumulated since the calibration. It is adaptive — a
// contention spike widens the bound for exactly one calibration
// interval — and +Inf before the first calibration. The serving plane
// (internal/timesvc) folds it into published interval half-widths.
func (d *Daemon) EstimateErrorUnits() float64 {
	return d.model.ErrorAt(d.tsc.Now())
}
