package dtp_test

// Campaign -jobs scaling for BENCH_8.json. This lives in the external
// test package because it drives internal/campaign, which imports the
// root package — but it runs in the same test binary as
// BenchmarkEngineFattree8, after it (benchmarks execute in file/name
// order), so it can fold its measurements into the BENCH8_OUT record
// the engine benchmark wrote.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/dtplab/dtp/internal/campaign"
)

// BenchmarkCampaignJobsScaling measures how campaign wall time scales
// with -jobs width on a fixed 8-run fattree:4 seed sweep. Requires
// BENCH8_FULL=1 (the sweep is seconds of work per width) and at least
// 2 CPUs (scaling on one core is noise). When BENCH8_OUT names the
// record written by BenchmarkEngineFattree8, the jobs_scaling map is
// merged into it.
func BenchmarkCampaignJobsScaling(b *testing.B) {
	if os.Getenv("BENCH8_FULL") == "" {
		b.Skip("jobs scaling runs under BENCH8_FULL=1 only")
	}
	if runtime.NumCPU() < 2 {
		b.Skip("jobs scaling needs >= 2 CPUs")
	}
	g := campaign.Grid{
		Name:      "bench8-jobs",
		Topos:     []string{"fattree:4"},
		Seeds:     campaign.SeedSweep(1, 8),
		Durations: []campaign.Duration{campaign.Duration(2 * time.Millisecond)},
	}
	scaling := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, jobs := range []int{1, 2, 4, 8} {
			if jobs > runtime.NumCPU() {
				break
			}
			rep, err := campaign.Run(g, campaign.Options{Jobs: jobs})
			if err != nil {
				b.Fatal(err)
			}
			if !rep.OK() {
				b.Fatalf("jobs=%d: campaign failed: %+v", jobs, rep.Aggregate)
			}
			scaling[fmt.Sprint(jobs)] = rep.Wall.Seconds()
		}
	}
	if w1, ok := scaling["1"]; ok {
		for _, jobs := range []string{"2", "4", "8"} {
			if w, ok := scaling[jobs]; ok && w > 0 {
				b.ReportMetric(w1/w, "speedup_jobs_"+jobs)
			}
		}
	}
	if out := os.Getenv("BENCH8_OUT"); out != "" {
		if err := mergeJobsScaling(out, scaling); err != nil {
			b.Fatal(err)
		}
	}
}

// mergeJobsScaling rewrites the BENCH_8.json record with the
// jobs_scaling map filled in, preserving every other field.
func mergeJobsScaling(path string, scaling map[string]float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("BENCH8_OUT record not found (run BenchmarkEngineFattree8 first): %w", err)
	}
	var rec map[string]any
	if err := json.Unmarshal(buf, &rec); err != nil {
		return err
	}
	rec["jobs_scaling"] = scaling
	buf, err = json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
