package timesvc

import (
	"errors"
	"testing"

	"github.com/dtplab/dtp/internal/audit"
	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/daemon"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
	"github.com/dtplab/dtp/internal/topo"
)

// servedPair builds a two-host DTP network with h0 broadcasting UTC and
// a Service on h1, all instrumented, and runs it long enough for the
// first snapshots to publish.
type servedPair struct {
	sch *sim.Scheduler
	net *core.Network
	reg *telemetry.Registry
	svc *Service
	ld  *Load
}

func newServedPair(t *testing.T, seed uint64, scfg ServiceConfig, qps float64) *servedPair {
	t.Helper()
	sch := sim.NewScheduler()
	n, err := core.NewNetwork(sch, seed, topo.Pair(), core.DefaultConfig(),
		core.WithPPM(map[string]float64{"h0": 40, "h1": -40}))
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	sch.Run(5 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("pair did not sync")
	}

	reg := telemetry.New()
	tr := telemetry.NewTracer(0)

	dcfg := daemon.DefaultConfig().Compressed(100)
	d0 := daemon.New(n.Devices[0], dcfg, seed+100)
	d1 := daemon.New(n.Devices[1], dcfg, seed+101)
	d0.Start()
	d1.Start()

	b := daemon.NewUTCBroadcaster(d0, daemon.TrueUTC{Sch: sch}, 10*sim.Millisecond)
	f := daemon.NewUTCFollower(d1)
	b.Subscribe(f)
	b.Start()

	// Margin 0: the audit bound stays pure hardware 4TD; the service
	// composes the software-side error terms itself.
	aud := audit.New(n, audit.Config{})
	aud.Instrument(reg, tr)
	aud.Start()

	svc := NewService(d1, f, aud, scfg)
	svc.Instrument(reg, tr)
	svc.Start()

	p := &servedPair{sch: sch, net: n, reg: reg, svc: svc}
	if qps > 0 {
		p.ld = NewLoad(svc, sim.NewRNG(seed, "timesvc-load/h1"), LoadConfig{QPS: qps})
		p.ld.Instrument(reg)
		p.ld.Start()
	}
	return p
}

// simScale shortens the simulated soak windows under -short (the
// CI-wide race job): the full windows stay on plain `go test` and the
// dedicated serve-bench job, where the longer exposure matters.
func simScale(d sim.Time) sim.Time {
	if testing.Short() {
		return d / 4
	}
	return d
}

func scaleN(n int) int {
	if testing.Short() {
		return n / 4
	}
	return n
}

func TestServicePublishesAndServesBoundedUTC(t *testing.T) {
	p := newServedPair(t, 21, ServiceConfig{}, 0)
	p.sch.RunFor(simScale(2 * sim.Second))

	if min := uint64(scaleN(100)); p.svc.Publishes() < min {
		t.Fatalf("only %d publishes at 10 ms cadence, want >= %d", p.svc.Publishes(), min)
	}

	// Sample the in-sim clock against ground truth over another second.
	var widths []float64
	for i := 0; i < scaleN(200); i++ {
		p.sch.RunFor(5 * sim.Millisecond)
		w, covered, err := p.svc.ReadCheck()
		if err != nil {
			t.Fatalf("read %d failed: %v", i, err)
		}
		if !covered {
			t.Fatalf("read %d: true time outside the served interval (width %.0f ps)", i, w)
		}
		widths = append(widths, w)
	}
	// Width sanity: ε combines the audit bound, both daemons'
	// self-reported errors, and the broadcast residual; a 1-hop pair
	// sits around half a microsecond, widening to ~1 µs for one
	// calibration interval when a PCIe contention spike inflates a
	// daemon's self-reported bound. It can't be implausibly tight
	// either.
	for _, w := range widths {
		if w > 2e6 {
			t.Fatalf("interval width %.0f ps (> 2 µs) on a 1-hop pair", w)
		}
		if w < 1000 {
			t.Fatalf("interval width %.0f ps (< 1 ns): bound composition implausibly tight", w)
		}
	}
}

func TestServiceEpochAdvancesPerPublish(t *testing.T) {
	p := newServedPair(t, 23, ServiceConfig{}, 0)
	p.sch.RunFor(simScale(500 * sim.Millisecond))
	e1 := p.svc.Store().Epoch()
	if e1 == 0 {
		t.Fatal("no snapshot after the warmup window")
	}
	p.sch.RunFor(simScale(500 * sim.Millisecond))
	e2 := p.svc.Store().Epoch()
	if e2 <= e1 {
		t.Fatalf("epoch did not advance: %d -> %d", e1, e2)
	}
	if p.svc.Publishes() != e2 {
		t.Fatalf("Publishes() = %d but epoch = %d", p.svc.Publishes(), e2)
	}
}

func TestServiceFailsClosedWhenStopped(t *testing.T) {
	p := newServedPair(t, 25, ServiceConfig{}, 0)
	p.sch.RunFor(simScale(1 * sim.Second))
	if _, _, err := p.svc.ReadCheck(); err != nil {
		t.Fatalf("healthy read failed: %v", err)
	}

	// Stop calibration: the last snapshot keeps serving until MaxAge
	// (8 × 10 ms), then reads fail closed.
	p.svc.Stop()
	p.sch.RunFor(50 * sim.Millisecond)
	if _, _, err := p.svc.ReadCheck(); err != nil {
		t.Fatalf("read within MaxAge after stop failed: %v", err)
	}
	p.sch.RunFor(100 * sim.Millisecond)
	_, _, err := p.svc.ReadCheck()
	if !errors.Is(err, ErrStale) {
		t.Fatalf("read past MaxAge err = %v, want ErrStale", err)
	}
}

func TestServiceDegradedBeforeBroadcast(t *testing.T) {
	// No broadcaster at all: every tick must degrade (no broadcast), no
	// snapshot may publish, reads fail with ErrNoSnapshot.
	sch := sim.NewScheduler()
	n, err := core.NewNetwork(sch, 27, topo.Pair(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	sch.Run(5 * sim.Millisecond)

	d := daemon.New(n.Devices[1], daemon.DefaultConfig().Compressed(100), 41)
	d.Start()
	f := daemon.NewUTCFollower(d)
	// Margin 0: the audit bound stays pure hardware 4TD; the service
	// composes the software-side error terms itself.
	aud := audit.New(n, audit.Config{})
	aud.Start()

	svc := NewService(d, f, aud, ServiceConfig{})
	svc.Instrument(telemetry.New(), nil)
	svc.Start()
	sch.RunFor(simScale(500 * sim.Millisecond))

	if svc.Publishes() != 0 {
		t.Fatalf("%d publishes without any UTC broadcast", svc.Publishes())
	}
	if svc.DegradedTicks() == 0 {
		t.Fatal("no degraded ticks counted")
	}
	if _, _, err := svc.ReadCheck(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("read err = %v, want ErrNoSnapshot", err)
	}
}

func TestLoadObservesCoverageAndWidth(t *testing.T) {
	p := newServedPair(t, 29, ServiceConfig{}, 5000)
	// Warm up until the first snapshot exists, then measure. The warmup
	// window is NOT scaled down: the follower needs its WarmupPairs
	// broadcasts regardless of how long the measurement runs.
	p.sch.RunFor(200 * sim.Millisecond)
	warmupErrs := p.ld.Errors()
	p.sch.RunFor(simScale(2 * sim.Second))

	if min := uint64(scaleN(5000)); p.ld.Reads() < min {
		t.Fatalf("only %d simulated reads at 5000 qps, want >= %d", p.ld.Reads(), min)
	}
	if e := p.ld.Errors(); e != warmupErrs {
		t.Fatalf("%d reads failed closed after warmup", e-warmupErrs)
	}
	ok := p.ld.Reads() - p.ld.Errors()
	if p.ld.Covered() != ok {
		t.Fatalf("%d of %d successful reads not covered by their interval",
			ok-p.ld.Covered(), ok)
	}
	if w := p.ld.MeanWidthPs(); w <= 0 || w > 1e6 {
		t.Fatalf("mean width %.0f ps implausible", w)
	}
}
