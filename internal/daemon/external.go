package daemon

import (
	"fmt"
	"math"

	"github.com/dtplab/dtp/internal/sim"
)

// External synchronization (§5.2): one server periodically broadcasts
// (DTP counter, UTC) pairs; every other daemon estimates the frequency
// ratio between the two timescales and can then serve UTC by
// interpolating its own DTP counter. Because all DTP counters advance
// at the same (max-coupled) rate, UTC derived this way is as tightly
// synchronized across servers as DTP itself, plus the broadcast
// estimation error.

// UTCSource provides the broadcaster's UTC readings; typically a GPS
// receiver or an NTP/PTP-disciplined clock, with its own error.
type UTCSource interface {
	// ReadUTC returns UTC in picoseconds at the current instant.
	ReadUTC() float64
}

// TrueUTC is a perfect UTC source (for tests and bounds).
type TrueUTC struct{ Sch *sim.Scheduler }

// ReadUTC returns true time.
func (s TrueUTC) ReadUTC() float64 { return float64(s.Sch.Now()) }

// UTCBroadcast is one (counter, UTC) pair as received by followers.
type UTCBroadcast struct {
	Counter float64 // broadcaster's DTP counter estimate at the reading
	UTC     float64 // ps
}

// UTCBroadcaster periodically publishes pairs to registered followers.
// Delivery uses the DTP daemon's own counter estimate, so broadcaster-
// side software error is included, as it would be in deployment.
type UTCBroadcaster struct {
	d        *Daemon
	src      UTCSource
	interval sim.Time
	subs     []*UTCFollower
	stopped  bool
}

// NewUTCBroadcaster wraps a daemon and a UTC source.
func NewUTCBroadcaster(d *Daemon, src UTCSource, interval sim.Time) *UTCBroadcaster {
	return &UTCBroadcaster{d: d, src: src, interval: interval}
}

// Subscribe registers a follower.
func (b *UTCBroadcaster) Subscribe(f *UTCFollower) { b.subs = append(b.subs, f) }

// Start begins broadcasting.
func (b *UTCBroadcaster) Start() {
	b.stopped = false
	b.d.sch.After(b.interval, b.tick)
}

// Stop halts broadcasting.
func (b *UTCBroadcaster) Stop() { b.stopped = true }

func (b *UTCBroadcaster) tick() {
	if b.stopped {
		return
	}
	pair := UTCBroadcast{Counter: b.d.Estimate(), UTC: b.src.ReadUTC()}
	for _, f := range b.subs {
		f.deliver(pair)
	}
	b.d.sch.After(b.interval, b.tick)
}

// UTCFollower consumes broadcasts at one server and serves UTC queries
// by interpolating the local DTP counter.
type UTCFollower struct {
	d *Daemon

	have  bool
	last  UTCBroadcast
	ratio float64 // UTC ps per DTP unit
	recvd uint64
}

// NewUTCFollower attaches a follower to a local daemon.
func NewUTCFollower(d *Daemon) *UTCFollower {
	return &UTCFollower{d: d, ratio: float64(d.dev.Clock().NominalPeriodFs()) / 1e3}
}

func (f *UTCFollower) deliver(pair UTCBroadcast) {
	if f.have && pair.Counter > f.last.Counter {
		inst := (pair.UTC - f.last.UTC) / (pair.Counter - f.last.Counter)
		// Light smoothing: broadcast pairs carry daemon read noise.
		f.ratio += 0.2 * (inst - f.ratio)
	}
	f.last = pair
	f.have = true
	f.recvd++
}

// Received returns the number of broadcasts consumed.
func (f *UTCFollower) Received() uint64 { return f.recvd }

// UTC returns this server's UTC estimate (ps) at the current instant,
// or an error before the first broadcast.
func (f *UTCFollower) UTC() (float64, error) {
	if !f.have {
		return 0, fmt.Errorf("daemon: no UTC broadcast received yet")
	}
	return f.last.UTC + (f.d.Estimate()-f.last.Counter)*f.ratio, nil
}

// UTCErrorPs returns ground truth |UTC estimate - true time|, +Inf
// before the first broadcast.
func (f *UTCFollower) UTCErrorPs() float64 {
	utc, err := f.UTC()
	if err != nil {
		return math.Inf(1)
	}
	return utc - float64(f.d.sch.Now())
}
