package ptp

import (
	"math"
	"testing"

	"github.com/dtplab/dtp/internal/eth"
	"github.com/dtplab/dtp/internal/fabric"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/topo"
)

func TestPHCRate(t *testing.T) {
	sch := sim.NewScheduler()
	phc := NewPHC(sch, 50) // +50 ppm
	sch.Run(sim.Second)
	got := phc.Now()
	want := 1e12 * (1 + 50e-6)
	if math.Abs(got-want) > 1 {
		t.Fatalf("PHC after 1s = %.0f ps, want %.0f", got, want)
	}
}

func TestPHCStepAndAdjFreq(t *testing.T) {
	sch := sim.NewScheduler()
	phc := NewPHC(sch, 0)
	sch.Run(sim.Second)
	phc.Step(-500)
	if math.Abs(phc.Now()-(1e12-500)) > 1e-3 {
		t.Fatalf("step failed: %.3f", phc.Now())
	}
	phc.AdjFreq(1000) // +1 ppm
	before := phc.Now()
	sch.RunFor(sim.Second)
	gained := phc.Now() - before
	want := 1e12 * (1 + 1e-6)
	if math.Abs(gained-want) > 1 {
		t.Fatalf("AdjFreq(1000): gained %.0f ps/s, want %.0f", gained, want)
	}
	if phc.AdjPPB() != 1000 {
		t.Fatal("AdjPPB accessor")
	}
}

func TestPHCRebasePreservesHistory(t *testing.T) {
	sch := sim.NewScheduler()
	phc := NewPHC(sch, 25)
	sch.Run(sim.Second)
	before := phc.Now()
	phc.SetHwPPM(-25)
	if math.Abs(phc.Now()-before) > 1e-6 {
		t.Fatal("SetHwPPM rewrote history")
	}
	if phc.HwPPM() != -25 {
		t.Fatal("HwPPM accessor")
	}
}

func TestServoConvergesConstantDrift(t *testing.T) {
	// Feed the servo the offsets a +30 ppm clock would accumulate; its
	// integral must converge near -30000 ppb.
	sch := sim.NewScheduler()
	phc := NewPHC(sch, 30)
	s := newServo(DefaultConfig())
	interval := sim.Second
	for i := 0; i < 60; i++ {
		start := phc.Now()
		startTrue := float64(sch.Now())
		sch.RunFor(interval)
		offset := (phc.Now() - start) - (float64(sch.Now()) - startTrue) // drift this round
		phc.AdjFreq(s.update(offset, interval))
	}
	if adj := phc.AdjPPB(); math.Abs(adj+30000) > 3000 {
		t.Fatalf("servo settled at %.0f ppb, want ~-30000", adj)
	}
}

func TestMedianSmallWindows(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{5, 1}, 3},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 9, 100}, 6.5},
	}
	for _, c := range cases {
		if got := median(c.in); got != c.want {
			t.Fatalf("median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// deploy builds the paper's PTP network: star through one cut-through
// switch, timeserver at node 1, 8 clients.
func deploy(t *testing.T, seed uint64, cfg Config, fcfg fabric.Config) (*sim.Scheduler, *fabric.Network, *Grandmaster, []*Client) {
	t.Helper()
	sch := sim.NewScheduler()
	g := topo.Star(8)
	net, err := fabric.New(sch, seed, g, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	var clientNodes []int
	for _, h := range g.HostIDs() {
		if h != 1 {
			clientNodes = append(clientNodes, h)
		}
	}
	gm := NewGrandmaster(net, 1, clientNodes, cfg, seed+1)
	var clients []*Client
	for i, cn := range clientNodes {
		clients = append(clients, NewClient(net, cn, 1, cfg, seed+10+uint64(i)))
	}
	gm.Start()
	for _, c := range clients {
		c.Start()
	}
	return sch, net, gm, clients
}

func maxAbsOffsetNs(clients []*Client) float64 {
	worst := 0.0
	for _, c := range clients {
		if o := math.Abs(c.OffsetToMasterPs()) / 1000; o > worst {
			worst = o
		}
	}
	return worst
}

func TestPTPConvergesOnIdleNetwork(t *testing.T) {
	cfg := DefaultConfig().Compressed(10) // sync every 100 ms
	sch, _, _, clients := deploy(t, 5, cfg, fabric.DefaultConfig())
	sch.Run(10 * sim.Second) // ~100 sync rounds
	worst := 0.0
	for i := 0; i < 200; i++ {
		sch.RunFor(10 * sim.Millisecond)
		if o := maxAbsOffsetNs(clients); o > worst {
			worst = o
		}
	}
	// Paper (Fig. 6d): idle PTP holds hundreds of nanoseconds.
	if worst > 1000 {
		t.Fatalf("idle PTP offset reached %.0f ns, want sub-microsecond", worst)
	}
	if worst < 5 {
		t.Fatalf("idle PTP offset %.1f ns is implausibly perfect", worst)
	}
	for _, c := range clients {
		syncs, resps, _ := c.Stats()
		if syncs == 0 || resps == 0 {
			t.Fatal("client starved of protocol messages")
		}
	}
}

func TestPTPInitialStepHappens(t *testing.T) {
	cfg := DefaultConfig().Compressed(10)
	sch, _, _, clients := deploy(t, 7, cfg, fabric.DefaultConfig())
	sch.Run(5 * sim.Second)
	for _, c := range clients {
		if _, _, steps := c.Stats(); steps == 0 {
			t.Fatal("client with ±1ms initial error never stepped")
		}
	}
}

func TestPTPDegradesUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; run without -short")
	}
	// The paper's central PTP result: idle « medium « heavy. Run the
	// same deployment under three loads and compare the post-
	// convergence worst offsets.
	run := func(load string) float64 {
		cfg := DefaultConfig().Compressed(50) // sync every 20 ms
		fcfg := fabric.DefaultConfig()
		sch, net, _, clients := deploy(t, 11, cfg, fcfg)
		sch.Run(2 * sim.Second) // converge while idle
		switch load {
		case "medium":
			// Five nodes at 4 Gbps spraying to each other (Fig. 6e).
			nodes := []int{2, 3, 4, 5, 6}
			for i, src := range nodes {
				fabric.NewSprayGen(net, src, nodes, 4.0, 32, uint64(100+i)).Start()
			}
		case "heavy":
			// Every host but one sprays at 9 Gbps (Fig. 6f): receive
			// and transmit paths of all their links saturate, and
			// bursts converge on shared egresses.
			nodes := []int{2, 3, 4, 5, 6, 7, 8}
			for i, src := range nodes {
				fabric.NewSprayGen(net, src, nodes, 9.0, 32, uint64(200+i)).Start()
			}
		}
		worst := 0.0
		for i := 0; i < 300; i++ {
			sch.RunFor(10 * sim.Millisecond)
			if o := maxAbsOffsetNs(clients); o > worst {
				worst = o
			}
		}
		return worst
	}
	idle := run("idle")
	medium := run("medium")
	heavy := run("heavy")
	t.Logf("worst offsets: idle %.0f ns, medium %.0f ns, heavy %.0f ns", idle, medium, heavy)
	if !(idle < medium && medium < heavy) {
		t.Fatalf("degradation order violated: idle %.0f, medium %.0f, heavy %.0f ns", idle, medium, heavy)
	}
	if medium < 2000 {
		t.Fatalf("medium load offset %.0f ns; paper reports tens of microseconds", medium)
	}
	if heavy < 20000 {
		t.Fatalf("heavy load offset %.0f ns; paper reports hundreds of microseconds", heavy)
	}
}

func TestPerfectTCRescuesHeavyLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; run without -short")
	}
	// Ablation: with textbook transparent clocks the queue wait is
	// corrected and heavy load behaves near-idle — evidence that our
	// PTP degradation is caused by the realistic TC model, not by a
	// baked-in load->error constant.
	run := func(mode fabric.TCMode) float64 {
		cfg := DefaultConfig().Compressed(50)
		fcfg := fabric.DefaultConfig()
		fcfg.TC = mode
		sch, net, _, clients := deploy(t, 13, cfg, fcfg)
		sch.Run(2 * sim.Second)
		nodes := []int{2, 3, 4, 5, 6, 7, 8}
		for i, src := range nodes {
			fabric.NewSprayGen(net, src, nodes, 9.0, 32, uint64(300+i)).Start()
		}
		worst := 0.0
		for i := 0; i < 200; i++ {
			sch.RunFor(10 * sim.Millisecond)
			if o := maxAbsOffsetNs(clients); o > worst {
				worst = o
			}
		}
		return worst
	}
	realistic := run(fabric.TCRealistic)
	perfect := run(fabric.TCPerfect)
	t.Logf("heavy load: realistic TC %.0f ns, perfect TC %.0f ns", realistic, perfect)
	if perfect*5 > realistic {
		t.Fatalf("perfect TC (%.0f ns) should be far better than realistic (%.0f ns)", perfect, realistic)
	}
}

func TestPTPDeterminism(t *testing.T) {
	run := func() float64 {
		cfg := DefaultConfig().Compressed(10)
		sch, _, _, clients := deploy(t, 99, cfg, fabric.DefaultConfig())
		sch.Run(3 * sim.Second)
		return clients[0].OffsetToMasterPs()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
}

func TestCompressedScalesIntervals(t *testing.T) {
	c := DefaultConfig().Compressed(10)
	if c.SyncInterval != 100*sim.Millisecond {
		t.Fatalf("sync interval %v", c.SyncInterval)
	}
	if c.DelayReqInterval != 75*sim.Millisecond {
		t.Fatalf("delay req interval %v", c.DelayReqInterval)
	}
	if got := DefaultConfig().Compressed(1); got.SyncInterval != sim.Second {
		t.Fatal("Compressed(1) should be identity")
	}
}

// NewTraffic is a small helper used by tests and experiments: one
// iperf-style flow at the given rate.
func NewTraffic(net *fabric.Network, src, dst int, gbps float64, seed uint64) *fabric.TrafficGen {
	g := fabric.NewTrafficGen(net, src, dst, eth.MTUFrame, gbps, 16, seed)
	g.Start()
	return g
}
