package phy

import (
	"errors"
	"fmt"
)

// Framer converts MAC frames to PCS block sequences and back. The 802.3
// interpacket gap of at least twelve /I/ characters guarantees at least
// one /E/ block between frames (§4.1), which is where DTP inserts its
// messages: the framer therefore also reports, for a given frame size,
// how many blocks a frame occupies — the quantity that bounds the beacon
// interval under load (200 blocks for MTU frames, ~1200 for jumbo).

// MinInterpacketIdles is the minimum number of /I/ characters between
// frames required by the standard.
const MinInterpacketIdles = 12

// BlocksPerFrame returns the number of 66-bit blocks needed to carry a
// frame of the given size in octets (including preamble and FCS), plus
// the mandatory interpacket gap. This is the minimum beacon interval in
// ticks when the link is saturated with frames of that size.
func BlocksPerFrame(frameOctets int) int {
	if frameOctets <= 0 {
		return 2 // a bare IPG still needs blocks
	}
	// Start block carries 7 octets, data blocks 8 each; the terminate
	// block carries the remainder. IPG: 12 idles = at least 2 control
	// blocks in practice (one /T/-adjacent, one full /E/).
	payload := frameOctets - 7 // octets after the start block
	if payload < 0 {
		payload = 0
	}
	dataBlocks := payload / 8
	rem := payload % 8
	blocks := 1 + dataBlocks + 1 // /S/ + data + /T/ (T carries rem octets)
	_ = rem
	idleBlocks := (MinInterpacketIdles + 7) / 8
	return blocks + idleBlocks
}

// Encode converts frame octets into the block sequence /S/ D... /T/.
// The caller supplies the full frame including preamble; per clause 49
// the first octet is replaced by the start control character, so frames
// must be at least 8 octets.
func Encode(frame []byte) ([]Block, error) {
	if len(frame) < 8 {
		return nil, fmt.Errorf("phy: frame of %d octets too short to encode", len(frame))
	}
	var blocks []Block
	// Start block: type 0x78, octets 1..7 of the frame as D1..D7.
	var p uint64 = BTStart
	for i := 0; i < 7; i++ {
		p |= uint64(frame[1+i]) << (8 * (i + 1))
	}
	blocks = append(blocks, Block{Sync: SyncControl, Payload: p})
	rest := frame[8:]
	for len(rest) >= 8 {
		var oct [8]byte
		copy(oct[:], rest[:8])
		blocks = append(blocks, DataBlock(oct))
		rest = rest[8:]
	}
	// Terminate block carrying len(rest) trailing octets.
	k := len(rest)
	p = uint64(termTypes[k])
	for i := 0; i < k; i++ {
		p |= uint64(rest[i]) << (8 * (i + 1))
	}
	blocks = append(blocks, Block{Sync: SyncControl, Payload: p})
	return blocks, nil
}

// ErrBadSequence reports an invalid block sequence during decode.
var ErrBadSequence = errors.New("phy: invalid block sequence")

// Decode reassembles a frame from its block sequence, inverting Encode.
// The first octet (consumed by the start control character) is restored
// as the standard preamble octet 0x55.
func Decode(blocks []Block) ([]byte, error) {
	if len(blocks) < 2 || blocks[0].Sync != SyncControl || blocks[0].BlockType() != BTStart {
		return nil, ErrBadSequence
	}
	frame := []byte{0x55}
	p := blocks[0].Payload >> 8
	for i := 0; i < 7; i++ {
		frame = append(frame, byte(p>>(8*i)))
	}
	for _, b := range blocks[1:] {
		switch {
		case b.Sync == SyncData:
			for i := 0; i < 8; i++ {
				frame = append(frame, byte(b.Payload>>(8*i)))
			}
		case b.Sync == SyncControl:
			k := -1
			for j, tt := range termTypes {
				if b.BlockType() == tt {
					k = j
					break
				}
			}
			if k < 0 {
				return nil, ErrBadSequence
			}
			p := b.Payload >> 8
			for i := 0; i < k; i++ {
				frame = append(frame, byte(p>>(8*i)))
			}
			return frame, nil
		default:
			return nil, ErrBadSequence
		}
	}
	return nil, ErrBadSequence // never saw a terminate block
}
