package chaos

import (
	"fmt"
	"strings"

	"github.com/dtplab/dtp/internal/audit"
	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/link"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
)

// Engine compiles a Scenario into scheduler events over a live network.
// Build with NewEngine, optionally Instrument and BindAuditor, then
// Schedule before (or after) the network starts; run the scheduler to
// at least Deadline() and call Verify.
type Engine struct {
	net  *core.Network
	sch  *sim.Scheduler
	sc   Scenario
	seed uint64

	aud *audit.Auditor
	tr  *telemetry.Tracer

	injected map[string]*telemetry.Counter
	cleared  map[string]*telemetry.Counter
	activeG  *telemetry.Gauge

	scheduled bool
	activeN   int // currently active faults, permanent included
	injectedN int
	clearedN  int
	temporal  int // faults that must clear before Verify passes
	lastClear sim.Time
	deadline  sim.Time
}

// NewEngine binds a validated scenario to a network. The seed should be
// the run seed: each fault derives its own RNG stream from it, so fault
// randomness is reproducible and independent of everything else.
func NewEngine(n *core.Network, sc *Scenario, seed uint64) (*Engine, error) {
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	e := &Engine{net: n, sch: n.Sch, sc: *sc, seed: seed}
	e.sc.fillDefaults()
	return e, nil
}

// Instrument attaches a metrics registry and/or tracer (either may be
// nil). Injections and clears then emit chaos_inject / chaos_clear
// trace events and count into dtp_chaos_* metrics.
func (e *Engine) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	e.tr = tr
	e.injected = map[string]*telemetry.Counter{}
	e.cleared = map[string]*telemetry.Counter{}
	// Register per-kind series in fault order so the registry layout is
	// a deterministic function of the scenario.
	for i := range e.sc.Faults {
		k := e.sc.Faults[i].Kind
		if _, ok := e.injected[k]; ok {
			continue
		}
		e.injected[k] = reg.Counter("dtp_chaos_faults_injected_total",
			"Faults injected by the chaos engine.", "kind", k)
		e.cleared[k] = reg.Counter("dtp_chaos_faults_cleared_total",
			"Faults cleared (impairment removed) by the chaos engine.", "kind", k)
	}
	e.activeG = reg.Gauge("dtp_chaos_active_faults",
		"Faults currently active (permanent ones never clear).")
}

// BindAuditor connects the engine to an online 4TD auditor: every
// non-permanent fault declares [start, clear+SettleGrace] as an
// expected-degradation window, so the campaign can assert zero
// violations outside declared windows.
func (e *Engine) BindAuditor(a *audit.Auditor) { e.aud = a }

// Deadline returns the simulated time by which the network must be
// reconverged: last fault clearing + settle grace + reconverge
// deadline. Valid after Schedule.
func (e *Engine) Deadline() sim.Time { return e.deadline }

// LastClearAt returns when the most recent fault cleared (0 before).
func (e *Engine) LastClearAt() sim.Time { return e.lastClear }

// Schedule resolves every fault target against the topology and plants
// the injection events. Call once; returns an error (scheduling
// nothing) if any fault names an unknown device or cable.
func (e *Engine) Schedule() error {
	if e.scheduled {
		return fmt.Errorf("chaos: scenario already scheduled")
	}
	// Resolve every target first so a bad scenario fails atomically.
	lis := make([]int, len(e.sc.Faults))
	devs := make([]*core.Device, len(e.sc.Faults))
	var lastEnd sim.Time
	for i := range e.sc.Faults {
		f := &e.sc.Faults[i]
		if len(f.Link) == 2 {
			li, err := e.linkIndex(f.Link[0], f.Link[1])
			if err != nil {
				return fmt.Errorf("chaos: fault %d: %w", i, err)
			}
			lis[i] = li
		}
		if f.Device != "" {
			d, err := e.net.DeviceByName(f.Device)
			if err != nil {
				return fmt.Errorf("chaos: fault %d: %w", i, err)
			}
			devs[i] = d
		}
		if end := f.At.T + f.Duration.T; end > lastEnd {
			lastEnd = end
		}
	}
	e.deadline = lastEnd + e.sc.SettleGrace.T + e.sc.ReconvergeDeadline.T
	for i := range e.sc.Faults {
		f := &e.sc.Faults[i]
		if !f.permanent() {
			e.temporal++
			// Adversarial faults declare no excuse window: a hardened
			// fabric is supposed to withstand an attacker, so any bound
			// violation one causes stays unexcused — that asymmetry is
			// what the Byzantine tolerance campaign measures.
			if e.aud != nil && !f.adversarial() {
				e.aud.ExpectDegradation(f.At.T, f.At.T+f.Duration.T+e.sc.SettleGrace.T,
					f.Kind+" "+f.target())
			}
		}
		rng := sim.NewRNG(e.seed, fmt.Sprintf("chaos/%d", i))
		switch f.Kind {
		case KindFlap:
			e.scheduleFlap(f, i, lis[i], rng)
		case KindBERBurst:
			e.scheduleBERBurst(f, i, lis[i])
		case KindBERDegrade:
			e.scheduleBERDegrade(f, i, lis[i])
		case KindGreyLoss:
			e.scheduleGreyLoss(f, i, lis[i])
		case KindGreyDelay:
			e.scheduleGreyDelay(f, i, lis[i])
		case KindFreqStep:
			e.scheduleFreqStep(f, i, devs[i])
		case KindTempRamp:
			e.scheduleTempRamp(f, i, devs[i])
		case KindCrash:
			e.scheduleCrash(f, i, devs[i])
		case KindLiar:
			e.scheduleRatchet(f, i, devs[i], rng, true)
		case KindOverclaim:
			e.scheduleRatchet(f, i, devs[i], rng, false)
		case KindSpoof:
			e.scheduleSpoof(f, i, lis[i], rng)
		}
	}
	e.scheduled = true
	return nil
}

// --- Per-kind compilers ------------------------------------------------

func (e *Engine) scheduleFlap(f *Fault, idx, li int, rng *sim.RNG) {
	end := f.At.T + f.Duration.T
	e.sch.At(f.At.T, func() {
		e.inject(f, idx, fmt.Sprintf("mean_up=%v mean_down=%v", f.MeanUp.T, f.MeanDown.T))
		var flip func(down bool)
		flip = func(down bool) {
			if e.sch.Now() >= end {
				return // the clear event below restores the link
			}
			if down {
				e.net.SetLinkDown(li)
				e.sch.After(rng.ExpTime(f.MeanDown.T), func() { flip(false) })
			} else {
				e.net.SetLinkUp(li)
				e.sch.After(rng.ExpTime(f.MeanUp.T), func() { flip(true) })
			}
		}
		flip(true)
	})
	e.sch.At(end, func() {
		e.net.SetLinkUp(li)
		e.clear(f, idx)
	})
}

func (e *Engine) scheduleBERBurst(f *Fault, idx, li int) {
	e.sch.At(f.At.T, func() {
		ab, ba := e.net.LinkWires(li)
		origAB, origBA := ab.BER(), ba.BER()
		e.inject(f, idx, fmt.Sprintf("ber=%g", f.BER))
		ab.SetBER(f.BER)
		ba.SetBER(f.BER)
		e.sch.At(f.At.T+f.Duration.T, func() {
			ab.SetBER(origAB)
			ba.SetBER(origBA)
			e.clear(f, idx)
		})
	})
}

func (e *Engine) scheduleBERDegrade(f *Fault, idx, li int) {
	e.sch.At(f.At.T, func() {
		ab, ba := e.net.LinkWires(li)
		e.inject(f, idx, fmt.Sprintf("ber=%g permanent", f.BER))
		ab.SetBER(f.BER)
		ba.SetBER(f.BER)
	})
}

func (e *Engine) scheduleGreyLoss(f *Fault, idx, li int) {
	e.sch.At(f.At.T, func() {
		w := e.wireFor(f, li)
		e.inject(f, idx, fmt.Sprintf("loss_p=%g dir=%s>%s", f.LossP, f.Link[0], f.Link[1]))
		w.SetLossP(f.LossP)
		e.sch.At(f.At.T+f.Duration.T, func() {
			w.SetLossP(0)
			e.clear(f, idx)
		})
	})
}

func (e *Engine) scheduleGreyDelay(f *Fault, idx, li int) {
	steps := f.Steps
	if steps <= 0 {
		steps = 10
	}
	e.sch.At(f.At.T, func() {
		w := e.wireFor(f, li)
		base := w.Delay()
		e.inject(f, idx, fmt.Sprintf("extra=%v steps=%d dir=%s>%s",
			f.ExtraDelay.T, steps, f.Link[0], f.Link[1]))
		interval := f.Duration.T / sim.Time(steps)
		for k := 1; k <= steps; k++ {
			k := k
			e.sch.After(interval*sim.Time(k), func() {
				// The ramp and the restore land at the same instant for
				// the last step; FIFO order applies the restore second.
				_ = w.SetDelay(base + f.ExtraDelay.T*sim.Time(k)/sim.Time(steps))
			})
		}
		e.sch.At(f.At.T+f.Duration.T, func() {
			_ = w.SetDelay(base)
			e.clear(f, idx)
		})
	})
}

func (e *Engine) scheduleFreqStep(f *Fault, idx int, dev *core.Device) {
	e.sch.At(f.At.T, func() {
		clk := dev.Clock()
		orig := clk.PPM()
		target := clampPPM(orig+f.PPMStep, clk.MaxPPM())
		e.inject(f, idx, fmt.Sprintf("ppm %+.2f -> %+.2f", orig, target))
		clk.AdjustPPM(target)
		if f.Duration.T > 0 {
			e.sch.At(f.At.T+f.Duration.T, func() {
				clk.AdjustPPM(orig)
				e.clear(f, idx)
			})
		}
	})
}

func (e *Engine) scheduleTempRamp(f *Fault, idx int, dev *core.Device) {
	steps := f.Steps
	if steps <= 0 {
		steps = 10
	}
	e.sch.At(f.At.T, func() {
		clk := dev.Clock()
		orig := clk.PPM()
		e.inject(f, idx, fmt.Sprintf("ramp %+.2f ppm over %v", f.PPMStep, f.Duration.T))
		interval := f.Duration.T / sim.Time(steps)
		for k := 1; k <= steps; k++ {
			k := k
			e.sch.After(interval*sim.Time(k), func() {
				clk.AdjustPPM(clampPPM(orig+f.PPMStep*float64(k)/float64(steps), clk.MaxPPM()))
			})
		}
		e.sch.At(f.At.T+f.Duration.T, func() {
			clk.AdjustPPM(orig)
			e.clear(f, idx)
		})
	})
}

func (e *Engine) scheduleCrash(f *Fault, idx int, dev *core.Device) {
	e.sch.At(f.At.T, func() {
		e.inject(f, idx, fmt.Sprintf("restart after %v", f.Duration.T))
		dev.Crash()
		e.sch.At(f.At.T+f.Duration.T, func() {
			dev.Restart()
			e.clear(f, idx)
		})
	})
}

// scheduleRatchet compiles the two counter-inflation attacks. Every
// cadence (jittered by the fault's RNG stream) the device raises its
// outgoing-counter lie by JumpUnits; a liar additionally pushes each
// step through the unguarded BEACON-JOIN path so plain DTP adopts it
// immediately, while an overclaimer lets ordinary beacons carry a
// per-message delta small enough to slip under the bit-error guard.
// When the fault clears the lie is removed; the device's real counter
// was never touched, so it is back in bound as soon as the fabric's
// poisoned maximum decays into plain drift (or instantly, if hardened
// admission refused the lie all along).
func (e *Engine) scheduleRatchet(f *Fault, idx int, dev *core.Device, rng *sim.RNG, join bool) {
	end := f.At.T + f.Duration.T
	e.sch.At(f.At.T, func() {
		e.inject(f, idx, fmt.Sprintf("jump_units=%d cadence=%v", f.JumpUnits, f.Cadence.T))
		var fire func()
		fire = func() {
			if e.sch.Now() >= end {
				return // the clear event below removes the lie
			}
			dev.SetLieUnits(dev.LieUnits() + uint64(f.JumpUnits))
			if join {
				dev.BroadcastJoin()
			}
			e.sch.After(cadenceJitter(rng, f.Cadence.T), fire)
		}
		fire()
	})
	e.sch.At(end, func() {
		dev.SetLieUnits(0)
		e.clear(f, idx)
	})
}

// scheduleSpoof compiles an on-path beacon forgery: every cadence a
// counterfeit BEACON claiming the receiver's own counter plus JumpUnits
// is injected into the port on device Link[1], as if its peer (Link[0])
// had sent it. Tracking the victim's counter keeps every forgery inside
// the per-message guard, so only cumulative bounded-jump admission can
// tell the stream from an honest fast clock.
func (e *Engine) scheduleSpoof(f *Fault, idx, li int, rng *sim.RNG) {
	end := f.At.T + f.Duration.T
	rx := e.spoofTargetPort(f, li)
	e.sch.At(f.At.T, func() {
		e.inject(f, idx, fmt.Sprintf("jump_units=%d cadence=%v dir=%s>%s",
			f.JumpUnits, f.Cadence.T, f.Link[0], f.Link[1]))
		var fire func()
		fire = func() {
			if e.sch.Now() >= end {
				return
			}
			rx.InjectSpoofedBeacon(rx.Device().GlobalCounter() + uint64(f.JumpUnits))
			e.sch.After(cadenceJitter(rng, f.Cadence.T), fire)
		}
		fire()
	})
	e.sch.At(end, func() { e.clear(f, idx) })
}

// cadenceJitter spaces adversarial firings uniformly in [c/2, 3c/2]:
// the mean stays at the configured cadence while the per-fault RNG
// stream keeps the exact instants reproducible and independent of every
// other fault.
func cadenceJitter(rng *sim.RNG, c sim.Time) sim.Time {
	return rng.UniformTime(c/2, c+c/2)
}

// --- Bookkeeping -------------------------------------------------------

func (e *Engine) inject(f *Fault, idx int, params string) {
	e.injectedN++
	e.activeN++
	e.injected[f.Kind].Inc()
	e.activeG.Set(float64(e.activeN))
	e.tr.Record(e.sch.Now(), telemetry.KindChaosInject, f.target(),
		int64(idx), 0, f.Kind+" "+params)
}

func (e *Engine) clear(f *Fault, idx int) {
	e.clearedN++
	e.activeN--
	e.cleared[f.Kind].Inc()
	e.activeG.Set(float64(e.activeN))
	e.lastClear = e.sch.Now()
	e.tr.Record(e.sch.Now(), telemetry.KindChaosClear, f.target(),
		int64(idx), 0, f.Kind)
}

// Verify asserts the campaign's postconditions after the scheduler ran
// to at least Deadline(): every temporal fault injected and cleared,
// the network fully re-synchronized, and — when an auditor is bound —
// zero bound violations outside the declared degradation windows and a
// converged final state. It returns nil on success and a multi-line
// error naming every failed property otherwise.
func (e *Engine) Verify() error {
	if !e.scheduled {
		return fmt.Errorf("chaos: Verify before Schedule")
	}
	var probs []string
	if now := e.sch.Now(); now < e.deadline {
		probs = append(probs, fmt.Sprintf("simulation ran to %v, before the %v deadline", now, e.deadline))
	}
	if e.clearedN < e.temporal {
		probs = append(probs, fmt.Sprintf("%d of %d temporal faults never cleared", e.temporal-e.clearedN, e.temporal))
	}
	if !e.net.AllSynced() {
		probs = append(probs, "network not fully synchronized at deadline")
	}
	if e.aud != nil {
		if v := e.aud.Violations(); v > 0 {
			probs = append(probs, fmt.Sprintf("%d bound violations outside declared degradation windows", v))
		}
		if !e.aud.Converged() {
			probs = append(probs, "auditor: network not in bound at deadline")
		}
	}
	if len(probs) > 0 {
		return fmt.Errorf("chaos: scenario %q failed:\n  %s", e.sc.Name, strings.Join(probs, "\n  "))
	}
	return nil
}

// Summary renders a one-line campaign report.
func (e *Engine) Summary() string {
	s := fmt.Sprintf("chaos: scenario %q: %d faults injected, %d cleared, %d still active, last clear %v, deadline %v",
		e.sc.Name, e.injectedN, e.clearedN, e.activeN, e.lastClear, e.deadline)
	if e.aud != nil {
		s += fmt.Sprintf(", %d violations (%d excused)", e.aud.Violations(), e.aud.ExcusedViolations())
	}
	return s
}

// --- Target resolution -------------------------------------------------

func (e *Engine) linkIndex(a, b string) (int, error) {
	na, ok1 := e.net.Graph.ByName(a)
	nb, ok2 := e.net.Graph.ByName(b)
	if !ok1 {
		return 0, fmt.Errorf("unknown device %q", a)
	}
	if !ok2 {
		return 0, fmt.Errorf("unknown device %q", b)
	}
	for i, l := range e.net.Graph.Links {
		if (l.A == na.ID && l.B == nb.ID) || (l.A == nb.ID && l.B == na.ID) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("no cable between %s and %s", a, b)
}

// wireFor returns the Link[0] -> Link[1] direction of the fault's cable.
func (e *Engine) wireFor(f *Fault, li int) *link.Wire {
	ab, ba := e.net.LinkWires(li)
	if e.net.Graph.Nodes[e.net.Graph.Links[li].A].Name == f.Link[0] {
		return ab
	}
	return ba
}

// spoofTargetPort returns the port forged beacons arrive at: the one on
// device Link[1], whose peer (Link[0]) the attacker impersonates.
func (e *Engine) spoofTargetPort(f *Fault, li int) *core.Port {
	pa, pb := e.net.LinkPorts(li)
	if e.net.Graph.Nodes[e.net.Graph.Links[li].A].Name == f.Link[1] {
		return pa
	}
	return pb
}

func clampPPM(ppm, max float64) float64 {
	if ppm > max {
		return max
	}
	if ppm < -max {
		return -max
	}
	return ppm
}
