package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"github.com/dtplab/dtp/internal/sim"
)

// Timeline is the windowed time-series store: a fixed ring of periodic
// snapshot rows, one value per registered column, sampled by a
// scheduler event at a fixed simulated cadence. Point metrics (the
// Registry) answer "what is the state now"; the Timeline answers "how
// was the system trending" — the served-interval width ramping up for
// two milliseconds before a bound breach is invisible in a gauge and
// obvious in a timeline.
//
// Columns are registered before Start; each carries a probe closure
// that runs on the simulation goroutine (the sampling tick is a
// scheduler event), so probes may touch sim-owned state freely. Two
// column modes exist: a gauge column stores the probe value as-is; a
// rate column stores the per-second delta of a cumulative probe.
//
// Readers (the /timeline HTTP endpoint, JSONL export, flight-recorder
// bundles) take a short mutex and copy; the sampling tick holds the
// same mutex, so concurrent scrapes are race-free. Export is
// byte-deterministic for a deterministic run: rows are pure functions
// of simulated time. A nil Timeline is a valid no-op.
type Timeline struct {
	interval sim.Time
	capacity int

	mu      sync.Mutex
	cols    []*timelineColumn
	rows    []TimelineRow // ring
	next    int
	count   int
	total   uint64 // rows ever sampled (dropped = total - count)
	started bool
}

type timelineColumn struct {
	name  string
	probe func() float64
	rate  bool
	prev  float64 // last cumulative value, rate columns only
}

// TimelineRow is one sampled snapshot: the simulated instant plus one
// value per column, in registration order.
type TimelineRow struct {
	At sim.Time
	V  []float64
}

// NewTimeline builds a timeline sampling every interval of simulated
// time, retaining the last capacity rows (defaults: 1 ms, 1024 rows).
func NewTimeline(interval sim.Time, capacity int) *Timeline {
	if interval <= 0 {
		interval = sim.Millisecond
	}
	if capacity <= 0 {
		capacity = 1024
	}
	return &Timeline{interval: interval, capacity: capacity}
}

// Interval returns the sampling cadence.
func (t *Timeline) Interval() sim.Time {
	if t == nil {
		return 0
	}
	return t.interval
}

// Gauge registers a column storing probe() at each sample. Registration
// after Start is ignored (columns are fixed once sampling begins, so
// every row has the same width).
func (t *Timeline) Gauge(name string, probe func() float64) {
	t.addColumn(name, probe, false)
}

// Rate registers a column storing the per-second increase of the
// cumulative probe() between samples.
func (t *Timeline) Rate(name string, probe func() float64) {
	t.addColumn(name, probe, true)
}

func (t *Timeline) addColumn(name string, probe func() float64, rate bool) {
	if t == nil || probe == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.started {
		return
	}
	t.cols = append(t.cols, &timelineColumn{name: name, probe: probe, rate: rate})
}

// Start allocates the ring, primes rate baselines, and schedules the
// periodic sampling event. Call it from the simulation goroutine (or
// before the scheduler runs); calling twice is a no-op.
func (t *Timeline) Start(sch *sim.Scheduler) {
	if t == nil || sch == nil {
		return
	}
	t.mu.Lock()
	if t.started {
		t.mu.Unlock()
		return
	}
	t.started = true
	t.rows = make([]TimelineRow, t.capacity)
	for _, c := range t.cols {
		if c.rate {
			c.prev = c.probe()
		}
	}
	t.mu.Unlock()
	var tick func()
	tick = func() {
		t.sample(sch.Now())
		sch.After(t.interval, tick)
	}
	sch.After(t.interval, tick)
}

// sample records one row. Runs on the simulation goroutine.
func (t *Timeline) sample(at sim.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row := TimelineRow{At: at, V: make([]float64, len(t.cols))}
	secs := t.interval.Seconds()
	for i, c := range t.cols {
		v := c.probe()
		if c.rate {
			row.V[i] = (v - c.prev) / secs
			c.prev = v
		} else {
			row.V[i] = v
		}
	}
	t.rows[t.next] = row
	t.next = (t.next + 1) % len(t.rows)
	if t.count < len(t.rows) {
		t.count++
	}
	t.total++
}

// Columns returns the column names in registration (= row value) order.
func (t *Timeline) Columns() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.cols))
	for i, c := range t.cols {
		out[i] = c.name
	}
	return out
}

// Rows returns the retained rows in chronological order (deep copy).
func (t *Timeline) Rows() []TimelineRow {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TimelineRow, 0, t.count)
	start := t.next - t.count
	if start < 0 {
		start += len(t.rows)
	}
	for i := 0; i < t.count; i++ {
		r := t.rows[(start+i)%len(t.rows)]
		out = append(out, TimelineRow{At: r.At, V: append([]float64(nil), r.V...)})
	}
	return out
}

// Total returns how many rows were ever sampled (dropped rows included).
func (t *Timeline) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// ColumnQuantile returns the q-th quantile of the named column over the
// retained window (NaN when the column is unknown or empty). This is
// the "quantiles-over-time" read: a p99 over the last N samples rather
// than over the whole run.
func (t *Timeline) ColumnQuantile(name string, q float64) float64 {
	if t == nil {
		return math.NaN()
	}
	idx := -1
	for i, c := range t.Columns() {
		if c == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return math.NaN()
	}
	var vals []float64
	for _, r := range t.Rows() {
		if v := r.V[idx]; !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return math.NaN()
	}
	sortFloats(vals)
	i := int(q * float64(len(vals)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(vals) {
		i = len(vals) - 1
	}
	return vals[i]
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// TimelineSchema is the header line's schema identifier.
const TimelineSchema = "dtp-timeline/1"

// WriteJSONL writes the timeline as JSON Lines: one header line
// declaring the schema, cadence, columns, and drop accounting, then one
// line per retained row:
//
//	{"schema":"dtp-timeline/1","interval_ps":100000000,"columns":["bound_ticks",...],"rows":42,"total":42,"dropped":0}
//	{"t_ps":100000000,"v":[12,0.5,null]}
//
// NaN and ±Inf sample values render as null (JSON has no spelling for
// them); field order is fixed, so identical timelines serialize to
// identical bytes.
func (t *Timeline) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	cols := make([]string, len(t.cols))
	for i, c := range t.cols {
		cols[i] = c.name
	}
	interval := t.interval
	total := t.total
	t.mu.Unlock()
	rows := t.Rows()

	var b strings.Builder
	b.WriteString(`{"schema":"`)
	b.WriteString(TimelineSchema)
	b.WriteString(`","interval_ps":`)
	b.WriteString(strconv.FormatInt(int64(interval), 10))
	b.WriteString(`,"columns":[`)
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(c))
	}
	b.WriteString(`],"rows":`)
	b.WriteString(strconv.Itoa(len(rows)))
	b.WriteString(`,"total":`)
	b.WriteString(strconv.FormatUint(total, 10))
	b.WriteString(`,"dropped":`)
	b.WriteString(strconv.FormatUint(total-uint64(len(rows)), 10))
	b.WriteString("}\n")
	for _, r := range rows {
		b.WriteString(`{"t_ps":`)
		b.WriteString(strconv.FormatInt(int64(r.At), 10))
		b.WriteString(`,"v":[`)
		for i, v := range r.V {
			if i > 0 {
				b.WriteByte(',')
			}
			writeJSONFloat(&b, v)
		}
		b.WriteString("]}\n")
	}
	_, err := io.WriteString(w, b.String())
	if err != nil {
		return fmt.Errorf("telemetry: timeline dump: %w", err)
	}
	return nil
}

// writeJSONFloat renders a float as a JSON value: formatFloat's
// deterministic spelling, with NaN/±Inf as null.
func writeJSONFloat(b *strings.Builder, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		b.WriteString("null")
		return
	}
	b.WriteString(formatFloat(v))
}

// ServeHTTP serves the JSONL dump, so a Timeline mounts directly on an
// HTTP mux (dtpd's /timeline endpoint).
func (t *Timeline) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = t.WriteJSONL(w)
}
