package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/dtplab/dtp/internal/sim"
)

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	tr.SetKinds() // beacon kinds are firehose-masked by default
	for i := 0; i < 10; i++ {
		tr.Record(sim.Time(i), KindBeaconTx, "p", int64(i), 0, "")
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if e.V1 != int64(6+i) {
			t.Fatalf("event %d has V1=%d, want %d (oldest-first)", i, e.V1, 6+i)
		}
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
}

func TestTracerDefaultMasksFirehose(t *testing.T) {
	tr := NewTracer(16)
	for _, k := range []Kind{KindBeaconTx, KindBeaconRx, KindBeaconIgnored, KindCounterJump} {
		if tr.Enabled(k) {
			t.Errorf("firehose kind %s enabled by default", k)
		}
	}
	for _, k := range []Kind{KindLinkUp, KindStateChange, KindSynced,
		KindCounterStall, KindDaemonCal, KindServoUpdate, KindFrameDrop} {
		if !tr.Enabled(k) {
			t.Errorf("lifecycle kind %s masked by default", k)
		}
	}
}

func TestTracerKindMask(t *testing.T) {
	tr := NewTracer(16)
	tr.SetKinds(KindLinkUp, KindLinkDown)
	if tr.Enabled(KindBeaconTx) {
		t.Fatal("beacon_tx should be masked")
	}
	tr.Record(0, KindBeaconTx, "p", 0, 0, "")
	tr.Record(0, KindLinkUp, "p", 0, 0, "")
	if tr.Total() != 1 || tr.Events()[0].Kind != KindLinkUp {
		t.Fatal("masked kinds must not be recorded")
	}
	tr.SetKinds() // re-enable all
	if !tr.Enabled(KindBeaconTx) {
		t.Fatal("SetKinds() must re-enable every kind")
	}
}

func TestKindNamesAreStable(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < numKinds; k++ {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[name] {
			t.Fatalf("duplicate kind name %q", name)
		}
		seen[name] = true
	}
}

func TestJSONLSchema(t *testing.T) {
	tr := NewTracer(8)
	tr.SetKinds() // include firehose kinds
	tr.Record(1280640, KindBeaconRx, `s1[2]`, -1, 0, "")
	tr.Record(1280650, KindStateChange, "s0[0]", 1, 2, "synced")
	var b strings.Builder
	if err := WriteJSONL(&b, tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 events", len(lines))
	}
	wantHdr := `{"schema":"dtp-trace/1","events":2,"total":2,"dropped":0}`
	if lines[0] != wantHdr {
		t.Fatalf("header:\n got %s\nwant %s", lines[0], wantHdr)
	}
	want1 := `{"seq":1,"t_ps":1280640,"kind":"beacon_rx","who":"s1[2]","v1":-1,"v2":0}`
	if lines[1] != want1 {
		t.Fatalf("line 1:\n got %s\nwant %s", lines[1], want1)
	}
	if !strings.Contains(lines[2], `"detail":"synced"`) {
		t.Fatalf("line 2 missing detail: %s", lines[2])
	}
}

func TestHTTPHandler(t *testing.T) {
	r := New()
	r.Counter("dtp_beacons_sent_total", "h").Add(5)
	tr := NewTracer(8)
	tr.Record(42, KindLinkUp, "s0[0]", 0, 0, "")
	h := Handler(r, tr)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "dtp_beacons_sent_total 5") {
		t.Fatalf("/metrics: code %d body %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/trace", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"kind":"link_up"`) {
		t.Fatalf("/trace: code %d body %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown path: code %d, want 404", rec.Code)
	}
}
