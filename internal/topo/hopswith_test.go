package topo

import "testing"

func TestHopsWithAllActiveMatchesHops(t *testing.T) {
	g := PaperTree()
	plain := g.Hops()
	hops, wsum := g.HopsWith(nil, nil)
	for i := range plain {
		for j := range plain[i] {
			if hops[i][j] != plain[i][j] {
				t.Fatalf("hops[%d][%d] = %d, want %d", i, j, hops[i][j], plain[i][j])
			}
		}
	}
	if wsum != nil {
		t.Fatal("nil weights should yield nil weight sums")
	}
}

func TestHopsWithInactiveLinkPartitions(t *testing.T) {
	g := PaperTree()
	active := make([]bool, len(g.Links))
	for i := range active {
		active[i] = true
	}
	active[0] = false // cut s0-s1
	hops, _ := g.HopsWith(active, nil)

	s0, _ := g.ByName("s0")
	s1, _ := g.ByName("s1")
	s4, _ := g.ByName("s4")
	s7, _ := g.ByName("s7")
	if hops[s0.ID][s1.ID] != -1 || hops[s1.ID][s0.ID] != -1 {
		t.Fatal("cut link still reachable")
	}
	if hops[s1.ID][s4.ID] != 1 {
		t.Fatalf("intra-partition path broken: %d", hops[s1.ID][s4.ID])
	}
	if hops[s4.ID][s7.ID] != -1 {
		t.Fatal("cross-partition host pair still reachable")
	}
	if hops[s0.ID][s7.ID] != 2 {
		t.Fatalf("surviving path s0-s7 = %d, want 2", hops[s0.ID][s7.ID])
	}
}

func TestHopsWithWeightsAccumulate(t *testing.T) {
	g := Chain(3) // h0 -(0)- sw1 -(1)- sw2 -(2)- h1
	weights := []int64{10, 100, 1000}
	hops, wsum := g.HopsWith(nil, weights)
	if hops[0][3] != 3 {
		t.Fatalf("chain hops %d, want 3", hops[0][3])
	}
	if wsum[0][3] != 1110 {
		t.Fatalf("end-to-end weight %d, want 1110", wsum[0][3])
	}
	if wsum[0][2] != 110 || wsum[1][3] != 1100 {
		t.Fatalf("partial weights wrong: %d, %d", wsum[0][2], wsum[1][3])
	}
	if wsum[2][0] != wsum[0][2] {
		t.Fatal("weight sums not symmetric")
	}
	if wsum[1][1] != 0 {
		t.Fatal("self weight not zero")
	}
}
