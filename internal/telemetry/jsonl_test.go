package telemetry

import (
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.SetKinds()
	tr.Record(100, KindSynced, "a[0]", 44, 5, "")
	tr.Record(200, KindCounterJump, "b[0]", 3, 0, "")
	tr.Record(300, KindBoundViolation, "a~b", 99, 10, `hops=2 ctx=[beacon_rx a[0]]`)

	var b strings.Builder
	if err := WriteJSONL(&b, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d round-tripped to %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"seq":1,"t_ps":0,"kind":"martian","who":"x","v1":0,"v2":0}` + "\n")); err == nil {
		t.Fatal("accepted unknown kind")
	}
}

func TestReadJSONLSkipsBlankLines(t *testing.T) {
	events, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("blank input produced %d events", len(events))
	}
}
