package ptp

import (
	"math"

	"github.com/dtplab/dtp/internal/sim"
)

// Config holds PTP deployment parameters. Defaults mirror the paper's
// Timekeeper setup: Sync once per second, two Delay_Reqs per 1.5 s,
// hardware timestamping on every NIC.
type Config struct {
	// SyncInterval is the grandmaster's Sync cadence (paper: 1 s).
	SyncInterval sim.Time
	// DelayReqInterval is the client's Delay_Req cadence (paper: two
	// per 1.5 s).
	DelayReqInterval sim.Time

	// TimestampJitterNs is the half-width of uniform hardware timestamp
	// error at NICs: quantization, PHY latching point and PLL jitter.
	// Tens of nanoseconds matches the hundreds-of-ns idle precision
	// reported for ConnectX-3 + Timekeeper.
	TimestampJitterNs float64

	// FilterWindow is the size of the sample window from which the
	// minimum-delay sample is selected (delay-based filtering, as
	// production daemons do).
	FilterWindow int

	// ServoKp and ServoKi are the PI servo gains applied to the
	// filtered offset (in ppb per ns of offset).
	ServoKp float64
	ServoKi float64

	// StepThresholdNs: offsets beyond this are corrected by stepping
	// the clock instead of slewing (startup).
	StepThresholdNs float64

	// PPMRange is the half-width of client PHC oscillator error.
	PPMRange float64

	// WanderInterval / WanderStepPPB model slow oscillator drift of
	// client PHCs. Zero disables.
	WanderInterval sim.Time
	WanderStepPPB  float64
}

// DefaultConfig returns the paper-matching configuration.
func DefaultConfig() Config {
	return Config{
		SyncInterval:      sim.Second,
		DelayReqInterval:  750 * sim.Millisecond,
		TimestampJitterNs: 40,
		FilterWindow:      8,
		ServoKp:           0.7,
		ServoKi:           0.3,
		StepThresholdNs:   1e6, // 1 ms
		PPMRange:          50,
		WanderInterval:    100 * sim.Millisecond,
		WanderStepPPB:     30,
	}
}

// Compressed scales the protocol's time constants by 1/k so long
// experiments can run in compressed simulated time while preserving the
// ratio of sync cadence to queue dynamics. Documented per-experiment in
// EXPERIMENTS.md.
func (c Config) Compressed(k int64) Config {
	if k <= 1 {
		return c
	}
	c.SyncInterval /= sim.Time(k)
	c.DelayReqInterval /= sim.Time(k)
	if c.WanderInterval > 0 {
		c.WanderInterval /= sim.Time(k)
		// Random-walk variance accumulates linearly in time: stepping
		// k× more often with the same step would inflate wander by √k,
		// so scale the step down to preserve per-second variance.
		c.WanderStepPPB /= math.Sqrt(float64(k))
	}
	return c
}
