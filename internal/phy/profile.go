package phy

import (
	"fmt"

	"github.com/dtplab/dtp/internal/sim"
)

// Speed identifies an Ethernet line rate.
type Speed int

const (
	Speed1G Speed = iota
	Speed10G
	Speed40G
	Speed100G
)

func (s Speed) String() string {
	switch s {
	case Speed1G:
		return "1G"
	case Speed10G:
		return "10G"
	case Speed40G:
		return "40G"
	case Speed100G:
		return "100G"
	default:
		return fmt.Sprintf("Speed(%d)", int(s))
	}
}

// BaseTickFs is the greatest common tick of all supported speeds:
// 0.32 ns. Counting in this unit and incrementing by a per-speed delta
// lets mixed-rate networks share one counter domain (§7, Table 2).
const BaseTickFs = 320_000

// Profile captures the PHY parameters of one Ethernet speed — the rows of
// Table 2 in the paper.
type Profile struct {
	Speed     Speed
	DataGbps  float64 // MAC data rate
	Encoding  string  // line coding
	WidthBits int     // datapath width at the PCS/MAC interface
	FreqMHz   float64 // PCS clock frequency
	PeriodFs  int64   // PCS clock period, femtoseconds
	// Delta is the counter increment per PCS clock tick when counting in
	// BaseTickFs units, so counters at different speeds advance at the
	// same rate: Delta * BaseTickFs == PeriodFs.
	Delta int64
}

// Profiles lists the supported speeds, reproducing Table 2.
var Profiles = []Profile{
	{Speed1G, 1, "8b/10b", 8, 125, 8_000_000, 25},
	{Speed10G, 10, "64b/66b", 32, 156.25, 6_400_000, 20},
	{Speed40G, 40, "64b/66b", 64, 625, 1_600_000, 5},
	{Speed100G, 100, "64b/66b", 64, 1562.5, 640_000, 2},
}

// BaseProfile returns the 0.32 ns common-base clock profile used by
// mixed-speed networks (§7): every device's counter logic runs in this
// domain, and each port advances by its speed's Delta base ticks per
// port cycle. It is not a line rate of its own.
func BaseProfile() Profile {
	return Profile{
		Speed:    Speed(-1),
		Encoding: "base",
		FreqMHz:  3125,
		PeriodFs: BaseTickFs,
		Delta:    1,
	}
}

// ProfileFor returns the profile for a speed.
func ProfileFor(s Speed) Profile {
	for _, p := range Profiles {
		if p.Speed == s {
			return p
		}
	}
	panic(fmt.Sprintf("phy: unknown speed %v", s))
}

// TickPeriod returns the PCS clock period as simulated time (rounded to
// ps; exact for all supported speeds).
func (p Profile) TickPeriod() sim.Time {
	return sim.Femto(p.PeriodFs)
}

// ByteTime returns the serialization time of n octets at this speed.
func (p Profile) ByteTime(n int) sim.Time {
	// n octets * 8 bits / (DataGbps * 1e9 bits/s), in ps.
	return sim.Time(float64(n) * 8 * 1000 / p.DataGbps)
}

// Pipeline delays: the deterministic number of PCS clock cycles a block
// spends between the DTP sublayer and the wire. These defaults place the
// measured one-way delay of a 10 m cable at 43–45 cycles, matching the
// deployment in §6.1 of the paper (DE5-Net boards, 10 m twinax).
const (
	// DefaultTxPipelineTicks covers encoder, scrambler, and gearbox on
	// the transmit path.
	DefaultTxPipelineTicks = 17
	// DefaultRxPipelineTicks covers block sync, descrambler, and decoder
	// on the receive path.
	DefaultRxPipelineTicks = 18
)
