package sim

import "fmt"

// Actor is the allocation-free event target. Instead of capturing state
// in a closure (one heap allocation per schedule), a long-lived object —
// a port, a device, a wire endpoint — implements OnEvent and dispatches
// on a small opcode, with two uint64 arguments carrying the payload
// (a 64-bit PCS block, a counter slot, a message body). Storing a
// pointer-typed Actor in an event slot does not allocate, which is what
// makes the steady-state simulation loop zero-alloc.
type Actor interface {
	OnEvent(code uint8, a, b uint64)
}

// nilSlot terminates slot chains (bucket lists, the free list).
const nilSlot = ^uint32(0)

// eventSlot is one pooled event. Slots live in Scheduler.slots and are
// addressed by index; cancelled and fired slots are cleared (callback
// references dropped so the GC can reclaim captured state) and recycled
// through the free list. gen increments on every recycle so stale Event
// handles can never touch a reused slot.
type eventSlot struct {
	at      Time
	seq     uint64 // tie-breaker: FIFO among events with equal timestamps
	a, b    uint64
	fn      func()
	actor   Actor
	next    uint32 // bucket chain (calendar), free-list link
	pos     uint32 // heap position (heap discipline only)
	gen     uint32
	code    uint8
	pending bool
}

// Event is a value handle to a scheduled callback. Events are
// single-shot; cancelling an event that already fired (or was already
// cancelled) is a no-op returning false, even if the underlying pooled
// slot has since been recycled for a different event — handles carry the
// slot generation, so a stale handle can never cancel a stranger. The
// zero Event is inert: Cancel reports false, Pending reports false.
type Event struct {
	s    *Scheduler
	slot uint32
	gen  uint32
}

// Pending reports whether the event is still scheduled (not yet fired
// and not cancelled).
func (e Event) Pending() bool {
	return e.s != nil && e.s.slots[e.slot].gen == e.gen && e.s.slots[e.slot].pending
}

// At returns the simulated time the event is scheduled for, or 0 if the
// event already fired, was cancelled, or is the zero Event.
func (e Event) At() Time {
	if !e.Pending() {
		return 0
	}
	return e.s.slots[e.slot].at
}

// Cancel removes the event from the scheduler, clears its callback
// references, and recycles its slot immediately — a cancelled event
// retains nothing. Returns false if the event already fired or was
// already cancelled.
func (e Event) Cancel() bool {
	s := e.s
	if s == nil {
		return false
	}
	sl := &s.slots[e.slot]
	if sl.gen != e.gen || !sl.pending {
		return false
	}
	if s.heapMode {
		s.heapRemove(e.slot)
	} else {
		s.calUnlink(e.slot)
	}
	s.size--
	s.release(e.slot)
	s.maybeShrink()
	return true
}

// Scheduler is a deterministic discrete-event scheduler. It is not safe
// for concurrent use; simulations are single-goroutine by design so that
// a seed fully determines a run.
//
// Two queue disciplines share the same pooled-slot machinery and produce
// byte-identical dispatch orders (total order by (time, seq)):
//
//   - NewScheduler: a calendar queue (Brown 1988) — events hash into
//     power-of-two-width time buckets holding short sorted chains, giving
//     O(1) amortized schedule/dispatch with no pointer swapping, sized
//     and recalibrated deterministically from the dispatch-gap EWMA.
//   - NewHeapScheduler: a binary heap over slot indices — the reference
//     discipline, kept for equivalence tests and benchmark baselines.
type Scheduler struct {
	now  Time
	seq  uint64
	size int

	// processed counts events dispatched since construction, for reporting.
	processed uint64
	// highWater is the largest queue depth ever reached, for reporting.
	highWater int

	// Pooled event storage. free heads the recycle list through .next.
	slots []eventSlot
	free  uint32

	// Queue discipline: calendar buckets by default, binary heap when
	// heapMode is set.
	heapMode bool
	heap     []uint32

	// Calendar queue state: len(buckets) is a power of two, bucket width
	// is 1<<shift picoseconds, bucket(t) = (t>>shift)&mask.
	buckets []uint32
	shift   uint
	mask    uint64

	// Deterministic width statistics: an EWMA of gaps between dispatched
	// event timestamps. Depends only on the dispatch sequence, so resizes
	// and recalibrations can never perturb determinism.
	lastAt  Time
	gapEWMA Time

	scratch []uint32 // rebuild buffer
}

// NewScheduler returns an empty calendar-queue scheduler at time zero.
func NewScheduler() *Scheduler {
	s := &Scheduler{free: nilSlot, shift: initialShift}
	s.buckets = newBuckets(initialBuckets)
	s.mask = initialBuckets - 1
	return s
}

// NewHeapScheduler returns an empty scheduler using the binary-heap
// reference discipline. Dispatch order is identical to NewScheduler's;
// only the per-operation cost differs (O(log n) with index swaps).
func NewHeapScheduler() *Scheduler {
	return &Scheduler{free: nilSlot, heapMode: true}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Processed returns the number of events dispatched so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// Pending returns the number of events currently scheduled.
func (s *Scheduler) Pending() int { return s.size }

// HighWaterPending returns the largest queue depth ever reached.
func (s *Scheduler) HighWaterPending() int { return s.highWater }

// alloc pops a recycled slot or grows the arena. Steady-state loops
// reuse slots and never grow, which is what AllocsPerRun == 0 pins.
func (s *Scheduler) alloc() uint32 {
	if s.free != nilSlot {
		idx := s.free
		s.free = s.slots[idx].next
		return idx
	}
	s.slots = append(s.slots, eventSlot{})
	return uint32(len(s.slots) - 1)
}

// release clears a fired or cancelled slot and pushes it on the free
// list. Dropping fn/actor here is load-bearing twice over: the GC can
// reclaim captured state immediately, and the bumped generation
// invalidates every outstanding handle to the old event.
func (s *Scheduler) release(idx uint32) {
	sl := &s.slots[idx]
	sl.fn = nil
	sl.actor = nil
	sl.pending = false
	sl.gen++
	sl.next = s.free
	s.free = idx
}

func (s *Scheduler) schedule(t Time, fn func(), act Actor, code uint8, a, b uint64) Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	idx := s.alloc()
	sl := &s.slots[idx]
	sl.at = t
	sl.seq = s.seq
	s.seq++
	sl.fn = fn
	sl.actor = act
	sl.code = code
	sl.a, sl.b = a, b
	sl.pending = true
	if s.heapMode {
		s.heapPush(idx)
	} else {
		s.calInsert(idx)
	}
	s.size++
	if s.size > s.highWater {
		s.highWater = s.size
	}
	if !s.heapMode && s.size > 2*len(s.buckets) {
		s.rebuild(2 * len(s.buckets))
	}
	return Event{s: s, slot: idx, gen: sl.gen}
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it always indicates a modelling bug, and silently reordering
// time would corrupt every downstream measurement.
func (s *Scheduler) At(t Time, fn func()) Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	return s.schedule(t, fn, nil, 0, 0, 0)
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Time, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// AtActor schedules act.OnEvent(code, a, b) at absolute time t without
// allocating: the opcode and arguments live in the pooled slot.
func (s *Scheduler) AtActor(t Time, act Actor, code uint8, a, b uint64) Event {
	if act == nil {
		panic("sim: nil event actor")
	}
	return s.schedule(t, nil, act, code, a, b)
}

// AfterActor schedules act.OnEvent(code, a, b) to run d after the
// current time. See AtActor.
func (s *Scheduler) AfterActor(d Time, act Actor, code uint8, a, b uint64) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.AtActor(s.now+d, act, code, a, b)
}

// dispatch fires slot idx: advances the clock, recycles the slot, then
// invokes the callback. The slot is released before the call so a
// callback rescheduling immediately (the common periodic pattern) reuses
// it, and so the fired event's own handle is already stale inside the
// callback.
func (s *Scheduler) dispatch(idx uint32) {
	sl := &s.slots[idx]
	s.now = sl.at
	fn, act, code, a, b := sl.fn, sl.actor, sl.code, sl.a, sl.b
	gap := sl.at - s.lastAt
	s.lastAt = sl.at
	s.gapEWMA += (gap - s.gapEWMA) >> 3
	s.size--
	s.release(idx)
	s.processed++
	if !s.heapMode && s.processed&(recalibrateEvery-1) == 0 {
		s.maybeRecalibrate()
	}
	if act != nil {
		act.OnEvent(code, a, b)
	} else {
		fn()
	}
}

// popLE removes and returns the earliest pending slot if its time is at
// or before `until`.
func (s *Scheduler) popLE(until Time) (uint32, bool) {
	if s.heapMode {
		return s.heapPopLE(until)
	}
	return s.calPopLE(until)
}

const maxTime = Time(1<<63 - 1)

// Step dispatches the single earliest event. It returns false when the
// queue is empty.
func (s *Scheduler) Step() bool {
	idx, ok := s.popLE(maxTime)
	if !ok {
		return false
	}
	s.dispatch(idx)
	return true
}

// Run dispatches events until no event at or before `until` remains,
// then advances the clock to exactly `until`. Events scheduled during
// the run are honoured if they fall within the horizon.
func (s *Scheduler) Run(until Time) {
	if until < s.now {
		panic(fmt.Sprintf("sim: Run(%v) before now %v", until, s.now))
	}
	for {
		idx, ok := s.popLE(until)
		if !ok {
			break
		}
		s.dispatch(idx)
	}
	s.now = until
}

// RunFor advances the simulation by d. See Run.
func (s *Scheduler) RunFor(d Time) { s.Run(s.now + d) }

// Drain dispatches every remaining event regardless of timestamp.
// Intended for tests; production experiments always run to a horizon.
func (s *Scheduler) Drain() {
	for s.Step() {
	}
}

// slotLess orders slots by (time, seq): the total dispatch order both
// queue disciplines implement.
func (s *Scheduler) slotLess(i, j uint32) bool {
	a, b := &s.slots[i], &s.slots[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
