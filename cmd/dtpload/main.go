// Command dtpload benchmarks the time-service fast path: the seqlock
// snapshot + lock-free Clock read that internal/timesvc serves
// TrueTime-style intervals through.
//
// It runs in two phases. First an in-sim calibration phase builds a DTP
// network with a full serving plane (daemons, UTC broadcast, live 4TD
// audit) and lets it converge, yielding a realistic published error
// bound. Then a wall-clock hammer phase re-anchors that snapshot shape
// onto the host's monotonic clock — a writer republishing at the
// calibration cadence with a known bounded anchor error, exactly like
// the in-sim service — and N reader goroutines hammer Clock.NowInterval
// as fast as they can. Readers record throughput, sampled read latency
// (p50/p99), the interval-width distribution, and — on the sampled
// subset — verify earliest <= true time <= latest against the
// construction's ground truth.
//
//	dtpload -topo tree -duration 500ms -hammer 2s -out BENCH_6.json
//
// The -assert flag enforces the >= 1M reads/sec floor; like the other
// BENCH assertions it only bites on hosts with >= 8 CPUs, so small CI
// runners still produce records without failing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dtplab/dtp"
	"github.com/dtplab/dtp/internal/cliutil"
	"github.com/dtplab/dtp/internal/timesvc"
)

var (
	shared = cliutil.Flags{Topo: "tree", Duration: 500 * time.Millisecond}

	hostFlag    = flag.String("host", "", "served host to calibrate on (default: first served host)")
	readersFlag = flag.Int("readers", 0, "reader goroutines (0 = GOMAXPROCS)")
	hammerFlag  = flag.Duration("hammer", 2*time.Second, "wall-clock hammer phase length")
	sampleFlag  = flag.Int("sample", 512, "sample latency/width/coverage every N reads")
	outFlag     = flag.String("out", "", "write the benchmark record (JSON) to this file")
	assertFlag  = flag.Bool("assert", false, "fail unless aggregate throughput >= 1M reads/sec (only enforced with >= 8 CPUs)")
	minQPS      = flag.Float64("min-qps", 1e6, "throughput floor for -assert")
)

// readerStats is one goroutine's tally, merged after the run.
type readerStats struct {
	reads    uint64
	errors   uint64
	checked  uint64
	covered  uint64
	latNs    []float64
	widthPs  []float64
	sinkEps  float64 // keeps the read from being optimized away
	_padding [4]uint64
}

func main() {
	shared.Register(flag.CommandLine,
		cliutil.FlagTopo|cliutil.FlagSeed|cliutil.FlagDuration)
	flag.Parse()
	if err := shared.Validate(); err != nil {
		cliutil.Fatal("dtpload", 2, err)
	}

	// Phase 1: in-sim calibration for a realistic published bound.
	topo, err := shared.Topology()
	if err != nil {
		cliutil.Fatal("dtpload", 2, err)
	}
	sys, err := dtp.New(topo, dtp.WithSeed(shared.Seed))
	if err != nil {
		cliutil.Fatal("dtpload", 1, err)
	}
	defer sys.Close()
	sys.Start()
	if err := sys.RunUntilSynced(time.Second); err != nil {
		cliutil.Fatal("dtpload", 1, err)
	}
	tp, err := sys.TimePlane(dtp.TimePlaneOptions{CalInterval: 10 * time.Millisecond})
	if err != nil {
		cliutil.Fatal("dtpload", 1, err)
	}
	sys.Run(shared.Duration)

	host := *hostFlag
	if host == "" {
		host = tp.Hosts()[0]
	}
	svc, err := tp.Service(host)
	if err != nil {
		cliutil.Fatal("dtpload", 2, err)
	}
	calSnap, ok := svc.Store().Read()
	if !ok {
		cliutil.Fatal("dtpload", 1,
			fmt.Errorf("no snapshot published on %s after %v simulated; lengthen -duration", host, shared.Duration))
	}
	simWidth, simCovered, err := svc.ReadCheck()
	if err != nil {
		cliutil.Fatal("dtpload", 1, err)
	}
	fmt.Printf("calibrated on %s: ε = %.0f ps (width %.0f ps), covered=%v, %d publishes, %d degraded ticks\n",
		host, calSnap.BoundPs, simWidth, simCovered, svc.Publishes(), svc.DegradedTicks())

	// Phase 2: wall-clock hammer. Ground truth is the wall timebase
	// itself: the writer anchors UTC(r) = r + jitter with |jitter| and
	// ratio error well inside the sim-calibrated bound, so every served
	// interval must contain the raw reading it was evaluated at — the
	// same invariant the in-sim plane proves, checkable without a
	// simulated scheduler in the hot loop.
	store := &timesvc.Store{}
	tb := timesvc.NewWallTimebase(0)
	clock := timesvc.NewClock(store, tb)

	const (
		anchorJitterFrac = 0.25 // of the calibrated bound, per publish
		ratioErrPPM      = 1.0  // known ratio error; DriftPPM covers it
	)
	publishInterval := 10 * time.Millisecond
	maxAgePs := int64(8 * publishInterval / time.Nanosecond * 1000)

	var stopWriter atomic.Bool
	var writerWG sync.WaitGroup
	var publishes atomic.Uint64
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		epoch := uint64(0)
		sign := 1.0
		for !stopWriter.Load() {
			epoch++
			sign = -sign
			raw := tb.Raw()
			store.Publish(timesvc.Snapshot{
				Epoch:     epoch,
				AnchorRaw: raw,
				AnchorUTC: float64(raw) + sign*anchorJitterFrac*calSnap.BoundPs,
				Ratio:     1 + sign*ratioErrPPM*1e-6,
				BoundPs:   calSnap.BoundPs,
				DriftPPM:  calSnap.DriftPPM,
				MaxAgePs:  maxAgePs,
			})
			publishes.Add(1)
			time.Sleep(publishInterval)
		}
	}()

	readers := *readersFlag
	if readers <= 0 {
		readers = runtime.GOMAXPROCS(0)
	}
	sample := *sampleFlag
	if sample < 1 {
		sample = 1
	}

	stats := make([]readerStats, readers)
	var start sync.WaitGroup
	var done sync.WaitGroup
	var stopReaders atomic.Bool
	start.Add(1)
	for i := 0; i < readers; i++ {
		done.Add(1)
		go func(st *readerStats) {
			defer done.Done()
			start.Wait()
			n := 0
			for !stopReaders.Load() {
				// The hot path: one lock-free interval read.
				n++
				if n%sample != 0 {
					iv, err := clock.NowInterval()
					if err != nil {
						st.errors++
					} else {
						st.sinkEps += iv.EarliestPs
					}
					st.reads++
					continue
				}
				// Sampled: time the read and verify the invariant from
				// the same raw reading the interval is evaluated at.
				t0 := time.Now()
				raw := tb.Raw()
				_, iv, err := clock.At(raw)
				lat := time.Since(t0)
				st.reads++
				if err != nil {
					st.errors++
					continue
				}
				st.checked++
				if iv.Contains(float64(raw)) {
					st.covered++
				}
				st.latNs = append(st.latNs, float64(lat.Nanoseconds()))
				st.widthPs = append(st.widthPs, iv.WidthPs())
			}
		}(&stats[i])
	}

	// Wait for the first publish so readers never start on an empty
	// store, then release them.
	for store.Epoch() == 0 {
		time.Sleep(time.Millisecond)
	}
	t0 := time.Now()
	start.Done()
	time.Sleep(*hammerFlag)
	stopReaders.Store(true)
	done.Wait()
	elapsed := time.Since(t0)
	stopWriter.Store(true)
	writerWG.Wait()

	// Merge.
	var reads, errors, checked, covered uint64
	var lats, widths []float64
	for i := range stats {
		reads += stats[i].reads
		errors += stats[i].errors
		checked += stats[i].checked
		covered += stats[i].covered
		lats = append(lats, stats[i].latNs...)
		widths = append(widths, stats[i].widthPs...)
	}
	qps := float64(reads) / elapsed.Seconds()

	latP50, latP99 := percentile(lats, 0.50), percentile(lats, 0.99)
	widthP50, widthP99 := percentile(widths, 0.50), percentile(widths, 0.99)

	fmt.Printf("\n== fast-path hammer: %d readers, %v\n", readers, elapsed.Round(time.Millisecond))
	fmt.Printf("reads       %d (%.2fM reads/sec aggregate)\n", reads, qps/1e6)
	fmt.Printf("read lat    p50 %.0f ns, p99 %.0f ns (sampled 1/%d)\n", latP50, latP99, sample)
	fmt.Printf("width       p50 %.0f ps, p99 %.0f ps\n", widthP50, widthP99)
	fmt.Printf("invariant   %d/%d sampled reads covered, %d failed closed\n", covered, checked, errors)

	cores := runtime.NumCPU()
	asserted := *assertFlag && cores >= 8
	if checked == 0 || covered != checked {
		cliutil.Fatal("dtpload", 1,
			fmt.Errorf("interval invariant violated: %d of %d sampled reads uncovered", checked-covered, checked))
	}
	if asserted && qps < *minQPS {
		cliutil.Fatal("dtpload", 1,
			fmt.Errorf("throughput %.2fM reads/sec below the %.1fM floor on %d cores", qps/1e6, *minQPS/1e6, cores))
	}

	if *outFlag != "" {
		record := map[string]any{
			"benchmark":      "dtpload",
			"topo":           shared.Topo,
			"seed":           shared.Seed,
			"host":           host,
			"readers":        readers,
			"gomaxprocs":     runtime.GOMAXPROCS(0),
			"num_cpu":        cores,
			"hammer_ms":      elapsed.Seconds() * 1e3,
			"reads":          reads,
			"qps":            qps,
			"read_lat_ns":    map[string]float64{"p50": latP50, "p99": latP99},
			"width_ps":       map[string]float64{"p50": widthP50, "p99": widthP99},
			"sim_bound_ps":   calSnap.BoundPs,
			"sim_publishes":  svc.Publishes(),
			"checked":        checked,
			"covered":        covered,
			"failed_closed":  errors,
			"wall_publishes": publishes.Load(),
			"asserted_min_qps": func() float64 {
				if asserted {
					return *minQPS
				}
				return 0
			}(),
			"note": fmt.Sprintf("1M reads/sec floor asserted only with -assert and >= 8 CPUs "+
				"(this record was taken on %d core(s))", cores),
		}
		j, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			cliutil.Fatal("dtpload", 1, err)
		}
		if err := os.WriteFile(*outFlag, append(j, '\n'), 0o644); err != nil {
			cliutil.Fatal("dtpload", 1, err)
		}
		fmt.Printf("record written to %s\n", *outFlag)
	}
	// Keep the sink live past the loops.
	var sink float64
	for i := range stats {
		sink += stats[i].sinkEps
	}
	if math.IsNaN(sink) {
		fmt.Println(sink)
	}
}

// percentile returns the q-quantile of xs (sorted in place; 0 when
// empty).
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	i := int(q * float64(len(xs)-1))
	return xs[i]
}
