package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Result is the per-run record a campaign collects. Every field that
// lands in JSON is a pure function of the run's Point (plus the grid's
// scalar knobs), so JSONL and aggregate output is byte-identical across
// worker counts and re-runs. Wall time is the one host-dependent
// measurement; it is deliberately excluded from JSON and only surfaced
// in the human-readable summary.
type Result struct {
	Point

	// Err is a run-level failure (topology parse error, sync timeout,
	// scenario load failure). Runs with Err set have zero-valued
	// measurements.
	Err string `json:"error,omitempty"`

	// Synced reports whether every link completed INIT in time.
	Synced bool `json:"synced"`
	// TimeToSyncUs is the simulated time INIT took, in microseconds.
	TimeToSyncUs float64 `json:"time_to_sync_us"`

	// MaxOffsetTicks is the worst ground-truth pairwise offset sampled
	// over the measurement window, in counter units.
	MaxOffsetTicks int64 `json:"max_offset_ticks"`
	// P50OffsetTicks / P99OffsetTicks are percentiles of the sampled
	// worst-pair offsets.
	P50OffsetTicks float64 `json:"p50_offset_ticks"`
	P99OffsetTicks float64 `json:"p99_offset_ticks"`
	// BoundTicks is the 4TD precision bound in counter units.
	BoundTicks int64 `json:"bound_ticks"`
	// WithinBound reports MaxOffsetTicks <= BoundTicks. Runs with
	// active fault injection legitimately exceed the bound while faults
	// are live; ChaosOK is the authoritative verdict then.
	WithinBound bool `json:"within_bound"`
	// MaxOffsetNs / BoundNs are the same in nanoseconds.
	MaxOffsetNs float64 `json:"max_offset_ns"`
	BoundNs     float64 `json:"bound_ns"`

	// OWDMinTicks / OWDMaxTicks are the range of one-way delays the
	// ports measured during INIT, across every link direction.
	OWDMinTicks int64 `json:"owd_min_ticks"`
	OWDMaxTicks int64 `json:"owd_max_ticks"`

	// AuditChecks / AuditViolations / AuditExcused summarize the online
	// 4TD auditor: unexcused violations mean the precision claim broke
	// outside any declared fault window.
	AuditChecks     uint64 `json:"audit_checks"`
	AuditViolations uint64 `json:"audit_violations"`
	AuditExcused    uint64 `json:"audit_excused"`

	// ChaosOK is the scenario Verify() outcome (true when no scenario
	// was attached); ChaosErr carries the verification failure.
	ChaosOK  bool   `json:"chaos_ok"`
	ChaosErr string `json:"chaos_error,omitempty"`

	// CounterRejections / PortQuarantines count the hardened-mode
	// defenses firing: remote counter advances refused by bounded-jump
	// admission and ports quarantined after repeated rejections. Always
	// zero on unhardened or honest runs — the Byzantine tolerance
	// campaign reads them as "the defense engaged".
	CounterRejections uint64 `json:"counter_rejections,omitempty"`
	PortQuarantines   uint64 `json:"port_quarantines,omitempty"`

	// Time* fields summarize the serving-plane probe (Grid.TimeService):
	// every sampling tick reads each served host's TrueTime-style
	// interval and checks it against ground truth. TimeReads counts
	// served intervals, TimeUncovered how many excluded true time (the
	// one unforgivable outcome on a fault-free run), TimeFailedClosed
	// how many reads failed closed (stale/no snapshot — honest during
	// warmup or faults). Zero-valued unless the grid enabled the plane.
	TimeReads        uint64 `json:"time_reads,omitempty"`
	TimeUncovered    uint64 `json:"time_uncovered,omitempty"`
	TimeFailedClosed uint64 `json:"time_failed_closed,omitempty"`
	// TimePublishes totals snapshot publishes across served hosts.
	TimePublishes uint64 `json:"time_publishes,omitempty"`
	// TimeWidthP50Ps / TimeWidthP99Ps are percentiles of the sampled
	// interval widths, in UTC picoseconds.
	TimeWidthP50Ps float64 `json:"time_width_p50_ps,omitempty"`
	TimeWidthP99Ps float64 `json:"time_width_p99_ps,omitempty"`

	// Daemon* fields summarize the discipline probe (Point.Discipline):
	// a daemon on the run's first host, sampled at the grid cadence.
	// DaemonSamples counts probe samples, DaemonP99OffsetTicks is the
	// p99 |estimate - hardware counter| over the window's second half,
	// DaemonConvergeUs the simulated time until the estimate first held
	// the ±4-tick band for 10 consecutive samples (-1 = never),
	// DaemonDropped the discipline's outlier rejections, DaemonErrTicks
	// its final self-reported error bound (-1 before first calibration —
	// +Inf is not JSON-encodable). Zero-valued without a probe.
	DaemonSamples        uint64  `json:"daemon_samples,omitempty"`
	DaemonP99OffsetTicks float64 `json:"daemon_p99_offset_ticks,omitempty"`
	DaemonConvergeUs     float64 `json:"daemon_converge_us,omitempty"`
	DaemonDropped        uint64  `json:"daemon_dropped,omitempty"`
	DaemonErrTicks       float64 `json:"daemon_err_ticks,omitempty"`

	// TimelinePath is the run's exported timeline JSONL (set when the
	// grid's FlightDir armed observability); FlightBundles lists the
	// flight-recorder bundles the run tripped, in trigger order. Both
	// are pure functions of (grid, point), so they stay deterministic.
	TimelinePath  string   `json:"timeline,omitempty"`
	FlightBundles []string `json:"flight_bundles,omitempty"`

	// Wall is the run's host wall-clock cost. Excluded from JSON: it
	// would break byte-determinism across worker counts.
	Wall time.Duration `json:"-"`
}

// OK reports whether the run passed every check it was subject to.
func (r *Result) OK() bool {
	if r.Err != "" || !r.Synced || !r.ChaosOK {
		return false
	}
	if r.AuditViolations > 0 {
		return false
	}
	// Under chaos the instantaneous max may exceed the bound inside
	// excused windows; the auditor + Verify() already enforced the
	// windowed claim above.
	if r.Chaos == "" && !r.WithinBound {
		return false
	}
	// A served interval that excludes true time breaks the TrueTime
	// contract. Under chaos, mid-fault samples may legitimately miss
	// (the chaos invariant test excuses declared windows; the campaign
	// probe cannot), so the strict form only binds fault-free runs.
	if r.Chaos == "" && r.TimeUncovered > 0 {
		return false
	}
	return true
}

// Aggregate is the campaign-level rollup, computed from Results in grid
// order. Like Result it contains no host-dependent fields.
type Aggregate struct {
	Name    string `json:"name,omitempty"`
	Runs    int    `json:"runs"`
	Passed  int    `json:"passed"`
	Failed  int    `json:"failed"`
	Errored int    `json:"errored"`

	// WorstOffsetTicks / WorstOffsetNs are the worst sampled offset
	// across all runs; WorstRun is its grid index.
	WorstOffsetTicks int64   `json:"worst_offset_ticks"`
	WorstOffsetNs    float64 `json:"worst_offset_ns"`
	WorstRun         int     `json:"worst_run"`

	// MaxTimeToSyncUs is the slowest INIT across runs, in microseconds.
	MaxTimeToSyncUs float64 `json:"max_time_to_sync_us"`

	// OWDMinTicks / OWDMaxTicks pool the per-run OWD ranges.
	OWDMinTicks int64 `json:"owd_min_ticks"`
	OWDMaxTicks int64 `json:"owd_max_ticks"`

	// AuditViolations / AuditExcused total the per-run audit verdicts.
	AuditViolations uint64 `json:"audit_violations"`
	AuditExcused    uint64 `json:"audit_excused"`

	// ChaosRuns / ChaosVerified count fault-injection runs and how many
	// passed Verify().
	ChaosRuns     int `json:"chaos_runs"`
	ChaosVerified int `json:"chaos_verified"`

	// CounterRejections / PortQuarantines total the hardened-mode
	// defense activity across runs.
	CounterRejections uint64 `json:"counter_rejections,omitempty"`
	PortQuarantines   uint64 `json:"port_quarantines,omitempty"`

	// TimeReads / TimeUncovered / TimeFailedClosed pool the serving-
	// plane probes across runs; WorstTimeWidthP99Ps is the widest p99
	// interval any run served.
	TimeReads           uint64  `json:"time_reads,omitempty"`
	TimeUncovered       uint64  `json:"time_uncovered,omitempty"`
	TimeFailedClosed    uint64  `json:"time_failed_closed,omitempty"`
	WorstTimeWidthP99Ps float64 `json:"worst_time_width_p99_ps,omitempty"`
}

// Aggregated folds Results (in grid order) into the campaign rollup.
func Aggregated(name string, results []Result) Aggregate {
	agg := Aggregate{Name: name, Runs: len(results), WorstRun: -1}
	for i, r := range results {
		switch {
		case r.Err != "":
			agg.Errored++
			agg.Failed++
			continue
		case r.OK():
			agg.Passed++
		default:
			agg.Failed++
		}
		if r.MaxOffsetTicks > agg.WorstOffsetTicks || agg.WorstRun < 0 {
			agg.WorstOffsetTicks = r.MaxOffsetTicks
			agg.WorstOffsetNs = r.MaxOffsetNs
			agg.WorstRun = i
		}
		if r.TimeToSyncUs > agg.MaxTimeToSyncUs {
			agg.MaxTimeToSyncUs = r.TimeToSyncUs
		}
		if agg.OWDMinTicks == 0 && agg.OWDMaxTicks == 0 {
			agg.OWDMinTicks, agg.OWDMaxTicks = r.OWDMinTicks, r.OWDMaxTicks
		} else {
			if r.OWDMinTicks < agg.OWDMinTicks {
				agg.OWDMinTicks = r.OWDMinTicks
			}
			if r.OWDMaxTicks > agg.OWDMaxTicks {
				agg.OWDMaxTicks = r.OWDMaxTicks
			}
		}
		agg.AuditViolations += r.AuditViolations
		agg.AuditExcused += r.AuditExcused
		if r.Chaos != "" {
			agg.ChaosRuns++
			if r.ChaosOK {
				agg.ChaosVerified++
			}
		}
		agg.CounterRejections += r.CounterRejections
		agg.PortQuarantines += r.PortQuarantines
		agg.TimeReads += r.TimeReads
		agg.TimeUncovered += r.TimeUncovered
		agg.TimeFailedClosed += r.TimeFailedClosed
		if r.TimeWidthP99Ps > agg.WorstTimeWidthP99Ps {
			agg.WorstTimeWidthP99Ps = r.TimeWidthP99Ps
		}
	}
	return agg
}

// WriteJSONL writes one compact JSON record per run, in grid order.
// Output is byte-deterministic for a given grid.
func WriteJSONL(w io.Writer, results []Result) error {
	for i := range results {
		if err := WriteResultJSON(w, &results[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteResultJSON writes a single run record as one JSONL line.
func WriteResultJSON(w io.Writer, r *Result) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}

// WriteAggregateJSON writes the indented campaign rollup. Byte-
// deterministic for a given grid, independent of worker count.
func WriteAggregateJSON(w io.Writer, agg Aggregate) error {
	b, err := json.MarshalIndent(agg, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}

// Summary renders the human-readable campaign verdict, including the
// (host-dependent) wall-clock accounting that JSON output omits.
func (rep *Report) Summary() string {
	var b strings.Builder
	agg := rep.Aggregate
	name := agg.Name
	if name == "" {
		name = "campaign"
	}
	fmt.Fprintf(&b, "%s: %d runs, %d passed, %d failed", name, agg.Runs, agg.Passed, agg.Failed)
	if agg.Errored > 0 {
		fmt.Fprintf(&b, " (%d errored)", agg.Errored)
	}
	fmt.Fprintf(&b, "\n  worst offset %d ticks = %.1f ns (run %d); slowest sync %.0f µs; OWD %d..%d ticks\n",
		agg.WorstOffsetTicks, agg.WorstOffsetNs, agg.WorstRun, agg.MaxTimeToSyncUs,
		agg.OWDMinTicks, agg.OWDMaxTicks)
	if agg.TimeReads > 0 {
		fmt.Fprintf(&b, "  time service: %d interval reads, %d uncovered, %d failed closed; worst p99 width %.0f ps\n",
			agg.TimeReads, agg.TimeUncovered, agg.TimeFailedClosed, agg.WorstTimeWidthP99Ps)
	}
	if agg.ChaosRuns > 0 {
		fmt.Fprintf(&b, "  chaos: %d/%d scenarios verified; audit: %d unexcused violations, %d excused\n",
			agg.ChaosVerified, agg.ChaosRuns, agg.AuditViolations, agg.AuditExcused)
	} else if agg.AuditViolations+agg.AuditExcused > 0 {
		fmt.Fprintf(&b, "  audit: %d unexcused violations, %d excused\n",
			agg.AuditViolations, agg.AuditExcused)
	}
	if agg.CounterRejections+agg.PortQuarantines > 0 {
		fmt.Fprintf(&b, "  hardened: %d counter advances rejected, %d port quarantines\n",
			agg.CounterRejections, agg.PortQuarantines)
	}
	var serial time.Duration
	for i := range rep.Results {
		serial += rep.Results[i].Wall
	}
	if rep.Wall > 0 && serial > 0 {
		fmt.Fprintf(&b, "  wall %.2fs on %d workers (runs total %.2fs, speedup %.2fx)",
			rep.Wall.Seconds(), rep.Jobs, serial.Seconds(), serial.Seconds()/rep.Wall.Seconds())
	}
	return strings.TrimRight(b.String(), "\n")
}
