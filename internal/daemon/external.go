package daemon

import (
	"fmt"
	"math"

	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
)

// External synchronization (§5.2): one server periodically broadcasts
// (DTP counter, UTC) pairs; every other daemon estimates the frequency
// ratio between the two timescales and can then serve UTC by
// interpolating its own DTP counter. Because all DTP counters advance
// at the same (max-coupled) rate, UTC derived this way is as tightly
// synchronized across servers as DTP itself, plus the broadcast
// estimation error.

// UTCSource provides the broadcaster's UTC readings; typically a GPS
// receiver or an NTP/PTP-disciplined clock, with its own error.
type UTCSource interface {
	// ReadUTC returns UTC in picoseconds at the current instant.
	ReadUTC() float64
}

// TrueUTC is a perfect UTC source (for tests and bounds).
type TrueUTC struct{ Sch *sim.Scheduler }

// ReadUTC returns true time.
func (s TrueUTC) ReadUTC() float64 { return float64(s.Sch.Now()) }

// UTCBroadcast is one (counter, UTC) pair as received by followers.
type UTCBroadcast struct {
	Counter float64 // broadcaster's DTP counter estimate at the reading
	UTC     float64 // ps
	// ErrUnits bounds the broadcaster's own estimate error at the
	// reading, in counter units — NTP's root-dispersion idea: each hop
	// ships its uncertainty so downstream consumers can compose an
	// honest end-to-end bound instead of guessing.
	ErrUnits float64
}

// UTCBroadcaster periodically publishes pairs to registered followers.
// Delivery uses the DTP daemon's own counter estimate, so broadcaster-
// side software error is included, as it would be in deployment.
type UTCBroadcaster struct {
	d        *Daemon
	src      UTCSource
	interval sim.Time
	subs     []*UTCFollower
	stopped  bool
}

// NewUTCBroadcaster wraps a daemon and a UTC source.
func NewUTCBroadcaster(d *Daemon, src UTCSource, interval sim.Time) *UTCBroadcaster {
	return &UTCBroadcaster{d: d, src: src, interval: interval}
}

// Subscribe registers a follower.
func (b *UTCBroadcaster) Subscribe(f *UTCFollower) { b.subs = append(b.subs, f) }

// Start begins broadcasting.
func (b *UTCBroadcaster) Start() {
	b.stopped = false
	b.d.sch.After(b.interval, b.tick)
}

// Stop halts broadcasting.
func (b *UTCBroadcaster) Stop() { b.stopped = true }

func (b *UTCBroadcaster) tick() {
	if b.stopped {
		return
	}
	pair := UTCBroadcast{
		Counter:  b.d.Estimate(),
		UTC:      b.src.ReadUTC(),
		ErrUnits: b.d.EstimateErrorUnits(),
	}
	for _, f := range b.subs {
		f.deliver(pair)
	}
	b.d.sch.After(b.interval, b.tick)
}

// UTCFollower consumes broadcasts at one server and serves UTC queries
// by interpolating the local DTP counter.
type UTCFollower struct {
	d *Daemon

	have     bool
	last     UTCBroadcast
	ratio    float64 // UTC ps per DTP unit
	updates  uint64  // ratio measurements folded in so far
	recvd    uint64
	stale    uint64
	residual float64 // EWMA of |prediction residual| at broadcast arrivals, ps

	mStale *telemetry.Counter
}

// residualGain is the EWMA gain for the |prediction residual| tracker.
// Residuals measure the follower's extrapolation error over exactly one
// broadcast interval, which is what the serving plane's error bound
// needs to cover between anchors.
const residualGain = 0.2

// NewUTCFollower attaches a follower to a local daemon.
func NewUTCFollower(d *Daemon) *UTCFollower {
	return &UTCFollower{d: d, ratio: float64(d.dev.Clock().NominalPeriodFs()) / 1e3}
}

// Instrument attaches telemetry: a counter of stale/duplicate broadcast
// pairs dropped without anchoring, labeled with the host name.
func (f *UTCFollower) Instrument(reg *telemetry.Registry) {
	f.mStale = reg.Counter("dtp_utc_stale_pairs_total",
		"UTC broadcast pairs with a non-advancing counter, dropped without anchoring.",
		"host", f.d.dev.Name())
}

func (f *UTCFollower) deliver(pair UTCBroadcast) {
	f.recvd++
	if f.have && pair.Counter <= f.last.Counter {
		// A non-advancing counter means a duplicated or reordered pair
		// (or a broadcaster whose daemon glitched backwards). Anchoring
		// on it would poison the interpolation base and a ratio update
		// would divide by <= 0, so the pair is dropped entirely.
		f.stale++
		f.mStale.Inc()
		return
	}
	if f.have {
		// Residual: how far the previous anchor+ratio extrapolation is
		// from the fresh pair — the follower's realized one-interval
		// prediction error, fed to the serving plane's error bound. The
		// first residual initializes the EWMA outright (it reflects the
		// nominal-ratio cold-start error, so the bound starts wide and
		// decays as the estimate converges).
		pred := f.last.UTC + (pair.Counter-f.last.Counter)*f.ratio
		res := math.Abs(pair.UTC - pred)
		if f.updates == 0 {
			f.residual = res
		} else {
			f.residual += residualGain * (res - f.residual)
		}

		inst := (pair.UTC - f.last.UTC) / (pair.Counter - f.last.Counter)
		if f.updates == 0 {
			// Snap to the first measurement: EWMA-ing away from the
			// nominal period would leave tens of ppm of error for many
			// broadcast rounds (counters run up to +100 ppm fast under
			// max-coupling).
			f.ratio = inst
		} else {
			// Light smoothing: broadcast pairs carry daemon read noise.
			f.ratio += 0.2 * (inst - f.ratio)
		}
		f.updates++
	}
	f.last = pair
	f.have = true
}

// Received returns the number of broadcasts consumed (including stale
// ones that were dropped without anchoring).
func (f *UTCFollower) Received() uint64 { return f.recvd }

// RatioUpdates returns how many ratio measurements have been folded in
// — a readiness signal for consumers that need a converged estimate
// (the serving plane's warmup gate).
func (f *UTCFollower) RatioUpdates() uint64 { return f.updates }

// StalePairs returns how many broadcasts carried a non-advancing
// counter and were dropped.
func (f *UTCFollower) StalePairs() uint64 { return f.stale }

// Ratio returns the estimated UTC picoseconds per DTP counter unit.
func (f *UTCFollower) Ratio() float64 { return f.ratio }

// ResidualPs returns the smoothed |prediction residual| observed at
// broadcast arrivals, in picoseconds: the follower's realized
// extrapolation error over one broadcast interval. Zero until two
// broadcasts have arrived.
func (f *UTCFollower) ResidualPs() float64 { return f.residual }

// Anchor returns the last accepted broadcast pair and whether one has
// arrived yet.
func (f *UTCFollower) Anchor() (UTCBroadcast, bool) { return f.last, f.have }

// AnchorErrUnits returns the broadcaster-reported error bound carried by
// the current anchor pair, in counter units (+Inf before the first
// broadcast).
func (f *UTCFollower) AnchorErrUnits() float64 {
	if !f.have {
		return math.Inf(1)
	}
	return f.last.ErrUnits
}

// UTC returns this server's UTC estimate (ps) at the current instant,
// or an error before the first broadcast.
func (f *UTCFollower) UTC() (float64, error) {
	if !f.have {
		return 0, fmt.Errorf("daemon: no UTC broadcast received yet")
	}
	return f.last.UTC + (f.d.Estimate()-f.last.Counter)*f.ratio, nil
}

// UTCErrorPs returns ground truth |UTC estimate - true time|, +Inf
// before the first broadcast.
func (f *UTCFollower) UTCErrorPs() float64 {
	utc, err := f.UTC()
	if err != nil {
		return math.Inf(1)
	}
	return math.Abs(utc - float64(f.d.sch.Now()))
}

// UTCSignedErrorPs returns the signed ground-truth error (estimate
// minus true time), +Inf before the first broadcast. Callers that need
// the error's direction (e.g. interval-coverage checks) use this;
// UTCErrorPs reports the magnitude its doc always promised.
func (f *UTCFollower) UTCSignedErrorPs() float64 {
	utc, err := f.UTC()
	if err != nil {
		return math.Inf(1)
	}
	return utc - float64(f.d.sch.Now())
}
