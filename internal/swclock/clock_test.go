package swclock

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/dtplab/dtp/internal/sim"
)

func TestClockZeroAtCreation(t *testing.T) {
	sch := sim.NewScheduler()
	sch.Run(5 * sim.Second)
	c := New(sch, 10)
	if c.Now() != 0 {
		t.Fatalf("new clock reads %v", c.Now())
	}
}

func TestClockRate(t *testing.T) {
	sch := sim.NewScheduler()
	c := New(sch, -100)
	sch.Run(sim.Second)
	want := 1e12 * (1 - 100e-6)
	if math.Abs(c.Now()-want) > 1 {
		t.Fatalf("clock at -100ppm after 1s: %v, want %v", c.Now(), want)
	}
}

func TestStepIsInstant(t *testing.T) {
	sch := sim.NewScheduler()
	c := New(sch, 0)
	sch.Run(sim.Millisecond)
	c.Step(12345)
	if math.Abs(c.Now()-(1e9+12345)) > 1e-3 {
		t.Fatalf("after step: %v", c.Now())
	}
}

func TestAdjFreqFromNow(t *testing.T) {
	sch := sim.NewScheduler()
	c := New(sch, 0)
	sch.Run(sim.Second)
	c.AdjFreq(-2000) // -2 ppm
	before := c.Now()
	sch.RunFor(sim.Second)
	gained := c.Now() - before
	want := 1e12 * (1 - 2e-6)
	if math.Abs(gained-want) > 1 {
		t.Fatalf("gained %v, want %v", gained, want)
	}
	if c.AdjPPB() != -2000 {
		t.Fatal("AdjPPB")
	}
}

func TestSetHwPPMKeepsPhase(t *testing.T) {
	sch := sim.NewScheduler()
	c := New(sch, 40)
	sch.Run(sim.Second)
	v := c.Now()
	c.SetHwPPM(-40)
	if math.Abs(c.Now()-v) > 1e-3 {
		t.Fatal("SetHwPPM moved the phase")
	}
	if c.HwPPM() != -40 {
		t.Fatal("HwPPM")
	}
}

// Property: the clock is monotone for any (bounded) sequence of positive
// frequency adjustments and forward time steps.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(adjs []int16, steps []uint16) bool {
		sch := sim.NewScheduler()
		c := New(sch, 0)
		prev := c.Now()
		n := len(adjs)
		if len(steps) < n {
			n = len(steps)
		}
		for i := 0; i < n; i++ {
			c.AdjFreq(float64(adjs[i])) // ±32k ppb, well under 1e9
			sch.RunFor(sim.Time(steps[i]+1) * sim.Microsecond)
			now := c.Now()
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
