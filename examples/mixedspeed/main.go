// Mixed speeds (§7): datacenters are not homogeneous — servers attach
// at 10 GbE (or 1 GbE) while switch uplinks run 40 or 100 GbE. DTP
// handles this by counting in a common 0.32 ns base unit: each port
// advances its counter by its speed's ∆ per cycle (Table 2), so one
// timescale spans the whole fabric. This example synchronizes a chain
// whose middle link is upgraded step by step: the provable 4-cycles-
// per-hop bound tightens with every upgrade, while the measured offset
// stays pinned by the (unchanged) 10 GbE host links.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/dtplab/dtp"
)

// perHopCycles is Table 2's Delta: base units per port cycle.
var perHopCycles = map[dtp.Speed]int64{
	dtp.Speed1G: 25, dtp.Speed10G: 20, dtp.Speed40G: 5, dtp.Speed100G: 2,
}

func run(core dtp.Speed) (worstNs, boundNs float64) {
	sys, err := dtp.New(dtp.Chain(3),
		dtp.WithSeed(9),
		dtp.WithMixedSpeeds(dtp.LinkSpeed{A: "sw1", B: "sw2", Speed: core}),
	)
	if err != nil {
		log.Fatal(err)
	}
	sys.Start()
	if err := sys.RunUntilSynced(time.Second); err != nil {
		log.Fatal(err)
	}
	var worst int64
	for i := 0; i < 100; i++ {
		sys.Run(2 * time.Millisecond)
		off, _ := sys.OffsetTicks("h0", "h1")
		if off < 0 {
			off = -off
		}
		if off > worst {
			worst = off
		}
	}
	boundUnits := 4 * (perHopCycles[dtp.Speed10G]*2 + perHopCycles[core])
	return float64(worst) * sys.TickNanos(), float64(boundUnits) * sys.TickNanos()
}

func main() {
	fmt.Println("two 10 GbE hosts, three hops; upgrading the switch interconnect:")
	fmt.Printf("%12s %20s %20s\n", "core link", "worst h0-h1 offset", "end-to-end bound")
	for _, core := range []dtp.Speed{dtp.Speed1G, dtp.Speed10G, dtp.Speed40G, dtp.Speed100G} {
		worst, bound := run(core)
		fmt.Printf("%12v %17.2f ns %17.2f ns\n", core, worst, bound)
	}
	fmt.Println("\nupgrading the core shrinks its contribution to the 4TD bound; the")
	fmt.Println("remaining offset is pinned by the 10 GbE host links — the §7 picture.")
}
