package sim

import "testing"

func TestSchedulerHighWaterPending(t *testing.T) {
	s := NewScheduler()
	if s.HighWaterPending() != 0 {
		t.Fatal("fresh scheduler has nonzero high water")
	}
	for i := 0; i < 10; i++ {
		s.At(Time(i+1), func() {})
	}
	if hw := s.HighWaterPending(); hw != 10 {
		t.Fatalf("high water %d after queuing 10, want 10", hw)
	}
	s.Drain()
	if s.Pending() != 0 {
		t.Fatal("drain left events queued")
	}
	// High water is a maximum: draining must not lower it.
	if hw := s.HighWaterPending(); hw != 10 {
		t.Fatalf("high water %d after drain, want 10", hw)
	}
}
