package experiments

import (
	"fmt"
	"math"
	"sort"

	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/daemon"
	"github.com/dtplab/dtp/internal/discipline"
	"github.com/dtplab/dtp/internal/par"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/stats"
	"github.com/dtplab/dtp/internal/topo"
)

// DisciplineRow is one cell of the discipline-comparison table: one
// estimator under one noise scenario.
type DisciplineRow struct {
	// Kind is the discipline spec ("ma", "pll", "theilsen", "lad").
	Kind string
	// Scenario names the noise regime (see disciplineScenarios).
	Scenario string
	// ConvergeMs is when the rolling-median offset first entered the
	// ±16-tick raw band and stayed for 10 consecutive calibrations,
	// in simulated milliseconds; -1 if it never did.
	ConvergeMs float64
	// P99Ticks is the worst of |Q99|,|Q01| of the raw per-calibration
	// offset over the second half of the run.
	P99Ticks float64
	// WorstTicks is the worst |offset| over the second half.
	WorstTicks float64
	// Dropped is how many calibration samples the discipline rejected
	// as outliers.
	Dropped uint64
	// ErrTicks is the discipline's final self-reported error estimate
	// (the value that feeds the timesvc ε budget); -1 while unbounded.
	ErrTicks float64
}

// disciplineScenario perturbs the daemon hardware model and/or the
// network's oscillators to stress a specific estimator weakness.
type disciplineScenario struct {
	name string
	// daemon mutates the (already compressed) daemon config.
	daemon func(daemon.Config) daemon.Config
	// network mutates the core config.
	network func(core.Config) core.Config
}

func disciplineScenarios() []disciplineScenario {
	return []disciplineScenario{
		{
			name:    "clean",
			daemon:  func(c daemon.Config) daemon.Config { return c },
			network: func(c core.Config) core.Config { return c },
		},
		{
			// Doubled lognormal spread and 4x the spike probability:
			// the Figure 7a outliers become routine, which separates
			// the outlier-robust estimators (Theil-Sen, LAD) from the
			// gain-based ones.
			name: "pcie-jitter",
			daemon: func(c daemon.Config) daemon.Config {
				c.PCIeSigma *= 2
				c.PCIeSpikeP *= 4
				return c
			},
			network: func(c core.Config) core.Config { return c },
		},
		{
			// Fast oscillator temperature wander: the NIC counter's
			// rate keeps moving, which separates the trackers (EWMA,
			// PLL) from the long-memory regressors.
			name:   "osc-wander",
			daemon: func(c daemon.Config) daemon.Config { return c },
			network: func(c core.Config) core.Config {
				c.WanderInterval = 10 * sim.Millisecond
				c.WanderStepPPB = 300
				return c
			},
		},
	}
}

// DisciplineSweep runs every discipline kind under every noise scenario
// (same topology, same seed, one daemon on s4) and tabulates
// convergence and steady-state precision. It is the experiment behind
// `dtpexp -sweep disciplines` and the DESIGN.md comparison table.
func DisciplineSweep(o Options) ([]DisciplineRow, error) {
	o = o.withDefaults(3*sim.Second, 0)
	kinds := discipline.Kinds()
	scenarios := disciplineScenarios()
	type combo struct {
		kind string
		sc   disciplineScenario
	}
	var combos []combo
	for _, sc := range scenarios {
		for _, k := range kinds {
			combos = append(combos, combo{kind: k, sc: sc})
		}
	}
	return par.Map(o.Jobs, len(combos), func(i int) (DisciplineRow, error) {
		c := combos[i]
		dc, err := discipline.Parse(c.kind)
		if err != nil {
			return DisciplineRow{}, err
		}
		sch := sim.NewScheduler()
		n, err := core.NewNetwork(sch, o.Seed, topo.PaperTree(), c.sc.network(core.DefaultConfig()))
		if err != nil {
			return DisciplineRow{}, err
		}
		n.Start()
		sch.Run(10 * sim.Millisecond)
		if !n.AllSynced() {
			return DisciplineRow{}, fmt.Errorf("experiments: network failed to synchronize")
		}
		dev, err := n.DeviceByName("s4")
		if err != nil {
			return DisciplineRow{}, err
		}
		d, err := daemon.Attach(dev, daemon.Options{
			Config:     c.sc.daemon(daemon.DefaultConfig().Compressed(daemonCompression)),
			Discipline: dc,
		}, o.Seed+20)
		if err != nil {
			return DisciplineRow{}, err
		}
		var offs []float64
		var when []sim.Time
		start := sch.Now()
		d.OnSample = func(off float64) {
			offs = append(offs, off)
			when = append(when, sch.Now()-start)
		}
		d.Start()
		sch.RunFor(o.Duration)
		row := DisciplineRow{Kind: c.kind, Scenario: c.sc.name, ConvergeMs: -1}
		row.Dropped = d.DroppedSamples()
		row.ErrTicks = d.EstimateErrorUnits()
		if math.IsInf(row.ErrTicks, 0) {
			row.ErrTicks = -1
		}
		// Steady-state precision over the second half.
		half := stats.NewSummary(0)
		for _, v := range offs[len(offs)/2:] {
			half.Add(v)
			if v < 0 {
				v = -v
			}
			if v > row.WorstTicks {
				row.WorstTicks = v
			}
		}
		row.P99Ticks = quantileAbs(half, 0.99)
		// Convergence: the window-7 rolling median (spike-immune) must
		// enter the paper's ±16-tick raw band and hold for 10
		// consecutive calibrations.
		const medWin, band, hold = 7, 16.0, 10
		win := make([]float64, 0, medWin)
		run := 0
		for i := medWin - 1; i < len(offs); i++ {
			win = win[:0]
			win = append(win, offs[i-medWin+1:i+1]...)
			sort.Float64s(win)
			if math.Abs(win[medWin/2]) > band {
				run = 0
				continue
			}
			if run++; run == hold {
				row.ConvergeMs = when[i-hold+1].Seconds() * 1e3
				break
			}
		}
		return row, nil
	})
}
