// Package chaos is a deterministic fault-injection engine for DTP
// networks. A declarative Scenario — built in Go or loaded from JSON
// (dtpsim -chaos scenario.json) — compiles into ordinary scheduler
// events that degrade a live simulation: link flaps with Markov up/down
// holding times, BER bursts and permanent BER degradation, grey
// failures (one-direction block loss, growing delay asymmetry),
// oscillator frequency steps and temperature ramps, and full device
// crash/restart cycles.
//
// Everything is reproducible: each fault owns an RNG stream derived
// from the run seed and the fault's index, so the same scenario on the
// same seed produces byte-identical traces, and editing one fault never
// perturbs the randomness of another.
//
// The engine closes the loop with internal/audit: every injected fault
// registers an expected-degradation window with the auditor, so a chaos
// campaign can assert the strong property "zero bound violations except
// where a declared fault was active" and, after the last fault clears,
// that the network reconverged within the scenario's deadline.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/dtplab/dtp/internal/sim"
)

// Duration is a sim.Time that marshals to/from Go duration strings
// ("150us", "2ms") so scenario JSON stays human-readable.
type Duration struct {
	T sim.Time
}

// D wraps a sim.Time for scenario literals built in Go.
func D(t sim.Time) Duration { return Duration{T: t} }

// MarshalJSON renders the duration as a Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.T.Std().String())
}

// UnmarshalJSON accepts a Go duration string or a bare number of
// nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		sd, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("chaos: bad duration %q: %w", s, err)
		}
		if sd < 0 {
			return fmt.Errorf("chaos: negative duration %q", s)
		}
		d.T = sim.FromStd(sd)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("chaos: duration must be a string like \"150us\" or nanoseconds: %s", b)
	}
	if ns < 0 {
		return fmt.Errorf("chaos: negative duration %d", ns)
	}
	d.T = sim.Time(ns) * sim.Nanosecond
	return nil
}

// Fault kinds.
const (
	// KindFlap bounces a link up and down with exponentially
	// distributed holding times (MeanUp / MeanDown) for Duration, then
	// leaves it up.
	KindFlap = "flap"
	// KindBERBurst raises both directions of a link to BER for
	// Duration, then restores the original rates.
	KindBERBurst = "ber_burst"
	// KindBERDegrade permanently degrades both directions to BER
	// (Duration is ignored; the fault never clears).
	KindBERDegrade = "ber_degrade"
	// KindGreyLoss silently drops LossP of blocks in one direction
	// (Link[0] -> Link[1]) for Duration — the link stays "up".
	KindGreyLoss = "grey_loss"
	// KindGreyDelay linearly grows one direction's propagation delay by
	// ExtraDelay over Duration (in Steps increments), then restores it:
	// a growing delay asymmetry the INIT measurement never sees.
	KindGreyDelay = "grey_delay"
	// KindFreqStep steps a device oscillator by PPMStep (clamped to the
	// clock's ±MaxPPM) for Duration, then restores the original offset.
	// Duration 0 makes the step permanent.
	KindFreqStep = "freq_step"
	// KindTempRamp ramps a device oscillator by PPMStep over Duration
	// in Steps increments (temperature drift), then snaps back.
	KindTempRamp = "temp_ramp"
	// KindCrash power-cycles a device: at At every port (and its peer
	// port — the PHY loses signal) goes down and all protocol state and
	// counter content is lost; after Duration the device restarts from
	// counter zero and rejoins through INIT and BEACON-JOIN.
	KindCrash = "crash"

	// Adversarial kinds (Byzantine faults). Unlike the accidental faults
	// above they register no expected-degradation window with the
	// auditor: a hardened fabric is supposed to withstand them, so every
	// bound violation they cause counts as unexcused.

	// KindLiar makes a device lie: every Cadence (jittered by the
	// fault's RNG stream) it inflates its outgoing counter by a further
	// JumpUnits and pushes the lie through the otherwise unguarded
	// BEACON-JOIN path on all synced ports, for Duration. Plain DTP
	// adopts each JOIN fabric-wide; hardened admission rejects them and
	// quarantines the liar's links. The device's real counter stays
	// honest — the lie exists only on the wire.
	KindLiar = "liar"
	// KindOverclaim is the liar's stealthy sibling: the device ratchets
	// its outgoing counter by JumpUnits per Cadence through ordinary
	// BEACONs only, sized to stay just under the naive bit-error guard,
	// so each message looks plausible while the cumulative rate is far
	// beyond any honest oscillator. Bounded-jump admission catches the
	// cumulative drift the per-message guard cannot.
	KindOverclaim = "overclaim"
	// KindSpoof models an on-path attacker forging BEACONs on a cable:
	// every Cadence for Duration a counterfeit beacon claiming the
	// receiver's counter plus JumpUnits is injected toward Link[1] (the
	// attacker impersonates Link[0]).
	KindSpoof = "beacon_spoof"
)

// Fault is one declarative fault. Link faults name the two adjacent
// devices of the cable; device faults name the device.
type Fault struct {
	Kind string `json:"kind"`

	// Link identifies a cable by its two adjacent device names. For
	// directional faults (grey_loss, grey_delay) the impaired direction
	// is Link[0] -> Link[1].
	Link []string `json:"link,omitempty"`
	// Device identifies a device (freq_step, temp_ramp, crash).
	Device string `json:"device,omitempty"`

	// At is when the fault starts; Duration how long it lasts (0 =
	// permanent, where the kind allows it).
	At       Duration `json:"at"`
	Duration Duration `json:"duration,omitempty"`

	// MeanUp / MeanDown are the Markov holding-time means for flap.
	MeanUp   Duration `json:"mean_up,omitempty"`
	MeanDown Duration `json:"mean_down,omitempty"`

	// BER is the injected bit error rate (ber_burst, ber_degrade).
	BER float64 `json:"ber,omitempty"`
	// LossP is the injected block-loss probability (grey_loss).
	LossP float64 `json:"loss_p,omitempty"`
	// ExtraDelay is the added one-way delay at full ramp (grey_delay).
	ExtraDelay Duration `json:"extra_delay,omitempty"`
	// PPMStep is the frequency change in ppm (freq_step, temp_ramp).
	PPMStep float64 `json:"ppm_step,omitempty"`
	// Steps is the ramp granularity for grey_delay / temp_ramp
	// (default 10).
	Steps int `json:"steps,omitempty"`

	// JumpUnits is the counter inflation per firing, in counter units
	// (liar, overclaim, beacon_spoof).
	JumpUnits int64 `json:"jump_units,omitempty"`
	// Cadence is the mean interval between adversarial firings (liar,
	// overclaim, beacon_spoof); exact instants are jittered by the
	// fault's RNG stream.
	Cadence Duration `json:"cadence,omitempty"`
}

// permanent reports whether the fault never clears.
func (f *Fault) permanent() bool {
	return f.Kind == KindBERDegrade || (f.Kind == KindFreqStep && f.Duration.T == 0)
}

// adversarial reports whether the fault models an attacker rather than
// an accident. Adversarial faults register no expected-degradation
// window with the auditor — see the kind constants above.
func (f *Fault) adversarial() bool {
	switch f.Kind {
	case KindLiar, KindOverclaim, KindSpoof:
		return true
	}
	return false
}

// target names what the fault hits, for traces and error messages.
func (f *Fault) target() string {
	if len(f.Link) == 2 {
		return f.Link[0] + "-" + f.Link[1]
	}
	return f.Device
}

// Scenario is a full fault-injection campaign.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// SettleGrace extends every fault's expected-degradation window
	// past its clearing time: the protocol needs a re-INIT and a JOIN
	// round to pull a disturbed subnet back in bound (default 500 µs).
	SettleGrace Duration `json:"settle_grace,omitempty"`

	// ReconvergeDeadline is how long after the last fault clears (plus
	// SettleGrace) the network must be fully synchronized and in bound
	// again for Verify to pass (default 10 ms).
	ReconvergeDeadline Duration `json:"reconverge_deadline,omitempty"`

	Faults []Fault `json:"faults"`
}

// Load reads and validates a scenario from a JSON file.
func Load(path string) (*Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	var sc Scenario
	if err := json.Unmarshal(b, &sc); err != nil {
		return nil, fmt.Errorf("chaos: %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: %s: %w", path, err)
	}
	return &sc, nil
}

// fillDefaults applies scenario-level defaults.
func (sc *Scenario) fillDefaults() {
	if sc.SettleGrace.T == 0 {
		sc.SettleGrace = D(500 * sim.Microsecond)
	}
	if sc.ReconvergeDeadline.T == 0 {
		sc.ReconvergeDeadline = D(10 * sim.Millisecond)
	}
}

// Validate checks every fault for structural errors (unknown kinds,
// missing targets, out-of-range probabilities) without touching a
// network; target names are resolved later by Engine.Schedule.
func (sc *Scenario) Validate() error {
	if len(sc.Faults) == 0 {
		return fmt.Errorf("scenario %q has no faults", sc.Name)
	}
	for i := range sc.Faults {
		if err := sc.Faults[i].validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

func (f *Fault) validate() error {
	needLink := func() error {
		if len(f.Link) != 2 || f.Link[0] == "" || f.Link[1] == "" {
			return fmt.Errorf("%s requires \"link\": [a, b]", f.Kind)
		}
		return nil
	}
	needDevice := func() error {
		if f.Device == "" {
			return fmt.Errorf("%s requires \"device\"", f.Kind)
		}
		return nil
	}
	needDuration := func() error {
		if f.Duration.T <= 0 {
			return fmt.Errorf("%s requires a positive \"duration\"", f.Kind)
		}
		return nil
	}
	switch f.Kind {
	case KindFlap:
		if err := needLink(); err != nil {
			return err
		}
		if err := needDuration(); err != nil {
			return err
		}
		if f.MeanUp.T <= 0 || f.MeanDown.T <= 0 {
			return fmt.Errorf("flap requires positive mean_up and mean_down")
		}
	case KindBERBurst, KindBERDegrade:
		if err := needLink(); err != nil {
			return err
		}
		if f.BER <= 0 || f.BER >= 1 {
			return fmt.Errorf("%s requires \"ber\" in (0, 1)", f.Kind)
		}
		if f.Kind == KindBERBurst {
			if err := needDuration(); err != nil {
				return err
			}
		}
	case KindGreyLoss:
		if err := needLink(); err != nil {
			return err
		}
		if err := needDuration(); err != nil {
			return err
		}
		if f.LossP <= 0 || f.LossP > 1 {
			return fmt.Errorf("grey_loss requires \"loss_p\" in (0, 1]")
		}
	case KindGreyDelay:
		if err := needLink(); err != nil {
			return err
		}
		if err := needDuration(); err != nil {
			return err
		}
		if f.ExtraDelay.T <= 0 {
			return fmt.Errorf("grey_delay requires a positive \"extra_delay\"")
		}
	case KindFreqStep:
		if err := needDevice(); err != nil {
			return err
		}
		if f.PPMStep == 0 {
			return fmt.Errorf("freq_step requires a nonzero \"ppm_step\"")
		}
	case KindTempRamp:
		if err := needDevice(); err != nil {
			return err
		}
		if err := needDuration(); err != nil {
			return err
		}
		if f.PPMStep == 0 {
			return fmt.Errorf("temp_ramp requires a nonzero \"ppm_step\"")
		}
	case KindCrash:
		if err := needDevice(); err != nil {
			return err
		}
		if err := needDuration(); err != nil {
			return err
		}
	case KindLiar, KindOverclaim:
		if err := needDevice(); err != nil {
			return err
		}
		if err := needDuration(); err != nil {
			return err
		}
		if f.JumpUnits <= 0 {
			return fmt.Errorf("%s requires a positive \"jump_units\"", f.Kind)
		}
		if f.Cadence.T <= 0 {
			return fmt.Errorf("%s requires a positive \"cadence\"", f.Kind)
		}
	case KindSpoof:
		if err := needLink(); err != nil {
			return err
		}
		if err := needDuration(); err != nil {
			return err
		}
		if f.JumpUnits <= 0 {
			return fmt.Errorf("%s requires a positive \"jump_units\"", f.Kind)
		}
		if f.Cadence.T <= 0 {
			return fmt.Errorf("%s requires a positive \"cadence\"", f.Kind)
		}
	default:
		return fmt.Errorf("unknown fault kind %q", f.Kind)
	}
	if f.Steps < 0 {
		return fmt.Errorf("%s: negative steps", f.Kind)
	}
	return nil
}
