// Package daemon models software access to the DTP counter (§5.1 and
// Figure 7): a per-server daemon reads the NIC's DTP counter over PCIe
// (memory-mapped I/O with long-tailed latency), disciplines a
// TSC-derived software clock to it, and serves get_DTP_counter()
// estimates by interpolation. The paper measures the raw estimate
// within ±16 ticks (~102 ns) of the hardware counter, and within
// ±4 ticks (~25.6 ns) after a 10-sample moving average.
package daemon

import (
	"fmt"
	"math"

	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/swclock"
	"github.com/dtplab/dtp/internal/telemetry"
)

// Config models the host hardware.
type Config struct {
	// CalInterval is how often the daemon reads the NIC counter over
	// PCIe to recalibrate (paper: about once per second).
	CalInterval sim.Time
	// PCIeMedian / PCIeSigma parameterize the lognormal MMIO read
	// round-trip latency.
	PCIeMedian sim.Time
	PCIeSigma  float64
	// PCIeSpikeP is the probability a read hits bus contention and
	// takes PCIeSpike extra — the spikes visible in Figure 7a.
	PCIeSpikeP float64
	PCIeSpike  sim.Time
	// TSCPPM is the half-range of the CPU TSC frequency error relative
	// to nominal; invariant TSCs are stable but not perfectly accurate.
	TSCPPM float64
	// RatioGain is the EWMA gain for the DTP-per-TSC frequency ratio
	// estimate.
	RatioGain float64
}

// DefaultConfig matches the paper's setup.
func DefaultConfig() Config {
	return Config{
		CalInterval: sim.Second,
		PCIeMedian:  450 * sim.Nanosecond,
		PCIeSigma:   0.15,
		PCIeSpikeP:  0.005,
		PCIeSpike:   1500 * sim.Nanosecond,
		TSCPPM:      20,
		RatioGain:   0.2,
	}
}

// Compressed scales the calibration interval by 1/k for compressed-time
// experiments.
func (c Config) Compressed(k int64) Config {
	if k > 1 {
		c.CalInterval /= sim.Time(k)
	}
	return c
}

// Daemon is the per-server DTP daemon.
type Daemon struct {
	dev *core.Device
	sch *sim.Scheduler
	rng *sim.RNG
	cfg Config

	tsc *swclock.Clock // invariant TSC as a ps-domain clock

	// Calibration state: DTP counter (units) anchored to a TSC reading,
	// plus the estimated ratio of DTP units per TSC picosecond. The
	// ratio is measured against an anchor several calibrations old —
	// a longer baseline divides the per-read latch noise.
	haveCal   bool
	calDTP    float64
	calTSC    float64
	anchorErr float64 // worst-case anchor error, units (see EstimateErrorUnits)
	ratio     float64 // units per TSC ps
	calCount  uint64
	history   []calPoint

	stopped bool

	// OnSample, if set, receives offset_sw = estimate - hardware
	// counter, in units, at each calibration (the §6.2 measurement).
	OnSample func(offsetUnits float64)

	// Telemetry handles (nil when uninstrumented; see Instrument).
	cals    *telemetry.Counter
	offHist *telemetry.Histogram
	tr      *telemetry.Tracer
}

// New attaches a daemon to a DTP device.
func New(dev *core.Device, cfg Config, seed uint64) *Daemon {
	sch := dev.Clock().Scheduler()
	rng := sim.NewRNG(seed, fmt.Sprintf("daemon/%s", dev.Name()))
	d := &Daemon{
		dev: dev, sch: sch, rng: rng, cfg: cfg,
		tsc: swclock.New(sch, rng.Uniform(-cfg.TSCPPM, cfg.TSCPPM)),
	}
	// Nominal ratio: one DTP unit per unit duration.
	d.ratio = 1e3 / float64(dev.Clock().NominalPeriodFs())
	return d
}

// Instrument attaches telemetry: a calibration counter and a software-
// offset histogram labeled with the host name, plus daemon_cal trace
// events (V1 = offset in milli-units, V2 = calibration count). Either
// argument may be nil.
func (d *Daemon) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	host := d.dev.Name()
	d.cals = reg.Counter("dtp_daemon_calibrations_total",
		"PCIe calibration reads completed by the DTP daemon.", "host", host)
	d.offHist = reg.Histogram("dtp_daemon_offset_units",
		"Daemon software offset (estimate - hardware counter) in counter units (Fig. 7).",
		telemetry.LinearBuckets(-20, 2, 21), "host", host)
	d.tr = tr
}

// OffsetHistogram returns the instrumented software-offset histogram
// (nil until Instrument is called). Callers use it to report quantiles
// without wiring their own OnSample accumulators.
func (d *Daemon) OffsetHistogram() *telemetry.Histogram { return d.offHist }

// Start begins periodic calibration.
func (d *Daemon) Start() {
	d.stopped = false
	d.sch.After(d.rng.UniformTime(0, d.cfg.CalInterval), d.calibrate)
}

// Stop halts calibration (estimates keep extrapolating).
func (d *Daemon) Stop() { d.stopped = true }

// Calibrations returns how many PCIe reads have completed.
func (d *Daemon) Calibrations() uint64 { return d.calCount }

// readLatency draws one PCIe MMIO round-trip.
func (d *Daemon) readLatency() sim.Time {
	ns := d.rng.LogNormal(math.Log(float64(d.cfg.PCIeMedian)), d.cfg.PCIeSigma)
	lat := sim.Time(ns)
	if d.rng.Bool(d.cfg.PCIeSpikeP) {
		lat += d.rng.UniformTime(0, d.cfg.PCIeSpike)
	}
	return lat
}

type calPoint struct{ dtp, tsc float64 }

// ratioBaseline is how many calibrations back the frequency-ratio anchor
// sits: a longer baseline divides per-read latch noise into the ratio.
const ratioBaseline = 10

// The NIC latches the counter somewhere within the PCIe read; the
// daemon assumes the window midpoint. The latch point stays within
// latchMidFrac ± latchHalfRangeFrac of the measured read duration (the
// kind of bound a NIC datasheet specifies), so the daemon can bound its
// own anchor error from the latency it just measured — the same move
// NTP makes with RTT/2.
const (
	latchMidFrac       = 0.5
	latchHalfRangeFrac = 0.1
)

// ratioSlackPPM bounds the frequency-ratio estimation error: the ratio
// is an EWMA over a ratioBaseline-calibration window, so per-read latch
// noise divided by the baseline leaves well under a ppm in steady state;
// PCIe spike samples push it to a few ppm transiently.
const ratioSlackPPM = 5

// calibrate performs one MMIO read of the NIC's DTP counter and updates
// the TSC->DTP mapping.
func (d *Daemon) calibrate() {
	if d.stopped {
		return
	}
	issue := d.sch.Now()
	lat := d.readLatency()
	// The NIC latches the counter at some point within the read. The
	// daemon measures the read duration with the TSC and assumes the
	// midpoint; the latch point's deviation from the midpoint becomes
	// estimation error — the Figure 7a noise, largest on the PCIe
	// contention spikes.
	latchFrac := d.rng.Uniform(latchMidFrac-latchHalfRangeFrac, latchMidFrac+latchHalfRangeFrac)
	latchAt := issue + sim.Time(float64(lat)*latchFrac)
	latched := d.dev.GlobalCounterAt(latchAt)
	d.sch.At(issue+lat, func() {
		tscMid := d.tsc.At(issue + lat/2)
		sample := float64(latched)
		d.history = append(d.history, calPoint{sample, tscMid})
		if len(d.history) > ratioBaseline+1 {
			d.history = d.history[1:]
		}
		if anchor := d.history[0]; tscMid > anchor.tsc {
			instRatio := (sample - anchor.dtp) / (tscMid - anchor.tsc)
			d.ratio += d.cfg.RatioGain * (instRatio - d.ratio)
		}
		d.calDTP = sample
		d.calTSC = tscMid
		d.anchorErr = latchHalfRangeFrac * float64(lat) * d.ratio
		d.haveCal = true
		d.calCount++
		d.cals.Inc()
		if d.OnSample != nil || d.offHist != nil || d.tr.Enabled(telemetry.KindDaemonCal) {
			est := d.EstimateAt(d.sch.Now())
			truth := float64(d.dev.GlobalCounterAt(d.sch.Now()))
			off := est - truth
			d.offHist.Observe(off)
			if d.tr.Enabled(telemetry.KindDaemonCal) {
				d.tr.Record(d.sch.Now(), telemetry.KindDaemonCal, d.dev.Name(),
					int64(off*1000), int64(d.calCount), "")
			}
			if d.OnSample != nil {
				d.OnSample(off)
			}
		}
		d.sch.After(d.cfg.CalInterval, d.calibrate)
	})
}

// EstimateAt returns the daemon's get_DTP_counter() estimate (in counter
// units, fractional) at time t, interpolated from the TSC.
func (d *Daemon) EstimateAt(t sim.Time) float64 {
	if !d.haveCal {
		return 0
	}
	return d.calDTP + (d.tsc.At(t)-d.calTSC)*d.ratio
}

// Estimate returns the current get_DTP_counter() value.
func (d *Daemon) Estimate() float64 { return d.EstimateAt(d.sch.Now()) }

// OffsetUnits returns ground truth: estimate minus hardware counter, in
// counter units (offset_sw of §6.2).
func (d *Daemon) OffsetUnits() float64 {
	now := d.sch.Now()
	return d.EstimateAt(now) - float64(d.dev.GlobalCounterAt(now))
}

// Device returns the attached DTP device.
func (d *Daemon) Device() *core.Device { return d.dev }

// TSC returns the daemon's raw timebase: the invariant-TSC software
// clock its estimates interpolate from. The serving plane anchors its
// published snapshots in this clock's domain so fast-path readers never
// touch the daemon itself.
func (d *Daemon) TSC() *swclock.Clock { return d.tsc }

// Ratio returns the estimated DTP counter units per TSC picosecond.
func (d *Daemon) Ratio() float64 { return d.ratio }

// Calibrated reports whether at least one PCIe calibration completed
// (before that, estimates are meaningless zeros).
func (d *Daemon) Calibrated() bool { return d.haveCal }

// EstimateErrorUnits returns a conservative bound on the current
// estimate's error versus the hardware counter, in counter units: the
// calibration anchor's worst-case latch error (half-range of the latch
// window over the measured PCIe read) plus frequency-ratio slack
// accumulated since the calibration. It is adaptive — a contention
// spike widens the bound for exactly one calibration interval — and
// +Inf before the first calibration. The serving plane
// (internal/timesvc) folds it into published interval half-widths.
func (d *Daemon) EstimateErrorUnits() float64 {
	if !d.haveCal {
		return math.Inf(1)
	}
	elapsed := d.tsc.Now() - d.calTSC // TSC ps since calibration
	if elapsed < 0 {
		elapsed = 0
	}
	return d.anchorErr + ratioSlackPPM*1e-6*elapsed*d.ratio
}
