package dtp

// Seed-engine baseline for the BENCH_8 events/sec trajectory (see
// perf_bench_test.go). Measured on the dev container (1 CPU) at the
// commit below by running BenchmarkEngineFattree8's exact workload —
// fattree:8, beacon interval 60000 ticks, 10 simulated seconds — on the
// seed engine: container/heap scheduler, one *Event allocation per
// schedule, per-beacon closure chains in internal/core. Override with
// BENCH8_SEED_EPS when benchmarking on different hardware.
const (
	seedBaselineEventsPerSec = 2_612_138
	seedBaselineCommit       = "ba7970f"
)
