package experiments

import (
	"testing"

	"github.com/dtplab/dtp/internal/sim"
)

// Short-window options keep the test suite fast; benches run longer.
func short() Options {
	return Options{Seed: 42, Duration: 300 * sim.Millisecond}
}

func TestFig6aBounded(t *testing.T) {
	res, err := Fig6a(short())
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAbsTicks > 4 {
		t.Fatalf("Fig6a: offset samples reached %.1f ticks, paper bound 4", res.MaxAbsTicks)
	}
	if res.MaxTrueTicks > 4 {
		t.Fatalf("Fig6a: true adjacent offset %d ticks", res.MaxTrueTicks)
	}
	if len(res.PairSummaries) < 8 {
		t.Fatalf("only %d pairs sampled", len(res.PairSummaries))
	}
	for name, s := range res.PairSummaries {
		if s.N() == 0 {
			t.Fatalf("pair %s has no samples", name)
		}
	}
	for _, sr := range res.PairSeries {
		if sr.Len() == 0 {
			t.Fatal("empty series")
		}
	}
}

func TestFig6bBounded(t *testing.T) {
	res, err := Fig6b(short())
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAbsTicks > 4 || res.MaxTrueTicks > 4 {
		t.Fatalf("Fig6b exceeded bound: samples %.1f true %d", res.MaxAbsTicks, res.MaxTrueTicks)
	}
}

func TestFig6cDistributionShape(t *testing.T) {
	res, err := Fig6c(Options{Seed: 7, Duration: 500 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 6c plots s3's pairs: distributions concentrated within
	// [-4, 4] with total mass 1.
	for _, name := range []string{"s3-s9", "s3-s10", "s3-s11", "s3-s0"} {
		h := res.Hist[name]
		if h == nil || h.Total() == 0 {
			t.Fatalf("no distribution for %s", name)
		}
		lo, hi := h.Range()
		if lo < -4 || hi > 4 {
			t.Fatalf("%s distribution spans [%d, %d]", name, lo, hi)
		}
		_, probs := h.PDF()
		sum := 0.0
		for _, p := range probs {
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s PDF mass %f", name, sum)
		}
	}
}

func TestFig6dIdlePTP(t *testing.T) {
	res, err := Fig6d(Options{Seed: 3, Duration: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstNs > 1000 {
		t.Fatalf("idle PTP %.0f ns, want hundreds", res.WorstNs)
	}
	if res.WorstNs < 5 {
		t.Fatalf("idle PTP %.1f ns implausibly tight", res.WorstNs)
	}
	if len(res.ClientSummaries) != 8 {
		t.Fatalf("%d clients", len(res.ClientSummaries))
	}
}

func TestPTPLoadOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy packet simulation")
	}
	idle, err := Fig6d(Options{Seed: 5, Duration: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	med, err := Fig6e(Options{Seed: 5, Duration: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Fig6f(Options{Seed: 5, Duration: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("idle %.0f ns, medium %.0f ns, heavy %.0f ns", idle.WorstNs, med.WorstNs, heavy.WorstNs)
	if !(idle.WorstNs < med.WorstNs && med.WorstNs < heavy.WorstNs) {
		t.Fatal("load ordering violated")
	}
	if med.WorstNs < 2_000 || heavy.WorstNs < 20_000 {
		t.Fatal("degradation magnitudes below paper's regime")
	}
}

func TestFig7DaemonPrecision(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; run without -short")
	}
	res, err := Fig7(Options{Seed: 11, Duration: 2 * sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.RawP95 > 16 {
		t.Fatalf("raw daemon offset p99 %.1f ticks, paper: usually <= 16", res.RawP95)
	}
	if res.SmoothedP95 > 4 {
		t.Fatalf("smoothed daemon offset p99 %.1f ticks, paper: usually <= 4", res.SmoothedP95)
	}
	if len(res.Raw) != 6 {
		t.Fatalf("%d servers sampled", len(res.Raw))
	}
}

func TestTable2SpeedBounds(t *testing.T) {
	rows, err := Table2(Options{Seed: 13, Duration: 200 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MeasuredBoundNs > r.BoundNs {
			t.Fatalf("%v: measured %.2f ns > bound %.2f ns", r.Profile.Speed, r.MeasuredBoundNs, r.BoundNs)
		}
		if r.MeasuredBoundNs == 0 {
			t.Fatalf("%v: no measurement", r.Profile.Speed)
		}
	}
}

func TestBoundSweepScaling(t *testing.T) {
	rows, err := BoundSweep(Options{Seed: 17, Duration: 200 * sim.Millisecond}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.SettledPairs {
			t.Fatalf("chain(%d) did not settle", r.Hops)
		}
		if !r.WithinBound {
			t.Fatalf("chain(%d): %d ticks > bound %d", r.Hops, r.MaxTicks, r.BoundTicks)
		}
	}
	// The six-hop fat-tree bound from the abstract: 153.6 ns.
	last := rows[len(rows)-1]
	if last.BoundNs < 153.59 || last.BoundNs > 153.61 {
		t.Fatalf("6-hop bound %.3f ns, want 153.6", last.BoundNs)
	}
}

func TestAblationAlphaShowsRatchet(t *testing.T) {
	rows, err := AblationAlpha(Options{Seed: 19, Duration: 500 * sim.Millisecond}, []int64{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	// α=0 overestimates the OWD and must ratchet the global counter
	// beyond the fastest oscillator; α=3 must not.
	if rows[0].RatchetPPM < 0.5 {
		t.Fatalf("alpha=0 ratchet %.3f ppm; expected clearly positive", rows[0].RatchetPPM)
	}
	if rows[1].RatchetPPM > 0.2 {
		t.Fatalf("alpha=3 ratchet %.3f ppm; should be ~0", rows[1].RatchetPPM)
	}
}

func TestAblationBeaconInterval(t *testing.T) {
	rows, err := AblationBeaconInterval(Options{Seed: 23, Duration: 500 * sim.Millisecond},
		[]uint64{200, 4000, 60000})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].MaxOffsetTicks > 4 || rows[1].MaxOffsetTicks > 4 {
		t.Fatalf("intervals within the 5000-tick analysis limit exceeded 4 ticks: %+v", rows[:2])
	}
	if rows[2].MaxOffsetTicks <= 4 {
		t.Fatalf("interval 60000 stayed at %d ticks; drift should exceed the bound", rows[2].MaxOffsetTicks)
	}
}

func TestSyncEFreezesOffsets(t *testing.T) {
	res, err := AblationSyncE(Options{Seed: 3, Duration: 300 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// §8: frequency synchronization removes the residual oscillation;
	// offsets become static while free-running clocks wobble.
	if res.SyntonizedSpreadTicks >= res.FreeRunSpreadTicks {
		t.Fatalf("syntonized spread %d not tighter than free-run %d",
			res.SyntonizedSpreadTicks, res.FreeRunSpreadTicks)
	}
	if res.SyntonizedSpreadTicks > 1 {
		t.Fatalf("syntonized offsets still moving: spread %d ticks", res.SyntonizedSpreadTicks)
	}
	if res.FreeRunSpreadTicks == 0 {
		t.Fatal("free-run spread zero — skew not simulated?")
	}
}

func TestBCCascadeDegrades(t *testing.T) {
	rows, err := AblationBCCascade(Options{Seed: 3, Duration: 2 * sim.Second}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// §2.4.2: boundary-clock errors cascade. Each level must add error;
	// three levels should clearly exceed a direct client.
	for i := 1; i < len(rows); i++ {
		if rows[i].P99Ns < rows[0].P99Ns {
			t.Fatalf("level %d p99 %.0f ns better than direct %.0f ns",
				rows[i].Levels, rows[i].P99Ns, rows[0].P99Ns)
		}
	}
	if rows[3].P99Ns < 2*rows[0].P99Ns {
		t.Fatalf("3-level cascade p99 %.0f ns not clearly worse than direct %.0f ns",
			rows[3].P99Ns, rows[0].P99Ns)
	}
}

func TestMixedSpeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; run without -short")
	}
	rows, err := MixedSpeedSweep(Options{Seed: 37, Duration: 120 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MaxUnits > r.BoundUnits {
			t.Fatalf("core %v: %d units > bound %d", r.Core, r.MaxUnits, r.BoundUnits)
		}
		if r.MaxUnits == 0 {
			t.Fatalf("core %v: no offset movement — suspicious", r.Core)
		}
	}
}

func TestIncrementalDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation; run without -short")
	}
	res, err := IncrementalDeployment(Options{Seed: 31, Duration: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("intra %.1f ns, inter %.1f ns, merged %.1f ns",
		res.IntraRackWorstNs, res.InterRackWorstNs, res.MergedWorstNs)
	// §5.3: within a DTP rack servers are ns-synchronized; across racks
	// precision is whatever PTP gives the masters; DTP-enabling the
	// aggregation layer restores ns everywhere.
	if res.IntraRackWorstNs > 2*25.6 {
		t.Fatalf("intra-rack %.1f ns; expected DTP-class", res.IntraRackWorstNs)
	}
	if res.InterRackWorstNs < 2*res.IntraRackWorstNs {
		t.Fatalf("inter-rack %.1f ns not clearly worse than intra %.1f ns",
			res.InterRackWorstNs, res.IntraRackWorstNs)
	}
	if res.MergedWorstNs > 4*4*6.4 { // 4TD with diameter 4
		t.Fatalf("merged network %.1f ns exceeds 4TD", res.MergedWorstNs)
	}
}

func TestAblationMasterMode(t *testing.T) {
	res, err := AblationMasterMode(Options{Seed: 3, Duration: 400 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// The defining behavioural difference: max mode runs at the fastest
	// oscillator in the network (+100 ppm), master mode at the root's
	// (-100 ppm).
	if res.MaxModeRatePPM < 95 {
		t.Fatalf("max mode rate %.1f ppm; should track the +100 ppm clock", res.MaxModeRatePPM)
	}
	if res.MasterModeRatePPM > -95 {
		t.Fatalf("master mode rate %.1f ppm; should track the -100 ppm root", res.MasterModeRatePPM)
	}
	// Both modes keep adjacent offsets tightly bounded.
	if res.MaxModeOffsetTicks > 4 || res.MasterModeOffsetTicks > 6 {
		t.Fatalf("offsets: max mode %d, master mode %d", res.MaxModeOffsetTicks, res.MasterModeOffsetTicks)
	}
}

func TestAblationCDC(t *testing.T) {
	rows, err := AblationCDC(Options{Seed: 29, Duration: 300 * sim.Millisecond}, []int{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	// More FIFO stages -> more measurement slack; the offset envelope
	// must not shrink as the CDC deepens.
	if rows[2].MaxOffsetTicks < rows[0].MaxOffsetTicks {
		t.Fatalf("deeper CDC tightened offsets: %+v", rows)
	}
}
