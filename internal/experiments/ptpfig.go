package experiments

import (
	"github.com/dtplab/dtp/internal/fabric"
	"github.com/dtplab/dtp/internal/ptp"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/stats"
	"github.com/dtplab/dtp/internal/topo"
)

// PTPLoad selects the workload of Figures 6d–f.
type PTPLoad int

const (
	// LoadIdle: no background traffic (Fig. 6d).
	LoadIdle PTPLoad = iota
	// LoadMedium: five nodes spraying at 4 Gbps (Fig. 6e).
	LoadMedium
	// LoadHeavy: all client links (except s11's) saturated at 9 Gbps
	// (Fig. 6f).
	LoadHeavy
)

func (l PTPLoad) String() string {
	switch l {
	case LoadIdle:
		return "idle"
	case LoadMedium:
		return "medium"
	default:
		return "heavy"
	}
}

// PTPFigResult is the output of the PTP experiments.
type PTPFigResult struct {
	Load PTPLoad
	// ClientSummaries holds ground-truth offset-to-grandmaster (ns)
	// per client name.
	ClientSummaries map[string]*stats.Summary
	ClientSeries    map[string]*stats.Series
	// WorstNs is the largest |offset| across clients after convergence.
	WorstNs float64
}

// Compression applied to PTP experiments: a paper hour at 1 Hz sync
// becomes simulated seconds at 50 Hz. Documented in EXPERIMENTS.md.
const ptpCompression = 50

// RunPTP reproduces Figures 6d–f on the paper's PTP network: a VelaSync-
// style grandmaster and eight clients behind one cut-through switch
// with realistic transparent clocks.
func RunPTP(o Options, load PTPLoad) (*PTPFigResult, error) {
	o = o.withDefaults(3*sim.Second, 10*sim.Millisecond)
	sch := sim.NewScheduler()
	g := topo.Star(8)
	fcfg := fabric.DefaultConfig()
	net, err := fabric.New(sch, o.Seed, g, fcfg)
	if err != nil {
		return nil, err
	}
	cfg := ptp.DefaultConfig().Compressed(ptpCompression)
	var clientNodes []int
	for _, h := range g.HostIDs() {
		if h != 1 {
			clientNodes = append(clientNodes, h)
		}
	}
	gm := ptp.NewGrandmaster(net, 1, clientNodes, cfg, o.Seed+1)
	clients := map[string]*ptp.Client{}
	for i, cn := range clientNodes {
		c := ptp.NewClient(net, cn, 1, cfg, o.Seed+10+uint64(i))
		c.Start()
		clients[g.Nodes[cn].Name] = c
	}
	gm.Start()

	// Converge on the idle network first, as the deployment would.
	sch.Run(2 * sim.Second)

	switch load {
	case LoadMedium:
		nodes := clientNodes[:5]
		for i, src := range nodes {
			fabric.NewSprayGen(net, src, nodes, 4.0, 32, o.Seed+100+uint64(i)).Start()
		}
	case LoadHeavy:
		// All clients except the last (s11 in the paper) saturate.
		nodes := clientNodes[:len(clientNodes)-1]
		for i, src := range nodes {
			fabric.NewSprayGen(net, src, nodes, 9.0, 32, o.Seed+200+uint64(i)).Start()
		}
	}

	res := &PTPFigResult{
		Load:            load,
		ClientSummaries: map[string]*stats.Summary{},
		ClientSeries:    map[string]*stats.Series{},
	}
	for name := range clients {
		res.ClientSummaries[name] = stats.NewSummary(0)
		res.ClientSeries[name] = stats.NewSeries(20_000)
	}
	end := sch.Now() + o.Duration
	for sch.Now() < end {
		sch.RunFor(o.SamplePeriod)
		for name, c := range clients {
			offNs := c.OffsetToMasterPs() / 1000
			res.ClientSummaries[name].Add(offNs)
			res.ClientSeries[name].Add(sch.Now().Seconds(), offNs)
		}
	}
	for _, s := range res.ClientSummaries {
		if s.MaxAbs() > res.WorstNs {
			res.WorstNs = s.MaxAbs()
		}
	}
	return res, nil
}

// Fig6d reproduces Figure 6d (idle network). Paper: hundreds of ns.
func Fig6d(o Options) (*PTPFigResult, error) { return RunPTP(o, LoadIdle) }

// Fig6e reproduces Figure 6e (medium load). Paper: up to ~50 us.
func Fig6e(o Options) (*PTPFigResult, error) { return RunPTP(o, LoadMedium) }

// Fig6f reproduces Figure 6f (heavy load). Paper: hundreds of us.
func Fig6f(o Options) (*PTPFigResult, error) { return RunPTP(o, LoadHeavy) }
