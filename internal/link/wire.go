// Package link models the physical medium between two ports: constant
// propagation delay derived from cable length, plus optional bit-error
// injection at a configurable bit error rate (BER).
//
// The paper assumes (§3.1) that cable length — and hence propagation
// delay — is bounded: ~5 ns/m of optic fiber, at most 1000 m inside a
// datacenter. The wire is the only thing between two PHYs, which is why
// the delay between peers is deterministic once measured.
//
// Every impairment parameter (delay, BER, block loss) is runtime-mutable
// so fault-injection campaigns (internal/chaos) can degrade a live link:
// BER bursts, permanent BER degradation, grey failures (one-direction
// loss, growing delay asymmetry). Mutations affect blocks sent after the
// call; blocks already in flight keep the delay they were launched with,
// exactly as a physical cable would behave.
package link

import (
	"fmt"

	"github.com/dtplab/dtp/internal/phy"
	"github.com/dtplab/dtp/internal/sim"
)

// PropagationPerMeter is the signal propagation delay in fiber or twinax:
// about 2/3 the speed of light.
const PropagationPerMeter = 5 * sim.Nanosecond

// DelayForLength converts a cable length to a propagation delay.
func DelayForLength(meters float64) sim.Time {
	return sim.Time(meters * float64(PropagationPerMeter))
}

// Config describes one direction of a physical link.
type Config struct {
	// Delay is the one-way propagation delay.
	Delay sim.Time
	// BER is the per-bit error probability. The 802.3 objective is
	// 1e-12; tests crank this up to exercise DTP's failure handling.
	BER float64
}

// Wire is one direction of a physical link. Serialization time is the
// sender's responsibility (it depends on what is being sent); the wire
// adds propagation delay, bit errors, and (under injected grey failure)
// block loss only.
type Wire struct {
	sch *sim.Scheduler
	rng *sim.RNG
	cfg Config

	// blockErrP is the probability that a 66-bit block suffers at least
	// one bit error: 1-(1-BER)^66 ≈ 66*BER for small BER.
	blockErrP float64
	// lossP is the probability a block (or frame) vanishes entirely —
	// a grey failure, not a property of healthy cables.
	lossP float64

	sent      uint64
	corrupted uint64
	dropped   uint64
}

// New creates a wire. A negative delay is a configuration error (it
// would schedule arrivals in the past), reported rather than panicking
// so CLI-driven configs fail with a message, not a stack trace.
func New(sch *sim.Scheduler, rng *sim.RNG, cfg Config) (*Wire, error) {
	if cfg.Delay < 0 {
		return nil, fmt.Errorf("link: negative delay %v", cfg.Delay)
	}
	if cfg.BER < 0 || cfg.BER >= 1 {
		return nil, fmt.Errorf("link: BER %v outside [0, 1)", cfg.BER)
	}
	w := &Wire{sch: sch, rng: rng, cfg: cfg}
	w.setBER(cfg.BER)
	return w, nil
}

func (w *Wire) setBER(ber float64) {
	w.cfg.BER = ber
	if ber > 0 {
		w.blockErrP = 1 - pow1m(ber, 66)
	} else {
		w.blockErrP = 0
	}
}

// pow1m computes (1-p)^n without math.Pow for tiny p.
func pow1m(p float64, n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= 1 - p
	}
	return r
}

// Delay returns the propagation delay.
func (w *Wire) Delay() sim.Time { return w.cfg.Delay }

// BER returns the current per-bit error probability.
func (w *Wire) BER() float64 { return w.cfg.BER }

// LossP returns the current whole-block loss probability.
func (w *Wire) LossP() float64 { return w.lossP }

// SetDelay changes the propagation delay for subsequently sent blocks
// (a grey failure: the cable's electrical length drifting, or a rogue
// component adding latency in one direction). Negative delays are
// rejected.
func (w *Wire) SetDelay(d sim.Time) error {
	if d < 0 {
		return fmt.Errorf("link: negative delay %v", d)
	}
	w.cfg.Delay = d
	return nil
}

// SetBER changes the bit error rate for subsequently sent blocks (BER
// burst or permanent degradation). Values outside [0, 1) are clamped.
func (w *Wire) SetBER(ber float64) {
	if ber < 0 {
		ber = 0
	}
	if ber >= 1 {
		ber = 1 - 1e-12
	}
	w.setBER(ber)
}

// SetLossP changes the whole-block loss probability for subsequently
// sent blocks (one-direction grey failure). Clamped to [0, 1].
func (w *Wire) SetLossP(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	w.lossP = p
}

// SendBlock transmits a 66-bit PCS block: the receiver callback fires
// after the propagation delay with the (possibly corrupted) block, or
// never if the block was lost to an injected grey failure.
func (w *Wire) SendBlock(b phy.Block, deliver func(phy.Block)) {
	w.sent++
	if w.lossP > 0 && w.rng.Bool(w.lossP) {
		w.dropped++
		return
	}
	if w.blockErrP > 0 && w.rng.Bool(w.blockErrP) {
		b = w.flipRandomBit(b)
		w.corrupted++
	}
	w.sch.After(w.cfg.Delay, func() { deliver(b) })
}

// SendBlockActor is SendBlock for the zero-alloc beacon hot path: the
// block rides in the event payload (a = 64 payload bits, b = sync
// byte) and the receiver is an actor, so no closure is captured. RNG
// draws are gated on the same probabilities as SendBlock, keeping the
// per-wire draw sequence byte-identical between the two entry points.
func (w *Wire) SendBlockActor(b phy.Block, act sim.Actor, code uint8) {
	w.sent++
	if w.lossP > 0 && w.rng.Bool(w.lossP) {
		w.dropped++
		return
	}
	if w.blockErrP > 0 && w.rng.Bool(w.blockErrP) {
		b = w.flipRandomBit(b)
		w.corrupted++
	}
	w.sch.AfterActor(w.cfg.Delay, act, code, b.Payload, uint64(b.Sync))
}

// flipRandomBit flips one uniformly random bit of the 66 on the wire:
// 2 sync bits or 64 payload bits.
func (w *Wire) flipRandomBit(b phy.Block) phy.Block {
	i := w.rng.IntN(66)
	if i < 2 {
		b.Sync ^= 1 << i
	} else {
		b.Payload ^= 1 << (i - 2)
	}
	return b
}

// Send transmits an opaque payload (e.g. a full Ethernet frame whose
// per-bit corruption is handled by the frame's own FCS model): deliver
// fires after the propagation delay, or never under injected loss.
func (w *Wire) Send(deliver func()) {
	w.sent++
	if w.lossP > 0 && w.rng.Bool(w.lossP) {
		w.dropped++
		return
	}
	w.sch.After(w.cfg.Delay, deliver)
}

// Stats returns the number of blocks/payloads sent and blocks corrupted.
func (w *Wire) Stats() (sent, corrupted uint64) { return w.sent, w.corrupted }

// Dropped returns how many blocks/payloads were lost to injected loss.
func (w *Wire) Dropped() uint64 { return w.dropped }
