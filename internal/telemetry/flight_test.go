package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dtplab/dtp/internal/sim"
)

// flightFixture builds a recorder over a small instrumented scene:
// a tracer with a few events, a registry with one counter, a timeline
// with one column, and a clock the test controls.
func flightFixture(t *testing.T, dir string, cfg FlightConfig) (*Recorder, *Tracer, *sim.Scheduler) {
	t.Helper()
	sch := sim.NewScheduler()
	reg := New()
	reg.Counter("dtp_test_total", "help").Add(42)
	tr := NewTracer(16)
	tl := NewTimeline(sim.Millisecond, 8)
	tl.Gauge("bound", func() float64 { return float64(sch.Now() / sim.Millisecond) })
	tl.Start(sch)
	cfg.Dir = dir
	rec, err := NewRecorder(cfg, reg, tr, tl, sch.Now)
	if err != nil {
		t.Fatal(err)
	}
	rec.AddState("follower", func() any {
		return map[string]any{"host": "s4", "residual_ps": 123.5}
	})
	return rec, tr, sch
}

func TestFlightTriggerWritesValidBundle(t *testing.T) {
	dir := t.TempDir()
	rec, tr, sch := flightFixture(t, dir, FlightConfig{Seed: 7})
	tr.Record(0, KindLinkUp, "s1[0]", 0, 0, "")
	sch.RunFor(3 * sim.Millisecond)
	tr.Record(sch.Now(), KindBoundViolation, "s1~s4", 9, 4, "hops=3")
	rec.Trigger("bound_violation", "s1~s4")
	bundles := rec.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("bundles = %v, want 1", bundles)
	}
	if want := filepath.Join(dir, "flight-7-00-bound_violation.json"); bundles[0] != want {
		t.Fatalf("bundle path %s, want %s", bundles[0], want)
	}
	b, err := LoadBundle(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Seed != 7 || b.Reason != "bound_violation" || b.TPs != int64(3*sim.Millisecond) {
		t.Fatalf("bundle header = %+v", b)
	}
	if b.Trace == nil || len(b.Trace.Events) != 2 || b.Trace.Events[1].Kind != "bound_violation" {
		t.Fatalf("bundle trace = %+v", b.Trace)
	}
	if !strings.Contains(b.Metrics, "dtp_test_total 42") {
		t.Fatalf("bundle metrics missing counter:\n%s", b.Metrics)
	}
	if b.Timeline == nil || len(b.Timeline.Rows) != 3 || len(b.Timeline.Columns) != 1 {
		t.Fatalf("bundle timeline = %+v", b.Timeline)
	}
	if _, ok := b.State["follower"]; !ok {
		t.Fatalf("bundle state missing follower: %v", b.State)
	}
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
}

func TestFlightArmedObserver(t *testing.T) {
	dir := t.TempDir()
	rec, tr, sch := flightFixture(t, dir, FlightConfig{Seed: 1})
	rec.Arm(KindBoundViolation, KindPortDemoted)
	tr.Record(0, KindLinkUp, "s1[0]", 0, 0, "") // unarmed kind: no bundle
	if len(rec.Bundles()) != 0 {
		t.Fatal("unarmed kind triggered a bundle")
	}
	sch.RunFor(sim.Millisecond)
	tr.Record(sch.Now(), KindPortDemoted, "s2[1]", 0, 0, "beacon_loss")
	bundles := rec.Bundles()
	if len(bundles) != 1 || !strings.HasSuffix(bundles[0], "flight-1-00-port_demoted.json") {
		t.Fatalf("bundles = %v", bundles)
	}
}

func TestFlightCooldownAndBudget(t *testing.T) {
	dir := t.TempDir()
	rec, _, sch := flightFixture(t, dir, FlightConfig{Seed: 3, MaxBundles: 2, Cooldown: sim.Millisecond})
	rec.Trigger("read_stale", "s4")
	rec.Trigger("read_stale", "s4") // same reason, same instant: cooldown
	if got := rec.Suppressed(); got != 1 {
		t.Fatalf("suppressed = %d, want 1", got)
	}
	rec.Trigger("chaos_verify_failed", "x") // different reason: dumps
	if len(rec.Bundles()) != 2 {
		t.Fatalf("bundles = %v, want 2", rec.Bundles())
	}
	sch.RunFor(2 * sim.Millisecond)
	rec.Trigger("read_stale", "s4") // cooldown elapsed but budget spent
	if len(rec.Bundles()) != 2 || rec.Suppressed() != 2 {
		t.Fatalf("budget not enforced: %v suppressed=%d", rec.Bundles(), rec.Suppressed())
	}
}

func TestFlightBundleDeterminism(t *testing.T) {
	read := func(dir string) []byte {
		rec, tr, sch := flightFixture(t, dir, FlightConfig{Seed: 11})
		tr.Record(0, KindLinkUp, "s1[0]", 0, 0, "")
		sch.RunFor(2 * sim.Millisecond)
		rec.Trigger("read_stale", "s4")
		data, err := os.ReadFile(rec.Bundles()[0])
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := read(t.TempDir())
	b := read(t.TempDir())
	if string(a) != string(b) {
		t.Fatalf("identical runs produced different bundles:\n%s\n---\n%s", a, b)
	}
}

func TestFlightLoadBundleRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"wrong/9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(bad); err == nil {
		t.Fatal("foreign schema should be rejected")
	}
	if err := os.WriteFile(bad, []byte(`not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(bad); err == nil {
		t.Fatal("non-JSON should be rejected")
	}
}
