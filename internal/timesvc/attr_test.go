package timesvc

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
)

func TestAttributionSumsToPublishedBound(t *testing.T) {
	p := newServedPair(t, 31, ServiceConfig{}, 0)
	p.sch.RunFor(simScale(1 * sim.Second))

	a := p.svc.Attribution()
	if a.Publishes == 0 || a.Publishes != p.svc.Publishes() {
		t.Fatalf("attribution publishes = %d, service = %d", a.Publishes, p.svc.Publishes())
	}
	snap, ok := p.svc.Store().Read()
	if !ok {
		t.Fatal("no snapshot")
	}
	// The four components must reconstruct the published half-width
	// exactly (same floats summed in the same order).
	if math.Abs(a.TotalLastPs-snap.BoundPs) > 1e-6 {
		t.Fatalf("component sum %.3f ps != published bound %.3f ps", a.TotalLastPs, snap.BoundPs)
	}
	var share float64
	for _, c := range a.Components {
		if c.LastPs < 0 || c.MeanPs < 0 {
			t.Fatalf("component %s negative: %+v", c.Name, c)
		}
		share += c.Share
	}
	if math.Abs(share-1) > 1e-9 {
		t.Fatalf("shares sum to %.9f, want 1", share)
	}
	if a.Dominant == "" {
		t.Fatal("no dominant component identified")
	}
	// On a healthy 1-hop pair the residual floor or the audit bound
	// dominates — either way the split must not claim the daemon's PCIe
	// noise is the whole budget.
	if a.Dominant == "daemon" && a.Components[attrDaemon].Share > 0.9 {
		t.Fatalf("daemon component implausibly dominant: %+v", a)
	}
}

func TestAttributionMetricsExposed(t *testing.T) {
	p := newServedPair(t, 33, ServiceConfig{}, 0)
	p.sch.RunFor(simScale(1 * sim.Second))

	var b strings.Builder
	if err := telemetry.WritePrometheus(&b, p.reg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, comp := range AttrComponentNames {
		if !strings.Contains(out, `dtp_timesvc_eps_last_ps{component="`+comp+`",host="h1"}`) {
			t.Errorf("exposition missing eps_last gauge for %s", comp)
		}
		if !strings.Contains(out, `dtp_timesvc_eps_ps_count{component="`+comp+`",host="h1"}`) {
			t.Errorf("exposition missing eps histogram for %s", comp)
		}
	}
	// Per-publish flush keeps the striped histogram exact: its count
	// equals the publish count for every component.
	h := p.reg.StripedHistogram("dtp_timesvc_eps_ps", "", 1000, 30, 1,
		"host", "h1", "component", "audit")
	if h.Count() != p.svc.Publishes() {
		t.Fatalf("striped count = %d, publishes = %d", h.Count(), p.svc.Publishes())
	}
}

func TestHealthHandler(t *testing.T) {
	p := newServedPair(t, 35, ServiceConfig{}, 0)
	p.sch.RunFor(simScale(1 * sim.Second))

	h := HealthHandler(map[string]*Service{"h1": p.svc})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	body, _ := io.ReadAll(rec.Result().Body)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var out []HostHealth
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("healthz body not JSON: %v\n%s", err, body)
	}
	if len(out) != 1 || out[0].Host != "h1" {
		t.Fatalf("healthz hosts = %+v", out)
	}
	hh := out[0]
	if !hh.Serving || hh.Publishes == 0 || hh.BoundPs <= 0 {
		t.Fatalf("healthz entry = %+v", hh)
	}
	if len(hh.Attribution.Components) != int(numAttrComponents) || hh.Attribution.Dominant == "" {
		t.Fatalf("healthz attribution = %+v", hh.Attribution)
	}
}

func TestHealthHandlerBeforeFirstPublish(t *testing.T) {
	// A service that never published must still serve valid JSON (no
	// NaN shares) and report serving=false.
	p := newServedPair(t, 37, ServiceConfig{}, 0)
	p.svc.Stop()
	h := HealthHandler(map[string]*Service{"h1": p.svc})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var out []HostHealth
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("healthz before publish not JSON: %v\n%s", err, rec.Body.String())
	}
	if out[0].Serving || out[0].Attribution.Dominant != "" {
		t.Fatalf("unpublished service entry = %+v", out[0])
	}
}
