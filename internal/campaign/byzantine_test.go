package campaign

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"
)

// byzantineScenario is the tolerance-study fault: host s8 ratchets a
// 5000-unit lie onto every counter it transmits, every ~2 µs, for 1 ms.
// Timings are compressed from examples/chaos/liar.json so the study
// stays cheap enough to run under -race in CI.
const byzantineScenario = `{
  "name": "liar-ci",
  "description": "one Byzantine host ratcheting its transmitted counter",
  "settle_grace": "100us",
  "reconverge_deadline": "3ms",
  "faults": [
    {"kind": "liar", "device": "s8", "at": "400us", "duration": "1ms",
     "jump_units": 5000, "cadence": "2us"}
  ]
}`

func byzantineGrid(scenario string) Grid {
	return Grid{
		Name:      "byzantine",
		Topos:     []string{"tree"},
		Seeds:     []uint64{1, 2, 3},
		Durations: []Duration{msec(2)},
		Chaos:     []string{"", scenario},
		Hardened:  []bool{false, true},
		// The liar's JOIN cascades are microsecond transients; the
		// default 100 µs auditor cadence could sample between them.
		AuditEvery: Duration(20 * time.Microsecond),
	}
}

// TestByzantineTolerance is the PR's acceptance demonstration, run as a
// campaign so the comparison is apples-to-apples across seeds:
//
//   - hardening off + one liar: the fabric adopts the inflated counter
//     and the auditor reports unexcused bound violations (adversarial
//     faults declare no excuse windows);
//   - hardening on + the same liar: every lying JOIN is rejected, the
//     attacking port is quarantined, and the run ends with zero
//     unexcused violations and a reconverged fabric;
//   - hardening on, no fault: the defense is free — the clean-run
//     offset envelope must not regress more than 10% versus plain mode.
func TestByzantineTolerance(t *testing.T) {
	scenario := filepath.Join(t.TempDir(), "liar.json")
	if err := writeFile(scenario, byzantineScenario); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(byzantineGrid(scenario), Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Index clean-run offsets per seed for the precision-cost check.
	cleanOff := map[uint64]map[bool]int64{}
	for _, r := range rep.Results {
		if r.Err != "" {
			t.Fatalf("run %d (%s) errored: %s", r.Index, rep.Grid.Label(r.Point), r.Err)
		}
		switch {
		case r.Chaos == "":
			if r.AuditViolations != 0 || !r.ChaosOK || !r.WithinBound {
				t.Errorf("clean run %s: violations=%d withinBound=%v — hardening must not disturb a fault-free fabric",
					rep.Grid.Label(r.Point), r.AuditViolations, r.WithinBound)
			}
			if cleanOff[r.Seed] == nil {
				cleanOff[r.Seed] = map[bool]int64{}
			}
			cleanOff[r.Seed][r.Hardened] = r.MaxOffsetTicks
		case !r.Hardened:
			// The vulnerability: one liar poisons the whole fabric.
			if r.AuditViolations == 0 {
				t.Errorf("liar run %s: zero unexcused violations — plain DTP should have adopted the lie",
					rep.Grid.Label(r.Point))
			}
			if r.ChaosOK {
				t.Errorf("liar run %s: chaos verification passed unhardened", rep.Grid.Label(r.Point))
			}
		default:
			// The defense: rejections, quarantine, zero violations,
			// full reconvergence by the scenario deadline.
			if r.AuditViolations != 0 {
				t.Errorf("hardened liar run %s: %d unexcused violations", rep.Grid.Label(r.Point), r.AuditViolations)
			}
			if !r.ChaosOK {
				t.Errorf("hardened liar run %s: chaos verification failed: %s", rep.Grid.Label(r.Point), r.ChaosErr)
			}
			if r.CounterRejections < uint64(4) {
				t.Errorf("hardened liar run %s: only %d rejections — admission never engaged",
					rep.Grid.Label(r.Point), r.CounterRejections)
			}
			if r.PortQuarantines < 1 {
				t.Errorf("hardened liar run %s: no quarantine despite a persistent liar", rep.Grid.Label(r.Point))
			}
		}
	}

	// Clean-run precision cost: hardened admission only observes honest
	// traffic, so the envelope must stay within 10% (plus one unit of
	// integer headroom) of plain mode, per seed.
	for seed, offs := range cleanOff {
		plain, hardened := offs[false], offs[true]
		if float64(hardened) > float64(plain)*1.1+1 {
			t.Errorf("seed %d: clean-run max offset %d hardened vs %d plain — defense costs >10%% precision",
				seed, hardened, plain)
		}
		t.Logf("seed %d clean-run max offset: plain=%d hardened=%d units", seed, plain, hardened)
	}
	t.Logf("break-even: 1 Byzantine device defeats plain DTP on every seed; hardened mode tolerates it\n%s",
		summaryLine(rep))
}

func summaryLine(rep *Report) string {
	var rej, quar uint64
	for _, r := range rep.Results {
		rej += r.CounterRejections
		quar += r.PortQuarantines
	}
	return fmt.Sprintf("campaign: %d runs, %d counter rejections, %d quarantines",
		len(rep.Results), rej, quar)
}

// multiLiarGrid sweeps the Liars axis: 0/1/2 simultaneous Byzantine
// hosts (synthesized by withLiars via deterministic stride over the
// paper tree's 8 leaf hosts) with the defenses off and on. Liar counts
// past 2 sit on a real tolerance boundary — stride placement can put
// two liars under one edge switch, and once liars reach half that
// switch's links its quorum neighborhood is poisoned and transient
// violations slip through on some seeds — so the asserted curve stops
// where tolerance is seed-independent.
func multiLiarGrid() Grid {
	return Grid{
		Name:       "multi-liar",
		Topos:      []string{"tree"},
		Seeds:      []uint64{1, 2},
		Durations:  []Duration{msec(2)},
		Hardened:   []bool{false, true},
		Liars:      []int{0, 1, 2},
		AuditEvery: Duration(20 * time.Microsecond),
	}
}

// TestMultiLiarToleranceCurve traces how many simultaneous Byzantine
// devices the fabric withstands per mode: plain DTP is defeated by any
// number of liars (it has no admission, so not a single lie is
// rejected), while hardened mode rejects every lying JOIN, quarantines
// each attacking host's port, and finishes with zero unexcused
// violations and a reconverged fabric at every asserted liar count.
func TestMultiLiarToleranceCurve(t *testing.T) {
	rep, err := Run(multiLiarGrid(), Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		label := rep.Grid.Label(r.Point)
		if r.Err != "" {
			t.Fatalf("run %s errored: %s", label, r.Err)
		}
		switch {
		case r.Liars == 0:
			if !r.ChaosOK || r.AuditViolations != 0 {
				t.Errorf("clean run %s: chaosOK=%v violations=%d", label, r.ChaosOK, r.AuditViolations)
			}
		case !r.Hardened:
			if r.ChaosOK || r.AuditViolations == 0 {
				t.Errorf("plain run %s survived %d liars (violations=%d) — plain DTP has no defense",
					label, r.Liars, r.AuditViolations)
			}
			if r.CounterRejections != 0 {
				t.Errorf("plain run %s rejected %d advances — admission should not exist unhardened",
					label, r.CounterRejections)
			}
		default:
			if !r.ChaosOK {
				t.Errorf("hardened run %s failed with %d liars: %s", label, r.Liars, r.ChaosErr)
			}
			if r.AuditViolations != 0 {
				t.Errorf("hardened run %s: %d unexcused violations with %d liars", label, r.AuditViolations, r.Liars)
			}
			// Each liar pushes lies through its one uplink until the
			// port is quarantined: at least the admission window's worth
			// of rejections and one quarantine per liar.
			if r.CounterRejections < uint64(4*r.Liars) {
				t.Errorf("hardened run %s: only %d rejections for %d liars", label, r.CounterRejections, r.Liars)
			}
			if r.PortQuarantines < uint64(r.Liars) {
				t.Errorf("hardened run %s: %d quarantines for %d liars", label, r.PortQuarantines, r.Liars)
			}
		}
	}
	t.Logf("tolerance curve (tree, 8 hosts): plain fails at 1 liar; hardened holds through the asserted sweep\n%s",
		summaryLine(rep))
}

// TestMultiLiarByteDeterminism pins the synthesized-liar axis to the
// campaign contract: stride placement and fault timing are pure
// functions of the grid point, so the full tolerance grid renders
// byte-identically with one worker and with four.
func TestMultiLiarByteDeterminism(t *testing.T) {
	g := multiLiarGrid()
	serial, err := Run(g, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(g, Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderDeterministic(t, serial), renderDeterministic(t, parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("multi-liar campaign diverged between -jobs 1 and -jobs 4:\n--- jobs=1\n%s\n--- jobs=4\n%s", a, b)
	}
}

// TestByzantineDeterminismAcrossWorkerCounts pins the tolerance study
// to the campaign's core contract: the adversarial grid renders
// byte-identically with one worker and with four.
func TestByzantineDeterminismAcrossWorkerCounts(t *testing.T) {
	scenario := filepath.Join(t.TempDir(), "liar.json")
	if err := writeFile(scenario, byzantineScenario); err != nil {
		t.Fatal(err)
	}
	g := byzantineGrid(scenario)
	g.Seeds = []uint64{1, 2} // half the grid: this test re-runs it twice
	serial, err := Run(g, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(g, Options{Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderDeterministic(t, serial), renderDeterministic(t, parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("byzantine campaign diverged between -jobs 1 and -jobs 4:\n--- jobs=1\n%s\n--- jobs=4\n%s", a, b)
	}
}
