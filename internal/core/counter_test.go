package core

import (
	"testing"
	"testing/quick"

	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/xo"
)

func newCounterFixture(delta uint64) (*sim.Scheduler, *unitCounter) {
	sch := sim.NewScheduler()
	clk := xo.NewClock(sch, sim.NewRNG(1, "uc"), xo.Default10G(0))
	return sch, newUnitCounter(clk, delta)
}

func TestUnitCounterAdvancesByDelta(t *testing.T) {
	sch, u := newCounterFixture(20)
	sch.Run(sim.Microsecond)
	// 1us / 6.4ns = 156.25 ticks -> 156 ticks * 20 units.
	got := u.at(sch.Now())
	if got != 156*20 {
		t.Fatalf("counter = %d, want %d", got, 156*20)
	}
}

func TestUnitCounterSetAtForward(t *testing.T) {
	sch, u := newCounterFixture(1)
	sch.Run(sim.Microsecond)
	now := sch.Now()
	u.setAt(u.at(now)+42, now)
	if got := u.at(now); got != 156+42 {
		t.Fatalf("after jump counter = %d, want %d", got, 156+42)
	}
	// Rate resumes unchanged.
	sch.Run(2 * sim.Microsecond)
	if got := u.at(sch.Now()); got != 156+42+156 {
		t.Fatalf("after jump + 1us = %d, want %d", got, 156+42+156)
	}
}

func TestUnitCounterSetAtBackwardPanics(t *testing.T) {
	sch, u := newCounterFixture(1)
	sch.Run(sim.Microsecond)
	defer func() {
		if recover() == nil {
			t.Fatal("backward jump did not panic")
		}
	}()
	u.setAt(u.at(sch.Now())-1, sch.Now())
}

func TestUnitCounterTimeOfValue(t *testing.T) {
	sch, u := newCounterFixture(20)
	sch.Run(sim.Microsecond)
	target := u.at(sch.Now()) + 1000
	at := u.timeOfValue(target)
	if got := u.at(at); got < target {
		t.Fatalf("at(timeOfValue(%d)) = %d", target, got)
	}
}

func TestReconstructNearExact(t *testing.T) {
	cases := []struct {
		local, lsb uint64
		bits       uint
		want       uint64
	}{
		{1000, 1000, 53, 1000},
		{1000, 998, 53, 998},
		{1000, 1003, 53, 1003},
		// Wrap-around: local just past a 2^8 boundary, lsb just before.
		{0x105, 0xfe, 8, 0xfe},
		// Local just before a boundary, lsb just after.
		{0xfe, 0x02, 8, 0x102},
		// Same at the 2^53 boundary DTP actually uses.
		{1<<53 + 3, 1<<53 - 2, 53, 1<<53 - 2},
		{1<<53 - 2, 2, 53, 1<<53 + 2},
		// Very large counters (second wrap).
		{5<<53 + 7, 4, 53, 5<<53 + 4},
	}
	for _, c := range cases {
		if got := reconstructNear(c.local, c.lsb, c.bits); got != c.want {
			t.Errorf("reconstructNear(%#x, %#x, %d) = %#x, want %#x", c.local, c.lsb, c.bits, got, c.want)
		}
	}
}

// Property: reconstruction recovers any true value within a quarter
// modulus of the local counter.
func TestReconstructNearProperty(t *testing.T) {
	f := func(local uint64, delta int32) bool {
		const bits = 53
		mod := uint64(1) << bits
		local %= mod << 4 // keep headroom for +mod
		d := int64(delta) % int64(mod/4)
		truth := int64(local) + d
		if truth < 0 {
			return true
		}
		got := reconstructNear(local, uint64(truth)&(mod-1), bits)
		return got == uint64(truth)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestReconstructNearUint64Wrap: the beacon LSB reconstruction is
// circular modulo 2^64 — a local counter sitting just below the 64-bit
// wrap must recover peer values on the far side (which read as tiny
// uint64s), and vice versa.
func TestReconstructNearUint64Wrap(t *testing.T) {
	const bits = 53
	max := ^uint64(0)
	cases := []struct {
		local, truth uint64
	}{
		// Peer a few units ahead, across the wrap.
		{max - 2, max + 4}, // max+4 wraps to 3
		{max - 2, 1},
		// Peer a few units behind, local already wrapped.
		{3, max - 1},
		{0, max - 5},
		// Exactly at the boundary.
		{max, 0},
		{0, max},
		// Far from the wrap but crossing an MSB rollover of the LSB field.
		{1<<60 + 1<<bits - 2, 1<<60 + 1<<bits + 3},
		{1<<60 + 1<<bits + 1, 1<<60 + 1<<bits - 4},
	}
	for _, c := range cases {
		if got := reconstructNear(c.local, c.truth&(1<<bits-1), bits); got != c.truth {
			t.Errorf("reconstructNear(%#x, lsb(%#x)) = %#x, want %#x",
				c.local, c.truth, got, c.truth)
		}
	}
}

// TestUnitCounterResetAt: power loss restarts the counter from zero —
// the one legitimate backward movement — and clears stall state.
func TestUnitCounterResetAt(t *testing.T) {
	sch, u := newCounterFixture(1)
	sch.Run(sim.Microsecond)
	now := sch.Now()
	u.setAt(u.at(now)+1_000_000, now)
	u.stallBy(10, now)
	if u.at(now) == 0 {
		t.Fatal("counter did not advance before reset")
	}
	u.resetAt(now)
	if got := u.at(now); got != 0 {
		t.Fatalf("counter after reset = %d, want 0", got)
	}
	// It runs again at the oscillator rate from the reset instant.
	sch.Run(2 * sim.Microsecond)
	if got := u.at(sch.Now()); got != 156 {
		t.Fatalf("counter 1us after reset = %d, want 156", got)
	}
	// And jumping (the INIT/JOIN path after a crash) still works.
	u.setAt(500, sch.Now())
	if got := u.at(sch.Now()); got != 500 {
		t.Fatalf("post-reset jump = %d, want 500", got)
	}
}

func TestOpenGate(t *testing.T) {
	g := OpenGate{}
	for _, w := range []uint64{0, 1, 12345} {
		if g.NextSlot(w) != w {
			t.Fatal("OpenGate delayed a slot")
		}
	}
}

func TestSaturatedGateSlots(t *testing.T) {
	g := SaturatedGate{FrameBlocks: 200, Phase: 10}
	cases := []struct{ want, slot uint64 }{
		{0, 10}, {10, 10}, {11, 210}, {210, 210}, {211, 410}, {409, 410},
	}
	for _, c := range cases {
		if got := g.NextSlot(c.want); got != c.slot {
			t.Fatalf("NextSlot(%d) = %d, want %d", c.want, got, c.slot)
		}
	}
}

func TestSaturatedGateFromFrameSize(t *testing.T) {
	g := NewSaturatedGate(1522, 0)
	// MTU frames: ~193 blocks per frame incl. IPG — one beacon slot per
	// frame, ~200 ticks, matching §4.4.
	if g.FrameBlocks < 185 || g.FrameBlocks > 200 {
		t.Fatalf("MTU gate frame blocks = %d", g.FrameBlocks)
	}
	j := NewSaturatedGate(9022, 0)
	if j.FrameBlocks < 1120 || j.FrameBlocks > 1200 {
		t.Fatalf("jumbo gate frame blocks = %d", j.FrameBlocks)
	}
}

// Property: every gate returns a slot at or after the requested tick,
// and deterministic gates are monotone when driven past the last slot
// (the way the beacon scheduler drives them).
func TestGateSlotProperty(t *testing.T) {
	rng := sim.NewRNG(3, "gate")
	f := func(deltas []uint8) bool {
		gates := []TxGate{
			OpenGate{},
			SaturatedGate{FrameBlocks: 200, Phase: 7},
			NewRandomLoadGate(1522, 0.5, rng),
		}
		for _, g := range gates {
			want := uint64(0)
			for _, d := range deltas {
				want += uint64(d) + 1
				slot := g.NextSlot(want)
				if slot < want {
					return false
				}
				want = slot // next request comes after this slot
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomLoadGateExtremes(t *testing.T) {
	rng := sim.NewRNG(4, "gate2")
	free := NewRandomLoadGate(1522, 0, rng)
	if free.NextSlot(77) != 77 {
		t.Fatal("zero-load gate delayed a slot")
	}
	busy := NewRandomLoadGate(1522, 0.9, rng)
	delayed := 0
	for i := 0; i < 100; i++ {
		if busy.NextSlot(1000) > 1000 {
			delayed++
		}
	}
	if delayed < 70 {
		t.Fatalf("0.9-load gate delayed only %d/100 slots", delayed)
	}
}
