package discipline

// movingAverage is the paper's estimator (Figure 7), extracted from
// internal/daemon verbatim: the anchor is always the latest sample, and
// the frequency ratio is an EWMA of instantaneous ratios measured
// against an anchor Window calibrations old — the long baseline divides
// per-read latch noise into the ratio.
type movingAverage struct {
	gain    float64
	window  int
	nominal float64

	history []Sample
	m       Model
}

// maSlackPPM bounds the moving-average frequency-ratio error: the ratio
// is an EWMA over a Window-calibration baseline, so per-read latch
// noise divided by the baseline leaves well under a ppm in steady
// state; PCIe spike samples push it to a few ppm transiently. (This is
// the daemon's historical ratioSlackPPM constant.)
const maSlackPPM = 5

func newMovingAverage(c Config, nominalRatio float64) *movingAverage {
	d := &movingAverage{gain: c.Gain, window: c.Window, nominal: nominalRatio}
	d.Reset()
	return d
}

func (d *movingAverage) Name() string { return "ma" }

func (d *movingAverage) Feed(s Sample) Model {
	d.history = append(d.history, s)
	if len(d.history) > d.window+1 {
		d.history = d.history[1:]
	}
	if anchor := d.history[0]; s.TSC > anchor.TSC {
		instRatio := (s.DTP - anchor.DTP) / (s.TSC - anchor.TSC)
		d.m.Ratio += d.gain * (instRatio - d.m.Ratio)
	}
	d.m.DTP = s.DTP
	d.m.TSC = s.TSC
	d.m.ErrUnits = s.LatchErrPs * d.m.Ratio
	d.m.Valid = true
	return d.m
}

func (d *movingAverage) Model() Model { return d.m }

func (d *movingAverage) Reset() {
	d.history = d.history[:0]
	d.m = Model{Ratio: d.nominal, SlackPPM: maSlackPPM}
}

func (d *movingAverage) Dropped() uint64 { return 0 }
