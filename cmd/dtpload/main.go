// Command dtpload benchmarks the time-service fast path: the seqlock
// snapshot + lock-free Clock read that internal/timesvc serves
// TrueTime-style intervals through.
//
// It runs in two phases. First an in-sim calibration phase builds a DTP
// network with a full serving plane (daemons, UTC broadcast, live 4TD
// audit) and lets it converge, yielding a realistic published error
// bound. Then a wall-clock hammer phase re-anchors that snapshot shape
// onto the host's monotonic clock — a writer republishing at the
// calibration cadence with a known bounded anchor error, exactly like
// the in-sim service — and N reader goroutines hammer Clock.NowInterval
// as fast as they can. Readers record throughput, sampled read latency
// (p50/p99), the interval-width distribution, and — on the sampled
// subset — verify earliest <= true time <= latest against the
// construction's ground truth.
//
//	dtpload -topo tree -duration 500ms -hammer 2s -out BENCH_6.json
//
// The -assert flag enforces the >= 1M reads/sec floor; like the other
// BENCH assertions it only bites on hosts with >= 8 CPUs, so small CI
// runners still produce records without failing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dtplab/dtp"
	"github.com/dtplab/dtp/internal/cliutil"
	"github.com/dtplab/dtp/internal/telemetry"
	"github.com/dtplab/dtp/internal/timesvc"
)

var (
	shared = cliutil.Flags{Topo: "tree", Duration: 500 * time.Millisecond}

	hostFlag    = flag.String("host", "", "served host to calibrate on (default: first served host)")
	readersFlag = flag.Int("readers", 0, "reader goroutines (0 = GOMAXPROCS)")
	hammerFlag  = flag.Duration("hammer", 2*time.Second, "wall-clock hammer phase length")
	sampleFlag  = flag.Int("sample", 512, "sample latency/width/coverage every N reads")
	outFlag     = flag.String("out", "", "write the benchmark record (JSON) to this file")
	assertFlag  = flag.Bool("assert", false, "fail unless aggregate throughput >= 1M reads/sec (only enforced with >= 8 CPUs)")
	minQPS      = flag.Float64("min-qps", 1e6, "throughput floor for -assert")

	attrBench = flag.Bool("attr-bench", false,
		"A/B instrumentation bench: run the hammer twice — bare, then with every reader feeding a striped width histogram — and record the ε-attribution split, width distribution, and instrumentation overhead")
	maxOverhead = flag.Float64("max-overhead", 0.05,
		"with -attr-bench and -assert, fail if the instrumented hammer loses more than this qps fraction")
)

// readerStats is one goroutine's tally, merged after the run.
type readerStats struct {
	reads    uint64
	errors   uint64
	checked  uint64
	covered  uint64
	latNs    []float64
	widthPs  []float64
	sinkEps  float64 // keeps the read from being optimized away
	_padding [4]uint64
}

func main() {
	shared.Register(flag.CommandLine,
		cliutil.FlagTopo|cliutil.FlagSeed|cliutil.FlagDuration)
	flag.Parse()
	if err := shared.Validate(); err != nil {
		cliutil.Fatal("dtpload", 2, err)
	}

	// Phase 1: in-sim calibration for a realistic published bound.
	topo, err := shared.Topology()
	if err != nil {
		cliutil.Fatal("dtpload", 2, err)
	}
	sys, err := dtp.New(topo, dtp.WithSeed(shared.Seed))
	if err != nil {
		cliutil.Fatal("dtpload", 1, err)
	}
	defer sys.Close()
	sys.Start()
	if err := sys.RunUntilSynced(time.Second); err != nil {
		cliutil.Fatal("dtpload", 1, err)
	}
	tp, err := sys.TimePlane(dtp.TimePlaneOptions{CalInterval: 10 * time.Millisecond})
	if err != nil {
		cliutil.Fatal("dtpload", 1, err)
	}
	// -attr-bench: record the calibration phase's timeline (served
	// widths over simulated time) alongside the attribution split.
	var tlSim *dtp.Timeline
	if *attrBench {
		tlSim = sys.Timeline(dtp.TimelineOptions{Interval: 10 * time.Millisecond})
	}
	sys.Run(shared.Duration)

	host := *hostFlag
	if host == "" {
		host = tp.Hosts()[0]
	}
	svc, err := tp.Service(host)
	if err != nil {
		cliutil.Fatal("dtpload", 2, err)
	}
	calSnap, ok := svc.Store().Read()
	if !ok {
		cliutil.Fatal("dtpload", 1,
			fmt.Errorf("no snapshot published on %s after %v simulated; lengthen -duration", host, shared.Duration))
	}
	simWidth, simCovered, err := svc.ReadCheck()
	if err != nil {
		cliutil.Fatal("dtpload", 1, err)
	}
	fmt.Printf("calibrated on %s: ε = %.0f ps (width %.0f ps), covered=%v, %d publishes, %d degraded ticks\n",
		host, calSnap.BoundPs, simWidth, simCovered, svc.Publishes(), svc.DegradedTicks())

	// Phase 2: wall-clock hammer. Ground truth is the wall timebase
	// itself: the writer anchors UTC(r) = r + jitter with |jitter| and
	// ratio error well inside the sim-calibrated bound, so every served
	// interval must contain the raw reading it was evaluated at — the
	// same invariant the in-sim plane proves, checkable without a
	// simulated scheduler in the hot loop.
	store := &timesvc.Store{}
	tb := timesvc.NewWallTimebase(0)
	clock := timesvc.NewClock(store, tb)

	const (
		anchorJitterFrac = 0.25 // of the calibrated bound, per publish
		ratioErrPPM      = 1.0  // known ratio error; DriftPPM covers it
	)
	publishInterval := 10 * time.Millisecond
	maxAgePs := int64(8 * publishInterval / time.Nanosecond * 1000)

	var stopWriter atomic.Bool
	var writerWG sync.WaitGroup
	var publishes atomic.Uint64
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		epoch := uint64(0)
		sign := 1.0
		for !stopWriter.Load() {
			epoch++
			sign = -sign
			raw := tb.Raw()
			store.Publish(timesvc.Snapshot{
				Epoch:     epoch,
				AnchorRaw: raw,
				AnchorUTC: float64(raw) + sign*anchorJitterFrac*calSnap.BoundPs,
				Ratio:     1 + sign*ratioErrPPM*1e-6,
				BoundPs:   calSnap.BoundPs,
				DriftPPM:  calSnap.DriftPPM,
				MaxAgePs:  maxAgePs,
			})
			publishes.Add(1)
			time.Sleep(publishInterval)
		}
	}()

	readers := *readersFlag
	if readers <= 0 {
		readers = runtime.GOMAXPROCS(0)
	}
	sample := *sampleFlag
	if sample < 1 {
		sample = 1
	}

	// Wait for the first publish so readers never start on an empty
	// store.
	for store.Epoch() == 0 {
		time.Sleep(time.Millisecond)
	}

	// -attr-bench phase A (or the only phase): the bare fast path.
	res := runHammer(clock, tb, readers, sample, *hammerFlag, nil)

	// -attr-bench phase B: identical hammer, but every reader owns a
	// StripeWriter into one shared width histogram — the exact
	// instrumentation the in-sim serving plane uses for
	// dtp_timesvc_eps_ps. The qps delta is the cost of always-on
	// attribution. Phases interleave A,B,A,B and each variant keeps its
	// best qps: back-to-back measurement on a busy host systematically
	// penalizes whichever phase runs later.
	var resB hammerResult
	var widthHist *telemetry.StripedHistogram
	qpsBare := res.qps
	qpsInstr := 0.0
	var extraSink float64
	if *attrBench {
		widthHist = telemetry.NewStripedHistogram(1000, 30, readers)
		resB = runHammer(clock, tb, readers, sample, *hammerFlag, widthHist)
		qpsInstr = resB.qps
		rA := runHammer(clock, tb, readers, sample, *hammerFlag, nil)
		rB := runHammer(clock, tb, readers, sample, *hammerFlag, widthHist)
		extraSink = rA.sink + rB.sink
		qpsBare = math.Max(qpsBare, rA.qps)
		qpsInstr = math.Max(qpsInstr, rB.qps)
		widthHist.FlushAll()
	}

	stopWriter.Store(true)
	writerWG.Wait()

	reads, errors, checked, covered := res.reads, res.errors, res.checked, res.covered
	qps := res.qps
	latP50, latP99 := percentile(res.lats, 0.50), percentile(res.lats, 0.99)
	widthP50, widthP99 := percentile(res.widths, 0.50), percentile(res.widths, 0.99)

	fmt.Printf("\n== fast-path hammer: %d readers, %v\n", readers, res.elapsed.Round(time.Millisecond))
	fmt.Printf("reads       %d (%.2fM reads/sec aggregate)\n", reads, qps/1e6)
	fmt.Printf("read lat    p50 %.0f ns, p99 %.0f ns (sampled 1/%d)\n", latP50, latP99, sample)
	fmt.Printf("width       p50 %.0f ps, p99 %.0f ps\n", widthP50, widthP99)
	fmt.Printf("invariant   %d/%d sampled reads covered, %d failed closed\n", covered, checked, errors)

	overhead := 0.0
	if *attrBench {
		overhead = 1 - qpsInstr/qpsBare
		snap := widthHist.Snapshot()
		fmt.Printf("\n== instrumented hammer (striped width histogram on the hot path)\n")
		fmt.Printf("reads       %d (best %.2fM vs bare %.2fM reads/sec, overhead %.2f%%)\n",
			resB.reads, qpsInstr/1e6, qpsBare/1e6, overhead*100)
		fmt.Printf("width hist  %d observations, p50 %.0f ps, p99 %.0f ps\n",
			snap.Count, snap.Quantile(0.50), snap.Quantile(0.99))
		if resB.checked == 0 || resB.covered != resB.checked {
			cliutil.Fatal("dtpload", 1,
				fmt.Errorf("instrumented phase violated the interval invariant: %d of %d uncovered",
					resB.checked-resB.covered, resB.checked))
		}
	}

	cores := runtime.NumCPU()
	asserted := *assertFlag && cores >= 8
	if checked == 0 || covered != checked {
		cliutil.Fatal("dtpload", 1,
			fmt.Errorf("interval invariant violated: %d of %d sampled reads uncovered", checked-covered, checked))
	}
	if asserted && qps < *minQPS {
		cliutil.Fatal("dtpload", 1,
			fmt.Errorf("throughput %.2fM reads/sec below the %.1fM floor on %d cores", qps/1e6, *minQPS/1e6, cores))
	}
	if asserted && *attrBench && overhead > *maxOverhead {
		cliutil.Fatal("dtpload", 1,
			fmt.Errorf("striped-histogram instrumentation cost %.2f%% qps, budget %.1f%%",
				overhead*100, *maxOverhead*100))
	}

	if *outFlag != "" {
		record := map[string]any{
			"benchmark":      "dtpload",
			"topo":           shared.Topo,
			"seed":           shared.Seed,
			"host":           host,
			"readers":        readers,
			"gomaxprocs":     runtime.GOMAXPROCS(0),
			"num_cpu":        cores,
			"hammer_ms":      res.elapsed.Seconds() * 1e3,
			"reads":          reads,
			"qps":            qps,
			"read_lat_ns":    map[string]float64{"p50": latP50, "p99": latP99},
			"width_ps":       map[string]float64{"p50": widthP50, "p99": widthP99},
			"sim_bound_ps":   calSnap.BoundPs,
			"sim_publishes":  svc.Publishes(),
			"checked":        checked,
			"covered":        covered,
			"failed_closed":  errors,
			"wall_publishes": publishes.Load(),
			"asserted_min_qps": func() float64 {
				if asserted {
					return *minQPS
				}
				return 0
			}(),
			"note": fmt.Sprintf("1M reads/sec floor asserted only with -assert and >= 8 CPUs "+
				"(this record was taken on %d core(s))", cores),
		}
		if *attrBench {
			snap := widthHist.Snapshot()
			hist := map[string]any{"count": snap.Count}
			if snap.Count > 0 {
				hist["mean_ps"] = snap.Mean()
				hist["p50_ps"] = snap.Quantile(0.50)
				hist["p90_ps"] = snap.Quantile(0.90)
				hist["p99_ps"] = snap.Quantile(0.99)
			}
			record["attr"] = map[string]any{
				"qps_bare":         qpsBare,
				"qps_instrumented": qpsInstr,
				"overhead":         overhead,
				"asserted_max_overhead": func() float64 {
					if asserted {
						return *maxOverhead
					}
					return 0
				}(),
				"attribution":   svc.Attribution(),
				"width_hist_ps": hist,
			}
			if tlSim != nil {
				tlRec := map[string]any{
					"interval_ms": 10,
					"rows":        tlSim.Total(),
					"columns":     tlSim.Columns(),
				}
				if q := tlSim.ColumnQuantile("eps_ps_"+host, 0.5); !math.IsNaN(q) {
					tlRec["eps_p50_ps"] = q
					tlRec["eps_p99_ps"] = tlSim.ColumnQuantile("eps_ps_"+host, 0.99)
				}
				record["timeline"] = tlRec
			}
		}
		j, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			cliutil.Fatal("dtpload", 1, err)
		}
		if err := os.WriteFile(*outFlag, append(j, '\n'), 0o644); err != nil {
			cliutil.Fatal("dtpload", 1, err)
		}
		fmt.Printf("record written to %s\n", *outFlag)
	}
	// Keep the sink live past the loops.
	if sink := res.sink + resB.sink + extraSink; math.IsNaN(sink) {
		fmt.Println(sink)
	}
}

// hammerResult is one hammer phase's merged tally.
type hammerResult struct {
	elapsed                         time.Duration
	reads, errors, checked, covered uint64
	qps                             float64
	lats, widths                    []float64
	sink                            float64
}

// runHammer drives `readers` goroutines over the lock-free fast path
// for dur, sampling latency/width/coverage every `sample` reads. When
// hist is non-nil every reader claims a StripeWriter and observes each
// read's interval width — the always-on attribution instrumentation
// whose cost -attr-bench measures.
func runHammer(clock *timesvc.Clock, tb timesvc.WallTimebase, readers, sample int,
	dur time.Duration, hist *telemetry.StripedHistogram) hammerResult {
	stats := make([]readerStats, readers)
	var start sync.WaitGroup
	var done sync.WaitGroup
	var stopReaders atomic.Bool
	start.Add(1)
	for i := 0; i < readers; i++ {
		done.Add(1)
		go func(st *readerStats) {
			defer done.Done()
			w := hist.Writer() // nil-safe: no-op writer without -attr-bench
			start.Wait()
			n := 0
			for !stopReaders.Load() {
				// The hot path: one lock-free interval read.
				n++
				if n%sample != 0 {
					iv, err := clock.NowInterval()
					if err != nil {
						st.errors++
					} else {
						st.sinkEps += iv.EarliestPs
						if hist != nil {
							w.Observe(iv.WidthPs())
						}
					}
					st.reads++
					continue
				}
				// Sampled: time the read and verify the invariant from
				// the same raw reading the interval is evaluated at.
				t0 := time.Now()
				raw := tb.Raw()
				_, iv, err := clock.At(raw)
				lat := time.Since(t0)
				st.reads++
				if err != nil {
					st.errors++
					continue
				}
				st.checked++
				if iv.Contains(float64(raw)) {
					st.covered++
				}
				st.latNs = append(st.latNs, float64(lat.Nanoseconds()))
				st.widthPs = append(st.widthPs, iv.WidthPs())
			}
			w.Flush()
		}(&stats[i])
	}

	t0 := time.Now()
	start.Done()
	time.Sleep(dur)
	stopReaders.Store(true)
	done.Wait()
	res := hammerResult{elapsed: time.Since(t0)}
	for i := range stats {
		res.reads += stats[i].reads
		res.errors += stats[i].errors
		res.checked += stats[i].checked
		res.covered += stats[i].covered
		res.lats = append(res.lats, stats[i].latNs...)
		res.widths = append(res.widths, stats[i].widthPs...)
		res.sink += stats[i].sinkEps
	}
	res.qps = float64(res.reads) / res.elapsed.Seconds()
	return res
}

// percentile returns the q-quantile of xs (sorted in place; 0 when
// empty).
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	i := int(q * float64(len(xs)-1))
	return xs[i]
}
