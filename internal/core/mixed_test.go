package core

import (
	"testing"

	"github.com/dtplab/dtp/internal/phy"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/topo"
)

// mixedChain builds h0 --s0-- sw1 --s1-- sw2 --s2-- h1 with per-link
// speeds, on the 0.32 ns base clock.
func mixedChain(t *testing.T, seed uint64, speeds map[int]phy.Speed) (*sim.Scheduler, *Network) {
	t.Helper()
	sch := sim.NewScheduler()
	n, err := NewNetwork(sch, seed, topo.Chain(3), MixedSpeedConfig(),
		WithLinkSpeeds(speeds),
		WithPPM(map[string]float64{"h0": 100, "sw1": -100, "sw2": 100, "h1": -100}))
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	sch.Run(10 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("mixed-speed chain did not sync")
	}
	return sch, n
}

// mixedBound sums the per-hop bound: 4 port cycles of each hop's speed,
// in base units.
func mixedBound(speeds map[int]phy.Speed, links int) int64 {
	var sum int64
	for i := 0; i < links; i++ {
		s, ok := speeds[i]
		if !ok {
			s = phy.Speed10G
		}
		sum += 4 * phy.ProfileFor(s).Delta
	}
	return sum
}

func TestMixedSpeedFastUplink(t *testing.T) {
	// The paper's deployment reality (§7): hosts at 10 GbE, the switch
	// interconnect at 40 GbE. Counters all advance in 0.32 ns units.
	speeds := map[int]phy.Speed{0: phy.Speed10G, 1: phy.Speed40G, 2: phy.Speed10G}
	sch, n := mixedChain(t, 1, speeds)
	var worst int64
	for i := 0; i < 1000; i++ {
		sch.RunFor(50 * sim.Microsecond)
		v := n.TrueOffsetUnits(0, 3)
		if v < 0 {
			v = -v
		}
		if v > worst {
			worst = v
		}
	}
	if bound := mixedBound(speeds, 3); worst > bound {
		t.Fatalf("mixed 10/40/10 end-to-end offset %d units > bound %d", worst, bound)
	}
}

func TestMixedSpeed100GCore(t *testing.T) {
	speeds := map[int]phy.Speed{0: phy.Speed10G, 1: phy.Speed100G, 2: phy.Speed10G}
	sch, n := mixedChain(t, 3, speeds)
	var worst int64
	for i := 0; i < 500; i++ {
		sch.RunFor(50 * sim.Microsecond)
		if v := n.MaxAdjacentOffset(); v > worst {
			worst = v
		}
	}
	// Adjacent bound: the slowest link dominates (4 × 20 units).
	if worst > 80 {
		t.Fatalf("adjacent offset %d units with a 100G core", worst)
	}
}

func TestMixedSpeed1GAccess(t *testing.T) {
	// 1 GbE access link (fragmented messages) + 10 GbE upstream.
	speeds := map[int]phy.Speed{0: phy.Speed1G, 1: phy.Speed10G, 2: phy.Speed10G}
	sch, n := mixedChain(t, 5, speeds)
	var worst int64
	for i := 0; i < 500; i++ {
		sch.RunFor(50 * sim.Microsecond)
		v := n.TrueOffsetUnits(0, 3)
		if v < 0 {
			v = -v
		}
		if v > worst {
			worst = v
		}
	}
	if bound := mixedBound(speeds, 3); worst > bound {
		t.Fatalf("1G-access chain offset %d units > bound %d", worst, bound)
	}
}

func TestMixedSpeedCountersCoherent(t *testing.T) {
	// All counters advance at the same base-unit rate (±100 ppm):
	// ~3.125e9 units per second.
	speeds := map[int]phy.Speed{0: phy.Speed10G, 1: phy.Speed40G, 2: phy.Speed10G}
	sch, n := mixedChain(t, 7, speeds)
	start := n.Devices[0].GlobalCounter()
	t0 := sch.Now()
	sch.RunFor(500 * sim.Millisecond)
	gained := float64(n.Devices[0].GlobalCounter() - start)
	elapsed := (sch.Now() - t0).Seconds()
	rate := gained / elapsed
	// Max-coupled: the network tracks the fastest oscillator (+100 ppm)
	// = 3.1253125e9 units/s. Anything clearly above indicates ratchet.
	if rate < 3.1245e9 || rate > 3.1257e9 {
		t.Fatalf("base-unit rate %.6e, want ~3.12531e9", rate)
	}
}

func TestMixedSpeedRequiresBaseConfig(t *testing.T) {
	sch := sim.NewScheduler()
	_, err := NewNetwork(sch, 1, topo.Pair(), DefaultConfig(),
		WithLinkSpeeds(map[int]phy.Speed{0: phy.Speed40G}))
	if err == nil {
		t.Fatal("mixed speeds accepted without the base-clock config")
	}
}
