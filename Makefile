# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test test-short bench experiments examples

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Skips the heaviest PTP packet-level load experiments.
test-short:
	go test -short ./...

# One iteration of every paper table/figure benchmark with its metrics.
bench:
	go test -bench . -benchtime 1x -benchmem -run '^$$' .

# Regenerate every table and figure (long; see EXPERIMENTS.md).
experiments:
	go run ./cmd/dtpexp -all

examples:
	go run ./examples/quickstart
	go run ./examples/partition
	go run ./examples/owd
	go run ./examples/mixedspeed
	go run ./examples/fattree
	go run ./examples/truetime
