package ptp

import "github.com/dtplab/dtp/internal/sim"

// servo is the PI controller steering a PHC from filtered offset
// samples, the structure used by ptp4l. Offsets are in picoseconds;
// output is a frequency correction in ppb.
type servo struct {
	kp, ki   float64
	integral float64 // ppb
	maxPPB   float64
}

func newServo(cfg Config) servo {
	return servo{kp: cfg.ServoKp, ki: cfg.ServoKi, maxPPB: 500_000}
}

func (s *servo) reset() { s.integral = 0 }

// update consumes one offset sample (ps) observed over the given sync
// interval and returns the new frequency adjustment (ppb).
//
// Scaling: an offset of X ns accumulated over an interval of T seconds
// corresponds to a rate error of X/T ppb, so the proportional and
// integral terms are normalized by the interval — this keeps the same
// gains stable under time compression.
func (s *servo) update(offsetPs float64, interval sim.Time) float64 {
	sec := interval.Seconds()
	if sec <= 0 {
		sec = 1
	}
	offNsPerSec := offsetPs / 1000 / sec
	s.integral += s.ki * offNsPerSec
	s.integral = clamp(s.integral, -s.maxPPB, s.maxPPB)
	return clamp(-(s.kp*offNsPerSec + s.integral), -s.maxPPB, s.maxPPB)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
