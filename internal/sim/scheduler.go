package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are single-shot; cancelling an
// event that already fired is a no-op.
type Event struct {
	at    Time
	seq   uint64 // tie-breaker: FIFO among events with equal timestamps
	index int    // heap index, -1 once fired or cancelled
	fn    func()
	q     *eventQueue
}

// At returns the simulated time the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel removes the event from the scheduler. Returns false if the event
// already fired or was already cancelled.
func (e *Event) Cancel() bool {
	if e.index < 0 {
		return false
	}
	heap.Remove(e.owner(), e.index)
	e.index = -1
	e.fn = nil
	return true
}

// owner is stashed on the queue slice header via a back-pointer set at push
// time; storing it per event keeps Cancel O(log n) without a scheduler arg.
func (e *Event) owner() *eventQueue { return e.q }

type eventQueue struct {
	events []*Event
}

func (q *eventQueue) Len() int { return len(q.events) }
func (q *eventQueue) Less(i, j int) bool {
	a, b := q.events[i], q.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
func (q *eventQueue) Swap(i, j int) {
	q.events[i], q.events[j] = q.events[j], q.events[i]
	q.events[i].index = i
	q.events[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(q.events)
	q.events = append(q.events, e)
}
func (q *eventQueue) Pop() any {
	old := q.events
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	q.events = old[:n-1]
	return e
}

// Scheduler is a deterministic discrete-event scheduler. It is not safe for
// concurrent use; simulations are single-goroutine by design so that a seed
// fully determines a run.
type Scheduler struct {
	queue eventQueue
	now   Time
	seq   uint64

	// processed counts events dispatched since construction, for reporting.
	processed uint64
	// highWater is the largest queue depth ever reached, for reporting.
	highWater int
}

// NewScheduler returns an empty scheduler at time zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Processed returns the number of events dispatched so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// Pending returns the number of events currently scheduled.
func (s *Scheduler) Pending() int { return s.queue.Len() }

// HighWaterPending returns the largest queue depth ever reached.
func (s *Scheduler) HighWaterPending() int { return s.highWater }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a modelling bug, and silently reordering time would
// corrupt every downstream measurement.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	e := &Event{at: t, seq: s.seq, fn: fn, q: &s.queue}
	s.seq++
	heap.Push(&s.queue, e)
	if s.queue.Len() > s.highWater {
		s.highWater = s.queue.Len()
	}
	return e
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// Step dispatches the single earliest event. It returns false when the
// queue is empty.
func (s *Scheduler) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	s.now = e.at
	fn := e.fn
	e.fn = nil
	s.processed++
	fn()
	return true
}

// Run dispatches events until no event at or before `until` remains, then
// advances the clock to exactly `until`. Events scheduled during the run
// are honoured if they fall within the horizon.
func (s *Scheduler) Run(until Time) {
	if until < s.now {
		panic(fmt.Sprintf("sim: Run(%v) before now %v", until, s.now))
	}
	for s.queue.Len() > 0 && s.queue.events[0].at <= until {
		s.Step()
	}
	s.now = until
}

// RunFor advances the simulation by d. See Run.
func (s *Scheduler) RunFor(d Time) { s.Run(s.now + d) }

// Drain dispatches every remaining event regardless of timestamp. Intended
// for tests; production experiments always run to a horizon.
func (s *Scheduler) Drain() {
	for s.Step() {
	}
}
