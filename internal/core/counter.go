package core

import (
	"fmt"

	"github.com/dtplab/dtp/internal/xo"
)

// unitCounter adapts an oscillator tick counter to DTP counter units:
// the counter advances by delta units per PCS tick and can be jumped
// forward (never backward) at any instant, exactly like the hardware
// local/global counter registers. All reads are derived lazily from the
// oscillator, so no per-tick events exist.
type unitCounter struct {
	clk   *xo.Clock
	delta uint64 // units per tick

	base    uint64 // counter value as of refTick
	refTick uint64 // oscillator tick at which base was established

	// capped marks an in-progress stall (§5.4): the linear trajectory
	// has been shifted down by the stalled amount and capVal floors the
	// visible value so it holds (monotone, losing ticks) until the
	// shifted trajectory catches back up.
	capped bool
	capVal uint64
}

func newUnitCounter(clk *xo.Clock, delta uint64) *unitCounter {
	return &unitCounter{clk: clk, delta: delta, refTick: clk.Counter()}
}

// at returns the counter value at simulated time t.
func (u *unitCounter) at(t simTime) uint64 {
	tick := u.clk.CounterAt(t)
	if tick < u.refTick {
		panic("core: counter queried before reference tick")
	}
	v := u.base + (tick-u.refTick)*u.delta
	if u.capped && v < u.capVal {
		return u.capVal // stalled: hold until the shifted trajectory catches up
	}
	return v
}

// setAt jumps the counter so that at(t) == v and lifts any stall.
// Jumping backward panics — DTP counters are monotone by construction
// (the max operation).
func (u *unitCounter) setAt(v uint64, t simTime) {
	cur := u.at(t)
	if v < cur {
		panic(fmt.Sprintf("core: counter jump backwards (%d -> %d)", cur, v))
	}
	u.capped = false
	u.refTick = u.clk.CounterAt(t)
	u.base = v
}

// stallBy holds the counter at its current value until `excess` units
// worth of ticks have been absorbed, then lets it resume at its own
// rate with the excess permanently removed (§5.4: a child faster than
// its master "should stall occasionally"). Monotone by construction.
func (u *unitCounter) stallBy(excess uint64, t simTime) {
	if excess == 0 {
		return
	}
	v := u.at(t)
	if excess > v {
		excess = v // cannot shift below counter zero
	}
	// Re-anchor the linear trajectory `excess` units below the current
	// value; floor the visible value at v until it catches up.
	u.refTick = u.clk.CounterAt(t)
	u.base = v - excess
	u.capped = true
	u.capVal = v
}

// resetAt models power loss: the counter restarts from zero at time t,
// forgetting its base and any stall state. This is the one legitimate
// backward movement — a crashed device rejoins through INIT and JOIN,
// not by remembering where it was.
func (u *unitCounter) resetAt(t simTime) {
	u.base = 0
	u.refTick = u.clk.CounterAt(t)
	u.capped = false
	u.capVal = 0
}

// timeOfValue returns the earliest time the counter reaches at least v.
func (u *unitCounter) timeOfValue(v uint64) simTime {
	if v <= u.base {
		return u.clk.TimeOfCount(u.refTick)
	}
	ticks := (v - u.base + u.delta - 1) / u.delta
	return u.clk.TimeOfCount(u.refTick + ticks)
}

// reconstructNear returns the value congruent to lsb modulo 2^bits that
// is closest to local. This is how a receiver recovers a full counter
// from the 53 (or 52, with parity) transmitted least significant bits:
// its own counter supplies the high bits, adjusted across a wrap
// boundary if needed.
func reconstructNear(local, lsb uint64, bits uint) uint64 {
	mod := uint64(1) << bits
	mask := mod - 1
	base := local&^mask | lsb&mask
	// Of base-mod, base, base+mod choose the closest to local. Distances
	// use wrapping subtraction interpreted as signed, so the choice stays
	// correct when local sits near the 2^64 wrap and the candidates
	// straddle zero; valid because any real distance is < 2^bits ≪ 2^63.
	best := base
	bestDist := absSigned(base - local)
	if d := absSigned(base - mod - local); d < bestDist {
		best, bestDist = base-mod, d
	}
	if d := absSigned(base + mod - local); d < bestDist {
		best = base + mod
	}
	return best
}

// absSigned reinterprets a wrapping uint64 difference as signed and
// returns its magnitude.
func absSigned(d uint64) uint64 {
	if s := int64(d); s < 0 {
		return uint64(-s)
	}
	return d
}
