package dtp

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/dtplab/dtp/internal/sim"
)

func TestTimePlaneServesCoveredIntervals(t *testing.T) {
	reg := NewMetricsRegistry()
	sys := newSynced(t, PaperTree(), WithSeed(31), WithTelemetry(reg, NewTracer(0)))
	defer sys.Close()

	tp, err := sys.TimePlane(TimePlaneOptions{CalInterval: 10 * time.Millisecond, LoadQPS: 500})
	if err != nil {
		t.Fatal(err)
	}
	if tp.Broadcaster() != "s4" {
		t.Fatalf("broadcaster = %q, want the first host s4", tp.Broadcaster())
	}
	if got := len(tp.Hosts()); got != 7 {
		t.Fatalf("%d served hosts, want 7 (s5-s11)", got)
	}

	sys.Run(time.Second)
	for _, h := range tp.Hosts() {
		svc, err := tp.Service(h)
		if err != nil {
			t.Fatal(err)
		}
		if svc.Publishes() < 50 {
			t.Fatalf("%s: only %d publishes over 1 s", h, svc.Publishes())
		}
		w, covered, err := tp.ReadCheck(h)
		if err != nil {
			t.Fatalf("%s: read failed: %v", h, err)
		}
		if !covered {
			t.Fatalf("%s: true time outside served interval (width %.0f ps)", h, w)
		}
		if ld := tp.Load(h); ld == nil || ld.Reads() < 100 {
			t.Fatalf("%s: in-sim load barely ran", h)
		}
	}

	// The HTTP surface serves the same clock as JSON.
	hdl, err := tp.TimeHandler(tp.Hosts()[0])
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	hdl.ServeHTTP(rec, httptest.NewRequest("GET", "/now", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /now = %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		UTCPs      float64 `json:"utc_ps"`
		EarliestPs float64 `json:"earliest_ps"`
		LatestPs   float64 `json:"latest_ps"`
		Epoch      uint64  `json:"epoch"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Epoch == 0 || !(resp.EarliestPs < resp.UTCPs && resp.UTCPs < resp.LatestPs) {
		t.Fatalf("implausible /now response: %+v", resp)
	}

	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTimePlaneRejectsBadConfigs(t *testing.T) {
	sys := newSynced(t, PaperTree(), WithSeed(33))
	defer sys.Close()
	if _, err := sys.TimePlane(TimePlaneOptions{Broadcaster: "s0"}); err == nil {
		t.Fatal("switch accepted as broadcaster")
	}
	if _, err := sys.TimePlane(TimePlaneOptions{Hosts: []string{"s4"}}); err == nil {
		t.Fatal("broadcaster accepted as served host")
	}
	if _, err := sys.TimePlane(TimePlaneOptions{Hosts: []string{"nope"}}); err == nil {
		t.Fatal("unknown host accepted")
	}
}

// TestTimePlaneIntervalInvariantUnderChaos drives the serving plane
// through a link flap and an oscillator frequency step and asserts the
// TrueTime contract — earliest <= true time <= latest — at every
// sampled read outside the excused-degradation windows. Inside a
// window the plane may degrade, and a fail-closed read (stale/no
// snapshot) is always acceptable; what must never happen outside the
// windows is a *served* interval that excludes true time.
func TestTimePlaneIntervalInvariantUnderChaos(t *testing.T) {
	reg := NewMetricsRegistry()
	sys := newSynced(t, PaperTree(), WithSeed(37), WithTelemetry(reg, NewTracer(0)))
	defer sys.Close()

	aud := sys.Audit(AuditOptions{})
	tp, err := sys.TimePlane(TimePlaneOptions{
		CalInterval: 10 * time.Millisecond,
		Auditor:     aud,
	})
	if err != nil {
		t.Fatal(err)
	}

	sc := &ChaosScenario{
		Name:        "timesvc-invariant",
		SettleGrace: ChaosD(2 * time.Millisecond),
		Faults: []ChaosFault{
			{
				Kind: "flap", Link: []string{"s1", "s4"},
				At:       ChaosD(400 * time.Millisecond),
				Duration: ChaosD(60 * time.Millisecond),
				MeanUp:   ChaosD(5 * time.Millisecond),
				MeanDown: ChaosD(5 * time.Millisecond),
			},
			{
				Kind: "freq_step", Device: "s8",
				At:       ChaosD(700 * time.Millisecond),
				Duration: ChaosD(60 * time.Millisecond),
				PPMStep:  60,
			},
		},
	}
	eng, err := sys.Chaos(ChaosOptions{Scenario: sc, Auditor: aud})
	if err != nil {
		t.Fatal(err)
	}

	// A fault's effect on served intervals outlives its clearing: the
	// last snapshot published mid-degradation may serve for MaxAge, and
	// the follower's ratio/residual EWMAs need a few broadcast rounds to
	// re-learn the restored rate. Excuse each fault window plus settle
	// grace plus that serving tail.
	var maxAge sim.Time
	for _, h := range tp.Hosts() {
		svc, _ := tp.Service(h)
		if a := svc.Config().MaxAge; a > maxAge {
			maxAge = a
		}
	}
	extraSettle := maxAge + sim.Time(40*sim.Millisecond)
	excused := func(at sim.Time) bool {
		for _, f := range sc.Faults {
			if at >= f.At.T && at <= f.At.T+f.Duration.T+sc.SettleGrace.T+extraSettle {
				return true
			}
		}
		return false
	}

	// Cold start is its own excused window: the service gates publishing
	// on follower warmup (WarmupPairs broadcasts) and its bound then
	// tightens as the EWMAs converge; start asserting well after that.
	if warm := 250*time.Millisecond - sys.Now(); warm > 0 {
		sys.Run(warm)
	}

	const step = sim.Millisecond
	checked, failedClosed := 0, 0
	for sys.Now() < 1200*time.Millisecond {
		sys.Run(step.Std())
		now := sim.FromStd(sys.Now())
		if excused(now) {
			continue
		}
		for _, h := range tp.Hosts() {
			w, covered, err := tp.ReadCheck(h)
			if err != nil {
				// Fail-closed is honest at any time; count it so a plane
				// that never serves can't pass vacuously.
				failedClosed++
				continue
			}
			if !covered {
				t.Fatalf("t=%v %s: served interval (width %.0f ps) excludes true time outside excused windows",
					now.Std(), h, w)
			}
			checked++
		}
	}
	if checked < 1000 {
		t.Fatalf("only %d covered reads checked; sampling or serving broken", checked)
	}
	if failedClosed > checked/2 {
		t.Fatalf("%d of %d+ reads failed closed outside excused windows; plane is not recovering", failedClosed, checked+failedClosed)
	}

	// After the last excused window the plane must actually serve again:
	// every host readable, every interval covering truth.
	for _, h := range tp.Hosts() {
		w, covered, err := tp.ReadCheck(h)
		if err != nil {
			t.Fatalf("%s: read still failing after reconvergence: %v", h, err)
		}
		if !covered {
			t.Fatalf("%s: interval (width %.0f ps) excludes truth after reconvergence", h, w)
		}
	}
	_ = eng
}

// TestTimePlaneIntervalInvariantHardenedLiar puts a Byzantine host
// under the serving plane with the fabric hardened. The liar inflates
// every counter it transmits; bounded-jump admission must reject those
// advances before adoption, so the honest hosts' served intervals never
// chase the lie, and the quarantine must pull the liar's link out of
// the audited fabric rather than leak bound violations. Adversarial
// faults earn no auditor excuse windows — the test's own excused()
// windows cover only the liar's local read degradation (its port is
// quarantined, so its snapshots go stale), never the audit record,
// which must stay spotless end to end.
func TestTimePlaneIntervalInvariantHardenedLiar(t *testing.T) {
	reg := NewMetricsRegistry()
	sys := newSynced(t, PaperTree(), WithSeed(41), WithHardened(),
		WithTelemetry(reg, NewTracer(0)))
	defer sys.Close()

	aud := sys.Audit(AuditOptions{})
	tp, err := sys.TimePlane(TimePlaneOptions{
		CalInterval: 10 * time.Millisecond,
		Auditor:     aud,
	})
	if err != nil {
		t.Fatal(err)
	}

	sc := &ChaosScenario{
		Name:        "timesvc-hardened-liar",
		SettleGrace: ChaosD(2 * time.Millisecond),
		Faults: []ChaosFault{
			{
				Kind: "liar", Device: "s8",
				At:        ChaosD(450 * time.Millisecond),
				Duration:  ChaosD(50 * time.Millisecond),
				JumpUnits: 5000,
				Cadence:   ChaosD(500 * time.Microsecond),
			},
		},
	}
	if _, err := sys.Chaos(ChaosOptions{Scenario: sc, Auditor: aud}); err != nil {
		t.Fatal(err)
	}

	var maxAge sim.Time
	for _, h := range tp.Hosts() {
		svc, _ := tp.Service(h)
		if a := svc.Config().MaxAge; a > maxAge {
			maxAge = a
		}
	}
	extraSettle := maxAge + sim.Time(40*sim.Millisecond)
	excused := func(at sim.Time) bool {
		f := sc.Faults[0]
		return at >= f.At.T && at <= f.At.T+f.Duration.T+sc.SettleGrace.T+extraSettle
	}

	if warm := 250*time.Millisecond - sys.Now(); warm > 0 {
		sys.Run(warm)
	}

	const step = sim.Millisecond
	checked, failedClosed := 0, 0
	for sys.Now() < 1200*time.Millisecond {
		sys.Run(step.Std())
		now := sim.FromStd(sys.Now())
		if excused(now) {
			continue
		}
		for _, h := range tp.Hosts() {
			w, covered, err := tp.ReadCheck(h)
			if err != nil {
				failedClosed++
				continue
			}
			if !covered {
				t.Fatalf("t=%v %s: served interval (width %.0f ps) excludes true time outside excused windows",
					now.Std(), h, w)
			}
			checked++
		}
	}
	if checked < 1000 {
		t.Fatalf("only %d covered reads checked; sampling or serving broken", checked)
	}
	if failedClosed > checked/2 {
		t.Fatalf("%d of %d+ reads failed closed outside excused windows; plane is not recovering",
			failedClosed, checked+failedClosed)
	}

	// The defense must actually have engaged: inflated advances rejected,
	// the lying port quarantined at least once, and — the point of the
	// exercise — not a single bound violation anywhere in the run.
	rejected, quarantined := sys.ByzantineStats()
	if rejected == 0 {
		t.Error("no counter advances rejected: the liar was never challenged")
	}
	if quarantined == 0 {
		t.Error("the lying port was never quarantined")
	}
	if v := aud.Violations(); v != 0 {
		t.Errorf("hardened fabric leaked %d bound violations under a liar", v)
	}

	// After the excused window every host — the reformed liar included —
	// serves covered intervals again.
	for _, h := range tp.Hosts() {
		w, covered, err := tp.ReadCheck(h)
		if err != nil {
			t.Fatalf("%s: read still failing after the liar rejoined: %v", h, err)
		}
		if !covered {
			t.Fatalf("%s: interval (width %.0f ps) excludes truth after the liar rejoined", h, w)
		}
	}
}
