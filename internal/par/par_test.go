package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderIndependentOfJobs(t *testing.T) {
	want := make([]int, 100)
	for i := range want {
		want[i] = i * i
	}
	for _, jobs := range []int{1, 2, 8, 100, 0} {
		got, err := Map(jobs, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("jobs=%d: got[%d] = %d, want %d", jobs, i, got[i], want[i])
			}
		}
	}
}

func TestMapFirstErrorByIndex(t *testing.T) {
	e3, e7 := errors.New("three"), errors.New("seven")
	_, err := Map(4, 10, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, e3
		case 7:
			return 0, e7
		}
		return i, nil
	})
	if err != e3 {
		t.Fatalf("got %v, want the lowest-index error %v", err, e3)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	_, err := Map(3, 64, func(i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		defer cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds jobs=3", p)
	}
}

func TestMapPanicBecomesError(t *testing.T) {
	_, err := Map(2, 4, func(i int) (int, error) {
		if i == 2 {
			panic("boom")
		}
		return i, nil
	})
	if err == nil || err.Error() != fmt.Sprintf("par: job %d panicked: %v", 2, "boom") {
		t.Fatalf("got %v, want wrapped panic from job 2", err)
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v; want nil, nil", got, err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(4, 10, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d, want 45", sum.Load())
	}
}
