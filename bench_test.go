package dtp

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (one benchmark per artifact) plus the design-choice
// ablations called out in DESIGN.md. Each benchmark runs the experiment
// once per iteration over a compressed measurement window and reports
// the headline quantity (worst offset, bound slack, ...) via
// b.ReportMetric, so `go test -bench . -benchmem` prints the rows the
// paper reports.
//
// Wall-clock note: the DTP experiments simulate ~800k beacons per link
// per simulated second; windows here are chosen so the full suite
// completes in a few minutes. cmd/dtpexp runs the same experiments with
// longer defaults.

import (
	"testing"

	"github.com/dtplab/dtp/internal/experiments"
	"github.com/dtplab/dtp/internal/sim"
)

// benchOpts returns a short measurement window keyed by the iteration.
func benchOpts(i int, d sim.Time) experiments.Options {
	return experiments.Options{Seed: uint64(i) + 1, Duration: d}
}

func BenchmarkFig6a_DTPHeavyMTU(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6a(benchOpts(i, 200*sim.Millisecond))
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxAbsTicks > worst {
			worst = res.MaxAbsTicks
		}
		if res.MaxAbsTicks > float64(res.BoundTicks) {
			b.Fatalf("offset %.0f ticks exceeded the 4T bound", res.MaxAbsTicks)
		}
	}
	b.ReportMetric(worst*6.4, "worst_offset_ns")
	b.ReportMetric(25.6, "paper_bound_ns")
}

func BenchmarkFig6b_DTPHeavyJumbo(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6b(benchOpts(i, 200*sim.Millisecond))
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxAbsTicks > worst {
			worst = res.MaxAbsTicks
		}
	}
	b.ReportMetric(worst*6.4, "worst_offset_ns")
	b.ReportMetric(25.6, "paper_bound_ns")
}

func BenchmarkFig6c_DTPOffsetDistribution(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6c(benchOpts(i, 300*sim.Millisecond))
		if err != nil {
			b.Fatal(err)
		}
		for _, h := range res.Hist {
			lo, hi := h.Range()
			if float64(hi-lo) > spread {
				spread = float64(hi - lo)
			}
		}
	}
	b.ReportMetric(spread, "pdf_spread_ticks")
	b.ReportMetric(6, "paper_spread_ticks") // Fig 6c spans about [-2, 4]
}

func BenchmarkFig6d_PTPIdle(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6d(benchOpts(i, sim.Second))
		if err != nil {
			b.Fatal(err)
		}
		if res.WorstNs > worst {
			worst = res.WorstNs
		}
	}
	b.ReportMetric(worst, "worst_offset_ns")
	b.ReportMetric(640, "paper_scale_ns") // Fig 6d y-range ±640 ns
}

func BenchmarkFig6e_PTPMedium(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6e(benchOpts(i, sim.Second))
		if err != nil {
			b.Fatal(err)
		}
		if res.WorstNs > worst {
			worst = res.WorstNs
		}
	}
	b.ReportMetric(worst/1000, "worst_offset_us")
	b.ReportMetric(50, "paper_scale_us") // Fig 6e: up to ~50 us
}

func BenchmarkFig6f_PTPHeavy(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6f(benchOpts(i, sim.Second))
		if err != nil {
			b.Fatal(err)
		}
		if res.WorstNs > worst {
			worst = res.WorstNs
		}
	}
	b.ReportMetric(worst/1000, "worst_offset_us")
	b.ReportMetric(200, "paper_scale_us") // Fig 6f: hundreds of us
}

func BenchmarkFig7a_DaemonRaw(b *testing.B) {
	var p99 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchOpts(i, sim.Second))
		if err != nil {
			b.Fatal(err)
		}
		if res.RawP95 > p99 {
			p99 = res.RawP95
		}
	}
	b.ReportMetric(p99, "raw_p95_ticks")
	b.ReportMetric(16, "paper_envelope_ticks")
}

func BenchmarkFig7b_DaemonSmoothed(b *testing.B) {
	var p99 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchOpts(i, sim.Second))
		if err != nil {
			b.Fatal(err)
		}
		if res.SmoothedP95 > p99 {
			p99 = res.SmoothedP95
		}
	}
	b.ReportMetric(p99, "smoothed_p95_ticks")
	b.ReportMetric(4, "paper_envelope_ticks")
}

func BenchmarkTable1_ProtocolComparison(b *testing.B) {
	var ntpNs, ptpNs, gpsNs, dtpNs float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchOpts(i, 500*sim.Millisecond))
		if err != nil {
			b.Fatal(err)
		}
		ntpNs, ptpNs, gpsNs, dtpNs = rows[0].MeasuredWorstNs, rows[1].MeasuredWorstNs,
			rows[2].MeasuredWorstNs, rows[3].MeasuredWorstNs
	}
	b.ReportMetric(ntpNs/1000, "ntp_us")
	b.ReportMetric(ptpNs, "ptp_ns")
	b.ReportMetric(gpsNs, "gps_ns")
	b.ReportMetric(dtpNs, "dtp_ns")
}

func BenchmarkTable2_SpeedProfiles(b *testing.B) {
	var m10, m40, m100 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchOpts(i, 200*sim.Millisecond))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.MeasuredBoundNs > r.BoundNs {
				b.Fatalf("%v exceeded its 4T bound", r.Profile.Speed)
			}
			switch r.Profile.Speed.String() {
			case "10G":
				m10 = r.MeasuredBoundNs
			case "40G":
				m40 = r.MeasuredBoundNs
			case "100G":
				m100 = r.MeasuredBoundNs
			}
		}
	}
	b.ReportMetric(m10, "10G_ns")
	b.ReportMetric(m40, "40G_ns")
	b.ReportMetric(m100, "100G_ns")
}

func BenchmarkAnalysis_BoundSweep(b *testing.B) {
	var six float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BoundSweep(benchOpts(i, 200*sim.Millisecond), 6)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.WithinBound {
				b.Fatalf("chain(%d) violated 4TD", r.Hops)
			}
		}
		six = rows[5].MaxOffsetNs
	}
	b.ReportMetric(six, "six_hop_worst_ns")
	b.ReportMetric(153.6, "paper_bound_ns")
}

func BenchmarkAblation_Alpha(b *testing.B) {
	var r0, r3 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationAlpha(benchOpts(i, 300*sim.Millisecond), []int64{0, 3})
		if err != nil {
			b.Fatal(err)
		}
		r0, r3 = rows[0].RatchetPPM, rows[1].RatchetPPM
	}
	b.ReportMetric(r0, "alpha0_ratchet_ppm")
	b.ReportMetric(r3, "alpha3_ratchet_ppm")
}

func BenchmarkAblation_BeaconInterval(b *testing.B) {
	var at200, at4000, at60000 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBeaconInterval(benchOpts(i, 300*sim.Millisecond),
			[]uint64{200, 4000, 60000})
		if err != nil {
			b.Fatal(err)
		}
		at200, at4000, at60000 = float64(rows[0].MaxOffsetTicks),
			float64(rows[1].MaxOffsetTicks), float64(rows[2].MaxOffsetTicks)
	}
	b.ReportMetric(at200, "interval200_ticks")
	b.ReportMetric(at4000, "interval4000_ticks")
	b.ReportMetric(at60000, "interval60000_ticks")
}

func BenchmarkAblation_CDC(b *testing.B) {
	var d0, d3 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationCDC(benchOpts(i, 300*sim.Millisecond), []int{0, 3})
		if err != nil {
			b.Fatal(err)
		}
		d0, d3 = float64(rows[0].MaxOffsetTicks), float64(rows[1].MaxOffsetTicks)
	}
	b.ReportMetric(d0, "fifo0_ticks")
	b.ReportMetric(d3, "fifo3_ticks")
}

func BenchmarkAblation_MasterTree(b *testing.B) {
	var res *experiments.MasterModeResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationMasterMode(benchOpts(i, 500*sim.Millisecond))
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(float64(res.MaxModeOffsetTicks), "max_mode_ticks")
	b.ReportMetric(float64(res.MasterModeOffsetTicks), "master_mode_ticks")
	b.ReportMetric(res.MaxModeRatePPM, "max_mode_rate_ppm")
	b.ReportMetric(res.MasterModeRatePPM, "master_mode_rate_ppm")
}

func BenchmarkAblation_BCCascade(b *testing.B) {
	var direct, three float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationBCCascade(benchOpts(i, sim.Second), 3)
		if err != nil {
			b.Fatal(err)
		}
		direct, three = rows[0].P99Ns, rows[3].P99Ns
	}
	b.ReportMetric(direct, "direct_p99_ns")
	b.ReportMetric(three, "three_levels_p99_ns")
}

func BenchmarkIncrementalDeployment(b *testing.B) {
	var res *experiments.IncrementalResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.IncrementalDeployment(benchOpts(i, 500*sim.Millisecond))
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.IntraRackWorstNs, "intra_rack_ns")
	b.ReportMetric(res.InterRackWorstNs, "inter_rack_ns")
	b.ReportMetric(res.MergedWorstNs, "merged_ns")
}

func BenchmarkAblation_TransparentClock(b *testing.B) {
	var realistic, perfect, priority float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationTCModes(benchOpts(i, sim.Second))
		if err != nil {
			b.Fatal(err)
		}
		realistic, perfect, priority = res.RealisticWorstNs, res.PerfectWorstNs, res.PriorityWorstNs
	}
	b.ReportMetric(realistic/1000, "realistic_tc_us")
	b.ReportMetric(perfect/1000, "perfect_tc_us")
	b.ReportMetric(priority/1000, "priority_qos_us")
}
