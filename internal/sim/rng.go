package sim

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random stream. Every stochastic component of the
// simulation (oscillator skew, CDC delays, traffic arrivals, ...) owns its
// own RNG derived from the run seed and a component label, so adding or
// removing one component never perturbs the randomness seen by another.
type RNG struct {
	*rand.Rand
}

// NewRNG derives an independent stream from a run seed and a label.
func NewRNG(seed uint64, label string) *RNG {
	h := fnv.New64a()
	// The label keys the stream; mixing the seed in twice (pre and post)
	// avoids trivial collisions between (seed, label) pairs.
	var buf [8]byte
	putUint64(buf[:], seed)
	h.Write(buf[:])
	h.Write([]byte(label))
	s2 := h.Sum64()
	return &RNG{rand.New(rand.NewPCG(seed, s2))}
}

// Fork derives a sub-stream, e.g. one per port of a device.
func (r *RNG) Fork(label string) *RNG {
	return NewRNG(r.Uint64(), label)
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Uniform returns a float uniformly distributed in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// UniformTime returns a Time uniformly distributed in [lo, hi].
func (r *RNG) UniformTime(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(r.Int64N(int64(hi-lo)+1))
}

// Normal returns a normally distributed float with the given mean and
// standard deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// LogNormal returns exp(N(mu, sigma)). Used for long-tailed latency models
// (PCIe reads, software network stacks).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns an exponentially distributed float with the given
// mean. Used for Poisson interarrival times.
func (r *RNG) Exponential(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// ExpTime returns an exponentially distributed Time with the given mean,
// clamped to at least 1 ps so event time strictly advances.
func (r *RNG) ExpTime(mean Time) Time {
	d := Time(r.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}
