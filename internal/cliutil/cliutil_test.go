package cliutil

import (
	"bytes"
	"flag"
	"io"
	"os"
	"strings"
	"testing"
	"time"
)

func parse(t *testing.T, f *Flags, which Set, args ...string) error {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(new(bytes.Buffer))
	f.Register(fs, which)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return f.Validate()
}

func TestRegisterDefaults(t *testing.T) {
	var f Flags
	if err := parse(t, &f, FlagTopo|FlagSeed|FlagDuration|FlagJobs); err != nil {
		t.Fatal(err)
	}
	if f.Topo != "" || f.Seed != 1 || f.Duration != 0 || f.Jobs != 0 {
		t.Fatalf("defaults wrong: %+v", f)
	}
}

func TestRegisterRespectsPresetDefaults(t *testing.T) {
	f := Flags{Topo: "tree", Duration: 2 * time.Second}
	if err := parse(t, &f, FlagTopo|FlagDuration); err != nil {
		t.Fatal(err)
	}
	if f.Topo != "tree" || f.Duration != 2*time.Second {
		t.Fatalf("per-command defaults lost: %+v", f)
	}
}

func TestParseOverrides(t *testing.T) {
	var f Flags
	err := parse(t, &f, FlagTopo|FlagSeed|FlagDuration|FlagJobs,
		"-topo", "chain:4", "-seed", "9", "-duration", "10ms", "-jobs", "4")
	if err != nil {
		t.Fatal(err)
	}
	if f.Topo != "chain:4" || f.Seed != 9 || f.Duration != 10*time.Millisecond || f.Jobs != 4 {
		t.Fatalf("parsed %+v", f)
	}
	g, err := f.Topology()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) == 0 {
		t.Fatal("empty topology")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		which Set
		args  []string
		want  string
	}{
		{FlagTopo, []string{"-topo", "klein:2"}, "unknown topology"},
		{FlagTopo, []string{"-topo", "fattree:3"}, "fat-tree"},
		{FlagDuration, []string{"-duration", "-5ms"}, "-duration"},
		{FlagJobs, []string{"-jobs", "-1"}, "-jobs"},
		{FlagChaos, []string{"-chaos", "/nonexistent/scenario.json"}, "scenario"},
	}
	for _, c := range cases {
		var f Flags
		err := parse(t, &f, c.which, c.args...)
		if err == nil {
			t.Fatalf("args %v validated, want error containing %q", c.args, c.want)
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.want)) &&
			!strings.Contains(err.Error(), "no such file") {
			t.Fatalf("args %v: error %q does not mention %q", c.args, err, c.want)
		}
	}
}

func TestValidateOnlyChecksRegistered(t *testing.T) {
	f := Flags{Jobs: -5, Duration: -time.Second}
	if err := parse(t, &f, FlagSeed); err != nil {
		t.Fatalf("unregistered flags must not be validated: %v", err)
	}
}

func TestLoadChaosUnsetIsNil(t *testing.T) {
	var f Flags
	sc, err := f.LoadChaos()
	if sc != nil || err != nil {
		t.Fatalf("got %v, %v; want nil, nil", sc, err)
	}
}

func TestWriteFile(t *testing.T) {
	path := t.TempDir() + "/out.txt"
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("hello"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("read %q, %v", b, err)
	}
}

func TestDisciplineFlag(t *testing.T) {
	var f Flags
	err := parse(t, &f, FlagDiscipline, "-discipline", "pll:kp=0.7")
	if err != nil {
		t.Fatal(err)
	}
	dc, err := f.ParseDiscipline()
	if err != nil {
		t.Fatal(err)
	}
	if dc.Kind != "pll" {
		t.Fatalf("parsed kind %q, want pll", dc.Kind)
	}

	var unset Flags
	if err := parse(t, &unset, FlagDiscipline); err != nil {
		t.Fatal(err)
	}
	if dc, err := unset.ParseDiscipline(); err != nil || dc.Kind != "" {
		t.Fatalf("unset -discipline must parse to the zero config, got %+v, %v", dc, err)
	}

	var bad Flags
	if err := parse(t, &bad, FlagDiscipline, "-discipline", "kalman"); err == nil {
		t.Fatal("unknown discipline kind validated")
	}
}
