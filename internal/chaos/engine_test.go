package chaos

import (
	"bytes"
	"strings"
	"testing"

	"github.com/dtplab/dtp/internal/audit"
	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
	"github.com/dtplab/dtp/internal/topo"
)

// stormScenario is the canned campaign from the repo's acceptance bar:
// a flap storm, a BER burst, and one crash/restart on a six-device
// chain (h0-sw1-sw2-sw3-sw4-h1).
func stormScenario() *Scenario {
	return &Scenario{
		Name:               "storm",
		SettleGrace:        D(600 * sim.Microsecond),
		ReconvergeDeadline: D(8 * sim.Millisecond),
		Faults: []Fault{
			{Kind: KindFlap, Link: []string{"sw1", "sw2"}, At: D(2 * sim.Millisecond),
				Duration: D(sim.Millisecond), MeanUp: D(200 * sim.Microsecond), MeanDown: D(100 * sim.Microsecond)},
			{Kind: KindBERBurst, Link: []string{"sw3", "sw4"}, At: D(2500 * sim.Microsecond),
				Duration: D(sim.Millisecond), BER: 1e-4},
			{Kind: KindCrash, Device: "sw2", At: D(4 * sim.Millisecond),
				Duration: D(500 * sim.Microsecond)},
		},
	}
}

// campaign holds one fully wired run: network, auditor, engine,
// telemetry.
type campaign struct {
	sch *sim.Scheduler
	net *core.Network
	aud *audit.Auditor
	eng *Engine
	reg *telemetry.Registry
	tr  *telemetry.Tracer
}

func newCampaign(t *testing.T, g topo.Graph, cfg core.Config, seed uint64, sc *Scenario) *campaign {
	t.Helper()
	sch := sim.NewScheduler()
	net, err := core.NewNetwork(sch, seed, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	tr := telemetry.NewTracer(1 << 16)
	net.Instrument(reg, tr)
	aud := audit.New(net, audit.DefaultConfig())
	aud.Instrument(reg, tr)
	aud.Start()
	eng, err := NewEngine(net, sc, seed)
	if err != nil {
		t.Fatal(err)
	}
	eng.Instrument(reg, tr)
	eng.BindAuditor(aud)
	if err := eng.Schedule(); err != nil {
		t.Fatal(err)
	}
	return &campaign{sch: sch, net: net, aud: aud, eng: eng, reg: reg, tr: tr}
}

// run starts the network and drives the scheduler to the campaign
// deadline.
func (c *campaign) run() {
	c.net.Start()
	c.sch.Run(c.eng.Deadline())
}

// TestStormCampaignReconverges: the canned flap+BER+crash campaign
// passes Verify on several seeds — zero bound violations outside the
// declared degradation windows, full resynchronization, and an
// in-bound network by the scenario deadline.
func TestStormCampaignReconverges(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		c := newCampaign(t, topo.Chain(5), core.DefaultConfig(), seed, stormScenario())
		c.run()
		if err := c.eng.Verify(); err != nil {
			t.Errorf("seed %d: %v\n  %s\n  %s", seed, err, c.eng.Summary(), c.aud.Summary())
			continue
		}
		if got := c.tr.CountKind(telemetry.KindChaosInject); got != 3 {
			t.Errorf("seed %d: %d chaos_inject events, want 3", seed, got)
		}
		if got := c.tr.CountKind(telemetry.KindChaosClear); got != 3 {
			t.Errorf("seed %d: %d chaos_clear events, want 3", seed, got)
		}
		if c.tr.CountKind(telemetry.KindDeviceCrash) != 1 ||
			c.tr.CountKind(telemetry.KindDeviceRestart) != 1 {
			t.Errorf("seed %d: missing crash/restart trace events", seed)
		}
		// The crash partitions the chain; the restarted device rejoins
		// through INIT, so the run must observe fresh synced events after
		// the restart.
		if c.aud.TimeToSync() < 0 {
			t.Errorf("seed %d: network never converged", seed)
		}
	}
}

// TestCampaignDeterminism: the same scenario on the same seed produces
// byte-identical metrics and trace exports — the engine consumes only
// its own labeled RNG streams and perturbs nothing else.
func TestCampaignDeterminism(t *testing.T) {
	exports := func() (string, string) {
		c := newCampaign(t, topo.Chain(5), core.DefaultConfig(), 7, stormScenario())
		c.run()
		var m, tr bytes.Buffer
		if err := telemetry.WritePrometheus(&m, c.reg); err != nil {
			t.Fatal(err)
		}
		if err := telemetry.WriteJSONL(&tr, c.tr); err != nil {
			t.Fatal(err)
		}
		return m.String(), tr.String()
	}
	m1, t1 := exports()
	m2, t2 := exports()
	if m1 != m2 {
		t.Error("metrics exports differ between identical runs")
	}
	if t1 != t2 {
		t.Error("trace exports differ between identical runs")
	}
	if !strings.Contains(m1, "dtp_chaos_faults_injected_total") {
		t.Error("chaos metrics missing from export")
	}
}

// TestKitchenSinkFaults drives every remaining fault kind — grey loss,
// grey delay ramp, frequency step, temperature ramp, permanent BER
// degradation — on a short chain with the faulty-peer cooldown enabled,
// and requires full recovery.
func TestKitchenSinkFaults(t *testing.T) {
	sc := &Scenario{
		Name:               "kitchen-sink",
		SettleGrace:        D(1500 * sim.Microsecond), // covers the faulty-peer cooldown + re-INIT
		ReconvergeDeadline: D(8 * sim.Millisecond),
		Faults: []Fault{
			{Kind: KindGreyLoss, Link: []string{"h0", "sw1"}, At: D(2 * sim.Millisecond),
				Duration: D(500 * sim.Microsecond), LossP: 0.5},
			{Kind: KindGreyDelay, Link: []string{"sw1", "h1"}, At: D(2 * sim.Millisecond),
				Duration: D(sim.Millisecond), ExtraDelay: D(50 * sim.Nanosecond), Steps: 5},
			{Kind: KindFreqStep, Device: "h0", At: D(3500 * sim.Microsecond),
				Duration: D(sim.Millisecond), PPMStep: 150}, // clamped to the oscillator's ±max
			{Kind: KindTempRamp, Device: "sw1", At: D(3500 * sim.Microsecond),
				Duration: D(sim.Millisecond), PPMStep: -60},
			{Kind: KindBERDegrade, Link: []string{"h0", "sw1"}, At: D(5 * sim.Millisecond), BER: 1e-9},
		},
	}
	cfg := core.DefaultConfig()
	cfg.FaultyCooldownTicks = 100_000 // ≈640 µs: let ports marked faulty under grey delay recover
	c := newCampaign(t, topo.Chain(2), cfg, 11, sc)
	c.run()
	if err := c.eng.Verify(); err != nil {
		t.Fatalf("%v\n  %s\n  %s", err, c.eng.Summary(), c.aud.Summary())
	}
	if got := c.tr.CountKind(telemetry.KindChaosInject); got != 5 {
		t.Errorf("%d chaos_inject events, want 5", got)
	}
	// The BER degradation is permanent: injected, never cleared.
	if got := c.tr.CountKind(telemetry.KindChaosClear); got != 4 {
		t.Errorf("%d chaos_clear events, want 4", got)
	}
	ab, ba := c.net.LinkWires(0)
	if ab.BER() != 1e-9 || ba.BER() != 1e-9 {
		t.Errorf("permanent BER degradation not in effect: %g / %g", ab.BER(), ba.BER())
	}
	// The frequency step and the grey delay must have been restored.
	h0, _ := c.net.DeviceByName("h0")
	if ppm := h0.Clock().PPM(); ppm > h0.Clock().MaxPPM() {
		t.Errorf("frequency step not restored: %v ppm", ppm)
	}
}

// liarScenario: one device lies hard — 5000-unit counter inflation
// pushed every ~2 µs through both the beacon and JOIN paths — for half
// a millisecond. Adversarial faults register no degradation windows, so
// any violation they cause is unexcused by design.
func liarScenario() *Scenario {
	return &Scenario{
		Name:               "liar",
		SettleGrace:        D(100 * sim.Microsecond),
		ReconvergeDeadline: D(5 * sim.Millisecond),
		Faults: []Fault{
			{Kind: KindLiar, Device: "h0", At: D(sim.Millisecond),
				Duration: D(500 * sim.Microsecond), JumpUnits: 5000, Cadence: D(2 * sim.Microsecond)},
		},
	}
}

// TestLiarCampaignPlainVsHardened is the acceptance demo in miniature:
// plain DTP adopts the lie and fails verification with unexcused bound
// violations, while hardened DTP rejects every inflated advance,
// quarantines the liar, and passes the same verification once the
// fault clears.
func TestLiarCampaignPlainVsHardened(t *testing.T) {
	plain := newCampaign(t, topo.Pair(), core.DefaultConfig(), 3, liarScenario())
	plain.run()
	if err := plain.eng.Verify(); err == nil {
		t.Fatalf("plain mode verified a lying device; the attack did not land\n  %s",
			plain.aud.Summary())
	}
	if plain.aud.Violations() == 0 {
		t.Error("plain mode recorded no bound violations under a liar")
	}

	cfg := core.DefaultConfig()
	cfg.Hardened = true
	hard := newCampaign(t, topo.Pair(), cfg, 3, liarScenario())
	hard.run()
	if err := hard.eng.Verify(); err != nil {
		t.Fatalf("hardened: %v\n  %s\n  %s", err, hard.eng.Summary(), hard.aud.Summary())
	}
	if v := hard.aud.Violations(); v != 0 {
		t.Errorf("hardened mode leaked %d bound violations", v)
	}
	rej, quar := hard.net.ByzantineStats()
	if rej == 0 {
		t.Error("hardened mode rejected no counter advances: admission never engaged")
	}
	if quar == 0 {
		t.Error("lying port was never quarantined")
	}
	if hard.tr.CountKind(telemetry.KindCounterRejected) == 0 {
		t.Error("no counter_rejected trace events")
	}
	if hard.tr.CountKind(telemetry.KindPortQuarantined) == 0 {
		t.Error("no port_quarantined trace events")
	}
}

// TestScheduleRejectsUnknownTargets: bad device or cable names fail
// atomically at Schedule, before any event is planted.
func TestScheduleRejectsUnknownTargets(t *testing.T) {
	cases := []Fault{
		{Kind: KindCrash, Device: "nosuch", At: D(1), Duration: D(1)},
		{Kind: KindFlap, Link: []string{"h0", "h1"}, At: D(1), Duration: D(1),
			MeanUp: D(1), MeanDown: D(1)}, // both exist but are not adjacent on a chain
		{Kind: KindBERBurst, Link: []string{"h0", "ghost"}, At: D(1), Duration: D(1), BER: 1e-4},
	}
	for i, f := range cases {
		sch := sim.NewScheduler()
		net, err := core.NewNetwork(sch, 1, topo.Chain(2), core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(net, &Scenario{Name: "bad", Faults: []Fault{f}}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Schedule(); err == nil {
			t.Errorf("case %d: Schedule accepted unknown target", i)
		}
	}
}

// TestVerifyBeforeDeadline: Verify refuses to pass judgment on a run
// that stopped short of the scenario deadline.
func TestVerifyBeforeDeadline(t *testing.T) {
	c := newCampaign(t, topo.Chain(5), core.DefaultConfig(), 1, stormScenario())
	c.net.Start()
	c.sch.Run(sim.Millisecond) // well before the deadline
	err := c.eng.Verify()
	if err == nil || !strings.Contains(err.Error(), "before") {
		t.Fatalf("Verify at 1ms: %v, want deadline error", err)
	}
}
