package audit

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/stats"
	"github.com/dtplab/dtp/internal/telemetry"
	"github.com/dtplab/dtp/internal/topo"
)

// This file is the offline half of the auditor: cmd/dtptrace feeds it a
// recorded JSONL trace (dtpsim -trace-out, dtpd /trace) and it
// reconstructs what the protocol did — per-port state-machine dwell
// times, OWD and beacon-offset distributions (Figure 6 style), counter
// jump causality chains, and any recorded bound violations. Everything
// is rendered with sorted keys so the same trace always produces the
// same bytes.

// stateNames maps the stable Algorithm 1 state codes traced in
// state_change V1/V2 to names; Detail carries the new-state name too,
// so unknown codes only appear with foreign traces.
var stateNames = map[int64]string{0: "down", 1: "init", 2: "synced", 3: "quarantined"}

func stateName(code int64) string {
	if n, ok := stateNames[code]; ok {
		return n
	}
	return fmt.Sprintf("state%d", code)
}

// DwellEntry is the total time one port spent in one protocol state.
type DwellEntry struct {
	Port    string
	State   string
	Entries int
	Total   sim.Time
}

// JumpChain is a causal sequence of counter jumps: each jump happened on
// a port whose peer device jumped shortly before — the max-propagation
// wavefront of §3.2 crossing the network.
type JumpChain struct {
	Ports []string   // chronological
	Times []sim.Time // event timestamps
	Sizes []int64    // jump distances, units
}

// Report is the digest of one trace.
type Report struct {
	Start, End sim.Time
	Events     int
	Dwell      []DwellEntry
	OWD        *stats.IntHist            // synced events' measured OWD, port cycles
	Offsets    *stats.IntHist            // beacon_rx offsets, ticks (Figure 6c)
	PairOff    map[string]*stats.IntHist // per receiving port
	Chains     []JumpChain
	Violations []telemetry.Event

	// Hardened-mode defense activity: counter_rejected events grouped by
	// rejecting port, and the quarantine events themselves. RejectPorts
	// is sorted by port name for deterministic rendering.
	RejectPorts []RejectSummary
	Quarantines []telemetry.Event
}

// RejectSummary aggregates one port's bounded-jump admission rejections.
type RejectSummary struct {
	Port    string
	Count   int
	Beacons int // rejected BEACON advances
	Joins   int // rejected JOIN advances
	MaxAdv  int64
	First   sim.Time
	Last    sim.Time
}

// OWDRange returns the min/max measured one-way delay and the sample
// count (all zero when the trace holds no synced events).
func (r *Report) OWDRange() (lo, hi int64, n uint64) {
	if r.OWD.Total() == 0 {
		return 0, 0, 0
	}
	lo, hi = r.OWD.Range()
	return lo, hi, r.OWD.Total()
}

// Analyze digests a trace. g, when non-nil, provides the topology used
// to map ports to their peers for jump-chain reconstruction (ports are
// numbered in link order, matching core.NewNetwork); without it the
// chain section is omitted. window bounds how far apart two jumps may
// be and still be considered cause and effect (default 10 µs).
func Analyze(events []telemetry.Event, g *topo.Graph, window sim.Time) *Report {
	if window <= 0 {
		window = 10 * sim.Microsecond
	}
	r := &Report{
		Events:  len(events),
		OWD:     stats.NewIntHist(),
		Offsets: stats.NewIntHist(),
		PairOff: map[string]*stats.IntHist{},
	}
	if len(events) == 0 {
		return r
	}
	r.Start, r.End = events[0].At, events[len(events)-1].At

	type dwellState struct {
		cur   string
		since sim.Time
	}
	dwell := map[string]map[string]*DwellEntry{}
	ports := map[string]*dwellState{}
	addDwell := func(port, state string, d sim.Time, entries int) {
		m := dwell[port]
		if m == nil {
			m = map[string]*DwellEntry{}
			dwell[port] = m
		}
		e := m[state]
		if e == nil {
			e = &DwellEntry{Port: port, State: state}
			m[state] = e
		}
		e.Total += d
		e.Entries += entries
	}

	var jumps, rejects []telemetry.Event
	for _, e := range events {
		switch e.Kind {
		case telemetry.KindStateChange:
			ps := ports[e.Who]
			if ps == nil {
				// Time before a port's first transition is attributed to
				// its old state, measured from the trace start.
				addDwell(e.Who, stateName(e.V1), e.At-r.Start, 1)
			} else {
				addDwell(e.Who, ps.cur, e.At-ps.since, 1)
			}
			ports[e.Who] = &dwellState{cur: stateName(e.V2), since: e.At}
		case telemetry.KindSynced:
			r.OWD.Add(e.V1)
		case telemetry.KindBeaconRx:
			r.Offsets.Add(e.V1)
			h := r.PairOff[e.Who]
			if h == nil {
				h = stats.NewIntHist()
				r.PairOff[e.Who] = h
			}
			h.Add(e.V1)
		case telemetry.KindCounterJump:
			jumps = append(jumps, e)
		case telemetry.KindBoundViolation:
			r.Violations = append(r.Violations, e)
		case telemetry.KindCounterRejected:
			rejects = append(rejects, e)
		case telemetry.KindPortQuarantined:
			r.Quarantines = append(r.Quarantines, e)
		}
	}
	r.RejectPorts = summarizeRejects(rejects)
	// Close every port's final dwell interval at the trace end.
	for port, ps := range ports {
		addDwell(port, ps.cur, r.End-ps.since, 0)
	}
	portNames := make([]string, 0, len(dwell))
	for p := range dwell {
		portNames = append(portNames, p)
	}
	sort.Strings(portNames)
	for _, p := range portNames {
		states := make([]string, 0, len(dwell[p]))
		for s := range dwell[p] {
			states = append(states, s)
		}
		sort.Strings(states)
		for _, s := range states {
			r.Dwell = append(r.Dwell, *dwell[p][s])
		}
	}

	if g != nil {
		r.Chains = buildChains(jumps, PortPeers(*g), window)
	}
	return r
}

// summarizeRejects folds counter_rejected events into per-port
// summaries, sorted by port name.
func summarizeRejects(rejects []telemetry.Event) []RejectSummary {
	if len(rejects) == 0 {
		return nil
	}
	byPort := map[string]*RejectSummary{}
	for _, e := range rejects {
		s := byPort[e.Who]
		if s == nil {
			s = &RejectSummary{Port: e.Who, First: e.At, MaxAdv: e.V1}
			byPort[e.Who] = s
		}
		s.Count++
		if e.Detail == "join" {
			s.Joins++
		} else {
			s.Beacons++
		}
		if e.V1 > s.MaxAdv {
			s.MaxAdv = e.V1
		}
		s.Last = e.At
	}
	out := make([]RejectSummary, 0, len(byPort))
	for _, s := range byPort {
		out = append(out, *s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Port < out[b].Port })
	return out
}

// PortPeers maps every port name ("s1[2]") to its peer's port name,
// reconstructing internal/core's deterministic numbering: ports are
// created in topology link order, so a device's n-th incident link owns
// its port n.
func PortPeers(g topo.Graph) map[string]string {
	next := make([]int, len(g.Nodes))
	m := make(map[string]string, 2*len(g.Links))
	for _, l := range g.Links {
		pa := fmt.Sprintf("%s[%d]", g.Nodes[l.A].Name, next[l.A])
		pb := fmt.Sprintf("%s[%d]", g.Nodes[l.B].Name, next[l.B])
		next[l.A]++
		next[l.B]++
		m[pa] = pb
		m[pb] = pa
	}
	return m
}

// deviceOf strips the port index: "s1[2]" -> "s1".
func deviceOf(who string) string {
	if i := strings.IndexByte(who, '['); i >= 0 {
		return who[:i]
	}
	return who
}

// buildChains links each counter jump to the most recent jump on the
// peer device within the window, then reports maximal chains longest
// first. A jump at device X caused by a beacon from Y implies Y's
// counter moved first: that is the causal edge.
func buildChains(jumps []telemetry.Event, peers map[string]string, window sim.Time) []JumpChain {
	n := len(jumps)
	if n == 0 {
		return nil
	}
	prev := make([]int, n)
	length := make([]int, n)
	lastByDev := map[string]int{}
	for k, j := range jumps {
		prev[k] = -1
		length[k] = 1
		peer, ok := peers[j.Who]
		if ok {
			if m, seen := lastByDev[deviceOf(peer)]; seen && j.At-jumps[m].At <= window {
				prev[k] = m
				length[k] = length[m] + 1
			}
		}
		lastByDev[deviceOf(j.Who)] = k
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if length[order[a]] != length[order[b]] {
			return length[order[a]] > length[order[b]]
		}
		return jumps[order[a]].Seq < jumps[order[b]].Seq
	})
	used := make([]bool, n)
	var out []JumpChain
	for _, end := range order {
		if used[end] || length[end] < 2 {
			continue
		}
		var c JumpChain
		for k := end; k >= 0; k = prev[k] {
			used[k] = true
			c.Ports = append(c.Ports, jumps[k].Who)
			c.Times = append(c.Times, jumps[k].At)
			c.Sizes = append(c.Sizes, jumps[k].V1)
		}
		// Walking prev yields latest-first; flip to chronological.
		for l, r := 0, len(c.Ports)-1; l < r; l, r = l+1, r-1 {
			c.Ports[l], c.Ports[r] = c.Ports[r], c.Ports[l]
			c.Times[l], c.Times[r] = c.Times[r], c.Times[l]
			c.Sizes[l], c.Sizes[r] = c.Sizes[r], c.Sizes[l]
		}
		out = append(out, c)
	}
	return out
}

// WriteText renders the report as deterministic plain-text tables.
// topChains bounds the causality-chain section (default 5).
func (r *Report) WriteText(w io.Writer, topChains int) error {
	if topChains <= 0 {
		topChains = 5
	}
	var b strings.Builder

	fmt.Fprintf(&b, "== Trace window\n%d events spanning %v .. %v\n", r.Events, r.Start, r.End)

	b.WriteString("\n== Port state dwell times\n")
	if len(r.Dwell) == 0 {
		b.WriteString("no state_change events in trace\n")
	} else {
		span := float64(r.End - r.Start)
		fmt.Fprintf(&b, "%-10s %-8s %8s %14s %8s\n", "port", "state", "entries", "total", "share")
		for _, d := range r.Dwell {
			share := 0.0
			if span > 0 {
				share = 100 * float64(d.Total) / span
			}
			fmt.Fprintf(&b, "%-10s %-8s %8d %14v %7.2f%%\n", d.Port, d.State, d.Entries, d.Total, share)
		}
	}

	b.WriteString("\n== INIT one-way delays (port cycles)\n")
	if lo, hi, n := r.OWDRange(); n == 0 {
		b.WriteString("no synced events in trace\n")
	} else {
		fmt.Fprintf(&b, "n=%d range %d..%d\n", n, lo, hi)
		values, probs := r.OWD.PDF()
		for i, v := range values {
			fmt.Fprintf(&b, "%6d: %.4f\n", v, probs[i])
		}
	}

	b.WriteString("\n== Beacon offset distribution, ticks (Figure 6c style)\n")
	if r.Offsets.Total() == 0 {
		b.WriteString("no beacon_rx events in trace (record with firehose kinds enabled)\n")
	} else {
		lo, hi := r.Offsets.Range()
		fmt.Fprintf(&b, "n=%d range %d..%d\n", r.Offsets.Total(), lo, hi)
		values, probs := r.Offsets.PDF()
		for i, v := range values {
			fmt.Fprintf(&b, "%6d: %.4f\n", v, probs[i])
		}
		b.WriteString("\nper receiving port:\n")
		fmt.Fprintf(&b, "%-10s %10s %6s %6s\n", "port", "samples", "min", "max")
		names := make([]string, 0, len(r.PairOff))
		for p := range r.PairOff {
			names = append(names, p)
		}
		sort.Strings(names)
		for _, p := range names {
			h := r.PairOff[p]
			lo, hi := h.Range()
			fmt.Fprintf(&b, "%-10s %10d %6d %6d\n", p, h.Total(), lo, hi)
		}
	}

	fmt.Fprintf(&b, "\n== Counter-jump causality chains\n")
	if len(r.Chains) == 0 {
		b.WriteString("none (needs -topo for peer mapping, counter_jump events in trace, and multi-hop propagation)\n")
	} else {
		shown := r.Chains
		if len(shown) > topChains {
			shown = shown[:topChains]
		}
		for _, c := range shown {
			fmt.Fprintf(&b, "len %d: ", len(c.Ports))
			const maxShown = 8
			start := 0
			if len(c.Ports) > maxShown {
				start = len(c.Ports) - maxShown
				fmt.Fprintf(&b, "(%d earlier) ... ", start)
			}
			for k := start; k < len(c.Ports); k++ {
				if k > start {
					b.WriteString(" -> ")
				}
				fmt.Fprintf(&b, "%s+%d@%v", c.Ports[k], c.Sizes[k], c.Times[k])
			}
			b.WriteByte('\n')
		}
		if len(r.Chains) > topChains {
			fmt.Fprintf(&b, "(%d more chains)\n", len(r.Chains)-topChains)
		}
	}

	// The hardened-mode section appears only when the trace shows defense
	// activity, so reports from plain-mode runs are byte-identical to
	// earlier versions.
	if len(r.RejectPorts) > 0 || len(r.Quarantines) > 0 {
		b.WriteString("\n== Quarantine / rejection causality (hardened mode)\n")
		if len(r.RejectPorts) > 0 {
			fmt.Fprintf(&b, "%-10s %8s %8s %8s %10s %14s %14s\n",
				"port", "rejects", "beacons", "joins", "max_adv", "first", "last")
			for _, s := range r.RejectPorts {
				fmt.Fprintf(&b, "%-10s %8d %8d %8d %10d %14v %14v\n",
					s.Port, s.Count, s.Beacons, s.Joins, s.MaxAdv, s.First, s.Last)
			}
		}
		for _, q := range r.Quarantines {
			fmt.Fprintf(&b, "%v %s quarantined after %d rejections (owd=%d)\n",
				q.At, q.Who, q.V1, q.V2)
		}
	}

	b.WriteString("\n== Bound violations\n")
	if len(r.Violations) == 0 {
		b.WriteString("none\n")
	} else {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "%v %s offset=%d bound=%d %s\n", v.At, v.Who, v.V1, v.V2, v.Detail)
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}
