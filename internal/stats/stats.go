// Package stats provides the measurement plumbing the experiment
// harness uses: streaming summaries, integer histograms (offset-in-ticks
// PDFs, Figure 6c), and time series with bounded memory.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary accumulates streaming min/max/mean/variance plus reservoir
// quantiles.
type Summary struct {
	n          uint64
	min, max   float64
	mean, m2   float64
	reservoir  []float64
	maxSamples int
	seen       uint64
}

// NewSummary creates a summary keeping up to maxSamples values for
// quantiles (0 means 4096).
func NewSummary(maxSamples int) *Summary {
	if maxSamples <= 0 {
		maxSamples = 4096
	}
	return &Summary{min: math.Inf(1), max: math.Inf(-1), maxSamples: maxSamples}
}

// Add records a value.
func (s *Summary) Add(v float64) {
	s.n++
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)

	// Reservoir sampling keeps quantiles unbiased with bounded memory.
	s.seen++
	if len(s.reservoir) < s.maxSamples {
		s.reservoir = append(s.reservoir, v)
	} else {
		// Deterministic stride-based replacement (no RNG dependency):
		// replace slot (seen mod cap). Slightly biased toward recent
		// values, acceptable for reporting.
		s.reservoir[s.seen%uint64(s.maxSamples)] = v
	}
}

// N returns the number of samples.
func (s *Summary) N() uint64 { return s.n }

// Min returns the smallest sample (+Inf when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (-Inf when empty).
func (s *Summary) Max() float64 { return s.max }

// MaxAbs returns max(|min|, |max|), the worst-case magnitude.
func (s *Summary) MaxAbs() float64 {
	if s.n == 0 {
		return 0
	}
	return math.Max(math.Abs(s.min), math.Abs(s.max))
}

// Mean returns the arithmetic mean.
func (s *Summary) Mean() float64 { return s.mean }

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Quantile returns the q-th quantile (0..1) from the reservoir, using
// nearest-rank rounding. (Flooring the fractional rank — the previous
// behavior — systematically underestimates upper quantiles on small
// reservoirs: p99 of ten samples floored to the 9th value, never the
// max.)
func (s *Summary) Quantile(q float64) float64 {
	if len(s.reservoir) == 0 {
		return math.NaN()
	}
	tmp := make([]float64, len(s.reservoir))
	copy(tmp, s.reservoir)
	sort.Float64s(tmp)
	idx := int(math.Round(q * float64(len(tmp)-1)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(tmp) {
		idx = len(tmp) - 1
	}
	return tmp[idx]
}

// String renders a one-line report.
func (s *Summary) String() string {
	if s.n == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%.4g p50=%.4g p99=%.4g max=%.4g mean=%.4g sd=%.4g",
		s.n, s.min, s.Quantile(0.5), s.Quantile(0.99), s.max, s.mean, s.Stddev())
}

// IntHist is a histogram over small integers (offsets in ticks).
type IntHist struct {
	counts map[int64]uint64
	total  uint64
}

// NewIntHist creates an empty histogram.
func NewIntHist() *IntHist {
	return &IntHist{counts: map[int64]uint64{}}
}

// Add records a value.
func (h *IntHist) Add(v int64) {
	h.counts[v]++
	h.total++
}

// Total returns the sample count.
func (h *IntHist) Total() uint64 { return h.total }

// Count returns the count at a value.
func (h *IntHist) Count(v int64) uint64 { return h.counts[v] }

// Range returns the smallest and largest recorded values.
func (h *IntHist) Range() (lo, hi int64) {
	first := true
	for v := range h.counts {
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
	}
	return lo, hi
}

// PDF returns the normalized distribution over [lo, hi] — the format of
// Figure 6c.
func (h *IntHist) PDF() (values []int64, probs []float64) {
	if h.total == 0 {
		return nil, nil
	}
	lo, hi := h.Range()
	for v := lo; v <= hi; v++ {
		values = append(values, v)
		probs = append(probs, float64(h.counts[v])/float64(h.total))
	}
	return values, probs
}

// String renders "v:prob" pairs.
func (h *IntHist) String() string {
	values, probs := h.PDF()
	var b strings.Builder
	for i, v := range values {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%.4f", v, probs[i])
	}
	return b.String()
}

// Series is a bounded time series: it keeps every point until cap, then
// decimates by dropping every other retained point and doubling the
// keep-stride — preserving overall shape for long runs.
type Series struct {
	T      []float64 // seconds
	V      []float64
	cap    int
	stride int
	skip   int
}

// NewSeries creates a series bounded to maxPoints (0 means 100k).
func NewSeries(maxPoints int) *Series {
	if maxPoints <= 0 {
		maxPoints = 100_000
	}
	return &Series{cap: maxPoints, stride: 1}
}

// Add appends a point, decimating when full.
func (s *Series) Add(tSec, v float64) {
	s.skip++
	if s.skip < s.stride {
		return
	}
	s.skip = 0
	if len(s.T) >= s.cap {
		keepT := make([]float64, 0, s.cap/2+1)
		keepV := make([]float64, 0, s.cap/2+1)
		for i := 0; i < len(s.T); i += 2 {
			keepT = append(keepT, s.T[i])
			keepV = append(keepV, s.V[i])
		}
		s.T, s.V = keepT, keepV
		s.stride *= 2
	}
	s.T = append(s.T, tSec)
	s.V = append(s.V, v)
}

// Len returns the number of retained points.
func (s *Series) Len() int { return len(s.T) }

// WriteTSV renders "time\tvalue" lines into sb.
func (s *Series) WriteTSV(sb *strings.Builder) {
	for i := range s.T {
		fmt.Fprintf(sb, "%.9f\t%.6g\n", s.T[i], s.V[i])
	}
}

// MovingAverage returns a smoothed copy using a trailing window of n
// points — the daemon smoothing of Figure 7b.
func MovingAverage(v []float64, n int) []float64 {
	if n <= 1 {
		out := make([]float64, len(v))
		copy(out, v)
		return out
	}
	out := make([]float64, len(v))
	var sum float64
	for i := range v {
		sum += v[i]
		if i >= n {
			sum -= v[i-n]
		}
		w := i + 1
		if w > n {
			w = n
		}
		out[i] = sum / float64(w)
	}
	return out
}
