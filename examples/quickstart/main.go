// Quickstart: synchronize two directly connected machines with DTP and
// watch the offset stay within the paper's 4T = 25.6 ns bound, even
// with worst-case (±100 ppm) oscillators and a fully loaded link.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/dtplab/dtp"
)

func main() {
	// Two hosts, one 10 m cable. Pin the oscillators to the extremes
	// the 802.3 standard allows: one fast by 100 ppm, one slow.
	sys, err := dtp.New(dtp.Pair(),
		dtp.WithSeed(42),
		dtp.WithPPM(map[string]float64{"h0": +100, "h1": -100}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Bring the link up: the ports measure their one-way delay (INIT
	// phase) and start exchanging BEACONs in idle PHY blocks.
	sys.Start()
	if err := sys.RunUntilSynced(time.Second); err != nil {
		log.Fatal(err)
	}
	owd, _ := sys.MeasuredOWDTicks("h0", "h1")
	fmt.Printf("link up, measured one-way delay: %d ticks (%.1f ns)\n",
		owd, float64(owd)*sys.TickNanos())

	// Without DTP these clocks would drift apart by 200 ppm — 31,250
	// ticks every second. Watch what actually happens.
	fmt.Printf("\n%12s %16s %14s\n", "t", "offset (ticks)", "offset (ns)")
	for i := 0; i < 5; i++ {
		sys.Run(200 * time.Millisecond)
		off, _ := sys.OffsetTicks("h0", "h1")
		fmt.Printf("%12v %16d %14.1f\n", sys.Now(), off, float64(off)*sys.TickNanos())
	}

	// Saturate the link with MTU frames: DTP beacons ride the mandatory
	// interpacket gaps, so precision is unaffected (Figure 6a).
	fmt.Println("\nsaturating the link with MTU-sized frames...")
	sys.SetUniformLoad(1522)
	var worst int64
	for i := 0; i < 5; i++ {
		sys.Run(200 * time.Millisecond)
		off, _ := sys.OffsetTicks("h0", "h1")
		if off < 0 {
			off = -off
		}
		if off > worst {
			worst = off
		}
	}
	fmt.Printf("worst offset under full load: %d ticks = %.1f ns (bound %.1f ns)\n",
		worst, float64(worst)*sys.TickNanos(), sys.BoundNanos())
}
