package discipline

import "math"

// pll is an Ntimed-style proportional-integral phase-locked loop: each
// calibration measures the phase error between the predicted and
// latched counter, corrects the anchor by KP of it, and integrates
// KI of the implied frequency error into the ratio. With the default
// gains the closed loop contracts phase error by (1-KP-KI) per sample
// and pure frequency error by (1-KI), so acquisition from a cold
// nominal ratio takes a few tens of samples.
type pll struct {
	kp, ki  float64
	nominal float64

	m      Model
	n      uint64 // samples since reset
	resid  float64
	ppmErr float64
	drops  uint64
}

const (
	// pllColdSlackPPM is the frequency slack reported before the loop
	// locks: it must cover the worst-case nominal-ratio error (TSC
	// trim plus oscillator offset plus DTP rate pull, each tens of ppm).
	pllColdSlackPPM = 150
	// pllLockSamples is how many samples the loop needs before its
	// adaptive slack estimate is trusted.
	pllLockSamples = 8
	// pllResidGain smooths the absolute phase-residual envelope.
	pllResidGain = 0.125
	// pllErrMult scales the residual envelope into the reported anchor
	// error bound (an EWMA of |e| underestimates the tail; 4x covers
	// p99.9 for the near-Gaussian latch noise).
	pllErrMult = 4
	// pllSlackMult scales the smoothed per-interval frequency mismatch
	// into the reported slack; pllFloorSlackPPM is its floor.
	pllSlackMult     = 6
	pllFloorSlackPPM = 5
)

func newPLL(c Config, nominalRatio float64) *pll {
	d := &pll{kp: c.KP, ki: c.KI, nominal: nominalRatio}
	d.Reset()
	return d
}

func (d *pll) Name() string { return "pll" }

func (d *pll) Feed(s Sample) Model {
	d.m.Dropped = false
	if !d.m.Valid {
		d.m = Model{
			Valid: true, DTP: s.DTP, TSC: s.TSC, Ratio: d.nominal,
			ErrUnits: s.LatchErrPs * d.nominal, SlackPPM: pllColdSlackPPM,
		}
		d.n = 1
		return d.m
	}
	dt := s.TSC - d.m.TSC
	if dt <= 0 {
		// A non-advancing TSC sample carries no phase information.
		d.m.Dropped = true
		d.drops++
		return d.m
	}
	pred := d.m.DTP + dt*d.m.Ratio
	e := s.DTP - pred // phase error, counter units
	d.m.Ratio += d.ki * (e / dt)
	d.m.DTP = pred + d.kp*e
	d.m.TSC = s.TSC

	ae := math.Abs(e)
	ppm := ae / dt / d.m.Ratio * 1e6 // frequency mismatch implied by this interval
	if d.n == 1 {
		d.resid, d.ppmErr = ae, ppm
	} else {
		d.resid += pllResidGain * (ae - d.resid)
		d.ppmErr += pllResidGain * (ppm - d.ppmErr)
	}
	d.n++

	d.m.ErrUnits = s.LatchErrPs*d.m.Ratio + pllErrMult*d.resid
	if d.n < pllLockSamples {
		d.m.SlackPPM = pllColdSlackPPM
	} else {
		d.m.SlackPPM = math.Max(pllFloorSlackPPM, pllSlackMult*d.ppmErr)
	}
	return d.m
}

func (d *pll) Model() Model { return d.m }

func (d *pll) Reset() {
	d.m = Model{Ratio: d.nominal, SlackPPM: pllColdSlackPPM}
	d.n, d.resid, d.ppmErr = 0, 0, 0
}

func (d *pll) Dropped() uint64 { return d.drops }
