package daemon

import (
	"math"
	"sort"
	"testing"

	"github.com/dtplab/dtp/internal/discipline"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/stats"
)

// TestGoldenDisciplineConvergence runs every discipline against the
// same DefaultConfig PCIe noise on the synced pair and holds each to a
// golden bound: time to enter (and stay inside) its steady-state band,
// and steady-state p99. The ma row reproduces Figure 7a; the robust
// disciplines must reach the paper's *smoothed* band (±4 ticks) on the
// raw serve path, because their anchors are regression-filtered rather
// than single raw samples.
func TestGoldenDisciplineConvergence(t *testing.T) {
	cases := []struct {
		kind         string
		bandTicks    float64 // steady-state band the estimate must enter and hold
		convergeByMs float64 // deadline to enter the band for good
		p99Ticks     float64 // steady-state p99 (second half of the run)
	}{
		{"ma", 16, 1000, 16},
		{"pll", 8, 1000, 14},
		{"theilsen", 4, 1000, 7},
		{"lad", 4, 1000, 6},
	}
	for _, c := range cases {
		t.Run(c.kind, func(t *testing.T) {
			sch, n := syncedPair(t, 21)
			d, err := Attach(n.Devices[0], Options{
				Config:     DefaultConfig().Compressed(100), // calibrate every 10 ms
				Discipline: discipline.Config{Kind: c.kind},
			}, 23)
			if err != nil {
				t.Fatal(err)
			}
			start := sch.Now()
			type pt struct {
				ms  float64
				off float64
			}
			var seq []pt
			d.OnSample = func(off float64) {
				seq = append(seq, pt{float64(sch.Now()-start) / float64(sim.Millisecond), off})
			}
			d.Start()
			sch.RunFor(5 * sim.Second) // ~500 calibrations
			if len(seq) < 300 {
				t.Fatalf("only %d calibrations", len(seq))
			}
			// Convergence: acquisition time — when the rolling median
			// (window 7, spike-immune: PCIe contention spikes recur at
			// ~0.5% forever) first enters the band and holds it for 50
			// consecutive samples. Later excursions are the steady-state
			// story and are held to the p99 golden instead.
			const medWin, holdFor = 7, 50
			med := make([]float64, 0, len(seq))
			win := make([]float64, 0, medWin)
			for i := medWin - 1; i < len(seq); i++ {
				win = win[:0]
				for _, q := range seq[i-medWin+1 : i+1] {
					win = append(win, q.off)
				}
				sort.Float64s(win)
				med = append(med, win[medWin/2])
			}
			converge := math.Inf(1)
			run := 0
			for i, m := range med {
				if math.Abs(m) > c.bandTicks {
					run = 0
					continue
				}
				if run++; run == holdFor {
					converge = seq[i+medWin-1-holdFor+1].ms
					break
				}
			}
			s := stats.NewSummary(0)
			for _, p := range seq[len(seq)/2:] {
				s.Add(p.off)
			}
			p99 := math.Max(math.Abs(s.Quantile(0.99)), math.Abs(s.Quantile(0.01)))
			t.Logf("%s: converge-to-±%.0f %.0f ms, steady p99 %.2f ticks, dropped %d",
				c.kind, c.bandTicks, converge, p99, d.DroppedSamples())
			if converge > c.convergeByMs {
				t.Fatalf("entered ±%.0f-tick band for good at %.0f ms, golden deadline %.0f ms",
					c.bandTicks, converge, c.convergeByMs)
			}
			if p99 > c.p99Ticks {
				t.Fatalf("steady-state p99 %.2f ticks > golden %.2f", p99, c.p99Ticks)
			}
		})
	}
}

// TestDaemonDisciplineResetOnRestart is the crash/rejoin regression
// test: a device restart resets the hardware counter to zero, so every
// calibration anchor the discipline holds belongs to a dead counter
// domain. The daemon must detect the restart (via Device.Restarts) and
// reset the discipline instead of feeding the EWMA a wildly negative
// instantaneous ratio measured across the reset.
func TestDaemonDisciplineResetOnRestart(t *testing.T) {
	sch, n := syncedPair(t, 25)
	dev := n.Devices[0]
	d, err := Attach(dev, Options{Config: DefaultConfig().Compressed(100)}, 27)
	if err != nil {
		t.Fatal(err)
	}
	start := sch.Now()
	var restartMs float64
	type pt struct {
		ms  float64
		off float64
	}
	var after []pt
	d.OnSample = func(off float64) {
		ms := float64(sch.Now()-start) / float64(sim.Millisecond)
		if restartMs > 0 && ms > restartMs {
			after = append(after, pt{ms, off})
		}
	}
	d.Start()
	sch.RunFor(1500 * sim.Millisecond)
	if !d.Calibrated() {
		t.Fatal("daemon never calibrated")
	}
	dev.Crash()
	sch.RunFor(20 * sim.Millisecond)
	restartMs = float64(sch.Now()-start) / float64(sim.Millisecond)
	dev.Restart()
	sch.RunFor(3 * sim.Second)

	if got := d.DisciplineResets(); got != 1 {
		t.Fatalf("discipline resets = %d, want exactly 1", got)
	}
	if len(after) < 200 {
		t.Fatalf("only %d post-restart calibrations", len(after))
	}
	// The ratio must not be poisoned: it has to agree with the counter's
	// actual advance rate, measured over a final window. (Not with the
	// nominal rate — the rejoin's re-measured link delay can leave the
	// pair in a mutual-pull regime where both counters legitimately
	// ratchet a few hundred ppm fast; the discipline's job is to track
	// whatever the hardware counter really does.)
	t0, c0 := sch.Now(), dev.GlobalCounter()
	sch.RunFor(1 * sim.Second)
	measured := float64(dev.GlobalCounter()-c0) / float64(sch.Now()-t0)
	if ppm := math.Abs(d.Ratio()/measured-1) * 1e6; ppm > 150 {
		t.Fatalf("post-restart ratio off the measured counter rate by %.0f ppm — discipline state poisoned", ppm)
	}
	// And the serve path recovers to the paper band: ignore the rejoin
	// transient (JOIN pulls the counter back up), then require Figure 7a
	// precision again.
	s := stats.NewSummary(0)
	for _, p := range after[len(after)/2:] {
		s.Add(p.off)
	}
	p99 := math.Max(math.Abs(s.Quantile(0.99)), math.Abs(s.Quantile(0.01)))
	if p99 > 16 {
		t.Fatalf("post-restart steady p99 = %.1f ticks, want <= 16", p99)
	}
	t.Logf("resets=%d post-restart samples=%d steady p99=%.2f", d.DisciplineResets(), len(after), p99)
}

// TestAttachRejectsBadDiscipline: the option-struct constructor
// surfaces configuration errors instead of panicking.
func TestAttachRejectsBadDiscipline(t *testing.T) {
	_, n := syncedPair(t, 29)
	if _, err := Attach(n.Devices[0], Options{
		Discipline: discipline.Config{Kind: "kalman"},
	}, 31); err == nil {
		t.Fatal("Attach accepted an unknown discipline kind")
	}
}

// TestRatioGainShimMapsToMovingAverage: the deprecated Config.RatioGain
// knob still parameterizes the default discipline, so legacy callers
// get bit-identical behavior through the new constructor.
func TestRatioGainShimMapsToMovingAverage(t *testing.T) {
	sch, n := syncedPair(t, 33)
	cfg := DefaultConfig().Compressed(100)
	cfg.RatioGain = 0.35

	legacy := New(n.Devices[0], cfg, 35)
	opt, err := Attach(n.Devices[1], Options{Config: cfg}, 35)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Discipline() != "ma" || opt.Discipline() != "ma" {
		t.Fatalf("disciplines %q/%q, want ma", legacy.Discipline(), opt.Discipline())
	}
	legacy.Start()
	opt.Start()
	sch.RunFor(2 * sim.Second)
	// Different devices and RNG streams, so values differ — but both
	// must have calibrated and track their counters to Figure 7a noise.
	for _, d := range []*Daemon{legacy, opt} {
		if !d.Calibrated() {
			t.Fatal("daemon never calibrated")
		}
		if off := math.Abs(d.OffsetUnits()); off > 40 {
			t.Fatalf("offset %.1f units with gain shim", off)
		}
	}
}
