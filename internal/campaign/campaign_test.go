package campaign

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func msec(n int) Duration { return Duration(time.Duration(n) * time.Millisecond) }

func TestGridDefaultsAndExpansionOrder(t *testing.T) {
	g := Grid{
		Topos:     []string{"pair", "chain:3"},
		Seeds:     []uint64{7, 8},
		Durations: []Duration{msec(1)},
	}
	pts := g.Expand()
	if len(pts) != 4 {
		t.Fatalf("expanded %d points, want 4", len(pts))
	}
	want := []struct {
		topo string
		seed uint64
	}{{"pair", 7}, {"pair", 8}, {"chain:3", 7}, {"chain:3", 8}}
	for i, w := range want {
		p := pts[i]
		if p.Index != i || p.Topo != w.topo || p.Seed != w.seed {
			t.Fatalf("point %d = %+v, want topo=%s seed=%d index=%d", i, p, w.topo, w.seed, i)
		}
		if p.Load != "none" || p.Beacon != 200 {
			t.Fatalf("point %d missing defaults: %+v", i, p)
		}
	}
}

func TestGridValidate(t *testing.T) {
	for _, bad := range []Grid{
		{Loads: []string{"heavy"}},
		{Beacons: []uint64{0}},
		{Durations: []Duration{-msec(1)}},
		{BER: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("grid %+v validated, want error", bad)
		}
	}
	if err := (Grid{}).Validate(); err != nil {
		t.Fatalf("empty grid should validate with defaults: %v", err)
	}
}

func TestRunPointBadTopology(t *testing.T) {
	g := Grid{}.withDefaults()
	res := RunPoint(g, Point{Topo: "moebius:4", Seed: 1, Load: "none", Beacon: 200, Duration: msec(1)})
	if res.Err == "" || res.Synced {
		t.Fatalf("bad topology should produce an errored result, got %+v", res)
	}
	if res.OK() {
		t.Fatal("errored result must not report OK")
	}
}

func TestRunSmallGridPasses(t *testing.T) {
	g := Grid{
		Name:      "unit",
		Topos:     []string{"pair"},
		Seeds:     []uint64{1, 2},
		Durations: []Duration{msec(2)},
	}
	rep, err := Run(g, Options{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("campaign failed: %+v", rep.Aggregate)
	}
	for i, r := range rep.Results {
		if r.Index != i {
			t.Fatalf("result %d has index %d: merge out of grid order", i, r.Index)
		}
		if !r.Synced || !r.WithinBound || r.BoundTicks <= 0 {
			t.Fatalf("run %d unhealthy: %+v", i, r)
		}
		if r.OWDMinTicks <= 0 || r.OWDMaxTicks < r.OWDMinTicks {
			t.Fatalf("run %d OWD range [%d, %d] implausible", i, r.OWDMinTicks, r.OWDMaxTicks)
		}
		if r.Wall <= 0 {
			t.Fatalf("run %d missing wall time", i)
		}
	}
	if rep.Aggregate.Runs != 2 || rep.Aggregate.Passed != 2 {
		t.Fatalf("aggregate %+v, want 2/2 passed", rep.Aggregate)
	}
}

func TestOnResultStreamsInGridOrder(t *testing.T) {
	g := Grid{
		Topos:     []string{"pair"},
		Seeds:     []uint64{1, 2, 3, 4, 5, 6},
		Durations: []Duration{msec(1)},
	}
	var order []int
	_, err := Run(g, Options{Jobs: 4, OnResult: func(r *Result) {
		order = append(order, r.Index)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 6 {
		t.Fatalf("streamed %d results, want 6", len(order))
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("stream order %v not grid order", order)
		}
	}
}

func TestTimeServicePointServesCoveredIntervals(t *testing.T) {
	if testing.Short() {
		t.Skip("serving-plane campaign point is slow")
	}
	g := Grid{
		Name:        "timesvc",
		Topos:       []string{"pair"},
		Seeds:       []uint64{11},
		Durations:   []Duration{msec(300)},
		TimeService: true,
	}
	rep, err := Run(g, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if r.Err != "" {
		t.Fatalf("time-service run errored: %s", r.Err)
	}
	// 300 ms at the 100 µs cadence is ~3000 probes on the one served
	// host; the first ~60 ms fail closed while the follower warms up.
	if r.TimeReads < 1000 {
		t.Fatalf("only %d interval reads; serving plane barely ran", r.TimeReads)
	}
	if r.TimeUncovered != 0 {
		t.Fatalf("%d served intervals excluded true time on a fault-free run", r.TimeUncovered)
	}
	if r.TimePublishes < 10 {
		t.Fatalf("only %d publishes over 300 ms", r.TimePublishes)
	}
	if r.TimeWidthP50Ps <= 0 || r.TimeWidthP99Ps < r.TimeWidthP50Ps {
		t.Fatalf("implausible width percentiles p50=%.0f p99=%.0f", r.TimeWidthP50Ps, r.TimeWidthP99Ps)
	}
	if !r.OK() {
		t.Fatalf("run not OK: %+v", r)
	}
	if rep.Aggregate.TimeReads != r.TimeReads || rep.Aggregate.TimeUncovered != 0 {
		t.Fatalf("aggregate time accounting wrong: %+v", rep.Aggregate)
	}
}

func TestChaosPointVerifies(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign point is slow")
	}
	g := Grid{
		Topos:     []string{"chain:5"},
		Seeds:     []uint64{1},
		Durations: []Duration{msec(5)},
		Chaos:     []string{"../../examples/chaos/storm.json"},
	}
	rep, err := Run(g, Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rep.Results[0]
	if r.Err != "" {
		t.Fatalf("chaos run errored: %s", r.Err)
	}
	if !r.ChaosOK {
		t.Fatalf("storm scenario failed verification: %s", r.ChaosErr)
	}
	if r.AuditViolations != 0 {
		t.Fatalf("%d unexcused audit violations under declared fault windows", r.AuditViolations)
	}
	if rep.Aggregate.ChaosRuns != 1 || rep.Aggregate.ChaosVerified != 1 {
		t.Fatalf("aggregate chaos accounting wrong: %+v", rep.Aggregate)
	}
}

func TestLoadGridJSON(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/grid.json"
	if err := writeFile(path, `{
		"name": "smoke",
		"topos": ["chain:3"],
		"seeds": [1, 2, 3],
		"durations": ["2ms"],
		"wander": true
	}`); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGrid(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "smoke" || len(g.Seeds) != 3 || !g.Wander {
		t.Fatalf("loaded grid %+v", g)
	}
	if d := g.Durations[0].Std(); d != 2*time.Millisecond {
		t.Fatalf("duration %v, want 2ms", d)
	}
	if _, err := LoadGrid(dir + "/missing.json"); err == nil {
		t.Fatal("missing grid file should error")
	}
	if err := writeFile(path, `{"loads": ["heavy"]}`); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGrid(path); err == nil {
		t.Fatal("invalid grid should fail validation on load")
	}
}

func TestResultJSONExcludesWall(t *testing.T) {
	r := Result{Point: Point{Topo: "pair", Seed: 1}, Wall: 123 * time.Second}
	var b bytes.Buffer
	if err := WriteResultJSON(&b, &r); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "123") || strings.Contains(strings.ToLower(b.String()), "wall") {
		t.Fatalf("wall time leaked into deterministic JSON: %s", b.String())
	}
}

func TestSeedSweep(t *testing.T) {
	got := SeedSweep(5, 3)
	if len(got) != 3 || got[0] != 5 || got[2] != 7 {
		t.Fatalf("SeedSweep(5,3) = %v", got)
	}
	if got := SeedSweep(9, 0); len(got) != 1 || got[0] != 9 {
		t.Fatalf("SeedSweep(9,0) = %v", got)
	}
}
