package timesvc

import (
	"encoding/json"
	"errors"
	"net/http"
)

// TimeResponse is the JSON body served for one time query.
type TimeResponse struct {
	Host       string  `json:"host"`
	UTCPs      float64 `json:"utc_ps"`
	EarliestPs float64 `json:"earliest_ps"`
	LatestPs   float64 `json:"latest_ps"`
	WidthPs    float64 `json:"width_ps"`
	Epoch      uint64  `json:"epoch"`
}

// Handler serves a Clock over HTTP:
//
//	GET <prefix>now       -> {"utc_ps": ..., "earliest_ps": ..., ...}
//	GET <prefix>interval  -> same body (alias; clients wanting only the
//	                         point estimate read utc_ps)
//
// Failed-closed reads (nothing published, or the snapshot aged past
// MaxAge) return 503 so clients distinguish "service degraded" from
// transport errors. The handler is an observability/demo surface on
// dtpd's existing listener, NOT the fast path — in-process readers use
// the Clock directly; cmd/dtpload measures that path.
func Handler(host string, c *Clock) http.Handler {
	mux := http.NewServeMux()
	serve := func(w http.ResponseWriter, r *http.Request) {
		utc, iv, err := c.At(c.tb.Raw())
		if err != nil {
			status := http.StatusServiceUnavailable
			if !errors.Is(err, ErrNoSnapshot) && !errors.Is(err, ErrStale) {
				status = http.StatusInternalServerError
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(TimeResponse{
			Host:       host,
			UTCPs:      utc,
			EarliestPs: iv.EarliestPs,
			LatestPs:   iv.LatestPs,
			WidthPs:    iv.WidthPs(),
			Epoch:      c.store.Epoch(),
		})
	}
	mux.HandleFunc("/now", serve)
	mux.HandleFunc("/interval", serve)
	return mux
}
