// Command dtpexp regenerates every table and figure of the paper's
// evaluation section (§6). Each experiment prints the same rows or
// series the paper reports, plus the measured-vs-paper comparison that
// EXPERIMENTS.md records.
//
// Usage:
//
//	dtpexp -fig 6a          # DTP offsets, beacon interval 200, MTU load
//	dtpexp -fig 6f -series  # PTP under heavy load, with TSV time series
//	dtpexp -table 1         # protocol comparison
//	dtpexp -sweep bound     # 4TD scaling across hop counts
//	dtpexp -all -jobs 8     # everything, fanned out across 8 workers
//
// With -all the independent experiments render concurrently across
// -jobs workers and print in canonical order, so the output is
// byte-identical to a serial run (modulo wall-clock footers).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/dtplab/dtp/internal/cliutil"
	"github.com/dtplab/dtp/internal/experiments"
	"github.com/dtplab/dtp/internal/par"
	"github.com/dtplab/dtp/internal/sim"
)

var (
	// -seed -duration -jobs (duration 0 = per-experiment default)
	shared = cliutil.Flags{}

	figFlag    = flag.String("fig", "", "figure to regenerate: 6a 6b 6c 6d 6e 6f 7a 7b")
	tableFlag  = flag.String("table", "", "table to regenerate: 1 2")
	sweepFlag  = flag.String("sweep", "", "sweep to run: bound alpha beacon cdc tc bc synce master mixed incremental disciplines")
	allFlag    = flag.Bool("all", false, "run every experiment")
	seriesFlag = flag.Bool("series", false, "also print time-series TSV")
)

// allFigs, allTables, and allSweeps define the canonical -all order.
var (
	allFigs   = []string{"6a", "6b", "6c", "6d", "6e", "6f", "7a", "7b"}
	allTables = []string{"1", "2"}
	allSweeps = []string{"bound", "alpha", "beacon", "cdc", "tc", "bc", "synce", "master", "mixed", "incremental", "disciplines"}
)

func main() {
	shared.Register(flag.CommandLine,
		cliutil.FlagSeed|cliutil.FlagDuration|cliutil.FlagJobs|cliutil.FlagDiscipline)
	flag.Parse()
	if err := shared.Validate(); err != nil {
		cliutil.Fatal("dtpexp", 2, err)
	}
	disc, err := shared.ParseDiscipline()
	if err != nil {
		cliutil.Fatal("dtpexp", 2, err)
	}
	o := experiments.Options{
		Seed:       shared.Seed,
		Duration:   sim.FromStd(shared.Duration),
		Jobs:       shared.Jobs,
		Discipline: disc,
	}
	if *allFlag {
		if err := runAll(os.Stdout, o); err != nil {
			cliutil.Fatal("dtpexp", 1, err)
		}
		return
	}
	ran := false
	if *figFlag != "" {
		if err := runFig(os.Stdout, *figFlag, o); err != nil {
			cliutil.Fatal("dtpexp", 1, err)
		}
		ran = true
	}
	if *tableFlag != "" {
		if err := runTable(os.Stdout, *tableFlag, o); err != nil {
			cliutil.Fatal("dtpexp", 1, err)
		}
		ran = true
	}
	if *sweepFlag != "" {
		if err := runSweep(os.Stdout, *sweepFlag, o); err != nil {
			cliutil.Fatal("dtpexp", 1, err)
		}
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// runAll renders every experiment into its own buffer, fanning the
// independent runs out across the worker pool, then prints the buffers
// in canonical order. Each item keeps its inner sweeps serial (Jobs=1)
// so parallelism lives at item granularity and the worker pool is not
// oversubscribed.
func runAll(w io.Writer, o experiments.Options) error {
	type item struct {
		kind string
		name string
	}
	var items []item
	for _, f := range allFigs {
		items = append(items, item{"fig", f})
	}
	for _, t := range allTables {
		items = append(items, item{"table", t})
	}
	for _, s := range allSweeps {
		items = append(items, item{"sweep", s})
	}
	inner := o
	inner.Jobs = 1
	bufs, err := par.Map(o.Jobs, len(items), func(i int) ([]byte, error) {
		var b bytes.Buffer
		var err error
		switch items[i].kind {
		case "fig":
			err = runFig(&b, items[i].name, inner)
		case "table":
			err = runTable(&b, items[i].name, inner)
		default:
			err = runSweep(&b, items[i].name, inner)
		}
		return b.Bytes(), err
	})
	if err != nil {
		return err
	}
	for _, b := range bufs {
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

func runFig(w io.Writer, fig string, o experiments.Options) error {
	start := time.Now()
	switch fig {
	case "6a", "6b", "6c":
		var res *experiments.DTPFigResult
		var err error
		var desc string
		switch fig {
		case "6a":
			res, err = experiments.Fig6a(o)
			desc = "DTP offsets, BEACON interval 200, heavy MTU load (paper: within ±4 ticks / 25.6 ns)"
		case "6b":
			res, err = experiments.Fig6b(o)
			desc = "DTP offsets, BEACON interval 1200, heavy jumbo load (paper: within ±4 ticks)"
		default:
			res, err = experiments.Fig6c(o)
			desc = "DTP offset distribution at S3 (paper: concentrated in [-2, 4] ticks)"
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Figure %s: %s\n", fig, desc)
		printDTPFig(w, fig, res)
	case "6d", "6e", "6f":
		var load experiments.PTPLoad
		var desc string
		switch fig {
		case "6d":
			load, desc = experiments.LoadIdle, "PTP, idle network (paper: hundreds of ns)"
		case "6e":
			load, desc = experiments.LoadMedium, "PTP, medium load (paper: up to ~50 us)"
		default:
			load, desc = experiments.LoadHeavy, "PTP, heavy load (paper: hundreds of us)"
		}
		res, err := experiments.RunPTP(o, load)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "== Figure %s: %s\n", fig, desc)
		printPTPFig(w, res)
	case "7a", "7b":
		res, err := experiments.Fig7(o)
		if err != nil {
			return err
		}
		if fig == "7a" {
			fmt.Fprintln(w, "== Figure 7a: DTP daemon raw offsets (paper: usually within ±16 ticks)")
			printDaemonFig(w, res.Raw, res.RawP95, 16)
		} else {
			fmt.Fprintln(w, "== Figure 7b: after moving average, window 10 (paper: usually within ±4 ticks)")
			printDaemonFig(w, res.Smoothed, res.SmoothedP95, 4)
		}
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
	fmt.Fprintf(w, "   [%.1fs wall]\n\n", time.Since(start).Seconds())
	return nil
}

func printDTPFig(w io.Writer, fig string, res *experiments.DTPFigResult) {
	names := make([]string, 0, len(res.PairSummaries))
	for n := range res.PairSummaries {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-8s %10s %8s %8s %8s\n", "pair", "samples", "min", "max", "mean")
	for _, n := range names {
		s := res.PairSummaries[n]
		fmt.Fprintf(w, "%-8s %10d %8.0f %8.0f %8.2f\n", n, s.N(), s.Min(), s.Max(), s.Mean())
	}
	fmt.Fprintf(w, "worst sample %.0f ticks (%.1f ns); worst true adjacent offset %d ticks; bound %d ticks\n",
		res.MaxAbsTicks, res.MaxAbsTicks*6.4, res.MaxTrueTicks, res.BoundTicks)
	if fig == "6c" {
		fmt.Fprintln(w, "offset PDFs (ticks:probability):")
		for _, n := range []string{"s3-s9", "s3-s10", "s3-s11", "s3-s0"} {
			if h := res.Hist[n]; h != nil {
				fmt.Fprintf(w, "  %-7s %s\n", n, h)
			}
		}
	}
	if *seriesFlag {
		for _, n := range names {
			fmt.Fprintf(w, "# series %s (s\tticks)\n", n)
			var b strings.Builder
			res.PairSeries[n].WriteTSV(&b)
			fmt.Fprint(w, b.String())
		}
	}
}

func printPTPFig(w io.Writer, res *experiments.PTPFigResult) {
	names := make([]string, 0, len(res.ClientSummaries))
	for n := range res.ClientSummaries {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-6s %10s %12s %12s %12s\n", "client", "samples", "min(ns)", "max(ns)", "p99(ns)")
	for _, n := range names {
		s := res.ClientSummaries[n]
		fmt.Fprintf(w, "%-6s %10d %12.0f %12.0f %12.0f\n", n, s.N(), s.Min(), s.Max(), s.Quantile(0.99))
	}
	fmt.Fprintf(w, "worst |offset| across clients: %.0f ns (load: %v)\n", res.WorstNs, res.Load)
	if *seriesFlag {
		for _, n := range names {
			fmt.Fprintf(w, "# series %s (s\tns)\n", n)
			var b strings.Builder
			res.ClientSeries[n].WriteTSV(&b)
			fmt.Fprint(w, b.String())
		}
	}
}

func printDaemonFig(w io.Writer, data map[string][]float64, p95 float64, bound float64) {
	names := make([]string, 0, len(data))
	for n := range data {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		min, max := 0.0, 0.0
		for _, v := range data[n] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		fmt.Fprintf(w, "%-6s samples %6d  range [%.1f, %.1f] ticks\n", n, len(data[n]), min, max)
	}
	status := "WITHIN"
	if p95 > bound {
		status = "ABOVE"
	}
	fmt.Fprintf(w, "p95 |offset| = %.1f ticks — %s the paper's ±%.0f-tick envelope\n", p95, status, bound)
}

func runTable(w io.Writer, table string, o experiments.Options) error {
	switch table {
	case "1":
		rows, err := experiments.Table1(o)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Table 1: protocol comparison (measured on this simulator)")
		fmt.Fprintf(w, "%-5s %-10s %-16s %-12s %-10s %s\n",
			"proto", "paper", "measured worst", "scalability", "overhead", "extra hardware")
		for _, r := range rows {
			fmt.Fprintf(w, "%-5s %-10s %13.1f ns %-12s %-10s %s\n",
				r.Protocol, r.PaperPrecision, r.MeasuredWorstNs, r.Scalability, r.Overhead, r.ExtraHW)
		}
	case "2":
		rows, err := experiments.Table2(o)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Table 2: PHY parameters per speed + measured DTP bound")
		fmt.Fprintf(w, "%-5s %-8s %6s %10s %8s %5s %14s %10s\n",
			"rate", "encoding", "width", "freq(MHz)", "T(ns)", "delta", "measured(ns)", "bound(ns)")
		for _, r := range rows {
			measured := "-"
			if r.MeasuredBoundNs > 0 {
				measured = fmt.Sprintf("%.2f", r.MeasuredBoundNs)
			}
			p := r.Profile
			fmt.Fprintf(w, "%-5s %-8s %6d %10.2f %8.2f %5d %14s %10.2f\n",
				p.Speed, p.Encoding, p.WidthBits, p.FreqMHz, float64(p.PeriodFs)/1e6, p.Delta, measured, r.BoundNs)
		}
	default:
		return fmt.Errorf("unknown table %q", table)
	}
	fmt.Fprintln(w)
	return nil
}

func runSweep(w io.Writer, sweep string, o experiments.Options) error {
	switch sweep {
	case "bound":
		rows, err := experiments.BoundSweep(o, 6)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Sweep: 4TD bound vs hops (abstract: 25.6 ns at 1 hop, 153.6 ns at 6)")
		fmt.Fprintf(w, "%4s %10s %10s %12s %10s %s\n", "hops", "max(ticks)", "bound", "max(ns)", "bound(ns)", "ok")
		for _, r := range rows {
			fmt.Fprintf(w, "%4d %10d %10d %12.1f %10.1f %v\n",
				r.Hops, r.MaxTicks, r.BoundTicks, r.MaxOffsetNs, r.BoundNs, r.WithinBound)
		}
	case "alpha":
		rows, err := experiments.AblationAlpha(o, []int64{0, 1, 2, 3, 4})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Ablation: alpha in the OWD measurement (§3.3; paper chooses 3)")
		fmt.Fprintf(w, "%5s %14s %12s\n", "alpha", "ratchet(ppm)", "max(ticks)")
		for _, r := range rows {
			fmt.Fprintf(w, "%5d %14.3f %12d\n", r.Alpha, r.RatchetPPM, r.MaxOffsetTicks)
		}
	case "beacon":
		rows, err := experiments.AblationBeaconInterval(o, []uint64{200, 1200, 4000, 20000, 60000})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Ablation: BEACON interval (§3.3: 2-tick bound holds below ~5000 ticks)")
		fmt.Fprintf(w, "%10s %12s\n", "interval", "max(ticks)")
		for _, r := range rows {
			fmt.Fprintf(w, "%10d %12d\n", r.IntervalTicks, r.MaxOffsetTicks)
		}
	case "cdc":
		rows, err := experiments.AblationCDC(o, []int{0, 1, 2, 3})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Ablation: synchronization-FIFO depth (the only idle-link nondeterminism)")
		fmt.Fprintf(w, "%6s %12s %10s %10s\n", "depth", "max(ticks)", "owd min", "owd max")
		for _, r := range rows {
			fmt.Fprintf(w, "%6d %12d %10d %10d\n", r.ExtraTicks, r.MaxOffsetTicks, r.MeasuredOWDMin, r.MeasuredOWDMax)
		}
	case "tc":
		res, err := experiments.AblationTCModes(o)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Ablation: transparent-clock fidelity and QoS under heavy load")
		fmt.Fprintf(w, "realistic TC:            %10.0f ns\n", res.RealisticWorstNs)
		fmt.Fprintf(w, "perfect TC:              %10.0f ns\n", res.PerfectWorstNs)
		fmt.Fprintf(w, "no TC:                   %10.0f ns\n", res.OffWorstNs)
		fmt.Fprintf(w, "realistic TC + priority: %10.0f ns\n", res.PriorityWorstNs)
	case "master":
		res, err := experiments.AblationMasterMode(o)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Ablation: §5.4 follow-the-master vs max-coupling (4-hop chain, root at -100 ppm)")
		fmt.Fprintf(w, "%-12s %12s %12s\n", "mode", "max(ticks)", "rate(ppm)")
		fmt.Fprintf(w, "%-12s %12d %12.2f\n", "max", res.MaxModeOffsetTicks, res.MaxModeRatePPM)
		fmt.Fprintf(w, "%-12s %12d %12.2f\n", "master", res.MasterModeOffsetTicks, res.MasterModeRatePPM)
	case "synce":
		res, err := experiments.AblationSyncE(o)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== §8 syntonization (SyncE + DTP): leaf-to-leaf offset across 4 hops")
		fmt.Fprintf(w, "%-14s %14s %14s\n", "oscillators", "spread(ticks)", "worst(ticks)")
		fmt.Fprintf(w, "%-14s %14d %14d\n", "free-running", res.FreeRunSpreadTicks, res.FreeRunWorstTicks)
		fmt.Fprintf(w, "%-14s %14d %14d\n", "syntonized", res.SyntonizedSpreadTicks, res.SyntonizedWorstTicks)
	case "bc":
		rows, err := experiments.AblationBCCascade(o, 3)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== §2.4.2 boundary-clock cascade: client error vs timing-tree depth (idle net)")
		fmt.Fprintf(w, "%8s %12s %12s\n", "levels", "worst(ns)", "p99(ns)")
		for _, r := range rows {
			fmt.Fprintf(w, "%8d %12.1f %12.1f\n", r.Levels, r.WorstNs, r.P99Ns)
		}
	case "mixed":
		rows, err := experiments.MixedSpeedSweep(o)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== §7 mixed speeds: 10G host links, varying core link, counters in 0.32 ns base units")
		fmt.Fprintf(w, "%6s %12s %12s %10s %10s\n", "core", "max(units)", "bound", "max(ns)", "bound(ns)")
		for _, r := range rows {
			fmt.Fprintf(w, "%6v %12d %12d %10.2f %10.2f\n", r.Core, r.MaxUnits, r.BoundUnits, r.MaxNs, r.BoundNs)
		}
	case "incremental":
		res, err := experiments.IncrementalDeployment(o)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== §5.3 incremental deployment: DTP racks + PTP masters, then DTP-enabled aggregation")
		fmt.Fprintf(w, "intra-rack (DTP):        %10.1f ns\n", res.IntraRackWorstNs)
		fmt.Fprintf(w, "inter-rack (via PTP):    %10.1f ns\n", res.InterRackWorstNs)
		fmt.Fprintf(w, "merged (all-DTP):        %10.1f ns\n", res.MergedWorstNs)
	case "disciplines":
		rows, err := experiments.DisciplineSweep(o)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "== Discipline lab: software-clock estimators per noise scenario (daemon on s4, paper tree)")
		fmt.Fprintf(w, "%-10s %-12s %12s %10s %10s %8s %8s\n",
			"kind", "scenario", "converge(ms)", "p99(ticks)", "worst", "dropped", "err(ticks)")
		for _, r := range rows {
			conv := "never"
			if r.ConvergeMs >= 0 {
				conv = fmt.Sprintf("%.0f", r.ConvergeMs)
			}
			errS := "unbounded"
			if r.ErrTicks >= 0 {
				errS = fmt.Sprintf("%.1f", r.ErrTicks)
			}
			fmt.Fprintf(w, "%-10s %-12s %12s %10.1f %10.1f %8d %8s\n",
				r.Kind, r.Scenario, conv, r.P99Ticks, r.WorstTicks, r.Dropped, errS)
		}
	default:
		return fmt.Errorf("unknown sweep %q", sweep)
	}
	fmt.Fprintln(w)
	return nil
}
