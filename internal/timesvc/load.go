package timesvc

import (
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
)

// LoadConfig shapes the in-sim request model.
type LoadConfig struct {
	// QPS is the mean Poisson arrival rate of time-service reads against
	// this host (default 1000). In-sim load models the request *pattern*
	// (inter-arrival mixing with calibration ticks, width as seen by
	// clients); raw throughput is the load generator's job (cmd/dtpload).
	QPS float64
}

// Load drives Poisson read traffic against one host's Service from
// inside the simulation: each arrival performs a full interval read and
// checks it against ground truth, so a run reports the width and
// coverage distribution clients would actually observe — including
// reads that land mid-degradation and fail closed.
type Load struct {
	svc *Service
	sch *sim.Scheduler
	rng *sim.RNG
	cfg LoadConfig

	// OnError, when set, is invoked (on the simulation goroutine) for
	// every read that fails closed. The flight recorder hooks it to
	// treat a stale read as a dump trigger. Set before Start.
	OnError func(error)

	reads    uint64
	errors   uint64
	covered  uint64
	widthSum float64

	stopped bool

	mReads   *telemetry.Counter
	mErrors  *telemetry.Counter
	mMissed  *telemetry.Counter
	hWidthNs *telemetry.Histogram
}

// NewLoad attaches a request-load model to a service. The RNG should be
// forked per host (e.g. NewRNG(seed, "timesvc-load/"+host)) so runs stay
// deterministic under topology changes.
func NewLoad(svc *Service, rng *sim.RNG, cfg LoadConfig) *Load {
	if cfg.QPS <= 0 {
		cfg.QPS = 1000
	}
	return &Load{svc: svc, sch: svc.sch, rng: rng, cfg: cfg}
}

// Instrument attaches telemetry (nil-safe).
func (l *Load) Instrument(reg *telemetry.Registry) {
	host := l.svc.Host()
	l.mReads = reg.Counter("dtp_timesvc_reads_total",
		"Simulated time-service reads served.", "host", host)
	l.mErrors = reg.Counter("dtp_timesvc_read_errors_total",
		"Simulated time-service reads that failed closed (no snapshot or stale).",
		"host", host)
	l.mMissed = reg.Counter("dtp_timesvc_uncovered_reads_total",
		"Simulated reads whose interval did NOT contain true time (bound violations).",
		"host", host)
	l.hWidthNs = reg.Histogram("dtp_timesvc_width_ns",
		"Interval width observed by simulated reads, in nanoseconds.",
		telemetry.ExponentialBuckets(1, 2, 16), "host", host)
}

// Start schedules the first arrival.
func (l *Load) Start() {
	l.stopped = false
	l.next()
}

// Stop halts the arrival process.
func (l *Load) Stop() { l.stopped = true }

func (l *Load) next() {
	mean := sim.Time(1e12 / l.cfg.QPS) // ps between arrivals
	l.sch.After(l.rng.ExpTime(mean), l.arrive)
}

func (l *Load) arrive() {
	if l.stopped {
		return
	}
	width, covered, err := l.svc.ReadCheck()
	l.reads++
	l.mReads.Inc()
	switch {
	case err != nil:
		l.errors++
		l.mErrors.Inc()
		if l.OnError != nil {
			l.OnError(err)
		}
	default:
		if covered {
			l.covered++
		} else {
			l.mMissed.Inc()
		}
		l.widthSum += width
		l.hWidthNs.Observe(width / 1000)
	}
	l.next()
}

// Reads returns the total simulated reads (including failed ones).
func (l *Load) Reads() uint64 { return l.reads }

// Errors returns reads that failed closed (ErrNoSnapshot / ErrStale).
func (l *Load) Errors() uint64 { return l.errors }

// Covered returns successful reads whose interval contained true time.
func (l *Load) Covered() uint64 { return l.covered }

// MeanWidthPs returns the mean interval width over successful reads.
func (l *Load) MeanWidthPs() float64 {
	n := l.reads - l.errors
	if n == 0 {
		return 0
	}
	return l.widthSum / float64(n)
}
