// Package link models the physical medium between two ports: constant
// propagation delay derived from cable length, plus optional bit-error
// injection at a configurable bit error rate (BER).
//
// The paper assumes (§3.1) that cable length — and hence propagation
// delay — is bounded: ~5 ns/m of optic fiber, at most 1000 m inside a
// datacenter. The wire is the only thing between two PHYs, which is why
// the delay between peers is deterministic once measured.
package link

import (
	"fmt"

	"github.com/dtplab/dtp/internal/phy"
	"github.com/dtplab/dtp/internal/sim"
)

// PropagationPerMeter is the signal propagation delay in fiber or twinax:
// about 2/3 the speed of light.
const PropagationPerMeter = 5 * sim.Nanosecond

// DelayForLength converts a cable length to a propagation delay.
func DelayForLength(meters float64) sim.Time {
	return sim.Time(meters * float64(PropagationPerMeter))
}

// Config describes one direction of a physical link.
type Config struct {
	// Delay is the one-way propagation delay.
	Delay sim.Time
	// BER is the per-bit error probability. The 802.3 objective is
	// 1e-12; tests crank this up to exercise DTP's failure handling.
	BER float64
}

// Wire is one direction of a physical link. Serialization time is the
// sender's responsibility (it depends on what is being sent); the wire
// adds propagation delay and bit errors only.
type Wire struct {
	sch *sim.Scheduler
	rng *sim.RNG
	cfg Config

	// blockErrP is the probability that a 66-bit block suffers at least
	// one bit error: 1-(1-BER)^66 ≈ 66*BER for small BER.
	blockErrP float64

	sent      uint64
	corrupted uint64
}

// New creates a wire.
func New(sch *sim.Scheduler, rng *sim.RNG, cfg Config) *Wire {
	if cfg.Delay < 0 {
		panic(fmt.Sprintf("link: negative delay %v", cfg.Delay))
	}
	w := &Wire{sch: sch, rng: rng, cfg: cfg}
	if cfg.BER > 0 {
		w.blockErrP = 1 - pow1m(cfg.BER, 66)
	}
	return w
}

// pow1m computes (1-p)^n without math.Pow for tiny p.
func pow1m(p float64, n int) float64 {
	r := 1.0
	for i := 0; i < n; i++ {
		r *= 1 - p
	}
	return r
}

// Delay returns the propagation delay.
func (w *Wire) Delay() sim.Time { return w.cfg.Delay }

// SendBlock transmits a 66-bit PCS block: the receiver callback fires
// after the propagation delay with the (possibly corrupted) block.
func (w *Wire) SendBlock(b phy.Block, deliver func(phy.Block)) {
	w.sent++
	if w.blockErrP > 0 && w.rng.Bool(w.blockErrP) {
		b = w.flipRandomBit(b)
		w.corrupted++
	}
	w.sch.After(w.cfg.Delay, func() { deliver(b) })
}

// flipRandomBit flips one uniformly random bit of the 66 on the wire:
// 2 sync bits or 64 payload bits.
func (w *Wire) flipRandomBit(b phy.Block) phy.Block {
	i := w.rng.IntN(66)
	if i < 2 {
		b.Sync ^= 1 << i
	} else {
		b.Payload ^= 1 << (i - 2)
	}
	return b
}

// Send transmits an opaque payload (e.g. a full Ethernet frame whose
// per-bit corruption is handled by the frame's own FCS model): deliver
// fires after the propagation delay.
func (w *Wire) Send(deliver func()) {
	w.sent++
	w.sch.After(w.cfg.Delay, deliver)
}

// Stats returns the number of blocks/payloads sent and blocks corrupted.
func (w *Wire) Stats() (sent, corrupted uint64) { return w.sent, w.corrupted }
