package gps

import (
	"math"
	"testing"

	"github.com/dtplab/dtp/internal/sim"
)

func TestReceiverPairwisePrecision(t *testing.T) {
	// The paper: "GPS provides about 100 nanosecond precision in
	// practice." Pairwise offsets between receivers must land in that
	// regime: worst-case within a few hundred ns, typically around 100.
	sch := sim.NewScheduler()
	cfg := DefaultConfig()
	var rx []*Receiver
	for i := 0; i < 8; i++ {
		rx = append(rx, NewReceiver(sch, cfg, 42, string(rune('a'+i))))
	}
	worst := 0.0
	for s := 0; s < 1000; s++ {
		sch.RunFor(sim.Millisecond)
		for i := 0; i < len(rx); i++ {
			for j := i + 1; j < len(rx); j++ {
				if d := math.Abs(rx[i].Read()-rx[j].Read()) / 1000; d > worst {
					worst = d
				}
			}
		}
	}
	if worst > 400 {
		t.Fatalf("pairwise GPS offset reached %.0f ns; want ~100ns class", worst)
	}
	if worst < 20 {
		t.Fatalf("pairwise GPS offset %.0f ns implausibly tight", worst)
	}
}

func TestReceiverBiasIsStable(t *testing.T) {
	sch := sim.NewScheduler()
	r := NewReceiver(sch, Config{BiasMaxNs: 50, NoiseNs: 0}, 7, "x")
	sch.Run(sim.Second)
	a := r.OffsetPs()
	sch.RunFor(sim.Second)
	b := r.OffsetPs()
	if math.Abs(a-b) > 0.01 { // float64 rounding at 1e12-ps magnitudes
		t.Fatalf("noise-free receiver bias moved: %v -> %v", a, b)
	}
	if math.Abs(a) > 50_000 {
		t.Fatalf("bias %v ps outside ±50ns", a)
	}
}

func TestReceiversHaveDistinctBiases(t *testing.T) {
	sch := sim.NewScheduler()
	cfg := Config{BiasMaxNs: 50, NoiseNs: 0}
	a := NewReceiver(sch, cfg, 7, "a")
	b := NewReceiver(sch, cfg, 7, "b")
	if a.OffsetPs() == b.OffsetPs() {
		t.Fatal("two receivers drew identical biases")
	}
}

func TestReadTracksTrueTime(t *testing.T) {
	sch := sim.NewScheduler()
	r := NewReceiver(sch, DefaultConfig(), 9, "t")
	sch.Run(10 * sim.Second)
	if math.Abs(r.Read()-float64(10*sim.Second)) > 500_000 {
		t.Fatal("receiver lost true time")
	}
}
