// Package cliutil is the shared flag surface of the dtp command-line
// tools. All four commands (dtpsim, dtpd, dtptrace, dtpexp) register
// their common flags through one definition — same names, same help
// text, same parsing and validation — so the CLIs cannot drift apart
// flag by flag as they grow.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/dtplab/dtp"
)

// Set selects which shared flags a command registers.
type Set uint

const (
	// FlagTopo is -topo, the topology spec.
	FlagTopo Set = 1 << iota
	// FlagSeed is -seed, the deterministic run seed.
	FlagSeed
	// FlagDuration is -duration, the simulated run length.
	FlagDuration
	// FlagJobs is -jobs, the campaign worker-pool width.
	FlagJobs
	// FlagMetricsOut is -metrics-out, the Prometheus dump path.
	FlagMetricsOut
	// FlagTraceOut is -trace-out, the JSONL protocol trace path.
	FlagTraceOut
	// FlagChaos is -chaos, the fault-injection scenario path.
	FlagChaos
	// FlagHardened is -hardened, the Byzantine-hardened protocol mode.
	FlagHardened
	// FlagDiscipline is -discipline, the daemon software-clock
	// estimator spec.
	FlagDiscipline
)

// Flags holds the shared flag values. Initialize fields before Register
// to set per-command defaults (e.g. dtpd runs 2 s where dtpsim runs
// 500 ms); zero values select the package-wide defaults below.
type Flags struct {
	Topo       string
	Seed       uint64
	Duration   time.Duration
	Jobs       int
	MetricsOut string
	TraceOut   string
	Chaos      string
	Hardened   bool
	Discipline string

	registered Set
}

// Register installs the selected flags on fs with the shared names and
// help strings, using the current field values as defaults — set fields
// before Register for per-command defaults (dtpsim runs 500 ms where
// dtpd runs 2 s; dtpexp's zero duration means "per-experiment
// default"). Seed alone falls back to 1, the convention every command
// shares.
func (f *Flags) Register(fs *flag.FlagSet, which Set) {
	f.registered |= which
	if which&FlagTopo != 0 {
		fs.StringVar(&f.Topo, "topo", f.Topo,
			"topology: pair | tree | star:N | chain:N | fattree:K")
	}
	if which&FlagSeed != 0 {
		if f.Seed == 0 {
			f.Seed = 1
		}
		fs.Uint64Var(&f.Seed, "seed", f.Seed, "deterministic run seed")
	}
	if which&FlagDuration != 0 {
		fs.DurationVar(&f.Duration, "duration", f.Duration, "simulated run length")
	}
	if which&FlagJobs != 0 {
		fs.IntVar(&f.Jobs, "jobs", f.Jobs,
			"parallel workers for multi-run campaigns (0 = GOMAXPROCS)")
	}
	if which&FlagMetricsOut != 0 {
		fs.StringVar(&f.MetricsOut, "metrics-out", f.MetricsOut,
			"write final metrics (Prometheus text format) to this file")
	}
	if which&FlagTraceOut != 0 {
		fs.StringVar(&f.TraceOut, "trace-out", f.TraceOut,
			"write the protocol event trace (JSONL) to this file")
	}
	if which&FlagChaos != 0 {
		fs.StringVar(&f.Chaos, "chaos", f.Chaos,
			"fault-injection scenario JSON (see internal/chaos)")
	}
	if which&FlagHardened != 0 {
		fs.BoolVar(&f.Hardened, "hardened", f.Hardened,
			"enable Byzantine-hardened mode: bounded-jump admission, quarantine, quorum combiner")
	}
	if which&FlagDiscipline != 0 {
		fs.StringVar(&f.Discipline, "discipline", f.Discipline,
			"daemon software-clock estimator: ma | pll | theilsen | lad, with options as kind:opt=val,... (e.g. pll:kp=0.7 or lad:dropk=2)")
	}
}

// Validate cross-checks the registered flag values: a non-empty
// topology spec must parse, durations must be non-negative, the worker
// count non-negative, and a chaos scenario (when named) must load.
// Call after fs.Parse. (Empty topo and zero duration are legal at this
// layer — dtptrace treats no -topo as "skip jump-chain analysis" and
// dtpexp treats zero -duration as "per-experiment default"; commands
// that require them enforce that at use.)
func (f *Flags) Validate() error {
	if f.registered&FlagTopo != 0 && f.Topo != "" {
		if _, err := dtp.ParseTopology(f.Topo); err != nil {
			return err
		}
	}
	if f.registered&FlagDuration != 0 && f.Duration < 0 {
		return fmt.Errorf("cliutil: -duration must be non-negative, got %v", f.Duration)
	}
	if f.registered&FlagJobs != 0 && f.Jobs < 0 {
		return fmt.Errorf("cliutil: -jobs must be >= 0 (0 = GOMAXPROCS), got %d", f.Jobs)
	}
	if f.registered&FlagChaos != 0 && f.Chaos != "" {
		if _, err := dtp.LoadChaosScenario(f.Chaos); err != nil {
			return err
		}
	}
	if f.registered&FlagDiscipline != 0 && f.Discipline != "" {
		if _, err := dtp.ParseDiscipline(f.Discipline); err != nil {
			return err
		}
	}
	return nil
}

// Topology parses the -topo spec.
func (f *Flags) Topology() (dtp.Topology, error) {
	return dtp.ParseTopology(f.Topo)
}

// LoadChaos loads the -chaos scenario, or returns (nil, nil) when the
// flag is unset.
func (f *Flags) LoadChaos() (*dtp.ChaosScenario, error) {
	if f.Chaos == "" {
		return nil, nil
	}
	return dtp.LoadChaosScenario(f.Chaos)
}

// ParseDiscipline parses the -discipline spec; the zero config (the
// paper's moving average) is returned when the flag is unset.
func (f *Flags) ParseDiscipline() (dtp.DisciplineConfig, error) {
	if f.Discipline == "" {
		return dtp.DisciplineConfig{}, nil
	}
	return dtp.ParseDiscipline(f.Discipline)
}

// Fatal prints "cmd: err" to stderr and exits with the given code —
// the uniform error exit every command uses (1 = run failure, 2 = bad
// invocation).
func Fatal(cmd string, code int, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
	os.Exit(code)
}

// WriteFile creates path, streams fill into it, and closes it,
// returning the first error encountered.
func WriteFile(path string, fill func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
