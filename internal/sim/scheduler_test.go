package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdersByTime(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30*Nanosecond, func() { got = append(got, 3) })
	s.At(10*Nanosecond, func() { got = append(got, 1) })
	s.At(20*Nanosecond, func() { got = append(got, 2) })
	s.Run(Second)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if s.Now() != Second {
		t.Fatalf("Now() = %v, want %v", s.Now(), Second)
	}
}

func TestSchedulerFIFOAtSameTimestamp(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5*Nanosecond, func() { got = append(got, i) })
	}
	s.Run(Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: index %d got %d", i, v)
		}
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	var chain func()
	chain = func() {
		fired = append(fired, s.Now())
		if len(fired) < 5 {
			s.After(7*Nanosecond, chain)
		}
	}
	s.After(0, chain)
	s.Run(Second)
	if len(fired) != 5 {
		t.Fatalf("chain fired %d times, want 5", len(fired))
	}
	for i, ft := range fired {
		want := Time(i) * 7 * Nanosecond
		if ft != want {
			t.Fatalf("firing %d at %v, want %v", i, ft, want)
		}
	}
}

func TestSchedulerRunHonorsHorizon(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.At(2*Second, func() { fired = true })
	s.Run(Second)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
	s.Run(3 * Second)
	if !fired {
		t.Fatal("event within extended horizon did not fire")
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.At(Nanosecond, func() { fired = true })
	if !e.Cancel() {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	s.Run(Second)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulerCancelAfterFire(t *testing.T) {
	s := NewScheduler()
	e := s.At(Nanosecond, func() {})
	s.Run(Second)
	if e.Cancel() {
		t.Fatal("Cancel returned true for fired event")
	}
}

func TestSchedulerCancelMiddleOfHeap(t *testing.T) {
	s := NewScheduler()
	var got []int
	var events []Event
	for i := 0; i < 50; i++ {
		i := i
		events = append(events, s.At(Time(i)*Nanosecond, func() { got = append(got, i) }))
	}
	// Cancel every odd event.
	for i := 1; i < 50; i += 2 {
		if !events[i].Cancel() {
			t.Fatalf("cancel of event %d failed", i)
		}
	}
	s.Run(Second)
	if len(got) != 25 {
		t.Fatalf("fired %d events, want 25", len(got))
	}
	for _, v := range got {
		if v%2 != 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestSchedulerPanicsOnPastEvent(t *testing.T) {
	s := NewScheduler()
	s.At(Second, func() {})
	s.Run(Second)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(Millisecond, func() {})
}

func TestSchedulerStepAdvancesTime(t *testing.T) {
	s := NewScheduler()
	s.At(42*Nanosecond, func() {})
	if !s.Step() {
		t.Fatal("Step returned false with a pending event")
	}
	if s.Now() != 42*Nanosecond {
		t.Fatalf("Now() = %v after Step, want 42ns", s.Now())
	}
	if s.Step() {
		t.Fatal("Step returned true with empty queue")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{500 * Picosecond, "500ps"},
		{6400 * Picosecond, "6.4ns"},
		{1280 * Nanosecond, "1.28us"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d ps).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if FromStd(time.Microsecond) != Microsecond {
		t.Fatal("FromStd(1us) mismatch")
	}
	if (5 * Millisecond).Std() != 5*time.Millisecond {
		t.Fatal("Std() mismatch")
	}
	if (2 * Nanosecond).Fs() != 2_000_000 {
		t.Fatal("Fs() mismatch")
	}
	if Femto(6_400_000) != Time(6400) {
		t.Fatal("Femto mismatch")
	}
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Fatal("Seconds mismatch")
	}
}

// Property: for any set of event delays, events fire in nondecreasing time
// order and every event within the horizon fires exactly once.
func TestSchedulerOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler()
		var fired []Time
		for _, d := range delays {
			s.At(Time(d)*Nanosecond, func() { fired = append(fired, s.Now()) })
		}
		s.Run(Time(1<<16) * Nanosecond)
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(7, "oscillator/0")
	b := NewRNG(7, "oscillator/0")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed,label) streams diverged")
		}
	}
}

func TestRNGIndependentLabels(t *testing.T) {
	a := NewRNG(7, "oscillator/0")
	b := NewRNG(7, "oscillator/1")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different labels collided %d/64 times", same)
	}
}

func TestRNGBoolEdges(t *testing.T) {
	r := NewRNG(1, "t")
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestRNGUniformTimeBounds(t *testing.T) {
	r := NewRNG(3, "t")
	for i := 0; i < 1000; i++ {
		v := r.UniformTime(10, 20)
		if v < 10 || v > 20 {
			t.Fatalf("UniformTime out of range: %v", v)
		}
	}
	if r.UniformTime(5, 5) != 5 {
		t.Fatal("degenerate UniformTime")
	}
}

func TestRNGExpTimePositive(t *testing.T) {
	r := NewRNG(4, "t")
	for i := 0; i < 1000; i++ {
		if r.ExpTime(100*Nanosecond) < 1 {
			t.Fatal("ExpTime returned < 1 ps")
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(5, "t")
	n := 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if mean < 9.9 || mean > 10.1 {
		t.Fatalf("Normal mean %.3f, want ~10", mean)
	}
	if variance < 3.6 || variance > 4.4 {
		t.Fatalf("Normal variance %.3f, want ~4", variance)
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler()
	var next func()
	i := 0
	next = func() {
		i++
		if i < b.N {
			s.After(Nanosecond, next)
		}
	}
	s.After(Nanosecond, next)
	b.ResetTimer()
	s.Drain()
}
