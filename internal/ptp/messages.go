package ptp

// Message kinds carried in eth.Frame payloads. Sync, Delay_Req and
// Delay_Resp travel as PTP *event* frames (hardware timestamped and
// transparent-clock corrected); Follow_Up and Announce as *general*
// frames.

// syncMsg is the grandmaster's Sync. In two-step mode the embedded
// origin timestamp is approximate; the precise one follows in followUp.
type syncMsg struct {
	Seq uint64
}

// followUp carries the precise hardware TX timestamp of the matching
// Sync, in grandmaster PTP time (ps).
type followUp struct {
	Seq uint64
	T1  float64
}

// delayReq is the client's delay measurement probe.
type delayReq struct {
	Seq    uint64
	Client int
}

// delayResp returns the grandmaster's RX hardware timestamp (t4) for the
// matching delayReq.
type delayResp struct {
	Seq uint64
	T4  float64
}

// announce advertises a master for the best-master-clock algorithm:
// clients select the announcing master with the lowest priority value
// and fail over when its announces stop.
type announce struct {
	GM       int
	Priority int
}
