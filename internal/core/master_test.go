package core

import (
	"testing"

	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/topo"
)

// masterNet builds a chain in §5.4 follow-the-master mode rooted at h0.
func masterNet(t *testing.T, seed uint64, hops int, ppm map[string]float64) (*sim.Scheduler, *Network) {
	t.Helper()
	sch := sim.NewScheduler()
	cfg := DefaultConfig()
	cfg.FollowMaster = true
	cfg.Master = "h0"
	n, err := NewNetwork(sch, seed, topo.Chain(hops), cfg, WithPPM(ppm))
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	sch.Run(10 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("master-mode network did not sync")
	}
	return sch, n
}

func TestMasterModeRequiresRoot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FollowMaster = true
	if _, err := NewNetwork(sim.NewScheduler(), 1, topo.Pair(), cfg); err == nil {
		t.Fatal("FollowMaster without Master accepted")
	}
	cfg.Master = "nonexistent"
	if _, err := NewNetwork(sim.NewScheduler(), 1, topo.Pair(), cfg); err == nil {
		t.Fatal("unknown master accepted")
	}
}

func TestMasterModeFollowsSlowRoot(t *testing.T) {
	// The defining difference from max-coupling: with a slow master and
	// a fast follower, the network runs at the MASTER's rate — the
	// follower stalls — instead of everyone adopting the fastest clock.
	sch, n := masterNet(t, 1, 1, map[string]float64{"h0": -100, "h1": +100})
	start := n.Devices[1].GlobalCounter()
	t0 := sch.Now()
	sch.RunFor(2 * sim.Second)
	gained := float64(n.Devices[1].GlobalCounter() - start)
	elapsed := (sch.Now() - t0).Seconds()
	rate := gained / elapsed
	masterRate := 156.25e6 * (1 - 100e-6)
	// The follower's counter rate must match the slow master within a
	// few ppm, despite its own oscillator running 200 ppm faster.
	if rate > masterRate*(1+5e-6) || rate < masterRate*(1-5e-6) {
		t.Fatalf("follower rate %.0f counts/s, master %.0f — not following", rate, masterRate)
	}
}

func TestMasterModeOffsetsBounded(t *testing.T) {
	sch, n := masterNet(t, 3, 4, map[string]float64{
		"h0": -100, "sw1": 100, "sw2": -50, "sw3": 80, "h1": 100,
	})
	var worst int64
	for i := 0; i < 1000; i++ {
		sch.RunFor(100 * sim.Microsecond)
		if o := n.MaxAdjacentOffset(); o > worst {
			worst = o
		}
	}
	// Stalling adds up to ~1 tick per hop on top of the 4T envelope.
	if worst > 6 {
		t.Fatalf("adjacent offset %d ticks in master mode", worst)
	}
}

func TestMasterModeCountersMonotone(t *testing.T) {
	// Stalls must never move a counter backwards.
	sch, n := masterNet(t, 5, 2, map[string]float64{"h0": -100, "sw1": 100, "h1": 100})
	var prev [3]uint64
	for i := 0; i < 2000; i++ {
		sch.RunFor(10 * sim.Microsecond)
		for d := 0; d < 3; d++ {
			got := n.Devices[d].GlobalCounter()
			if got < prev[d] {
				t.Fatalf("device %d regressed %d -> %d", d, prev[d], got)
			}
			prev[d] = got
		}
	}
}

func TestMasterModeStallsActuallyHappen(t *testing.T) {
	// Ground truth check on the mechanism: a +100 ppm follower of a
	// -100 ppm master must lose ~200 ppm worth of ticks to stalls.
	sch, n := masterNet(t, 7, 1, map[string]float64{"h0": -100, "h1": +100})
	dev := n.Devices[1]
	start := dev.GlobalCounter()
	startTick := dev.Clock().Counter()
	sch.RunFor(sim.Second)
	gainedCounter := dev.GlobalCounter() - start
	gainedTicks := dev.Clock().Counter() - startTick
	lost := int64(gainedTicks) - int64(gainedCounter)
	// 200 ppm of 156.25e6 = ~31250 ticks lost per second.
	if lost < 25_000 || lost > 40_000 {
		t.Fatalf("follower lost %d ticks to stalls, want ~31250", lost)
	}
}

func TestMasterModeRootNeverAdjusts(t *testing.T) {
	sch, n := masterNet(t, 9, 2, map[string]float64{"h0": 0, "sw1": 100, "h1": -100})
	root := n.Devices[0]
	start := root.GlobalCounter()
	t0 := sch.Now()
	sch.RunFor(sim.Second)
	gained := float64(root.GlobalCounter() - start)
	elapsed := (sch.Now() - t0).Seconds()
	want := 156.25e6 * elapsed
	if gained < want-2 || gained > want+2 {
		t.Fatalf("root gained %.0f counts, own-oscillator expectation %.0f", gained, want)
	}
}

func TestStallUnitCounter(t *testing.T) {
	sch, u := newCounterFixture(1)
	sch.Run(sim.Microsecond)
	now := sch.Now()
	v := u.at(now)
	u.stallBy(10, now)
	// Held at v while the excess is absorbed (10 ticks = 64 ns).
	sch.RunFor(32 * sim.Nanosecond)
	if got := u.at(sch.Now()); got != v {
		t.Fatalf("counter moved mid-stall: %d -> %d", v, got)
	}
	// After the excess has been absorbed, it resumes 10 ticks lower
	// than the unstalled trajectory.
	sch.RunFor(10 * sim.Microsecond)
	got := u.at(sch.Now())
	unstalled := v + uint64((32*sim.Nanosecond+10*sim.Microsecond)/6400)
	if got < unstalled-12 || got > unstalled-8 {
		t.Fatalf("post-stall counter %d, want ~%d-10", got, unstalled)
	}
	// A forward jump clears any stall state.
	u.setAt(got+100, sch.Now())
	sch.RunFor(sim.Microsecond)
	if u.at(sch.Now()) <= got+100 {
		t.Fatal("counter did not advance after jump")
	}
}

func TestStallZeroIsNoop(t *testing.T) {
	sch, u := newCounterFixture(1)
	sch.Run(sim.Microsecond)
	before := u.at(sch.Now())
	u.stallBy(0, sch.Now())
	sch.RunFor(sim.Microsecond)
	if u.at(sch.Now()) <= before {
		t.Fatal("zero stall froze the counter")
	}
}
