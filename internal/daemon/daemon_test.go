package daemon

import (
	"math"
	"testing"

	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/stats"
	"github.com/dtplab/dtp/internal/topo"
)

// syncedPair builds a running two-node DTP network.
func syncedPair(t *testing.T, seed uint64) (*sim.Scheduler, *core.Network) {
	t.Helper()
	sch := sim.NewScheduler()
	n, err := core.NewNetwork(sch, seed, topo.Pair(), core.DefaultConfig(),
		core.WithPPM(map[string]float64{"h0": 40, "h1": -40}))
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	sch.Run(5 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("pair did not sync")
	}
	return sch, n
}

func TestDaemonRawOffsetWithinPaperBound(t *testing.T) {
	// Figure 7a: offset_sw usually within ±16 ticks (~102.4 ns) before
	// smoothing.
	sch, n := syncedPair(t, 1)
	cfg := DefaultConfig().Compressed(100) // calibrate every 10 ms
	d := New(n.Devices[0], cfg, 7)
	raw := stats.NewSummary(0)
	d.OnSample = func(off float64) { raw.Add(off) }
	d.Start()
	sch.RunFor(5 * sim.Second) // ~500 calibrations
	if d.Calibrations() < 100 {
		t.Fatalf("only %d calibrations", d.Calibrations())
	}
	// "usually no more than 16 clock ticks": 99th percentile within 16,
	// worst-case spikes allowed somewhat beyond.
	p99 := math.Max(math.Abs(raw.Quantile(0.99)), math.Abs(raw.Quantile(0.01)))
	if p99 > 16 {
		t.Fatalf("daemon raw offset p99 = %.1f ticks, paper says usually <= 16", p99)
	}
	if raw.MaxAbs() < 0.5 {
		t.Fatalf("raw offsets implausibly tight (%.3f); PCIe noise missing", raw.MaxAbs())
	}
}

func TestDaemonSmoothedOffsetWithin4Ticks(t *testing.T) {
	// Figure 7b: moving average with window 10 brings offsets to
	// usually within ±4 ticks (~25.6 ns).
	sch, n := syncedPair(t, 3)
	cfg := DefaultConfig().Compressed(100)
	d := New(n.Devices[0], cfg, 9)
	var rawSeq []float64
	d.OnSample = func(off float64) { rawSeq = append(rawSeq, off) }
	d.Start()
	sch.RunFor(5 * sim.Second)
	sm := stats.MovingAverage(rawSeq, 10)
	s := stats.NewSummary(0)
	for _, v := range sm[10:] {
		s.Add(v)
	}
	p99 := math.Max(math.Abs(s.Quantile(0.99)), math.Abs(s.Quantile(0.01)))
	if p99 > 4 {
		t.Fatalf("smoothed offset p99 = %.2f ticks, paper says usually <= 4", p99)
	}
}

func TestDaemonEstimateTracksCounter(t *testing.T) {
	sch, n := syncedPair(t, 5)
	d := New(n.Devices[1], DefaultConfig().Compressed(100), 11)
	d.Start()
	sch.RunFor(2 * sim.Second)
	est := d.Estimate()
	truth := float64(n.Devices[1].GlobalCounter())
	if math.Abs(est-truth) > 50 {
		t.Fatalf("estimate %f vs counter %f", est, truth)
	}
	if d.Device() != n.Devices[1] {
		t.Fatal("device accessor")
	}
}

func TestDaemonStop(t *testing.T) {
	sch, n := syncedPair(t, 7)
	d := New(n.Devices[0], DefaultConfig().Compressed(100), 13)
	d.Start()
	sch.RunFor(sim.Second)
	c := d.Calibrations()
	d.Stop()
	sch.RunFor(sim.Second)
	if d.Calibrations() != c {
		t.Fatal("stopped daemon kept calibrating")
	}
}

func TestDaemonBeforeFirstCalibration(t *testing.T) {
	_, n := syncedPair(t, 9)
	d := New(n.Devices[0], DefaultConfig(), 15)
	if d.Estimate() != 0 {
		t.Fatal("estimate before calibration should be 0")
	}
}

// End-to-end precision (§1): two daemons on directly connected devices;
// the difference between their estimates must stay within 4TD + 8T =
// 4 + 16 = 20 ticks usually (we allow p99).
func TestEndToEndSoftwarePrecision(t *testing.T) {
	sch, n := syncedPair(t, 11)
	cfg := DefaultConfig().Compressed(100)
	d0 := New(n.Devices[0], cfg, 17)
	d1 := New(n.Devices[1], cfg, 19)
	d0.Start()
	d1.Start()
	sch.RunFor(sim.Second) // calibrations under way
	s := stats.NewSummary(0)
	for i := 0; i < 3000; i++ {
		sch.RunFor(sim.Millisecond)
		s.Add(d0.Estimate() - d1.Estimate())
	}
	p99 := math.Max(math.Abs(s.Quantile(0.99)), math.Abs(s.Quantile(0.01)))
	if p99 > 20 {
		t.Fatalf("end-to-end daemon offset p99 = %.1f ticks, bound 4TD+8T = 20", p99)
	}
}

func TestExternalSyncUTC(t *testing.T) {
	// §5.2: followers learn UTC from broadcast (counter, UTC) pairs;
	// their UTC error is bounded by daemon precision plus broadcast
	// estimation error — microsecond-class at worst, typically ~100ns.
	sch, n := syncedPair(t, 13)
	cfg := DefaultConfig().Compressed(100)
	d0 := New(n.Devices[0], cfg, 21)
	d1 := New(n.Devices[1], cfg, 23)
	d0.Start()
	d1.Start()
	b := NewUTCBroadcaster(d0, TrueUTC{Sch: sch}, 50*sim.Millisecond)
	f := NewUTCFollower(d1)
	b.Subscribe(f)
	b.Start()
	if _, err := f.UTC(); err == nil {
		t.Fatal("UTC available before any broadcast")
	}
	sch.RunFor(2 * sim.Second)
	if f.Received() == 0 {
		t.Fatal("no broadcasts received")
	}
	s := stats.NewSummary(0)
	for i := 0; i < 500; i++ {
		sch.RunFor(sim.Millisecond)
		s.Add(f.UTCErrorPs())
	}
	if s.MaxAbs() > 2e6 { // 2 us
		t.Fatalf("UTC error reached %.0f ps", s.MaxAbs())
	}
	b.Stop()
	got := f.Received()
	sch.RunFor(sim.Second)
	if f.Received() != got {
		t.Fatal("stopped broadcaster kept sending")
	}
}

// UTCErrorPs promises |UTC estimate - true time|; regression for the
// version that returned the signed difference.
func TestUTCErrorPsIsMagnitude(t *testing.T) {
	sch, n := syncedPair(t, 17)
	cfg := DefaultConfig().Compressed(100)
	d0 := New(n.Devices[0], cfg, 25)
	d1 := New(n.Devices[1], cfg, 27)
	d0.Start()
	d1.Start()
	b := NewUTCBroadcaster(d0, TrueUTC{Sch: sch}, 20*sim.Millisecond)
	f := NewUTCFollower(d1)
	b.Subscribe(f)
	b.Start()
	if !math.IsInf(f.UTCErrorPs(), 1) {
		t.Fatal("error before first broadcast should be +Inf")
	}
	sch.RunFor(2 * sim.Second)
	sawNonZero := false
	for i := 0; i < 500; i++ {
		sch.RunFor(sim.Millisecond)
		e := f.UTCErrorPs()
		if e < 0 {
			t.Fatalf("UTCErrorPs returned signed value %.0f ps", e)
		}
		signed := f.UTCSignedErrorPs()
		if math.Abs(signed) != e {
			t.Fatalf("UTCErrorPs %.0f != |signed error %.0f|", e, signed)
		}
		if signed < 0 {
			sawNonZero = true
		}
	}
	// The magnitude contract only bites when the estimate runs behind
	// true time; make sure the run actually exercised that side.
	if !sawNonZero {
		t.Log("estimate never ran behind true time this run; magnitude check weak")
	}
}

// deliver must drop pairs whose counter does not advance: anchoring on
// them would poison interpolation and a ratio update would divide by a
// non-positive span.
func TestFollowerDropsStalePairs(t *testing.T) {
	sch, n := syncedPair(t, 19)
	d := New(n.Devices[1], DefaultConfig().Compressed(100), 29)
	d.Start()
	sch.RunFor(sim.Second)
	f := NewUTCFollower(d)

	f.deliver(UTCBroadcast{Counter: 1000, UTC: 1e9})
	f.deliver(UTCBroadcast{Counter: 2000, UTC: 2e9})
	anchor, _ := f.Anchor()
	ratio := f.Ratio()

	// Duplicate and regressing counters: both must be dropped whole —
	// no anchor movement, no ratio update.
	f.deliver(UTCBroadcast{Counter: 2000, UTC: 3e9})
	f.deliver(UTCBroadcast{Counter: 1500, UTC: 4e9})
	if got, _ := f.Anchor(); got != anchor {
		t.Fatalf("stale pair moved the anchor: %+v -> %+v", anchor, got)
	}
	if f.Ratio() != ratio {
		t.Fatalf("stale pair changed the ratio: %g -> %g", ratio, f.Ratio())
	}
	if f.StalePairs() != 2 {
		t.Fatalf("StalePairs = %d, want 2", f.StalePairs())
	}
	if f.Received() != 4 {
		t.Fatalf("Received = %d, want 4 (stale pairs still count as consumed)", f.Received())
	}

	// A fresh advancing pair resumes normal anchoring.
	f.deliver(UTCBroadcast{Counter: 3000, UTC: 3e9})
	if got, _ := f.Anchor(); got.Counter != 3000 {
		t.Fatalf("advancing pair not anchored: %+v", got)
	}
}

// The residual tracker converges toward the follower's one-interval
// prediction error.
func TestFollowerResidualTracksPredictionError(t *testing.T) {
	sch, n := syncedPair(t, 23)
	d := New(n.Devices[1], DefaultConfig().Compressed(100), 31)
	d.Start()
	sch.RunFor(sim.Second)
	f := NewUTCFollower(d)
	if f.ResidualPs() != 0 {
		t.Fatal("residual nonzero before broadcasts")
	}
	// Perfectly linear pairs at the nominal ratio: residuals ~ 0.
	ratio := f.Ratio()
	for i := 0; i < 20; i++ {
		c := 1000 * float64(i+1)
		f.deliver(UTCBroadcast{Counter: c, UTC: c * ratio})
	}
	if f.ResidualPs() > 1 {
		t.Fatalf("residual %.3f ps on perfectly linear pairs", f.ResidualPs())
	}
	// Now jitter each pair by ±J: residual EWMA should land near J.
	const J = 5000.0 // ps
	sign := 1.0
	for i := 20; i < 60; i++ {
		c := 1000 * float64(i+1)
		f.deliver(UTCBroadcast{Counter: c, UTC: c*ratio + sign*J})
		sign = -sign
	}
	if r := f.ResidualPs(); r < J/2 || r > 4*J {
		t.Fatalf("residual %.0f ps, want around the injected %.0f ps jitter", r, J)
	}
}
