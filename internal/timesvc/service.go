package timesvc

import (
	"github.com/dtplab/dtp/internal/audit"
	"github.com/dtplab/dtp/internal/daemon"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
)

// ServiceConfig tunes the calibration/publish side. The zero value
// selects every default.
type ServiceConfig struct {
	// PublishInterval is the snapshot cadence in simulated time
	// (default 10 ms). Each tick folds the daemon, follower, and audit
	// state into one immutable snapshot.
	PublishInterval sim.Time

	// SoftwareMarginUnits is the §5.1 daemon software-access margin
	// added to the audit bound, in counter units (default 8: the paper's
	// ±4 smoothed ticks on each of the two daemons involved).
	SoftwareMarginUnits int64

	// ResidualFactor and ResidualFloorPs turn the follower's smoothed
	// |prediction residual| into the broadcast-error component of the
	// bound: max(ResidualFloorPs, ResidualFactor × residual). The factor
	// covers residual tails above the EWMA (default 4); the floor covers
	// the cold start before the EWMA has seen enough broadcasts
	// (default 25 ns).
	ResidualFactor  float64
	ResidualFloorPs float64

	// DriftPPM widens published intervals as they age, covering ratio
	// estimation error between publishes (default 5 ppm: the daemon's
	// ratio slack plus the follower's, see daemon.ratioSlackPPM).
	DriftPPM float64

	// MaxAge is how stale a snapshot may be served before reads fail
	// closed (default 8 × PublishInterval).
	MaxAge sim.Time

	// WarmupPairs is how many ratio measurements the UTC follower must
	// have folded in before the service publishes at all (default 5):
	// before that, the frequency-ratio and residual estimates are too
	// raw to stand behind an error bound.
	WarmupPairs uint64
}

// DefaultServiceConfig returns the default serving-plane configuration.
func DefaultServiceConfig() ServiceConfig {
	return ServiceConfig{
		PublishInterval:     10 * sim.Millisecond,
		SoftwareMarginUnits: 8,
		ResidualFactor:      4,
		ResidualFloorPs:     25_000,
		DriftPPM:            5,
		WarmupPairs:         5,
	}
}

func (c *ServiceConfig) fillDefaults() {
	d := DefaultServiceConfig()
	if c.PublishInterval <= 0 {
		c.PublishInterval = d.PublishInterval
	}
	if c.SoftwareMarginUnits <= 0 {
		c.SoftwareMarginUnits = d.SoftwareMarginUnits
	}
	if c.ResidualFactor <= 0 {
		c.ResidualFactor = d.ResidualFactor
	}
	if c.ResidualFloorPs <= 0 {
		c.ResidualFloorPs = d.ResidualFloorPs
	}
	if c.DriftPPM <= 0 {
		c.DriftPPM = d.DriftPPM
	}
	if c.MaxAge <= 0 {
		c.MaxAge = 8 * c.PublishInterval
	}
	if c.WarmupPairs == 0 {
		c.WarmupPairs = d.WarmupPairs
	}
}

// Degradation reason codes (V1 of timesvc_degraded trace events).
const (
	// DegradedNoCalibration: the daemon has not completed a PCIe
	// calibration yet.
	DegradedNoCalibration = iota
	// DegradedNoBroadcast: no UTC broadcast pair has arrived.
	DegradedNoBroadcast
	// DegradedNoBound: the auditor has no live all-pairs bound for this
	// host (not converged, or the host is partitioned).
	DegradedNoBound
	// DegradedWarmup: the UTC follower has fewer than WarmupPairs ratio
	// measurements; estimates are too raw to bound honestly.
	DegradedWarmup
)

var degradedReasons = [...]string{"no_calibration", "no_broadcast", "no_bound", "warmup"}

// Service is the calibration/publish half of one host's time service.
// On every publish tick (a scheduler event, so strictly on the
// simulation goroutine) it composes
//
//	ε = (liveAuditBound + daemonErr + broadcasterErr + softwareMargin) · psPerUnit
//	  + max(residualFloor, residualFactor · broadcastResidual)
//
// and publishes a snapshot anchored in the host's TSC domain. When any
// input is unavailable — daemon uncalibrated, no broadcast yet, no
// live audit bound — the tick publishes nothing and counts the reason;
// the previous snapshot then ages out at MaxAge and readers fail
// closed, which is the honest behavior for a clock that has lost its
// error bound.
type Service struct {
	d   *daemon.Daemon
	f   *daemon.UTCFollower
	aud *audit.Auditor
	sch *sim.Scheduler
	cfg ServiceConfig

	host  string
	store Store
	clock *Clock // TSC-timebase clock for in-sim reads

	epoch     uint64
	publishes uint64
	degraded  uint64

	event   *sim.Event
	stopped bool

	tr         *telemetry.Tracer
	mPublishes *telemetry.Counter
	mDegraded  [len(degradedReasons)]*telemetry.Counter
	mBound     *telemetry.Gauge
}

// NewService wires a host's daemon, UTC follower, and the network
// auditor into a time service. The auditor supplies the live cross-host
// bound; it must audit this host (HostsOnly auditors audit every host).
func NewService(d *daemon.Daemon, f *daemon.UTCFollower, aud *audit.Auditor, cfg ServiceConfig) *Service {
	cfg.fillDefaults()
	s := &Service{
		d: d, f: f, aud: aud,
		sch:  d.Device().Clock().Scheduler(),
		cfg:  cfg,
		host: d.Device().Name(),
	}
	s.clock = NewClock(&s.store, TSCTimebase{C: d.TSC()})
	return s
}

// Instrument attaches telemetry. Either argument may be nil.
func (s *Service) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	s.tr = tr
	s.mPublishes = reg.Counter("dtp_timesvc_publishes_total",
		"Clock snapshots published by the time service.", "host", s.host)
	for i, reason := range degradedReasons {
		s.mDegraded[i] = reg.Counter("dtp_timesvc_degraded_total",
			"Publish ticks skipped because no honest error bound was available.",
			"host", s.host, "reason", reason)
	}
	s.mBound = reg.Gauge("dtp_timesvc_bound_ps",
		"Uncertainty half-width of the last published snapshot, in picoseconds.",
		"host", s.host)
}

// Start schedules the periodic publish tick.
func (s *Service) Start() {
	s.stopped = false
	s.event = s.sch.After(s.cfg.PublishInterval, s.tick)
}

// Stop cancels publishing; the last snapshot keeps serving until it
// ages out.
func (s *Service) Stop() {
	s.stopped = true
	if s.event != nil {
		s.event.Cancel()
		s.event = nil
	}
}

// Host returns the served host's device name.
func (s *Service) Host() string { return s.host }

// Store returns the snapshot store, e.g. to build a Clock on a
// different timebase (the load generator's wall clock).
func (s *Service) Store() *Store { return &s.store }

// Clock returns the in-sim reader: a Clock on this host's TSC
// timebase. Only usable on the simulation goroutine.
func (s *Service) Clock() *Clock { return s.clock }

// Publishes returns how many snapshots have been published.
func (s *Service) Publishes() uint64 { return s.publishes }

// DegradedTicks returns how many publish ticks found no honest bound.
func (s *Service) DegradedTicks() uint64 { return s.degraded }

// Config returns the effective configuration (defaults filled).
func (s *Service) Config() ServiceConfig { return s.cfg }

func (s *Service) tick() {
	if s.stopped {
		return
	}
	s.publish()
	s.event = s.sch.After(s.cfg.PublishInterval, s.tick)
}

// publish composes and publishes one snapshot, or counts why it could
// not.
func (s *Service) publish() {
	if !s.d.Calibrated() {
		s.degrade(DegradedNoCalibration)
		return
	}
	utc, err := s.f.UTC()
	if err != nil {
		s.degrade(DegradedNoBroadcast)
		return
	}
	if s.f.RatioUpdates() < s.cfg.WarmupPairs {
		s.degrade(DegradedWarmup)
		return
	}
	boundUnits := s.aud.LiveBoundUnits(s.host)
	if boundUnits < 0 {
		s.degrade(DegradedNoBound)
		return
	}

	// Counter-domain error, in units: the audited cross-host hardware
	// disagreement (4TD), this daemon's self-reported estimate error
	// (adaptive — a PCIe contention spike widens it for one calibration
	// interval), the broadcaster's self-reported error shipped inside
	// the anchor pair (NTP root-dispersion style), and the fixed
	// software margin on top.
	unitErr := float64(boundUnits+s.cfg.SoftwareMarginUnits) +
		s.d.EstimateErrorUnits() + s.f.AnchorErrUnits()
	eps := unitErr * s.f.Ratio()
	// Broadcast estimation error in UTC ps: the follower's realized
	// one-interval prediction residual, with tail factor and cold-start
	// floor.
	if r := s.cfg.ResidualFactor * s.f.ResidualPs(); r > s.cfg.ResidualFloorPs {
		eps += r
	} else {
		eps += s.cfg.ResidualFloorPs
	}

	s.epoch++
	s.store.Publish(Snapshot{
		Epoch:     s.epoch,
		AnchorRaw: int64(s.d.TSC().Now()),
		AnchorUTC: utc,
		// UTC ps per TSC ps: daemon units-per-TSC-ps × follower
		// UTC-ps-per-unit.
		Ratio:    s.d.Ratio() * s.f.Ratio(),
		BoundPs:  eps,
		DriftPPM: s.cfg.DriftPPM,
		MaxAgePs: int64(s.cfg.MaxAge),
	})
	s.publishes++
	s.mPublishes.Inc()
	s.mBound.Set(eps)
	if s.tr.Enabled(telemetry.KindTimesvcPublish) {
		s.tr.Record(s.sch.Now(), telemetry.KindTimesvcPublish, s.host,
			int64(eps), int64(s.epoch), "")
	}
}

func (s *Service) degrade(reason int) {
	s.degraded++
	s.mDegraded[reason].Inc()
	if s.tr.Enabled(telemetry.KindTimesvcDegraded) {
		s.tr.Record(s.sch.Now(), telemetry.KindTimesvcDegraded, s.host,
			int64(reason), 0, degradedReasons[reason])
	}
}

// ReadCheck samples the in-sim clock at the current simulated instant
// and verifies the interval against ground truth (simulated time is
// true UTC — the TrueUTC broadcast source serves exactly it). Returns
// the interval width, whether truth fell inside, and any read error.
// Only usable on the simulation goroutine.
func (s *Service) ReadCheck() (widthPs float64, covered bool, err error) {
	_, iv, err := s.clock.At(int64(s.d.TSC().Now()))
	if err != nil {
		return 0, false, err
	}
	return iv.WidthPs(), iv.Contains(float64(s.sch.Now())), nil
}
