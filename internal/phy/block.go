// Package phy models the 10 Gigabit Ethernet physical coding sublayer
// (PCS) as specified by IEEE 802.3ae clause 49: 64b/66b block coding, the
// self-synchronizing scrambler, idle control blocks, and the DTP extension
// that embeds protocol messages into otherwise-idle /E/ blocks.
//
// One 66-bit block occupies exactly one 156.25 MHz clock period on the
// wire (66 bits / 10.3125 Gbaud = 6.4 ns), which is why the paper's tick T
// equals 6.4 ns: the PHY emits one block — and DTP can carry one message —
// per tick.
package phy

import "fmt"

// Sync headers, transmitted before the 64-bit (scrambled) payload.
const (
	// SyncData marks a block carrying eight data octets.
	SyncData = 0b01
	// SyncControl marks a block whose payload begins with a block type
	// field followed by control and/or data characters.
	SyncControl = 0b10
)

// Block type fields for control blocks (IEEE 802.3 figure 49-7, subset
// sufficient for full-duplex point-to-point Ethernet).
const (
	BTIdle   = 0x1e // C0..C7: eight 7-bit control codes (idles)
	BTStart  = 0x78 // S0 D1..D7: start of packet, seven data octets
	BTOrdSet = 0x4b // O0 D1..D3: ordered set (e.g. local/remote fault)
	BTTerm0  = 0x87 // T0: terminate immediately, seven idles follow
	BTTerm1  = 0x99
	BTTerm2  = 0xaa
	BTTerm3  = 0xb4
	BTTerm4  = 0xcc
	BTTerm5  = 0xd2
	BTTerm6  = 0xe1
	BTTerm7  = 0xff // D0..D6 T7: seven data octets then terminate
)

// termTypes[k] is the block type terminating a frame with k trailing data
// octets in the final block.
var termTypes = [8]byte{BTTerm0, BTTerm1, BTTerm2, BTTerm3, BTTerm4, BTTerm5, BTTerm6, BTTerm7}

// IdleChar is the 7-bit idle control character /I/. The standard requires
// at least twelve of these between any two Ethernet frames, guaranteeing
// at least one /E/ (all-idle) block per interpacket gap — the insertion
// point for DTP messages.
const IdleChar = 0x00

// Block is a 66-bit PCS block.
type Block struct {
	Sync    byte   // SyncData or SyncControl (2 bits on the wire)
	Payload uint64 // 64-bit payload; for control blocks, bits 0-7 are the block type field
}

// IdleBlock returns an /E/ block: type 0x1e with eight idle characters.
func IdleBlock() Block {
	return Block{Sync: SyncControl, Payload: BTIdle}
}

// DataBlock returns a block of eight data octets, octet 0 in the least
// significant byte (the PCS transmits least significant byte first).
func DataBlock(octets [8]byte) Block {
	var p uint64
	for i := 7; i >= 0; i-- {
		p = p<<8 | uint64(octets[i])
	}
	return Block{Sync: SyncData, Payload: p}
}

// BlockType returns the block type field of a control block.
func (b Block) BlockType() byte { return byte(b.Payload) }

// IsIdle reports whether b is an all-idle /E/ control block (possibly
// carrying a DTP message in its control-character bits).
func (b Block) IsIdle() bool {
	return b.Sync == SyncControl && b.BlockType() == BTIdle
}

// IsControl reports whether b is any control block.
func (b Block) IsControl() bool { return b.Sync == SyncControl }

// Valid reports whether the sync header is one of the two legal values.
// A corrupted sync header is how the receiver detects bit errors in the
// header; payload errors are caught at higher layers (CRC) or by DTP's
// own guards.
func (b Block) Valid() bool { return b.Sync == SyncData || b.Sync == SyncControl }

// ControlBits returns the 56 control-character bits of a control block
// (everything above the block type field).
func (b Block) ControlBits() uint64 { return b.Payload >> 8 }

// WithControlBits returns a copy of b with its 56 control-character bits
// replaced. Panics if more than 56 bits are supplied.
func (b Block) WithControlBits(bits uint64) Block {
	if bits>>56 != 0 {
		panic(fmt.Sprintf("phy: control bits overflow: %#x", bits))
	}
	b.Payload = b.Payload&0xff | bits<<8
	return b
}

// String renders the block for debugging.
func (b Block) String() string {
	switch {
	case b.Sync == SyncData:
		return fmt.Sprintf("D[%016x]", b.Payload)
	case b.IsIdle():
		if b.ControlBits() == 0 {
			return "E[idle]"
		}
		return fmt.Sprintf("E[%014x]", b.ControlBits())
	case b.Sync == SyncControl:
		return fmt.Sprintf("C[type=%02x %014x]", b.BlockType(), b.ControlBits())
	default:
		return fmt.Sprintf("?[sync=%d %016x]", b.Sync, b.Payload)
	}
}
