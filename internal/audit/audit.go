// Package audit verifies the paper's central claim while the simulation
// is still running: pairwise device offsets never exceed 4TD (§3.3).
//
// The Auditor snapshots every device's global counter at a configurable
// simulated cadence, derives each pair's live precision bound from BFS
// hop distances over the currently synchronized links (so the bound
// tightens and relaxes as links flap, and mixed-speed hops are charged
// their own 4-cycle share), and checks every reachable pair. A
// violation increments registry counters and emits a first-class
// KindBoundViolation trace event whose detail carries causal context:
// the last trace events touching either offending device, so an offline
// reader (cmd/dtptrace) can attribute the error to the protocol events
// that caused it.
//
// The package also houses the offline trace analyzer behind
// cmd/dtptrace (see analyze.go): state-machine dwell times, OWD and
// offset distributions, and counter-jump causality chains.
package audit

import (
	"fmt"
	"math"
	"strings"

	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
)

// Config tunes the online auditor. The zero value selects defaults.
type Config struct {
	// Interval is the snapshot cadence in simulated time (default 100 µs).
	Interval sim.Time

	// SoftwareMarginUnits is extra slack added to every pair's bound.
	// Hardware counters need none; audits of daemon-read clocks add the
	// paper's 8T software-access margin here (§5.1).
	SoftwareMarginUnits int64

	// CausalDepth is how many trace events of context a violation
	// carries (default 8).
	CausalDepth int

	// GraceChecks is how many checks are skipped after the set of
	// synchronized links changes (default 2). A freshly (re)joined
	// subnet announces its counter via BEACON-JOIN only JoinDelayTicks
	// after INIT completes, so the instant a link reports synced its two
	// sides may legitimately still be far apart.
	GraceChecks int

	// HostsOnly restricts auditing to host pairs (the end-to-end
	// precision that matters to applications). Default: every device.
	HostsOnly bool

	// MaxPairSeries caps per-pair worst-offset gauges registered with
	// the telemetry registry (default 256); larger networks keep
	// per-pair worsts internally but export only aggregates.
	MaxPairSeries int

	// MaxViolationEvents caps how many violation trace events (each of
	// which snapshots causal context from the tracer ring) are emitted
	// per check; counters still count every violation (default 4).
	MaxViolationEvents int
}

// DefaultConfig returns the default auditor configuration.
func DefaultConfig() Config {
	return Config{
		Interval:           100 * sim.Microsecond,
		CausalDepth:        8,
		GraceChecks:        2,
		MaxPairSeries:      256,
		MaxViolationEvents: 4,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	if c.CausalDepth <= 0 {
		c.CausalDepth = d.CausalDepth
	}
	if c.GraceChecks <= 0 {
		c.GraceChecks = d.GraceChecks
	}
	if c.MaxPairSeries <= 0 {
		c.MaxPairSeries = d.MaxPairSeries
	}
	if c.MaxViolationEvents <= 0 {
		c.MaxViolationEvents = d.MaxViolationEvents
	}
}

// Violation is one observed breach of the precision bound.
type Violation struct {
	At                      sim.Time
	A, B                    string // device names, topology order
	Hops                    int
	OffsetUnits, BoundUnits int64
	// Context holds the last trace events touching either device at the
	// time of the violation — the causal chain that led here.
	Context []telemetry.Event
}

// Auditor continuously verifies the 4TD bound over a core.Network. All
// work happens in scheduler events on the simulation goroutine; the
// telemetry it publishes may be scraped concurrently.
type Auditor struct {
	net *core.Network
	sch *sim.Scheduler
	cfg Config

	nodes   []int   // audited node IDs
	weights []int64 // per-link bound contribution, units
	active  []bool  // link-synced bitmap as of the last check
	hops    [][]int
	bounds  [][]int64

	grace         int
	converged     bool
	everConverged bool
	badSince      sim.Time
	timeToSync    sim.Time
	reconv        []sim.Time

	// windows holds the declared expected-degradation intervals
	// (fault-injection campaigns): violations inside any window are
	// counted separately as excused and do not fail the audit.
	windows []degradeWindow
	excused uint64

	checks     uint64
	pairChecks uint64
	violations uint64
	worst      int64
	minSlack   int64
	pairWorst  map[[2]int]int64
	lastViol   *Violation

	tr         *telemetry.Tracer
	mChecks    *telemetry.Counter
	mPairs     *telemetry.Counter
	mViol      *telemetry.Counter
	mExcused   *telemetry.Counter
	mWorst     *telemetry.Gauge
	mSlack     *telemetry.Gauge
	mTTS       *telemetry.Gauge
	mReconv    *telemetry.Histogram
	pairGauges map[[2]int]*telemetry.Gauge

	counters []uint64 // per-node snapshot scratch, reused across checks
	event    sim.Event
	stopped  bool
}

// New builds an auditor over the network. Call Instrument to attach
// telemetry (optional), then Start.
func New(n *core.Network, cfg Config) *Auditor {
	cfg.fillDefaults()
	a := &Auditor{
		net:        n,
		sch:        n.Sch,
		cfg:        cfg,
		active:     make([]bool, len(n.Graph.Links)),
		weights:    make([]int64, len(n.Graph.Links)),
		pairWorst:  map[[2]int]int64{},
		pairGauges: map[[2]int]*telemetry.Gauge{},
		timeToSync: -1,
		minSlack:   math.MaxInt64,
		counters:   make([]uint64, len(n.Graph.Nodes)),
	}
	for i := range n.Graph.Links {
		a.weights[i] = n.LinkBoundUnits(i)
	}
	if cfg.HostsOnly {
		a.nodes = n.Graph.HostIDs()
	} else {
		for i := range n.Graph.Nodes {
			a.nodes = append(a.nodes, i)
		}
	}
	return a
}

// Instrument attaches a metrics registry and/or tracer. Either may be
// nil; all handles are nil-safe. Per-pair worst-offset gauges are
// registered only when the pair count fits MaxPairSeries.
func (a *Auditor) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	a.tr = tr
	a.mChecks = reg.Counter("dtp_audit_checks_total",
		"Auditor snapshot rounds performed.")
	a.mPairs = reg.Counter("dtp_audit_pairs_checked_total",
		"Device pairs checked against their live 4TD bound.")
	a.mViol = reg.Counter("dtp_audit_violations_total",
		"Pairs observed outside their 4TD precision bound.")
	a.mExcused = reg.Counter("dtp_audit_violations_excused_total",
		"Bound breaches inside a declared expected-degradation window (fault injection).")
	a.mWorst = reg.Gauge("dtp_audit_worst_offset_units",
		"Largest |pairwise offset| the auditor has observed, in counter units.")
	a.mSlack = reg.Gauge("dtp_audit_min_slack_units",
		"Smallest (bound - |offset|) headroom observed, in counter units.")
	a.mSlack.Set(math.Inf(1))
	a.mTTS = reg.Gauge("dtp_audit_time_to_sync_seconds",
		"Simulated time at which the network first converged within bound.")
	a.mTTS.Set(-1)
	a.mReconv = reg.Histogram("dtp_audit_reconvergence_seconds",
		"Durations from a disruption (link flap, violation) back to a fully in-bound network.",
		telemetry.ExponentialBuckets(1e-6, 4, 12))
	if reg != nil {
		np := len(a.nodes) * (len(a.nodes) - 1) / 2
		if np <= a.cfg.MaxPairSeries {
			for x, i := range a.nodes {
				for _, j := range a.nodes[x+1:] {
					key := [2]int{i, j}
					a.pairGauges[key] = reg.Gauge("dtp_audit_pair_worst_offset_units",
						"Largest |offset| observed for this device pair, in counter units.",
						"pair", a.pairName(i, j))
				}
			}
		}
	}
}

func (a *Auditor) pairName(i, j int) string {
	return a.net.Graph.Nodes[i].Name + "-" + a.net.Graph.Nodes[j].Name
}

// Start schedules the periodic check. The auditor is quiet until the
// first link synchronizes.
func (a *Auditor) Start() {
	a.stopped = false
	a.event = a.sch.After(a.cfg.Interval, a.check)
}

// Stop cancels the periodic check.
func (a *Auditor) Stop() {
	a.stopped = true
	a.event.Cancel()
}

// degradeWindow is one declared interval during which bound breaches
// are expected (an injected fault is active, plus settle grace).
type degradeWindow struct {
	from, until sim.Time
	reason      string
}

// ExpectDegradation declares [from, until] as an expected-degradation
// window: a fault injector announces that the bound may legitimately
// not hold while its fault (plus settling time) is in effect. Breaches
// inside any declared window are tallied as excused instead of
// violations, so a chaos campaign can still assert zero *unexpected*
// violations. Windows are pruned once they expire.
func (a *Auditor) ExpectDegradation(from, until sim.Time, reason string) {
	a.windows = append(a.windows, degradeWindow{from: from, until: until, reason: reason})
}

// excusedAt reports whether t falls inside a declared window, pruning
// windows that ended before t (checks run in time order).
func (a *Auditor) excusedAt(t sim.Time) bool {
	live := a.windows[:0]
	for _, w := range a.windows {
		if w.until >= t {
			live = append(live, w)
		}
	}
	a.windows = live
	for _, w := range a.windows {
		if w.from <= t && t <= w.until {
			return true
		}
	}
	return false
}

// noteDisruption marks the start of a not-converged spell.
func (a *Auditor) noteDisruption(now sim.Time) {
	if a.converged {
		a.converged = false
		a.badSince = now
	}
}

func (a *Auditor) check() {
	if a.stopped {
		return
	}
	now := a.sch.Now()
	a.checks++
	a.mChecks.Inc()

	changed := a.hops == nil
	for i := range a.active {
		s := a.net.LinkSynced(i)
		if s != a.active[i] {
			a.active[i] = s
			changed = true
		}
	}
	if changed {
		a.hops, a.bounds = a.net.Graph.HopsWith(a.active, a.weights)
		a.grace = a.cfg.GraceChecks
		a.noteDisruption(now)
	}
	if a.grace > 0 {
		a.grace--
		a.reschedule()
		return
	}

	for _, i := range a.nodes {
		a.counters[i] = a.net.Devices[i].GlobalCounterAt(now)
	}
	clean := true
	connected := true
	excused := a.excusedAt(now)
	var pairs uint64
	var eventsLeft = a.cfg.MaxViolationEvents
	for x, i := range a.nodes {
		for _, j := range a.nodes[x+1:] {
			d := a.hops[i][j]
			if d < 0 {
				connected = false
				continue
			}
			pairs++
			off := int64(a.counters[i]) - int64(a.counters[j])
			abs := off
			if abs < 0 {
				abs = -abs
			}
			bound := a.bounds[i][j] + a.cfg.SoftwareMarginUnits
			if abs > a.worst {
				a.worst = abs
				a.mWorst.Set(float64(abs))
			}
			key := [2]int{i, j}
			if abs > a.pairWorst[key] {
				a.pairWorst[key] = abs
				if g := a.pairGauges[key]; g != nil {
					g.Set(float64(abs))
				}
			}
			if slack := bound - abs; slack < a.minSlack {
				a.minSlack = slack
				a.mSlack.Set(float64(slack))
			}
			if abs > bound {
				clean = false
				if excused {
					a.excused++
					a.mExcused.Inc()
				} else {
					a.recordViolation(now, i, j, d, off, bound, eventsLeft > 0)
					if eventsLeft > 0 {
						eventsLeft--
					}
				}
			}
		}
	}
	a.pairChecks += pairs
	a.mPairs.Add(pairs)

	if clean && connected && pairs > 0 {
		if !a.converged {
			a.converged = true
			if !a.everConverged {
				a.everConverged = true
				a.timeToSync = now
				a.mTTS.Set(now.Seconds())
			} else {
				dur := now - a.badSince
				a.reconv = append(a.reconv, dur)
				a.mReconv.Observe(dur.Seconds())
			}
		}
	} else {
		a.noteDisruption(now)
	}
	a.reschedule()
}

func (a *Auditor) reschedule() {
	if !a.stopped {
		a.event = a.sch.After(a.cfg.Interval, a.check)
	}
}

// recordViolation counts a bound breach and, when emit is set, captures
// causal context and publishes a KindBoundViolation trace event.
func (a *Auditor) recordViolation(at sim.Time, i, j, hops int, off, bound int64, emit bool) {
	a.violations++
	a.mViol.Inc()
	if !emit {
		return
	}
	an := a.net.Graph.Nodes[i].Name
	bn := a.net.Graph.Nodes[j].Name
	ctx := a.causalContext(an, bn)
	a.lastViol = &Violation{
		At: at, A: an, B: bn, Hops: hops,
		OffsetUnits: off, BoundUnits: bound, Context: ctx,
	}
	if a.tr.Enabled(telemetry.KindBoundViolation) {
		a.tr.Record(at, telemetry.KindBoundViolation, an+"~"+bn, off, bound,
			violationDetail(hops, ctx))
	}
}

// causalContext returns the last CausalDepth retained trace events that
// touch either device (by device name or any of its ports), oldest
// first. Violation events themselves are excluded so repeated breaches
// do not bury the protocol events that caused the first one.
func (a *Auditor) causalContext(an, bn string) []telemetry.Event {
	if a.tr == nil {
		return nil
	}
	events := a.tr.Events()
	var ctx []telemetry.Event
	for k := len(events) - 1; k >= 0 && len(ctx) < a.cfg.CausalDepth; k-- {
		e := events[k]
		if e.Kind == telemetry.KindBoundViolation {
			continue
		}
		if touches(e.Who, an) || touches(e.Who, bn) {
			ctx = append(ctx, e)
		}
	}
	// Reverse into chronological order.
	for l, r := 0, len(ctx)-1; l < r; l, r = l+1, r-1 {
		ctx[l], ctx[r] = ctx[r], ctx[l]
	}
	return ctx
}

// touches reports whether the event's Who ("s1" or "s1[2]") belongs to
// the named device.
func touches(who, dev string) bool {
	return who == dev || (strings.HasPrefix(who, dev) && len(who) > len(dev) && who[len(dev)] == '[')
}

// violationDetail renders the hop distance and causal context into a
// compact single-line string for the trace event.
func violationDetail(hops int, ctx []telemetry.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "hops=%d", hops)
	if len(ctx) > 0 {
		b.WriteString(" ctx=[")
		for k, e := range ctx {
			if k > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%s %s v1=%d v2=%d @%v", e.Kind, e.Who, e.V1, e.V2, e.At)
		}
		b.WriteString("]")
	}
	return b.String()
}

// --- Accessors ---------------------------------------------------------

// Checks returns how many snapshot rounds ran.
func (a *Auditor) Checks() uint64 { return a.checks }

// PairChecks returns how many pair-bound comparisons ran.
func (a *Auditor) PairChecks() uint64 { return a.pairChecks }

// Violations returns how many pair checks breached their bound outside
// any declared expected-degradation window.
func (a *Auditor) Violations() uint64 { return a.violations }

// ExcusedViolations returns how many breaches fell inside declared
// expected-degradation windows.
func (a *Auditor) ExcusedViolations() uint64 { return a.excused }

// WorstOffsetUnits returns the largest |offset| observed, in units.
func (a *Auditor) WorstOffsetUnits() int64 { return a.worst }

// MinSlackUnits returns the smallest (bound - |offset|) headroom
// observed (math.MaxInt64 before any pair was checked).
func (a *Auditor) MinSlackUnits() int64 { return a.minSlack }

// TimeToSync returns when the network first converged fully in-bound
// (-1 if it never has).
func (a *Auditor) TimeToSync() sim.Time { return a.timeToSync }

// Reconvergences returns the duration of every completed disruption
// spell after the first convergence — e.g. recovery from a link flap.
func (a *Auditor) Reconvergences() []sim.Time { return a.reconv }

// Converged reports whether the last completed check found every pair
// reachable and in bound.
func (a *Auditor) Converged() bool { return a.converged }

// LastViolation returns the most recent emitted violation (nil if none).
func (a *Auditor) LastViolation() *Violation { return a.lastViol }

// LiveBoundUnits returns the current worst-case 4TD precision bound
// between the named device and any other audited device, in counter
// units and including the configured software margin — the half-width a
// time-serving API must cover for cross-host counter disagreement. It
// reflects the link-synced set as of the auditor's last check, so it
// tightens and relaxes as links flap. Returns -1 when the device is not
// audited, no check has run yet, or the device cannot currently reach
// every audited peer (a partitioned host has no honest bound to serve).
func (a *Auditor) LiveBoundUnits(device string) int64 {
	if a.hops == nil {
		return -1
	}
	node, ok := a.net.Graph.ByName(device)
	if !ok {
		return -1
	}
	id := node.ID
	audited := false
	worst := int64(-1)
	for _, j := range a.nodes {
		if j == id {
			audited = true
			continue
		}
		if a.hops[id][j] < 0 {
			return -1
		}
		if b := a.bounds[id][j] + a.cfg.SoftwareMarginUnits; b > worst {
			worst = b
		}
	}
	if !audited {
		return -1
	}
	return worst
}

// WorstPairOffsetUnits returns the worst |offset| seen for a device
// pair, by topology node IDs in either order (0 if never checked).
func (a *Auditor) WorstPairOffsetUnits(i, j int) int64 {
	if i > j {
		i, j = j, i
	}
	return a.pairWorst[[2]int{i, j}]
}

// Summary renders a one-line report.
func (a *Auditor) Summary() string {
	tts := "never"
	if a.timeToSync >= 0 {
		tts = a.timeToSync.String()
	}
	slack := ""
	if a.minSlack != math.MaxInt64 {
		slack = fmt.Sprintf(" min-slack %d", a.minSlack)
	}
	excused := ""
	if a.excused > 0 {
		excused = fmt.Sprintf(" (+%d excused)", a.excused)
	}
	return fmt.Sprintf("audit: %d checks, %d pair checks, %d violations%s, worst |offset| %d units%s, first sync %s, %d reconvergences",
		a.checks, a.pairChecks, a.violations, excused, a.worst, slack, tts, len(a.reconv))
}
