package sim

// Calendar-queue discipline (Brown, CACM 1988), adapted for the
// simulator's workload: a dominant periodic process (beacon intervals)
// with short event chains hanging off each period, plus a sparse far
// tail (watchdogs, timeouts).
//
// Events hash into buckets by bucket(t) = (t >> shift) & mask — the
// bucket width is a power of two picoseconds so the hot path divides by
// shifting. Each bucket holds a chain sorted by (time, seq); with the
// width tracking the dispatch-gap EWMA, chains stay O(1) and dispatch
// scans O(1) buckets. Events further than a full bucket rotation ahead
// ("future years") stay in their bucket and cost one head comparison
// per scan pass until their year arrives.
//
// Determinism: dispatch always returns the global (time, seq) minimum —
// see the scan invariant on calPopLE — and every sizing input (queue
// size, dispatch-gap EWMA, dispatch count) is itself a deterministic
// function of the event sequence. Resizes and width recalibrations can
// change only the constant factors, never the dispatch order, which the
// equivalence property test pins against the heap reference discipline.

const (
	// initialBuckets must be a power of two.
	initialBuckets = 64
	// initialShift gives 2^16 ps ≈ 65.5 ns buckets before any dispatch
	// statistics exist — sized for the dense link bring-up burst.
	initialShift = 16
	// minShift / maxShift clamp adaptation: 2^10 ps ≈ 1 ns to
	// 2^34 ps ≈ 17 ms.
	minShift = 10
	maxShift = 34
	// recalibrateEvery is how often (in dispatches, power of two) the
	// width is checked against the dispatch-gap EWMA.
	recalibrateEvery = 1 << 16
	// minBuckets floors shrinking.
	minBuckets = 16
)

func newBuckets(n int) []uint32 {
	b := make([]uint32, n)
	for i := range b {
		b[i] = nilSlot
	}
	return b
}

func (s *Scheduler) bucketOf(t Time) int {
	return int(uint64(t) >> s.shift & s.mask)
}

// calInsert links slot idx into its bucket's sorted chain.
func (s *Scheduler) calInsert(idx uint32) {
	sl := &s.slots[idx]
	b := s.bucketOf(sl.at)
	head := s.buckets[b]
	if head == nilSlot || s.slotLess(idx, head) {
		sl.next = head
		s.buckets[b] = idx
		return
	}
	cur := head
	for {
		nxt := s.slots[cur].next
		if nxt == nilSlot || s.slotLess(idx, nxt) {
			sl.next = nxt
			s.slots[cur].next = idx
			return
		}
		cur = nxt
	}
}

// calUnlink removes slot idx from its bucket chain (Cancel path). The
// walk is bounded by the chain length, which the width adaptation keeps
// O(1).
func (s *Scheduler) calUnlink(idx uint32) {
	b := s.bucketOf(s.slots[idx].at)
	cur := s.buckets[b]
	if cur == idx {
		s.buckets[b] = s.slots[idx].next
		return
	}
	for {
		nxt := s.slots[cur].next
		if nxt == idx {
			s.slots[cur].next = s.slots[idx].next
			return
		}
		cur = nxt
	}
}

// calPopLE unlinks and returns the earliest pending slot if its time is
// at or before `until`.
//
// Scan invariant: walking buckets in rotation order from bucket(now),
// the first chain head whose time falls inside the bucket's current
// year window is the global (time, seq) minimum. Proof sketch: every
// pending event has at >= now (At panics otherwise, and dispatch always
// removes the minimum). Suppose head h of the k-th scanned bucket has
// h.at < top_k = (now>>shift + k + 1) << shift, and some pending e has
// e.at < h.at. Then e's bucket index lies j <= k buckets ahead of
// bucket(now); if j < k, pass j inspected that bucket's head — which
// sorts at or before e, hence inside window j — and would have returned
// it; if j == k, e is in h's bucket and the chain ordering makes h sort
// first. Same-time events always share a bucket, so the (time, seq)
// tie-break never crosses buckets.
//
// If a full rotation finds nothing (every pending event is beyond one
// rotation's span — the sparse/idle regime), fall back to a direct
// min scan over the chain heads.
func (s *Scheduler) calPopLE(until Time) (uint32, bool) {
	if s.size == 0 {
		return 0, false
	}
	n := len(s.buckets)
	start := uint64(s.now) >> s.shift
	for k := 0; k < n; k++ {
		b := int((start + uint64(k)) & s.mask)
		h := s.buckets[b]
		if h == nilSlot {
			continue
		}
		if s.slots[h].at < Time((start+uint64(k)+1)<<s.shift) {
			if s.slots[h].at > until {
				return 0, false
			}
			s.buckets[b] = s.slots[h].next
			return h, true
		}
	}
	best := nilSlot
	bb := 0
	for b, h := range s.buckets {
		if h == nilSlot {
			continue
		}
		if best == nilSlot || s.slotLess(h, best) {
			best, bb = h, b
		}
	}
	if s.slots[best].at > until {
		return 0, false
	}
	s.buckets[bb] = s.slots[best].next
	return best, true
}

// targetShift derives the bucket-width exponent from the dispatch-gap
// EWMA: about 4x the mean gap, so consecutive dispatches advance at
// most a bucket and chains stay short. spanFallback covers the cold
// start (nothing dispatched yet): spread the current queue span so
// chains average O(1).
func (s *Scheduler) targetShift(spanFallback Time, size int) uint {
	g := s.gapEWMA
	if g <= 0 {
		if size > 0 {
			g = spanFallback / Time(size)
		}
		if g <= 0 {
			g = 1
		}
	}
	w := uint64(g) * 4
	sh := uint(minShift)
	for sh < maxShift && uint64(1)<<sh < w {
		sh++
	}
	return sh
}

// rebuild resizes to n buckets (power of two), recomputes the width,
// and re-hashes every pending slot. Sorted insertion is order-
// independent, so a rebuild never changes dispatch order.
func (s *Scheduler) rebuild(n int) {
	if n < minBuckets {
		n = minBuckets
	}
	s.scratch = s.scratch[:0]
	var lo, hi Time
	first := true
	for _, h := range s.buckets {
		for h != nilSlot {
			s.scratch = append(s.scratch, h)
			at := s.slots[h].at
			if first {
				lo, hi = at, at
				first = false
			} else {
				if at < lo {
					lo = at
				}
				if at > hi {
					hi = at
				}
			}
			h = s.slots[h].next
		}
	}
	s.shift = s.targetShift(hi-lo, len(s.scratch))
	if n <= cap(s.buckets) && n <= len(s.buckets) {
		s.buckets = s.buckets[:n]
		for i := range s.buckets {
			s.buckets[i] = nilSlot
		}
	} else {
		s.buckets = newBuckets(n)
	}
	s.mask = uint64(n - 1)
	for _, idx := range s.scratch {
		s.calInsert(idx)
	}
}

// maybeShrink halves the bucket array when the queue has emptied out
// (Cancel/dispatch path), keeping sparse-regime scans proportional to
// the queue size.
func (s *Scheduler) maybeShrink() {
	if s.heapMode {
		return
	}
	if n := len(s.buckets); n > minBuckets && s.size < n/8 {
		s.rebuild(n / 2)
	}
}

// maybeRecalibrate rebuilds at the current size when the width has
// drifted more than 4x from the dispatch-gap target — the workload's
// cadence changed (e.g. bring-up burst settling into steady beaconing).
func (s *Scheduler) maybeRecalibrate() {
	t := s.targetShift(0, 0)
	if s.gapEWMA <= 0 {
		return
	}
	if t > s.shift+2 || t+2 < s.shift {
		s.rebuild(len(s.buckets))
	}
}
