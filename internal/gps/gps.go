// Package gps models GPS-disciplined clocks (§2.4.3): each equipped
// server reads true time through a receiver with a fixed per-receiver
// bias (antenna cable length, receiver calibration) plus white phase
// noise. The paper cites ~100 ns practical precision; pairwise offsets
// between two receivers here land in that range. GPS needs no network —
// which is exactly its scalability problem (Table 1: one receiver and
// roof cable per server).
package gps

import (
	"fmt"

	"github.com/dtplab/dtp/internal/sim"
)

// Config describes receiver quality.
type Config struct {
	// BiasMaxNs bounds the fixed per-receiver bias, uniform ±.
	BiasMaxNs float64
	// NoiseNs is the standard deviation of white phase noise per read.
	NoiseNs float64
}

// DefaultConfig models a good timing receiver: ±50 ns calibration bias,
// 20 ns read noise — about 100 ns pairwise, matching the paper.
func DefaultConfig() Config {
	return Config{BiasMaxNs: 50, NoiseNs: 20}
}

// Receiver is one GPS-disciplined clock.
type Receiver struct {
	sch  *sim.Scheduler
	rng  *sim.RNG
	bias float64 // ps
	cfg  Config
}

// NewReceiver creates a receiver with a random fixed bias.
func NewReceiver(sch *sim.Scheduler, cfg Config, seed uint64, name string) *Receiver {
	rng := sim.NewRNG(seed, fmt.Sprintf("gps/%s", name))
	return &Receiver{
		sch:  sch,
		rng:  rng,
		bias: rng.Uniform(-cfg.BiasMaxNs*1000, cfg.BiasMaxNs*1000),
		cfg:  cfg,
	}
}

// Read returns the receiver's view of true time (ps) at the current
// instant.
func (r *Receiver) Read() float64 {
	return float64(r.sch.Now()) + r.bias + r.rng.Normal(0, r.cfg.NoiseNs*1000)
}

// OffsetPs returns this receiver's instantaneous error versus true time.
func (r *Receiver) OffsetPs() float64 { return r.Read() - float64(r.sch.Now()) }
