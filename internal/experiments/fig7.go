package experiments

import (
	"fmt"

	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/daemon"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/stats"
	"github.com/dtplab/dtp/internal/topo"
)

// DaemonFigResult is the output of the Figure 7 experiments: per-server
// offset_sw traces (daemon estimate minus hardware counter, in ticks).
type DaemonFigResult struct {
	// Raw holds the unsmoothed per-server offset samples.
	Raw map[string][]float64
	// Smoothed holds the window-10 moving average (Figure 7b).
	Smoothed map[string][]float64
	// RawP95 / SmoothedP95 are the worst per-server 95th-percentile
	// magnitudes.
	RawP95, SmoothedP95 float64
	// RawMax is the worst raw spike magnitude.
	RawMax float64
}

// daemonCompression: the paper calibrates once per second over hours;
// we calibrate every 10 ms over simulated seconds.
const daemonCompression = 100

// Fig7 reproduces Figure 7: DTP daemons on the paper tree's leaves
// reading their NIC counters over PCIe. Paper: raw offsets usually
// within ±16 ticks with occasional spikes (7a); within ±4 ticks after a
// 10-sample moving average (7b).
func Fig7(o Options) (*DaemonFigResult, error) {
	o = o.withDefaults(5*sim.Second, 0)
	sch := sim.NewScheduler()
	n, err := core.NewNetwork(sch, o.Seed, topo.PaperTree(), core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	n.Start()
	sch.Run(10 * sim.Millisecond)
	if !n.AllSynced() {
		return nil, fmt.Errorf("experiments: network failed to synchronize")
	}
	res := &DaemonFigResult{Raw: map[string][]float64{}, Smoothed: map[string][]float64{}}
	// The figure plots s4, s5, s7, s8, s9, s11.
	for i, name := range []string{"s4", "s5", "s7", "s8", "s9", "s11"} {
		dev, err := n.DeviceByName(name)
		if err != nil {
			return nil, err
		}
		d, err := daemon.Attach(dev, daemon.Options{
			Config:     daemon.DefaultConfig().Compressed(daemonCompression),
			Discipline: o.Discipline,
		}, o.Seed+20+uint64(i))
		if err != nil {
			return nil, err
		}
		name := name
		d.OnSample = func(off float64) { res.Raw[name] = append(res.Raw[name], off) }
		d.Start()
	}
	sch.RunFor(o.Duration)
	for name, raw := range res.Raw {
		sm := stats.MovingAverage(raw, 10)
		res.Smoothed[name] = sm
		rawSum := stats.NewSummary(0)
		for _, v := range raw {
			rawSum.Add(v)
			if v < 0 {
				v = -v
			}
			if v > res.RawMax {
				res.RawMax = v
			}
		}
		smSum := stats.NewSummary(0)
		for _, v := range sm[min(10, len(sm)):] {
			smSum.Add(v)
		}
		if p := quantileAbs(rawSum, 0.95); p > res.RawP95 {
			res.RawP95 = p
		}
		if p := quantileAbs(smSum, 0.95); p > res.SmoothedP95 {
			res.SmoothedP95 = p
		}
	}
	return res, nil
}

func quantileAbs(s *stats.Summary, q float64) float64 {
	hi := s.Quantile(q)
	lo := s.Quantile(1 - q)
	if lo < 0 {
		lo = -lo
	}
	if hi < 0 {
		hi = -hi
	}
	if lo > hi {
		return lo
	}
	return hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
