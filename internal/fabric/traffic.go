package fabric

import (
	"fmt"

	"github.com/dtplab/dtp/internal/eth"
	"github.com/dtplab/dtp/internal/sim"
)

// TrafficGen produces iperf-style UDP load between two hosts: bursts of
// back-to-back frames (as interrupt-coalescing senders emit them) paced
// to a target average rate. Burstiness is what makes moderate average
// load produce tens-of-microseconds transient queues — the condition
// behind Figure 6e.
type TrafficGen struct {
	net  *Network
	rng  *sim.RNG
	stop bool

	Src, Dst  int
	FrameSize int
	RateGbps  float64
	Burst     int // frames per burst

	sent uint64
}

// NewTrafficGen creates a generator; call Start to begin.
func NewTrafficGen(n *Network, src, dst int, frameSize int, rateGbps float64, burst int, seed uint64) *TrafficGen {
	if burst < 1 {
		burst = 1
	}
	return &TrafficGen{
		net: n, rng: sim.NewRNG(seed, fmt.Sprintf("traffic/%d-%d", src, dst)),
		Src: src, Dst: dst, FrameSize: frameSize, RateGbps: rateGbps, Burst: burst,
	}
}

// Start begins emitting bursts after a small random phase.
func (g *TrafficGen) Start() {
	g.stop = false
	g.net.Sch.After(g.rng.UniformTime(0, g.gap()), g.emit)
}

// Stop halts the generator after the current burst.
func (g *TrafficGen) Stop() { g.stop = true }

// Sent returns frames emitted so far.
func (g *TrafficGen) Sent() uint64 { return g.sent }

// gap returns the average time between bursts for the target rate.
func (g *TrafficGen) gap() sim.Time {
	bitsPerBurst := float64(g.FrameSize*8*g.Burst) * 1000 // in ps at 1 Gbps
	return sim.Time(bitsPerBurst / g.RateGbps)
}

func (g *TrafficGen) emit() {
	if g.stop {
		return
	}
	for i := 0; i < g.Burst; i++ {
		g.net.Send(&eth.Frame{Src: g.Src, Dst: g.Dst, Size: g.FrameSize, Proto: eth.ProtoBulk})
		g.sent++
	}
	// Pace to the average rate with ±25% jitter so flows do not phase
	// lock.
	gap := g.gap()
	next := g.rng.UniformTime(gap*3/4, gap*5/4)
	g.net.Sch.After(next, g.emit)
}

// SaturateLink drives src->dst at ~line rate with MTU frames — the
// paper's heavy-load condition (9 Gbps of goodput on a 10 Gbps link).
func SaturateLink(n *Network, src, dst int, seed uint64) *TrafficGen {
	g := NewTrafficGen(n, src, dst, eth.MTUFrame, 9.0, 32, seed)
	g.Start()
	return g
}

// SprayGen reproduces the paper's load pattern (§6.1): "each server
// occasionally generated MTU-sized UDP packets destined for other
// servers". Each burst goes to a random destination, so several sources
// intermittently converge on the same egress — the mechanism that
// produces the deep transient queues behind Figures 6e–f.
type SprayGen struct {
	net  *Network
	rng  *sim.RNG
	stop bool

	Src       int
	Dsts      []int
	FrameSize int
	RateGbps  float64
	Burst     int

	sent uint64
}

// NewSprayGen creates a sprayer from src across the destination set.
func NewSprayGen(n *Network, src int, dsts []int, rateGbps float64, burst int, seed uint64) *SprayGen {
	if len(dsts) == 0 {
		panic("fabric: spray needs destinations")
	}
	if burst < 1 {
		burst = 1
	}
	return &SprayGen{
		net: n, rng: sim.NewRNG(seed, fmt.Sprintf("spray/%d", src)),
		Src: src, Dsts: dsts, FrameSize: eth.MTUFrame, RateGbps: rateGbps, Burst: burst,
	}
}

// Start begins spraying.
func (g *SprayGen) Start() {
	g.stop = false
	g.net.Sch.After(g.rng.UniformTime(0, g.gap()), g.emit)
}

// Stop halts the sprayer.
func (g *SprayGen) Stop() { g.stop = true }

// Sent returns frames emitted.
func (g *SprayGen) Sent() uint64 { return g.sent }

func (g *SprayGen) gap() sim.Time {
	bitsPerBurst := float64(g.FrameSize*8*g.Burst) * 1000
	return sim.Time(bitsPerBurst / g.RateGbps)
}

func (g *SprayGen) emit() {
	if g.stop {
		return
	}
	dst := g.Dsts[g.rng.IntN(len(g.Dsts))]
	if dst == g.Src {
		dst = g.Dsts[(g.rng.IntN(len(g.Dsts))+1)%len(g.Dsts)]
	}
	for i := 0; i < g.Burst && dst != g.Src; i++ {
		g.net.Send(&eth.Frame{Src: g.Src, Dst: dst, Size: g.FrameSize, Proto: eth.ProtoBulk})
		g.sent++
	}
	gap := g.gap()
	g.net.Sch.After(g.rng.UniformTime(gap*3/4, gap*5/4), g.emit)
}
