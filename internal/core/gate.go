package core

import (
	"github.com/dtplab/dtp/internal/phy"
	"github.com/dtplab/dtp/internal/sim"
)

// TxGate models when the transmit path has an idle /E/ block available
// for a DTP message. The standard guarantees at least one /E/ block per
// interpacket gap, so even a fully saturated link offers one message slot
// per frame (§4.4); an idle link offers a slot every tick.
//
// NextSlot returns a slot >= want. Callers drive it with strictly
// increasing `want` values (the next beacon is always requested after
// the previous slot), so no cross-query ordering is required.
type TxGate interface {
	NextSlot(want uint64) uint64
}

// OpenGate is an idle link: every tick carries an /E/ block.
type OpenGate struct{}

// NextSlot returns want: the link is always free.
func (OpenGate) NextSlot(want uint64) uint64 { return want }

// SaturatedGate models a link fully loaded with back-to-back frames of a
// fixed size: message slots exist only in the interpacket gap, i.e. once
// every BlocksPerFrame ticks. This is the paper's "heavily loaded"
// condition: beacon opportunities every ~200 ticks for MTU frames,
// ~1200 for jumbo.
type SaturatedGate struct {
	FrameBlocks uint64 // blocks (= ticks) per frame including IPG
	Phase       uint64 // tick offset of the first gap
}

// NewSaturatedGate builds a gate for back-to-back frames of the given
// octet size.
func NewSaturatedGate(frameOctets int, phase uint64) SaturatedGate {
	return SaturatedGate{FrameBlocks: uint64(phy.BlocksPerFrame(frameOctets)), Phase: phase}
}

// NextSlot returns the first interpacket gap at or after want.
func (g SaturatedGate) NextSlot(want uint64) uint64 {
	if g.FrameBlocks <= 1 {
		return want
	}
	if want <= g.Phase {
		return g.Phase
	}
	k := (want - g.Phase + g.FrameBlocks - 1) / g.FrameBlocks
	return g.Phase + k*g.FrameBlocks
}

// RandomLoadGate models partial load: each frame-sized slot is occupied
// with probability Load; a message waits for the first free slot. At
// Load 0 it behaves like OpenGate quantized to frame slots; at Load 1 it
// degenerates to SaturatedGate.
type RandomLoadGate struct {
	FrameBlocks uint64
	Load        float64
	rng         *sim.RNG
}

// NewRandomLoadGate builds a partial-load gate.
func NewRandomLoadGate(frameOctets int, load float64, rng *sim.RNG) *RandomLoadGate {
	return &RandomLoadGate{
		FrameBlocks: uint64(phy.BlocksPerFrame(frameOctets)),
		Load:        load,
		rng:         rng,
	}
}

// NextSlot walks frame slots from want until one is free.
func (g *RandomLoadGate) NextSlot(want uint64) uint64 {
	slot := want
	for g.rng.Bool(g.Load) {
		slot += g.FrameBlocks
	}
	return slot
}
