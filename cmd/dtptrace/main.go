// Command dtptrace is the offline causal analyzer for recorded DTP
// telemetry: it ingests a JSONL protocol trace (dtpsim -trace-out,
// dtpd/dtpsim /trace endpoint) plus an optional Prometheus metrics dump
// and reconstructs what the protocol did — per-port state-machine dwell
// times, the INIT one-way-delay distribution (with an assertion hook
// for the paper's 43–45 cycle range on 10 m cables), Figure 6c style
// beacon-offset tables, counter-jump causality chains, and any bound
// violations the online auditor recorded. Traces from hardened runs
// (dtpsim -hardened) additionally get a Byzantine-defense section: every
// counter_rejected event grouped by port with its advance-vs-allowance
// arithmetic and beacon/join path, each port_quarantined event tied to
// the rejections that triggered it, and the chaos inject/clear markers
// that caused them.
//
// Output is byte-deterministic for a given trace: two runs of the same
// seed through dtpsim produce identical dtptrace reports.
//
// Usage:
//
//	dtpsim -topo tree -duration 200ms -trace-out trace.jsonl -metrics-out m.prom
//	dtptrace -trace trace.jsonl -topo tree -metrics m.prom -assert-owd 43:45
//
// With -bundle it instead validates a flight-recorder bundle
// (dtp-flight/1), prints its summary (reason, trigger time, trace
// window, timeline shape, state sections), warns when the trace ring
// dropped events before the trigger, and runs the same causal analyzer
// over the bundle's embedded trace window:
//
//	dtptrace -bundle flight/flight-1-00-port_demoted.json -topo pair
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/dtplab/dtp/internal/audit"
	"github.com/dtplab/dtp/internal/cliutil"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
	"github.com/dtplab/dtp/internal/topo"
)

var (
	// -topo (empty default: skip the jump-chain analysis that needs the
	// recorded topology)
	shared = cliutil.Flags{}

	traceFlag  = flag.String("trace", "", "JSONL trace file to analyze")
	bundleFlag = flag.String("bundle", "", "flight bundle (dtp-flight/1 JSON) to validate, summarize, and analyze; exits 1 if the bundle is invalid")
	metricsIn  = flag.String("metrics", "", "optional Prometheus text dump to summarize")
	owdFlag    = flag.String("assert-owd", "", "fail unless every measured OWD lies in lo:hi port cycles (paper: 43:45 on 10 m cables)")
	topFlag    = flag.Int("top", 5, "causality chains to print")
	windowFlag = flag.Duration("window", 10*time.Microsecond, "max cause-effect gap between chained counter jumps")
)

func main() {
	shared.Register(flag.CommandLine, cliutil.FlagTopo)
	flag.Parse()
	if err := shared.Validate(); err != nil {
		cliutil.Fatal("dtptrace", 2, err)
	}
	if *traceFlag == "" && *bundleFlag == "" {
		fmt.Fprintln(os.Stderr, "dtptrace: -trace or -bundle is required")
		flag.Usage()
		os.Exit(2)
	}

	var g *topo.Graph
	if shared.Topo != "" {
		parsed, err := shared.Topology()
		if err != nil {
			fatal(err)
		}
		g = &parsed
	}

	// Bundle mode: validate the flight bundle, summarize it, and run the
	// causal analyzer over its embedded trace window. Unlike plain trace
	// mode, recorded bound violations do NOT fail the exit status — a
	// bundle exists precisely because something broke; dtptrace's job
	// here is to certify the black box itself is intact and readable.
	if *bundleFlag != "" {
		events, err := summarizeBundle(os.Stdout, *bundleFlag)
		if err != nil {
			fatal(err)
		}
		if len(events) > 0 {
			report := audit.Analyze(events, g, sim.FromStd(*windowFlag))
			if err := report.WriteText(os.Stdout, *topFlag); err != nil {
				fatal(err)
			}
		}
		return
	}

	f, err := os.Open(*traceFlag)
	if err != nil {
		fatal(err)
	}
	events, err := telemetry.ReadJSONL(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	report := audit.Analyze(events, g, sim.FromStd(*windowFlag))
	if err := report.WriteText(os.Stdout, *topFlag); err != nil {
		fatal(err)
	}

	if *metricsIn != "" {
		if err := summarizeMetrics(*metricsIn); err != nil {
			fatal(err)
		}
	}

	if *owdFlag != "" {
		lo, hi, err := parseRange(*owdFlag)
		if err != nil {
			fatal(err)
		}
		mlo, mhi, n := report.OWDRange()
		switch {
		case n == 0:
			fmt.Printf("\nOWD assertion %d..%d: FAIL (no synced events in trace)\n", lo, hi)
			os.Exit(1)
		case mlo < lo || mhi > hi:
			fmt.Printf("\nOWD assertion %d..%d: FAIL (measured %d..%d over %d samples)\n", lo, hi, mlo, mhi, n)
			os.Exit(1)
		default:
			fmt.Printf("\nOWD assertion %d..%d: ok (measured %d..%d over %d samples)\n", lo, hi, mlo, mhi, n)
		}
	}
	if len(report.Violations) > 0 {
		os.Exit(1)
	}
}

// summarizeBundle validates a flight bundle via telemetry.LoadBundle,
// prints a human summary, and returns the embedded trace window for
// causal analysis. A non-zero ring-drop count gets a warning line: the
// trailing window is intact, but chains reaching further back are
// incomplete.
func summarizeBundle(w io.Writer, path string) ([]telemetry.Event, error) {
	b, err := telemetry.LoadBundle(path)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "== Flight bundle %s\n", filepath.Base(path))
	fmt.Fprintf(w, "schema   %s  seed %d  seq %d\n", b.Schema, b.Seed, b.Seq)
	fmt.Fprintf(w, "reason   %s", b.Reason)
	if b.Detail != "" {
		fmt.Fprintf(w, " (%s)", b.Detail)
	}
	fmt.Fprintf(w, "\ntrigger  t = %.3f ms simulated\n", float64(b.TPs)/1e9)
	var events []telemetry.Event
	if b.Trace != nil {
		fmt.Fprintf(w, "trace    %d events embedded (%d recorded, %d ring-dropped)\n",
			len(b.Trace.Events), b.Trace.Total, b.Trace.Dropped)
		if b.Trace.Dropped > 0 {
			fmt.Fprintf(w, "warning  %d events fell out of the trace ring before the trigger; causal chains may be truncated\n",
				b.Trace.Dropped)
		}
		events = make([]telemetry.Event, len(b.Trace.Events))
		for i, e := range b.Trace.Events {
			k, _ := telemetry.KindFromString(e.Kind) // kinds validated by LoadBundle
			events[i] = telemetry.Event{
				Seq: e.Seq, At: sim.Time(e.TPs), Kind: k,
				Who: e.Who, V1: e.V1, V2: e.V2, Detail: e.Detail,
			}
		}
	}
	if b.Timeline != nil {
		fmt.Fprintf(w, "timeline %d rows x %d columns, sampled every %.3f ms\n",
			len(b.Timeline.Rows), len(b.Timeline.Columns), float64(b.Timeline.IntervalPs)/1e9)
	}
	if b.Metrics != "" {
		fmt.Fprintf(w, "metrics  %d bytes of Prometheus exposition\n", len(b.Metrics))
	}
	if len(b.State) > 0 {
		keys := make([]string, 0, len(b.State))
		for k := range b.State {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "state    %s\n", strings.Join(keys, ", "))
	}
	fmt.Fprintln(w, "bundle   valid")
	return events, nil
}

// parseRange parses "43:45" or "43-45".
func parseRange(s string) (lo, hi int64, err error) {
	sep := ":"
	if !strings.Contains(s, sep) {
		sep = "-"
	}
	a, b, ok := strings.Cut(s, sep)
	if !ok {
		return 0, 0, fmt.Errorf("dtptrace: bad range %q, want lo:hi", s)
	}
	if lo, err = strconv.ParseInt(a, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("dtptrace: bad range %q: %w", s, err)
	}
	if hi, err = strconv.ParseInt(b, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("dtptrace: bad range %q: %w", s, err)
	}
	if lo > hi {
		return 0, 0, fmt.Errorf("dtptrace: empty range %q", s)
	}
	return lo, hi, nil
}

// summarizeMetrics echoes the dtp_* samples of a Prometheus text dump
// (skipping histogram buckets). WritePrometheus sorts families and
// series, so the echo is deterministic too.
func summarizeMetrics(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Println("\n== Metrics summary (dtp_* samples)")
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	shown := 0
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "dtp_") || strings.Contains(line, "_bucket{") {
			continue
		}
		fmt.Println(line)
		shown++
	}
	if shown == 0 {
		fmt.Println("no dtp_* samples found")
	}
	return sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtptrace:", err)
	os.Exit(1)
}
