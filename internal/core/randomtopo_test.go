package core

import (
	"fmt"
	"testing"

	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/topo"
)

// randomTree builds a random tree of n devices: node i > 0 attaches to
// a uniformly random earlier node. Leaves are hosts, interior nodes
// switches.
func randomTree(rng *sim.RNG, n int) topo.Graph {
	g := topo.Graph{}
	parents := make([]int, n)
	hasChild := make([]bool, n)
	for i := 0; i < n; i++ {
		parent := 0
		if i > 0 {
			parent = rng.IntN(i)
			hasChild[parent] = true
			parents[i] = parent
		}
	}
	for i := 0; i < n; i++ {
		kind := topo.Host
		if hasChild[i] {
			kind = topo.Switch
		}
		g.Nodes = append(g.Nodes, topo.Node{ID: i, Name: fmt.Sprintf("n%d", i), Kind: kind})
	}
	for i := 1; i < n; i++ {
		length := 1 + rng.Float64()*99 // 1-100 m cables
		g.Links = append(g.Links, topo.Link{A: parents[i], B: i, LengthM: length})
	}
	return g
}

// TestRandomTreesHold4TD is the randomized version of the bound
// property: arbitrary tree shapes, arbitrary cable lengths up to 100 m,
// arbitrary oscillator draws — the 4TD bound must hold everywhere.
func TestRandomTreesHold4TD(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rng := sim.NewRNG(seed, "randomtopo")
		g := randomTree(rng, 4+rng.IntN(8))
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: invalid random tree: %v", seed, err)
		}
		sch := sim.NewScheduler()
		n, err := NewNetwork(sch, seed*31, g, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		n.Start()
		sch.Run(10 * sim.Millisecond)
		if !n.AllSynced() {
			t.Fatalf("seed %d: random tree did not sync", seed)
		}
		var worst int64
		for i := 0; i < 200; i++ {
			sch.RunFor(200 * sim.Microsecond)
			if o := n.MaxPairwiseOffset(); o > worst {
				worst = o
			}
		}
		if bound := n.BoundUnits(); worst > bound {
			t.Fatalf("seed %d: offset %d > bound %d (diameter %d, %d nodes)",
				seed, worst, bound, g.Diameter(), len(g.Nodes))
		}
	}
}

// TestRandomTreesLongCables exercises the propagation-delay extremes:
// the paper allows up to 1000 m (5 us) inside a datacenter.
func TestRandomTreesLongCables(t *testing.T) {
	g := topo.Graph{
		Nodes: []topo.Node{
			{ID: 0, Name: "a", Kind: topo.Host},
			{ID: 1, Name: "sw", Kind: topo.Switch},
			{ID: 2, Name: "b", Kind: topo.Host},
		},
		Links: []topo.Link{
			{A: 0, B: 1, LengthM: 1000}, // 5 us propagation
			{A: 1, B: 2, LengthM: 1},
		},
	}
	sch := sim.NewScheduler()
	n, err := NewNetwork(sch, 77, g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	sch.Run(20 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("long-cable network did not sync")
	}
	// The 1000 m link's OWD is ~820 ticks; verify it measured sanely.
	dev, _ := n.DeviceByName("a")
	p, _ := dev.PortTo("sw")
	if d := p.OWDUnits(); d < 780 || d > 860 {
		t.Fatalf("1000m OWD measured %d ticks, want ~820", d)
	}
	var worst int64
	for i := 0; i < 300; i++ {
		sch.RunFor(200 * sim.Microsecond)
		if o := n.MaxPairwiseOffset(); o > worst {
			worst = o
		}
	}
	if bound := n.BoundUnits(); worst > bound {
		t.Fatalf("offset %d > bound %d on long cables", worst, bound)
	}
}
