package ptp

import (
	"fmt"
	"math"

	"github.com/dtplab/dtp/internal/eth"
	"github.com/dtplab/dtp/internal/fabric"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
)

// Client is a PTP slave: a host whose PHC is disciplined to the
// grandmaster through Sync/Follow_Up (offset) and Delay_Req/Delay_Resp
// (path delay), with delay-window filtering and a PI servo — the
// standard structure of ptp4l/Timekeeper-class daemons.
type Client struct {
	net  *fabric.Network
	cfg  Config
	rng  *sim.RNG
	node int
	gm   int

	PHC *PHC

	// Sync pairing state.
	pendingT2 map[uint64]float64 // seq -> corrected t2
	lastT1    float64
	lastT2    float64
	haveSync  bool

	// Delay measurement state.
	reqSeq     uint64
	pendingReq map[uint64]float64 // seq -> t3 latched at TX
	delayWin   []float64          // recent path delay samples (ps)
	pathDelay  float64            // filtered (min of window)
	haveDelay  bool

	// Offset filtering + servo.
	offsetWin []float64
	servo     servo
	stopped   bool
	// synced flips after the first clock correction: like production
	// daemons, the very first measurement steps the clock uncondition-
	// ally, and the servo slews from there.
	synced bool

	// Best-master-clock state (§2.4.2): announced masters and their
	// freshness; the client follows the lowest-priority live master and
	// fails over when its announces stop.
	masters map[int]masterInfo

	// Stats.
	syncs, resps uint64
	steps        uint64
	switches     uint64

	// OnSample, if set, receives each filtered offset estimate (ps).
	OnSample func(offsetPs float64)

	// Telemetry handles (nil when uninstrumented; see Instrument).
	telSyncs, telResps, telSteps, telSwitches *telemetry.Counter
	telOffset                                 *telemetry.Histogram
	tr                                        *telemetry.Tracer
	tname                                     string
}

// NewClient installs a PTP client at the host node, its PHC initialized
// with a random phase error (up to ±1 ms) and an oscillator error drawn
// from ±cfg.PPMRange.
func NewClient(n *fabric.Network, node, gm int, cfg Config, seed uint64) *Client {
	rng := sim.NewRNG(seed, fmt.Sprintf("ptp/client/%d", node))
	c := &Client{
		net: n, cfg: cfg, node: node, gm: gm, rng: rng,
		PHC:        NewPHC(n.Sch, rng.Uniform(-cfg.PPMRange, cfg.PPMRange)),
		pendingT2:  map[uint64]float64{},
		pendingReq: map[uint64]float64{},
		servo:      newServo(cfg),
	}
	c.masters = map[int]masterInfo{}
	c.PHC.Step(rng.Uniform(-1e9, 1e9)) // ±1 ms initial phase error
	n.Handle(node, eth.ProtoPTPEvent, c.onEvent)
	n.Handle(node, eth.ProtoPTPGeneral, c.onGeneral)
	if cfg.WanderInterval > 0 && cfg.WanderStepPPB > 0 {
		n.Sch.After(cfg.WanderInterval, c.wander)
	}
	// BMCA watchdog: re-evaluate master liveness every sync interval.
	n.Sch.After(cfg.SyncInterval, c.bmcaWatchdog)
	return c
}

// masterInfo tracks one announced master.
type masterInfo struct {
	priority int
	lastSeen sim.Time
}

// bmcaWatchdog prunes dead masters and re-selects.
func (c *Client) bmcaWatchdog() {
	if c.stopped {
		return
	}
	c.selectMaster()
	c.net.Sch.After(c.cfg.SyncInterval, c.bmcaWatchdog)
}

// selectMaster implements the best-master-clock decision: lowest
// priority among masters announced within the last three sync
// intervals; ties break toward the lower node ID. The bootstrap master
// stays selected until any announce arrives.
func (c *Client) selectMaster() {
	now := c.net.Sch.Now()
	horizon := now - 3*c.cfg.SyncInterval
	best, bestPrio := -1, int(^uint(0)>>1)
	for node, m := range c.masters {
		if m.lastSeen < horizon {
			continue
		}
		if m.priority < bestPrio || (m.priority == bestPrio && node < best) {
			best, bestPrio = node, m.priority
		}
	}
	if best < 0 || best == c.gm {
		return
	}
	// Fail over: drop all state tied to the old master.
	old := c.gm
	c.gm = best
	c.switches++
	c.telSwitches.Inc()
	c.tr.Record(now, telemetry.KindMasterSwitch, c.tname, int64(old), int64(best), "")
	c.haveSync = false
	c.haveDelay = false
	c.delayWin = c.delayWin[:0]
	c.offsetWin = c.offsetWin[:0]
	c.pendingT2 = map[uint64]float64{}
	c.pendingReq = map[uint64]float64{}
	c.servo.reset()
	c.synced = false // first measurement against the new master steps
}

// Instrument attaches telemetry to the client: protocol counters and an
// |offset| histogram labeled with the node ID, plus servo_update,
// clock_step, and master_switch trace events. Either argument may be
// nil.
func (c *Client) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	node := fmt.Sprintf("%d", c.node)
	c.tname = "ptp/" + node
	c.telSyncs = reg.Counter("ptp_syncs_received_total",
		"Sync messages received from the selected master.", "node", node)
	c.telResps = reg.Counter("ptp_delay_resps_total",
		"Delay_Resp messages consumed into the path-delay filter.", "node", node)
	c.telSteps = reg.Counter("ptp_clock_steps_total",
		"Unconditional PHC steps (first sync or beyond the step threshold).", "node", node)
	c.telSwitches = reg.Counter("ptp_master_switches_total",
		"Best-master-clock failovers.", "node", node)
	c.telOffset = reg.Histogram("ptp_abs_offset_ns",
		"Magnitude of filtered offset-to-master estimates in nanoseconds.",
		telemetry.ExponentialBuckets(1, 4, 12), "node", node)
	c.tr = tr
}

// MasterSwitches reports how many BMCA failovers occurred.
func (c *Client) MasterSwitches() uint64 { return c.switches }

// Master returns the currently selected master node.
func (c *Client) Master() int { return c.gm }

// Start begins the Delay_Req cadence.
func (c *Client) Start() {
	c.stopped = false
	c.net.Sch.After(c.rng.UniformTime(0, c.cfg.DelayReqInterval), c.delayRound)
}

// Stop halts the client's transmissions (received messages are ignored).
func (c *Client) Stop() { c.stopped = true }

// Node returns the client's topology node ID.
func (c *Client) Node() int { return c.node }

// OffsetToMasterPs is ground truth: PHC time minus true time at the
// current instant. This is what Figures 6d–f plot.
func (c *Client) OffsetToMasterPs() float64 {
	now := c.net.Sch.Now()
	return c.PHC.At(now) - float64(now)
}

// Stats returns protocol counters.
func (c *Client) Stats() (syncs, delayResps, steps uint64) {
	return c.syncs, c.resps, c.steps
}

func (c *Client) wander() {
	ppm := c.PHC.HwPPM() + c.rng.Normal(0, c.cfg.WanderStepPPB/1000)
	if ppm > c.cfg.PPMRange {
		ppm = c.cfg.PPMRange
	}
	if ppm < -c.cfg.PPMRange {
		ppm = -c.cfg.PPMRange
	}
	c.PHC.SetHwPPM(ppm)
	c.net.Sch.After(c.cfg.WanderInterval, c.wander)
}

// hwStamp reads the NIC's hardware timestamp for an event at real time
// t: the PHC value plus latching jitter.
func (c *Client) hwStamp(t sim.Time) float64 {
	j := c.cfg.TimestampJitterNs * 1000
	return c.PHC.At(t) + c.rng.Uniform(-j, j)
}

// --- Receive paths ------------------------------------------------------

func (c *Client) onEvent(f *eth.Frame, rx sim.Time) {
	if c.stopped || f.Src != c.gm {
		return // Syncs from non-selected masters are ignored
	}
	if m, ok := f.Payload.(syncMsg); ok {
		// t2: hardware RX timestamp minus accumulated transparent-clock
		// correction.
		c.pendingT2[m.Seq] = c.hwStamp(rx) - float64(f.CorrectionPs)
		c.syncs++
		c.telSyncs.Inc()
		// Bound the pending map: drop entries older than a few rounds.
		if len(c.pendingT2) > 16 {
			for k := range c.pendingT2 {
				if k+8 < m.Seq {
					delete(c.pendingT2, k)
				}
			}
		}
	}
}

func (c *Client) onGeneral(f *eth.Frame, rx sim.Time) {
	if c.stopped {
		return
	}
	switch m := f.Payload.(type) {
	case announce:
		c.masters[m.GM] = masterInfo{priority: m.Priority, lastSeen: rx}
		c.selectMaster()
		return
	case followUp:
		if f.Src != c.gm {
			return
		}
		t2, ok := c.pendingT2[m.Seq]
		if !ok {
			return
		}
		delete(c.pendingT2, m.Seq)
		c.lastT1, c.lastT2, c.haveSync = m.T1, t2, true
		c.onOffsetSample(t2 - m.T1)
	case delayResp:
		if f.Src != c.gm {
			return
		}
		t3, ok := c.pendingReq[m.Seq]
		if !ok {
			return
		}
		delete(c.pendingReq, m.Seq)
		if !c.haveSync {
			return
		}
		// delay = ((t2 - t1) + (t4 - t3)) / 2
		d := ((c.lastT2 - c.lastT1) + (m.T4 - t3)) / 2
		if d < 0 {
			d = 0 // clock slew distorted the intervals; a path never has negative delay
		}
		c.pushDelay(d)
	}
}

// delayRound sends a Delay_Req.
func (c *Client) delayRound() {
	if c.stopped {
		return
	}
	c.reqSeq++
	seq := c.reqSeq
	f := &eth.Frame{
		Src: c.node, Dst: c.gm, Size: eth.PTPEventFrame,
		Proto: eth.ProtoPTPEvent, Payload: delayReq{Seq: seq, Client: c.node},
		// t3 is latched by the NIC at the departure instant, like real
		// hardware timestamping; reconstructing it later through a
		// stepped/slewed PHC would corrupt the delay measurement.
		OnTxStart: nil,
	}
	f.OnTxStart = func(t sim.Time) { c.pendingReq[seq] = c.hwStamp(t) }
	if c.net.Send(f) {
		if len(c.pendingReq) > 16 {
			for k := range c.pendingReq {
				if k+8 < seq {
					delete(c.pendingReq, k)
				}
			}
		}
	}
	c.net.Sch.After(c.cfg.DelayReqInterval, c.delayRound)
}

// pushDelay adds a path-delay sample and refreshes the filtered value:
// the minimum of the window, the standard defense against queueing (a
// queued probe only ever measures too much).
func (c *Client) pushDelay(d float64) {
	c.resps++
	c.telResps.Inc()
	c.delayWin = append(c.delayWin, d)
	if len(c.delayWin) > c.cfg.FilterWindow {
		c.delayWin = c.delayWin[1:]
	}
	min := c.delayWin[0]
	for _, v := range c.delayWin[1:] {
		if v < min {
			min = v
		}
	}
	c.pathDelay = min
	c.haveDelay = true
}

// onOffsetSample processes a Sync-derived offset measurement
// (t2 - t1 = offset + delay) through the filter and servo.
func (c *Client) onOffsetSample(t2MinusT1 float64) {
	if !c.haveDelay {
		return // need a path delay estimate first
	}
	offset := t2MinusT1 - c.pathDelay

	// The reported (smoothed) offset keeps a median window, as the
	// paper notes commercial deployments do; the servo consumes raw
	// samples — a median's group delay in the control loop would
	// destabilize it.
	c.offsetWin = append(c.offsetWin, offset)
	if len(c.offsetWin) > c.cfg.FilterWindow {
		c.offsetWin = c.offsetWin[1:]
	}
	if c.OnSample != nil {
		c.OnSample(median(c.offsetWin))
	}

	c.telOffset.Observe(math.Abs(offset) / 1000)
	if !c.synced || offset > c.cfg.StepThresholdNs*1000 || offset < -c.cfg.StepThresholdNs*1000 {
		c.PHC.Step(-offset)
		c.synced = true
		c.steps++
		c.telSteps.Inc()
		c.tr.Record(c.net.Sch.Now(), telemetry.KindClockStep, c.tname, int64(-offset), 0, "")
		c.offsetWin = c.offsetWin[:0]
		c.servo.reset()
		return
	}
	ppb := c.servo.update(offset, c.cfg.SyncInterval)
	c.PHC.AdjFreq(ppb)
	if c.tr.Enabled(telemetry.KindServoUpdate) {
		c.tr.Record(c.net.Sch.Now(), telemetry.KindServoUpdate, c.tname,
			int64(offset), int64(ppb), "")
	}
}

func median(w []float64) float64 {
	if len(w) == 0 {
		return 0
	}
	tmp := make([]float64, len(w))
	copy(tmp, w)
	// Insertion sort: windows are tiny.
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}
