package chaos

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/dtplab/dtp/internal/sim"
)

// TestScenarioJSONRoundTrip: a scenario built in Go survives an encode/
// decode cycle unchanged — durations render as human-readable strings
// and parse back to the same sim.Time.
func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := Scenario{
		Name:               "roundtrip",
		Description:        "all fault kinds",
		SettleGrace:        D(600 * sim.Microsecond),
		ReconvergeDeadline: D(8 * sim.Millisecond),
		Faults: []Fault{
			{Kind: KindFlap, Link: []string{"sw1", "sw2"}, At: D(2 * sim.Millisecond),
				Duration: D(sim.Millisecond), MeanUp: D(200 * sim.Microsecond), MeanDown: D(100 * sim.Microsecond)},
			{Kind: KindBERBurst, Link: []string{"sw3", "sw4"}, At: D(2500 * sim.Microsecond),
				Duration: D(sim.Millisecond), BER: 1e-4},
			{Kind: KindBERDegrade, Link: []string{"h0", "sw1"}, At: D(5 * sim.Millisecond), BER: 1e-9},
			{Kind: KindGreyLoss, Link: []string{"h0", "sw1"}, At: D(sim.Millisecond),
				Duration: D(500 * sim.Microsecond), LossP: 0.5},
			{Kind: KindGreyDelay, Link: []string{"sw1", "h1"}, At: D(sim.Millisecond),
				Duration: D(sim.Millisecond), ExtraDelay: D(50 * sim.Nanosecond), Steps: 5},
			{Kind: KindFreqStep, Device: "h0", At: D(3 * sim.Millisecond),
				Duration: D(sim.Millisecond), PPMStep: 150},
			{Kind: KindTempRamp, Device: "sw1", At: D(3 * sim.Millisecond),
				Duration: D(sim.Millisecond), PPMStep: -60},
			{Kind: KindCrash, Device: "sw2", At: D(4 * sim.Millisecond),
				Duration: D(500 * sim.Microsecond)},
			{Kind: KindLiar, Device: "h0", At: D(5 * sim.Millisecond),
				Duration: D(sim.Millisecond), JumpUnits: 5000, Cadence: D(2 * sim.Microsecond)},
			{Kind: KindOverclaim, Device: "h1", At: D(5 * sim.Millisecond),
				Duration: D(sim.Millisecond), JumpUnits: 6, Cadence: D(10 * sim.Microsecond)},
			{Kind: KindSpoof, Link: []string{"h0", "sw1"}, At: D(6 * sim.Millisecond),
				Duration: D(sim.Millisecond), JumpUnits: 6, Cadence: D(2 * sim.Microsecond)},
		},
	}
	b, err := json.MarshalIndent(&sc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"2ms"`) {
		t.Fatalf("durations should render as Go duration strings, got:\n%s", b)
	}
	var back Scenario
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("round trip changed the scenario:\n  in:  %+v\n  out: %+v", sc, back)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped scenario invalid: %v", err)
	}
}

// TestDurationUnmarshal: both duration strings and bare nanosecond
// numbers parse; garbage and negatives are rejected.
func TestDurationUnmarshal(t *testing.T) {
	cases := []struct {
		in   string
		want sim.Time
		ok   bool
	}{
		{`"150us"`, 150 * sim.Microsecond, true},
		{`"2ms"`, 2 * sim.Millisecond, true},
		{`1500`, 1500 * sim.Nanosecond, true},
		{`"-2ms"`, 0, false},
		{`-5`, 0, false},
		{`"xyz"`, 0, false},
		{`{}`, 0, false},
	}
	for _, c := range cases {
		var d Duration
		err := json.Unmarshal([]byte(c.in), &d)
		if c.ok != (err == nil) {
			t.Errorf("%s: err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && d.T != c.want {
			t.Errorf("%s: got %v, want %v", c.in, d.T, c.want)
		}
	}
}

// TestScenarioValidation: every structural error class is caught.
func TestScenarioValidation(t *testing.T) {
	link := []string{"a", "b"}
	cases := []struct {
		name string
		sc   Scenario
		want string // substring of the expected error, "" = valid
	}{
		{"empty", Scenario{Name: "x"}, "no faults"},
		{"unknown kind", Scenario{Faults: []Fault{{Kind: "meteor"}}}, "unknown fault kind"},
		{"flap missing link", Scenario{Faults: []Fault{
			{Kind: KindFlap, Duration: D(1), MeanUp: D(1), MeanDown: D(1)}}}, "requires \"link\""},
		{"flap missing means", Scenario{Faults: []Fault{
			{Kind: KindFlap, Link: link, Duration: D(1)}}}, "mean_up"},
		{"ber out of range", Scenario{Faults: []Fault{
			{Kind: KindBERBurst, Link: link, Duration: D(1), BER: 1.5}}}, "\"ber\" in (0, 1)"},
		{"ber burst no duration", Scenario{Faults: []Fault{
			{Kind: KindBERBurst, Link: link, BER: 1e-4}}}, "positive \"duration\""},
		{"grey loss bad p", Scenario{Faults: []Fault{
			{Kind: KindGreyLoss, Link: link, Duration: D(1), LossP: 0}}}, "loss_p"},
		{"grey delay no extra", Scenario{Faults: []Fault{
			{Kind: KindGreyDelay, Link: link, Duration: D(1)}}}, "extra_delay"},
		{"freq step no device", Scenario{Faults: []Fault{
			{Kind: KindFreqStep, PPMStep: 10}}}, "requires \"device\""},
		{"freq step zero ppm", Scenario{Faults: []Fault{
			{Kind: KindFreqStep, Device: "d", PPMStep: 0}}}, "ppm_step"},
		{"temp ramp no duration", Scenario{Faults: []Fault{
			{Kind: KindTempRamp, Device: "d", PPMStep: 5}}}, "duration"},
		{"crash no duration", Scenario{Faults: []Fault{
			{Kind: KindCrash, Device: "d"}}}, "duration"},
		{"negative steps", Scenario{Faults: []Fault{
			{Kind: KindTempRamp, Device: "d", PPMStep: 5, Duration: D(1), Steps: -2}}}, "negative steps"},
		{"liar missing device", Scenario{Faults: []Fault{
			{Kind: KindLiar, Duration: D(1), JumpUnits: 100, Cadence: D(1)}}}, "requires \"device\""},
		{"liar missing jump_units", Scenario{Faults: []Fault{
			{Kind: KindLiar, Device: "d", Duration: D(1), Cadence: D(1)}}}, "positive \"jump_units\""},
		{"liar missing cadence", Scenario{Faults: []Fault{
			{Kind: KindLiar, Device: "d", Duration: D(1), JumpUnits: 100}}}, "positive \"cadence\""},
		{"overclaim no duration", Scenario{Faults: []Fault{
			{Kind: KindOverclaim, Device: "d", JumpUnits: 4, Cadence: D(1)}}}, "positive \"duration\""},
		{"spoof missing link", Scenario{Faults: []Fault{
			{Kind: KindSpoof, Duration: D(1), JumpUnits: 4, Cadence: D(1)}}}, "requires \"link\""},
		{"spoof missing jump_units", Scenario{Faults: []Fault{
			{Kind: KindSpoof, Link: link, Duration: D(1), Cadence: D(1)}}}, "positive \"jump_units\""},
		{"valid", Scenario{Faults: []Fault{
			{Kind: KindCrash, Device: "d", At: D(1), Duration: D(1)}}}, ""},
		{"valid liar", Scenario{Faults: []Fault{
			{Kind: KindLiar, Device: "d", At: D(1), Duration: D(1), JumpUnits: 5000, Cadence: D(1)}}}, ""},
	}
	for _, c := range cases {
		err := c.sc.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}

// TestValidationNamesFaultIndex: a bad fault in a multi-fault scenario
// is reported by its position, so an author editing a long JSON file
// knows which entry to fix.
func TestValidationNamesFaultIndex(t *testing.T) {
	sc := Scenario{Faults: []Fault{
		{Kind: KindCrash, Device: "d", At: D(1), Duration: D(1)},
		{Kind: "meteor"},
	}}
	err := sc.Validate()
	if err == nil {
		t.Fatal("scenario with unknown kind validated")
	}
	if !strings.Contains(err.Error(), "fault 1:") {
		t.Fatalf("error %q does not name the offending fault index", err)
	}
	if !strings.Contains(err.Error(), "unknown fault kind") {
		t.Fatalf("error %q lost the underlying cause", err)
	}
}

// TestLoad: a scenario file loads, gets validated, and bad files fail
// with a path-qualified error.
func TestLoad(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{
		"name": "file",
		"faults": [
			{"kind": "crash", "device": "sw1", "at": "1ms", "duration": "500us"}
		]
	}`), 0o644)
	sc, err := Load(good)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Faults[0].At.T != sim.Millisecond {
		t.Fatalf("at = %v, want 1ms", sc.Faults[0].At.T)
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"name": "x", "faults": [{"kind": "meteor"}]}`), 0o644)
	if _, err := Load(bad); err == nil || !strings.Contains(err.Error(), "unknown fault kind") {
		t.Fatalf("bad scenario loaded: %v", err)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}
