package sim

// Binary-heap reference discipline over pooled slot indices: the seed
// engine's data structure (O(log n) sift per operation, index swaps on
// every level) kept behind NewHeapScheduler for the dispatch-order
// equivalence property test and the BENCH_8 speedup trajectory. Slot
// .pos tracks each pending event's heap position so Cancel can remove
// from the middle.

func (s *Scheduler) heapPush(idx uint32) {
	s.heap = append(s.heap, idx)
	s.slots[idx].pos = uint32(len(s.heap) - 1)
	s.heapUp(len(s.heap) - 1)
}

func (s *Scheduler) heapPopLE(until Time) (uint32, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	top := s.heap[0]
	if s.slots[top].at > until {
		return 0, false
	}
	s.heapSwap(0, len(s.heap)-1)
	s.heap = s.heap[:len(s.heap)-1]
	if len(s.heap) > 0 {
		s.heapDown(0)
	}
	return top, true
}

// heapRemove deletes the pending slot idx from the middle of the heap
// (Cancel path).
func (s *Scheduler) heapRemove(idx uint32) {
	i := int(s.slots[idx].pos)
	last := len(s.heap) - 1
	if i != last {
		s.heapSwap(i, last)
	}
	s.heap = s.heap[:last]
	if i < last {
		if !s.heapDownFrom(i) {
			s.heapUp(i)
		}
	}
}

func (s *Scheduler) heapSwap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.slots[s.heap[i]].pos = uint32(i)
	s.slots[s.heap[j]].pos = uint32(j)
}

func (s *Scheduler) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.slotLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heapSwap(i, parent)
		i = parent
	}
}

func (s *Scheduler) heapDown(i int) { s.heapDownFrom(i) }

// heapDownFrom sifts i down, reporting whether it moved.
func (s *Scheduler) heapDownFrom(i int) bool {
	moved := false
	n := len(s.heap)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && s.slotLess(s.heap[r], s.heap[l]) {
			small = r
		}
		if !s.slotLess(s.heap[small], s.heap[i]) {
			break
		}
		s.heapSwap(i, small)
		i = small
		moved = true
	}
	return moved
}
