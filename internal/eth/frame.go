// Package eth defines the Ethernet frame model shared by the packet
// fabric (internal/fabric) and the packet-based time protocols
// (internal/ptp, internal/ntp). DTP itself never touches this package —
// it has no packets.
package eth

import (
	"fmt"

	"github.com/dtplab/dtp/internal/sim"
)

// Frame sizes in octets as counted on the wire (preamble + header +
// payload + FCS), matching the paper's workloads.
const (
	// MinFrame is a minimum-sized Ethernet frame (64 B + preamble).
	MinFrame = 72
	// MTUFrame is the paper's "MTU-sized (1522B)" frame: 8-byte
	// preamble, Ethernet header, 1500-byte payload, FCS.
	MTUFrame = 1522
	// JumboFrame is the paper's jumbo workload (~9 kB).
	JumboFrame = 9022
	// PTPEventFrame is a PTP Sync/Delay_Req message on the wire.
	PTPEventFrame = 90
	// UDPNTPFrame is an NTP mode-3/4 datagram on the wire.
	UDPNTPFrame = 110
)

// Proto identifies the consumer of a frame at the receiving host.
type Proto int

const (
	// ProtoBulk is background traffic (iperf-style UDP); it is counted
	// and dropped at the sink.
	ProtoBulk Proto = iota
	// ProtoPTPEvent carries timestamped PTP messages (Sync, Delay_Req,
	// Delay_Resp).
	ProtoPTPEvent
	// ProtoPTPGeneral carries non-timestamped PTP messages (Follow_Up,
	// Announce).
	ProtoPTPGeneral
	// ProtoNTP carries NTP datagrams.
	ProtoNTP
	// ProtoApp carries application-defined payloads (used by examples).
	ProtoApp
)

func (p Proto) String() string {
	switch p {
	case ProtoBulk:
		return "bulk"
	case ProtoPTPEvent:
		return "ptp-event"
	case ProtoPTPGeneral:
		return "ptp-general"
	case ProtoNTP:
		return "ntp"
	case ProtoApp:
		return "app"
	default:
		return fmt.Sprintf("Proto(%d)", int(p))
	}
}

// Frame is a frame in flight. Fields are filled in as it traverses the
// fabric.
type Frame struct {
	Src, Dst int // topology node IDs
	Size     int // octets on the wire
	Proto    Proto
	Payload  any

	// TxStart is when the first bit left the source NIC (set by the
	// fabric).
	TxStart sim.Time
	// OnTxStart, if set, fires at the source NIC the moment the first
	// bit leaves — how hardware TX timestamping latches the local clock
	// at the departure instant rather than reconstructing it later.
	OnTxStart func(t sim.Time)
	// Hops counts switch traversals.
	Hops int
	// CorrectionPs accumulates transparent-clock residence times
	// (PTP §6.1): switches add their queuing+forwarding delay estimate
	// here, in picoseconds of the switch's local clock.
	CorrectionPs int64
	// TCIngress / TCPending carry perfect-transparent-clock state
	// between a switch's ingress and the start of egress serialization.
	TCIngress sim.Time
	TCPending bool
}

// Clone returns a shallow copy (payloads are immutable by convention).
func (f *Frame) Clone() *Frame {
	c := *f
	return &c
}

func (f *Frame) String() string {
	return fmt.Sprintf("%v %d->%d (%dB)", f.Proto, f.Src, f.Dst, f.Size)
}
