package phy

import (
	"testing"
	"testing/quick"
)

func TestIdleBlock(t *testing.T) {
	b := IdleBlock()
	if !b.IsIdle() || !b.IsControl() || !b.Valid() {
		t.Fatal("IdleBlock misclassified")
	}
	if b.ControlBits() != 0 {
		t.Fatalf("idle block control bits = %#x, want 0", b.ControlBits())
	}
	if b.BlockType() != BTIdle {
		t.Fatalf("idle block type = %#x, want %#x", b.BlockType(), BTIdle)
	}
}

func TestDataBlockOctetOrder(t *testing.T) {
	b := DataBlock([8]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	if b.Sync != SyncData {
		t.Fatal("DataBlock sync header wrong")
	}
	if b.Payload != 0x0807060504030201 {
		t.Fatalf("payload = %#x", b.Payload)
	}
	if b.IsIdle() || b.IsControl() {
		t.Fatal("data block misclassified as control")
	}
}

func TestWithControlBitsRoundTrip(t *testing.T) {
	b := IdleBlock().WithControlBits(0x00ab_cdef_0123_45)
	if got := b.ControlBits(); got != 0x00ab_cdef_0123_45 {
		t.Fatalf("control bits = %#x", got)
	}
	if b.BlockType() != BTIdle {
		t.Fatal("block type clobbered by WithControlBits")
	}
}

func TestWithControlBitsOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("57-bit control bits did not panic")
		}
	}()
	IdleBlock().WithControlBits(1 << 56)
}

func TestBlockValidity(t *testing.T) {
	if (Block{Sync: 0b00}).Valid() || (Block{Sync: 0b11}).Valid() {
		t.Fatal("invalid sync header accepted")
	}
	if !(Block{Sync: SyncData}).Valid() || !(Block{Sync: SyncControl}).Valid() {
		t.Fatal("valid sync header rejected")
	}
}

func TestBlockString(t *testing.T) {
	for _, b := range []Block{IdleBlock(), DataBlock([8]byte{1}), {Sync: 3}} {
		if b.String() == "" {
			t.Fatal("empty String()")
		}
	}
}

func TestScramblerRoundTrip(t *testing.T) {
	s := NewScrambler()
	d := NewDescrambler()
	// The descrambler self-synchronizes within 58 bits; the first block
	// may decode wrong, everything after must round-trip.
	inputs := []uint64{0xdeadbeefcafef00d, 0x0123456789abcdef, 0, ^uint64(0), 0x1e}
	_ = d.Descramble(s.Scramble(0xffffffffffffffff)) // sync block
	for _, in := range inputs {
		if got := d.Descramble(s.Scramble(in)); got != in {
			t.Fatalf("roundtrip(%#x) = %#x", in, got)
		}
	}
}

func TestScramblerSelfSynchronization(t *testing.T) {
	// A descrambler starting from an arbitrary state must converge after
	// one full block (64 > 58 state bits).
	s := NewScrambler()
	d := &Descrambler{state: 0x2aaa_aaaa_aaaa_aaa}
	d.Descramble(s.Scramble(0x5555555555555555))
	for i, in := range []uint64{1, 2, 3, 0xfedcba9876543210} {
		if got := d.Descramble(s.Scramble(in)); got != in {
			t.Fatalf("block %d after sync: got %#x want %#x", i, got, in)
		}
	}
}

func TestScramblerChangesBits(t *testing.T) {
	s := NewScrambler()
	if s.Scramble(0) == 0 {
		t.Fatal("scrambler with nonzero state left zero payload unchanged")
	}
}

func TestScramblerRoundTripProperty(t *testing.T) {
	s := NewScrambler()
	d := NewDescrambler()
	d.Descramble(s.Scramble(0)) // synchronize
	f := func(in uint64) bool {
		return d.Descramble(s.Scramble(in)) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestScrambleDCStatistics(t *testing.T) {
	// Scrambled idle blocks should look random: roughly half ones. This
	// is the property that lets DTP rewrite idle bits without changing
	// the electrical characteristics of the line (§4.4).
	s := NewScrambler()
	ones := 0
	n := 1000
	for i := 0; i < n; i++ {
		v := s.Scramble(IdleBlock().Payload)
		for ; v != 0; v &= v - 1 {
			ones++
		}
	}
	frac := float64(ones) / float64(64*n)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("scrambled idle ones fraction = %.3f, want ~0.5", frac)
	}
}
