package dtp

import "github.com/dtplab/dtp/internal/discipline"

// DisciplineConfig selects and parameterizes the software-clock
// estimator a daemon disciplines its TSC-derived clock with (see
// internal/discipline): the paper's moving average ("ma", the default),
// an Ntimed-style PLL ("pll"), Theil-Sen median-of-slopes regression
// ("theilsen"), or chrony-style least-absolute-deviations with outlier
// sample dropping ("lad"). The zero value means "ma" with defaults.
type DisciplineConfig = discipline.Config

// DisciplineKinds lists the available discipline kinds in canonical
// order.
func DisciplineKinds() []string { return discipline.Kinds() }

// ParseDiscipline parses the CLI discipline syntax shared by dtpsim,
// dtpd and dtpexp: "kind" or "kind:opt=val,opt=val", e.g. "ma",
// "ma:gain=0.3", "pll:kp=0.7,ki=0.3", "theilsen:window=16",
// "lad:window=24,dropk=2". An empty spec selects the default ("ma").
func ParseDiscipline(spec string) (DisciplineConfig, error) {
	return discipline.Parse(spec)
}

// WithDiscipline sets the default estimator for every daemon the System
// attaches (System.Daemon, System.TimePlane); per-daemon options
// override it.
func WithDiscipline(dc DisciplineConfig) Option {
	return func(c *config) { c.discipline = dc }
}
