package audit

import (
	"bytes"
	"strings"
	"testing"

	"github.com/dtplab/dtp/internal/core"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
	"github.com/dtplab/dtp/internal/topo"
)

// recordTrace runs a fully-traced PaperTree simulation and returns the
// JSONL bytes a dtpsim -trace-out run would have produced.
func recordTrace(t *testing.T, seed uint64) []byte {
	t.Helper()
	sch := sim.NewScheduler()
	n, err := core.NewNetwork(sch, seed, topo.PaperTree(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Firehose tracing on the paper tree emits ~34 events/µs; size the
	// ring so the one-time INIT/synced events are still present at the
	// end of the window instead of evicted by beacon traffic.
	tr := telemetry.NewTracer(1 << 20)
	tr.SetKinds() // firehose: the analyzer wants beacon_rx and counter_jump
	n.Instrument(telemetry.New(), tr)
	n.Start()
	sch.Run(2 * sim.Millisecond)
	var b bytes.Buffer
	if err := telemetry.WriteJSONL(&b, tr); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func TestAnalyzeEndToEnd(t *testing.T) {
	raw := recordTrace(t, 1)
	events, err := telemetry.ReadJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace round-trip lost all events")
	}
	g := topo.PaperTree()
	r := Analyze(events, &g, 0)

	// The paper's Figure 5 calibration: one-way delay on 10 m cables
	// measures 43-45 port cycles.
	lo, hi, nOWD := r.OWDRange()
	if nOWD == 0 {
		t.Fatal("no OWD samples in trace")
	}
	if lo < 43 || hi > 45 {
		t.Fatalf("OWD range %d..%d outside the paper's 43..45 cycles", lo, hi)
	}

	if r.Offsets.Total() == 0 {
		t.Fatal("no beacon offsets despite firehose tracing")
	}
	// Accepted beacons sit inside the 8-unit guard band by construction.
	if olo, ohi := r.Offsets.Range(); olo < -8 || ohi > 8 {
		t.Fatalf("beacon offsets %d..%d ticks, want within the ±8 guard band", olo, ohi)
	}

	foundSynced := false
	for _, d := range r.Dwell {
		if d.State == "synced" && d.Total > 0 {
			foundSynced = true
		}
	}
	if !foundSynced {
		t.Fatal("dwell table records no time in synced state")
	}
	if len(r.Violations) != 0 {
		t.Fatalf("healthy run reports %d violations", len(r.Violations))
	}

	var out strings.Builder
	if err := r.WriteText(&out, 5); err != nil {
		t.Fatal(err)
	}
	for _, section := range []string{
		"== Trace window",
		"== Port state dwell times",
		"== INIT one-way delays (port cycles)",
		"== Beacon offset distribution, ticks (Figure 6c style)",
		"== Counter-jump causality chains",
		"== Bound violations\nnone",
	} {
		if !strings.Contains(out.String(), section) {
			t.Fatalf("report missing %q:\n%s", section, out.String())
		}
	}
}

// TestAnalyzeDeterministic is the acceptance criterion that dtptrace
// output is byte-deterministic per seed: identical runs must render
// identical reports.
func TestAnalyzeDeterministic(t *testing.T) {
	g := topo.PaperTree()
	render := func() string {
		raw := recordTrace(t, 9)
		events, err := telemetry.ReadJSONL(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var out strings.Builder
		if err := Analyze(events, &g, 0).WriteText(&out, 5); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same seed rendered different reports:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestPortPeers(t *testing.T) {
	m := PortPeers(topo.Pair())
	if m["h0[0]"] != "h1[0]" || m["h1[0]"] != "h0[0]" {
		t.Fatalf("pair peers wrong: %v", m)
	}
	m = PortPeers(topo.PaperTree())
	// Link order: s0-s1 first, then s0-s2, s0-s3, then s1's hosts.
	for port, want := range map[string]string{
		"s0[0]": "s1[0]",
		"s0[2]": "s3[0]",
		"s1[1]": "s4[0]",
		"s4[0]": "s1[1]",
	} {
		if m[port] != want {
			t.Fatalf("peer of %s = %q, want %q (map %v)", port, m[port], want, m)
		}
	}
}

func TestBuildChainsSynthetic(t *testing.T) {
	peers := PortPeers(topo.Chain(3)) // h0 - sw1 - sw2 - h1, ports in link order
	// A jump wavefront h0 -> sw1 -> sw2 (each jump lands on the port that
	// received the causing beacon), plus one jump far outside the window.
	jumps := []telemetry.Event{
		{Seq: 1, At: 1000, Kind: telemetry.KindCounterJump, Who: "h0[0]", V1: 4},
		{Seq: 2, At: 1500, Kind: telemetry.KindCounterJump, Who: "sw1[0]", V1: 3},
		{Seq: 3, At: 2100, Kind: telemetry.KindCounterJump, Who: "sw2[0]", V1: 2},
		{Seq: 4, At: 900 * sim.Microsecond, Kind: telemetry.KindCounterJump, Who: "h1[0]", V1: 1},
	}
	chains := buildChains(jumps, peers, 10*sim.Microsecond)
	if len(chains) != 1 {
		t.Fatalf("got %d chains, want 1: %+v", len(chains), chains)
	}
	c := chains[0]
	if len(c.Ports) != 3 {
		t.Fatalf("chain length %d, want 3: %+v", len(c.Ports), c)
	}
	for i := 1; i < len(c.Times); i++ {
		if c.Times[i] <= c.Times[i-1] {
			t.Fatalf("chain not chronological: %+v", c)
		}
	}
	if c.Ports[0] != "h0[0]" || c.Ports[2] != "sw2[0]" {
		t.Fatalf("chain ports wrong: %+v", c)
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	r := Analyze(nil, nil, 0)
	if r.Events != 0 {
		t.Fatal("phantom events")
	}
	var out strings.Builder
	if err := r.WriteText(&out, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no state_change events in trace") {
		t.Fatalf("empty report unexpected:\n%s", out.String())
	}
}
