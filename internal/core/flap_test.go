package core

import (
	"testing"

	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
	"github.com/dtplab/dtp/internal/topo"
)

// TestLinkFlapResyncWithinBound drives a cable pull and re-plug on the
// paper tree and uses the Tracer as the oracle: both port directions
// must log link_down, then link_up, then a fresh synced event (a new
// INIT round measured a new OWD), and after re-synchronization every
// adjacent offset must sit back inside the paper's 4TD bound.
func TestLinkFlapResyncWithinBound(t *testing.T) {
	sch := sim.NewScheduler()
	g := topo.PaperTree()
	n, err := NewNetwork(sch, 77, g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	tr := telemetry.NewTracer(1 << 16)
	// Lifecycle kinds only: beacons would wash the flap out of the ring.
	tr.SetKinds(telemetry.KindLinkUp, telemetry.KindLinkDown,
		telemetry.KindSynced, telemetry.KindStateChange)
	n.Instrument(reg, tr)
	n.Start()
	sch.Run(10 * sim.Millisecond)
	if !n.AllSynced() {
		t.Fatal("network failed to synchronize before the flap")
	}

	const li = 0 // s0-s1: an inner link, so both subtrees keep running
	pa, pb := n.LinkPorts(li)
	downAt := sch.Now()
	n.SetLinkDown(li)
	sch.RunFor(5 * sim.Millisecond)
	upAt := sch.Now()
	n.SetLinkUp(li)
	sch.RunFor(5 * sim.Millisecond)

	if !n.AllSynced() {
		t.Fatal("network did not re-synchronize after the flap")
	}

	// Trace oracle: count per-direction lifecycle events after the pull.
	flapped := map[string]bool{pa.Name(): true, pb.Name(): true}
	downs, ups, resyncs := 0, 0, 0
	for _, e := range tr.Events() {
		if !flapped[e.Who] {
			continue
		}
		switch {
		case e.Kind == telemetry.KindLinkDown && e.At >= downAt:
			downs++
		case e.Kind == telemetry.KindLinkUp && e.At >= upAt:
			ups++
		case e.Kind == telemetry.KindSynced && e.At >= upAt:
			resyncs++
			if e.V1 < 0 {
				t.Errorf("re-sync of %s measured negative OWD %d", e.Who, e.V1)
			}
		}
	}
	if downs != 2 || ups != 2 {
		t.Fatalf("trace recorded %d link_down / %d link_up events for the flapped link, want 2/2", downs, ups)
	}
	if resyncs != 2 {
		t.Fatalf("trace recorded %d re-sync events after re-plug, want 2", resyncs)
	}

	// Precision oracle: after re-sync (JOIN has propagated), every
	// adjacent pair is back inside 4TD.
	if off, bound := n.MaxAdjacentOffset(), n.BoundUnits(); off > bound {
		t.Fatalf("adjacent offset %d ticks exceeds 4TD bound %d after flap", off, bound)
	}

	// Metrics stayed consistent: state transitions were counted and the
	// ports-up gauge is back at every port up.
	if v := reg.Counter("dtp_port_state_transitions_total", "").Value(); v == 0 {
		t.Fatal("no state transitions counted")
	}
	if up := reg.Gauge("dtp_ports_up", "").Value(); up != float64(2*len(g.Links)) {
		t.Fatalf("dtp_ports_up = %v, want %d", up, 2*len(g.Links))
	}
}
