package ptp

import (
	"fmt"

	"github.com/dtplab/dtp/internal/eth"
	"github.com/dtplab/dtp/internal/fabric"
	"github.com/dtplab/dtp/internal/sim"
	"github.com/dtplab/dtp/internal/telemetry"
)

// BoundaryClock is a PTP boundary clock (§2.4.2): a slave to its
// upstream master and a master to its downstream clients, serving them
// from its own disciplined PHC. Boundary clocks make PTP scale — the
// timeserver answers only its direct children — but every level adds
// its own servo error, so precision degrades down the hierarchy. The
// paper cites exactly this cascading as a PTP scalability/precision
// trade-off; AblationBCCascade measures it.
type BoundaryClock struct {
	Client *Client
	master *Grandmaster
}

// NewBoundaryClock installs a boundary clock at a host node: slave to
// upstream, master to the downstream nodes.
func NewBoundaryClock(n *fabric.Network, node, upstream int, downstream []int, cfg Config, seed uint64) *BoundaryClock {
	bc := &BoundaryClock{}
	bc.Client = NewClient(n, node, upstream, cfg, seed)
	bc.master = &Grandmaster{
		net: n, cfg: cfg, node: node, clients: downstream,
		rng:    sim.NewRNG(seed, fmt.Sprintf("ptp/bc/%d", node)),
		source: func(t sim.Time) float64 { return bc.Client.PHC.At(t) },
		// Boundary clocks rank below true grandmasters.
		Priority: 200,
	}
	// Both halves receive PTP event frames at this node; dispatch by
	// message kind: Delay_Reqs from downstream go to the master half,
	// Syncs from upstream to the slave half.
	n.Handle(node, eth.ProtoPTPEvent, func(f *eth.Frame, rx sim.Time) {
		if _, isReq := f.Payload.(delayReq); isReq {
			bc.master.onEvent(f, rx)
			return
		}
		bc.Client.onEvent(f, rx)
	})
	return bc
}

// Instrument attaches telemetry to both halves of the boundary clock.
func (bc *BoundaryClock) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	bc.Client.Instrument(reg, tr)
	bc.master.Instrument(reg)
}

// Start begins both halves: the upstream slave and the downstream Sync
// cadence.
func (bc *BoundaryClock) Start() {
	bc.Client.Start()
	bc.master.Start()
}

// Stop halts both halves.
func (bc *BoundaryClock) Stop() {
	bc.Client.Stop()
	bc.master.Stop()
}

// OffsetToTruePs is ground truth: the BC's PHC versus true time.
func (bc *BoundaryClock) OffsetToTruePs() float64 {
	return bc.Client.OffsetToMasterPs()
}
