package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteJSONL dumps the tracer's retained events as JSON Lines, one
// event per line, oldest first. The schema is flat and stable:
//
//	{"seq":17,"t_ps":1280640,"kind":"beacon_rx","who":"s1[2]","v1":-1,"v2":0}
//
// "detail" appears only when non-empty. Field order is fixed, so two
// identical traces serialize to identical bytes.
func WriteJSONL(w io.Writer, t *Tracer) error {
	if t == nil {
		return nil
	}
	var b strings.Builder
	for _, e := range t.Events() {
		b.Reset()
		b.WriteString(`{"seq":`)
		b.WriteString(strconv.FormatUint(e.Seq, 10))
		b.WriteString(`,"t_ps":`)
		b.WriteString(strconv.FormatInt(int64(e.At), 10))
		b.WriteString(`,"kind":"`)
		b.WriteString(e.Kind.String())
		b.WriteString(`","who":`)
		b.WriteString(strconv.Quote(e.Who))
		b.WriteString(`,"v1":`)
		b.WriteString(strconv.FormatInt(e.V1, 10))
		b.WriteString(`,"v2":`)
		b.WriteString(strconv.FormatInt(e.V2, 10))
		if e.Detail != "" {
			b.WriteString(`,"detail":`)
			b.WriteString(strconv.Quote(e.Detail))
		}
		b.WriteString("}\n")
		if _, err := io.WriteString(w, b.String()); err != nil {
			return fmt.Errorf("telemetry: trace dump: %w", err)
		}
	}
	return nil
}
